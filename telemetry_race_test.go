package flowvalve_test

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"flowvalve"
)

// TestTelemetryConcurrentScheduleScrapeSwap hammers the scheduling hot
// path from several goroutines while stats snapshots, exporter scrapes,
// trace drains, and policy swaps run concurrently — the full set of
// operations a live deployment mixes. Run under -race this proves the
// observability layer adds no data races to the datapath.
func TestTelemetryConcurrentScheduleScrapeSwap(t *testing.T) {
	pol, err := flowvalve.FairQueuePolicy("1000gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	tel := flowvalve.NewTelemetry(flowvalve.TelemetryOptions{TraceSampleEvery: 16})
	s, err := flowvalve.NewScheduler(pol, flowvalve.NewWallClock(), flowvalve.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	handles := make([]*flowvalve.FlowHandle, workers)
	for i := range handles {
		if handles[i], err = s.Pin(uint32(i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *flowvalve.FlowHandle) {
			defer wg.Done()
			for !stop.Load() {
				h.Schedule(1500)
			}
		}(h)
	}
	// Readers: stats snapshots and both exporters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			s.Stats()
			if err := tel.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			if err := tel.WriteJSON(io.Discard); err != nil {
				t.Error(err)
				return
			}
			tel.DrainTrace()
		}
	}()
	// Control plane: repeated policy swaps re-register the collectors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20 && !stop.Load(); i++ {
			if err := s.Swap(pol); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 200_000; i++ {
		s.Schedule(0, uint32(i%workers), 64)
	}
	stop.Store(true)
	wg.Wait()

	// The exporters must still render a coherent document afterwards.
	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fv_class_fwd_packets_total") {
		t.Fatalf("scrape after run lacks class counters:\n%s", sb.String())
	}
}

// TestTelemetryEndToEnd drives the public telemetry surface: attach via
// Options, schedule traffic, and check the metrics and trace reflect it.
func TestTelemetryEndToEnd(t *testing.T) {
	tel := flowvalve.NewTelemetry(flowvalve.TelemetryOptions{TraceSampleEvery: 1, TraceBufferSize: 1 << 12})
	s, err := flowvalve.NewScheduler(flowvalve.MotivationPolicy(), flowvalve.NewWallClock(), flowvalve.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := s.Schedule(0, 1, 1500); d.Verdict != flowvalve.Forward {
			t.Fatalf("packet %d: %v", i, d.Verdict)
		}
	}

	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels,omitempty"`
			Value  float64           `json:"value"`
		} `json:"metrics"`
	}
	var sb strings.Builder
	if err := tel.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	var fwd float64
	for _, m := range doc.Metrics {
		if m.Name == "fv_class_fwd_packets_total" && m.Labels["class"] == "1:1" {
			fwd = m.Value
		}
	}
	if fwd != 100 {
		t.Fatalf("fv_class_fwd_packets_total{class=\"1:1\"} = %v, want 100", fwd)
	}

	events := tel.DrainTrace()
	if len(events) != 100 {
		t.Fatalf("traced %d events at sample rate 1, want 100", len(events))
	}
	for _, ev := range events {
		if ev.Class != "1:1" || ev.Verdict != flowvalve.Forward || ev.Size != 1500 {
			t.Fatalf("unexpected trace event %+v", ev)
		}
	}
	if tel.Dump() == "" {
		t.Fatal("Dump returned empty exposition")
	}
}

// TestStatsExposesTokenStateAndMarks verifies the ClassStats fields fed
// from the scheduler's runtime state: bucket levels are populated and the
// mark/lent counters are plumbed through.
func TestStatsExposesTokenStateAndMarks(t *testing.T) {
	s, err := flowvalve.NewScheduler(flowvalve.MotivationPolicy(), flowvalve.NewWallClock(), flowvalve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(0, 1, 1500)
	var sawTokens bool
	for _, st := range s.Stats() {
		if st.BucketTokens != 0 || st.ShadowTokens != 0 {
			sawTokens = true
		}
		if st.MarkPkts < 0 || st.LentBytes < 0 {
			t.Fatalf("class %s: negative counters %+v", st.Class, st)
		}
	}
	if !sawTokens {
		t.Fatal("no class reports token-bucket state")
	}
}
