module flowvalve

go 1.22
