// Command fv is the FlowValve front end: it parses fv policy scripts
// (tc-inherited syntax, §III-E of the paper), validates them, and prints
// the compiled scheduling tree and filter rules — what the real front
// end would populate into the SmartNIC shared memory.
//
// Usage:
//
//	fv -f policy.fv          # compile and show a script file
//	fv -f -                  # read the script from stdin
//	fv -motivation           # show the paper's canonical example
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flowvalve/internal/classifier"
	"flowvalve/internal/fvconf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fv:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fv", flag.ContinueOnError)
	file := fs.String("f", "", "policy script file ('-' for stdin)")
	motivation := fs.Bool("motivation", false, "show the paper's motivation policy")
	dumpTables := fs.Bool("dump-tables", false, "also dump the compiled match-action tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var text string
	switch {
	case *motivation:
		text = fvconf.MotivationScript
	case *file == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		text = string(b)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		text = string(b)
	default:
		return fmt.Errorf("nothing to do: pass -f FILE or -motivation")
	}

	script, err := fvconf.Parse(text)
	if err != nil {
		return err
	}
	desc, err := script.Describe()
	if err != nil {
		return err
	}
	if _, err := io.WriteString(out, desc); err != nil {
		return err
	}
	if *dumpTables {
		t, rules, err := script.Compile()
		if err != nil {
			return err
		}
		cls, err := classifier.New(t, rules, script.DefaultClass)
		if err != nil {
			return err
		}
		for _, tbl := range cls.Pipeline().Tables() {
			if _, err := io.WriteString(out, tbl.Dump()); err != nil {
				return err
			}
		}
	}
	return nil
}
