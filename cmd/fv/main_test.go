package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMotivation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-motivation"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"qdisc 1:", "guarantee 2gbit", "filter app 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.fv")
	script := "qdisc add dev x root handle 1: htb rate 1gbit\n" +
		"class add dev x parent 1: classid 1:1\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-f", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "class 1:1") {
		t.Fatalf("output missing class:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no-args run succeeded")
	}
	if err := run([]string{"-f", "/does/not/exist.fv"}, &sb); err == nil {
		t.Fatal("missing file succeeded")
	}
	path := filepath.Join(t.TempDir(), "bad.fv")
	if err := os.WriteFile(path, []byte("gibberish here"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", path}, &sb); err == nil {
		t.Fatal("bad script succeeded")
	}
}

func TestRunTestdataPolicies(t *testing.T) {
	for _, f := range []string{"testdata/motivation.fv", "testdata/chained.fv"} {
		var sb strings.Builder
		if err := run([]string{"-f", f, "-dump-tables"}, &sb); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		out := sb.String()
		if !strings.Contains(out, "table filters") {
			t.Errorf("%s: table dump missing:\n%s", f, out)
		}
	}
}

func TestDumpTablesShowsMatches(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "testdata/chained.fv", "-dump-tables"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "l4.dport=0x1453") { // 5203
		t.Fatalf("u32 match missing from dump:\n%s", sb.String())
	}
}
