// Command fvbench is a packet-rate microbenchmark for the SmartNIC model
// and the scheduling function: it saturates FlowValve with fixed-size
// packets and reports delivered Mpps/Gbps — the tool behind the Fig 13
// sweep, exposed for ad-hoc what-if runs (different core counts, clock
// frequencies, packet sizes, tree depths).
//
// Usage:
//
//	fvbench -size 64 -cores 50 -freq 800e6 -duration 100ms
//	fvbench -size 1518 -depth 4           # deeper scheduling trees
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/nic"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/trafficgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fvbench", flag.ContinueOnError)
	size := fs.Int("size", 64, "frame size in bytes (incl. FCS)")
	cores := fs.Int("cores", 50, "NP worker contexts")
	freq := fs.Float64("freq", 800e6, "NP core frequency (Hz)")
	wire := fs.Float64("wire", 40e9, "wire rate (bits/s)")
	depth := fs.Int("depth", 1, "scheduling-tree depth below the root")
	duration := fs.Duration("duration", 100*time.Millisecond, "measurement window (simulated)")
	metricsJSON := fs.String("metrics-json", "", "write a JSON metrics snapshot to this file after the run (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *metricsJSON != "" {
		reg = telemetry.NewRegistry()
	}

	t, rules, err := chainPolicy(*wire, *depth)
	if err != nil {
		return err
	}
	eng := sim.New()
	cls, err := classifier.New(t, rules, "")
	if err != nil {
		return err
	}
	sched, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return err
	}
	if reg != nil {
		sched.AttachTelemetry(reg, nil)
	}

	warm := duration.Nanoseconds()
	var delivered uint64
	dev, err := nic.New(eng, nic.Config{
		Cores:       *cores,
		CoreFreqHz:  *freq,
		WireRateBps: *wire,
		WirePorts:   4,
	}, cls, sched, nic.Callbacks{
		OnDeliver: func(p *packet.Packet) {
			if p.EgressAt >= warm {
				delivered++
			}
		},
	})
	if err != nil {
		return err
	}
	if reg != nil {
		dev.AttachTelemetry(reg)
	}

	cfg := dev.Config()
	procPps := float64(cfg.Cores) * cfg.CoreFreqHz / float64(cfg.Costs.PerPacket(*depth+1))
	linePps := *wire / float64((*size+packet.WireOverhead)*8)
	offeredPps := 1.3 * min(linePps, procPps)

	alloc := &packet.Alloc{}
	flows := make([]packet.FlowID, 16)
	for i := range flows {
		flows[i] = packet.FlowID(i)
	}
	if _, err := trafficgen.NewSaturator(eng, alloc, flows, 0, *size,
		offeredPps*float64(*size)*8, 0, 2*warm, dev.Inject); err != nil {
		return err
	}
	eng.RunUntil(2 * warm)

	pps := float64(delivered) / duration.Seconds()
	st := dev.Stats()
	fmt.Fprintf(out, "size=%dB cores=%d freq=%.0fMHz depth=%d\n", *size, *cores, *freq/1e6, *depth)
	fmt.Fprintf(out, "delivered: %.2f Mpps  (%.2f Gbps wire)\n", pps/1e6, pps*float64(*size+packet.WireOverhead)*8/1e9)
	fmt.Fprintf(out, "bottleneck: line=%.2f Mpps  processing=%.2f Mpps\n", linePps/1e6, procPps/1e6)
	fmt.Fprintf(out, "drops: sched=%d rx-ring=%d tm=%d\n", st.SchedDrops, st.RxRingDrops, st.TMDrops)
	if reg != nil {
		w := out
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}

// chainPolicy builds a policy whose leaf sits `depth` levels below the
// root, with a single match-all rule — isolating per-class scheduling
// cost.
func chainPolicy(wireBps float64, depth int) (*tree.Tree, []classifier.Rule, error) {
	if depth < 1 {
		depth = 1
	}
	b := tree.NewBuilder().Root("root", wireBps)
	parent := "root"
	for d := 1; d <= depth; d++ {
		name := fmt.Sprintf("c%d", d)
		b.Add(tree.ClassSpec{Name: name, Parent: parent})
		parent = name
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	rules := []classifier.Rule{{App: classifier.AnyApp, Flow: classifier.AnyFlow, Class: parent}}
	return t, rules, nil
}
