// Command fvbench is a packet-rate microbenchmark for the SmartNIC model
// and the scheduling function: it saturates a backend with fixed-size
// packets and reports delivered Mpps/Gbps — the tool behind the Fig 13
// sweep, exposed for ad-hoc what-if runs (different core counts, clock
// frequencies, packet sizes, tree depths, service batch sizes).
//
// Every backend is driven through the dataplane.Qdisc interface and
// measured with the same delivered-packet counter, so the numbers are
// comparable by construction.
//
// Usage:
//
//	fvbench -size 64 -cores 50 -freq 800e6 -duration 100ms
//	fvbench -size 1518 -depth 4           # deeper scheduling trees
//	fvbench -size 64 -batch 8             # batched Rx service
//	fvbench -backend dpdk -cores 4        # DPDK QoS baseline
//	fvbench -backend sppifo -rank wfq     # programmable-scheduler family
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowvalve/internal/classifier"
	"flowvalve/internal/clock"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/dpdkqos"
	"flowvalve/internal/experiments"
	"flowvalve/internal/nic"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
	"flowvalve/internal/pifo"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/trafficgen"
)

// pifoApps is the number of competing senders driven at the
// programmable-scheduler family: one rank-policy slot per app.
const pifoApps = 4

// backendNames is the single source of truth for -backend: the two
// FlowValve-era backends plus the whole pifo registry. Flag help and
// the unknown-backend error both derive from it.
func backendNames() []string {
	return append([]string{"flowvalve", "dpdk"}, pifo.BackendNames()...)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fvbench", flag.ContinueOnError)
	backend := fs.String("backend", "flowvalve", "backend to drive: "+strings.Join(backendNames(), " | "))
	rank := fs.String("rank", pifo.PolicyWFQ, "rank policy for pifo-family backends: "+strings.Join(pifo.PolicyNames(), " | "))
	size := fs.Int("size", 64, "frame size in bytes (incl. FCS)")
	cores := fs.Int("cores", 0, "worker cores (default: 50 NP contexts for flowvalve, 4 poll-mode cores for dpdk)")
	freq := fs.Float64("freq", 800e6, "NP core frequency (Hz)")
	wire := fs.Float64("wire", 40e9, "wire rate (bits/s)")
	depth := fs.Int("depth", 1, "scheduling-tree depth below the root (flowvalve)")
	batch := fs.Int("batch", 1, "NIC Rx service batch size (flowvalve; 1 = per-packet pipeline)")
	shards := fs.Int("shards", 1, "scheduler shards (flowvalve; >1 switches to a tenant tree partitioned across shards)")
	procs := fs.Int("procs", 0, "wall-clock parallel mode: run N scheduler shards on N producer/worker pairs and report pps scaling (bypasses the DES)")
	nflows := fs.Int("flows", 16, "distinct transport flows offered (drive past -cache-size to exercise eviction)")
	cacheSize := fs.Int("cache-size", 0, "flow-cache entry bound (flowvalve; 0 = default 65536)")
	cacheShards := fs.Int("cache-shards", 0, "flow-cache shard count (flowvalve; 0 = default 8)")
	offloadOn := fs.Bool("offload", false, "attach the offload control plane: only heavy hitters ride the fast path (flowvalve)")
	slowQdisc := fs.String("slowpath-qdisc", nic.SlowQdiscHTB, "slow-path scheduler for non-offloaded flows (with -offload): htb | prio")
	churnRate := fs.Float64("churn-rate", 0, "short-lived mouse-flow arrivals per second on the last app (flowvalve; 0 = none)")
	ruleRate := fs.Float64("rule-rate", 220e3, "offload rule-channel budget in rules/s (with -offload)")
	duration := fs.Duration("duration", 100*time.Millisecond, "measurement window (simulated)")
	metricsJSON := fs.String("metrics-json", "", "write a JSON metrics snapshot to this file after the run (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		return runProcs(out, *procs, *size, *wire, *duration)
	}
	var reg *telemetry.Registry
	if *metricsJSON != "" {
		reg = telemetry.NewRegistry()
	}

	warm := duration.Nanoseconds()
	eng := sim.New()
	counter := &experiments.DeliveredCounter{WarmNs: warm}

	var (
		q       dataplane.Qdisc
		procPps float64
		header  string
		err     error
		ssched  *core.ShardedScheduler
		tenants int
	)
	switch *backend {
	case "flowvalve":
		cacheCfg := classifier.CacheConfig{Size: *cacheSize, Shards: *cacheShards}
		if *shards > 1 {
			tenants = 2 * *shards
		}
		q, ssched, procPps, header, err = buildFlowValve(eng, counter, reg, *size, *cores, *freq, *wire, *depth, *batch, *shards, tenants, cacheCfg, *offloadOn, *ruleRate, *slowQdisc)
	case "dpdk":
		q, procPps, header, err = buildDPDK(eng, counter, reg, *cores, *wire)
	default:
		if !pifo.IsBackend(*backend) {
			return fmt.Errorf("unknown backend %q (want %s)", *backend, strings.Join(backendNames(), " | "))
		}
		q, procPps, header, err = buildPifo(eng, counter, reg, *backend, *rank, *size, *wire)
	}
	if err != nil {
		return err
	}

	linePps := *wire / float64((*size+packet.WireOverhead)*8)
	offeredPps := 1.3 * min(linePps, procPps)

	alloc := &packet.Alloc{}
	if *nflows < 1 {
		*nflows = 1
	}
	flows := make([]packet.FlowID, *nflows)
	for i := range flows {
		flows[i] = packet.FlowID(i)
	}
	if pifo.IsBackend(*backend) {
		// The rank policies differentiate by app slot, so the family is
		// driven by pifoApps equal competing senders instead of one.
		perAppBps := offeredPps * float64(*size) * 8 / pifoApps
		for a := 0; a < pifoApps; a++ {
			if _, err := trafficgen.NewSaturator(eng, alloc, flows, packet.AppID(a), *size,
				perAppBps, 0, 2*warm, q.Enqueue); err != nil {
				return err
			}
		}
	} else if tenants > 0 {
		// Sharded mode: one sender per tenant app, so traffic spreads
		// across every scheduler shard's partition.
		perAppBps := offeredPps * float64(*size) * 8 / float64(tenants)
		for a := 0; a < tenants; a++ {
			if _, err := trafficgen.NewSaturator(eng, alloc, flows, packet.AppID(a), *size,
				perAppBps, 0, 2*warm, q.Enqueue); err != nil {
				return err
			}
		}
	} else if _, err := trafficgen.NewSaturator(eng, alloc, flows, 0, *size,
		offeredPps*float64(*size)*8, 0, 2*warm, q.Enqueue); err != nil {
		return err
	}
	if *churnRate > 0 {
		// Mouse-flow churn rides on the last app, flow IDs far above the
		// saturator's so every arrival is a brand-new connection.
		churnApp := packet.AppID(0)
		if tenants > 0 {
			churnApp = packet.AppID(tenants - 1)
		}
		if _, err := trafficgen.NewChurn(eng, alloc, churnApp, *size,
			*churnRate, 8, 2_000, packet.FlowID(1<<20), 0, 2*warm, 1, q.Enqueue); err != nil {
			return err
		}
	}
	eng.RunUntil(2 * warm)

	pps := counter.Pps(warm)
	st := q.QdiscStats()
	fmt.Fprintf(out, "%s\n", header)
	fmt.Fprintf(out, "delivered: %.2f Mpps  (%.2f Gbps wire)\n", pps/1e6, pps*float64(*size+packet.WireOverhead)*8/1e9)
	fmt.Fprintf(out, "bottleneck: line=%.2f Mpps  processing=%.2f Mpps\n", linePps/1e6, procPps/1e6)
	fmt.Fprintf(out, "enqueued=%d delivered=%d dropped=%d\n", st.Enqueued, st.Delivered, st.Dropped)
	if dev, ok := q.(*nic.NIC); ok {
		ns := dev.Stats()
		fmt.Fprintf(out, "drops: sched=%d rx-ring=%d tm=%d shard-ring=%d\n",
			ns.SchedDrops, ns.RxRingDrops, ns.TMDrops, ns.ShardRingDrops)
	}
	if ssched != nil {
		fmt.Fprintf(out, "shards: n=%d settles=%d\n", ssched.Shards(), ssched.Settles())
	}
	if fc, ok := q.(dataplane.FlowCacher); ok {
		cs := fc.FlowCacheStats()
		fmt.Fprintf(out, "flowcache: hits=%d misses=%d evictions=%d size=%d/%d (shards=%d)\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Size, cs.Capacity, cs.Shards)
	}
	if acct, ok := q.(dataplane.HostAccountant); ok {
		fmt.Fprintf(out, "host cores: %.2f\n", acct.HostCores(2*warm))
	}
	if off, ok := q.(dataplane.Offloader); ok {
		if os := off.OffloadStats(); os.Enabled {
			tot := os.FastPkts + os.SlowPkts
			var slowShare float64
			if tot > 0 {
				slowShare = float64(os.SlowPkts) / float64(tot)
			}
			fmt.Fprintf(out, "offload: policy=%s flows=%d/%d slow-share=%.1f%% threshold=%dB installs=%d demotions=%d queue-drops=%d shed=%d\n",
				os.Policy, os.Offloaded, os.TableCap, slowShare*100,
				os.ThresholdBytes, os.Installs, os.Demotions, os.QueueDrops, os.SlowPathDrops)
		}
	}
	if pq, ok := q.(*pifo.Qdisc); ok {
		qs := pq.QueueStats()
		fmt.Fprintf(out, "pifo: inversions=%d drops(rank/full/evict)=%d/%d/%d adaptations(up/down)=%d/%d\n",
			pq.Inversions(), qs.RankDrops, qs.FullDrops, qs.EvictDrops, qs.PushUps, qs.PushDowns)
	}
	if reg != nil {
		w := out
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}

// buildFlowValve assembles the offloaded backend on the NIC model. With
// shards > 1 the chain policy is replaced by a tenant tree (one subtree
// per tenant, `tenants` of them) partitioned across scheduler shards,
// and the NIC pays the shard steer/doorbell costs.
func buildFlowValve(eng *sim.Engine, counter *experiments.DeliveredCounter, reg *telemetry.Registry,
	size, cores int, freq, wire float64, depth, batch, shards, tenants int,
	cache classifier.CacheConfig, offloadOn bool, ruleRate float64, slowQdisc string) (dataplane.Qdisc, *core.ShardedScheduler, float64, string, error) {
	if cores <= 0 {
		cores = 50
	}
	var (
		t     *tree.Tree
		rules []classifier.Rule
		err   error
	)
	if shards > 1 {
		t, rules, err = tenantPolicy(wire, tenants)
	} else {
		t, rules, err = chainPolicy(wire, depth)
	}
	if err != nil {
		return nil, nil, 0, "", err
	}
	cls, err := classifier.NewSized(t, rules, "", cache)
	if err != nil {
		return nil, nil, 0, "", err
	}
	sched, err := core.NewSharded(t, eng.Clock(), core.Config{}, core.ShardConfig{Shards: shards})
	if err != nil {
		return nil, nil, 0, "", err
	}
	if reg != nil {
		sched.AttachTelemetry(reg, nil)
	}
	cb := counter.Callbacks()
	dev, err := nic.New(eng, nic.Config{
		Cores:       cores,
		CoreFreqHz:  freq,
		WireRateBps: wire,
		WirePorts:   4,
		BatchSize:   batch,
	}, cls, sched, nic.Callbacks{OnDeliver: cb.OnDeliver})
	if err != nil {
		return nil, nil, 0, "", err
	}
	if offloadOn {
		ctl, err := offload.New(offload.Config{RulesPerSec: ruleRate})
		if err != nil {
			return nil, nil, 0, "", err
		}
		if err := dev.AttachOffload(ctl, nic.SlowPathConfig{Qdisc: slowQdisc}); err != nil {
			return nil, nil, 0, "", err
		}
	}
	if reg != nil {
		dev.AttachTelemetry(reg)
	}
	cfg := dev.Config()
	procPps := float64(cfg.Cores) * cfg.CoreFreqHz / float64(cfg.Costs.PerPacket(depth+1))
	header := fmt.Sprintf("backend=flowvalve size=%dB cores=%d freq=%.0fMHz depth=%d batch=%d",
		size, cores, freq/1e6, depth, cfg.BatchSize)
	if shards > 1 {
		header += fmt.Sprintf(" shards=%d tenants=%d", shards, tenants)
	}
	if offloadOn {
		header += fmt.Sprintf(" offload=on rule-rate=%.0fk/s slowpath=%s", ruleRate/1e3, slowQdisc)
	}
	return dev, sched, procPps, header, nil
}

// buildPifo assembles one programmable-scheduler backend from the pifo
// registry. The structures are O(log n) or better and not the modelled
// bottleneck, so the processing bound is the wire itself.
func buildPifo(eng *sim.Engine, counter *experiments.DeliveredCounter, reg *telemetry.Registry,
	backend, rank string, size int, wire float64) (dataplane.Qdisc, float64, string, error) {
	pol, err := pifo.NewPolicy(rank, pifoApps, wire)
	if err != nil {
		return nil, 0, "", err
	}
	cfg := pifo.Config{Backend: backend, LinkRateBps: wire}
	cfg.Defaults()
	q, err := pifo.NewQdisc(eng, cfg, pol, counter.Callbacks())
	if err != nil {
		return nil, 0, "", err
	}
	if reg != nil {
		q.AttachTelemetry(reg)
	}
	procPps := wire / float64((size+packet.WireOverhead)*8)
	header := fmt.Sprintf("backend=%s rank=%s size=%dB cap=%dpkts", backend, rank, size, cfg.CapPkts)
	return q, procPps, header, nil
}

// buildDPDK assembles the DPDK QoS Scheduler baseline: four fair pipes
// on dedicated poll-mode cores.
func buildDPDK(eng *sim.Engine, counter *experiments.DeliveredCounter, reg *telemetry.Registry,
	cores int, wire float64) (dataplane.Qdisc, float64, string, error) {
	if cores <= 0 {
		cores = 4
	}
	pipe := dpdkqos.PipeConfig{RateBps: wire / 4}
	cfg := dpdkqos.Config{
		LinkRateBps: wire,
		Cores:       cores,
		Pipes:       []dpdkqos.PipeConfig{pipe, pipe, pipe, pipe},
	}.Defaults()
	sched, err := dpdkqos.New(eng, cfg,
		func(p *packet.Packet) int { return int(p.Flow) % len(cfg.Pipes) },
		counter.Callbacks())
	if err != nil {
		return nil, 0, "", err
	}
	if reg != nil {
		sched.AttachTelemetry(reg)
	}
	procPps := float64(cores) * cfg.Host.FreqHz / float64(cfg.CyclesPerPkt)
	header := fmt.Sprintf("backend=dpdk cores=%d", cores)
	return sched, procPps, header, nil
}

// chainPolicy builds a policy whose leaf sits `depth` levels below the
// root, with a single match-all rule — isolating per-class scheduling
// cost.
func chainPolicy(wireBps float64, depth int) (*tree.Tree, []classifier.Rule, error) {
	if depth < 1 {
		depth = 1
	}
	b := tree.NewBuilder().Root("root", wireBps)
	parent := "root"
	for d := 1; d <= depth; d++ {
		name := fmt.Sprintf("c%d", d)
		b.Add(tree.ClassSpec{Name: name, Parent: parent})
		parent = name
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	rules := []classifier.Rule{{App: classifier.AnyApp, Flow: classifier.AnyFlow, Class: parent}}
	return t, rules, nil
}

// tenantPolicy builds one subtree per tenant — tenant<K> holding a
// single leaf t<K>app guaranteed half its fair share, borrowing the
// rest from root's shadow bucket. Sharded schedulers partition whole
// tenant subtrees, so root is the only split class and the borrow
// labels exercise cross-shard leases. App K maps to tenant K's leaf.
func tenantPolicy(wireBps float64, tenants int) (*tree.Tree, []classifier.Rule, error) {
	if tenants < 1 {
		tenants = 1
	}
	b := tree.NewBuilder().Root("root", wireBps)
	rules := make([]classifier.Rule, 0, tenants)
	for k := 0; k < tenants; k++ {
		tn := fmt.Sprintf("tenant%d", k)
		leaf := fmt.Sprintf("t%dapp", k)
		b.Add(tree.ClassSpec{Name: tn, Parent: "root", Weight: 1})
		b.Add(tree.ClassSpec{
			Name: leaf, Parent: tn, Weight: 1,
			RateBps:    wireBps / float64(2*tenants),
			BorrowFrom: []string{"root"},
		})
		rules = append(rules, classifier.Rule{App: k, Flow: classifier.AnyFlow, Class: leaf})
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return t, rules, nil
}

// runProcs is the wall-clock parallel mode: no DES, no NIC model —
// just N scheduler shards on their worker goroutines, fed through the
// MPSC rings by N producers. It reports raw scheduled pps, the number
// to compare across -procs values for the scaling curve.
func runProcs(out io.Writer, procs, size int, wire float64, dur time.Duration) error {
	if procs < 1 {
		procs = 1
	}
	tenants := 2 * procs
	t, _, err := tenantPolicy(wire, tenants)
	if err != nil {
		return err
	}
	sched, err := core.NewSharded(t, clock.NewWall(), core.Config{},
		core.ShardConfig{Shards: procs})
	if err != nil {
		return err
	}
	labels := make([]*tree.Label, tenants)
	for a := 0; a < tenants; a++ {
		lbl, ok := t.LabelByName(fmt.Sprintf("t%dapp", a))
		if !ok {
			return fmt.Errorf("tenant leaf t%dapp missing", a)
		}
		labels[a] = lbl
	}
	if err := sched.StartWorkers(); err != nil {
		return err
	}
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Offset the starting tenant so producers do not march in
			// lockstep over the same shard's ring.
			i := 2 * p
			for !stop.Load() {
				if !sched.Feed(labels[i%tenants], size) {
					runtime.Gosched()
					continue
				}
				i++
			}
		}(p)
	}
	start := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	sched.StopWorkers()
	secs := time.Since(start).Seconds()
	pps := float64(sched.Processed()) / secs
	fmt.Fprintf(out, "procs=%d gomaxprocs=%d shards=%d tenants=%d size=%dB\n",
		procs, runtime.GOMAXPROCS(0), sched.Shards(), tenants, size)
	fmt.Fprintf(out, "scheduled: %.2f Mpps over %.3fs  ring-drops=%d settles=%d\n",
		pps/1e6, secs, sched.RingDrops(), sched.Settles())
	return nil
}
