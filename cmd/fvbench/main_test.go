package main

import (
	"strings"
	"testing"

	"flowvalve/internal/pifo"
)

func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "64", "-duration", "10ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"delivered:", "bottleneck:", "Mpps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeepTree(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "1518", "-depth", "4", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "depth=4") {
		t.Fatal("depth not reflected")
	}
}

func TestRunBatched(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "64", "-batch", "8", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "batch=8") {
		t.Fatalf("batch size not reflected:\n%s", out)
	}
	if !strings.Contains(out, "delivered:") {
		t.Fatalf("output missing delivered line:\n%s", out)
	}
}

func TestRunDPDKBackend(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "dpdk", "-size", "64", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"backend=dpdk", "delivered:", "host cores:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownBackend(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-backend", "nonesuch"}, &sb)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The error enumerates the registry-derived backend set, not a
	// hand-maintained list.
	for _, want := range []string{"flowvalve", "dpdk", "sppifo", "eiffel"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %v does not list backend %q", err, want)
		}
	}
}

func TestRunPifoBackends(t *testing.T) {
	for _, backend := range pifo.BackendNames() {
		t.Run(backend, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-backend", backend, "-size", "1000", "-duration", "5ms"}, &sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range []string{"backend=" + backend, "rank=wfq", "delivered:", "pifo: inversions="} {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunPifoRankPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "eiffel", "-rank", "deadline", "-size", "1000", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rank=deadline") {
		t.Fatalf("rank policy not reflected:\n%s", sb.String())
	}
}

func TestRunPifoBadRank(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "pifo", "-rank", "nonesuch"}, &sb); err == nil {
		t.Fatal("unknown rank policy accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "notanumber"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
