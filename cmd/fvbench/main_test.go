package main

import (
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "64", "-duration", "10ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"delivered:", "bottleneck:", "Mpps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeepTree(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "1518", "-depth", "4", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "depth=4") {
		t.Fatal("depth not reflected")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "notanumber"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
