package main

import (
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "64", "-duration", "10ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"delivered:", "bottleneck:", "Mpps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeepTree(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "1518", "-depth", "4", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "depth=4") {
		t.Fatal("depth not reflected")
	}
}

func TestRunBatched(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "64", "-batch", "8", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "batch=8") {
		t.Fatalf("batch size not reflected:\n%s", out)
	}
	if !strings.Contains(out, "delivered:") {
		t.Fatalf("output missing delivered line:\n%s", out)
	}
}

func TestRunDPDKBackend(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "dpdk", "-size", "64", "-duration", "5ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"backend=dpdk", "delivered:", "host cores:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownBackend(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "nonesuch"}, &sb); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-size", "notanumber"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
