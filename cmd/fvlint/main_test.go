package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"flowvalve/internal/analysis"
)

// TestRepoClean is the dogfood gate: the whole module must lint clean
// with the default tag set. Every suppression in the tree carries a
// justification, so a failure here is a genuine new violation.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide source type-check is slow; skipped in -short")
	}
	var buf bytes.Buffer
	code, err := run(&buf, "", []string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("fvlint run: %v", err)
	}
	if code != 0 {
		t.Fatalf("fvlint found diagnostics:\n%s", buf.String())
	}
}

// TestRepoCleanFvassert lints the fvassert-tagged file set too: the
// assertion bodies themselves must honor the same invariants.
func TestRepoCleanFvassert(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide source type-check is slow; skipped in -short")
	}
	var buf bytes.Buffer
	code, err := run(&buf, "fvassert", []string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("fvlint run: %v", err)
	}
	if code != 0 {
		t.Fatalf("fvlint -tags fvassert found diagnostics:\n%s", buf.String())
	}
}

func TestExpandRejectsEmpty(t *testing.T) {
	if _, err := expand([]string{t.TempDir()}); err == nil {
		t.Fatal("expected error for a directory with no Go files")
	}
}

// TestLintCoversNewPackages pins the lint surface: the repo-wide
// pattern CI runs must actually expand to the packages recent PRs
// added. A package silently dropping out of the walk (renamed, moved
// under an ignored directory) would otherwise pass CI unlinted.
func TestLintCoversNewPackages(t *testing.T) {
	dirs, err := expand([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		rel, err := filepath.Rel(filepath.Join("..", ".."), d)
		if err != nil {
			t.Fatal(err)
		}
		seen[filepath.ToSlash(rel)] = true
	}
	for _, want := range []string{
		"internal/pifo",
		"internal/experiments",
		"internal/fvassert",
		"internal/analysis",
		"internal/analysis/boxing",
		"internal/analysis/shardown",
		"internal/analysis/lockorder",
		"cmd/fvbenchstat",
		"cmd/fvbench",
		"cmd/fvsim",
		"cmd/fvlint",
	} {
		if !seen[want] {
			t.Errorf("lint walk missed %s; covered: %v", want, dirs)
		}
	}
}

// TestHotClosureCoversKnownRoots pins the interprocedural hot closure:
// the scheduling functions the bench gate guards must be //fv:hotpath
// roots, and the closure must actually reach the shared helpers they
// lean on. A root silently losing its annotation (or a coldpath cut
// accidentally severing a genuinely hot edge) would let the boxing
// analyzer go blind on exactly the code the ns/pkt budget protects.
func TestHotClosureCoversKnownRoots(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide source type-check is slow; skipped in -short")
	}
	root := filepath.Join("..", "..")
	dirs, err := expand([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(analysis.Config{Dir: dirs[0]})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	g := analysis.ModuleCallGraph(loader.Fset(), pkgs)
	roots := map[string]bool{}
	hot := map[string]bool{}
	for _, n := range g.Nodes() {
		name := analysis.FuncName(n.Obj)
		if n.HotRoot {
			roots[name] = true
		}
		if n.Hot {
			hot[name] = true
		}
	}
	for _, want := range []string{
		"core.(Scheduler).Schedule",
		"core.(Scheduler).ScheduleBatch",
		"core.(Scheduler).scheduleBatchOwner",
		"core.(ShardedScheduler).ScheduleBatch",
		"classifier.(Classifier).LookupEv",
		"classifier.(Classifier).ClassifyBatchSteerEv",
		"nic.(NIC).beginServiceBatch",
		"pifo.(Sched).ScheduleBatch",
	} {
		if !roots[want] {
			t.Errorf("%s is not a //fv:hotpath root — the boxing analyzer no longer polices it", want)
		}
	}
	// Shared helpers that must stay inside the closure via propagation,
	// not annotation: if an edge cut severs them, boxing goes blind.
	for _, want := range []string{
		"core.(Scheduler).maybeUpdate",
		"core.(shardCtx).tryLease",
		"token.(Bucket).TryConsume",
	} {
		if !hot[want] {
			t.Errorf("%s fell out of the hot closure — a coldpath cut severed a genuinely hot edge", want)
		}
	}
}
