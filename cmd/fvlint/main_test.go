package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestRepoClean is the dogfood gate: the whole module must lint clean
// with the default tag set. Every suppression in the tree carries a
// justification, so a failure here is a genuine new violation.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide source type-check is slow; skipped in -short")
	}
	var buf bytes.Buffer
	code, err := run(&buf, "", []string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("fvlint run: %v", err)
	}
	if code != 0 {
		t.Fatalf("fvlint found diagnostics:\n%s", buf.String())
	}
}

// TestRepoCleanFvassert lints the fvassert-tagged file set too: the
// assertion bodies themselves must honor the same invariants.
func TestRepoCleanFvassert(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide source type-check is slow; skipped in -short")
	}
	var buf bytes.Buffer
	code, err := run(&buf, "fvassert", []string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("fvlint run: %v", err)
	}
	if code != 0 {
		t.Fatalf("fvlint -tags fvassert found diagnostics:\n%s", buf.String())
	}
}

func TestExpandRejectsEmpty(t *testing.T) {
	if _, err := expand([]string{t.TempDir()}); err == nil {
		t.Fatal("expected error for a directory with no Go files")
	}
}

// TestLintCoversNewPackages pins the lint surface: the repo-wide
// pattern CI runs must actually expand to the packages recent PRs
// added. A package silently dropping out of the walk (renamed, moved
// under an ignored directory) would otherwise pass CI unlinted.
func TestLintCoversNewPackages(t *testing.T) {
	dirs, err := expand([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		rel, err := filepath.Rel(filepath.Join("..", ".."), d)
		if err != nil {
			t.Fatal(err)
		}
		seen[filepath.ToSlash(rel)] = true
	}
	for _, want := range []string{
		"internal/pifo",
		"internal/experiments",
		"internal/fvassert",
		"internal/analysis",
		"cmd/fvbenchstat",
		"cmd/fvbench",
		"cmd/fvsim",
		"cmd/fvlint",
	} {
		if !seen[want] {
			t.Errorf("lint walk missed %s; covered: %v", want, dirs)
		}
	}
}
