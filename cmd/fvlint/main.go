// Command fvlint is FlowValve's invariant checker: a multichecker that
// runs the eight internal/analysis analyzers over module packages and
// exits non-zero when any diagnostic is unsuppressed. Five are
// per-package (detnow, lockconv, atomicmix, hotpath, metricname); three
// run once over the whole loaded module through the interprocedural
// call-graph layer (boxing, shardown, lockorder).
//
// Usage:
//
//	fvlint [-tags tag,tag] [packages]
//
// Each package argument is a directory or a "dir/..." pattern; the
// default is "./...". fvlint needs no network and no pre-built export
// data: packages are type-checked from source, including the standard
// library from $GOROOT/src.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flowvalve/internal/analysis"
	"flowvalve/internal/analysis/atomicmix"
	"flowvalve/internal/analysis/boxing"
	"flowvalve/internal/analysis/detnow"
	"flowvalve/internal/analysis/hotpath"
	"flowvalve/internal/analysis/lockconv"
	"flowvalve/internal/analysis/lockorder"
	"flowvalve/internal/analysis/metricname"
	"flowvalve/internal/analysis/shardown"
)

// analyzers is the per-package fvlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	detnow.Analyzer,
	lockconv.Analyzer,
	atomicmix.Analyzer,
	hotpath.Analyzer,
	metricname.Analyzer,
}

// moduleAnalyzers run once over every loaded package together, on the
// shared static call graph.
var moduleAnalyzers = []*analysis.Analyzer{
	boxing.Analyzer,
	shardown.Analyzer,
	lockorder.Analyzer,
}

func main() {
	tags := flag.String("tags", "", "comma-separated build tags considered satisfied")
	list := flag.Bool("V", false, "print the analyzer suite and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range moduleAnalyzers {
			fmt.Printf("%-12s %s (module-wide)\n", a.Name, a.Doc)
		}
		return
	}
	code, err := run(os.Stdout, *tags, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run lints the packages named by args (default "./...") and writes one
// line per diagnostic to w. It returns 0 for a clean run and 1 when any
// diagnostic was reported.
func run(w io.Writer, tags string, args []string) (int, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		return 0, err
	}
	if len(dirs) == 0 {
		return 0, fmt.Errorf("no Go packages match %v", args)
	}
	var cfgTags []string
	for _, t := range strings.Split(tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cfgTags = append(cfgTags, t)
		}
	}
	loader, err := analysis.NewLoader(analysis.Config{Dir: dirs[0], Tags: cfgTags})
	if err != nil {
		return 0, err
	}
	cwd, _ := os.Getwd()
	count := 0
	report := func(a *analysis.Analyzer, d analysis.Diagnostic) {
		count++
		pos := loader.Fset().Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, a.Name, d.Message)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return 0, err
		}
		pkgs = append(pkgs, pkg)
		if err := analysis.RunAnalyzers(pkg, analyzers, report); err != nil {
			return 0, err
		}
	}
	// Module analyzers see every linted package at once: the hot-path
	// closure, owner escapes and lock edges all cross package borders.
	if err := analysis.RunModuleAnalyzers(loader.Fset(), pkgs, moduleAnalyzers, report); err != nil {
		return 0, err
	}
	if count > 0 {
		fmt.Fprintf(w, "fvlint: %d diagnostic(s)\n", count)
		return 1, nil
	}
	return 0, nil
}

// expand resolves "dir/..." patterns and plain directories into the
// sorted list of package directories to lint.
func expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "..."); ok {
			root = filepath.Clean(strings.TrimSuffix(root, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return fs.SkipDir
				}
				ok, err := hasGoFiles(path)
				if err != nil {
					return err
				}
				if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		ok, err := hasGoFiles(arg)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("no non-test Go files in %s", arg)
		}
		add(filepath.Clean(arg))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}
