package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: flowvalve
BenchmarkScheduleBatch32-8   	  100000	      1000 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleBatch32-8   	  100000	      1200 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleBatch32-8   	  100000	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkPifoScheduleBatch32/pifo-8  	  200000	       760.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkPifoScheduleBatch32/pifo-8  	  200000	       750.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkOther-8             	  500000	       300 ns/op	      16 B/op	       1 allocs/op
PASS
`

func TestParseBenchMedians(t *testing.T) {
	base, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(base.Benchmarks), base.Benchmarks)
	}
	byName := map[string]Summary{}
	for _, s := range base.Benchmarks {
		byName[s.Name] = s
	}
	root := byName["BenchmarkScheduleBatch32"]
	if root.Runs != 3 || root.NsPerOp != 1100 || root.MinNsPerOp != 1000 {
		t.Fatalf("root summary %+v: want 3 runs, median 1100, min 1000 ns/op", root)
	}
	sub := byName["BenchmarkPifoScheduleBatch32/pifo"]
	if sub.Runs != 2 || sub.NsPerOp != 755.5 || sub.MinNsPerOp != 750.5 {
		t.Fatalf("subbench summary %+v: want 2 runs, median 755.5, min 750.5 ns/op", sub)
	}
	other := byName["BenchmarkOther"]
	if other.BytesPerOp != 16 || other.AllocsPerOp != 1 {
		t.Fatalf("memory columns not parsed: %+v", other)
	}
	if len(base.Lines) != 6 {
		t.Fatalf("got %d raw lines, want 6", len(base.Lines))
	}
}

// emitBaseline runs the tool in -emit mode and returns the file path.
func emitBaseline(t *testing.T, bench string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	var sb strings.Builder
	code, err := run(strings.NewReader(bench), &sb, path, "", "ScheduleBatch32", 0.15, -1, false)
	if err != nil || code != 0 {
		t.Fatalf("emit: code=%d err=%v", code, err)
	}
	return path
}

func TestEmitAndPrintRoundTrip(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("emitted file is not valid JSON: %v", err)
	}
	// -print must recover benchstat-consumable text: the raw lines.
	var sb strings.Builder
	code, err := run(nil, &sb, "", path, "", 0, -1, true)
	if err != nil || code != 0 {
		t.Fatalf("print: code=%d err=%v", code, err)
	}
	if !strings.Contains(sb.String(), "BenchmarkPifoScheduleBatch32/pifo-8") {
		t.Fatalf("printed text lost raw lines:\n%s", sb.String())
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	// 10% slower on every guarded bench: inside the 15% gate.
	slower := strings.ReplaceAll(sampleBench, "1000 ns/op", "1100 ns/op")
	slower = strings.ReplaceAll(slower, "1200 ns/op", "1320 ns/op")
	var sb strings.Builder
	code, err := run(strings.NewReader(slower), &sb, "", path, "ScheduleBatch32", 0.15, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("gate failed within threshold:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "within the 15% gate") {
		t.Fatalf("missing pass summary:\n%s", sb.String())
	}
}

func TestGateFailsPastThreshold(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	// Root bench 2x slower: past the gate. The unguarded Other bench
	// regressing must not matter.
	slower := strings.ReplaceAll(sampleBench, "1000 ns/op", "2000 ns/op")
	slower = strings.ReplaceAll(slower, "1200 ns/op", "2400 ns/op")
	slower = strings.ReplaceAll(slower, "1100 ns/op", "2200 ns/op")
	var sb strings.Builder
	code, err := run(strings.NewReader(slower), &sb, "", path, "ScheduleBatch32", 0.15, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("gate passed a 2x regression:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL BenchmarkScheduleBatch32") {
		t.Fatalf("missing FAIL verdict:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkOther") {
		t.Fatalf("unguarded benchmark leaked into the gate:\n%s", out)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	// A run that lost the pifo subbenches entirely.
	var kept []string
	for _, line := range strings.Split(sampleBench, "\n") {
		if !strings.Contains(line, "Pifo") {
			kept = append(kept, line)
		}
	}
	var sb strings.Builder
	code, err := run(strings.NewReader(strings.Join(kept, "\n")), &sb, "", path, "ScheduleBatch32", 0.15, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(sb.String(), "not in this run") {
		t.Fatalf("missing guarded benchmark not flagged (code=%d):\n%s", code, sb.String())
	}
}

func TestGateMatchesOrAlternatives(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	// 'A|B' guards the union; an alternative matching nothing is fine as
	// long as the other one guards something.
	var sb strings.Builder
	code, err := run(strings.NewReader(sampleBench), &sb, "", path, "ScheduleBatch32|Other", 0.15, -1, false)
	if err != nil || code != 0 {
		t.Fatalf("OR match failed (code=%d err=%v):\n%s", code, err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "BenchmarkOther") || !strings.Contains(out, "BenchmarkScheduleBatch32") {
		t.Fatalf("OR alternatives not all guarded:\n%s", out)
	}
	if !strings.Contains(out, "3 guarded benchmark(s)") {
		t.Fatalf("unexpected guard count:\n%s", out)
	}
	// Empty alternatives (stray '|') must not guard everything.
	sb.Reset()
	code, err = run(strings.NewReader(sampleBench), &sb, "", path, "ScheduleBatch32|", 0.15, -1, false)
	if err != nil || code != 0 {
		t.Fatalf("trailing '|' broke the gate (code=%d err=%v):\n%s", code, err, sb.String())
	}
	if strings.Contains(sb.String(), "BenchmarkOther") {
		t.Fatalf("empty alternative guarded everything:\n%s", sb.String())
	}
}

func TestGateFailsOnNoMatch(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	var sb strings.Builder
	code, err := run(strings.NewReader(sampleBench), &sb, "", path, "Nonesuch", 0.15, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("empty guard set passed:\n%s", sb.String())
	}
}

func TestEmitRejectsEmptyInput(t *testing.T) {
	var sb strings.Builder
	if _, err := run(strings.NewReader("no benchmarks here\n"), &sb,
		filepath.Join(t.TempDir(), "x.json"), "", "", 0.15, -1, false); err == nil {
		t.Fatal("empty bench input accepted")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/sub-16":     "BenchmarkFoo/sub",
		"BenchmarkFoo/rate-1e9-4": "BenchmarkFoo/rate-1e9",
		"BenchmarkBare":           "BenchmarkBare",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGateAllocCeiling(t *testing.T) {
	path := emitBaseline(t, sampleBench)
	// Same speed, but a guarded bench now allocates: the -max-allocs 0
	// ceiling must fail it even though ns/op is inside the threshold.
	leaky := strings.ReplaceAll(sampleBench,
		"1000 ns/op	       0 B/op	       0 allocs/op",
		"1000 ns/op	      48 B/op	       2 allocs/op")
	leaky = strings.ReplaceAll(leaky,
		"1100 ns/op	       0 B/op	       0 allocs/op",
		"1100 ns/op	      48 B/op	       2 allocs/op")
	leaky = strings.ReplaceAll(leaky,
		"1200 ns/op	       0 B/op	       0 allocs/op",
		"1200 ns/op	      48 B/op	       2 allocs/op")
	var sb strings.Builder
	code, err := run(strings.NewReader(leaky), &sb, "", path, "ScheduleBatch32", 0.15, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(sb.String(), "exceeds the 0 allocs/op ceiling") {
		t.Fatalf("alloc ceiling not enforced (code=%d):\n%s", code, sb.String())
	}
	// With the ceiling disabled the same run passes.
	sb.Reset()
	code, err = run(strings.NewReader(leaky), &sb, "", path, "ScheduleBatch32", 0.15, -1, false)
	if err != nil || code != 0 {
		t.Fatalf("disabled ceiling still failed (code=%d err=%v):\n%s", code, err, sb.String())
	}
}
