// Command fvbenchstat turns `go test -bench` text output into a
// committed JSON baseline and gates later runs against it: the CI bench
// job fails when a guarded benchmark regresses past the threshold.
//
// The JSON keeps the raw benchmark lines verbatim, so a baseline file
// is also a benchstat input: `fvbenchstat -print -baseline BENCH.json >
// old.txt` recovers text that benchstat consumes directly alongside a
// fresh run.
//
// Usage:
//
//	go test -run '^$' -bench ScheduleBatch32 -benchmem -count=5 ./... |
//	    fvbenchstat -emit BENCH_pr7.json
//
//	go test -run '^$' -bench ScheduleBatch32 -benchmem -count=5 ./... |
//	    fvbenchstat -baseline BENCH_pr7.json -match ScheduleBatch32 -threshold 0.15 -max-allocs 0
//
//	fvbenchstat -print -baseline BENCH_pr7.json   # re-emit benchstat text
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark snapshot.
type Baseline struct {
	// Note documents provenance (who emitted it, from what command).
	Note string `json:"note,omitempty"`
	// Lines holds the raw `go test -bench` lines, benchstat-consumable.
	Lines []string `json:"lines"`
	// Benchmarks summarizes each benchmark name (procs suffix stripped)
	// by its median across repetitions.
	Benchmarks []Summary `json:"benchmarks"`
}

// Summary is one benchmark's aggregated result. The gate compares
// MinNsPerOp — best-of-N is far less sensitive to scheduler noise than
// the median, which matters on shared CI runners.
type Summary struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	emit := flag.String("emit", "", "write a JSON baseline parsed from stdin to this file (- for stdout)")
	baseline := flag.String("baseline", "", "committed JSON baseline to gate against or print")
	match := flag.String("match", "ScheduleBatch32", "substring selecting the benchmarks the gate guards ('|' separates OR alternatives)")
	threshold := flag.Float64("threshold", 0.15, "maximum allowed ns/op regression fraction")
	maxAllocs := flag.Float64("max-allocs", -1, "fail any guarded benchmark whose median allocs/op exceeds this (negative disables)")
	printText := flag.Bool("print", false, "re-emit the baseline's raw benchmark lines and exit")
	flag.Parse()
	code, err := run(os.Stdin, os.Stdout, *emit, *baseline, *match, *threshold, *maxAllocs, *printText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvbenchstat:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(in io.Reader, out io.Writer, emit, baselinePath, match string, threshold, maxAllocs float64, printText bool) (int, error) {
	if printText {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			return 0, err
		}
		for _, line := range base.Lines {
			fmt.Fprintln(out, line)
		}
		return 0, nil
	}
	if emit != "" {
		base, err := parseBench(in)
		if err != nil {
			return 0, err
		}
		if len(base.Benchmarks) == 0 {
			return 0, fmt.Errorf("no benchmark lines on stdin")
		}
		base.Note = "committed bench baseline; regenerate with `make bench-json` on the reference machine"
		w := out
		if emit != "-" {
			f, err := os.Create(emit)
			if err != nil {
				return 0, err
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return 0, enc.Encode(base)
	}
	if baselinePath == "" {
		return 0, fmt.Errorf("need -emit, -print, or -baseline")
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return 0, err
	}
	cur, err := parseBench(in)
	if err != nil {
		return 0, err
	}
	return gate(out, base, cur, match, threshold, maxAllocs)
}

func loadBaseline(path string) (*Baseline, error) {
	if path == "" {
		return nil, fmt.Errorf("no -baseline given")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &base, nil
}

// gate compares the guarded benchmarks of cur against base and reports
// each verdict; any regression past the threshold (or a guarded
// baseline benchmark missing from the run) fails the gate. When
// maxAllocs is non-negative, a guarded benchmark allocating more than
// that per op also fails — the hot-path zero-allocation contract.
func gate(out io.Writer, base, cur *Baseline, match string, threshold, maxAllocs float64) (int, error) {
	current := map[string]Summary{}
	for _, s := range cur.Benchmarks {
		current[s.Name] = s
	}
	guarded, failures := 0, 0
	for _, want := range base.Benchmarks {
		if !matchAny(want.Name, match) {
			continue
		}
		guarded++
		got, ok := current[want.Name]
		if !ok {
			failures++
			fmt.Fprintf(out, "FAIL %s: in baseline but not in this run\n", want.Name)
			continue
		}
		delta := (got.MinNsPerOp - want.MinNsPerOp) / want.MinNsPerOp
		verdict := "ok  "
		if delta > threshold {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(out, "%s %s: best %.1f ns/op vs baseline %.1f ns/op (%+.1f%%, limit +%.0f%%)\n",
			verdict, want.Name, got.MinNsPerOp, want.MinNsPerOp, delta*100, threshold*100)
		if maxAllocs >= 0 && got.AllocsPerOp > maxAllocs {
			failures++
			fmt.Fprintf(out, "FAIL %s: %.1f allocs/op exceeds the %.0f allocs/op ceiling\n",
				want.Name, got.AllocsPerOp, maxAllocs)
		}
	}
	if guarded == 0 {
		fmt.Fprintf(out, "FAIL no baseline benchmark matches %q\n", match)
		return 1, nil
	}
	if failures > 0 {
		fmt.Fprintf(out, "fvbenchstat: %d of %d guarded benchmark(s) failed the %.0f%% gate\n",
			failures, guarded, threshold*100)
		return 1, nil
	}
	fmt.Fprintf(out, "fvbenchstat: %d guarded benchmark(s) within the %.0f%% gate\n", guarded, threshold*100)
	return 0, nil
}

// matchAny reports whether name contains any of the '|'-separated
// substring alternatives in match (empty alternatives are skipped, so a
// stray trailing '|' cannot guard everything by accident).
func matchAny(name, match string) bool {
	for _, alt := range strings.Split(match, "|") {
		if alt != "" && strings.Contains(name, alt) {
			return true
		}
	}
	return false
}

// parseBench reads `go test -bench` text and aggregates repetitions of
// each benchmark into a median summary.
func parseBench(in io.Reader) (*Baseline, error) {
	base := &Baseline{}
	samples := map[string][][3]float64{} // name -> per-run {ns/op, B/op, allocs/op}
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := stripProcs(fields[0])
		var vals [3]float64
		seen := false
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q: %w", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				vals[0], seen = v, true
			case "B/op":
				vals[1] = v
			case "allocs/op":
				vals[2] = v
			}
		}
		if !seen {
			continue
		}
		if _, ok := samples[name]; !ok {
			order = append(order, name)
		}
		samples[name] = append(samples[name], vals)
		base.Lines = append(base.Lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		runs := samples[name]
		base.Benchmarks = append(base.Benchmarks, Summary{
			Name:        name,
			Runs:        len(runs),
			NsPerOp:     median(runs, 0),
			MinNsPerOp:  minOf(runs, 0),
			BytesPerOp:  median(runs, 1),
			AllocsPerOp: median(runs, 2),
		})
	}
	return base, nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name so repetitions and machines with different core counts compare.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func minOf(runs [][3]float64, idx int) float64 {
	if len(runs) == 0 {
		return 0
	}
	best := runs[0][idx]
	for _, r := range runs[1:] {
		if r[idx] < best {
			best = r[idx]
		}
	}
	return best
}

func median(runs [][3]float64, idx int) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = r[idx]
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
