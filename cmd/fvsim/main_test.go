package main

import (
	"strings"
	"testing"
)

func TestRunFig11aScaled(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig11a", "-scale", "0.1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 11(a)") {
		t.Fatalf("missing title:\n%s", sb.String())
	}
}

func TestRunFig11aFaults(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig11a", "-scale", "0.1", "-faults", "testdata/plan.json"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "faults injected") {
		t.Fatalf("missing fault summary:\n%s", out)
	}
	if !strings.Contains(out, "watchdog:") {
		t.Fatalf("missing watchdog summary:\n%s", out)
	}
}

func TestRunFaultsBadPlan(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig11a", "-faults", "testdata/nope.json"}, &sb); err == nil {
		t.Fatal("missing plan file accepted")
	}
}

func TestRunFig3CSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig3", "-scale", "0.1", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "bin_s,NC,KVS,ML,WS") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
}

func TestRunProp(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "prop"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "depth") {
		t.Fatal("missing propagation table")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig99"}, &sb); err == nil {
		t.Fatal("unknown experiment succeeded")
	}
}
