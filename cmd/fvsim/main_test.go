package main

import (
	"strings"
	"testing"
)

func TestRunFig11aScaled(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig11a", "-scale", "0.1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 11(a)") {
		t.Fatalf("missing title:\n%s", sb.String())
	}
}

func TestRunFig11aFaults(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig11a", "-scale", "0.1", "-faults", "testdata/plan.json"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "faults injected") {
		t.Fatalf("missing fault summary:\n%s", out)
	}
	if !strings.Contains(out, "watchdog:") {
		t.Fatalf("missing watchdog summary:\n%s", out)
	}
}

func TestRunFaultsBadPlan(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig11a", "-faults", "testdata/nope.json"}, &sb); err == nil {
		t.Fatal("missing plan file accepted")
	}
}

func TestRunFig3CSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig3", "-scale", "0.1", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "bin_s,NC,KVS,ML,WS") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
}

func TestRunProp(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "prop"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "depth") {
		t.Fatal("missing propagation table")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "fig99"}, &sb)
	if err == nil {
		t.Fatal("unknown experiment succeeded")
	}
	// The error lists the registry-derived experiment set.
	if !strings.Contains(err.Error(), "accuracy") {
		t.Fatalf("error does not list experiments: %v", err)
	}
}

func TestRunAccuracyLab(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "accuracy", "-scale", "0.25"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"scheduler-accuracy lab", "inversions", "pifo", "sppifo", "eiffel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("accuracy report missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentOrderDispatches(t *testing.T) {
	// Every name in the "all" expansion must be dispatchable; a fast way
	// to catch list/switch drift without running the experiments is to
	// check each name is distinct and the flag help carries them all.
	seen := map[string]bool{}
	for _, name := range experimentOrder {
		if seen[name] {
			t.Fatalf("experiment %q listed twice", name)
		}
		seen[name] = true
	}
	for _, want := range []string{"fig3", "fig11a", "scale100g", "conns", "priocmp", "accuracy"} {
		if !seen[want] {
			t.Fatalf("experiment %q missing from experimentOrder", want)
		}
	}
}
