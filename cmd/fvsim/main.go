// Command fvsim regenerates the paper's evaluation: every figure and
// table of §V, plus the ablation experiments, on the discrete-event
// SmartNIC model.
//
// Usage:
//
//	fvsim -experiment fig11a            # one experiment at full scale
//	fvsim -experiment all -scale 0.2    # everything, scaled down 5×
//	fvsim -experiment fig11b -csv       # emit the raw series as CSV
//	fvsim -experiment fig11a -metrics-addr :9100   # scrape live /metrics
//	fvsim -experiment fig11a -metrics-json -       # JSON dump afterwards
//
// Experiments: fig3 fig11a fig11b fig11c fig13 fig14 cpu prop
// scale100g conns priocmp accuracy offload all.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"

	"flowvalve/internal/experiments"
	"flowvalve/internal/faults"
	"flowvalve/internal/stats"
	"flowvalve/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvsim:", err)
		os.Exit(1)
	}
}

// experimentOrder is the single source of truth for the experiment set:
// the -experiment flag help, the "all" expansion, and runOne's dispatch
// all derive from it.
var experimentOrder = []string{
	"fig3", "fig11a", "fig11b", "fig11c", "fig13", "fig14",
	"cpu", "prop", "scale100g", "conns", "priocmp", "accuracy",
	"offload",
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fvsim", flag.ContinueOnError)
	exp := fs.String("experiment", "all", strings.Join(experimentOrder, "|")+"|all")
	scale := fs.Float64("scale", 1.0, "time-scale factor (1.0 = paper durations)")
	csv := fs.Bool("csv", false, "emit raw per-second series as CSV where applicable")
	metricsAddr := fs.String("metrics-addr", "", "serve live telemetry on this address (/metrics, /metrics.json)")
	metricsJSON := fs.String("metrics-json", "", "write a JSON metrics snapshot to this file after the run (- for stdout)")
	traceSample := fs.Int("trace-sample", 256, "trace one scheduling decision per N packets")
	faultsFile := fs.String("faults", "", "inject a JSON fault plan into the figure scenarios (FlowValve runs only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The figure experiments share one registry: the scheduler label on
	// common families keeps FlowValve and baseline runs apart.
	var telOpts []experiments.ScenarioOption
	var reg *telemetry.Registry
	if *metricsAddr != "" || *metricsJSON != "" {
		reg = telemetry.NewRegistry()
		tr := telemetry.NewTracer(*traceSample, 4096)
		telOpts = append(telOpts, experiments.WithTelemetry(reg, tr))
	}
	if *faultsFile != "" {
		plan, err := faults.LoadPlan(*faultsFile)
		if err != nil {
			return err
		}
		telOpts = append(telOpts, experiments.WithFaults(plan))
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		srv := &http.Server{Handler: reg.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "telemetry: http://%s/metrics\n\n", ln.Addr())
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experimentOrder
	}
	for _, name := range names {
		if err := runOne(name, *scale, *csv, out, telOpts...); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(out)
	}

	if *metricsJSON != "" {
		w := out
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}

var motivationWindows = [][2]int64{{2, 15}, {17, 30}, {32, 45}}

func runOne(name string, scale float64, csv bool, out io.Writer, telOpts ...experiments.ScenarioOption) error {
	switch name {
	case "fig3":
		res, err := experiments.Fig3(scale, telOpts...)
		if err != nil {
			return err
		}
		wins := experiments.Windows(res, scale, 4, motivationWindows)
		fmt.Fprint(out, experiments.FormatWindows(
			"Fig 3 — kernel HTB on the motivation policy (10G ceiling on the 40G wire)",
			[]string{"NC", "KVS", "ML", "WS"}, wins))
		fmt.Fprintf(out, "host cores consumed: %.2f\n", res.CoresUsed)
		fmt.Fprintln(out, "paper: NC not prioritized; ≈12G total (ceiling overshoot); KVS=ML (priority ignored)")
		if csv {
			writeSeries(out, res, 4, []string{"NC", "KVS", "ML", "WS"})
		}
	case "fig11a":
		res, err := experiments.Fig11a(scale, telOpts...)
		if err != nil {
			return err
		}
		wins := experiments.Windows(res, scale, 4, motivationWindows)
		fmt.Fprint(out, experiments.FormatWindows(
			"Fig 11(a) — FlowValve on the motivation policy (10Gbps)",
			[]string{"NC", "KVS", "ML", "WS"}, wins))
		fmt.Fprintln(out, "paper: NC first; then KVS 4.67 / ML 2 / WS 3.33; then KVS 8 / ML 2; total ≤ 10G")
		fmt.Fprint(out, experiments.FormatFaults(res))
		if csv {
			writeSeries(out, res, 4, []string{"NC", "KVS", "ML", "WS"})
			writeRates(out, res)
		}
	case "fig11b":
		res, err := experiments.Fig11b(scale, telOpts...)
		if err != nil {
			return err
		}
		wins := experiments.Windows(res, scale, 4, [][2]int64{{2, 10}, {12, 20}, {22, 30}, {32, 45}})
		fmt.Fprint(out, experiments.FormatWindows(
			"Fig 11(b) — FlowValve 40G fair queueing, staged joins at 0/10/20/30s",
			appNames(4), wins))
		fmt.Fprintln(out, "paper: 40 → 20/20 → 13.3×3 → 10×4, line rate throughout")
		fmt.Fprint(out, experiments.FormatFaults(res))
		if csv {
			writeSeries(out, res, 4, appNames(4))
		}
	case "fig11c":
		res, err := experiments.Fig11c(scale, telOpts...)
		if err != nil {
			return err
		}
		wins := experiments.Windows(res, scale, 4, [][2]int64{{2, 20}, {22, 30}, {32, 45}})
		fmt.Fprint(out, experiments.FormatWindows(
			"Fig 11(c) — FlowValve 40G weighted fair queueing (Fig 12 policy)",
			appNames(4), wins))
		fmt.Fprintln(out, "paper: App0 holds 20G when App2 joins at 20s; after App0 stops at 30s the rest share the link")
		fmt.Fprint(out, experiments.FormatFaults(res))
		if csv {
			writeSeries(out, res, 4, appNames(4))
		}
	case "fig13":
		rows, err := experiments.Fig13(int64(50e6 * scale))
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatFig13(rows))
	case "fig14":
		rows, err := experiments.Fig14(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatFig14(rows))
	case "cpu":
		rows, err := experiments.CPUSavings(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatCPU(rows))
	case "prop":
		rows, err := experiments.PropagationDelay()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatPropagation(rows))
	case "conns":
		rows, err := experiments.ConnsSweep(scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatConns(rows))
	case "priocmp":
		rows, err := experiments.PrioComparison(scale)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatPrioCmp(rows))
	case "scale100g":
		rows, err := experiments.Scale100G(int64(20e6 * scale))
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatScale100G(rows))
	case "accuracy":
		res, err := experiments.RunAccuracy(experiments.AccuracyScenario{
			DurationNs: int64(20e6 * scale),
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatAccuracy(res))
	case "offload":
		res, err := experiments.RunOffload(experiments.OffloadScenario{
			DurationNs: int64(40e6 * scale),
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatOffload(res))
		sweep, err := experiments.RunOffloadSweep(experiments.OffloadScenario{
			DurationNs: int64(20e6 * scale),
		}, nil, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, experiments.FormatOffloadSweep(sweep))
	default:
		return fmt.Errorf("unknown experiment %q (want %s|all)", name, strings.Join(experimentOrder, "|"))
	}
	return nil
}

func appNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("App%d", i)
	}
	return out
}

// writeRates dumps the sampled per-class θ/Γ dynamics as CSV (present
// when the harness enabled rate sampling).
func writeRates(out io.Writer, res *experiments.Result) {
	if len(res.Rates) == 0 {
		return
	}
	names := make([]string, 0, len(res.Rates))
	for name := range res.Rates {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprint(out, "t_s")
	for _, n := range names {
		fmt.Fprintf(out, ",theta_%s,gamma_%s", n, n)
	}
	fmt.Fprintln(out)
	for i := 0; i < len(res.Rates[names[0]]); i++ {
		fmt.Fprintf(out, "%.2f", float64(res.Rates[names[0]][i].AtNs)/1e9)
		for _, n := range names {
			smp := res.Rates[n][i]
			fmt.Fprintf(out, ",%s,%s", stats.Gbps(smp.ThetaBps), stats.Gbps(smp.GammaBps))
		}
		fmt.Fprintln(out)
	}
}

// writeSeries dumps the per-bin throughput of each app as CSV.
func writeSeries(out io.Writer, res *experiments.Result, apps int, names []string) {
	fmt.Fprintf(out, "bin_s,%s\n", strings.Join(names, ","))
	series := make([][]float64, apps)
	maxLen := 0
	for a := 0; a < apps; a++ {
		series[a] = res.Meter.Series(experiments.AppSeries(a))
		if len(series[a]) > maxLen {
			maxLen = len(series[a])
		}
	}
	binSec := float64(res.Meter.BinNs()) / 1e9
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, apps+1)
		row = append(row, fmt.Sprintf("%.1f", float64(i)*binSec))
		for a := 0; a < apps; a++ {
			v := 0.0
			if i < len(series[a]) {
				v = series[a][i]
			}
			row = append(row, stats.Gbps(v))
		}
		fmt.Fprintln(out, strings.Join(row, ","))
	}
}
