package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flowvalve/internal/clock"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/faults"
	"flowvalve/internal/fvassert"
	"flowvalve/internal/sched/tree"
)

// This file implements the sharded multi-core scheduler: N scheduler
// shards, each owning a hash-partition of the class tree, with
// cross-shard token lending accumulated in shard-local leases and
// settled only at epoch boundaries by a reconciler (the paper's
// shadow-bucket lending already batches reconciliation by epoch — this
// is the same trick applied across cores).
//
// Partition model. Whole top-level subtrees (the root's children and
// all their descendants) are co-located on one shard, so everything a
// packet touches on its hierarchy path — except the root — lives on
// the shard that schedules it: per-class epoch updates, bucket
// metering, and within-subtree borrowing need no cross-shard
// synchronization at all. Each shard holds a full *Scheduler replica
// over the shared immutable tree; replicas of classes a shard does not
// own simply never see traffic. The root is the one class split across
// shards: every replica rolls its own root epochs over its local
// traffic, and the settlement reconciler is the only place the global
// root picture (child rates, lendable minting) is assembled.
//
// Cross-shard lending. A borrower whose borrow label names a class on
// another shard must not touch that class's replica (refilling a
// replica shadow would mint the same tokens on two shards). Instead
// each shard holds a local lease per cross-shard lender: the
// reconciler debits the owner's shadow bucket once and distributes the
// tokens into the borrower shards' leases; packets spend the lease
// with shard-local atomics. Conservation is exact by construction —
// every token in a lease was TryConsume'd out of the owner's shadow —
// and fvassert-checked at each settlement.

// ShardConfig tunes the sharded scheduler.
type ShardConfig struct {
	// Shards is the number of scheduler shards (N=1 degenerates to a
	// plain scheduler with identical, bit-for-bit behaviour).
	Shards int
	// SettleEveryNs is the cross-shard settlement epoch: how often the
	// reconciler assembles the global root picture and re-grants
	// lending leases. Defaults to 4× the scheduler's UpdateIntervalNs —
	// settlement is deliberately coarser than per-class epochs, that is
	// the point of epoch-settled lending.
	SettleEveryNs int64
	// RingPkts bounds each shard's MPSC feed ring in parallel mode
	// (rounded up to a power of two; default 1024).
	RingPkts int
}

// Defaults fills unset fields.
func (c ShardConfig) Defaults(sched Config) ShardConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.SettleEveryNs <= 0 {
		c.SettleEveryNs = 4 * sched.UpdateIntervalNs
	}
	if c.RingPkts <= 0 {
		c.RingPkts = 1024
	}
	return c
}

// lenderSite is the reconciler's bookkeeping for one cross-shard
// lender: the shards that borrow from it and the cumulative
// grant/settle ledgers per borrower shard. All fields are
// reconciler-owned (guarded by settleMu) except what it reads from the
// borrower shards' lease atomics.
type lenderSite struct {
	c         *tree.Class
	owner     int32
	slot      int32
	borrowers []int32 // borrowing shard ids, ascending, owner excluded
	granted   []int64 // cumulative bytes granted, per borrowers index
	settled   []int64 // cumulative consumed bytes last observed, per borrowers index
}

// ShardedScheduler drives N scheduler shards over one class tree. It
// implements dataplane.Scheduler (inline mode: the caller's goroutine
// partitions each batch and runs the shards in ascending order —
// deterministic, DES-compatible) and a parallel mode (see
// shard_parallel.go) where each shard runs a worker goroutine fed by a
// bounded lock-free MPSC ring.
type ShardedScheduler struct {
	tree *tree.Tree
	clk  clock.Clock
	// manualClk/wallClk mirror Scheduler's concrete-clock cache so the
	// per-batch settlement time read stays a static call (see
	// Scheduler.now).
	manualClk *clock.Manual
	wallClk   *clock.Wall
	cfg       Config
	scfg      ShardConfig
	n         int
	inner     []*Scheduler
	owner     []int32 // ClassID → owning shard

	lenders []lenderSite

	// Settlement state. settleMu serializes reconciliations; whichever
	// caller (or shard worker) first observes the settlement epoch
	// elapsed takes the TryLock and settles for everyone. If settlement
	// ever needs per-class state under lock, it must take class locks
	// *inside* settleMu — a class-lock holder must never wait on the
	// reconciler. The declared order below makes fvlint reject the
	// reverse nesting the day someone introduces it.
	//
	//fv:lockorder core.ShardedScheduler.settleMu before core.classState.mu
	settleMu    sync.Mutex
	lastSettle  atomic.Int64
	settles     atomic.Int64
	rootScratch []float64

	// partPool recycles inline-mode partition scratch (counting sort +
	// per-shard request/decision staging), so inline sharded batching
	// stays allocation-free. Parallel workers never touch it — each
	// owns a dedicated scratch (see shard_parallel.go).
	partPool sync.Pool

	// Parallel-mode state (nil/false until StartWorkers).
	rings   []*feedRing
	workers []*shardWorker
	started atomic.Bool
	stopped atomic.Bool
	wg      sync.WaitGroup
}

var (
	_ dataplane.Scheduler  = (*ShardedScheduler)(nil)
	_ dataplane.Sharder    = (*ShardedScheduler)(nil)
	_ faults.SchedulerSink = (*ShardedScheduler)(nil)
)

// NewSharded builds a sharded scheduler over t with scfg.Shards shards.
// With Shards == 1 every call delegates straight to a single plain
// Scheduler — bit-identical to New, which is what keeps the DES
// deterministic baseline intact.
func NewSharded(t *tree.Tree, clk clock.Clock, cfg Config, scfg ShardConfig) (*ShardedScheduler, error) {
	if t == nil || t.Root() == nil {
		return nil, fmt.Errorf("core: nil scheduling tree")
	}
	if clk == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	cfg = cfg.Defaults()
	scfg = scfg.Defaults(cfg)
	ss := &ShardedScheduler{
		tree: t,
		clk:  clk,
		cfg:  cfg,
		scfg: scfg,
		n:    scfg.Shards,
	}
	switch c := clk.(type) {
	case *clock.Manual:
		ss.manualClk = c
	case *clock.Wall:
		ss.wallClk = c
	}
	ss.owner = partitionTree(t, ss.n)
	for k := 0; k < ss.n; k++ {
		in, err := New(t, clk, cfg)
		if err != nil {
			return nil, err
		}
		ss.inner = append(ss.inner, in)
	}
	if ss.n > 1 {
		slot, lenders := discoverLenders(t, ss.owner)
		ss.lenders = lenders
		for k := 0; k < ss.n; k++ {
			ss.inner[k].shard = &shardCtx{
				id:     int32(k),
				owner:  ss.owner,
				slot:   slot,
				leases: make([]leaseState, len(lenders)),
			}
		}
	}
	ss.lastSettle.Store(clk.Now())
	ss.partPool.New = func() any { return newPartScratch(ss.n) }
	return ss, nil
}

// partitionTree assigns every class to a shard: whole top-level
// subtrees co-locate, the root goes to shard 0. Subtrees are placed in
// hash order (FNV-1a over the subtree name through the MurmurHash3
// finalizer — the same mix the PR 4 flow cache shards by) onto the
// currently least-loaded shard, weighted by leaf count: deterministic
// under tenant renames and bounded to one subtree of imbalance, where
// a bare hash-mod would leave shards empty at small tenant counts.
func partitionTree(t *tree.Tree, n int) []int32 {
	owner := make([]int32, t.Len())
	root := t.Root()
	owner[root.ID] = 0
	if n <= 1 {
		return owner
	}
	type subtree struct {
		top    *tree.Class
		hash   uint64
		leaves int64
	}
	tops := make([]subtree, 0, len(root.Children))
	for _, top := range root.Children {
		s := subtree{top: top, hash: subtreeHash(top.Name)}
		var walk func(*tree.Class)
		walk = func(c *tree.Class) {
			if c.Leaf() {
				s.leaves++
			}
			for _, ch := range c.Children {
				walk(ch)
			}
		}
		walk(top)
		if s.leaves == 0 {
			s.leaves = 1
		}
		tops = append(tops, s)
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].hash != tops[j].hash {
			return tops[i].hash < tops[j].hash
		}
		return tops[i].top.Name < tops[j].top.Name
	})
	load := make([]int64, n)
	for _, s := range tops {
		best := 0
		for k := 1; k < n; k++ {
			if load[k] < load[best] {
				best = k
			}
		}
		load[best] += s.leaves
		var assign func(*tree.Class)
		assign = func(c *tree.Class) {
			owner[c.ID] = int32(best)
			for _, ch := range c.Children {
				assign(ch)
			}
		}
		assign(s.top)
	}
	return owner
}

// subtreeHash hashes a subtree's identity for shard placement: FNV-1a
// over the name, finalized with the MurmurHash3 mixer (the same
// finalizer the sharded flow cache uses, so placement quality matches
// PR 4's partitioning).
func subtreeHash(name string) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// discoverLenders walks every leaf label and records the classes whose
// shadow bucket some other shard borrows from, assigning each a lease
// slot. Returns the ClassID→slot table and the reconciler sites.
func discoverLenders(t *tree.Tree, owner []int32) ([]int32, []lenderSite) {
	slot := make([]int32, t.Len())
	for i := range slot {
		slot[i] = -1
	}
	var lenders []lenderSite
	seen := make(map[tree.ClassID]map[int32]bool)
	for _, leaf := range t.Leaves() {
		lbl := t.LabelFor(leaf)
		if lbl == nil {
			continue
		}
		borrowerShard := owner[leaf.ID]
		for _, lender := range lbl.Borrow {
			if owner[lender.ID] == borrowerShard {
				continue
			}
			if slot[lender.ID] < 0 {
				slot[lender.ID] = int32(len(lenders))
				lenders = append(lenders, lenderSite{
					c:     lender,
					owner: owner[lender.ID],
					slot:  slot[lender.ID],
				})
				seen[lender.ID] = make(map[int32]bool)
			}
			seen[lender.ID][borrowerShard] = true
		}
	}
	for i := range lenders {
		L := &lenders[i]
		for sh := range seen[L.c.ID] {
			L.borrowers = append(L.borrowers, sh)
		}
		sort.Slice(L.borrowers, func(a, b int) bool { return L.borrowers[a] < L.borrowers[b] })
		L.granted = make([]int64, len(L.borrowers))
		L.settled = make([]int64, len(L.borrowers))
	}
	return slot, lenders
}

// Tree returns the scheduling tree.
func (ss *ShardedScheduler) Tree() *tree.Tree { return ss.tree }

// Config returns the effective scheduler configuration.
func (ss *ShardedScheduler) Config() Config { return ss.cfg }

// ShardConfig returns the effective shard configuration.
func (ss *ShardedScheduler) ShardConfig() ShardConfig { return ss.scfg }

// Shards implements dataplane.Sharder.
func (ss *ShardedScheduler) Shards() int { return ss.n }

// now reads the clock through the concrete fast path, exactly as
// Scheduler.now does for the per-shard schedulers.
//
//fv:hotpath
func (ss *ShardedScheduler) now() int64 {
	if m := ss.manualClk; m != nil {
		return m.Now()
	}
	if w := ss.wallClk; w != nil {
		return w.Now()
	}
	//fv:boxing-ok out-of-tree Clock implementations take the virtual slow path; both stock clocks devirtualize above
	return ss.clk.Now()
}

// ShardOf implements dataplane.Sharder: the shard that owns (and must
// schedule) the label's leaf.
func (ss *ShardedScheduler) ShardOf(lbl *tree.Label) int { return int(ss.owner[lbl.Leaf.ID]) }

// OwnerTable implements dataplane.OwnerTabler: the immutable ClassID →
// owning-shard partition, shared (not copied) with steering consumers.
func (ss *ShardedScheduler) OwnerTable() []int32 { return ss.owner }

// Settles reports how many settlement reconciliations have run.
func (ss *ShardedScheduler) Settles() int64 { return ss.settles.Load() }

// Schedule implements dataplane.Scheduler inline: route the packet to
// its owner shard on the caller's goroutine.
//
//fv:hotpath
func (ss *ShardedScheduler) Schedule(lbl *tree.Label, size int) Decision {
	if ss.n == 1 {
		return ss.inner[0].Schedule(lbl, size)
	}
	ss.maybeSettle(ss.now())
	return ss.inner[ss.owner[lbl.Leaf.ID]].Schedule(lbl, size)
}

// partScratch is one inline ScheduleBatch call's partition working set.
//
//fv:owner
type partScratch struct {
	fill []int32 // per-shard write cursors (counting sort)
	idx  []int32 // request indices grouped by shard, input order preserved
	reqs []Request
	dec  []Decision
}

func newPartScratch(shards int) *partScratch {
	return &partScratch{fill: make([]int32, shards+1)}
}

func (ps *partScratch) grow(n int) {
	if cap(ps.idx) < n {
		ps.idx = make([]int32, n) //fv:coldpath pooled scratch grows to the largest burst once, then never again
		ps.reqs = make([]Request, n)
		ps.dec = make([]Decision, n)
	}
}

// ScheduleBatch implements dataplane.Scheduler inline: the batch is
// stably partitioned by owner shard and each shard's sub-batch runs on
// the caller's goroutine in ascending shard order — single-threaded
// and deterministic, which is exactly what the DES and the NIC burst
// service need. Parallel execution goes through the feed rings instead
// (StartWorkers/Feed).
//
//fv:hotpath
func (ss *ShardedScheduler) ScheduleBatch(reqs []dataplane.Request, out []dataplane.Decision) {
	n := len(reqs)
	if n == 0 {
		return
	}
	if ss.n == 1 {
		ss.inner[0].ScheduleBatch(reqs, out)
		return
	}
	ss.maybeSettle(ss.now())
	ps := ss.partPool.Get().(*partScratch)
	ps.grow(n)
	fill := ps.fill
	for k := range fill {
		fill[k] = 0
	}
	for i := range reqs {
		fill[ss.owner[reqs[i].Label.Leaf.ID]+1]++
	}
	for k := 1; k < len(fill); k++ {
		fill[k] += fill[k-1]
	}
	idx := ps.idx[:n]
	for i := range reqs {
		sh := ss.owner[reqs[i].Label.Leaf.ID]
		idx[fill[sh]] = int32(i)
		fill[sh]++
	}
	// After placement fill[k] is the end of shard k's segment.
	lo := int32(0)
	for k := 0; k < ss.n; k++ {
		hi := fill[k]
		m := int(hi - lo)
		if m == 0 {
			continue
		}
		sub, dec := ps.reqs[:m], ps.dec[:m]
		for j := 0; j < m; j++ {
			sub[j] = reqs[idx[lo+int32(j)]]
		}
		ss.inner[k].ScheduleBatch(sub, dec)
		for j := 0; j < m; j++ {
			out[idx[lo+int32(j)]] = dec[j]
		}
		lo = hi
	}
	//fv:owner-ok ownership returns to the pool: this frame holds the only reference and never touches ps after the Put
	ss.partPool.Put(ps)
}

// maybeSettle runs a settlement reconciliation if the settlement epoch
// has elapsed. Non-blocking: concurrent callers skip when another is
// already settling.
func (ss *ShardedScheduler) maybeSettle(now int64) {
	if now-ss.lastSettle.Load() < ss.scfg.SettleEveryNs {
		return
	}
	if !ss.settleMu.TryLock() {
		return
	}
	if now-ss.lastSettle.Load() >= ss.scfg.SettleEveryNs {
		//fv:coldpath settlement reconciliation: runs once per SettleEveryNs across all shards, amortized off the batch path
		ss.settleLocked(now)
		ss.lastSettle.Store(now)
	}
	ss.settleMu.Unlock()
}

// ForceSettle runs a reconciliation immediately (tests, DES warm-up).
func (ss *ShardedScheduler) ForceSettle() {
	if ss.n == 1 {
		return
	}
	now := ss.clk.Now()
	ss.settleMu.Lock()
	ss.settleLocked(now)
	ss.lastSettle.Store(now)
	ss.settleMu.Unlock()
}

// settleLocked is the epoch-boundary reconciler. Caller holds settleMu.
//
// Three responsibilities, in order:
//
//  1. Root child rates: assemble the global Γ picture from the owner
//     shards and run the condition templates once, writing each
//     top-level class's θ back to its owner replica. (Per-replica root
//     updates skip this — see updateLocked.)
//  2. Root lendable: aggregate root Γ across replicas, mint the
//     lendable supply once into the root owner's shadow bucket.
//  3. Lease settlement per cross-shard lender: fold the borrower
//     shards' consumed bytes into the owner's Γ/lending ledgers, then
//     re-grant from the owner's shadow — debited via TryConsume, so a
//     granted token exists in exactly one place (shadow, lease, or
//     settled consumption) at any instant.
//
// Invariants (fvassert-gated): per (lender, shard) the lease balance
// is never negative and cumulative consumed never exceeds cumulative
// granted; in single-driver (deterministic) mode additionally
// granted == consumed + balance exactly.
func (ss *ShardedScheduler) settleLocked(now int64) {
	dt := now - ss.lastSettle.Load()
	root := ss.tree.Root()
	owner0 := ss.inner[ss.owner[root.ID]]
	rootSt := &owner0.states[root.ID]
	rootTheta := rootSt.theta.Load()

	// 1. Global root child rates.
	gamma := func(c *tree.Class) float64 {
		return ss.inner[ss.owner[c.ID]].effectiveGammaAt(c, now)
	}
	ss.rootScratch = tree.ChildRates(root, rootTheta, gamma, ss.rootScratch)
	for i, ch := range root.Children {
		ss.inner[ss.owner[ch.ID]].states[ch.ID].theta.Store(ss.rootScratch[i])
	}

	// 2. Root lendable, minted once from the aggregate Γ.
	var aggGamma float64
	for _, in := range ss.inner {
		aggGamma += in.effectiveGammaAt(root, now)
	}
	lendable := tree.Lendable(rootTheta, aggGamma)
	rootSt.lendRate.Store(lendable)
	rootSt.shadow.SetBurst(owner0.burstFor(rootTheta, ss.cfg.ShadowBurstNs))
	if mint := int64(lendable * float64(dt) / 1e9); mint > 0 {
		if fvassert.Enabled && float64(mint) > rootTheta*float64(dt)/1e9+1 {
			fvassert.Failf("core: settlement minted %d root lendable bytes over dt=%d at θ=%g: conservation violated",
				mint, dt, rootTheta)
		}
		rootSt.shadow.Refill(mint)
	}

	// 3. Lease settlement.
	strict := fvassert.Enabled && !ss.started.Load()
	for li := range ss.lenders {
		L := &ss.lenders[li]
		ownerS := ss.inner[L.owner]
		st := &ownerS.states[L.c.ID]
		var newConsumed int64
		for bi, k := range L.borrowers {
			ls := &ss.inner[k].shard.leases[L.slot]
			tot := ls.consumed.Load()
			delta := tot - L.settled[bi]
			L.settled[bi] = tot
			newConsumed += delta
			if fvassert.Enabled {
				if tot > L.granted[bi] {
					fvassert.Failf("core: shard %d consumed %d of lender %q but only %d was granted: lease conservation violated",
						k, tot, L.c.Name, L.granted[bi])
				}
				if bal := ls.tokens.Load(); bal < 0 {
					fvassert.Failf("core: shard %d lease on %q has negative balance %d", k, L.c.Name, bal)
				} else if strict && L.granted[bi] != tot+bal {
					fvassert.Failf("core: lender %q shard %d: granted %d ≠ consumed %d + balance %d: lease tokens created or destroyed",
						L.c.Name, k, L.granted[bi], tot, bal)
				}
			}
		}
		if newConsumed > 0 {
			// Fold the cross-shard spend into the owner's ledgers:
			// lent bytes consume the lender's reservation (Γ and the
			// epoch lend ledger, as on the hot path), and an actively
			// lending class must not expire. The root is exempt from Γ
			// counting — a borrower's hierarchy path always contains
			// the root, so its own shard's path counting already
			// recorded the bytes (labelPathContains on the hot path).
			st.lentBytes.Add(newConsumed)
			st.lastSeen.Store(now)
			if L.c.Parent != nil {
				st.est.Count(newConsumed)
				st.lentEpoch.Add(newConsumed)
			}
		}
		// Re-grant: split the owner's current shadow balance across the
		// borrower shards, leaving the owner's local borrowers an equal
		// share, each lease capped at its share of the shadow burst so
		// an idle borrower cannot hoard stale tokens.
		nb := int64(len(L.borrowers))
		avail := st.shadow.Tokens()
		if avail <= 0 {
			continue
		}
		share := avail / (nb + 1)
		if share <= 0 {
			continue
		}
		capPer := ownerS.burstFor(st.theta.Load(), ss.cfg.ShadowBurstNs) / (nb + 1)
		for bi, k := range L.borrowers {
			ls := &ss.inner[k].shard.leases[L.slot]
			g := share
			if headroom := capPer - ls.tokens.Load(); g > headroom {
				g = headroom
			}
			if g > 0 && st.shadow.TryConsume(g) {
				ls.tokens.Add(g)
				L.granted[bi] += g
			}
		}
	}
	ss.settles.Add(1)
}

// ForceUpdate runs every shard's update subprocedure immediately, then
// a settlement — the DES warm-up path.
func (ss *ShardedScheduler) ForceUpdate() {
	for _, in := range ss.inner {
		in.ForceUpdate()
	}
	ss.ForceSettle()
}

// Theta returns a class's granted token rate in bits/second, read from
// its owner shard.
func (ss *ShardedScheduler) Theta(c *tree.Class) float64 {
	return ss.inner[ss.owner[c.ID]].Theta(c)
}

// Gamma returns a class's measured consumption rate in bits/second,
// aggregated across shards (only the root ever has traffic on more
// than one).
func (ss *ShardedScheduler) Gamma(c *tree.Class) float64 {
	var g float64
	for _, in := range ss.inner {
		g += in.Gamma(c)
	}
	return g
}

// Snapshot returns merged per-class statistics in ClassID order:
// owner-shard state for rates and bucket levels, counters summed
// across shards (replicas that never see traffic contribute zeros; the
// root's per-replica epoch rolls sum to the global count).
func (ss *ShardedScheduler) Snapshot() []ClassStats {
	if ss.n == 1 {
		return ss.inner[0].Snapshot()
	}
	classes := ss.tree.Classes()
	out := make([]ClassStats, len(classes))
	for i, c := range classes {
		out[i] = ss.StatsFor(c)
	}
	return out
}

// StatsFor returns the merged snapshot of a single class.
func (ss *ShardedScheduler) StatsFor(c *tree.Class) ClassStats {
	if ss.n == 1 {
		return ss.inner[0].StatsFor(c)
	}
	st := &ss.inner[ss.owner[c.ID]].states[c.ID]
	cs := ClassStats{
		Class:        c,
		ThetaBps:     st.theta.Load() * 8,
		LendableBps:  st.lendRate.Load() * 8,
		BucketTokens: st.bucket.Tokens(),
		ShadowTokens: st.shadow.Tokens(),
	}
	for _, in := range ss.inner {
		ist := &in.states[c.ID]
		cs.GammaBps += ist.est.Rate() * 8
		cs.FwdPkts += ist.fwdPkts.Load()
		cs.FwdBytes += ist.fwdBytes.Load()
		cs.DropPkts += ist.dropPkts.Load()
		cs.DropBytes += ist.dropBytes.Load()
		cs.BorrowPkts += ist.borrowPkts.Load()
		cs.MarkPkts += ist.markPkts.Load()
		cs.LentBytes += ist.lentBytes.Load()
		cs.Updates += ist.updates.Load()
	}
	return cs
}

// ApplyFaults implements faults.SchedulerSink with shard targeting: an
// event whose Shard field names "shard<k>" is routed to shard k only;
// an empty Shard applies everywhere. The per-shard splitmix64 streams
// are derived from the plan seed so shard 0's stream equals the
// single-scheduler stream — N=1 chaos runs stay bit-identical.
func (ss *ShardedScheduler) ApplyFaults(p *faults.Plan) error {
	if p == nil {
		for _, in := range ss.inner {
			in.ClearFaults()
		}
		return nil
	}
	for i := range p.Events {
		e := &p.Events[i]
		if e.Shard == "" {
			continue
		}
		k, ok := faults.ShardIndex(e.Shard)
		if !ok {
			return fmt.Errorf("core: fault event %d names malformed shard %q", i, e.Shard)
		}
		if k >= ss.n {
			return fmt.Errorf("core: fault event %d targets %q but only %d shard(s) exist", i, e.Shard, ss.n)
		}
	}
	for k, in := range ss.inner {
		sub := &faults.Plan{Seed: p.Seed + uint64(k)*0x9e3779b97f4a7c15}
		for _, e := range p.Events {
			if e.Shard != "" {
				if idx, _ := faults.ShardIndex(e.Shard); idx != k {
					continue
				}
				// Already routed; the inner scheduler's own "shard0"
				// filter must not re-apply to the copy.
				e.Shard = ""
			}
			sub.Events = append(sub.Events, e)
		}
		if err := in.ApplyFaults(sub); err != nil {
			return err
		}
	}
	return nil
}

// ClearFaults implements faults.SchedulerSink.
func (ss *ShardedScheduler) ClearFaults() {
	for _, in := range ss.inner {
		in.ClearFaults()
	}
}

// InjectedFaults implements faults.SchedulerSink, summing counters
// across shards.
func (ss *ShardedScheduler) InjectedFaults() faults.SchedulerCounts {
	var out faults.SchedulerCounts
	for _, in := range ss.inner {
		c := in.InjectedFaults()
		out.LockMisses += c.LockMisses
		out.DroppedEpochs += c.DroppedEpochs
		out.DelayedEpochs += c.DelayedEpochs
	}
	return out
}
