package core

import (
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/telemetry"
)

// telHooks is the scheduler's attached observability state, swapped in
// atomically so attachment is safe against in-flight Schedule calls.
type telHooks struct {
	tracer    *telemetry.Tracer
	updateDur *telemetry.Histogram
}

// AttachTelemetry wires the scheduler into an observability registry and
// (optionally) a decision tracer. It may be called at any time, including
// after a policy swap built a fresh scheduler over the same registry.
//
// Per-class counters, token levels, and rate estimates are exported as
// Func collectors reading the scheduler's existing atomics — continuous
// metrics at zero added cost on the packet path. The only hot-path
// additions are one atomic pointer load per Schedule call plus, 1-in-N
// packets, a trace ring write; the update subprocedure gains a
// scheduler-clock duration histogram sample per executed epoch roll
// (real time under a wall-backed clock, identically zero — and therefore
// deterministic — under the DES virtual clock).
//
// Metric families (all labelled {class="<name>"}):
//
//	fv_class_theta_bps            gauge     granted token rate θ
//	fv_class_gamma_bps            gauge     measured consumption rate Γ
//	fv_class_lendable_bps         gauge     published shadow (lendable) rate
//	fv_class_bucket_tokens_bytes  gauge     leaf/interior bucket level
//	fv_class_shadow_tokens_bytes  gauge     shadow bucket level
//	fv_class_fwd_packets_total    counter   forwarded packets
//	fv_class_fwd_bytes_total      counter   forwarded bytes
//	fv_class_drop_packets_total   counter   specialized tail drops
//	fv_class_drop_bytes_total     counter   dropped bytes
//	fv_class_borrow_packets_total counter   packets admitted via a shadow
//	fv_class_mark_packets_total   counter   ECN-marked packets
//	fv_class_lent_bytes_total     counter   bytes granted to borrowers
//	fv_class_updates_total        counter   epoch rolls executed
//	fv_update_duration_ns         histogram scheduler-clock time of one epoch roll
//
// Passing nil for both arguments detaches telemetry.
func (s *Scheduler) AttachTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	if reg == nil && tr == nil {
		s.tel.Store(nil)
		return
	}
	h := &telHooks{tracer: tr}
	if reg != nil {
		h.updateDur = reg.Histogram("fv_update_duration_ns",
			"Scheduler-clock duration of one class update subprocedure (epoch roll).",
			telemetry.DurationBucketsNs)
		for _, c := range s.tree.Classes() {
			st := &s.states[c.ID]
			lb := telemetry.Label{Key: "class", Value: c.Name}
			reg.GaugeFunc("fv_class_theta_bps",
				"Granted token rate θ in bits/second.",
				func() float64 { return st.theta.Load() * 8 }, lb)
			reg.GaugeFunc("fv_class_gamma_bps",
				"Measured consumption rate Γ in bits/second.",
				func() float64 { return st.est.Rate() * 8 }, lb)
			reg.GaugeFunc("fv_class_lendable_bps",
				"Published lendable (shadow) rate in bits/second.",
				func() float64 { return st.lendRate.Load() * 8 }, lb)
			reg.GaugeFunc("fv_class_bucket_tokens_bytes",
				"Current class bucket token level in bytes.",
				func() float64 { return float64(st.bucket.Tokens()) }, lb)
			reg.GaugeFunc("fv_class_shadow_tokens_bytes",
				"Current shadow bucket token level in bytes.",
				func() float64 { return float64(st.shadow.Tokens()) }, lb)
			reg.CounterFunc("fv_class_fwd_packets_total",
				"Packets forwarded by the scheduling function.",
				func() float64 { return float64(st.fwdPkts.Load()) }, lb)
			reg.CounterFunc("fv_class_fwd_bytes_total",
				"Bytes forwarded by the scheduling function.",
				func() float64 { return float64(st.fwdBytes.Load()) }, lb)
			reg.CounterFunc("fv_class_drop_packets_total",
				"Packets discarded by the specialized tail drop.",
				func() float64 { return float64(st.dropPkts.Load()) }, lb)
			reg.CounterFunc("fv_class_drop_bytes_total",
				"Bytes discarded by the specialized tail drop.",
				func() float64 { return float64(st.dropBytes.Load()) }, lb)
			reg.CounterFunc("fv_class_borrow_packets_total",
				"Packets admitted via a lender's shadow bucket.",
				func() float64 { return float64(st.borrowPkts.Load()) }, lb)
			reg.CounterFunc("fv_class_mark_packets_total",
				"Packets forwarded carrying a congestion mark.",
				func() float64 { return float64(st.markPkts.Load()) }, lb)
			reg.CounterFunc("fv_class_lent_bytes_total",
				"Bytes granted to borrowers from this class's shadow bucket.",
				func() float64 { return float64(st.lentBytes.Load()) }, lb)
			reg.CounterFunc("fv_class_updates_total",
				"Update-subprocedure executions (epoch rolls).",
				func() float64 { return float64(st.updates.Load()) }, lb)
		}
	}
	s.tel.Store(h)
}

// attachHooks installs pre-built observability hooks without touching a
// registry — the sharded scheduler's path: every shard replica shares
// one tracer and one update-duration histogram (both concurrency-safe),
// while metric families are registered once, merged, by the
// ShardedScheduler itself (see shard_telemetry.go).
func (s *Scheduler) attachHooks(h *telHooks) { s.tel.Store(h) }

// trace records one sampled scheduling decision. seq is the packet's
// ordinal within its leaf's forward (or drop) stream — the per-class
// statistics counters double as the sampling lattice, so the unsampled
// path costs no extra atomic. The two streams are independently counted
// and the tracer stores them in disjoint lane groups, so forward and
// drop samples never evict one another even when their ordinals
// coincide on the sampling lattice.
func (h *telHooks) trace(seq int64, now int64, lbl *tree.Label, lst *classState, sz int64, d *Decision) {
	if h.tracer == nil || !h.tracer.ShouldSample(uint64(seq)) {
		return
	}
	ev := telemetry.Event{
		AtNs:       now,
		Class:      lbl.Leaf.Name,
		QueueDepth: lst.bucket.Tokens(),
		Size:       int32(sz),
		Borrowed:   d.Borrowed,
		Marked:     d.Marked,
	}
	if d.Verdict == Forward {
		ev.Verdict = telemetry.TraceForward
	} else {
		ev.Verdict = telemetry.TraceDrop
	}
	if d.Lender != nil {
		ev.Lender = d.Lender.Name
	}
	h.tracer.Write(ev)
}
