package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"flowvalve/internal/clock"
	"flowvalve/internal/faults"
	"flowvalve/internal/sched/tree"
)

// tenantTree builds the canonical sharding policy: `tenants` top-level
// subtrees, each holding one leaf guaranteed half its fair share and
// borrowing the rest from root — so root is the only split class and
// its shadow bucket is the cross-shard lender.
func tenantTree(t *testing.T, tenants int) *tree.Tree {
	t.Helper()
	b := tree.NewBuilder().Root("root", 10e9)
	for k := 0; k < tenants; k++ {
		tn := fmt.Sprintf("tenant%d", k)
		b.Add(tree.ClassSpec{Name: tn, Parent: "root", Weight: 1})
		b.Add(tree.ClassSpec{
			Name: fmt.Sprintf("t%dapp", k), Parent: tn, Weight: 1,
			RateBps:    10e9 / float64(2*tenants),
			BorrowFrom: []string{"root"},
		})
	}
	return b.MustBuild()
}

func tenantLabels(t *testing.T, tr *tree.Tree, tenants int) []*tree.Label {
	t.Helper()
	labels := make([]*tree.Label, tenants)
	for k := 0; k < tenants; k++ {
		lbl, ok := tr.LabelByName(fmt.Sprintf("t%dapp", k))
		if !ok {
			t.Fatalf("leaf t%dapp missing", k)
		}
		labels[k] = lbl
	}
	return labels
}

func newShardedT(t *testing.T, tr *tree.Tree, clk clock.Clock, shards int) *ShardedScheduler {
	t.Helper()
	ss, err := NewSharded(tr, clk, Config{}, ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestShardConfigDefaults(t *testing.T) {
	sched := Config{}.Defaults()
	scfg := ShardConfig{}.Defaults(sched)
	if scfg.Shards != 1 {
		t.Fatalf("default Shards = %d, want 1", scfg.Shards)
	}
	if scfg.SettleEveryNs != 4*sched.UpdateIntervalNs {
		t.Fatalf("default SettleEveryNs = %d, want %d", scfg.SettleEveryNs, 4*sched.UpdateIntervalNs)
	}
	if scfg.RingPkts != 1024 {
		t.Fatalf("default RingPkts = %d, want 1024", scfg.RingPkts)
	}
}

func TestNewShardedValidation(t *testing.T) {
	tr := tree.NewBuilder().Root("r", 1e9).MustBuild()
	clk := clock.NewManual(0)
	if _, err := NewSharded(nil, clk, Config{}, ShardConfig{}); err == nil {
		t.Fatal("NewSharded with nil tree succeeded")
	}
	if _, err := NewSharded(tr, nil, Config{}, ShardConfig{}); err == nil {
		t.Fatal("NewSharded with nil clock succeeded")
	}
}

// N=1 sharded must be bit-identical to the plain scheduler: same
// decisions packet for packet, same snapshot down to the float.
func TestShardedSingleShardMatchesPlain(t *testing.T) {
	tr := tenantTree(t, 4)
	labels := tenantLabels(t, tr, 4)
	clk := clock.NewManual(0)
	plain, err := New(tr, clk, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ss := newShardedT(t, tr, clk, 1)

	for i := 0; i < 20000; i++ {
		lbl := labels[i%len(labels)]
		size := 200 + i%1300
		d1 := plain.Schedule(lbl, size)
		d2 := ss.Schedule(lbl, size)
		if d1 != d2 {
			t.Fatalf("packet %d: plain %+v vs sharded(1) %+v", i, d1, d2)
		}
		if i%8 == 7 {
			clk.Advance(20_000)
		}
	}

	reqs := make([]Request, 64)
	out1 := make([]Decision, 64)
	out2 := make([]Decision, 64)
	for b := 0; b < 200; b++ {
		for i := range reqs {
			reqs[i] = Request{Label: labels[(b+i)%len(labels)], Size: 300 + (b*7+i)%1200}
		}
		plain.ScheduleBatch(reqs, out1)
		ss.ScheduleBatch(reqs, out2)
		for i := range reqs {
			if out1[i] != out2[i] {
				t.Fatalf("batch %d packet %d: plain %+v vs sharded(1) %+v", b, i, out1[i], out2[i])
			}
		}
		clk.Advance(50_000)
	}

	s1, s2 := plain.Snapshot(), ss.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshots diverged between plain and sharded(1)")
	}
}

// The partition is deterministic, co-locates whole top-level subtrees,
// keeps root on shard 0, and leaves no shard empty when there are at
// least as many subtrees as shards.
func TestPartitionDeterministicCoLocatedBalanced(t *testing.T) {
	tr := tenantTree(t, 8)
	clk := clock.NewManual(0)
	a := newShardedT(t, tr, clk, 4)
	b := newShardedT(t, tr, clk, 4)

	root := tr.Root()
	if a.owner[root.ID] != 0 {
		t.Fatalf("root owned by shard %d, want 0", a.owner[root.ID])
	}
	used := make(map[int32]bool)
	for _, top := range root.Children {
		sh := a.owner[top.ID]
		used[sh] = true
		var walk func(c *tree.Class)
		walk = func(c *tree.Class) {
			if a.owner[c.ID] != sh {
				t.Fatalf("class %s on shard %d, subtree top %s on shard %d: subtree split",
					c.Name, a.owner[c.ID], top.Name, sh)
			}
			for _, ch := range c.Children {
				walk(ch)
			}
		}
		walk(top)
	}
	if len(used) != 4 {
		t.Fatalf("8 subtrees landed on %d of 4 shards; greedy placement should fill all", len(used))
	}
	for _, c := range tr.Classes() {
		if a.owner[c.ID] != b.owner[c.ID] {
			t.Fatalf("partition not deterministic at class %s", c.Name)
		}
	}
}

// Inline sharded batching partitions stably: each shard's sub-batch is
// the in-order subsequence of its requests, so feeding those
// subsequences to an identical scheduler reproduces the mixed batch's
// decisions element for element.
func TestShardedBatchEqualsPerShardSubsequences(t *testing.T) {
	tr := tenantTree(t, 8)
	labels := tenantLabels(t, tr, 8)
	clk := clock.NewManual(0)
	mixed := newShardedT(t, tr, clk, 4)
	split := newShardedT(t, tr, clk, 4)

	const n = 96
	reqs := make([]Request, n)
	out := make([]Decision, n)
	for b := 0; b < 50; b++ {
		for i := range reqs {
			reqs[i] = Request{Label: labels[(i*3+b)%len(labels)], Size: 400 + (i*13+b)%1100}
		}
		mixed.ScheduleBatch(reqs, out)

		for k := 0; k < split.Shards(); k++ {
			var sub []Request
			var pos []int
			for i := range reqs {
				if split.ShardOf(reqs[i].Label) == k {
					sub = append(sub, reqs[i])
					pos = append(pos, i)
				}
			}
			if len(sub) == 0 {
				continue
			}
			subOut := make([]Decision, len(sub))
			split.ScheduleBatch(sub, subOut)
			for j, i := range pos {
				if out[i] != subOut[j] {
					t.Fatalf("batch %d shard %d: mixed out[%d] = %+v, subsequence %+v", b, k, i, out[i], subOut[j])
				}
			}
		}
		clk.Advance(60_000)
	}
}

// Cross-shard lending conserves tokens: every byte forwarded on a
// lease shows up — after settlement — in the lender's merged lending
// ledger, and the reconciler's grant/consume books balance exactly.
func TestCrossShardLeaseConservation(t *testing.T) {
	tr := tenantTree(t, 4)
	labels := tenantLabels(t, tr, 4)
	clk := clock.NewManual(0)
	ss := newShardedT(t, tr, clk, 2)

	root := tr.Root()
	// Drive only leaves owned by the shard that does NOT own root, so
	// every root borrow goes through a lease.
	var remote []*tree.Label
	for _, lbl := range labels {
		if int32(ss.ShardOf(lbl)) != ss.owner[root.ID] {
			remote = append(remote, lbl)
		}
	}
	if len(remote) == 0 {
		t.Fatal("partition left no tenant off root's shard")
	}

	var borrowed, forwarded int64
	const size = 1500
	for i := 0; i < 400_000; i++ {
		d := ss.Schedule(remote[i%len(remote)], size)
		if d.Verdict == Forward {
			forwarded += size
			if d.Borrowed {
				if d.Lender != root {
					t.Fatalf("packet %d borrowed from %s, want root", i, d.Lender.Name)
				}
				borrowed += size
			}
		}
		// ~4.8Gbps offered per remote leaf at 1500B / 2.5µs.
		clk.Advance(2_500)
	}
	ss.ForceSettle()

	if borrowed == 0 {
		t.Fatal("no packets were forwarded on a cross-shard lease")
	}
	if got := ss.StatsFor(root).LentBytes; got != borrowed {
		t.Fatalf("root LentBytes = %d after settlement, want %d (lease-forwarded bytes)", got, borrowed)
	}
	if ss.Settles() == 0 {
		t.Fatal("no settlements ran despite epochs elapsing")
	}

	// The reconciler's books: granted = consumed + remaining balance,
	// per lender per borrower shard, with no negative balances.
	for li := range ss.lenders {
		L := &ss.lenders[li]
		for bi, k := range L.borrowers {
			ls := &ss.inner[k].shard.leases[L.slot]
			bal := ls.tokens.Load()
			if bal < 0 {
				t.Fatalf("lender %s shard %d: negative lease balance %d", L.c.Name, k, bal)
			}
			if consumed := ls.consumed.Load(); L.granted[bi] != consumed+bal {
				t.Fatalf("lender %s shard %d: granted %d ≠ consumed %d + balance %d",
					L.c.Name, k, L.granted[bi], consumed, bal)
			}
		}
	}
}

// Root token rates are reconciled globally: a shard's idle tenants
// must not let another shard's replica over-grant its own tenants, and
// the per-tenant θ written back at settlement reflects all shards'
// demand.
func TestSettlementDistributesRootRates(t *testing.T) {
	tr := tenantTree(t, 4)
	labels := tenantLabels(t, tr, 4)
	clk := clock.NewManual(0)
	ss := newShardedT(t, tr, clk, 2)

	// Saturate every tenant so the condition templates see demand
	// everywhere.
	for i := 0; i < 400_000; i++ {
		ss.Schedule(labels[i%len(labels)], 1500)
		clk.Advance(600)
	}
	ss.ForceSettle()

	var sum float64
	for _, top := range tr.Root().Children {
		theta := ss.Theta(top)
		if theta <= 0 {
			t.Fatalf("tenant %s granted θ=0 after settlement under saturation", top.Name)
		}
		sum += theta
	}
	rootTheta := ss.Theta(tr.Root())
	if sum > rootTheta*1.01 {
		t.Fatalf("tenant θ sum %.3g exceeds root θ %.3g: settlement over-granted", sum, rootTheta)
	}
}

// Shard-targeted fault events reach only the named shard, the derived
// per-shard seeds keep shard 0 on the plan's own stream, and malformed
// or out-of-range targets are rejected.
func TestShardedFaultRouting(t *testing.T) {
	tr := tenantTree(t, 8)
	labels := tenantLabels(t, tr, 8)
	clk := clock.NewManual(0)
	ss := newShardedT(t, tr, clk, 4)

	plan := &faults.Plan{Seed: 7, Events: []faults.Event{{
		Kind: faults.KindLockContention, AtNs: 0, DurationNs: 1e12, Prob: 1, Shard: "shard1",
	}}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ss.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	// The original plan must not be mutated by routing.
	if plan.Events[0].Shard != "shard1" {
		t.Fatalf("ApplyFaults mutated the caller's plan: Shard=%q", plan.Events[0].Shard)
	}
	for i := 0; i < 100_000; i++ {
		ss.Schedule(labels[i%len(labels)], 1000)
		clk.Advance(1_000)
	}
	for k, in := range ss.inner {
		misses := in.InjectedFaults().LockMisses
		if k == 1 && misses == 0 {
			t.Fatal("shard1 saw no injected lock misses despite prob-1 targeting")
		}
		if k != 1 && misses != 0 {
			t.Fatalf("shard %d saw %d lock misses from a shard1-targeted event", k, misses)
		}
	}
	if total := ss.InjectedFaults().LockMisses; total != ss.inner[1].InjectedFaults().LockMisses {
		t.Fatalf("merged LockMisses %d ≠ shard1's %d", total, ss.inner[1].InjectedFaults().LockMisses)
	}

	bad := &faults.Plan{Events: []faults.Event{{
		Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e9, Shard: "shard9",
	}}}
	if err := ss.ApplyFaults(bad); err == nil {
		t.Fatal("out-of-range shard target accepted")
	}
	malformed := faults.Plan{Events: []faults.Event{{
		Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e9, Shard: "shardx",
	}}}
	if err := malformed.Validate(); err == nil {
		t.Fatal("malformed shard name validated")
	}
	nonSched := faults.Plan{Events: []faults.Event{{
		Kind: faults.KindCoreStall, AtNs: 0, DurationNs: 1e9, Cores: 4, Shard: "shard0",
	}}}
	if err := nonSched.Validate(); err == nil {
		t.Fatal("shard targeting on a NIC-scoped fault validated")
	}
}

// The inline sharded batch path is allocation-free at steady state —
// the partition scratch pools and the per-shard batch scratches never
// escape to the heap per call.
func TestShardedInlineBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tr := tenantTree(t, 8)
	labels := tenantLabels(t, tr, 8)
	clk := clock.NewManual(0)
	ss := newShardedT(t, tr, clk, 4)

	reqs := make([]Request, 64)
	out := make([]Decision, 64)
	for i := range reqs {
		reqs[i] = Request{Label: labels[i%len(labels)], Size: 1000}
	}
	// Warm: grow pooled scratch to the batch size and roll first epochs.
	for i := 0; i < 10; i++ {
		ss.ScheduleBatch(reqs, out)
		clk.Advance(60_000)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ss.ScheduleBatch(reqs, out)
	})
	if allocs != 0 {
		t.Fatalf("inline sharded ScheduleBatch allocates %.1f/op, want 0", allocs)
	}
}

// Parallel mode under chaos: workers on a wall clock, concurrent
// producers, shard-targeted faults armed. Every fed packet is
// scheduled exactly once and the fault windows only touch their
// targets. Run with -race (and -tags fvassert for the conservation
// asserts) in CI.
func TestShardedParallelChaosSoak(t *testing.T) {
	tr := tenantTree(t, 8)
	labels := tenantLabels(t, tr, 8)
	ss, err := NewSharded(tr, clock.NewWall(), Config{}, ShardConfig{Shards: 4, RingPkts: 512})
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Seed: 42, Events: []faults.Event{
		{Kind: faults.KindLockContention, AtNs: 0, DurationNs: 1e12, Prob: 0.5, Shard: "shard1"},
		{Kind: faults.KindEpochDelay, AtNs: 0, DurationNs: 1e12, DelayNs: 200_000, Shard: "shard2"},
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e12, Prob: 0.2},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ss.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}

	if err := ss.StartWorkers(); err != nil {
		t.Fatal(err)
	}
	if err := ss.StartWorkers(); err == nil {
		t.Fatal("second StartWorkers succeeded")
	}

	const producers, perProducer = 4, 50_000
	var pushed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var ok int64
			for i := 0; i < perProducer; i++ {
				lbl := labels[(p+i)%len(labels)]
				if ss.Feed(lbl, 64+i%1400) {
					ok++
				} else {
					runtime.Gosched()
				}
			}
			mu.Lock()
			pushed += ok
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	ss.StopWorkers()

	if got := ss.Processed(); got != pushed {
		t.Fatalf("workers processed %d packets, producers pushed %d", got, pushed)
	}
	if pushed+int64(ss.RingDrops()) != producers*perProducer {
		t.Fatalf("pushed %d + ring drops %d ≠ offered %d", pushed, ss.RingDrops(), producers*perProducer)
	}
	var fwd, drop int64
	for _, st := range ss.Snapshot() {
		fwd += st.FwdPkts
		drop += st.DropPkts
	}
	if fwd+drop != pushed {
		t.Fatalf("forwarded %d + dropped %d ≠ scheduled %d: packets lost or double-counted", fwd, drop, pushed)
	}
	if ss.inner[1].InjectedFaults().LockMisses == 0 {
		t.Error("shard1 lock-contention window never fired under load")
	}
	if ss.inner[0].InjectedFaults().LockMisses != 0 {
		t.Error("shard0 saw lock misses from a shard1-targeted event")
	}

	// Inline mode resumes after StopWorkers.
	if d := ss.Schedule(labels[0], 1000); d.Verdict != Forward && d.Verdict != Drop {
		t.Fatalf("inline Schedule after StopWorkers returned %+v", d)
	}
}
