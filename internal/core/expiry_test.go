package core

import (
	"testing"

	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// Expired-status removal must clear the lend ledger (lentEpoch and
// lendCarry) along with the estimator and buckets. A stale negative
// lendCarry would carry phantom pre-idle lend debt into the first fresh
// epoch and mute an interior class's shadow refill; a stale lentEpoch
// would subtract pre-idle lent bytes from the fresh epoch's consumption.
func TestExpiryClearsLendLedger(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "s2", Parent: "root"}).
		Add(tree.ClassSpec{Name: "ws", Parent: "s2"}).
		Add(tree.ClassSpec{Name: "ml", Parent: "s2", BorrowFrom: []string{"s2"}}).
		MustBuild()
	s := newSched(t, eng, tr)
	// Two update rounds propagate θ from the root to s2.
	s.ForceUpdate()
	s.ForceUpdate()

	c, ok := tr.Lookup("s2")
	if !ok {
		t.Fatal("s2 missing")
	}
	st := &s.states[c.ID]
	if st.theta.Load() <= 0 {
		t.Fatalf("s2 theta = %v, want > 0", st.theta.Load())
	}

	// Pre-idle state: the class lent bytes this epoch and its ledger has
	// banked the maximum debt (a subtree that burned burst above rate).
	st.lentEpoch.Store(1 << 20)
	st.lendCarry.Store(-(1 << 40))

	// Idle past the expiry threshold, then run the class's next epoch.
	cfg := s.Config()
	idle := cfg.ExpireAfterNs * 3
	eng.RunUntil(eng.Now() + idle)
	now := s.clk.Now()
	st.mu.Lock()
	ran := s.updateLocked(c, st, now)
	st.mu.Unlock()
	if !ran {
		t.Fatal("expiry epoch did not execute")
	}

	if got := st.lentEpoch.Load(); got != 0 {
		t.Fatalf("lentEpoch after expiry = %d, want 0", got)
	}
	if got := st.lendCarry.Load(); got != 0 {
		t.Fatalf("lendCarry after expiry = %d, want 0", got)
	}
	// First fresh epoch: Γ restarts from zero...
	if got := st.est.Rate(); got != 0 {
		t.Fatalf("gamma after expiry epoch = %v, want 0", got)
	}
	// ...and the interior class lends again immediately: the fresh
	// epoch's unconsumed supplement reaches the shadow bucket instead of
	// being swallowed by phantom debt.
	if got := st.shadow.Tokens(); got <= 0 {
		t.Fatalf("interior shadow tokens after expiry epoch = %d, want > 0 (lending muted by stale lendCarry)", got)
	}
}

// The NoLock ablation shares subprocedure 3: without it, an idle gap is
// replayed as one giant epoch whose oversized supplement floods the
// shadow bucket with phantom lendable tokens.
func TestExpiryAppliesUnderNoLock(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root"}).
		MustBuild()
	s, err := New(tr, eng.Clock(), Config{Lock: NoLock})
	if err != nil {
		t.Fatal(err)
	}
	s.ForceUpdate()
	s.ForceUpdate()

	c, _ := tr.Lookup("a")
	st := &s.states[c.ID]
	theta := st.theta.Load()
	if theta <= 0 {
		t.Fatalf("theta = %v, want > 0", theta)
	}
	st.lentEpoch.Store(1 << 20)

	cfg := s.Config()
	idle := cfg.ExpireAfterNs * 20
	eng.RunUntil(eng.Now() + idle)
	if !s.updateRacy(c, st, s.clk.Now()) {
		t.Fatal("expiry epoch did not execute")
	}

	if got := st.lentEpoch.Load(); got != 0 {
		t.Fatalf("lentEpoch after expiry = %d, want 0", got)
	}
	// One nominal epoch's supplement bounds the fresh shadow level; the
	// old code refilled it with θ·(idle gap) — orders of magnitude more.
	oneEpoch := int64(theta * float64(cfg.UpdateIntervalNs) / 1e9)
	if got := st.shadow.Tokens(); got > oneEpoch {
		t.Fatalf("shadow after expiry = %d tokens, want ≤ one epoch's supplement (%d) — idle gap replayed as refill", got, oneEpoch)
	}
}
