package core

import (
	"runtime"
	"sync"
	"testing"

	"flowvalve/internal/sched/tree"
)

func ringLabel(t *testing.T) *tree.Label {
	t.Helper()
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root"}).
		MustBuild()
	lbl, ok := tr.LabelByName("a")
	if !ok {
		t.Fatal("leaf label missing")
	}
	return lbl
}

func TestFeedRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct {
		capacity int
		want     uint64
	}{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048}} {
		r := newFeedRing(tc.capacity)
		if r.size != tc.want {
			t.Errorf("newFeedRing(%d).size = %d, want %d", tc.capacity, r.size, tc.want)
		}
		if r.mask != tc.want-1 {
			t.Errorf("newFeedRing(%d).mask = %d, want %d", tc.capacity, r.mask, tc.want-1)
		}
	}
}

func TestFeedRingFullFailsPushAndCounts(t *testing.T) {
	lbl := ringLabel(t)
	r := newFeedRing(4)
	for i := 0; i < 4; i++ {
		if !r.push(lbl, i) {
			t.Fatalf("push %d failed on a non-full ring", i)
		}
	}
	if r.push(lbl, 99) {
		t.Fatal("push succeeded on a full ring")
	}
	if got := r.Drops(); got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
	reqs := make([]Request, 8)
	n := r.drainOwner(reqs)
	if n != 4 {
		t.Fatalf("drained %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if reqs[i].Size != i || reqs[i].Label != lbl {
			t.Fatalf("reqs[%d] = {%v %d}, want {lbl %d} (FIFO order)", i, reqs[i].Label, reqs[i].Size, i)
		}
	}
	// The overflowed entry was dropped, not deferred.
	if r.drainOwner(reqs) != 0 {
		t.Fatal("ring not empty after full drain")
	}
}

func TestFeedRingWraparound(t *testing.T) {
	lbl := ringLabel(t)
	r := newFeedRing(4)
	reqs := make([]Request, 4)
	seq := 0
	for lap := 0; lap < 100; lap++ {
		for i := 0; i < 3; i++ {
			if !r.push(lbl, seq+i) {
				t.Fatalf("lap %d: push failed", lap)
			}
		}
		if n := r.drainOwner(reqs); n != 3 {
			t.Fatalf("lap %d: drained %d, want 3", lap, n)
		}
		for i := 0; i < 3; i++ {
			if reqs[i].Size != seq+i {
				t.Fatalf("lap %d: reqs[%d].Size = %d, want %d", lap, i, reqs[i].Size, seq+i)
			}
		}
		seq += 3
	}
}

// TestFeedRingMPSC exercises the multi-producer protocol under real
// goroutine concurrency (meaningful chiefly under -race): every pushed
// entry is drained exactly once and each producer's entries arrive in
// its program order.
func TestFeedRingMPSC(t *testing.T) {
	lbl := ringLabel(t)
	const producers, perProducer = 4, 20000
	r := newFeedRing(256)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !r.push(lbl, p*1_000_000+i) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	done := make(chan struct{})
	var total int
	lastSeq := [producers]int{}
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	go func() {
		defer close(done)
		reqs := make([]Request, 64)
		for total < producers*perProducer {
			n := r.drainOwner(reqs)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, q := range reqs[:n] {
				p, seq := q.Size/1_000_000, q.Size%1_000_000
				if seq <= lastSeq[p] {
					t.Errorf("producer %d: seq %d arrived after %d (per-producer FIFO broken)", p, seq, lastSeq[p])
					return
				}
				lastSeq[p] = seq
			}
			total += n
		}
	}()
	wg.Wait()
	<-done
	if total != producers*perProducer {
		t.Fatalf("drained %d entries, want %d", total, producers*perProducer)
	}
}
