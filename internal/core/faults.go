package core

import (
	"fmt"
	"sync/atomic"

	"flowvalve/internal/faults"
	"flowvalve/internal/sched/tree"
)

// The scheduler implements the injector's pull-model sink: fault windows
// are compiled once at ApplyFaults time and evaluated against the
// scheduler's own clock on the update path, so the same plan works under
// the DES and under wall time (the facade's live datapath), with no
// goroutines and no engine dependency.
var _ faults.SchedulerSink = (*Scheduler)(nil)

// faultWindow is one compiled scheduler-scoped fault interval.
type faultWindow struct {
	from, to int64
	prob     float64
	delayNs  int64
	// mask restricts the window to specific classes (bitset by ClassID);
	// nil applies to every class.
	mask []uint64
}

func (w *faultWindow) active(now int64) bool { return now >= w.from && now < w.to }

func (w *faultWindow) applies(id tree.ClassID) bool {
	if w.mask == nil {
		return true
	}
	word := int(id) >> 6
	return word < len(w.mask) && w.mask[word]&(1<<(uint(id)&63)) != 0
}

// schedFaults is the installed fault state, swapped atomically on the
// scheduler so the fault-free fast path pays exactly one pointer load
// per Schedule/ScheduleBatch call.
type schedFaults struct {
	lockMiss   []faultWindow
	epochDrop  []faultWindow
	epochDelay []faultWindow

	// rngState drives the probability rolls: a splitmix64 stream over
	// the plan seed, advanced atomically so concurrent cores draw
	// distinct, deterministic values.
	rngState atomic.Uint64

	nLockMiss   atomic.Int64
	nEpochDrop  atomic.Int64
	nEpochDelay atomic.Int64
}

// roll returns the next deterministic uniform draw in [0,1).
func (f *schedFaults) roll() float64 {
	return float64(faults.Splitmix64(f.rngState.Add(1))>>11) / float64(1<<53)
}

// gate evaluates the epoch-update fault windows for a class whose epoch
// is due (dt ≥ interval), reporting whether the update attempt must be
// suppressed. Suppression leaves lastUpdate untouched: an epoch-drop
// window therefore starves the class's token refills outright — exactly
// the stalled-epoch condition the Watchdog exists to detect.
func (f *schedFaults) gate(id tree.ClassID, now, dt, intervalNs int64) bool {
	for i := range f.epochDelay {
		w := &f.epochDelay[i]
		if w.active(now) && w.applies(id) && dt < intervalNs+w.delayNs {
			f.nEpochDelay.Add(1)
			return true
		}
	}
	for i := range f.epochDrop {
		w := &f.epochDrop[i]
		if w.active(now) && w.applies(id) {
			if w.prob >= 1 || f.roll() < w.prob {
				f.nEpochDrop.Add(1)
				return true
			}
		}
	}
	return false
}

// missLock reports whether a try-lock update attempt must be failed
// artificially — contention amplification without real lock holders.
func (f *schedFaults) missLock(id tree.ClassID, now int64) bool {
	for i := range f.lockMiss {
		w := &f.lockMiss[i]
		if w.active(now) && w.applies(id) {
			if w.prob >= 1 || f.roll() < w.prob {
				f.nLockMiss.Add(1)
				return true
			}
		}
	}
	return false
}

// ApplyFaults compiles and installs the plan's scheduler-scoped windows
// (lock-contention, epoch-drop, epoch-delay), replacing any previous
// plan. NIC- and clock-scoped events in the plan are ignored here — the
// injector routes those to their own hooks. A plan with no
// scheduler-scoped events uninstalls the fault state entirely, restoring
// the zero-overhead path.
func (s *Scheduler) ApplyFaults(p *faults.Plan) error {
	if p == nil {
		s.flt.Store(nil)
		return nil
	}
	f := &schedFaults{}
	f.rngState.Store(p.Seed)
	for i := range p.Events {
		e := &p.Events[i]
		if !e.Kind.SchedulerScoped() {
			continue
		}
		// Shard targeting: a standalone scheduler is "shard0". Events
		// aimed at other shards belong to a ShardedScheduler, which
		// filters per shard before delegating here.
		if e.Shard != "" && e.Shard != "shard0" {
			continue
		}
		w := faultWindow{
			from:    e.AtNs,
			to:      e.AtNs + e.DurationNs,
			prob:    e.EffectiveProb(),
			delayNs: e.DelayNs,
		}
		if len(e.Classes) > 0 {
			w.mask = make([]uint64, (s.tree.Len()+63)/64)
			for _, name := range e.Classes {
				c, ok := s.tree.Lookup(name)
				if !ok {
					return fmt.Errorf("core: fault plan names unknown class %q", name)
				}
				w.mask[int(c.ID)>>6] |= 1 << (uint(c.ID) & 63)
			}
		}
		switch e.Kind {
		case faults.KindLockContention:
			f.lockMiss = append(f.lockMiss, w)
		case faults.KindEpochDrop:
			f.epochDrop = append(f.epochDrop, w)
		case faults.KindEpochDelay:
			f.epochDelay = append(f.epochDelay, w)
		}
	}
	if len(f.lockMiss)+len(f.epochDrop)+len(f.epochDelay) == 0 {
		s.flt.Store(nil)
		return nil
	}
	s.flt.Store(f)
	return nil
}

// ClearFaults uninstalls every fault window.
func (s *Scheduler) ClearFaults() { s.flt.Store(nil) }

// InjectedFaults reports the cumulative scheduler-scoped injected-fault
// counters (counts are per suppressed/failed update attempt). Counters
// belong to the installed plan; re-applying a plan restarts them.
func (s *Scheduler) InjectedFaults() faults.SchedulerCounts {
	f := s.flt.Load()
	if f == nil {
		return faults.SchedulerCounts{}
	}
	return faults.SchedulerCounts{
		LockMisses:    f.nLockMiss.Load(),
		DroppedEpochs: f.nEpochDrop.Load(),
		DelayedEpochs: f.nEpochDelay.Load(),
	}
}
