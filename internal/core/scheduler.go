// Package core implements FlowValve's scheduling function — the paper's
// primary contribution (§IV).
//
// A Scheduler holds the runtime state of one scheduling tree: per-class
// token buckets (limiting at leaves, measuring at interior nodes), shadow
// buckets publishing lendable bandwidth, consumption-rate estimators, and
// the per-class update locks. The Schedule method is Algorithm 1 verbatim:
// walk the packet's hierarchy label root→leaf performing opportunistic
// (try-lock) epoch updates and consumption counting, meter at the leaf,
// borrow from the shadow buckets named in the borrowing label on red, and
// otherwise drop — the "specialized tail drop" that assigns the NIC's
// single FIFO conceptually among classes.
//
// The scheduler is time-source-agnostic (clock.Clock) and safe for
// concurrent use: under the discrete-event NIC model it is driven
// single-threaded with explicit cycle costs, while the wall-clock
// benchmarks drive it from many goroutines exactly as the NP's
// micro-engines would.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flowvalve/internal/clock"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/token"
)

// LockMode selects the scheduling-tree update synchronization strategy.
// FlowValve's design is per-class try-locks (Fig 7-(c)); the other modes
// exist for the paper's design-space ablation (Fig 7-(a)/(b)).
type LockMode int

const (
	// PerClassTryLock is FlowValve's design: each class has its own
	// update lock; cores that fail to acquire it skip the update and
	// only meter. Packet forwarding never blocks.
	PerClassTryLock LockMode = iota + 1
	// GlobalLock funnels every update through one blocking lock,
	// emulating a naive port of the kernel qdisc (Fig 7-(b)).
	GlobalLock
	// NoLock runs updates with no mutual exclusion (Fig 7-(a)); token
	// accounting stays memory-safe (atomics) but epochs race, producing
	// the inaccuracy the paper demonstrates.
	NoLock
)

// Config tunes the scheduler. The zero value is usable: Defaults fills in
// the paper-calibrated values.
type Config struct {
	// UpdateIntervalNs is the minimum epoch length between two update
	// subprocedures of the same class. Smaller is more reactive but
	// costs more cycles (ablation: update-interval sweep).
	UpdateIntervalNs int64
	// ExpireAfterNs is the idle threshold after which per-class status
	// (estimators, bucket levels) is restored to its initial value
	// (§IV-C subprocedure 3).
	ExpireAfterNs int64
	// BurstNs sizes each class bucket to θ·BurstNs (clamped below by
	// MinBurstBytes) — the depth of the emulated per-class queue.
	BurstNs int64
	// ShadowBurstNs sizes shadow buckets; lendable tokens older than
	// this are considered stale and are not offered to borrowers.
	ShadowBurstNs int64
	// MinBurstBytes floors every bucket so a class can always pass at
	// least a few MTUs back-to-back.
	MinBurstBytes int64
	// EWMAAlpha smooths the Γ estimators; 1 = instantaneous.
	EWMAAlpha float64
	// Lock selects the update synchronization strategy.
	Lock LockMode
	// ECNMarkFrac is an extension beyond the paper: virtual-queue ECN.
	// When positive, a green packet is forwarded *marked* whenever its
	// leaf bucket has fallen below this fraction of its burst — an
	// early congestion signal a cooperating transport reacts to before
	// the bucket runs red. Red packets still drop, so the policy stays
	// hard-enforced; the marks just collapse the loss rate. Typical
	// value 0.5; 0 disables marking.
	ECNMarkFrac float64
}

// Defaults returns cfg with unset fields replaced by the calibrated
// defaults used throughout the evaluation.
func (c Config) Defaults() Config {
	if c.UpdateIntervalNs <= 0 {
		// 50µs epochs: each refill lump (θ·ΔT) must fit inside the
		// traffic manager's per-port buffer or admission becomes
		// bursty enough to overflow it, and a refill gap must never
		// outlast that buffer or the wire idles. Cheap on the cycle
		// budget — §IV-D: the NP's rate estimation runs at high
		// sampling frequency.
		c.UpdateIntervalNs = 50_000
	}
	if c.ExpireAfterNs <= 0 {
		c.ExpireAfterNs = 50_000_000 // 50ms idle → expired
	}
	if c.BurstNs <= 0 {
		c.BurstNs = 4_000_000 // 4ms of tokens
	}
	if c.ShadowBurstNs <= 0 {
		c.ShadowBurstNs = 2_000_000
	}
	if c.MinBurstBytes <= 0 {
		c.MinBurstBytes = 32 * 1024
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		// Keeps the Γ time constant at ≈1ms with 50µs epochs.
		c.EWMAAlpha = 0.05
	}
	if c.Lock == 0 {
		c.Lock = PerClassTryLock
	}
	return c
}

// classState is the mutable runtime state of one class. All fields are
// updated either atomically (meters, counters, published rates) or under
// mu (epoch rolls, child-rate recomputation).
type classState struct {
	mu sync.Mutex

	bucket token.Bucket // leaf: limits; interior: measures
	shadow token.Bucket // lendable tokens (Eq. 6)
	est    *token.Estimator

	theta      token.AtomicFloat64 // granted token rate, bytes/s
	lendRate   token.AtomicFloat64 // published lendable rate, bytes/s
	lastUpdate atomic.Int64        // ns of last epoch roll
	lastSeen   atomic.Int64        // ns of last packet touching this class
	lentEpoch  atomic.Int64        // bytes lent from the shadow this epoch
	lendCarry  atomic.Int64        // interior lend ledger: deficit carried across epochs

	// Scratch for tree.ChildRates, guarded by mu.
	rateScratch []float64

	// Statistics (atomic; read via Snapshot).
	fwdPkts    atomic.Int64
	fwdBytes   atomic.Int64
	dropPkts   atomic.Int64
	dropBytes  atomic.Int64
	borrowPkts atomic.Int64 // forwarded via a shadow bucket
	markPkts   atomic.Int64 // forwarded with a congestion mark
	lentBytes  atomic.Int64 // granted to borrowers from this shadow
	updates    atomic.Int64 // epoch rolls executed
}

// Scheduler is a FlowValve instance bound to one scheduling tree.
type Scheduler struct {
	tree   *tree.Tree
	clk    clock.Clock
	cfg    Config
	states []classState

	// manualClk/wallClk cache the concrete type behind clk (probed once
	// in New) so the per-packet and per-batch time reads devirtualize:
	// the stock clocks are final, and an interface dispatch per packet
	// is exactly the kind of hidden cost the boxing analyzer polices.
	manualClk *clock.Manual
	wallClk   *clock.Wall

	// globalMu is the GlobalLock-mode epoch lock. It is the outermost
	// scheduler lock by decree: per-class locks may be taken under it
	// (the locking-ablation harness compares the modes), never the
	// reverse.
	//
	//fv:lockorder core.Scheduler.globalMu before core.classState.mu
	globalMu sync.Mutex

	// batchPool recycles ScheduleBatch working sets; concurrent batches
	// each draw their own, so batching stays allocation-free without
	// sharing scratch across goroutines.
	batchPool sync.Pool

	// tel is the attached observability state (nil when telemetry is
	// off). Swapped atomically so AttachTelemetry is safe against
	// in-flight Schedule calls.
	tel atomic.Pointer[telHooks]

	// flt is the installed fault-injection state (nil when fault-free).
	// Swapped atomically like tel, so ApplyFaults is safe against
	// in-flight Schedule calls and the no-fault path costs one load.
	flt atomic.Pointer[schedFaults]

	// shard is non-nil when this scheduler is one shard of a
	// ShardedScheduler (see shard.go): it carries the shard's identity,
	// the class→owner partition, and the shard-local lease buckets that
	// stand in for remote lenders' shadow buckets. A standalone
	// scheduler leaves it nil and pays one nil check on the borrow path.
	shard *shardCtx
}

// shardCtx is one shard's view of the cross-shard partition. The owner
// and slot tables are immutable after construction; the lease states
// are written by this shard's scheduling goroutine (consumption) and
// the settlement reconciler (grants).
type shardCtx struct {
	id    int32
	owner []int32 // ClassID → owning shard
	slot  []int32 // ClassID → lease slot, -1 when the class is not a cross-shard lender

	// leases holds this shard's local token leases, one per cross-shard
	// lender (indexed by slot). Tokens are granted by the reconciler at
	// settlement and consumed here between settlements, so borrowing
	// never touches another shard's cache lines on the packet path.
	leases []leaseState
}

// leaseState is one shard's local lease on a remote lender's shadow
// bucket. tokens is the spendable balance (granted − consumed, never
// negative); consumed is the cumulative spend the reconciler settles
// against the owner shard's accounting at epoch boundaries.
type leaseState struct {
	tokens   atomic.Int64
	consumed atomic.Int64
	_        [48]byte // one lease per cache line: the reconciler's grant writes must not false-share neighbours
}

// owns reports whether class id lives on this shard's partition.
func (sc *shardCtx) owns(id tree.ClassID) bool { return sc.owner[id] == sc.id }

// tryLease spends sz bytes from the local lease on a remote lender,
// reporting success. The CAS loop keeps the balance non-negative even
// with concurrent inline callers on the same shard.
//
//fv:hotpath
func (sc *shardCtx) tryLease(id tree.ClassID, sz int64) bool {
	slot := sc.slot[id]
	if slot < 0 {
		return false
	}
	ls := &sc.leases[slot]
	for {
		cur := ls.tokens.Load()
		if cur < sz {
			return false
		}
		if ls.tokens.CompareAndSwap(cur, cur-sz) {
			ls.consumed.Add(sz)
			return true
		}
	}
}

// New builds a scheduler over t, reading time from clk. It validates that
// the tree has a rated root and primes every class with its initial token
// rate (computed top-down assuming zero measured consumption).
func New(t *tree.Tree, clk clock.Clock, cfg Config) (*Scheduler, error) {
	if t == nil || t.Root() == nil {
		return nil, fmt.Errorf("core: nil scheduling tree")
	}
	if clk == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	cfg = cfg.Defaults()
	s := &Scheduler{
		tree:   t,
		clk:    clk,
		cfg:    cfg,
		states: make([]classState, t.Len()),
	}
	switch c := clk.(type) {
	case *clock.Manual:
		s.manualClk = c
	case *clock.Wall:
		s.wallClk = c
	}
	for i := range s.states {
		s.states[i].est = token.NewEstimator(cfg.EWMAAlpha)
	}
	classes := t.Len()
	s.batchPool.New = func() any { return newBatchScratch(classes) }
	s.prime()
	return s, nil
}

// now reads the scheduler clock, dispatching statically to the stock
// concrete clocks. Custom Clock implementations (none in-tree) fall back
// to the virtual call.
//
//fv:hotpath
func (s *Scheduler) now() int64 {
	if m := s.manualClk; m != nil {
		return m.Now()
	}
	if w := s.wallClk; w != nil {
		return w.Now()
	}
	//fv:boxing-ok out-of-tree Clock implementations take the virtual slow path; both stock clocks devirtualize above
	return s.clk.Now()
}

// prime distributes initial token rates top-down with Γ=0 and fills every
// bucket to its burst, so the first packets of a fresh run are admitted.
func (s *Scheduler) prime() {
	now := s.clk.Now()
	root := s.tree.Root()
	s.states[root.ID].theta.Store(root.RateBps / 8)
	// Breadth-first: parents before children.
	queue := []*tree.Class{root}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		st := &s.states[c.ID]
		theta := st.theta.Load()
		st.bucket.Reset(s.burstFor(theta, s.cfg.BurstNs))
		st.shadow.Reset(0)
		st.lastUpdate.Store(now)
		st.lastSeen.Store(now)
		if len(c.Children) > 0 {
			rates := tree.ChildRates(c, theta, func(*tree.Class) float64 { return 0 }, st.rateScratch)
			st.rateScratch = rates
			for i, ch := range c.Children {
				s.states[ch.ID].theta.Store(rates[i])
				queue = append(queue, ch)
			}
		}
	}
}

// burstFor sizes a bucket for a given rate over the configured horizon.
func (s *Scheduler) burstFor(rate float64, horizonNs int64) int64 {
	b := int64(rate * float64(horizonNs) / 1e9)
	if b < s.cfg.MinBurstBytes {
		b = s.cfg.MinBurstBytes
	}
	return b
}

// Tree returns the scheduling tree the scheduler enforces.
func (s *Scheduler) Tree() *tree.Tree { return s.tree }

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Theta returns the current granted token rate of a class in bits/second,
// for monitoring and tests.
func (s *Scheduler) Theta(c *tree.Class) float64 {
	return s.states[c.ID].theta.Load() * 8
}

// Gamma returns the current measured consumption rate of a class in
// bits/second (zero if expired).
func (s *Scheduler) Gamma(c *tree.Class) float64 {
	return s.effectiveGammaAt(c, s.clk.Now()) * 8
}
