package core

import (
	"flowvalve/internal/dataplane"
	"flowvalve/internal/fvassert"
	"flowvalve/internal/sched/tree"
)

// Verdict, Decision and the verdict constants are the dataplane types:
// core is one implementation of dataplane.Scheduler, and every consumer
// (NIC model, facade, harnesses) speaks the interface vocabulary. The
// aliases keep the historical core.Forward / core.Decision spellings
// valid at zero cost.
type (
	// Verdict is the forwarding decision of the scheduling function.
	Verdict = dataplane.Verdict
	// Decision reports the outcome of scheduling one packet.
	Decision = dataplane.Decision
	// Request is one packet's input to ScheduleBatch.
	Request = dataplane.Request
)

const (
	// Forward admits the packet to the transmit buffer.
	Forward = dataplane.Forward
	// Drop discards the packet — the specialized tail drop.
	Drop = dataplane.Drop
)

// Scheduler implements the unified backend-scheduler interface.
var _ dataplane.Scheduler = (*Scheduler)(nil)

// Schedule runs the scheduling function (Algorithm 1) for one packet of
// `size` bytes carrying QoS label lbl, and returns the forwarding
// decision. It is safe to call from any number of goroutines.
//
//fv:hotpath
func (s *Scheduler) Schedule(lbl *tree.Label, size int) Decision {
	now := s.now()
	sz := int64(size)
	d := Decision{Batched: 1}
	flt := s.flt.Load()

	// Lines 1–5: walk the hierarchy label root→leaf; refresh token
	// buckets opportunistically and record the packet against every
	// class's consumption counter on forward (deferred below so that
	// dropped packets do not inflate Γ — Γ measures *forwarding*
	// consumption, Eq. 3).
	for _, c := range lbl.Path {
		st := &s.states[c.ID]
		st.lastSeen.Store(now)
		s.maybeUpdate(c, st, now, &d, flt)
	}

	leaf := lbl.Leaf
	lst := &s.states[leaf.ID]

	// Lines 6–8: meter at the leaf.
	if lst.bucket.TryConsume(sz) {
		seq := s.recordForward(lbl, sz)
		d.Verdict = Forward
		// Virtual-queue ECN extension: signal congestion early while
		// the packet is still green.
		if f := s.cfg.ECNMarkFrac; f > 0 &&
			lst.bucket.Tokens() < int64(f*float64(lst.bucket.Burst())) {
			lst.markPkts.Add(1)
			d.Marked = true
		}
		if h := s.tel.Load(); h != nil {
			h.trace(seq, now, lbl, lst, sz, &d)
		}
		return d
	}

	// Lines 9–15: borrowing — query the shadow bucket of each lender in
	// the borrowing label. The query is "another practice of the
	// rate-limiting process" (§IV-C): the borrower opportunistically
	// runs the lender's update subprocedure so that an idle lender's
	// shadow keeps filling at its lendable rate even though the lender
	// itself sees no packet arrivals.
	for _, lender := range lbl.Borrow {
		if sc := s.shard; sc != nil && !sc.owns(lender.ID) {
			// Remote lender: spend from the shard-local lease instead
			// of the lender's shadow bucket (which lives — and is
			// refilled — on the owner shard only; touching a replica's
			// copy would mint tokens twice). The lender-side Γ and
			// lending counters are settled by the reconciler.
			if sc.tryLease(lender.ID, sz) {
				if s.cfg.ECNMarkFrac > 0 {
					lst.markPkts.Add(1)
					d.Marked = true
				}
				lst.borrowPkts.Add(1)
				seq := s.recordForward(lbl, sz)
				d.Verdict = Forward
				d.Borrowed = true
				d.Lender = lender
				if h := s.tel.Load(); h != nil {
					h.trace(seq, now, lbl, lst, sz, &d)
				}
				return d
			}
			continue
		}
		ls := &s.states[lender.ID]
		s.maybeUpdate(lender, ls, now, &d, flt)
		if ls.shadow.TryConsume(sz) {
			// Borrowed bandwidth is inherently contended; mark it
			// under the ECN extension so borrowers yield first.
			if s.cfg.ECNMarkFrac > 0 {
				lst.markPkts.Add(1)
				d.Marked = true
			}
			ls.lentBytes.Add(sz)
			ls.lentEpoch.Add(sz)
			// The lender's reservation is in active use, so its
			// status must not expire while it keeps lending.
			ls.lastSeen.Store(now)
			// Lent bandwidth is consumption of the lender's
			// reservation: it must appear in the lender's Γ so the
			// rate-distribution templates see the share as used
			// (Fig 9). When the lender sits on the packet's own
			// hierarchy path, recordForward below already counts
			// it — "its flow rate is fully reflected on S2's token
			// consumption rate" — so skip the extra count.
			if !labelPathContains(lbl, lender) {
				ls.est.Count(sz)
			}
			lst.borrowPkts.Add(1)
			seq := s.recordForward(lbl, sz)
			d.Verdict = Forward
			d.Borrowed = true
			d.Lender = lender
			if h := s.tel.Load(); h != nil {
				h.trace(seq, now, lbl, lst, sz, &d)
			}
			return d
		}
	}

	// Line 16: drop.
	seq := lst.dropPkts.Add(1)
	lst.dropBytes.Add(sz)
	d.Verdict = Drop
	if h := s.tel.Load(); h != nil {
		h.trace(seq, now, lbl, lst, sz, &d)
	}
	return d
}

// labelPathContains reports whether c is on the label's hierarchy path.
// Paths are at most a handful of classes, so a linear scan beats any
// precomputed set.
func labelPathContains(lbl *tree.Label, c *tree.Class) bool {
	for _, pc := range lbl.Path {
		if pc == c {
			return true
		}
	}
	return false
}

// maybeUpdate runs the update subprocedure for one class under the
// configured locking strategy, accumulating decision telemetry. flt is
// the caller's one fault-state load for the whole call (nil when
// fault-free); injected faults act only on due epochs, so an inactive
// or class-filtered window costs the hot path nothing but the check.
func (s *Scheduler) maybeUpdate(c *tree.Class, st *classState, now int64, d *Decision, flt *schedFaults) {
	if flt != nil {
		dt := now - st.lastUpdate.Load()
		if dt >= s.cfg.UpdateIntervalNs {
			if flt.gate(c.ID, now, dt, s.cfg.UpdateIntervalNs) {
				return
			}
			if s.cfg.Lock == PerClassTryLock && flt.missLock(c.ID, now) {
				d.LockMisses++
				return
			}
		}
	}
	switch s.cfg.Lock {
	case PerClassTryLock:
		if st.mu.TryLock() {
			//fv:coldpath epoch roll: runs once per UpdateIntervalNs per class, amortized off the per-packet path
			if s.updateLocked(c, st, now) {
				d.Updates++
			}
			st.mu.Unlock()
		} else {
			d.LockMisses++
		}
	case GlobalLock:
		s.globalMu.Lock()
		//fv:coldpath epoch roll: runs once per UpdateIntervalNs per class, amortized off the per-packet path
		if s.updateLocked(c, st, now) {
			d.Updates++
		}
		s.globalMu.Unlock()
	case NoLock:
		// Ablation: races between epochs permitted.
		//fv:racy-ok NoLock mode exists to measure exactly this race; see DESIGN.md locking ablations
		if s.updateRacy(c, st, now) { //fv:coldpath epoch roll: runs once per UpdateIntervalNs per class, amortized off the per-packet path
			d.Updates++
		}
	}
}

// recordForward counts a forwarded packet against every class on the path
// (estimators feeding Γ) and the leaf's forward statistics. It returns the
// leaf's new forward-packet ordinal, which the telemetry hook reuses as
// its sampling sequence — tracing costs the unsampled path nothing.
//
//fv:hotpath
func (s *Scheduler) recordForward(lbl *tree.Label, sz int64) int64 {
	for _, c := range lbl.Path {
		s.states[c.ID].est.Count(sz)
	}
	lst := &s.states[lbl.Leaf.ID]
	n := lst.fwdPkts.Add(1)
	lst.fwdBytes.Add(sz)
	return n
}

// updateLocked runs the update subprocedure for class c if its epoch has
// elapsed, returning whether an update executed. Caller holds st.mu (or
// the global lock).
func (s *Scheduler) updateLocked(c *tree.Class, st *classState, now int64) bool {
	last := st.lastUpdate.Load()
	dt := now - last
	if dt < s.cfg.UpdateIntervalNs {
		return false
	}
	st.lastUpdate.Store(now)

	// Telemetry: time the executed epoch roll on the scheduler's own
	// clock. Under a wall-backed clock this is the real compute cost of
	// the update subprocedure — the quantity the NP cycle budget cares
	// about; under the DES Manual clock it is identically zero, keeping
	// seeded runs bit-identical even with latency sampling attached.
	// Only paid when a histogram is attached.
	var t0 int64
	h := s.tel.Load()
	if h != nil && h.updateDur != nil {
		t0 = s.clk.Now()
	}

	// Subprocedure 3: expired-status removal. A long-idle class
	// restarts from its initial state rather than replaying the idle
	// gap as a giant refill. The lend ledger resets with it: a stale
	// lentEpoch would subtract pre-idle lent bytes from the first fresh
	// epoch's consumption, and a stale negative lendCarry would mute an
	// interior class's lending with phantom pre-idle debt.
	if dt > s.cfg.ExpireAfterNs {
		st.est.Reset()
		st.bucket.Reset(s.burstFor(st.theta.Load(), s.cfg.BurstNs))
		st.shadow.Reset(0)
		st.lendRate.Store(0)
		st.lentEpoch.Store(0)
		st.lendCarry.Store(0)
		dt = s.cfg.UpdateIntervalNs // charge one nominal epoch
	}

	if fvassert.Enabled && dt <= 0 {
		fvassert.Failf("core: class %d epoch rolled with non-positive dt %d (now %d, last %d): clock not monotone",
			c.ID, dt, now, last)
	}

	theta := st.theta.Load()

	// Roll the Γ estimator over the epoch. Γ includes bytes lent from
	// the shadow bucket (they consume this class's reservation), but
	// the shadow refill below must exclude them — the shadow was
	// already drained by the borrowers.
	consumed, _ := st.est.Roll(dt)
	gamma := st.est.Rate()
	lent := st.lentEpoch.Swap(0)
	own := consumed - lent
	if own < 0 {
		own = 0
	}

	// Refill the class bucket: supplement = θ·ΔT (the paper's update
	// stage), with the burst re-sized to the current θ.
	supplement := int64(theta * float64(dt) / 1e9)
	st.bucket.SetBurst(s.burstFor(theta, s.cfg.BurstNs))
	absorbed := st.bucket.Refill(supplement)
	if fvassert.Enabled && (absorbed < 0 || absorbed > supplement) {
		fvassert.Failf("core: class %d epoch minted θ·ΔT=%d but the bucket absorbed %d: conservation violated",
			c.ID, supplement, absorbed)
	}

	// Sharded mode: the root is the one class whose state is split
	// across every shard (each replica sees only its shard's traffic),
	// so root-level decisions that need the *global* Γ — lendable
	// minting and child-rate recomputation — are made by the shard
	// reconciler at settlement, not by any single replica. A replica
	// deciding from its local Γ would see the other shards' children as
	// idle and over-grant its own.
	if s.shard != nil && c.Parent == nil {
		st.updates.Add(1)
		if h != nil && h.updateDur != nil {
			h.updateDur.Observe(float64(s.clk.Now() - t0))
		}
		return true
	}

	// Shadow bucket (subprocedure 2): publish this epoch's unconsumed
	// tokens for eligible borrowers. For a leaf, "unconsumed" is
	// whatever its (metered) bucket could not absorb — routing the
	// overflow, never minting twice. Interior buckets are measuring
	// devices that are never consumed from, so their unconsumed share
	// is computed from the counted consumption instead.
	lendable := tree.Lendable(theta, gamma)
	st.lendRate.Store(lendable)
	st.shadow.SetBurst(s.burstFor(theta, s.cfg.ShadowBurstNs))
	unused := supplement - absorbed
	if !c.Leaf() {
		unused = s.interiorUnused(st, supplement, own, theta)
	}
	if unused > 0 {
		st.shadow.Refill(unused)
	}

	// Recompute the children's token rates from the condition templates
	// (priority residual / weights / guarantees / ceilings).
	if len(c.Children) > 0 {
		rates := tree.ChildRates(c, theta, s.gammaFuncAt(now), st.rateScratch)
		st.rateScratch = rates
		for i, ch := range c.Children {
			s.states[ch.ID].theta.Store(rates[i])
		}
	}
	st.updates.Add(1)
	if h != nil && h.updateDur != nil {
		h.updateDur.Observe(float64(s.clk.Now() - t0))
	}
	return true
}

// updateRacy is the NoLock ablation: identical logic but callable
// concurrently — epoch arithmetic is deliberately allowed to race. The
// ChildRates scratch is reused from st.rateScratch whenever the class
// lock is free (one uncontended CAS — it always is in the
// single-threaded DES, where this used to allocate every epoch); only
// a genuinely contended update falls back to a fresh allocation, so
// the ablation's numbers measure racing epochs, not the allocator,
// while the scratch itself never becomes a data race.
func (s *Scheduler) updateRacy(c *tree.Class, st *classState, now int64) bool {
	last := st.lastUpdate.Load()
	dt := now - last
	if dt < s.cfg.UpdateIntervalNs {
		return false
	}
	st.lastUpdate.Store(now)
	// Subprocedure 3, as in updateLocked: a long-idle class restarts
	// fresh (including the lend ledger) instead of replaying the gap.
	if dt > s.cfg.ExpireAfterNs {
		st.est.Reset()
		st.bucket.Reset(s.burstFor(st.theta.Load(), s.cfg.BurstNs))
		st.shadow.Reset(0)
		st.lendRate.Store(0)
		st.lentEpoch.Store(0)
		st.lendCarry.Store(0)
		dt = s.cfg.UpdateIntervalNs
	}
	consumed, _ := st.est.Roll(dt)
	lent := st.lentEpoch.Swap(0)
	own := consumed - lent
	if own < 0 {
		own = 0
	}
	theta := st.theta.Load()
	supplement := int64(theta * float64(dt) / 1e9)
	st.bucket.SetBurst(s.burstFor(theta, s.cfg.BurstNs))
	absorbed := st.bucket.Refill(supplement)
	if s.shard != nil && c.Parent == nil {
		// Sharded mode: root lending and child rates are global
		// decisions taken at settlement (see updateLocked).
		st.updates.Add(1)
		return true
	}
	st.lendRate.Store(tree.Lendable(theta, st.est.Rate()))
	st.shadow.SetBurst(s.burstFor(theta, s.cfg.ShadowBurstNs))
	unused := supplement - absorbed
	if !c.Leaf() {
		unused = s.interiorUnused(st, supplement, own, theta)
	}
	if unused > 0 {
		st.shadow.Refill(unused)
	}
	if len(c.Children) > 0 {
		if st.mu.TryLock() {
			rates := tree.ChildRates(c, theta, s.gammaFuncAt(now), st.rateScratch)
			st.rateScratch = rates
			for i, ch := range c.Children {
				s.states[ch.ID].theta.Store(rates[i])
			}
			st.mu.Unlock()
		} else {
			rates := tree.ChildRates(c, theta, s.gammaFuncAt(now), nil)
			for i, ch := range c.Children {
				s.states[ch.ID].theta.Store(rates[i])
			}
		}
	}
	st.updates.Add(1)
	return true
}

// interiorUnused maintains the interior-class lend ledger: each epoch
// contributes (supplement − counted consumption), which can be negative
// when the subtree burns banked burst tokens above the rate. Lendable
// tokens are released only while the ledger is positive, so dip tokens a
// child later reclaims from its own bucket are never also lent out —
// that asymmetry would rectify the TCP sawtooth into sustained ceiling
// overshoot. The debt is bounded by one bucket burst so a measurement
// anomaly cannot mute lending forever.
func (s *Scheduler) interiorUnused(st *classState, supplement, own int64, theta float64) int64 {
	carry := st.lendCarry.Load() + supplement - own
	if debtCap := -s.burstFor(theta, s.cfg.BurstNs); carry < debtCap {
		carry = debtCap
	}
	if carry > 0 {
		st.lendCarry.Store(0)
		return carry
	}
	st.lendCarry.Store(carry)
	return 0
}

// gammaFuncAt returns a tree.GammaFunc that reads each class's estimator,
// treating classes idle past the expiry threshold as zero-rate (the
// reader-side half of expired-status removal).
func (s *Scheduler) gammaFuncAt(now int64) tree.GammaFunc {
	return func(c *tree.Class) float64 {
		return s.effectiveGammaAt(c, now)
	}
}

func (s *Scheduler) effectiveGammaAt(c *tree.Class, now int64) float64 {
	st := &s.states[c.ID]
	if now-st.lastSeen.Load() > s.cfg.ExpireAfterNs {
		return 0
	}
	return st.est.Rate()
}

// ForceUpdate runs the update subprocedure for every class immediately,
// regardless of epoch elapse. Tests and the DES warm-up use it to bring
// the tree to a consistent state at a known instant.
func (s *Scheduler) ForceUpdate() {
	now := s.clk.Now()
	for _, c := range s.tree.Classes() {
		st := &s.states[c.ID]
		st.mu.Lock()
		// Rewind lastUpdate just enough to satisfy the epoch check.
		st.lastUpdate.Store(now - s.cfg.UpdateIntervalNs)
		s.updateLocked(c, st, now)
		st.mu.Unlock()
	}
}
