package core

import (
	"sync/atomic"

	"flowvalve/internal/sched/tree"
)

// feedRing is the bounded lock-free MPSC ring that feeds one scheduler
// shard in parallel mode: any number of classifier/producer goroutines
// push, exactly one shard worker drains. The design is the classic
// sequence-stamped array queue (Vyukov): each slot carries a sequence
// atomic whose value tells a producer whether the slot is free for
// ticket `pos` (seq == pos) and the consumer whether the payload at
// `head` is published (seq == head+1). Producers claim tickets with one
// CAS on tail; payload fields are plain because the slot's sequence
// stamp orders every access to them (the publish Store releases the
// payload write, the consumer's Load acquires it) — the "ring atomics"
// convention the atomicmix analyzer knows: atomics carry the protocol,
// payloads stay plain, and the two never mix on the same field.
//
// The ring never blocks: a full ring fails the push (the caller counts
// the overflow and drops, exactly like a hardware feed ring), an empty
// ring returns zero from drain.
type feedRing struct {
	mask uint64
	size uint64
	_    [48]byte // keep the consumer cursor off the geometry line

	// head is the consumer cursor. It is a plain field owned by the
	// single drainer — the lockconv "Owner" convention: only *Owner
	// methods touch it.
	head uint64
	_    [56]byte // producers' tail CAS must not false-share head

	tail  atomic.Uint64
	_     [56]byte
	drops atomic.Uint64 // pushes rejected because the ring was full

	slots []ringSlot
}

// ringSlot is one ring entry: the sequence stamp plus the plain payload
// it protects.
type ringSlot struct {
	seq  atomic.Uint64
	lbl  *tree.Label
	size int32
	_    [64 - 8 - 8 - 4]byte // one slot per cache line: no false sharing between adjacent tickets
}

// newFeedRing builds a ring with capacity rounded up to a power of two
// (minimum 2).
func newFeedRing(capacity int) *feedRing {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	r := &feedRing{mask: n - 1, size: n, slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push offers one packet to the ring from any producer goroutine. It
// returns false — counting the overflow — when the ring is full.
//
//fv:hotpath
func (r *feedRing) push(lbl *tree.Label, size int) bool {
	pos := r.tail.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.lbl = lbl
				slot.size = int32(size)
				slot.seq.Store(pos + 1) // publish: releases the payload writes
				return true
			}
			pos = r.tail.Load()
		case diff < 0:
			// The slot still holds an undrained entry from one lap
			// ago: the ring is full.
			r.drops.Add(1)
			return false
		default:
			// Another producer claimed this ticket; chase the tail.
			pos = r.tail.Load()
		}
	}
}

// drainOwner moves up to len(reqs) published entries into reqs,
// returning how many it moved. Single-consumer only: the shard worker
// that owns the ring (it is the sole reader/writer of r.head).
//
//fv:hotpath
func (r *feedRing) drainOwner(reqs []Request) int {
	n := 0
	for n < len(reqs) {
		slot := &r.slots[r.head&r.mask]
		if slot.seq.Load() != r.head+1 {
			break // next entry not yet published
		}
		reqs[n] = Request{Label: slot.lbl, Size: int(slot.size)}
		slot.lbl = nil // drop the label reference before recycling the slot
		slot.seq.Store(r.head + r.size)
		r.head++
		n++
	}
	return n
}

// lenOwner reports the published backlog. Single-consumer only, like
// drainOwner; producers must not call it.
func (r *feedRing) lenOwner() int { return int(r.tail.Load() - r.head) }

// Drops reports how many pushes the ring rejected for being full.
func (r *feedRing) Drops() uint64 { return r.drops.Load() }
