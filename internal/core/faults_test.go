package core

import (
	"testing"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/faults"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

func twoClassTree(t *testing.T) *tree.Tree {
	t.Helper()
	return tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "A", Parent: "root"}).
		Add(tree.ClassSpec{Name: "B", Parent: "root"}).
		MustBuild()
}

// An epoch-drop window with prob 1 suppresses every update inside it:
// the class keeps its primed bucket but receives no refills, so the
// admitted volume during the window collapses to roughly the primed
// burst, then recovers after the window clears.
func TestEpochDropStarvesRefills(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")

	plan := &faults.Plan{Seed: 1, Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e9, Prob: 1},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}

	const horizon = int64(2e9)
	d := offer(eng, s, lbl, 1500, 2e9, 0, horizon)
	eng.RunUntil(horizon)

	// The fault window [0,1s) admits only the primed burst (θ·4ms —
	// noise next to a second of refills), so nearly all forwarded bytes
	// come from the healthy second half: ≈1×θ·1s, against ≈2×θ·1s had
	// both halves refilled.
	c, _ := tr.Lookup("A")
	thetaBytes := s.states[c.ID].theta.Load() // granted rate after the run, bytes/s
	if lo := int64(0.5 * thetaBytes); d.fwdBytes < lo {
		t.Fatalf("forwarded %d bytes, want ≥ %d (healthy half must flow)", d.fwdBytes, lo)
	}
	if hi := int64(1.5 * thetaBytes); d.fwdBytes > hi {
		t.Fatalf("forwarded %d bytes > %d — epoch-drop did not starve the window", d.fwdBytes, hi)
	}
	counts := s.InjectedFaults()
	if counts.DroppedEpochs == 0 {
		t.Fatal("no dropped epochs counted")
	}
}

// Lock-contention windows fail try-lock updates with the configured
// probability and surface as LockMisses on the decision.
func TestLockContentionCountsMisses(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")

	plan := &faults.Plan{Seed: 9, Events: []faults.Event{
		{Kind: faults.KindLockContention, AtNs: 0, DurationNs: 1e9, Prob: 1},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	var misses int
	for i := 0; i < 200; i++ {
		eng.Clock().Advance(100_000) // two epochs per step: updates always due
		d := s.Schedule(lbl, 1500)
		misses += d.LockMisses
	}
	if misses == 0 {
		t.Fatal("no lock misses injected")
	}
	if got := s.InjectedFaults().LockMisses; got == 0 {
		t.Fatal("no lock misses counted")
	}
}

// Epoch-delay stretches the effective interval: updates run only once
// interval+delay has elapsed, and the deferrals are counted.
func TestEpochDelayDefersUpdates(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")
	interval := s.Config().UpdateIntervalNs

	plan := &faults.Plan{Seed: 2, Events: []faults.Event{
		{Kind: faults.KindEpochDelay, AtNs: 0, DurationNs: 1e12, DelayNs: 10 * interval},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	// One epoch past due: delayed.
	eng.Clock().Advance(2 * interval)
	d := s.Schedule(lbl, 1500)
	if d.Updates != 0 {
		t.Fatalf("update ran %d epochs in, want deferral", d.Updates)
	}
	if got := s.InjectedFaults().DelayedEpochs; got == 0 {
		t.Fatal("no delayed epochs counted")
	}
	// Past interval+delay: the update must go through.
	eng.Clock().Advance(12 * interval)
	d = s.Schedule(lbl, 1500)
	if d.Updates == 0 {
		t.Fatal("update still deferred past interval+delay")
	}
}

// Class-restricted windows only bite the named classes.
func TestFaultClassMask(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lblA, _ := tr.LabelByName("A")
	lblB, _ := tr.LabelByName("B")

	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e12, Prob: 1, Classes: []string{"A"}},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	eng.Clock().Advance(2 * s.Config().UpdateIntervalNs)
	s.Schedule(lblA, 1500)
	s.Schedule(lblB, 1500)
	// Only "A" is masked; B (and the shared root) still update.
	cA, _ := tr.Lookup("A")
	cB, _ := tr.Lookup("B")
	root := tr.Root()
	if got := s.states[cA.ID].updates.Load(); got != 0 {
		t.Fatalf("masked class A rolled %d epochs inside drop window", got)
	}
	if s.states[cB.ID].updates.Load() == 0 {
		t.Fatal("unmasked class B failed to update")
	}
	if s.states[root.ID].updates.Load() == 0 {
		t.Fatal("unmasked root failed to update")
	}
}

func TestApplyFaultsUnknownClass(t *testing.T) {
	eng := sim.New()
	s := newSched(t, eng, twoClassTree(t))
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1, Prob: 1, Classes: []string{"nope"}},
	}}
	if err := s.ApplyFaults(plan); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// ClearFaults (and a plan with no scheduler-scoped events) uninstalls
// the fault state entirely, restoring the nil fast path.
func TestClearFaultsRestoresFastPath(t *testing.T) {
	eng := sim.New()
	s := newSched(t, eng, twoClassTree(t))
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1, Prob: 1},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	if s.flt.Load() == nil {
		t.Fatal("fault state not installed")
	}
	s.ClearFaults()
	if s.flt.Load() != nil {
		t.Fatal("fault state survived ClearFaults")
	}
	// NIC-only plans install nothing.
	nicOnly := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindCoreStall, AtNs: 0, DurationNs: 1, Cores: 1},
	}}
	if err := s.ApplyFaults(nicOnly); err != nil {
		t.Fatal(err)
	}
	if s.flt.Load() != nil {
		t.Fatal("NIC-only plan installed scheduler fault state")
	}
	if c := s.InjectedFaults(); c != (faults.SchedulerCounts{}) {
		t.Fatalf("cleared counters = %+v", c)
	}
}

// The armed fault path must stay allocation-free: windows are compiled
// once, rolls are atomic arithmetic.
func TestScheduleWithFaultsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; covered by the plain run")
	}
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")
	plan := &faults.Plan{Seed: 3, Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e12, Prob: 0.5},
		{Kind: faults.KindLockContention, AtNs: 0, DurationNs: 1e12, Prob: 0.5},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	reqs := []dataplane.Request{{Label: lbl, Size: 1500}}
	out := make([]dataplane.Decision, 1)
	allocs := testing.AllocsPerRun(200, func() {
		eng.Clock().Advance(100_000)
		s.Schedule(lbl, 1500)
		s.ScheduleBatch(reqs, out)
	})
	if allocs != 0 {
		t.Fatalf("faulted hot path allocates %.1f/op", allocs)
	}
}
