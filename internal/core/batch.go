package core

import (
	"flowvalve/internal/dataplane"
	"flowvalve/internal/sched/tree"
)

// batchScratch is the working set of one ScheduleBatch call, pooled on
// the scheduler so steady-state batching allocates nothing. Slices are
// indexed by tree.ClassID.
//
//fv:owner
type batchScratch struct {
	// fwd accumulates forwarded bytes per class (path consumption plus
	// lent bytes counted against off-path lenders), flushed into the Γ
	// estimators as one Count per class at the end of the batch.
	fwd []int64
	// touched lists the classes with pending fwd bytes.
	touched []*tree.Class
	// seen marks (by generation) classes whose epoch-elapse check
	// already ran this batch.
	seen []uint32
	gen  uint32
	// traces queues sampled decisions for batched emission.
	traces []pendingTrace

	// Leaf verdict counters, accumulated here when telemetry is
	// detached (no per-packet sequence numbers needed) and flushed as
	// one atomic add per counter per touched leaf at the end of the
	// batch. cntTouched lists the leaves with pending counts.
	fwdPk      []uint32
	fwdBy      []int64
	dropPk     []uint32
	dropBy     []int64
	cntTouched []*tree.Class
}

// leafFwd counts one forwarded packet of sz bytes against leaf c in
// batch-local scratch (telemetry-detached path).
func (bs *batchScratch) leafFwd(c *tree.Class, sz int64) {
	if bs.fwdPk[c.ID] == 0 && bs.dropPk[c.ID] == 0 {
		bs.cntTouched = append(bs.cntTouched, c)
	}
	bs.fwdPk[c.ID]++
	bs.fwdBy[c.ID] += sz
}

// leafDrop counts one dropped packet of sz bytes against leaf c in
// batch-local scratch (telemetry-detached path).
func (bs *batchScratch) leafDrop(c *tree.Class, sz int64) {
	if bs.fwdPk[c.ID] == 0 && bs.dropPk[c.ID] == 0 {
		bs.cntTouched = append(bs.cntTouched, c)
	}
	bs.dropPk[c.ID]++
	bs.dropBy[c.ID] += sz
}

// pendingTrace is one sampled decision awaiting trace emission.
type pendingTrace struct {
	seq int64
	idx int32
}

func newBatchScratch(classes int) *batchScratch {
	return &batchScratch{
		fwd:     make([]int64, classes),
		touched: make([]*tree.Class, 0, classes),
		seen:    make([]uint32, classes),
		fwdPk:   make([]uint32, classes),
		fwdBy:   make([]int64, classes),
		dropPk:  make([]uint32, classes),
		dropBy:  make([]int64, classes),
	}
}

// nextGen advances the batch generation, clearing the seen markers only
// on the (once per 4G batches) wrap-around.
func (bs *batchScratch) nextGen() uint32 {
	bs.gen++
	if bs.gen == 0 {
		clear(bs.seen)
		bs.gen = 1
	}
	return bs.gen
}

// count defers the Γ consumption count of sz bytes for every class on
// the path until the batch flush.
func (bs *batchScratch) count(path []*tree.Class, sz int64) {
	if sz == 0 {
		return
	}
	for _, c := range path {
		bs.countOne(c, sz)
	}
}

func (bs *batchScratch) countOne(c *tree.Class, sz int64) {
	if bs.fwd[c.ID] == 0 {
		bs.touched = append(bs.touched, c)
	}
	bs.fwd[c.ID] += sz
}

// ScheduleBatch runs the scheduling function for a burst of packets in
// one pass, writing out[i] for reqs[i] (len(out) must be ≥ len(reqs)).
//
// The batch path is Algorithm 1 with its per-packet overheads amortized
// across the burst, the way the NP's packet contexts share one pipeline
// pass:
//
//   - one clock read for the whole batch (every packet is stamped with
//     the same arrival instant — exactly what a single DES event or one
//     Rx-ring doorbell delivers);
//   - one epoch-elapse check, and at most one locked update, per class
//     per batch instead of per packet (idempotent within a batch: after
//     the first check the class's epoch cannot elapse again at the same
//     timestamp);
//   - one estimator Count per touched class, accumulated in non-atomic
//     scratch while the batch runs;
//   - trace emission batched after the verdict loop, so the sampled
//     packets cost the unsampled ones nothing.
//
// At batch size 1 the decision sequence is identical to calling
// Schedule per packet. At larger sizes verdicts can differ transiently
// around an epoch boundary (the update lands on the batch's first
// toucher instead of between packets), but admitted byte totals stay
// within one epoch's refill of the per-packet path — the token supply
// is epoch-driven, not call-driven, so batch size does not change
// enforced rates.
//
// Safe for concurrent use like Schedule; scratch state is pooled per
// call, never shared between concurrent batches.
//
//fv:hotpath
func (s *Scheduler) ScheduleBatch(reqs []dataplane.Request, out []dataplane.Decision) {
	if len(reqs) == 0 {
		return
	}
	bs := s.batchPool.Get().(*batchScratch)
	//fv:owner-ok scratch drawn from the pool is exclusively held until the Put below
	s.scheduleBatchOwner(reqs, out, bs)
	//fv:owner-ok ownership returns to the pool: this frame holds the only reference and never touches bs after the Put
	s.batchPool.Put(bs)
}

// scheduleBatchOwner is ScheduleBatch against caller-owned scratch. The
// Owner suffix is the single-goroutine-ownership convention: bs must be
// exclusively held by the caller for the duration of the call — the
// pool wrapper above guarantees it per call, and each parallel shard
// worker owns a dedicated scratch outright, so sharded batching never
// bounces scratch through a shared sync.Pool between cores.
//
//fv:hotpath
func (s *Scheduler) scheduleBatchOwner(reqs []dataplane.Request, out []dataplane.Decision, bs *batchScratch) {
	n := len(reqs)
	if n == 0 {
		return
	}
	out = out[:n]
	now := s.now()
	gen := bs.nextGen()
	h := s.tel.Load()
	flt := s.flt.Load()

	for i := range reqs {
		lbl := reqs[i].Label
		sz := int64(reqs[i].Size)
		d := &out[i]
		*d = Decision{Batched: n}

		// Lines 1–5 amortized: every packet in the batch shares one
		// arrival instant, so both the lastSeen stamp (what keeps an
		// active class from expiring) and the epoch-elapse check run
		// once per class per batch — repeat stores of the same now are
		// pure cache traffic.
		for _, c := range lbl.Path {
			if bs.seen[c.ID] != gen {
				bs.seen[c.ID] = gen
				st := &s.states[c.ID]
				st.lastSeen.Store(now)
				s.maybeUpdate(c, st, now, d, flt)
			}
		}

		leaf := lbl.Leaf
		lst := &s.states[leaf.ID]

		// Lines 6–8: meter at the leaf.
		if lst.bucket.TryConsume(sz) {
			bs.count(lbl.Path, sz)
			d.Verdict = Forward
			if f := s.cfg.ECNMarkFrac; f > 0 &&
				lst.bucket.Tokens() < int64(f*float64(lst.bucket.Burst())) {
				lst.markPkts.Add(1)
				d.Marked = true
			}
			if h != nil {
				seq := lst.fwdPkts.Add(1)
				lst.fwdBytes.Add(sz)
				bs.traces = append(bs.traces, pendingTrace{seq: seq, idx: int32(i)})
			} else {
				bs.leafFwd(leaf, sz)
			}
			continue
		}

		// Lines 9–15: borrowing, with each lender's opportunistic
		// update also amortized to once per batch.
		borrowed := false
		for _, lender := range lbl.Borrow {
			if sc := s.shard; sc != nil && !sc.owns(lender.ID) {
				// Remote lender: spend the shard-local lease (see
				// Schedule); the lender's replica state on this shard
				// is never touched, so nothing mints twice.
				if sc.tryLease(lender.ID, sz) {
					if s.cfg.ECNMarkFrac > 0 {
						lst.markPkts.Add(1)
						d.Marked = true
					}
					lst.borrowPkts.Add(1)
					bs.count(lbl.Path, sz)
					d.Verdict = Forward
					d.Borrowed = true
					d.Lender = lender
					if h != nil {
						seq := lst.fwdPkts.Add(1)
						lst.fwdBytes.Add(sz)
						bs.traces = append(bs.traces, pendingTrace{seq: seq, idx: int32(i)})
					} else {
						bs.leafFwd(leaf, sz)
					}
					borrowed = true
					break
				}
				continue
			}
			ls := &s.states[lender.ID]
			if bs.seen[lender.ID] != gen {
				bs.seen[lender.ID] = gen
				s.maybeUpdate(lender, ls, now, d, flt)
			}
			if ls.shadow.TryConsume(sz) {
				if s.cfg.ECNMarkFrac > 0 {
					lst.markPkts.Add(1)
					d.Marked = true
				}
				ls.lentBytes.Add(sz)
				ls.lentEpoch.Add(sz)
				ls.lastSeen.Store(now)
				if !labelPathContains(lbl, lender) {
					bs.countOne(lender, sz)
				}
				lst.borrowPkts.Add(1)
				bs.count(lbl.Path, sz)
				d.Verdict = Forward
				d.Borrowed = true
				d.Lender = lender
				if h != nil {
					seq := lst.fwdPkts.Add(1)
					lst.fwdBytes.Add(sz)
					bs.traces = append(bs.traces, pendingTrace{seq: seq, idx: int32(i)})
				} else {
					bs.leafFwd(leaf, sz)
				}
				borrowed = true
				break
			}
		}
		if borrowed {
			continue
		}

		// Line 16: drop.
		d.Verdict = Drop
		if h != nil {
			seq := lst.dropPkts.Add(1)
			lst.dropBytes.Add(sz)
			bs.traces = append(bs.traces, pendingTrace{seq: seq, idx: int32(i)})
		} else {
			bs.leafDrop(leaf, sz)
		}
	}

	// Flush: one estimator Count per touched class. No epoch can have
	// rolled since a class's bytes began accumulating (its single check
	// ran before its first consume), so deferral is invisible to Γ.
	for _, c := range bs.touched {
		s.states[c.ID].est.Count(bs.fwd[c.ID])
		bs.fwd[c.ID] = 0
	}

	// Flush the telemetry-detached leaf verdict counters: one atomic
	// add per counter per touched leaf instead of two per packet.
	for _, c := range bs.cntTouched {
		lst := &s.states[c.ID]
		if pk := bs.fwdPk[c.ID]; pk != 0 {
			lst.fwdPkts.Add(int64(pk))
			lst.fwdBytes.Add(bs.fwdBy[c.ID])
			bs.fwdPk[c.ID], bs.fwdBy[c.ID] = 0, 0
		}
		if pk := bs.dropPk[c.ID]; pk != 0 {
			lst.dropPkts.Add(int64(pk))
			lst.dropBytes.Add(bs.dropBy[c.ID])
			bs.dropPk[c.ID], bs.dropBy[c.ID] = 0, 0
		}
	}
	bs.cntTouched = bs.cntTouched[:0]
	bs.touched = bs.touched[:0]

	// Batched trace emission. QueueDepth on sampled events reads the
	// post-batch bucket level — the price of keeping sampling off the
	// verdict loop.
	if h != nil {
		for _, pt := range bs.traces {
			lbl := reqs[pt.idx].Label
			h.trace(pt.seq, now, lbl, &s.states[lbl.Leaf.ID],
				int64(reqs[pt.idx].Size), &out[pt.idx])
		}
		bs.traces = bs.traces[:0]
	}
}
