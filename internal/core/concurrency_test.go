package core

import (
	"runtime"
	"sync"
	"testing"

	"flowvalve/internal/clock"
	"flowvalve/internal/sched/tree"
)

// fairTree builds the 4-leaf fair-queueing tree used by the concurrency
// tests, mirroring the Fig 11(b) policy.
func fairTree(rateBps float64) *tree.Tree {
	b := tree.NewBuilder().Root("root", rateBps)
	names := []string{"app0", "app1", "app2", "app3"}
	for _, n := range names {
		var lenders []string
		for _, o := range names {
			if o != n {
				lenders = append(lenders, o)
			}
		}
		b.Add(tree.ClassSpec{Name: n, Parent: "root", Weight: 1, BorrowFrom: lenders})
	}
	return b.MustBuild()
}

// Many goroutines — one per simulated micro-engine — hammer Schedule
// under the wall clock. Run with -race this verifies the lock discipline;
// the assertions verify token conservation: admitted bytes never exceed
// the configured rate over the wall window (plus burst).
func TestConcurrentScheduleConservesTokens(t *testing.T) {
	tr := fairTree(8e9) // 1 GB/s
	clk := clock.NewWall()
	s, err := New(tr, clk, Config{})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]*tree.Label, 4)
	for i, name := range []string{"app0", "app1", "app2", "app3"} {
		lbl, ok := tr.LabelByName(name)
		if !ok {
			t.Fatal("missing label")
		}
		labels[i] = lbl
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 50_000
	const size = 1500
	admitted := make([]int64, workers)
	start := clk.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := labels[w%len(labels)]
			for i := 0; i < perWorker; i++ {
				if s.Schedule(lbl, size).Verdict == Forward {
					admitted[w] += size
				}
			}
		}()
	}
	wg.Wait()
	elapsed := clk.Now() - start

	var total int64
	for _, a := range admitted {
		total += a
	}
	// Bound: rate×elapsed + initial bursts (4 leaves + root) + shadow
	// bursts. Generous 2× margin on the burst component keeps the test
	// robust on slow machines while still catching unsynchronized
	// token minting (which would inflate admissions by orders of
	// magnitude in a microsecond-scale run).
	cfg := s.Config()
	burstBudget := 10 * (int64(1e9*float64(cfg.BurstNs)/1e9) + cfg.MinBurstBytes)
	bound := int64(float64(elapsed)/1e9*1e9) + burstBudget // 1 GB/s × elapsed + bursts
	if total > bound {
		t.Fatalf("admitted %d bytes in %dns, bound %d — tokens minted from races", total, elapsed, bound)
	}
}

// The decision telemetry must report lock misses under contention and the
// scheduler must remain live (every call returns a verdict).
func TestConcurrentLockMissesReported(t *testing.T) {
	tr := fairTree(8e15) // effectively unlimited: every packet forwards
	clk := clock.NewWall()
	// Tiny epoch so updates happen constantly and locks actually
	// contend.
	s, err := New(tr, clk, Config{UpdateIntervalNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := tr.LabelByName("app0")

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	misses := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20_000; i++ {
				d := s.Schedule(lbl, 64)
				if d.Verdict != Forward && d.Verdict != Drop {
					t.Error("invalid verdict")
					return
				}
				misses[w] += d.LockMisses
			}
		}()
	}
	wg.Wait()
	// Misses are expected but not guaranteed on every machine; the test
	// asserts only liveness and race-freedom (via -race).
}

// All three lock modes must produce the same steady-state conformance in
// the single-threaded DES (they differ only under real parallelism).
func TestLockModesEquivalentSingleThreaded(t *testing.T) {
	for _, mode := range []LockMode{PerClassTryLock, GlobalLock, NoLock} {
		tr := tree.NewBuilder().
			Root("root", 1e9).
			Add(tree.ClassSpec{Name: "A", Parent: "root"}).
			MustBuild()
		clk := clock.NewManual(0)
		s, err := New(tr, clk, Config{Lock: mode})
		if err != nil {
			t.Fatal(err)
		}
		lbl, _ := tr.LabelByName("A")

		// Offer 2 Gbps for 2 virtual seconds with manual clock steps.
		const size = 1500
		gap := int64(float64(size*8) / 2e9 * 1e9)
		var fwd int64
		for clk.Now() < 2e9 {
			if s.Schedule(lbl, size).Verdict == Forward {
				fwd += size
			}
			clk.Advance(gap)
		}
		got := float64(fwd) * 8 / 2
		if got < 0.9e9 || got > 1.1e9 {
			t.Fatalf("mode %v: admitted %.2fGbps, want ≈1", mode, got/1e9)
		}
	}
}

// GlobalLock under real parallelism still conserves tokens (it is the
// slow-but-correct Fig 7-(b) design).
func TestGlobalLockModeConcurrent(t *testing.T) {
	tr := fairTree(8e9)
	clk := clock.NewWall()
	s, err := New(tr, clk, Config{Lock: GlobalLock})
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := tr.LabelByName("app0")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				s.Schedule(lbl, 1500)
			}
		}()
	}
	wg.Wait()
}

// NoLock mode (the Fig 7-(a) ablation) deliberately lets epochs race; it
// must remain memory-safe under real concurrency even though the token
// accounting is allowed to be wrong.
func TestNoLockModeConcurrentMemorySafety(t *testing.T) {
	tr := fairTree(8e9)
	clk := clock.NewWall()
	s, err := New(tr, clk, Config{Lock: NoLock, UpdateIntervalNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]*tree.Label, 0, 4)
	for _, name := range []string{"app0", "app1", "app2", "app3"} {
		lbl, _ := tr.LabelByName(name)
		labels = append(labels, lbl)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := labels[w%len(labels)]
			for i := 0; i < 20_000; i++ {
				if v := s.Schedule(lbl, 1500).Verdict; v != Forward && v != Drop {
					t.Error("invalid verdict")
					return
				}
			}
		}()
	}
	wg.Wait()
}
