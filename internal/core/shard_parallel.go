package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"flowvalve/internal/sched/tree"
)

// Parallel mode: one worker goroutine per shard, fed by that shard's
// bounded MPSC ring. Producers (classifier cores, benchmark drivers)
// call Feed, which steers each packet to its owner shard's ring with
// one CAS; each worker drains its ring into a private request buffer
// and runs the plain per-shard batch path against a dedicated scratch.
// No scheduling state is shared between workers except the lease
// atomics and the settlement lock — the hot path is shard-local by
// construction.

// shardWorker is one shard's parallel service loop state. Everything
// here is owned by the worker goroutine (Owner convention) once
// StartWorkers hands it over.
//
//fv:owner
type shardWorker struct {
	id      int
	sched   *Scheduler
	ring    *feedRing
	reqs    []Request
	dec     []Decision
	scratch *batchScratch // dedicated: never pooled, never shared across shards
	done    atomic.Int64  // packets processed (read live by Processed)
}

// StartWorkers switches the scheduler into parallel mode: it builds the
// per-shard feed rings and launches one worker goroutine per shard.
// Inline Schedule/ScheduleBatch must not be mixed with parallel feeding
// (the partition stays correct, but determinism is gone — that is the
// point of parallel mode).
func (ss *ShardedScheduler) StartWorkers() error {
	if ss.started.Swap(true) {
		return fmt.Errorf("core: workers already started")
	}
	ss.stopped.Store(false)
	ss.rings = make([]*feedRing, ss.n)
	ss.workers = make([]*shardWorker, ss.n)
	for k := 0; k < ss.n; k++ {
		ss.rings[k] = newFeedRing(ss.scfg.RingPkts)
		//fv:owner-ok construction handoff: the worker goroutine spawned below becomes the sole consumer; ss.workers is read only after Stop quiesces
		ss.workers[k] = &shardWorker{
			id:    k,
			sched: ss.inner[k],
			ring:  ss.rings[k],
			reqs:  make([]Request, batchDrain),
			dec:   make([]Decision, batchDrain),
			// A dedicated scratch per worker: cross-shard sync.Pool
			// ping-pong would bounce the scratch's cache lines between
			// cores on every batch, so each worker owns its working set
			// outright for its whole lifetime.
			scratch: newBatchScratch(ss.tree.Len()),
		}
	}
	for k := 0; k < ss.n; k++ {
		ss.wg.Add(1)
		w := ss.workers[k]
		//fv:owner-ok ownership of w transfers to the goroutine spawned here; this is the handoff point
		go ss.serveShardOwner(w)
	}
	return nil
}

// batchDrain is how many ring entries a worker drains per service
// batch — the parallel analogue of the NIC's burst size.
const batchDrain = 64

// Feed offers one packet to its owner shard's ring from any producer
// goroutine. It returns false when that ring is full (the packet is
// dropped and counted; read RingDrops).
//
//fv:hotpath
func (ss *ShardedScheduler) Feed(lbl *tree.Label, size int) bool {
	return ss.rings[ss.owner[lbl.Leaf.ID]].push(lbl, size)
}

// serveShardOwner is shard w's service loop: drain the feed ring, run
// the shard-local batch path, repeat. Sole owner of w and of the ring's
// consumer side.
func (ss *ShardedScheduler) serveShardOwner(w *shardWorker) {
	defer ss.wg.Done()
	idle := 0
	for {
		n := w.ring.drainOwner(w.reqs)
		if n == 0 {
			if ss.stopped.Load() {
				// Stop is requested and the ring is drained; one last
				// check catches entries pushed before the flag landed.
				if w.ring.drainOwner(w.reqs[:1]) == 0 {
					return
				}
				n = 1
			} else {
				idle++
				if idle > 64 {
					runtime.Gosched() //fv:coldpath empty-ring backoff
				}
				continue
			}
		}
		idle = 0
		// Each worker hits the settlement check on its own clock; the
		// TryLock inside elects a single reconciler.
		ss.maybeSettle(ss.now())
		w.sched.scheduleBatchOwner(w.reqs[:n], w.dec[:n], w.scratch)
		w.done.Add(int64(n))
	}
}

// StopWorkers drains the rings, stops the workers, and returns the
// scheduler to inline mode. Safe to call once per StartWorkers.
func (ss *ShardedScheduler) StopWorkers() {
	if !ss.started.Load() || ss.stopped.Swap(true) {
		return
	}
	ss.wg.Wait()
	ss.started.Store(false)
}

// Processed reports how many packets the workers have scheduled since
// StartWorkers. Exact after StopWorkers; a live snapshot before.
func (ss *ShardedScheduler) Processed() int64 {
	var total int64
	for _, w := range ss.workers {
		if w != nil {
			total += w.done.Load()
		}
	}
	return total
}

// RingDrops reports how many Feed offers were rejected ring-full across
// all shards.
func (ss *ShardedScheduler) RingDrops() uint64 {
	var total uint64
	for _, r := range ss.rings {
		if r != nil {
			total += r.Drops()
		}
	}
	return total
}
