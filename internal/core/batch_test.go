package core

import (
	"fmt"
	"testing"

	"flowvalve/internal/clock"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/sched/tree"
)

// batchWorkload is one deterministic packet sequence over the fair tree:
// a mixed-size, mixed-class arrival pattern with time advancing so epoch
// rolls, borrowing, and expiry all occur.
type batchReq struct {
	atNs int64
	app  int
	size int
}

func batchWorkload(n int) []batchReq {
	reqs := make([]batchReq, n)
	now := int64(0)
	for i := range reqs {
		// Deterministic pseudo-pattern: app skews toward 0 so borrowing
		// triggers (app0 overdrives its share, others lend), sizes mix
		// small and MTU, and time advances unevenly across epochs.
		app := (i * 7 % 10) % 4
		if i%3 == 0 {
			app = 0
		}
		size := 1500
		if i%5 == 0 {
			size = 96
		}
		now += int64(2_000 + (i%13)*1_700) // 2–22µs between packets
		reqs[i] = batchReq{atNs: now, app: app, size: size}
	}
	return reqs
}

func newBatchPair(t *testing.T) (*Scheduler, *Scheduler, *clock.Manual, *clock.Manual, []*tree.Label, []*tree.Label) {
	t.Helper()
	mk := func() (*Scheduler, *clock.Manual, []*tree.Label) {
		tr := fairTree(4e9)
		clk := clock.NewManual(0)
		s, err := New(tr, clk, Config{})
		if err != nil {
			t.Fatal(err)
		}
		lbls := make([]*tree.Label, 4)
		for i := range lbls {
			lbl, ok := tr.LabelByName(fmt.Sprintf("app%d", i))
			if !ok {
				t.Fatalf("no label app%d", i)
			}
			lbls[i] = lbl
		}
		return s, clk, lbls
	}
	s1, c1, l1 := mk()
	s2, c2, l2 := mk()
	return s1, s2, c1, c2, l1, l2
}

// TestScheduleBatchSize1Identical: at batch size 1 the batched path must
// be verdict-for-verdict identical to the per-packet path — same
// Verdict, Marked, Borrowed, Lender, and Updates on every decision.
func TestScheduleBatchSize1Identical(t *testing.T) {
	s1, s2, c1, c2, l1, l2 := newBatchPair(t)
	reqs := batchWorkload(20_000)
	var req [1]dataplane.Request
	var out [1]dataplane.Decision
	for i, r := range reqs {
		c1.Set(r.atNs)
		c2.Set(r.atNs)
		d1 := s1.Schedule(l1[r.app], r.size)

		req[0] = dataplane.Request{Label: l2[r.app], Size: r.size}
		s2.ScheduleBatch(req[:], out[:])
		d2 := out[0]

		if d1.Verdict != d2.Verdict || d1.Marked != d2.Marked || d1.Borrowed != d2.Borrowed ||
			d1.Updates != d2.Updates || d1.LockMisses != d2.LockMisses {
			t.Fatalf("pkt %d (app%d %dB @%dns): Schedule=%+v ScheduleBatch[1]=%+v",
				i, r.app, r.size, r.atNs, d1, d2)
		}
		lenderName := func(c *tree.Class) string {
			if c == nil {
				return ""
			}
			return c.Name
		}
		if lenderName(d1.Lender) != lenderName(d2.Lender) {
			t.Fatalf("pkt %d: lender %q vs %q", i, lenderName(d1.Lender), lenderName(d2.Lender))
		}
		if d2.Batched != 1 {
			t.Fatalf("pkt %d: ScheduleBatch of 1 reported Batched=%d", i, d2.Batched)
		}
	}
}

// TestScheduleBatchConformance: at batch sizes 1, 8, and 64 the admitted
// byte totals per class must stay within one epoch's refill (plus an
// MTU) of the per-packet path. The token supply is epoch-driven, not
// call-driven, so batching must not change enforced rates.
func TestScheduleBatchConformance(t *testing.T) {
	for _, bs := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			s1, s2, c1, c2, l1, l2 := newBatchPair(t)
			reqs := batchWorkload(40_000)

			// Reference: per-packet scheduling.
			fwdRef := make(map[int]int64)
			for _, r := range reqs {
				c1.Set(r.atNs)
				if d := s1.Schedule(l1[r.app], r.size); d.Verdict == Forward {
					fwdRef[r.app] += int64(r.size)
				}
			}

			// Batched: group consecutive arrivals into bursts stamped at
			// the burst head's arrival (how an Rx-ring doorbell sees
			// them).
			fwdBatch := make(map[int]int64)
			breqs := make([]dataplane.Request, 0, bs)
			outs := make([]dataplane.Decision, bs)
			apps := make([]int, 0, bs)
			for i := 0; i < len(reqs); i += bs {
				end := min(i+bs, len(reqs))
				burst := reqs[i:end]
				c2.Set(burst[0].atNs)
				breqs, apps = breqs[:0], apps[:0]
				for _, r := range burst {
					breqs = append(breqs, dataplane.Request{Label: l2[r.app], Size: r.size})
					apps = append(apps, r.app)
				}
				s2.ScheduleBatch(breqs, outs[:len(breqs)])
				for j := range breqs {
					if outs[j].Batched != len(breqs) {
						t.Fatalf("burst at %d: Batched=%d want %d", i, outs[j].Batched, len(breqs))
					}
					if outs[j].Verdict == Forward {
						fwdBatch[apps[j]] += int64(breqs[j].Size)
					}
				}
			}

			// Tolerance: one epoch's refill per class at its granted
			// rate, plus one MTU of quantization, plus the arrival-time
			// skew a burst introduces (its tail packets are stamped up
			// to a burst's span earlier than in the reference run).
			cfg := s1.Config()
			burstSpanNs := int64(bs) * 22_000 // max inter-arrival in workload
			for app := 0; app < 4; app++ {
				lbl := l1[app]
				theta := s1.states[lbl.Leaf.ID].theta.Load() // bytes/s
				tol := int64(theta*float64(cfg.UpdateIntervalNs+burstSpanNs)/1e9) + 1500
				diff := fwdBatch[app] - fwdRef[app]
				if diff < 0 {
					diff = -diff
				}
				if diff > tol {
					t.Errorf("app%d admitted bytes diverge: per-packet=%d batched=%d (|Δ|=%d > tol=%d)",
						app, fwdRef[app], fwdBatch[app], diff, tol)
				}
			}
		})
	}
}

// TestScheduleBatchEstimatorFlush: the deferred Γ counting must land in
// the estimators — a batch's forwarded bytes show up in Gamma exactly as
// per-packet counting would.
func TestScheduleBatchEstimatorFlush(t *testing.T) {
	s1, s2, c1, c2, l1, l2 := newBatchPair(t)
	reqs := batchWorkload(10_000)

	for _, r := range reqs {
		c1.Set(r.atNs)
		s1.Schedule(l1[r.app], r.size)
	}
	breqs := make([]dataplane.Request, 0, 8)
	outs := make([]dataplane.Decision, 8)
	for i := 0; i < len(reqs); i += 8 {
		end := min(i+8, len(reqs))
		c2.Set(reqs[i].atNs)
		breqs = breqs[:0]
		for _, r := range reqs[i:end] {
			breqs = append(breqs, dataplane.Request{Label: l2[r.app], Size: r.size})
		}
		s2.ScheduleBatch(breqs, outs[:len(breqs)])
	}

	tr1, tr2 := s1.Tree(), s2.Tree()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("app%d", i)
		c1c, _ := tr1.Lookup(name)
		c2c, _ := tr2.Lookup(name)
		g1, g2 := s1.Gamma(c1c), s2.Gamma(c2c)
		if g1 == 0 && g2 == 0 {
			continue
		}
		ref := g1
		if ref < g2 {
			ref = g2
		}
		if diff := g1 - g2; diff < -0.25*ref || diff > 0.25*ref {
			t.Errorf("class %s: Gamma per-packet=%.0f batched=%.0f (>25%% apart)", name, g1, g2)
		}
	}
}

// TestScheduleBatchConcurrent drives ScheduleBatch from many goroutines
// (run under -race in CI): pooled scratch must never be shared between
// in-flight batches.
func TestScheduleBatchConcurrent(t *testing.T) {
	tr := fairTree(8e9)
	s, err := New(tr, clock.NewWall(), Config{UpdateIntervalNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lbls := make([]*tree.Label, 4)
	for i := range lbls {
		lbls[i], _ = tr.LabelByName(fmt.Sprintf("app%d", i))
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			reqs := make([]dataplane.Request, 16)
			out := make([]dataplane.Decision, 16)
			for i := 0; i < 2_000; i++ {
				for j := range reqs {
					reqs[j] = dataplane.Request{Label: lbls[(g+j)%4], Size: 1500}
				}
				s.ScheduleBatch(reqs, out)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
