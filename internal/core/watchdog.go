package core

import (
	"sync/atomic"

	"flowvalve/internal/sched/tree"
	"flowvalve/internal/telemetry"
)

// WatchdogConfig tunes the graceful-degradation watchdog. The zero value
// derives its thresholds from the scheduler's epoch length.
type WatchdogConfig struct {
	// PollIntervalNs is the watchdog's sampling period (default 2×
	// the scheduler's update interval).
	PollIntervalNs int64
	// StaleAfterNs is how long a class may go without an epoch roll —
	// while packets keep arriving — before it is declared degraded
	// (default 4× the update interval).
	StaleAfterNs int64
}

// Watchdog detects stalled epochs and degrades the affected classes
// gracefully: a class whose packets keep flowing (lastSeen fresh) while
// its epoch updates have stopped rolling (lastUpdate stale — a fault,
// a wedged update path, pathological lock contention) falls back to its
// last-known-safe token rate. The fallback follows the paper's borrowing
// semantics: the degraded class's shadow bucket is drained and its
// lendable rate zeroed (stale measurements must not be lent out), while
// the watchdog itself mints θ_safe·Δt into the class bucket each poll so
// the class keeps forwarding at the last rate the update subprocedure
// vouched for — never more, so token conformance survives the fault.
//
// Recovery is organic: the watchdog never fabricates epoch state, it
// only bridges refills. When the update subprocedure executes again (the
// class's updates counter advances), the class is healthy; the time from
// degradation to that roll is the recovery latency.
//
// Poll must be driven from a single goroutine (the DES harness schedules
// it as a periodic event; a live datapath would use one ticker
// goroutine). The class state it touches is protected by the same locks
// and atomics the scheduler uses, so polling concurrently with Schedule
// calls is safe.
type Watchdog struct {
	s   *Scheduler
	cfg WatchdogConfig

	// Per-class watchdog state, indexed by ClassID and owned by the
	// polling goroutine.
	safeTheta []float64 // last θ observed on a healthy class, bytes/s
	degraded  []bool
	since     []int64 // degradation onset, ns
	updatesAt []int64 // class updates counter at onset

	nDegraded   atomic.Int64 // currently degraded classes
	nRecovered  atomic.Int64
	nForced     atomic.Int64 // forced safe-rate refills
	recoveryTot atomic.Int64 // summed recovery latency, ns
	recHist     atomic.Pointer[telemetry.Histogram]
}

// NewWatchdog builds a watchdog over s. It snapshots the current granted
// rates as the initial safe rates, so a scheduler degraded from its very
// first epoch still falls back to its primed distribution.
func NewWatchdog(s *Scheduler, cfg WatchdogConfig) *Watchdog {
	if cfg.PollIntervalNs <= 0 {
		cfg.PollIntervalNs = 2 * s.cfg.UpdateIntervalNs
	}
	if cfg.StaleAfterNs <= 0 {
		cfg.StaleAfterNs = 4 * s.cfg.UpdateIntervalNs
	}
	n := s.tree.Len()
	w := &Watchdog{
		s:         s,
		cfg:       cfg,
		safeTheta: make([]float64, n),
		degraded:  make([]bool, n),
		since:     make([]int64, n),
		updatesAt: make([]int64, n),
	}
	for _, c := range s.tree.Classes() {
		w.safeTheta[c.ID] = s.states[c.ID].theta.Load()
	}
	return w
}

// PollIntervalNs returns the effective polling period, for schedulers of
// the poll loop.
func (w *Watchdog) PollIntervalNs() int64 { return w.cfg.PollIntervalNs }

// Poll samples every class once: healthy classes refresh their safe
// rate, stalled classes degrade, degraded classes get their safe-rate
// refill or are promoted back to healthy.
func (w *Watchdog) Poll() {
	now := w.s.clk.Now()
	for _, c := range w.s.tree.Classes() {
		id := c.ID
		st := &w.s.states[id]
		if w.degraded[id] {
			if st.updates.Load() > w.updatesAt[id] {
				// The update subprocedure rolled organically — the
				// class has recovered.
				w.degraded[id] = false
				w.nDegraded.Add(-1)
				w.nRecovered.Add(1)
				lat := now - w.since[id]
				w.recoveryTot.Add(lat)
				if h := w.recHist.Load(); h != nil {
					h.Observe(float64(lat))
				}
				w.safeTheta[id] = st.theta.Load()
				continue
			}
			if now-st.lastSeen.Load() > w.s.cfg.ExpireAfterNs {
				// The class went idle while degraded: stand down
				// without a recovery — expired-status removal will
				// reset it when traffic returns.
				w.degraded[id] = false
				w.nDegraded.Add(-1)
				continue
			}
			w.forceRoll(c, st, now)
			continue
		}
		stale := now-st.lastUpdate.Load() > w.cfg.StaleAfterNs
		active := now-st.lastSeen.Load() <= w.cfg.StaleAfterNs
		switch {
		case stale && active:
			// Packets are flowing but epochs are not rolling: degrade.
			w.degraded[id] = true
			w.since[id] = now
			w.updatesAt[id] = st.updates.Load()
			w.nDegraded.Add(1)
			w.forceRoll(c, st, now)
		case !stale:
			w.safeTheta[id] = st.theta.Load()
		}
	}
}

// forceRoll bridges one refill for a degraded class at its last-known-
// safe rate: mint θ_safe·Δt (capped at the expiry horizon) into the
// class bucket, advance lastUpdate so the organic update path cannot
// re-mint the same gap when it resumes, and keep the shadow drained —
// a degraded class must not lend (its Γ measurement is stale).
func (w *Watchdog) forceRoll(c *tree.Class, st *classState, now int64) {
	st.mu.Lock()
	dt := now - st.lastUpdate.Load()
	if dt > 0 {
		if dt > w.s.cfg.ExpireAfterNs {
			dt = w.s.cfg.ExpireAfterNs
		}
		safe := w.safeTheta[c.ID]
		st.theta.Store(safe)
		st.bucket.SetBurst(w.s.burstFor(safe, w.s.cfg.BurstNs))
		st.bucket.Refill(int64(safe * float64(dt) / 1e9))
		st.lastUpdate.Store(now)
	}
	st.shadow.Drain()
	st.lendRate.Store(0)
	st.mu.Unlock()
	w.nForced.Add(1)
}

// DegradedNow returns the number of currently degraded classes.
func (w *Watchdog) DegradedNow() int { return int(w.nDegraded.Load()) }

// Recoveries returns how many degraded classes recovered organically.
func (w *Watchdog) Recoveries() int64 { return w.nRecovered.Load() }

// ForcedRefills returns how many safe-rate bridge refills ran.
func (w *Watchdog) ForcedRefills() int64 { return w.nForced.Load() }

// MeanRecoveryNs returns the mean degradation→recovery latency, or 0
// when nothing has recovered yet.
func (w *Watchdog) MeanRecoveryNs() float64 {
	n := w.nRecovered.Load()
	if n == 0 {
		return 0
	}
	return float64(w.recoveryTot.Load()) / float64(n)
}

// AttachTelemetry registers the watchdog's metric families: the
// degraded-classes gauge, recovery/forced-refill counters, and the
// recovery-latency histogram.
func (w *Watchdog) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("fv_watchdog_degraded_classes",
		"Classes currently running on last-known-safe rates.",
		func() float64 { return float64(w.nDegraded.Load()) })
	reg.CounterFunc("fv_watchdog_recoveries_total",
		"Degraded classes whose epoch updates resumed organically.",
		func() float64 { return float64(w.nRecovered.Load()) })
	reg.CounterFunc("fv_watchdog_forced_refills_total",
		"Safe-rate bridge refills minted for degraded classes.",
		func() float64 { return float64(w.nForced.Load()) })
	w.recHist.Store(reg.Histogram("fv_watchdog_recovery_duration_ns",
		"Latency from degradation onset to organic epoch resume.",
		telemetry.DurationBucketsNs))
}
