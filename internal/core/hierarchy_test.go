package core

import (
	"testing"
	"testing/quick"

	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// A depth-4 hierarchy mixing every condition template: priority at the
// top, weights in the middle, a guarantee and a ceiling at the leaves.
// Verifies the whole Fig 6 machinery composes.
func TestDeepHierarchyComposition(t *testing.T) {
	tr := tree.NewBuilder().
		Root("root", 20e9).
		Add(tree.ClassSpec{Name: "ctl", Parent: "root", Prio: 0, CeilBps: 4e9}).
		Add(tree.ClassSpec{Name: "tenants", Parent: "root", Prio: 1}).
		Add(tree.ClassSpec{Name: "tA", Parent: "tenants", Weight: 3}).
		Add(tree.ClassSpec{Name: "tB", Parent: "tenants", Weight: 1}).
		Add(tree.ClassSpec{Name: "a-rpc", Parent: "tA", Prio: 0}).
		Add(tree.ClassSpec{Name: "a-bulk", Parent: "tA", Prio: 1, GuaranteeBps: 2e9}).
		Add(tree.ClassSpec{Name: "b-web", Parent: "tB"}).
		MustBuild()
	eng := sim.New()
	s := newSched(t, eng, tr)

	labels := map[string]*tree.Label{}
	for _, name := range []string{"ctl", "a-rpc", "a-bulk", "b-web"} {
		lbl, ok := tr.LabelByName(name)
		if !ok {
			t.Fatalf("label %s missing", name)
		}
		labels[name] = lbl
	}

	const horizon = int64(1500e6)
	drv := map[string]*driver{
		"ctl":    offer(eng, s, labels["ctl"], 1500, 10e9, 0, horizon),
		"a-rpc":  offer(eng, s, labels["a-rpc"], 1500, 20e9, 0, horizon),
		"a-bulk": offer(eng, s, labels["a-bulk"], 1500, 20e9, 0, horizon),
		"b-web":  offer(eng, s, labels["b-web"], 1500, 20e9, 0, horizon),
	}
	eng.RunUntil(horizon)

	got := map[string]float64{}
	for name, d := range drv {
		got[name] = bps(d.fwdBytes, 0, horizon)
	}
	// ctl: wants 10G, ceiling clamps to 4G.
	within(t, "ctl (ceil 4G)", got["ctl"], 4e9, 0.06)
	// tenants get 16G split 3:1 → tA 12G, tB 4G.
	within(t, "b-web (tB)", got["b-web"], 4e9, 0.08)
	// Inside tA: a-rpc prior, a-bulk keeps its 2G guarantee.
	within(t, "a-rpc", got["a-rpc"], 10e9, 0.08)
	within(t, "a-bulk (guarantee)", got["a-bulk"], 2e9, 0.10)

	var total float64
	for _, v := range got {
		total += v
	}
	if total > 20e9*1.05 {
		t.Fatalf("total %.2fG exceeds the 20G root", total/1e9)
	}
}

// Property: single-class conformance holds across random rates, offered
// loads, and packet sizes — the §IV-D claim, quick-checked.
func TestConformanceProperty(t *testing.T) {
	check := func(rateStep, overStep, sizeStep uint8) bool {
		rate := 0.5e9 + float64(rateStep%16)*0.5e9 // 0.5..8G
		offered := rate * (1.1 + float64(overStep%8)*0.25)
		size := 256 + int(sizeStep%5)*256 // 256..1280

		tr := tree.NewBuilder().
			Root("root", rate).
			Add(tree.ClassSpec{Name: "A", Parent: "root"}).
			MustBuild()
		eng := sim.New()
		s, err := New(tr, eng.Clock(), Config{})
		if err != nil {
			return false
		}
		lbl, _ := tr.LabelByName("A")
		const horizon = int64(1e9)
		d := offer(eng, s, lbl, size, offered, 0, horizon)
		eng.RunUntil(horizon)
		got := bps(d.fwdBytes, 0, horizon)
		// Admitted within 6% of the configured rate.
		return got > rate*0.94 && got < rate*1.06
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Two priority levels with multiple classes per level: residual
// subtraction must account for the whole higher group.
func TestMultiClassPriorityGroups(t *testing.T) {
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "hi1", Parent: "root", Prio: 0, Weight: 1}).
		Add(tree.ClassSpec{Name: "hi2", Parent: "root", Prio: 0, Weight: 1}).
		Add(tree.ClassSpec{Name: "lo", Parent: "root", Prio: 1}).
		MustBuild()
	eng := sim.New()
	s := newSched(t, eng, tr)
	hi1, _ := tr.LabelByName("hi1")
	hi2, _ := tr.LabelByName("hi2")
	lo, _ := tr.LabelByName("lo")

	const horizon = int64(2e9)
	// hi1 wants 3G, hi2 wants 4G (both below their 5G shares), lo wants
	// everything.
	d1 := offer(eng, s, hi1, 1500, 3e9, 0, horizon)
	d2 := offer(eng, s, hi2, 1500, 4e9, 0, horizon)
	d3 := offer(eng, s, lo, 1500, 12e9, 0, horizon)
	eng.RunUntil(horizon)

	within(t, "hi1", bps(d1.fwdBytes, 0, horizon), 3e9, 0.05)
	within(t, "hi2", bps(d2.fwdBytes, 0, horizon), 4e9, 0.05)
	// lo gets the residual 10−3−4 = 3G.
	within(t, "lo residual", bps(d3.fwdBytes, 0, horizon), 3e9, 0.12)
}
