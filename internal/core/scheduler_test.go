package core

import (
	"math"
	"testing"

	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// driver offers fixed-size packets of one label at a constant rate and
// counts what the scheduler admits.
type driver struct {
	eng   *sim.Engine
	s     *Scheduler
	lbl   *tree.Label
	size  int
	gapNs int64
	stop  int64

	fwdBytes  int64
	dropBytes int64
	running   bool
}

// offer starts a constant-rate source: rateBps offered from startNs to
// stopNs with `size`-byte packets.
func offer(eng *sim.Engine, s *Scheduler, lbl *tree.Label, size int, rateBps float64, startNs, stopNs int64) *driver {
	d := &driver{
		eng:   eng,
		s:     s,
		lbl:   lbl,
		size:  size,
		gapNs: int64(float64(size*8) / rateBps * 1e9),
		stop:  stopNs,
	}
	if d.gapNs < 1 {
		d.gapNs = 1
	}
	eng.At(startNs, func() {
		d.running = true
		d.tick()
	})
	return d
}

func (d *driver) tick() {
	if !d.running || d.eng.Now() >= d.stop {
		return
	}
	dec := d.s.Schedule(d.lbl, d.size)
	if dec.Verdict == Forward {
		d.fwdBytes += int64(d.size)
	} else {
		d.dropBytes += int64(d.size)
	}
	d.eng.After(d.gapNs, d.tick)
}

// fwdBps returns the admitted rate over [fromNs, toNs) — callers arrange
// for the window to match the drive period.
func bps(bytes int64, fromNs, toNs int64) float64 {
	return float64(bytes) * 8 / (float64(toNs-fromNs) / 1e9)
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > tol {
			t.Fatalf("%s = %g, want ≈0", name, got)
		}
		return
	}
	if math.Abs(got-want)/want > tol {
		t.Fatalf("%s = %.3g, want %.3g (±%.0f%%)", name, got, want, tol*100)
	}
}

func newSched(t *testing.T, eng *sim.Engine, tr *tree.Tree) *Scheduler {
	t.Helper()
	s, err := New(tr, eng.Clock(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// §IV-D: single-class rate limiting is accurate. A class granted 1Gbps
// with 2Gbps offered admits ≈1Gbps; with 0.5Gbps offered it admits all.
func TestSingleClassConformance(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "A", Parent: "root"}).
		MustBuild()
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")

	const horizon = int64(2e9) // 2s
	over := offer(eng, s, lbl, 1500, 2e9, 0, horizon)
	eng.RunUntil(horizon)
	within(t, "over-offered admit rate", bps(over.fwdBytes, 0, horizon), 1e9, 0.05)

	// Fresh run, under-offered.
	eng2 := sim.New()
	s2 := newSched(t, eng2, tr)
	under := offer(eng2, s2, lbl, 1500, 0.5e9, 0, horizon)
	eng2.RunUntil(horizon)
	within(t, "under-offered admit rate", bps(under.fwdBytes, 0, horizon), 0.5e9, 0.02)
	if under.dropBytes != 0 {
		t.Fatalf("under-offered flow saw %d dropped bytes", under.dropBytes)
	}
}

// Priority scheduling (§III-D): on a 10Gbps class pool, if f_high sends
// 9Gbps, f_low gets ≈1Gbps; when f_high later drops to 2Gbps, f_low
// recovers to ≈8Gbps.
func TestPrioritySchedulingResidual(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "hi", Parent: "root", Prio: 0}).
		Add(tree.ClassSpec{Name: "lo", Parent: "root", Prio: 1}).
		MustBuild()
	s := newSched(t, eng, tr)
	hiLbl, _ := tr.LabelByName("hi")
	loLbl, _ := tr.LabelByName("lo")

	const phase = int64(2e9)
	// Phase 1: hi at 9G, lo wants 9G.
	hi1 := offer(eng, s, hiLbl, 1500, 9e9, 0, phase)
	lo1 := offer(eng, s, loLbl, 1500, 9e9, 0, phase)
	eng.RunUntil(phase)
	within(t, "hi phase1", bps(hi1.fwdBytes, 0, phase), 9e9, 0.05)
	within(t, "lo phase1", bps(lo1.fwdBytes, 0, phase), 1e9, 0.25)

	// Phase 2: hi drops to 2G; lo should recover toward 8G.
	hi2 := offer(eng, s, hiLbl, 1500, 2e9, phase, 2*phase)
	lo2 := offer(eng, s, loLbl, 1500, 9e9, phase, 2*phase)
	eng.RunUntil(2 * phase)
	within(t, "hi phase2", bps(hi2.fwdBytes, phase, 2*phase), 2e9, 0.05)
	within(t, "lo phase2", bps(lo2.fwdBytes, phase, 2*phase), 8e9, 0.10)
}

// Weighted scheduling (Eq. 5): 2:1 weights split a saturated pool 2:1.
func TestWeightedScheduling(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 9e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root", Weight: 2}).
		Add(tree.ClassSpec{Name: "b", Parent: "root", Weight: 1}).
		MustBuild()
	s := newSched(t, eng, tr)
	aLbl, _ := tr.LabelByName("a")
	bLbl, _ := tr.LabelByName("b")

	const horizon = int64(2e9)
	a := offer(eng, s, aLbl, 1500, 9e9, 0, horizon)
	b := offer(eng, s, bLbl, 1500, 9e9, 0, horizon)
	eng.RunUntil(horizon)
	within(t, "a (weight 2)", bps(a.fwdBytes, 0, horizon), 6e9, 0.05)
	within(t, "b (weight 1)", bps(b.fwdBytes, 0, horizon), 3e9, 0.05)
}

// The motivation guarantee: KVS prior to ML, ML guaranteed 2Gbps. With
// the pool at 8Gbps and both saturating, KVS gets 6G and ML keeps 2G.
func TestGuaranteePreventsStarvation(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("s2", 8e9).
		Add(tree.ClassSpec{Name: "kvs", Parent: "s2", Prio: 0, Weight: 1}).
		Add(tree.ClassSpec{Name: "ml", Parent: "s2", Prio: 1, Weight: 1, GuaranteeBps: 2e9}).
		MustBuild()
	s := newSched(t, eng, tr)
	kvsLbl, _ := tr.LabelByName("kvs")
	mlLbl, _ := tr.LabelByName("ml")

	const horizon = int64(2e9)
	kvs := offer(eng, s, kvsLbl, 1500, 8e9, 0, horizon)
	ml := offer(eng, s, mlLbl, 1500, 8e9, 0, horizon)
	eng.RunUntil(horizon)
	within(t, "kvs", bps(kvs.fwdBytes, 0, horizon), 6e9, 0.06)
	within(t, "ml (guaranteed)", bps(ml.fwdBytes, 0, horizon), 2e9, 0.06)
}

// Bandwidth sharing via shadow buckets (§IV-C subprocedure 2): with a
// sibling idle, a saturating class borrows the sibling's unused share and
// approaches the full pool.
func TestShadowBucketBorrowing(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root", Weight: 1, BorrowFrom: []string{"b"}}).
		Add(tree.ClassSpec{Name: "b", Parent: "root", Weight: 1, BorrowFrom: []string{"a"}}).
		MustBuild()
	s := newSched(t, eng, tr)
	aLbl, _ := tr.LabelByName("a")

	const horizon = int64(3e9)
	a := offer(eng, s, aLbl, 1500, 12e9, 0, horizon)
	eng.RunUntil(horizon)
	// Without borrowing a would be capped at 5G; with b idle its shadow
	// lends its whole share.
	got := bps(a.fwdBytes, 0, horizon)
	if got < 9e9 {
		t.Fatalf("borrowing class got %.2fGbps, want ≈10 (≥9)", got/1e9)
	}
	st := s.StatsFor(tr.Root().Children[0])
	if st.BorrowPkts == 0 {
		t.Fatal("no packets recorded as borrowed")
	}
}

// Hierarchical borrowing (Fig 9): ML borrows from its parent S2's shadow;
// with KVS idle, S2's lendable rate is exactly KVS's unused share.
func TestInteriorClassBorrowing(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("s1", 9e9).
		Add(tree.ClassSpec{Name: "ws", Parent: "s1", Weight: 1}).
		Add(tree.ClassSpec{Name: "s2", Parent: "s1", Weight: 2}).
		Add(tree.ClassSpec{Name: "kvs", Parent: "s2", Prio: 0}).
		Add(tree.ClassSpec{Name: "ml", Parent: "s2", Prio: 1, BorrowFrom: []string{"s2", "kvs"}}).
		MustBuild()
	s := newSched(t, eng, tr)
	mlLbl, _ := tr.LabelByName("ml")
	wsLbl, _ := tr.LabelByName("ws")

	const horizon = int64(3e9)
	// WS saturates its 3G share; KVS idle; ML wants everything.
	ws := offer(eng, s, wsLbl, 1500, 6e9, 0, horizon)
	ml := offer(eng, s, mlLbl, 1500, 12e9, 0, horizon)
	eng.RunUntil(horizon)
	within(t, "ws", bps(ws.fwdBytes, 0, horizon), 3e9, 0.06)
	// ML: own residual share of S2 (6G, KVS idle) — θ_ML reaches the
	// full S2 rate via the priority residual, no borrowing even needed,
	// but the borrow label must not hurt.
	within(t, "ml", bps(ml.fwdBytes, 0, horizon), 6e9, 0.10)
}

// Expired-status removal (§IV-C subprocedure 3): after the prior class
// stops, its stale Γ must expire so the residual class recovers.
func TestExpiredStatusRemoval(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "hi", Parent: "root", Prio: 0}).
		Add(tree.ClassSpec{Name: "lo", Parent: "root", Prio: 1}).
		MustBuild()
	s := newSched(t, eng, tr)
	hiLbl, _ := tr.LabelByName("hi")
	loLbl, _ := tr.LabelByName("lo")

	const phase = int64(2e9)
	offer(eng, s, hiLbl, 1500, 9e9, 0, phase) // hi stops at 2s
	offer(eng, s, loLbl, 1500, 12e9, 0, 3*phase)
	eng.RunUntil(3 * phase)

	// Measure lo in the last 2s window: hi has been silent since 2s,
	// so after the expiry threshold lo should hold ≈10G.
	lo2 := offer(eng, s, loLbl, 1500, 12e9, 3*phase, 4*phase)
	eng.RunUntil(4 * phase)
	within(t, "lo after hi expiry", bps(lo2.fwdBytes, 3*phase, 4*phase), 10e9, 0.08)
}

// Fig 10: token-rate changes propagate one tree level per update epoch.
// After the prior flow stops, a depth-2 leaf's θ must recover to the full
// pool within the expiry threshold plus a few epochs per level.
func TestPropagationDelayBounded(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("a0", 10e9).
		Add(tree.ClassSpec{Name: "hi", Parent: "a0", Prio: 0}).
		Add(tree.ClassSpec{Name: "a1", Parent: "a0", Prio: 1}).
		Add(tree.ClassSpec{Name: "a2", Parent: "a1"}).
		MustBuild()
	s := newSched(t, eng, tr)
	hiLbl, _ := tr.LabelByName("hi")
	loLbl, _ := tr.LabelByName("a2")
	a2, _ := tr.Lookup("a2")

	const warm = int64(2e9) // hi stops here
	offer(eng, s, hiLbl, 1500, 9e9, 0, warm)
	offer(eng, s, loLbl, 1500, 12e9, 0, 10e9)
	eng.RunUntil(warm)

	// θ of the depth-2 leaf tracks the residual ≈1G after warmup.
	theta := s.Theta(a2)
	if math.Abs(theta-1e9)/1e9 > 0.35 {
		t.Fatalf("a2 theta after warmup = %.2fG, want ≈1G", theta/1e9)
	}

	// hi stopped at `warm`; walk forward until θ_a2 ≥ 8G.
	cfg := s.Config()
	budget := cfg.ExpireAfterNs + 20*cfg.UpdateIntervalNs*int64(a2.Depth+1)
	var recovered int64 = -1
	for step := int64(0); step <= 2*budget; step += cfg.UpdateIntervalNs {
		eng.RunUntil(warm + step)
		if s.Theta(a2) >= 8e9 {
			recovered = step
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("a2 theta never recovered; still %.2fG after %dms",
			s.Theta(a2)/1e9, 2*budget/1e6)
	}
	if recovered > budget {
		t.Fatalf("propagation delay %dms exceeds budget %dms", recovered/1e6, budget/1e6)
	}
}

// Updates happen only on packet arrival: a silent tree must not update.
func TestNoUpdateWithoutPackets(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root"}).
		MustBuild()
	s := newSched(t, eng, tr)
	eng.RunUntil(5e9)
	for _, st := range s.Snapshot() {
		if st.Updates != 0 {
			t.Fatalf("class %s updated %d times with no traffic", st.Class.Name, st.Updates)
		}
	}
}

func TestForceUpdateTouchesEveryClass(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root"}).
		Add(tree.ClassSpec{Name: "b", Parent: "root"}).
		MustBuild()
	s := newSched(t, eng, tr)
	eng.RunUntil(1e9)
	s.ForceUpdate()
	for _, st := range s.Snapshot() {
		if st.Updates != 1 {
			t.Fatalf("class %s has %d updates after ForceUpdate, want 1", st.Class.Name, st.Updates)
		}
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().Root("r", 1e9).MustBuild()
	if _, err := New(nil, eng.Clock(), Config{}); err == nil {
		t.Fatal("New with nil tree succeeded")
	}
	if _, err := New(tr, nil, Config{}); err == nil {
		t.Fatal("New with nil clock succeeded")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.UpdateIntervalNs <= 0 || cfg.ExpireAfterNs <= cfg.UpdateIntervalNs {
		t.Fatalf("implausible defaults: %+v", cfg)
	}
	if cfg.Lock != PerClassTryLock {
		t.Fatalf("default lock mode = %v, want PerClassTryLock", cfg.Lock)
	}
}

func TestVerdictString(t *testing.T) {
	if Forward.String() != "forward" || Drop.String() != "drop" || Verdict(0).String() != "invalid" {
		t.Fatal("Verdict.String mismatch")
	}
}

// The virtual-queue ECN extension: green packets get marked once the
// leaf bucket falls below the threshold; red packets still drop, so the
// admitted rate stays policy-bound.
func TestECNMarkFrac(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "A", Parent: "root"}).
		MustBuild()
	s, err := New(tr, eng.Clock(), Config{ECNMarkFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := tr.LabelByName("A")

	const horizon = int64(2e9)
	var fwd, marked, dropped int64
	gap := int64(float64(1500*8) / 2e9 * 1e9) // offered 2×
	var drive func()
	drive = func() {
		if eng.Now() >= horizon {
			return
		}
		d := s.Schedule(lbl, 1500)
		switch {
		case d.Verdict == Forward && d.Marked:
			marked++
			fwd++
		case d.Verdict == Forward:
			fwd++
		default:
			dropped++
		}
		eng.After(gap, drive)
	}
	eng.After(0, drive)
	eng.RunUntil(horizon)

	// Enforcement unchanged: admitted ≈ 1G.
	got := float64(fwd*1500) * 8 / 2
	if got < 0.9e9 || got > 1.1e9 {
		t.Fatalf("admitted %.2fG with ECN, want ≈1G", got/1e9)
	}
	// Under sustained 2× overload the bucket runs low, so a large share
	// of the forwarded packets carries marks.
	if marked == 0 {
		t.Fatal("no packets marked under overload")
	}
	if dropped == 0 {
		t.Fatal("red packets must still drop (open-loop sender ignores marks)")
	}
	st := s.StatsFor(tr.Root().Children[0])
	if st.MarkPkts != marked {
		t.Fatalf("stats MarkPkts = %d, want %d", st.MarkPkts, marked)
	}
}

// With marking disabled (default), no packet is ever marked.
func TestNoMarksByDefault(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "A", Parent: "root"}).
		MustBuild()
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")
	for i := 0; i < 1000; i++ {
		if d := s.Schedule(lbl, 1500); d.Marked {
			t.Fatal("packet marked with ECN disabled")
		}
		eng.Clock().Advance(1000)
	}
}
