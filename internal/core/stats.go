package core

import "flowvalve/internal/sched/tree"

// ClassStats is a point-in-time snapshot of one class's runtime state and
// counters.
type ClassStats struct {
	Class *tree.Class

	// ThetaBps is the granted token rate in bits/second.
	ThetaBps float64
	// GammaBps is the measured consumption rate in bits/second.
	GammaBps float64
	// LendableBps is the published shadow rate in bits/second.
	LendableBps float64

	// BucketTokens / ShadowTokens are current bucket levels in bytes.
	BucketTokens int64
	ShadowTokens int64

	// Leaf counters (zero on interior classes except LentBytes).
	FwdPkts    int64
	FwdBytes   int64
	DropPkts   int64
	DropBytes  int64
	BorrowPkts int64
	MarkPkts   int64
	LentBytes  int64
	Updates    int64
}

// Snapshot returns per-class statistics in ClassID order.
func (s *Scheduler) Snapshot() []ClassStats {
	classes := s.tree.Classes()
	out := make([]ClassStats, len(classes))
	for i, c := range classes {
		st := &s.states[c.ID]
		out[i] = ClassStats{
			Class:        c,
			ThetaBps:     st.theta.Load() * 8,
			GammaBps:     st.est.Rate() * 8,
			LendableBps:  st.lendRate.Load() * 8,
			BucketTokens: st.bucket.Tokens(),
			ShadowTokens: st.shadow.Tokens(),
			FwdPkts:      st.fwdPkts.Load(),
			FwdBytes:     st.fwdBytes.Load(),
			DropPkts:     st.dropPkts.Load(),
			DropBytes:    st.dropBytes.Load(),
			BorrowPkts:   st.borrowPkts.Load(),
			MarkPkts:     st.markPkts.Load(),
			LentBytes:    st.lentBytes.Load(),
			Updates:      st.updates.Load(),
		}
	}
	return out
}

// StatsFor returns the snapshot of a single class.
func (s *Scheduler) StatsFor(c *tree.Class) ClassStats {
	st := &s.states[c.ID]
	return ClassStats{
		Class:        c,
		ThetaBps:     st.theta.Load() * 8,
		GammaBps:     st.est.Rate() * 8,
		LendableBps:  st.lendRate.Load() * 8,
		BucketTokens: st.bucket.Tokens(),
		ShadowTokens: st.shadow.Tokens(),
		FwdPkts:      st.fwdPkts.Load(),
		FwdBytes:     st.fwdBytes.Load(),
		DropPkts:     st.dropPkts.Load(),
		DropBytes:    st.dropBytes.Load(),
		BorrowPkts:   st.borrowPkts.Load(),
		MarkPkts:     st.markPkts.Load(),
		LentBytes:    st.lentBytes.Load(),
		Updates:      st.updates.Load(),
	}
}
