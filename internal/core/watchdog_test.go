package core

import (
	"testing"

	"flowvalve/internal/faults"
	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
)

// pollLoop drives a watchdog as the DES harness does: one Poll per
// interval until the horizon.
func pollLoop(eng *sim.Engine, w *Watchdog, horizon int64) {
	interval := w.PollIntervalNs()
	var poll func()
	poll = func() {
		w.Poll()
		if eng.Now()+interval <= horizon {
			eng.After(interval, poll)
		}
	}
	eng.After(interval, poll)
}

// A class starved by an epoch-drop window degrades, keeps forwarding at
// its last-known-safe rate on watchdog bridge refills, and recovers
// organically once the window clears.
func TestWatchdogDegradeAndRecover(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")

	const faultFrom, faultTo = int64(5e8), int64(1e9)
	const horizon = int64(15e8)
	plan := &faults.Plan{Seed: 4, Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: faultFrom, DurationNs: faultTo - faultFrom, Prob: 1},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}

	w := NewWatchdog(s, WatchdogConfig{})
	reg := telemetry.NewRegistry()
	w.AttachTelemetry(reg)
	pollLoop(eng, w, horizon)

	var degradedSeen bool
	probe := func() {}
	probe = func() {
		if w.DegradedNow() > 0 {
			degradedSeen = true
		}
		if eng.Now() < horizon {
			eng.After(1e7, probe)
		}
	}
	eng.After(1e7, probe)

	d := offer(eng, s, lbl, 1500, 2e9, 0, horizon)
	eng.RunUntil(horizon)

	if !degradedSeen {
		t.Fatal("class never degraded during the epoch-drop window")
	}
	if w.ForcedRefills() == 0 {
		t.Fatal("watchdog minted no bridge refills")
	}
	if w.Recoveries() == 0 {
		t.Fatal("class never recovered after the window cleared")
	}
	if w.DegradedNow() != 0 {
		t.Fatalf("%d classes still degraded at end", w.DegradedNow())
	}
	if w.MeanRecoveryNs() <= 0 {
		t.Fatal("no recovery latency recorded")
	}

	// Graceful degradation means the faulted middle third still flowed
	// near the safe rate: over the whole run the admitted volume must be
	// well above the no-watchdog case (≈2/3 of the run) and below the
	// grant plus bursts.
	c, _ := tr.Lookup("A")
	thetaBytes := s.states[c.ID].theta.Load()
	want := thetaBytes * float64(horizon) / 1e9
	if float64(d.fwdBytes) < 0.80*want {
		t.Fatalf("forwarded %d bytes, want ≥ %.0f — degraded class starved", d.fwdBytes, 0.80*want)
	}
	if float64(d.fwdBytes) > 1.35*want {
		t.Fatalf("forwarded %d bytes, want ≤ %.0f — watchdog over-minted", d.fwdBytes, 1.35*want)
	}
}

// A degraded class that goes idle stands down without a recovery (the
// expiry path owns its reset) instead of haunting the degraded gauge.
func TestWatchdogIdleStandDown(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")

	plan := &faults.Plan{Seed: 5, Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e12, Prob: 1},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(s, WatchdogConfig{})
	const trafficStop = int64(5e8)
	horizon := trafficStop + s.Config().ExpireAfterNs + 4*w.PollIntervalNs()
	pollLoop(eng, w, horizon)
	offer(eng, s, lbl, 1500, 2e9, 0, trafficStop)
	eng.RunUntil(horizon)

	if w.DegradedNow() != 0 {
		t.Fatalf("%d classes degraded after traffic went idle", w.DegradedNow())
	}
	if w.Recoveries() != 0 {
		t.Fatalf("idle stand-down counted as %d recoveries", w.Recoveries())
	}
}

// A healthy scheduler never trips the watchdog.
func TestWatchdogQuietWhenHealthy(t *testing.T) {
	eng := sim.New()
	tr := twoClassTree(t)
	s := newSched(t, eng, tr)
	lbl, _ := tr.LabelByName("A")
	w := NewWatchdog(s, WatchdogConfig{})
	const horizon = int64(1e9)
	pollLoop(eng, w, horizon)
	offer(eng, s, lbl, 1500, 2e9, 0, horizon)
	eng.RunUntil(horizon)
	if w.ForcedRefills() != 0 || w.Recoveries() != 0 || w.DegradedNow() != 0 {
		t.Fatalf("healthy run tripped watchdog: forced=%d recovered=%d degraded=%d",
			w.ForcedRefills(), w.Recoveries(), w.DegradedNow())
	}
}
