//go:build race

package core

// raceEnabled lets allocation-count assertions skip under the race
// detector, whose instrumentation adds allocations of its own.
const raceEnabled = true
