package core

import (
	"flowvalve/internal/telemetry"
)

// AttachTelemetry wires the sharded scheduler into a registry and
// (optionally) a tracer: the same metric families as the plain
// scheduler (see Scheduler.AttachTelemetry), with every per-shard lane
// merged at export time. Counters sum across shard replicas — a
// replica that owns none of a class's traffic contributes zeros, and
// the root's per-replica lanes sum to the global picture. Gauges read
// the owner replica, whose state is authoritative for rates and bucket
// levels; the one exception is Γ, which sums like a counter because
// every replica measures its own slice of root traffic.
//
// All shards share one tracer and one update-duration histogram (both
// are internally sharded and concurrency-safe), so parallel workers
// never contend on telemetry.
func (ss *ShardedScheduler) AttachTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	if ss.n == 1 {
		ss.inner[0].AttachTelemetry(reg, tr)
		return
	}
	if reg == nil && tr == nil {
		for _, in := range ss.inner {
			in.attachHooks(nil)
		}
		return
	}
	h := &telHooks{tracer: tr}
	if reg != nil {
		h.updateDur = reg.Histogram("fv_update_duration_ns", //fv:metric-ok merged shard export of the plain scheduler's family
			"Scheduler-clock duration of one class update subprocedure (epoch roll).",
			telemetry.DurationBucketsNs)
		for _, c := range ss.tree.Classes() {
			owner := &ss.inner[ss.owner[c.ID]].states[c.ID]
			lb := telemetry.Label{Key: "class", Value: c.Name}
			sum := func(read func(*classState) float64) func() float64 {
				states := make([]*classState, ss.n)
				for k, in := range ss.inner {
					states[k] = &in.states[c.ID]
				}
				return func() float64 {
					var v float64
					for _, st := range states {
						v += read(st)
					}
					return v
				}
			}
			reg.GaugeFunc("fv_class_theta_bps", //fv:metric-ok merged shard export of the plain scheduler's family
				"Granted token rate θ in bits/second.",
				func() float64 { return owner.theta.Load() * 8 }, lb)
			reg.GaugeFunc("fv_class_gamma_bps", //fv:metric-ok merged shard export of the plain scheduler's family
				"Measured consumption rate Γ in bits/second.",
				sum(func(st *classState) float64 { return st.est.Rate() * 8 }), lb)
			reg.GaugeFunc("fv_class_lendable_bps", //fv:metric-ok merged shard export of the plain scheduler's family
				"Published lendable (shadow) rate in bits/second.",
				func() float64 { return owner.lendRate.Load() * 8 }, lb)
			reg.GaugeFunc("fv_class_bucket_tokens_bytes", //fv:metric-ok merged shard export of the plain scheduler's family
				"Current class bucket token level in bytes.",
				func() float64 { return float64(owner.bucket.Tokens()) }, lb)
			reg.GaugeFunc("fv_class_shadow_tokens_bytes", //fv:metric-ok merged shard export of the plain scheduler's family
				"Current shadow bucket token level in bytes.",
				func() float64 { return float64(owner.shadow.Tokens()) }, lb)
			reg.CounterFunc("fv_class_fwd_packets_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Packets forwarded by the scheduling function.",
				sum(func(st *classState) float64 { return float64(st.fwdPkts.Load()) }), lb)
			reg.CounterFunc("fv_class_fwd_bytes_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Bytes forwarded by the scheduling function.",
				sum(func(st *classState) float64 { return float64(st.fwdBytes.Load()) }), lb)
			reg.CounterFunc("fv_class_drop_packets_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Packets discarded by the specialized tail drop.",
				sum(func(st *classState) float64 { return float64(st.dropPkts.Load()) }), lb)
			reg.CounterFunc("fv_class_drop_bytes_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Bytes discarded by the specialized tail drop.",
				sum(func(st *classState) float64 { return float64(st.dropBytes.Load()) }), lb)
			reg.CounterFunc("fv_class_borrow_packets_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Packets admitted via a lender's shadow bucket or lease.",
				sum(func(st *classState) float64 { return float64(st.borrowPkts.Load()) }), lb)
			reg.CounterFunc("fv_class_mark_packets_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Packets forwarded carrying a congestion mark.",
				sum(func(st *classState) float64 { return float64(st.markPkts.Load()) }), lb)
			reg.CounterFunc("fv_class_lent_bytes_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Bytes granted to borrowers from this class's shadow bucket.",
				sum(func(st *classState) float64 { return float64(st.lentBytes.Load()) }), lb)
			reg.CounterFunc("fv_class_updates_total", //fv:metric-ok merged shard export of the plain scheduler's family
				"Update-subprocedure executions (epoch rolls).",
				sum(func(st *classState) float64 { return float64(st.updates.Load()) }), lb)
		}
	}
	for _, in := range ss.inner {
		in.attachHooks(h)
	}
}
