// Package shardown machine-checks the *Owner single-consumer
// convention (DESIGN.md §13) as a flow property instead of a naming
// rule. lockconv's intraprocedural rule polices *call sites* — only
// ...Owner functions may call ...Owner functions. What it cannot see is
// the *value* leaking: a pooled batch scratch captured by a goroutine,
// a shard worker sent on a channel, a scratch pointer parked in a
// longer-lived struct. Any of those silently breaks the single-consumer
// assumption every unsynchronized owner field (plain ring heads,
// non-atomic scratch state) depends on.
//
// A type opts in by carrying //fv:owner in its declaration doc comment.
// For every function in the module (hot or not), a value whose type is
// a marked owner type (through any level of pointers) must not:
//
//   - be passed to or captured by a spawned goroutine (`go` statement);
//   - be sent on a channel;
//   - be stored through memory that outlives the frame — a field,
//     a slice/array element, a dereferenced pointer, a package-level
//     variable, or an append;
//   - be captured by any closure (a closure's lifetime is unknowable
//     statically);
//   - be passed to a function whose corresponding parameter escapes it
//     (computed interprocedurally as a fixpoint over the static call
//     graph; unknown callees — standard library, interface methods —
//     are assumed to retain their arguments, which is exactly right for
//     sync.Pool.Put).
//
// Legitimate ownership *transfers* — the pool Put that ends this
// frame's ownership, the one `go serveShardOwner(w)` handoff at worker
// start — carry //fv:owner-ok <why> (the same directive lockconv
// already uses for its call-site rule, with the same mandatory
// justification).
package shardown

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowvalve/internal/analysis"
)

// Analyzer is the owner-escape checker.
var Analyzer = &analysis.Analyzer{
	Name:      "shardown",
	Doc:       "flag //fv:owner values escaping their owning frame (goroutines, channels, stores, retaining callees)",
	RunModule: run,
}

func run(pass *analysis.ModulePass) (any, error) {
	owners := collectOwnerTypes(pass)
	if len(owners) == 0 {
		return nil, nil
	}
	esc := computeEscapes(pass, owners)
	for _, node := range pass.Graph.Nodes() {
		checkFunc(pass, node, owners, esc)
	}
	return nil, nil
}

// collectOwnerTypes finds every named type whose declaration doc
// carries //fv:owner.
func collectOwnerTypes(pass *analysis.ModulePass) map[*types.TypeName]bool {
	owners := make(map[*types.TypeName]bool)
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !analysis.DocDirective(ts.Doc, "owner") && !analysis.DocDirective(gd.Doc, "owner") {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						owners[tn] = true
					}
				}
			}
		}
	}
	return owners
}

// isOwnerType reports whether t is (a pointer chain to) a marked owner type.
func isOwnerType(owners map[*types.TypeName]bool, t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return owners[named.Obj()]
}

// paramKey identifies one parameter (or receiver, index -1) of a
// module function for the escape fixpoint.
type paramKey struct {
	fn  *types.Func
	idx int
}

// computeEscapes runs the interprocedural parameter-escape fixpoint:
// a parameter escapes if the body stores/sends/spawns/captures it, or
// passes it to a parameter already known to escape. Unknown callees are
// handled at check time (assumed retaining), so the fixpoint only
// iterates over module functions.
func computeEscapes(pass *analysis.ModulePass, owners map[*types.TypeName]bool) map[paramKey]bool {
	esc := make(map[paramKey]bool)
	for changed := true; changed; {
		changed = false
		for _, node := range pass.Graph.Nodes() {
			params := paramVars(node)
			if len(params) == 0 {
				continue
			}
			escaped := make(map[*types.Var]bool)
			collectEscapingVars(pass, node, esc, escaped)
			for idx, v := range params {
				if v == nil || !escaped[v] {
					continue
				}
				k := paramKey{fn: node.Obj, idx: idx - 1} // slot 0 is the receiver
				if !esc[k] {
					esc[k] = true
					changed = true
				}
			}
		}
	}
	return esc
}

// paramVars returns [receiver, param0, param1, ...] (nil entries for
// unnamed slots).
func paramVars(node *analysis.FuncNode) []*types.Var {
	sig, ok := node.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := []*types.Var{sig.Recv()}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// collectEscapingVars records, into escaped, every *types.Var the body
// lets escape (by any of the rules in the package comment). It shares
// the event walk with checkFunc but never reports.
func collectEscapingVars(pass *analysis.ModulePass, node *analysis.FuncNode, esc map[paramKey]bool, escaped map[*types.Var]bool) {
	walkEvents(pass, node, esc, func(pos token.Pos, expr ast.Expr, what string) {
		if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
			if v, ok := node.Pkg.Info.Uses[id].(*types.Var); ok {
				escaped[v] = true
			}
		}
	}, nil)
}

// checkFunc reports every escape event whose value has an owner type.
func checkFunc(pass *analysis.ModulePass, node *analysis.FuncNode, owners map[*types.TypeName]bool, esc map[paramKey]bool) {
	walkEvents(pass, node, esc, nil, func(pos token.Pos, expr ast.Expr, what string) {
		tv, ok := node.Pkg.Info.Types[expr]
		if !ok || tv.Type == nil || !isOwnerType(owners, tv.Type) {
			return
		}
		if pass.CheckReason(pos, "owner-ok") {
			return
		}
		pass.Reportf(pos, "owner value of type %s %s — single-consumer ownership (DESIGN.md §13) is lost; transfer explicitly and annotate //fv:owner-ok <reason>",
			types.TypeString(tv.Type, analysis.ShortQual), what)
	})
}

// walkEvents walks node's body firing onVar (for the fixpoint) and/or
// onEvent (for diagnostics) at every escape event. Dead branches are
// NOT skipped: ownership is a correctness property in every build.
func walkEvents(pass *analysis.ModulePass, node *analysis.FuncNode, esc map[paramKey]bool, onVar func(token.Pos, ast.Expr, string), onEvent func(token.Pos, ast.Expr, string)) {
	info := node.Pkg.Info
	fire := func(pos token.Pos, expr ast.Expr, what string) {
		if onVar != nil {
			onVar(pos, expr, what)
		}
		if onEvent != nil {
			onEvent(pos, expr, what)
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				fire(arg.Pos(), arg, "passed to a spawned goroutine")
				ast.Inspect(arg, walk) // nested calls inside the argument
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// The goroutine capture is the event; don't re-fire the
				// generic closure-capture case for the same literal.
				fireCaptures(node, lit, "captured by a spawned goroutine", fire)
			}
			return false
		case *ast.SendStmt:
			fire(n.Value.Pos(), n.Value, "sent on a channel")
			return true
		case *ast.FuncLit:
			// Using an owner inside a lit requires capturing it, so the
			// capture event is the complete check; the interior is not
			// walked again.
			fireCaptures(node, n, "captured by a closure", fire)
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if storesThroughMemory(info, n.Lhs[i]) {
						fire(n.Rhs[i].Pos(), n.Rhs[i], "stored through memory that outlives this frame")
					}
				}
			}
			return true
		case *ast.CallExpr:
			checkCallEvents(pass, node, n, esc, fire)
			return true
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// fireCaptures fires an event for every variable of the enclosing
// function a FuncLit captures.
func fireCaptures(node *analysis.FuncNode, lit *ast.FuncLit, what string, fire func(token.Pos, ast.Expr, string)) {
	info := node.Pkg.Info
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() < node.Decl.Pos() || v.Pos() > node.Decl.End() {
			return true // package-level or foreign
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the lit's own params/locals
		}
		seen[v] = true
		fire(id.Pos(), id, what)
		return true
	})
}

// storesThroughMemory reports whether an assignment LHS writes through
// memory that can outlive the current frame: a field, element, pointer
// dereference, or package-level variable.
func storesThroughMemory(info *types.Info, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		v, ok := info.Defs[l].(*types.Var)
		if !ok {
			v, ok = info.Uses[l].(*types.Var)
		}
		if !ok || v == nil || v.Pkg() == nil {
			return false
		}
		return v.Parent() == v.Pkg().Scope() // package-level variable
	}
	return false
}

// checkCallEvents fires events for arguments handed to retaining
// parameters: append's elements, unknown callees (assumed retaining),
// and module callees whose parameter escapes per the fixpoint.
func checkCallEvents(pass *analysis.ModulePass, node *analysis.FuncNode, call *ast.CallExpr, esc map[paramKey]bool, fire func(token.Pos, ast.Expr, string)) {
	info := node.Pkg.Info

	// Conversions don't retain.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	// Builtins: append stores its elements; the rest don't retain.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "append" {
				for _, arg := range call.Args[1:] {
					fire(arg.Pos(), arg, "appended to a slice that outlives this frame")
				}
			}
			return
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		// Indirect or interface call: retention unknown.
		for _, arg := range call.Args {
			fire(arg.Pos(), arg, "passed to a dynamic callee whose retention is unknown")
		}
		return
	}
	callee := pass.Graph.Node(fn)
	if callee == nil {
		// Outside the module (standard library — sync.Pool.Put et al):
		// assume it retains.
		for _, arg := range call.Args {
			fire(arg.Pos(), arg, "passed to "+analysis.FuncName(fn)+" outside the module, which may retain it")
		}
		return
	}
	// Module callee: consult the fixpoint per argument and receiver.
	for i, arg := range call.Args {
		if esc[paramKey{fn: fn, idx: i}] {
			fire(arg.Pos(), arg, "passed to "+analysis.FuncName(fn)+", which lets that parameter escape")
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel && esc[paramKey{fn: fn, idx: -1}] {
			fire(sel.X.Pos(), sel.X, "receiver of "+analysis.FuncName(fn)+", which lets the receiver escape")
		}
	}
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
