// Package shardowntest seeds owner-escape shapes for the shardown
// analyzer: a marked //fv:owner type leaking into goroutines, channels,
// long-lived stores and retaining callees.
package shardowntest

import "sync"

// scratch is one worker's private batch state.
//
//fv:owner
type scratch struct {
	buf []int
}

// plain is identical in shape but unmarked: never reported.
type plain struct {
	buf []int
}

type registry struct {
	slots []*scratch
	keep  *scratch
	pool  sync.Pool
	ch    chan *scratch
}

func fill(s *scratch) { s.buf = append(s.buf, 1) }

func worker(s *scratch) { fill(s) }

// stash lets its parameter escape: the store is reported here, and the
// escape propagates to stash's callers through the fixpoint.
func stash(r *registry, s *scratch) {
	r.keep = s // want `owner value of type \*shardowntest\.scratch stored through memory that outlives this frame`
}

func leak(r *registry, s *scratch, ss scratch) {
	fill(s)       // plain use: fine
	go worker(s)  // want `passed to a spawned goroutine`
	r.ch <- s     // want `sent on a channel`
	r.pool.Put(s) // want `passed to sync\.\(Pool\)\.Put outside the module, which may retain it`
	stash(r, s)   // want `passed to shardowntest\.stash, which lets that parameter escape`
	go func() {
		fill(s) // want `captured by a spawned goroutine`
	}()
	f := func() { fill(s) } // want `captured by a closure`
	f()
	r.slots[0] = s               // want `stored through memory that outlives this frame`
	r.slots = append(r.slots, s) // want `appended to a slice that outlives this frame`
	_ = ss
}

// localOnly moves an owner between locals: same frame, no diagnostic.
func localOnly(s *scratch) *scratch {
	t := s
	fill(t)
	return t // returning transfers ownership back to the caller: fine
}

// unmarked proves the identical shapes are silent for unmarked types.
func unmarked(r *registry, p *plain) {
	go func() { _ = p.buf }()
	r.keep = nil
	_ = p
}

// transfer shows the sanctioned handoffs.
func transfer(r *registry, s *scratch) {
	//fv:owner-ok fixture: ownership transfers to the spawned worker here
	go worker(s)
	r.pool.Put(s) //fv:owner-ok fixture: pool return ends this frame's ownership
}

func naked(r *registry, s *scratch) {
	r.pool.Put(s) //fv:owner-ok // want `//fv:owner-ok suppression requires a justification` `passed to sync`
}
