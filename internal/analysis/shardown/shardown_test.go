package shardown_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/shardown"
)

func TestShardown(t *testing.T) {
	analysistest.RunModule(t, "testdata", shardown.Analyzer, "shardowntest")
}
