package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural layer of the framework: a static call
// graph assembled over every package one fvlint run loads, plus the
// //fv:hotpath taint closure computed on it. PR 5's analyzers are
// single-pass and intraprocedural — each checks one package's annotated
// bodies in isolation. The PR 10 analyzers (boxing, shardown, lockorder)
// need to see *through* calls: a hot function's callees inherit the hot
// budget, an owner value escapes through the parameter of whatever it is
// passed to, and a lock cycle is almost never visible inside one
// function. ModulePass is the whole-program counterpart of Pass, and an
// Analyzer sets RunModule instead of Run to receive it.
//
// Soundness trade, stated once for all three analyzers: the graph has
// only *static* edges (callees resolvable through go/types.Uses). A call
// through an interface, a func-typed field, or a parameter contributes
// no edge — which is exactly why the boxing analyzer flags those call
// shapes inside the hot closure: a dynamic call is both a runtime
// allocation/dispatch cost and a hole in every interprocedural
// invariant this layer checks.

// ModulePass carries every loaded package through one module-level
// analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Packages is the loaded module, in load order.
	Packages []*Package
	// Graph is the shared static call graph (built once per fvlint run,
	// reused by every module analyzer).
	Graph *CallGraph

	// Report delivers one diagnostic, as on Pass.
	Report func(Diagnostic)

	// annotations merges every package's //fv: directives (the index is
	// by filename, so merging is lossless).
	annotations *Annotations
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotations returns the module-wide parsed //fv: directives.
func (p *ModulePass) Annotations() *Annotations {
	if p.annotations == nil {
		var files []*ast.File
		for _, pkg := range p.Packages {
			files = append(files, pkg.Files...)
		}
		p.annotations = parseAnnotations(p.Fset, files)
	}
	return p.annotations
}

// CheckReason mirrors the package-level CheckReason for module passes:
// it reports a suppression directive at pos that lacks its mandatory
// justification, and returns whether a valid suppression exists.
func (p *ModulePass) CheckReason(pos token.Pos, name string) bool {
	a := p.Annotations()
	d, found := a.At(pos, name)
	if !found {
		return false
	}
	if d.Reason == "" {
		p.Reportf(d.Pos, "//fv:%s suppression requires a justification", name)
		return false
	}
	return true
}

// CallSite is one statically resolvable call inside a function body
// (calls inside nested FuncLits are excluded: a closure runs on its own
// goroutine or budget — the DES event convention — so its callees do
// not inherit the enclosing function's taint).
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the statically resolved target, never nil. Targets
	// without a body in the loaded module (standard library, interface
	// methods) have no FuncNode and terminate propagation.
	Callee *types.Func
}

// FuncNode is one module function in the call graph.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the body's static call sites in source order,
	// excluding those inside FuncLits and inside build-dead branches.
	Calls []CallSite
	// HotRoot marks a //fv:hotpath doc annotation on the declaration.
	HotRoot bool
	// Hot marks membership in the hotpath closure: a HotRoot, or any
	// function a Hot function calls statically without a //fv:coldpath
	// cut at the call site.
	Hot bool
	// Via is the hot caller that first pulled this node into the
	// closure (nil for roots); diagnostics use it to show the taint
	// provenance so a burn-down knows which edge to cut or devirtualize.
	Via *FuncNode
}

// CallGraph is the static call graph over every loaded package.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// order lists nodes sorted by declaration position, so analyzer
	// output is deterministic regardless of map iteration.
	order []*FuncNode
}

// Node returns fn's graph node, or nil when fn has no body in the
// loaded module.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Nodes returns every module function in declaration order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// BuildCallGraph assembles the static call graph over pkgs and computes
// the //fv:hotpath closure, cutting propagation at call sites that
// carry a justified //fv:coldpath (the same directive the hotpath
// analyzer honors line-wise: a cold call's callee does not inherit the
// hot budget). ann must be the merged module annotations.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package, ann *Annotations) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{
					Obj:     obj,
					Decl:    fn,
					Pkg:     pkg,
					HotRoot: FuncDirective(fn, "hotpath"),
				}
				collectCalls(pkg, fn.Body, node)
				g.nodes[obj] = node
				g.order = append(g.order, node)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Decl.Pos() < g.order[j].Decl.Pos() })

	// Hot closure: BFS from the annotated roots over uncut edges.
	var work []*FuncNode
	for _, n := range g.order {
		if n.HotRoot {
			n.Hot = true
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, cs := range n.Calls {
			if _, cold := ann.Suppressed(cs.Call.Pos(), "coldpath"); cold {
				continue
			}
			callee := g.nodes[cs.Callee]
			if callee == nil || callee.Hot {
				continue
			}
			callee.Hot = true
			callee.Via = n
			work = append(work, callee)
		}
	}
	return g
}

// collectCalls walks body recording static call sites, skipping nested
// FuncLits and branches dead under the loader's tag set (the fvassert
// pattern: a const-false guard's body never executes in this build).
func collectCalls(pkg *Package, body ast.Node, node *FuncNode) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if deadBranch(pkg.Info, n) {
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				ast.Inspect(n.Cond, walk)
				if n.Else != nil {
					ast.Inspect(n.Else, walk)
				}
				return false
			}
		case *ast.CallExpr:
			if fn := usedFunc(pkg.Info, n); fn != nil {
				node.Calls = append(node.Calls, CallSite{Call: n, Callee: fn})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// usedFunc resolves a call's statically known callee, like Pass.FuncObj
// but against an explicit types.Info.
func usedFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// constFalse mirrors Pass.ConstFalse against an explicit types.Info.
func constFalse(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "false"
}

// deadBranch mirrors Pass.DeadBranch against an explicit types.Info.
func deadBranch(info *types.Info, ifStmt *ast.IfStmt) bool {
	cond := ast.Unparen(ifStmt.Cond)
	for {
		if constFalse(info, cond) {
			return true
		}
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.LAND {
			return false
		}
		cond = ast.Unparen(bin.X)
	}
}

// DeadBranch reports whether an if-statement in pkg is gated off by a
// compile-time-false guard, for module analyzers walking raw bodies.
func (p *ModulePass) DeadBranch(pkg *Package, ifStmt *ast.IfStmt) bool {
	return deadBranch(pkg.Info, ifStmt)
}

// FuncName formats a function for diagnostics as pkg.Func or
// pkg.(*Recv).Method.
func FuncName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	name := fn.Pkg().Name() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name += "(" + named.Obj().Name() + ")."
		}
	}
	return name + fn.Name()
}

// ModuleCallGraph parses the module-wide //fv: directives and builds
// the hot-closure call graph over pkgs — the same graph
// RunModuleAnalyzers hands to module analyzers, exposed so coverage
// tests can assert which functions the closure actually reaches.
func ModuleCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	return BuildCallGraph(fset, pkgs, parseAnnotations(fset, files))
}

// RunModuleAnalyzers applies each module-level analyzer (RunModule set)
// to the loaded package set, sharing one call graph, delivering
// diagnostics in source order per analyzer.
func RunModuleAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, report func(*Analyzer, Diagnostic)) error {
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	ann := parseAnnotations(fset, files)
	graph := BuildCallGraph(fset, pkgs, ann)
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		var diags []Diagnostic
		pass := &ModulePass{
			Analyzer:    a,
			Fset:        fset,
			Packages:    pkgs,
			Graph:       graph,
			Report:      func(d Diagnostic) { diags = append(diags, d) },
			annotations: ann,
		}
		if _, err := a.RunModule(pass); err != nil {
			return err
		}
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			report(a, d)
		}
	}
	return nil
}
