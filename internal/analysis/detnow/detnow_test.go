package detnow_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/detnow"
)

func TestDetnow(t *testing.T) {
	analysistest.Run(t, "testdata", detnow.Analyzer, "detnowtest")
}

// Main packages are harnesses, not dataplane code: zero diagnostics.
func TestDetnowExemptsMain(t *testing.T) {
	diags := analysistest.Run(t, "testdata", detnow.Analyzer, "detnowmain")
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics in package main, got %d", len(diags))
	}
}
