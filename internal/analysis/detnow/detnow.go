// Package detnow implements the determinism analyzer: dataplane and
// simulation code must not read the wall clock or the global math/rand
// source, because the discrete-event runs are required to be
// bit-for-bit reproducible (TestScenarioDeterministic and friends) and
// a single stray time.Now() silently breaks that property — exactly
// the bug class fixed at core/schedule.go's update-duration sampling.
//
// Forbidden in every package except internal/clock (the one sanctioned
// wall-time boundary) and main packages (harness binaries are not
// dataplane code):
//
//   - time.Now, time.Since, time.Until
//   - package-level math/rand and math/rand/v2 functions that draw from
//     the global source (rand.Intn, rand.Float64, rand.Shuffle, ...).
//     Constructing a seeded local generator (rand.New, rand.NewSource,
//     rand.NewPCG, ...) stays legal: the sim's RNG is exactly that.
//
// Wall time must instead flow through an injected clock.Clock — use
// clock.NewWall at the composition root when real time is genuinely
// meant. A line that must read wall time directly carries
// //fv:allow-wallclock with a justification.
package detnow

import (
	"go/ast"
	"go/types"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the detnow invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "detnow",
	Doc:  "forbid wall-clock and global-rand reads in dataplane/sim code (use internal/clock and seeded RNGs)",
	Run:  run,
}

// forbiddenTime is the set of time-package functions that read the wall
// clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// randConstructors are the math/rand functions that build local,
// seedable generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.FuncObj(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions are in scope: methods such
			// as (*rand.Rand).Intn or (time.Time).Sub are fine.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					if analysis.CheckReason(pass, call.Pos(), "allow-wallclock") {
						return true
					}
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in deterministic code: inject a clock.Clock (internal/clock) or annotate //fv:allow-wallclock <reason>",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					if analysis.CheckReason(pass, call.Pos(), "allow-wallclock") {
						return true
					}
					pass.Reportf(call.Pos(),
						"global math/rand source (%s.%s) is nondeterministic: use a seeded local generator (sim/rng) or annotate //fv:allow-wallclock <reason>",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// exempt reports whether the package is outside detnow's scope: the
// sanctioned wall-clock boundary (internal/clock) and harness binaries
// (package main).
func exempt(pass *analysis.Pass) bool {
	if pass.Pkg.Name() == "main" {
		return true
	}
	return strings.HasSuffix(pass.Pkg.Path(), "internal/clock")
}
