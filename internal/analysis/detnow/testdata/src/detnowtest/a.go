// Package detnowtest seeds detnow violations: wall-clock reads and
// global-rand draws that would break DES determinism.
package detnowtest

import (
	"math/rand"
	"time"
)

func bad() int64 {
	t := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(t) // want `time\.Since reads the wall clock`
	_ = time.Until(t) // want `time\.Until reads the wall clock`
	rand.Shuffle(1, func(i, j int) {}) // want `global math/rand source \(rand\.Shuffle\)`
	return rand.Int63() // want `global math/rand source \(rand\.Int63\)`
}

func allowed() {
	_ = time.Now() //fv:allow-wallclock operator-facing log timestamp, not sim state

	// Local seeded generators are the sanctioned form of randomness.
	r := rand.New(rand.NewSource(1))
	_ = r.Int63()

	// Methods and constants of package time are fine: only the wall
	// clock readers are forbidden.
	d := 3 * time.Second
	_ = time.Unix(0, 42).Add(d)
}

func missingReason() {
	//fv:allow-wallclock // want `//fv:allow-wallclock suppression requires a justification`
	_ = time.Now() // want `time\.Now reads the wall clock`
}
