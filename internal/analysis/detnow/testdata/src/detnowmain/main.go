// Command detnowmain proves detnow exempts harness binaries: package
// main may read the wall clock (CLI progress timers are not dataplane
// state).
package main

import "time"

func main() {
	_ = time.Now()
}
