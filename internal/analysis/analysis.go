// Package analysis is FlowValve's in-tree static-analysis framework: a
// minimal, dependency-free mirror of the golang.org/x/tools/go/analysis
// API driven entirely by the standard library (go/parser, go/types and
// the source importer).
//
// FlowValve's correctness claims rest on invariants the Go compiler
// cannot see: the discrete-event simulation must be bit-for-bit
// deterministic (no wall clock or global rand in dataplane code),
// per-class state must only be touched under the class lock or via the
// documented ...Racy paths, and the batched hot path must stay
// allocation- and lock-free. The analyzers under this package
// (detnow, lockconv, atomicmix, hotpath, metricname) machine-check
// those invariants; cmd/fvlint is the multichecker that runs them
// repo-wide, and `make lint` wires them into CI.
//
// The API deliberately matches go/analysis — Analyzer{Name, Doc, Run},
// Pass with Fset/Files/Pkg/TypesInfo/Report — so that if the x/tools
// dependency ever becomes available the analyzers port by changing one
// import path. The build environment for this repo is hermetic (no
// module proxy), which is why the harness is vendored in spirit rather
// than depended upon.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description shown by `fvlint -help`.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are
	// delivered through pass.Report; the result value is unused (kept
	// for go/analysis signature parity).
	Run func(*Pass) (any, error)
	// RunModule, when set instead of Run, applies the analyzer once to
	// the whole loaded module through the interprocedural layer
	// (callgraph.go). Exactly one of Run and RunModule should be set.
	RunModule func(*ModulePass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)

	// annotations caches the parsed //fv: directives of the package's
	// files, built on first use.
	annotations *Annotations
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotations returns the package's parsed //fv: directives.
func (p *Pass) Annotations() *Annotations {
	if p.annotations == nil {
		p.annotations = parseAnnotations(p.Fset, p.Files)
	}
	return p.annotations
}

// FuncObj resolves the called function or method object of a call
// expression, or nil when the callee is not a statically known func
// (built-ins, func-typed variables, type conversions).
func (p *Pass) FuncObj(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// ConstFalse reports whether e is a compile-time constant false — the
// shape of a build-tag-gated guard such as `fvassert.Enabled && cond`
// in a no-tag build. Analyzers use it to skip statically dead branches.
func (p *Pass) ConstFalse(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "false"
}

// DeadBranch reports whether an if-statement's condition is gated off by
// a leading compile-time-false operand (peeling `&&` chains), meaning
// the body can never execute in this build configuration.
func (p *Pass) DeadBranch(ifStmt *ast.IfStmt) bool {
	cond := ast.Unparen(ifStmt.Cond)
	for {
		if p.ConstFalse(cond) {
			return true
		}
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.LAND {
			return false
		}
		cond = ast.Unparen(bin.X)
	}
}
