// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	rand.Seed(1) // want `global math/rand`
//
// Each `// want` comment carries one or more double-quoted or
// backquoted regular expressions; every diagnostic the analyzer emits
// on that line must match one expectation and every expectation must be
// matched by exactly one diagnostic. Fixtures live under
// testdata/src/<pkg>/ next to the analyzer, are loaded with the real
// loader (so they may import the standard library and module packages),
// and never build into the repo.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"flowvalve/internal/analysis"
)

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> for each named fixture package, applies
// the analyzer, and reports mismatches through t. The returned
// diagnostics allow extra assertions.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := analysis.NewLoader(analysis.Config{Dir: testdata, FixtureRoot: root})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var all []analysis.Diagnostic
	for _, name := range pkgs {
		dir := filepath.Join(root, filepath.FromSlash(name))
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", name, err)
		}
		want, err := parseExpectations(pkg)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		err = analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, func(_ *analysis.Analyzer, d analysis.Diagnostic) {
			all = append(all, d)
			pos := pkg.Fset.Position(d.Pos)
			if !claim(want, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		})
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, name, err)
		}
		for _, w := range want {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			}
		}
	}
	return all
}

// RunModule is Run for module-level analyzers (Analyzer.RunModule set):
// it loads every named fixture package, runs the analyzer once over the
// whole set through the interprocedural layer, and checks // want
// expectations across all of them. Fixture packages may import each
// other (under the fixture root) to exercise cross-package taint.
func RunModule(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := analysis.NewLoader(analysis.Config{Dir: testdata, FixtureRoot: root})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var loaded []*analysis.Package
	var want []*expectation
	for _, name := range pkgs {
		dir := filepath.Join(root, filepath.FromSlash(name))
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", name, err)
		}
		loaded = append(loaded, pkg)
		w, err := parseExpectations(pkg)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		want = append(want, w...)
	}
	var all []analysis.Diagnostic
	err = analysis.RunModuleAnalyzers(loader.Fset(), loaded, []*analysis.Analyzer{a}, func(_ *analysis.Analyzer, d analysis.Diagnostic) {
		all = append(all, d)
		pos := loader.Fset().Position(d.Pos)
		if !claim(want, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
	return all
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches msg.
func claim(want []*expectation, file string, line int, msg string) bool {
	for _, w := range want {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE pulls the quoted patterns off a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseExpectations scans every fixture file for // want comments. It
// re-scans the raw source with go/scanner so comments inside any
// context (including directive-adjacent ones) are seen exactly once.
func parseExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		if seen[filename] {
			continue
		}
		seen[filename] = true
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		file := fset.AddFile(filename, -1, len(src))
		var s scanner.Scanner
		s.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := s.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			body, ok := strings.CutPrefix(lit, "//")
			if !ok {
				continue
			}
			body = strings.TrimSpace(body)
			// Accept both a standalone `// want ...` comment and one
			// appended to another directive on the same line
			// (`//fv:racy-ok ... // want ...`).
			rest, ok := strings.CutPrefix(body, "want ")
			if !ok {
				if i := strings.LastIndex(body, "// want "); i >= 0 {
					rest = body[i+len("// want "):]
				} else {
					continue
				}
			}
			p := fset.Position(pos)
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", filename, p.Line, pat, err)
				}
				out = append(out, &expectation{file: filename, line: p.Line, re: re, raw: pat})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out, nil
}
