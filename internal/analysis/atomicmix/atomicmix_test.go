package atomicmix_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atomicmixtest")
}
