// Package atomicmixtest seeds atomicmix violations: a field accessed
// both atomically and plainly, and a whole-value store to a wrapper.
package atomicmixtest

import "sync/atomic"

type C struct {
	n     int64
	ok    int64
	flags int64
	w     atomic.Int64
}

func (c *C) Add() { atomic.AddInt64(&c.n, 1) }

func (c *C) Bad() int64 { return c.n } // want `field n is accessed via sync/atomic elsewhere in this package but plainly here`

func (c *C) BadWrite() { c.n = 0 } // want `field n is accessed via sync/atomic`

// Fine is plain-only: consistent, no diagnostic.
func (c *C) Fine() { c.ok++ }

// Flags is atomic-only: consistent, no diagnostic.
func (c *C) Flags() int64 {
	atomic.StoreInt64(&c.flags, 1)
	return atomic.LoadInt64(&c.flags)
}

func (c *C) BadStore() { c.w = atomic.Int64{} } // want `whole-value store to atomic\.Int64 field w bypasses its atomicity`

func (c *C) OkStore() { c.w.Store(1) }

func (c *C) Annotated() int64 {
	//fv:atomic-ok constructor runs before any goroutine exists
	return c.n
}

func (c *C) BadCopy() atomic.Int64 { return c.w } // want `whole-value read of atomic\.Int64 field w copies its innards`

func (c *C) BadCopyAssign() {
	v := c.w // want `whole-value read of atomic\.Int64 field w copies its innards`
	_ = v
}

// OkLoad reads through the wrapper's method: the receiver selection is
// not a copy.
func (c *C) OkLoad() int64 { return c.w.Load() }

// OkAddr takes the wrapper's address; no value moves.
func (c *C) OkAddr() *atomic.Int64 { return &c.w }

func (c *C) OkCopyAnnotated() atomic.Int64 {
	//fv:atomic-ok snapshot taken before workers start
	return c.w
}
