// Package atomicmix detects struct fields that are accessed both
// through sync/atomic operations and through plain loads/stores within
// the same package — the access pattern that silently downgrades an
// "atomic" field to a data race (the race detector only catches it when
// a test happens to interleave the two).
//
// Two defect shapes are reported:
//
//  1. A field whose address is passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1)) and which is also read or written
//     directly (s.n++ or v := s.n) anywhere in the package.
//
//  2. A field of one of the sync/atomic wrapper types (atomic.Int64,
//     atomic.Pointer[T], ...) that is assigned as a whole value
//     (s.ctr = atomic.Int64{}) — replacing the wrapper bypasses its
//     atomicity and races with every concurrent method call on it.
//
//  3. A wrapper field read as a whole value (v := s.ctr, f(r.tail)) —
//     the copy is a plain load of the wrapper's innards, so it can tear
//     against concurrent Store/Add calls. This is the feed-ring defect
//     shape: ring state (head/tail/seq words) must be moved through the
//     wrapper's methods, never by copying the wrapper out of the struct.
//
// Accesses guarded by a statically-false condition (build-tag-gated
// assertion blocks) are still counted: an assertion that races is a
// heisenbug generator under -tags fvassert.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the atomicmix invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "detect fields accessed both via sync/atomic and via plain loads/stores",
	Run:  run,
}

// access records one use of a field.
type access struct {
	pos    token.Pos
	atomic bool
}

func run(pass *analysis.Pass) (any, error) {
	// uses maps each struct-field object to its observed accesses.
	uses := make(map[*types.Var][]access)
	// atomicArgs marks selector expressions consumed as &sel by a
	// sync/atomic call, so the second walk can classify them.
	atomicArgs := make(map[*ast.SelectorExpr]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.FuncObj(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}

	// safeWrapperUse marks wrapper-typed selectors consumed through a
	// non-copying context: as the receiver of a further selection
	// (s.ctr.Load()), behind an address-of, or as an assignment target
	// (defect shape 2 reports those separately).
	safeWrapperUse := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sub, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					safeWrapperUse[sub] = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						safeWrapperUse[sel] = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						safeWrapperUse[sel] = true
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if v := fieldObj(pass, n); v != nil && isAtomicWrapper(v.Type()) && !safeWrapperUse[n] {
					if !analysis.CheckReason(pass, n.Pos(), "atomic-ok") {
						pass.Reportf(n.Pos(),
							"whole-value read of %s field %s copies its innards with a plain load; use its Load method (or annotate //fv:atomic-ok <reason>)",
							typeString(v.Type()), v.Name())
					}
					return true
				}
				v := fieldObj(pass, n)
				if v == nil || !plainKind(v.Type()) {
					return true
				}
				uses[v] = append(uses[v], access{pos: n.Pos(), atomic: atomicArgs[n]})
			case *ast.AssignStmt:
				// Whole-value stores to sync/atomic wrapper fields.
				for _, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v := fieldObj(pass, sel)
					if v == nil || !isAtomicWrapper(v.Type()) {
						continue
					}
					if analysis.CheckReason(pass, sel.Pos(), "atomic-ok") {
						continue
					}
					pass.Reportf(sel.Pos(),
						"whole-value store to %s field %s bypasses its atomicity; use its Store method (or annotate //fv:atomic-ok <reason>)",
						typeString(v.Type()), v.Name())
				}
			}
			return true
		})
	}

	// Report fields seen through both access disciplines.
	var mixed []*types.Var
	for v, accs := range uses {
		var hasAtomic, hasPlain bool
		for _, a := range accs {
			if a.atomic {
				hasAtomic = true
			} else {
				hasPlain = true
			}
		}
		if hasAtomic && hasPlain {
			mixed = append(mixed, v)
		}
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].Pos() < mixed[j].Pos() })
	for _, v := range mixed {
		accs := uses[v]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		for _, a := range accs {
			if a.atomic {
				continue
			}
			if analysis.CheckReason(pass, a.pos, "atomic-ok") {
				continue
			}
			pass.Reportf(a.pos,
				"field %s is accessed via sync/atomic elsewhere in this package but plainly here; make every access atomic (or annotate //fv:atomic-ok <reason>)",
				v.Name())
		}
	}
	return nil, nil
}

// fieldObj resolves sel to a struct-field variable, or nil.
func fieldObj(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// plainKind reports whether t is a type someone might (wrongly) access
// with both atomic functions and plain operations: integers, pointers,
// and unsafe pointers.
func plainKind(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsUnsigned) != 0 || u.Kind() == types.UnsafePointer
	case *types.Pointer:
		return true
	}
	return false
}

// isAtomicWrapper reports whether t is one of the sync/atomic value
// types (atomic.Int64, atomic.Uint32, atomic.Pointer[T], ...).
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// typeString renders t compactly for diagnostics.
func typeString(t types.Type) string {
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return fmt.Sprintf("%s", s)
}
