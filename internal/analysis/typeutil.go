package analysis

import (
	"go/ast"
	"go/types"
)

// Shared type-shape helpers used by the allocation-oriented analyzers
// (hotpath intraprocedurally, boxing over the whole hot closure). They
// encode one fact about the Go runtime: storing a value in an interface
// allocates unless the value is pointer-shaped.

// Boxes reports whether storing a value of type t into an interface
// allocates: true for every concrete type that is not pointer-shaped.
func Boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false // already boxed
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	default:
		return true // structs, arrays, slices, strings
	}
}

// ParamType returns the type the i-th argument is assigned to, or nil
// when no boxing can occur at that position (out of range, or a
// ...slice forwarded whole).
func ParamType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() {
		if i < n-1 {
			return params.At(i).Type()
		}
		if ellipsis {
			return nil
		}
		if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// CallSignature returns the static signature of the callee, or nil for
// type conversions and unresolvable callees.
func CallSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	if tv.IsType() {
		return nil // conversion, not a call
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// ShortQual qualifies types by bare package name in diagnostics.
func ShortQual(p *types.Package) string { return p.Name() }
