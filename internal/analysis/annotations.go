package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// FlowValve's analyzers are configured in-source through //fv: comment
// directives. Two families exist:
//
//   - Function directives, written in a declaration's doc comment:
//
//     //fv:hotpath
//     func (s *Scheduler) ScheduleBatch(...)
//
//     marks the function as hot-path code, opting it into the hotpath
//     analyzer's allocation/defer/fmt/map-iteration discipline.
//
//   - Line suppressions, written on the offending line or the line
//     directly above it, with a mandatory justification:
//
//     //fv:racy-ok NoLock ablation: epoch races are the experiment
//     //fv:locked-ok lock is taken by the caller via LockAll
//     //fv:owner-ok workers not started; inline mode is single-goroutine
//     //fv:allow-wallclock operator-facing timestamp, not sim state
//     //fv:coldpath one-time scratch growth, amortized to zero
//     //fv:metric-ok re-registration after policy swap
//
// A suppression without a justification is itself a diagnostic: silent
// waivers rot. Directive parsing is shared here so every analyzer
// resolves annotations identically.
const directivePrefix = "//fv:"

// Directive is one parsed //fv: annotation.
type Directive struct {
	// Name is the directive keyword, e.g. "hotpath" or "racy-ok".
	Name string
	// Reason is the free-text justification following the keyword.
	Reason string
	// Pos locates the directive comment.
	Pos token.Pos
	// Line is the 1-based source line the comment sits on.
	Line int
}

// Annotations indexes a package's //fv: directives by file and line.
type Annotations struct {
	fset *token.FileSet
	// byFileLine maps filename -> line -> directives on that line.
	byFileLine map[string]map[int][]Directive
}

func parseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, byFileLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, directivePrefix)
				// Fixture files append `// want ...` expectations to
				// directive comments; they are not part of the reason.
				if i := strings.Index(body, "// want"); i >= 0 {
					body = body[:i]
				}
				name, reason, _ := strings.Cut(body, " ")
				pos := fset.Position(c.Pos())
				m := a.byFileLine[pos.Filename]
				if m == nil {
					m = make(map[int][]Directive)
					a.byFileLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], Directive{
					Name:   strings.TrimSpace(name),
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
					Line:   pos.Line,
				})
			}
		}
	}
	return a
}

// All returns every parsed directive with the given name, in position
// order — for declaration-style directives (//fv:lockorder) that
// configure an analyzer rather than suppress one site.
func (a *Annotations) All(name string) []Directive {
	var out []Directive
	for _, m := range a.byFileLine {
		for _, ds := range m {
			for _, d := range ds {
				if d.Name == name {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// At returns the directive with the given name attached to pos: on the
// same source line or on the line directly above it (the conventional
// spot for a suppression comment).
func (a *Annotations) At(pos token.Pos, name string) (Directive, bool) {
	p := a.fset.Position(pos)
	m := a.byFileLine[p.Filename]
	if m == nil {
		return Directive{}, false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range m[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// FuncDirective reports whether fn's doc comment carries the named
// directive (e.g. "hotpath").
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	return DocDirective(fn.Doc, name)
}

// DocDirective reports whether a doc comment group carries the named
// directive; it is FuncDirective for non-function declarations (the
// shardown analyzer reads //fv:owner off type declarations).
func DocDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		body, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		kw, _, _ := strings.Cut(body, " ")
		if strings.TrimSpace(kw) == name {
			return true
		}
	}
	return false
}

// Suppressed reports whether a diagnostic at pos is waived by the named
// suppression directive. A directive present but missing its
// justification does not suppress — analyzers report that separately via
// CheckReason.
func (a *Annotations) Suppressed(pos token.Pos, name string) (Directive, bool) {
	d, ok := a.At(pos, name)
	if !ok {
		return Directive{}, false
	}
	return d, d.Reason != ""
}

// CheckReason reports (via the pass) any suppression directive found at
// pos that lacks a justification, and returns whether a valid
// suppression exists.
func CheckReason(pass *Pass, pos token.Pos, name string) bool {
	a := pass.Annotations()
	d, found := a.At(pos, name)
	if !found {
		return false
	}
	if d.Reason == "" {
		pass.Reportf(d.Pos, "//fv:%s suppression requires a justification", name)
		return false
	}
	return true
}
