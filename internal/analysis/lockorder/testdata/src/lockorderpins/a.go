// Package lockorderpins exercises the declared-order directives:
// a violated pin, an unknown lock name, and a malformed directive.
package lockorderpins

import "sync"

type X struct{ mu sync.Mutex }

type Y struct{ mu sync.Mutex }

type S struct {
	x X
	y Y
}

//fv:lockorder lockorderpins.X.mu before lockorderpins.Y.mu

//fv:lockorder lockorderpins.X.mu before lockorderpins.Ghost.mu // want `//fv:lockorder names unknown lock "lockorderpins\.Ghost\.mu"`

//fv:lockorder no separator here // want `malformed //fv:lockorder directive`

// bad violates the declared X-before-Y pin.
func bad(s *S) {
	s.y.mu.Lock()
	s.x.mu.Lock() // want `acquisition order lockorderpins\.Y\.mu -> lockorderpins\.X\.mu contradicts the declared //fv:lockorder`
	s.x.mu.Unlock()
	s.y.mu.Unlock()
}
