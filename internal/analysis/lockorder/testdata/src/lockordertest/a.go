// Package lockordertest seeds an AB/BA inversion (one side through a
// call summary), same-lock self-nesting, and the TryLock held-range
// shapes.
package lockordertest

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

type S struct {
	a A
	b B
}

// lockB acquires B.mu; holdACallB's summary edge comes from here.
func lockB(s *S) {
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

// holdACallB holds A.mu across a call that acquires B.mu: the
// interprocedural edge A.mu -> B.mu. The cycle (closed by ba below) is
// reported at this first edge.
func holdACallB(s *S) {
	s.a.mu.Lock()
	lockB(s) // want `lock-order cycle: lockordertest\.A\.mu -> lockordertest\.B\.mu -> lockordertest\.A\.mu`
	s.a.mu.Unlock()
}

// ba closes the inversion directly: B.mu held, A.mu acquired.
func ba(s *S) {
	s.b.mu.Lock()
	s.a.mu.Lock()
	s.a.mu.Unlock()
	s.b.mu.Unlock()
}

// nest self-nests two locks with the same module-wide identity.
func nest(c *C, d *C) {
	c.mu.Lock()
	d.mu.Lock() // want `lock lockordertest\.C\.mu acquired while already held`
	d.mu.Unlock()
	c.mu.Unlock()
}

// nestOK is the sanctioned shape: a documented ascending order over
// same-type locks.
func nestOK(c *C, d *C) {
	c.mu.Lock()
	d.mu.Lock() //fv:lockorder-ok fixture: locks taken in ascending index order
	d.mu.Unlock()
	c.mu.Unlock()
}

// tryShape: a positive TryLock guards only its if body.
func tryShape(s *S) {
	if s.a.mu.TryLock() {
		s.b.mu.Lock() // edge A.mu -> B.mu (already known; no new diagnostic)
		s.b.mu.Unlock()
		s.a.mu.Unlock()
	}
	// Not held here: acquiring B.mu alone is clean.
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

// negShape: `if !TryLock { return }` holds the lock for the rest of the
// function.
func negShape(s *S) bool {
	if !s.a.mu.TryLock() {
		return false
	}
	s.b.mu.Lock() // edge A.mu -> B.mu (already known)
	s.b.mu.Unlock()
	s.a.mu.Unlock()
	return true
}

// deferShape holds to function end via defer.
func deferShape(s *S) {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock() // edge A.mu -> B.mu (already known)
	s.b.mu.Unlock()
}

// sequential proves non-overlapping ranges produce no edge: B.mu is
// released before A.mu is taken, so no B->A edge beyond ba's.
func sequential(s *S) {
	s.b.mu.Lock()
	s.b.mu.Unlock()
	s.a.mu.Lock()
	s.a.mu.Unlock()
}
