package lockorder_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/lockorder"
)

func TestLockOrderCycles(t *testing.T) {
	analysistest.RunModule(t, "testdata", lockorder.Analyzer, "lockordertest")
}

func TestLockOrderPins(t *testing.T) {
	analysistest.RunModule(t, "testdata", lockorder.Analyzer, "lockorderpins")
}
