// Package lockorder builds the repo-wide lock-acquisition graph and
// rejects cycles. PR 7 and PR 9 grew the lock population past what a
// reviewer holds in their head — settleMu serializing cross-shard
// settlement, per-class mutexes under PerClassTryLock, the classifier's
// per-shard cache locks, telemetry registry locks — and an AB/BA
// inversion between any two of them deadlocks a multi-tenant NIC under
// exactly the contention the fault injector loves to produce.
//
// The analyzer works in three steps over the interprocedural layer:
//
//  1. Identify every acquisition site (the Lock/RLock/TryLock/TryRLock
//     shapes lockconv recognizes) and name the lock by where it lives:
//     "pkg.Type.field" for a mutex field reached through any expression
//     chain, "pkg.var" for a package-level mutex.
//
//  2. Compute lexical held ranges per function (a TryLock tested in an
//     `if` guards its body; `if !mu.TryLock() { return }` guards the
//     rest of the function; otherwise acquire-to-matching-release or
//     end of function, with deferred releases held to the end), then
//     record an edge A→B for every acquisition of B and every call to a
//     function that transitively acquires B (static call-graph
//     summaries) inside a range holding A.
//
//  3. Reject cycles in the edge set, same-lock self-nesting, and any
//     observed edge contradicting a declared pin. The intended order is
//     pinned in-source:
//
//     //fv:lockorder core.ShardedScheduler.settleMu before core.classState.mu
//
//     Declared pins join the cycle check (two contradictory pins are a
//     cycle) and must name locks that exist — a pin referencing a
//     renamed field is itself a diagnostic, so the table cannot rot.
//
// Limitations, deliberate: ranges are lexical (no CFG), calls through
// interfaces or function values contribute no summary edges (the boxing
// analyzer polices exactly those shapes off the hot path's call graph),
// and closures are summarized with their enclosing function only when
// called statically.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the lock-order checker.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "build the module lock-acquisition graph, reject cycles and violations of declared //fv:lockorder pins",
	RunModule: run,
}

// acquire is one lock acquisition site in a function body.
type acquire struct {
	id   string
	call *ast.CallExpr
	try  bool
	// negated marks the `if !mu.TryLock()` shape (held after the if).
	negated bool
	// deferred releases never end a held range before function end.
}

// edge is one observed (or declared) ordering: from is held while to is
// acquired.
type edge struct {
	from, to string
}

func run(pass *analysis.ModulePass) (any, error) {
	// Pass 1: per-function local acquisitions, for call summaries.
	localAcq := make(map[*types.Func][]string)
	for _, node := range pass.Graph.Nodes() {
		for _, a := range collectAcquires(node) {
			localAcq[node.Obj] = append(localAcq[node.Obj], a.id)
		}
	}

	// Transitive acquisition summaries over the static call graph.
	trans := make(map[*types.Func]map[string]bool)
	for _, node := range pass.Graph.Nodes() {
		s := make(map[string]bool)
		for _, id := range localAcq[node.Obj] {
			s[id] = true
		}
		trans[node.Obj] = s
	}
	for changed := true; changed; {
		changed = false
		for _, node := range pass.Graph.Nodes() {
			s := trans[node.Obj]
			for _, cs := range node.Calls {
				for id := range trans[cs.Callee] {
					if !s[id] {
						s[id] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: held ranges and edges.
	edges := make(map[edge]token.Pos) // first observed position
	known := make(map[string]bool)
	for _, node := range pass.Graph.Nodes() {
		acqs := collectAcquires(node)
		if len(acqs) == 0 {
			continue
		}
		for _, a := range acqs {
			known[a.id] = true
		}
		releases := collectReleases(node)
		for _, a := range acqs {
			lo, hi := heldRange(node, a, releases)
			if lo == token.NoPos {
				continue
			}
			// Other acquisitions inside the range.
			for _, b := range acqs {
				p := b.call.Pos()
				if b.call == a.call || p <= lo || p >= hi {
					continue
				}
				if b.id == a.id {
					report(pass, p, "lock %s acquired while already held (self-nesting deadlocks on a non-reentrant mutex)", a.id)
					continue
				}
				if _, seen := edges[edge{a.id, b.id}]; !seen {
					edges[edge{a.id, b.id}] = p
				}
			}
			// Calls inside the range pull in callee summaries.
			for _, cs := range node.Calls {
				p := cs.Call.Pos()
				if p <= lo || p >= hi {
					continue
				}
				for id := range trans[cs.Callee] {
					if id == a.id {
						report(pass, p, "call to %s acquires %s, already held here (self-nesting deadlocks)", analysis.FuncName(cs.Callee), a.id)
						continue
					}
					if _, seen := edges[edge{a.id, id}]; !seen {
						edges[edge{a.id, id}] = p
					}
				}
			}
		}
	}

	// Pass 3: declared pins.
	declared := make(map[edge]token.Pos)
	for _, d := range pass.Annotations().All("lockorder") {
		before, after, ok := strings.Cut(d.Reason, " before ")
		before, after = strings.TrimSpace(before), strings.TrimSpace(after)
		if !ok || before == "" || after == "" {
			pass.Reportf(d.Pos, "malformed //fv:lockorder directive: want \"<lock> before <lock>\"")
			continue
		}
		for _, name := range []string{before, after} {
			if !known[name] {
				pass.Reportf(d.Pos, "//fv:lockorder names unknown lock %q (no acquisition of it exists; known locks: %s)",
					name, strings.Join(sortedKeys(known), ", "))
			}
		}
		if p, seen := edges[edge{after, before}]; seen {
			report(pass, p, "acquisition order %s -> %s contradicts the declared //fv:lockorder %s before %s", after, before, before, after)
			// Already reported; keep the pin out of the cycle union so
			// the same contradiction is not re-reported as a cycle.
			continue
		}
		declared[edge{before, after}] = d.Pos
	}

	// Cycle check over observed + declared edges.
	all := make(map[edge]token.Pos, len(edges)+len(declared))
	for e, p := range edges {
		all[e] = p
	}
	for e, p := range declared {
		if _, seen := all[e]; !seen {
			all[e] = p
		}
	}
	reportCycles(pass, all)
	return nil, nil
}

// collectAcquires finds acquisition sites in node's body (excluding
// nested FuncLits, consistent with the call graph).
func collectAcquires(node *analysis.FuncNode) []acquire {
	info := node.Pkg.Info
	var out []acquire
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, try, ok := acquireID(info, node, n); ok {
				neg := try && negatedTry(node, n)
				out = append(out, acquire{id: id, call: n, try: try, negated: neg})
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
	return out
}

// release is one Unlock/RUnlock site.
type release struct {
	id       string
	pos      token.Pos
	deferred bool
}

func collectReleases(node *analysis.FuncNode) []release {
	info := node.Pkg.Info
	var out []release
	var inDefer bool
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if id, ok := releaseID(info, node, n.Call); ok {
				out = append(out, release{id: id, pos: n.Pos(), deferred: true})
			}
			return false
		case *ast.CallExpr:
			if id, ok := releaseID(info, node, n); ok {
				out = append(out, release{id: id, pos: n.Pos(), deferred: inDefer})
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
	return out
}

// heldRange computes the lexical span during which a's lock is held.
func heldRange(node *analysis.FuncNode, a acquire, releases []release) (token.Pos, token.Pos) {
	fnEnd := node.Decl.Body.End()
	if a.try {
		ifStmt := enclosingIfCond(node, a.call)
		if ifStmt != nil {
			if a.negated {
				// if !mu.TryLock() { bail } — held from the end of the
				// if to the matching release (or function end).
				return ifStmt.End(), releaseAfter(a.id, ifStmt.End(), releases, fnEnd)
			}
			return ifStmt.Body.Pos(), ifStmt.Body.End()
		}
		// TryLock result ignored or assigned: treat as a plain acquire.
	}
	return a.call.Pos(), releaseAfter(a.id, a.call.Pos(), releases, fnEnd)
}

// releaseAfter returns the position of the first in-place release of id
// after pos, or end when only deferred (or no) releases exist.
func releaseAfter(id string, pos token.Pos, releases []release, end token.Pos) token.Pos {
	best := end
	for _, r := range releases {
		if r.deferred || r.id != id || r.pos <= pos {
			continue
		}
		if r.pos < best {
			best = r.pos
		}
	}
	return best
}

// enclosingIfCond returns the innermost IfStmt whose Cond or Init
// contains call, or nil.
func enclosingIfCond(node *analysis.FuncNode, call *ast.CallExpr) *ast.IfStmt {
	var found *ast.IfStmt
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		inSpan := func(x ast.Node) bool {
			return x != nil && x.Pos() <= call.Pos() && call.End() <= x.End()
		}
		if inSpan(ifStmt.Cond) || inSpan(ifStmt.Init) {
			found = ifStmt // keep innermost: later matches overwrite
		}
		return true
	})
	return found
}

// negatedTry reports whether call sits under a ! inside its if
// condition (the `if !mu.TryLock() { return }` shape).
func negatedTry(node *analysis.FuncNode, call *ast.CallExpr) bool {
	neg := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			return true
		}
		if u.X.Pos() <= call.Pos() && call.End() <= u.X.End() {
			neg = true
		}
		return true
	})
	return neg
}

// acquireID names the lock acquired by call, using lockconv's
// recognition shape, or ok=false.
func acquireID(info *types.Info, node *analysis.FuncNode, call *ast.CallExpr) (string, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	try := false
	switch sel.Sel.Name {
	case "Lock", "RLock":
	case "TryLock", "TryRLock":
		try = true
	default:
		return "", false, false
	}
	if !isSyncMethod(info, sel) {
		return "", false, false
	}
	id, ok := lockName(info, node, sel.X)
	return id, try, ok
}

func releaseID(info *types.Info, node *analysis.FuncNode, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Unlock", "RUnlock":
	default:
		return "", false
	}
	if !isSyncMethod(info, sel) {
		return "", false
	}
	return lockName(info, node, sel.X)
}

// isSyncMethod reports whether sel resolves to a method on sync.Mutex /
// sync.RWMutex (directly or through embedding).
func isSyncMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isSyncLocker(sig.Recv().Type()) || fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// isSyncLocker reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockName derives the module-wide identity of the mutex expression:
// "pkg.Type.field" for a field reached through any chain, "pkg.var"
// for a package-level mutex. Function-local mutexes (invisible to other
// functions, so unable to participate in cross-function inversions)
// return ok=false.
func lockName(info *types.Info, node *analysis.FuncNode, mutex ast.Expr) (string, bool) {
	switch m := ast.Unparen(mutex).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[m.X]
		if !ok || tv.Type == nil {
			return "", false
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + m.Sel.Name, true
		}
		// Selector on an unnamed base (embedded anon struct): fall back
		// to the package qualifier.
		return node.Pkg.Types.Name() + "." + m.Sel.Name, true
	case *ast.Ident:
		v, ok := info.Uses[m].(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
		return "", false // function-local mutex
	}
	return "", false
}

// reportCycles finds and reports each elementary cycle reachable in the
// edge set (one report per cycle, at the first edge's position).
func reportCycles(pass *analysis.ModulePass, edges map[edge]token.Pos) {
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	nodes := sortedKeys(adjKeys(adj))

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	reported := make(map[string]bool)

	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case white:
				dfs(m)
			case gray:
				// Back edge: the cycle is stack[idx(m):] + m.
				i := len(stack) - 1
				for i >= 0 && stack[i] != m {
					i--
				}
				cyc := append(append([]string{}, stack[i:]...), m)
				key := strings.Join(cyc, "->")
				if !reported[key] {
					reported[key] = true
					pos := edges[edge{cyc[0], cyc[1]}]
					report(pass, pos, "lock-order cycle: %s — impose one order and pin it with //fv:lockorder", strings.Join(cyc, " -> "))
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
}

func adjKeys(adj map[string][]string) map[string]bool {
	out := make(map[string]bool)
	for k, vs := range adj {
		out[k] = true
		for _, v := range vs {
			out[v] = true
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// report emits a diagnostic unless the site carries a justified
// //fv:lockorder-ok (for the rare sanctioned nesting, e.g. ordered
// same-type locks taken by ascending index).
func report(pass *analysis.ModulePass, pos token.Pos, format string, args ...any) {
	if pass.CheckReason(pos, "lockorder-ok") {
		return
	}
	pass.Reportf(pos, format, args...)
}
