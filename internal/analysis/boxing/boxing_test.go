package boxing_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/boxing"
)

func TestBoxing(t *testing.T) {
	analysistest.RunModule(t, "testdata", boxing.Analyzer, "boxingtest", "boxingdep")
}
