// Package boxing extends the hotpath discipline interprocedurally: it
// walks every function in the //fv:hotpath *closure* of the static call
// graph (annotated roots plus everything they reach through uncut
// static calls) and flags the dynamic-dispatch and boxing shapes that
// cost the 39 ns/pkt budget its allocation at runtime or its
// predictability at review time:
//
//   - interface-method calls — dynamic dispatch the devirtualization
//     work (concrete clock in core, concrete scheduler refs in the NIC
//     burst service, owner-table steering in the classifier) exists to
//     remove; each also blinds the static call graph, so everything
//     behind it escapes the other interprocedural checks;
//   - indirect calls through function-typed values (fields, params,
//     locals) — same cost, same blindness;
//   - implicit concrete→interface conversions at assignments, returns
//     and explicit conversions — these allocate when the concrete value
//     is not pointer-shaped;
//   - variable-capturing closures — a FuncLit that captures escapes to
//     the heap together with its context;
//   - interface-boxing call arguments in closure members that are *not*
//     themselves //fv:hotpath-annotated (annotated bodies already get
//     this check from the hotpath analyzer; re-reporting would double
//     every diagnostic).
//
// A site that must stay dynamic (a pluggable backend chosen at
// construction, a DES bookkeeping closure) carries
// //fv:boxing-ok <why>. A site on a cold sub-path inside a hot function
// keeps the PR 5 grammar: //fv:coldpath <why> waives boxing checks too,
// because a statement declared off the hot path has no boxing budget to
// protect.
//
// Two packages are exempt wholesale: internal/fvassert (assertion
// builds accept formatting costs by design — the same exemption hotpath
// grants call-wise) and internal/sim (the discrete-event engine is the
// measurement harness; datapath costs it models are charged explicitly
// in cycles, not in engine CPU time).
package boxing

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the interprocedural boxing checker.
var Analyzer = &analysis.Analyzer{
	Name:      "boxing",
	Doc:       "flag dynamic dispatch, interface boxing and capturing closures in the //fv:hotpath call-graph closure",
	RunModule: run,
}

// exemptPkgSuffixes lists module packages whose bodies are never
// checked (see the package comment for why).
var exemptPkgSuffixes = []string{
	"internal/fvassert",
	"internal/sim",
}

func run(pass *analysis.ModulePass) (any, error) {
	for _, node := range pass.Graph.Nodes() {
		if !node.Hot || exemptPkg(node.Pkg.Path) {
			continue
		}
		checkFunc(pass, node)
	}
	return nil, nil
}

func exemptPkg(path string) bool {
	for _, s := range exemptPkgSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// checkFunc walks one hot function's body. Dead branches (fvassert
// guards compiled out under the current tag set) are skipped; FuncLit
// interiors are a separate budget (only the capture at the literal
// itself is charged here).
func checkFunc(pass *analysis.ModulePass, node *analysis.FuncNode) {
	info := node.Pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCapture(pass, node, n)
			return false
		case *ast.IfStmt:
			if pass.DeadBranch(node.Pkg, n) {
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				ast.Inspect(n.Cond, walk)
				if n.Else != nil {
					ast.Inspect(n.Else, walk)
				}
				return false
			}
		case *ast.CallExpr:
			checkCall(pass, node, n)
		case *ast.AssignStmt:
			checkAssign(pass, node, n)
		case *ast.ValueSpec:
			checkValueSpec(pass, node, n)
		case *ast.ReturnStmt:
			checkReturn(pass, node, n)
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
	_ = info
}

// checkCall classifies one call site: explicit interface conversion,
// interface-method dispatch, indirect call, or (for non-annotated
// closure members) boxing arguments.
func checkCall(pass *analysis.ModulePass, node *analysis.FuncNode, call *ast.CallExpr) {
	info := node.Pkg.Info

	// Explicit conversion T(x): boxing when T is an interface and x is
	// not pointer-shaped.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok && at.Type != nil && analysis.Boxes(at.Type) {
				report(pass, node, call.Pos(), "conversion of %s to interface %s allocates",
					typeStr(at.Type), typeStr(tv.Type))
			}
		}
		return
	}

	// Builtins never dispatch dynamically (hotpath owns the new/make
	// allocation checks in annotated bodies).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				report(pass, node, call.Pos(), "interface method call %s.%s (dynamic dispatch; the call graph cannot see past it)",
					typeStr(s.Recv()), sel.Sel.Name)
			}
			checkArgs(pass, node, call)
			return
		}
	}

	if fn := funcObj(info, call); fn != nil {
		// Statically resolved: dispatch is free; arguments may still box.
		if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/fvassert") {
			return // assertion builds accept the ...any cost
		}
		checkArgs(pass, node, call)
		return
	}

	// No static callee, not a conversion, not a builtin, not an
	// interface method: a call through a function value.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
			report(pass, node, call.Pos(), "indirect call through function value (dynamic dispatch; the call graph cannot see past it)")
			checkArgs(pass, node, call)
		}
	}
}

// checkArgs applies the hotpath analyzer's argument-boxing rule to
// closure members that are not annotated //fv:hotpath themselves (the
// hotpath analyzer already covers annotated bodies).
func checkArgs(pass *analysis.ModulePass, node *analysis.FuncNode, call *ast.CallExpr) {
	if node.HotRoot {
		return
	}
	info := node.Pkg.Info
	sig := analysis.CallSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := analysis.ParamType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if analysis.Boxes(at.Type) {
			report(pass, node, arg.Pos(), "boxing %s into interface %s allocates",
				typeStr(at.Type), typeStr(pt))
		}
	}
}

// checkCapture flags FuncLits that capture variables from the
// enclosing function: a capturing closure heap-allocates its context
// every time the literal is evaluated.
func checkCapture(pass *analysis.ModulePass, node *analysis.FuncNode, lit *ast.FuncLit) {
	info := node.Pkg.Info
	captured := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured; only objects
		// declared inside the enclosing function but outside the lit.
		if v.Parent() == nil || v.Pkg() == nil {
			return true
		}
		if v.Pos() < node.Decl.Pos() || v.Pos() > node.Decl.End() {
			return true // global or from another decl
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the lit's own params/locals
		}
		if !captured[v] {
			captured[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	report(pass, node, lit.Pos(), "closure capturing %s allocates its context on the heap",
		strings.Join(names, ", "))
}

// checkAssign flags implicit boxing at assignments whose LHS is
// interface-typed and RHS is a concrete non-pointer-shaped value.
func checkAssign(pass *analysis.ModulePass, node *analysis.FuncNode, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple assignment from a call: covered at the call
	}
	info := node.Pkg.Info
	for i := range as.Lhs {
		lt, ok := info.Types[as.Lhs[i]]
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type.Underlying()) {
			continue
		}
		rt, ok := info.Types[as.Rhs[i]]
		if !ok || rt.Type == nil {
			continue
		}
		if analysis.Boxes(rt.Type) {
			report(pass, node, as.Rhs[i].Pos(), "assigning %s to interface %s allocates",
				typeStr(rt.Type), typeStr(lt.Type))
		}
	}
}

// checkValueSpec is checkAssign for `var x Iface = concrete` declarations.
func checkValueSpec(pass *analysis.ModulePass, node *analysis.FuncNode, vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	info := node.Pkg.Info
	tt, ok := info.Types[vs.Type]
	if !ok || tt.Type == nil || !types.IsInterface(tt.Type.Underlying()) {
		return
	}
	for _, v := range vs.Values {
		vt, ok := info.Types[v]
		if !ok || vt.Type == nil {
			continue
		}
		if analysis.Boxes(vt.Type) {
			report(pass, node, v.Pos(), "assigning %s to interface %s allocates",
				typeStr(vt.Type), typeStr(tt.Type))
		}
	}
}

// checkReturn flags boxing at return statements whose declared result
// type is an interface.
func checkReturn(pass *analysis.ModulePass, node *analysis.FuncNode, ret *ast.ReturnStmt) {
	sig, ok := node.Obj.Type().(*types.Signature)
	if !ok || sig.Results() == nil {
		return
	}
	res := sig.Results()
	if len(ret.Results) != res.Len() {
		return // naked return or tuple forward
	}
	info := node.Pkg.Info
	for i, r := range ret.Results {
		rt := res.At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		at, ok := info.Types[r]
		if !ok || at.Type == nil {
			continue
		}
		if analysis.Boxes(at.Type) {
			report(pass, node, r.Pos(), "returning %s as interface %s allocates",
				typeStr(at.Type), typeStr(rt))
		}
	}
}

func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func typeStr(t types.Type) string { return types.TypeString(t, analysis.ShortQual) }

// report emits a diagnostic with hot-taint provenance unless the site
// carries a justified //fv:boxing-ok or sits on a declared cold
// sub-path (//fv:coldpath <reason>).
func report(pass *analysis.ModulePass, node *analysis.FuncNode, pos token.Pos, format string, args ...any) {
	if pass.CheckReason(pos, "boxing-ok") {
		return
	}
	if _, cold := pass.Annotations().Suppressed(pos, "coldpath"); cold {
		return
	}
	where := "a //fv:hotpath root"
	if node.Via != nil {
		where = "hot via " + analysis.FuncName(node.Via.Obj)
	}
	pass.Reportf(pos, format+" in hot closure [%s, %s] — devirtualize or annotate //fv:boxing-ok <reason>",
		append(args, analysis.FuncName(node.Obj), where)...)
}
