// Package boxingdep proves hot taint crosses package boundaries: its
// only caller is boxingtest.HotCross, a //fv:hotpath root.
package boxingdep

type Dep interface{ Cost() int }

func Helper(d Dep) int {
	return d.Cost() // want `interface method call boxingdep\.Dep\.Cost .dynamic dispatch.*hot via boxingtest\.HotCross`
}
