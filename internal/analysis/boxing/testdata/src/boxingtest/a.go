// Package boxingtest seeds dynamic-dispatch and boxing shapes across
// the //fv:hotpath closure and proves exemptions and cuts are honored.
package boxingtest

import "boxingdep"

type frobber interface{ Frob(int) int }

type impl struct{ n int }

func (i *impl) Frob(x int) int { return i.n + x }

type holder struct {
	fn func(int) int
	fb frobber
}

type big struct{ a, b int64 }

type iface interface{ M() }

func (big) M() {}

func sink(v any) { _ = v }

//fv:hotpath
func Hot(h *holder, f frobber) int {
	v := f.Frob(1) // want `interface method call boxingtest\.frobber\.Frob .dynamic dispatch.*in hot closure .boxingtest\.Hot, a //fv:hotpath root.`
	v += h.fn(2)   // want `indirect call through function value`
	return v
}

//fv:hotpath
func HotOK(h *holder, f frobber) int {
	v := f.Frob(1) //fv:boxing-ok fixture: sanctioned pluggable dispatch
	v += h.fn(2)   //fv:boxing-ok fixture: sanctioned indirect call
	return v
}

//fv:hotpath
func HotNaked(f frobber) int {
	return f.Frob(1) //fv:boxing-ok // want `//fv:boxing-ok suppression requires a justification` `interface method call`
}

//fv:hotpath
func HotConv(b big) iface {
	var x any = b // want `assigning boxingtest\.big to interface any allocates`
	_ = x
	y := iface(b) // want `conversion of boxingtest\.big to interface boxingtest\.iface allocates`
	_ = y
	return b // want `returning boxingtest\.big as interface boxingtest\.iface allocates`
}

//fv:hotpath
func HotCapture(n int) func() int {
	f := func() int { return n } // want `closure capturing n allocates its context`
	return f
}

//fv:hotpath
func HotCaptureFree() func() int {
	// A capture-free literal is a static func value: no allocation, no
	// diagnostic.
	f := func() int { return 7 }
	return f
}

// HotArgs is annotated, so argument boxing stays the hotpath analyzer's
// report (no double diagnostic from boxing).
//
//fv:hotpath
func HotArgs(n int) {
	sink(n)
}

//fv:hotpath
func HotRoot2(n int) {
	callee(n)
}

// callee is unannotated but hot via HotRoot2: argument boxing is
// charged here, with provenance.
func callee(n int) {
	sink(n) // want `boxing int into interface any allocates in hot closure .boxingtest\.callee, hot via boxingtest\.HotRoot2.`
}

//fv:hotpath
func HotRoot3(h *holder) {
	coldCallee(h) //fv:coldpath fixture: epoch roll, amortized off the packet budget
}

// coldCallee is only reachable through a //fv:coldpath cut: not hot, so
// its interface call is fine.
func coldCallee(h *holder) {
	_ = h.fb.Frob(3)
}

const debug = false

//fv:hotpath
func HotDead(f frobber) {
	if debug {
		_ = f.Frob(9) // dead under this build: skipped
	}
}

//fv:hotpath
func HotCross(d boxingdep.Dep) int {
	return boxingdep.Helper(d)
}

// NotHot is outside the closure entirely.
func NotHot(h *holder, f frobber) int {
	return f.Frob(1) + h.fn(2)
}
