// Package lockconvtest seeds lockconv violations: ...Locked calls with
// no lock acquisition in scope and unjustified ...Racy calls.
package lockconvtest

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *S) bumpLocked() { s.n++ }

func (s *S) readRacy() int { return s.n }

// Good acquires the mutex before the ...Locked call.
func (s *S) Good() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}

// GoodTry uses the try-lock idiom (FlowValve's per-class update path).
func (s *S) GoodTry() bool {
	if s.mu.TryLock() {
		s.bumpLocked()
		s.mu.Unlock()
		return true
	}
	return false
}

// GoodRead holds a reader lock.
func (s *S) GoodRead() {
	s.rw.RLock()
	s.bumpLocked()
	s.rw.RUnlock()
}

// alsoLocked inherits the lock from its caller by convention.
func (s *S) alsoLocked() { s.bumpLocked() }

// chainRacy is itself ...Racy, so racing onward needs no annotation.
func (s *S) chainRacy() int { return s.readRacy() }

func (s *S) Bad() {
	s.bumpLocked() // want `bumpLocked is a \.\.\.Locked function but no mutex acquisition precedes this call in Bad`
}

func (s *S) BadRace() int {
	return s.readRacy() // want `readRacy is a \.\.\.Racy function: the call site must justify racing`
}

func (s *S) OkAnnotated() int {
	//fv:racy-ok stats snapshot tolerates torn reads by design
	return s.readRacy()
}

func (s *S) OkSuppressedLocked() {
	//fv:locked-ok lock is held by the caller via LockAll
	s.bumpLocked()
}

func (s *S) BadNakedSuppression() {
	//fv:racy-ok // want `//fv:racy-ok suppression requires a justification`
	_ = s.readRacy() // want `readRacy is a \.\.\.Racy function`
}

// drainOwner is single-consumer code: only the owning goroutine may
// run it (the MPSC feed-ring discipline).
func (s *S) drainOwner() int { return s.n }

// serveOwner is itself ...Owner, so onward ...Owner calls are the same
// goroutine by convention.
func (s *S) serveOwner() int { return s.drainOwner() }

func (s *S) BadSecondConsumer() int {
	return s.drainOwner() // want `drainOwner is a \.\.\.Owner \(single-consumer\) function and BadSecondConsumer is not`
}

func (s *S) OkOwnerAnnotated() int {
	//fv:owner-ok workers not started; inline mode is single-goroutine
	return s.drainOwner()
}
