package lockconv_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/lockconv"
)

func TestLockconv(t *testing.T) {
	analysistest.Run(t, "testdata", lockconv.Analyzer, "lockconvtest")
}
