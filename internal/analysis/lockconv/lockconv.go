// Package lockconv enforces FlowValve's locking naming convention.
//
// The codebase marks lock discipline in function names: a method named
// FooLocked must only run with the relevant mutex held, and a method
// named FooRacy is deliberately callable without mutual exclusion (the
// NoLock ablation paths). The convention is only useful if call sites
// honor it, so this analyzer checks, intra-procedurally:
//
//   - A call to a *Locked function is legal when the calling function
//     is itself *Locked (the caller inherited the lock), or when a
//     mutex acquisition (Lock, RLock or TryLock on a sync.Mutex /
//     sync.RWMutex) appears earlier in the calling function's body —
//     the lexical approximation of "the lock is held here". Otherwise
//     the call needs //fv:locked-ok <reason>.
//
//   - A call to a *Racy function must carry //fv:racy-ok <reason>
//     unless the caller is itself *Racy — racing is always a deliberate,
//     documented choice, never an accident.
//
//   - A call to an *Owner function — single-consumer code whose safety
//     rests on exactly one goroutine (the shard owner) executing it, the
//     MPSC feed-ring discipline — is legal only from another *Owner
//     function. Any other call site is a potential second consumer and
//     must justify itself with //fv:owner-ok <reason> (e.g. "workers not
//     started; inline DES mode is single-goroutine").
//
// The lexical heuristic deliberately trades soundness for zero false
// positives on idiomatic code: it will miss a *Locked call placed in
// the failure arm of a TryLock, but it catches the common regression —
// a new call site with no lock acquisition in sight at all.
package lockconv

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the lockconv invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockconv",
	Doc:  "enforce the ...Locked / ...Racy / ...Owner naming conventions at call sites",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	callerLocked := strings.HasSuffix(fn.Name.Name, "Locked")
	callerRacy := strings.HasSuffix(fn.Name.Name, "Racy")
	callerOwner := strings.HasSuffix(fn.Name.Name, "Owner")

	// acquisitions collects the positions of every mutex Lock/RLock/
	// TryLock call in the function body (including inside closures —
	// a closure acquiring the lock before calling a *Locked method is
	// the same idiom one level down).
	var acquisitions []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMutexAcquire(pass, call) {
			acquisitions = append(acquisitions, call.Pos())
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.FuncObj(call)
		if callee == nil {
			return true
		}
		name := callee.Name()
		switch {
		case strings.HasSuffix(name, "Locked"):
			if callerLocked || isMutexAcquire(pass, call) {
				return true
			}
			if acquiredBefore(acquisitions, call.Pos()) {
				return true
			}
			if analysis.CheckReason(pass, call.Pos(), "locked-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s is a ...Locked function but no mutex acquisition precedes this call in %s (and it is not itself ...Locked); hold the lock or annotate //fv:locked-ok <reason>",
				name, fn.Name.Name)
		case strings.HasSuffix(name, "Racy"):
			if callerRacy {
				return true
			}
			if analysis.CheckReason(pass, call.Pos(), "racy-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s is a ...Racy function: the call site must justify racing with //fv:racy-ok <reason>",
				name)
		case strings.HasSuffix(name, "Owner"):
			if callerOwner {
				return true
			}
			if analysis.CheckReason(pass, call.Pos(), "owner-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s is a ...Owner (single-consumer) function and %s is not; only the owning goroutine may call it — annotate //fv:owner-ok <reason> if this site is the owner",
				name, fn.Name.Name)
		}
		return true
	})
}

// acquiredBefore reports whether any recorded acquisition position
// precedes pos.
func acquiredBefore(acqs []token.Pos, pos token.Pos) bool {
	for _, a := range acqs {
		if a < pos {
			return true
		}
	}
	return false
}

// isMutexAcquire reports whether call acquires a sync mutex: a Lock,
// RLock or TryLock/TryRLock method on sync.Mutex, sync.RWMutex, or any
// type embedding them.
func isMutexAcquire(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isSyncLocker(sig.Recv().Type()) || fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// isSyncLocker reports whether t (possibly behind a pointer) is a
// sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
