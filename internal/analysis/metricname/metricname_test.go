package metricname_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, "metricnametest")
}
