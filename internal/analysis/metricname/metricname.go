// Package metricname enforces the telemetry naming contract: every
// metric registered on a telemetry.Registry carries a compile-time
// constant, fv_-prefixed, prometheus-legal name, and each name is
// registered from exactly one call site per package. The registry
// dedups at runtime, so a second registration with a different help
// string or kind is silently ignored — a divergence this analyzer
// surfaces at build time instead of on a dashboard.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the metricname invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric names must be constant, fv_-prefixed, and registered once per package",
	Run:  run,
}

// registerMethods maps the telemetry.Registry methods that register a
// metric family; the first argument is the family name.
var registerMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

// nameRE is the accepted shape: fv_ prefix, lowercase snake case.
var nameRE = regexp.MustCompile(`^fv_[a-z0-9]+(_[a-z0-9]+)*$`)

func run(pass *analysis.Pass) (any, error) {
	type site struct {
		pos  token.Pos
		name string
	}
	var sites []site

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := pass.FuncObj(call)
			if fn == nil || !registerMethods[fn.Name()] || !isRegistry(fn) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				if !analysis.CheckReason(pass, arg.Pos(), "metric-ok") {
					pass.Reportf(arg.Pos(),
						"metric name passed to Registry.%s must be a compile-time string constant (or annotate //fv:metric-ok <reason>)",
						fn.Name())
				}
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRE.MatchString(name) {
				if !analysis.CheckReason(pass, arg.Pos(), "metric-ok") {
					pass.Reportf(arg.Pos(),
						"metric name %q must match %s (fv_-prefixed lowercase snake case)",
						name, nameRE)
				}
				return true
			}
			// A justified //fv:metric-ok site is an acknowledged alias of
			// another registration (e.g. a merged export path registering
			// the same families as the plain one); it neither counts
			// toward nor trips the once-per-package rule.
			if analysis.CheckReason(pass, arg.Pos(), "metric-ok") {
				return true
			}
			sites = append(sites, site{pos: arg.Pos(), name: name})
			return true
		})
	}

	// One registration call site per family name per package: the
	// runtime registry dedups, so duplicate static sites mean one of
	// them silently loses.
	byName := make(map[string][]site)
	for _, s := range sites {
		byName[s.name] = append(byName[s.name], s)
	}
	names := make([]string, 0, len(byName))
	for name, ss := range byName {
		if len(ss) > 1 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ss := byName[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
		for _, s := range ss[1:] {
			first := pass.Fset.Position(ss[0].pos)
			pass.Reportf(s.pos,
				"metric %q is already registered at %s:%d; register each family once (or annotate //fv:metric-ok <reason>)",
				name, first.Filename, first.Line)
		}
	}
	return nil, nil
}

// isRegistry reports whether fn is a method of telemetry.Registry.
func isRegistry(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/telemetry")
}
