// Package metricnametest seeds metricname violations: non-constant
// names, bad prefixes, bad casing, and duplicate registrations.
package metricnametest

import "flowvalve/internal/telemetry"

const goodName = "fv_demo_packets_total"

// Shadow is not telemetry.Registry: its methods are out of scope.
type Shadow struct{}

func (Shadow) Counter(name, help string) {}

func Register(r *telemetry.Registry, dynamic string) {
	r.Counter(goodName, "packets forwarded")
	r.Gauge("fv_demo_queue_depth", "queue depth")
	r.CounterFunc("fv_demo_uptime_seconds", "uptime", func() float64 { return 0 })

	r.Histogram("demo_latency_ns", "latency", nil) // want `metric name "demo_latency_ns" must match`
	r.Counter("fv_BadCase_total", "casing")        // want `metric name "fv_BadCase_total" must match`
	r.Counter(dynamic, "dynamic")                  // want `must be a compile-time string constant`
	r.Gauge("fv_demo_queue_depth", "dup")          // want `metric "fv_demo_queue_depth" is already registered`

	//fv:metric-ok migration shim keeps the legacy dotted name until dashboards move
	r.Counter("legacy.demo.count", "legacy")

	// A justified re-registration is an acknowledged alias: it neither
	// fires nor claims the family for the once-per-package rule.
	//fv:metric-ok merged export path registers the same family as the plain one
	r.Counter(goodName, "merged export alias")

	Shadow{}.Counter("whatever", "not a telemetry registry")
}
