// Package fvassert is a fixture stand-in for the real assertion layer:
// the hotpath analyzer exempts calls into any package whose path ends
// in internal/fvassert.
package fvassert

// Enabled is true here so the guard branch in the fixture is live.
const Enabled = true

// Failf boxes its arguments; the exemption is what keeps this legal in
// a hot path.
func Failf(format string, args ...any) {}
