// Package hotpathtest seeds hotpath violations inside //fv:hotpath
// functions and proves unannotated code is untouched.
package hotpathtest

import (
	"fmt"

	"internal/fvassert"
)

type T struct{ m map[int]int }

func sink(v any) { _ = v }

//fv:hotpath
func Bad(t *T) {
	defer fmt.Println() // want `defer in hot path` `fmt\.Println in hot path`
	fmt.Println("x")    // want `fmt\.Println in hot path`
	for range t.m {     // want `map iteration in hot path`
	}
	_ = &T{}           // want `&composite literal in hot path escapes to the heap`
	_ = make([]int, 4) // want `make in hot path allocates`
	_ = new(T)         // want `new\(T\) in hot path allocates`
	sink(42)           // want `boxing int into interface`
}

//fv:hotpath
func Cold() {
	_ = make([]int, 4) //fv:coldpath one-time scratch growth, amortized to zero
}

const debug = false

func expensive() bool { return true }

// DeadOK proves statically dead branches (the fvassert pattern) are
// skipped: debug is a compile-time false constant.
//
//fv:hotpath
func DeadOK() {
	if debug && expensive() {
		fmt.Println("never")
	}
}

// NotHot is unannotated: the discipline does not apply.
func NotHot() {
	defer fmt.Println()
	_ = make([]int, 4)
}

// AssertOK proves fvassert calls are exempt even in a live branch:
// Enabled is true in the fixture package, so the guard is not dead,
// yet boxing n into Failf's ...any draws no diagnostic.
//
//fv:hotpath
func AssertOK(n int64) {
	if fvassert.Enabled && n < 0 {
		fvassert.Failf("negative count %d", n)
	}
}

// PtrOK passes pointer-shaped values into interfaces: no allocation, no
// diagnostic.
//
//fv:hotpath
func PtrOK(t *T) {
	sink(t)
	// Closures run on their own budget (DES events): excluded.
	f := func() { _ = make([]int, 1) }
	f()
}
