// Package hotpath enforces the per-packet discipline on functions
// annotated //fv:hotpath: the batched scheduling path earns its 39
// ns/pkt, 0 allocs/op budget (BenchmarkScheduleBatch32,
// TestClassifyHitNoAllocs) only while nobody reintroduces an
// allocation, a defer, or a formatting call — regressions that
// benchmarks catch late and reviews miss early.
//
// Inside an annotated function's immediate body (closures are excluded:
// a closure handed to the DES event queue runs on another budget), the
// analyzer rejects:
//
//   - fmt.* calls — formatting allocates and convinces escape analysis
//     to heap everything it touches;
//   - defer statements — a defer costs tens of ns per call on this
//     budget and hides an unlock ordering the try-lock design avoids;
//   - map iteration — nondeterministic order and hash-walk cost;
//   - heap-escaping composites: &T{...}, new(T), make(slice/map/chan);
//   - interface-boxing conversions: passing or converting a non-pointer
//     concrete value to an interface parameter allocates at runtime
//     (pointer-shaped values — pointers, funcs, chans, maps — do not).
//
// A statement on a genuinely cold sub-path (one-time scratch growth, a
// fallback for adversarial inputs) carries //fv:coldpath <reason>.
// Branches gated by a compile-time-false constant (the fvassert
// pattern) are skipped automatically.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flowvalve/internal/analysis"
)

// Analyzer is the hotpath invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject allocations, defer, fmt and map iteration in //fv:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncDirective(fn, "hotpath") {
				continue
			}
			check(pass, fn)
		}
	}
	return nil, nil
}

// check walks one annotated function body, skipping closures and
// statically dead branches.
func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate budget: DES event closures etc.
		case *ast.IfStmt:
			if pass.DeadBranch(n) {
				// Init and Cond still execute; Body does not.
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				ast.Inspect(n.Cond, walk)
				if n.Else != nil {
					ast.Inspect(n.Else, walk)
				}
				return false
			}
		case *ast.DeferStmt:
			report(pass, n.Pos(), "defer in hot path (per-call overhead; unlock explicitly)")
		case *ast.RangeStmt:
			if n.X != nil {
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(pass, n.Pos(), "map iteration in hot path (hash-walk cost, nondeterministic order)")
					}
				}
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				report(pass, n.Pos(), "&composite literal in hot path escapes to the heap")
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Built-ins: new always allocates; make allocates for every
	// reference type.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "new":
				report(pass, call.Pos(), "new(T) in hot path allocates; use pooled or caller-provided scratch")
			case "make":
				report(pass, call.Pos(), "make in hot path allocates; use pooled or caller-provided scratch")
			}
			return
		}
	}

	fn := pass.FuncObj(call)
	if fn != nil && fn.Pkg() != nil {
		// fvassert calls are exempt: under -tags fvassert the guard
		// branch is live and Failf's ...any boxing is an accepted,
		// deliberate cost of an assertion build.
		if strings.HasSuffix(fn.Pkg().Path(), "internal/fvassert") {
			return
		}
		if fn.Pkg().Path() == "fmt" {
			report(pass, call.Pos(), "fmt.%s in hot path (formatting allocates)", fn.Name())
			return
		}
	}

	// Interface boxing at call boundaries: a concrete, non-pointer-
	// shaped argument passed to an interface parameter allocates.
	sig := analysis.CallSignature(pass.TypesInfo, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := analysis.ParamType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if analysis.Boxes(at.Type) {
			report(pass, arg.Pos(), "boxing %s into interface %s allocates in hot path",
				types.TypeString(at.Type, analysis.ShortQual), types.TypeString(pt, analysis.ShortQual))
		}
	}
}

// report emits a diagnostic unless the line carries //fv:coldpath.
func report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if analysis.CheckReason(pass, pos, "coldpath") {
		return
	}
	pass.Reportf(pos, format+" — move off the hot path or annotate //fv:coldpath <reason>", args...)
}
