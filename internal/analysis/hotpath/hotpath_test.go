package hotpath_test

import (
	"testing"

	"flowvalve/internal/analysis/analysistest"
	"flowvalve/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hotpathtest")
}
