package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("flowvalve/internal/core").
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Config configures a Loader.
type Config struct {
	// Dir is any directory inside the module; the loader walks up to
	// the enclosing go.mod to learn the module path and root. Empty
	// means the current working directory.
	Dir string
	// Tags are extra build tags considered satisfied (e.g. "fvassert").
	// GOOS, GOARCH and the release tags are always satisfied.
	Tags []string
	// FixtureRoot, when set, is an extra import root resolved before
	// the module: an import "x" loads FixtureRoot/x if that directory
	// exists. The analysistest harness points it at testdata/src.
	FixtureRoot string
}

// Loader loads and type-checks packages without the go toolchain's
// package driver: module-local imports resolve against the module tree,
// fixture imports against Config.FixtureRoot, and everything else
// (the standard library) through the source importer, which type-checks
// from $GOROOT/src and therefore needs no pre-built export data and no
// network. One Loader memoizes every package it has checked, so a
// repo-wide lint run pays the standard-library checking cost once.
type Loader struct {
	fset       *token.FileSet
	modulePath string
	moduleDir  string
	tags       map[string]bool
	fixtures   string

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader builds a loader rooted at the module enclosing cfg.Dir.
func NewLoader(cfg Config) (*Loader, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	tags := map[string]bool{
		runtime.GOOS: true, runtime.GOARCH: true, "gc": true,
	}
	if runtime.GOOS != "windows" && runtime.GOOS != "plan9" {
		tags["unix"] = true
	}
	for _, t := range cfg.Tags {
		tags[t] = true
	}
	return &Loader{
		fset:       fset,
		modulePath: modPath,
		moduleDir:  modDir,
		tags:       tags,
		fixtures:   cfg.FixtureRoot,
		std:        std,
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the enclosing module's path.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the enclosing module's root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// ImportPathForDir maps a directory to the import path the loader would
// assign it.
func (l *Loader) ImportPathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if l.fixtures != "" {
		if rel, err := filepath.Rel(l.fixtures, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) && rel != "." {
			return filepath.ToSlash(rel), nil
		}
	}
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleDir)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForImport resolves an import path to a module or fixture directory,
// or "" when the path belongs to neither (i.e. the standard library).
func (l *Loader) dirForImport(path string) string {
	if l.fixtures != "" {
		d := filepath.Join(l.fixtures, filepath.FromSlash(path))
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d
		}
	}
	if path == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	return ""
}

// LoadDir loads and type-checks the (non-test) package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.ImportPathForDir(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// Import implements types.Importer for the type-checker's benefit.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir := l.dirForImport(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	names, err := l.selectFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// selectFiles returns the buildable non-test .go files of dir under the
// loader's tag set, sorted for deterministic diagnostics.
func (l *Loader) selectFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		ok, err := l.fileMatches(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// fileMatches evaluates filename GOOS/GOARCH suffixes and the //go:build
// line against the loader's tag set.
func (l *Loader) fileMatches(path string) (bool, error) {
	base := strings.TrimSuffix(filepath.Base(path), ".go")
	// Filename constraints: name_GOOS.go, name_GOARCH.go,
	// name_GOOS_GOARCH.go. Only the trailing one or two segments count.
	parts := strings.Split(base, "_")
	if n := len(parts); n > 1 {
		last := parts[n-1]
		if knownArch[last] {
			if !l.tags[last] {
				return false, nil
			}
			if n > 2 && knownOS[parts[n-2]] && !l.tags[parts[n-2]] {
				return false, nil
			}
		} else if knownOS[last] && !l.tags[last] {
			return false, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	// Scan the header (before the package clause) for a //go:build line.
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false, fmt.Errorf("analysis: %s: %v", path, err)
		}
		return expr.Eval(func(tag string) bool {
			if strings.HasPrefix(tag, "go1.") {
				return true // release tags: always current enough
			}
			return l.tags[tag]
		}), nil
	}
	return true, nil
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// RunAnalyzers applies each analyzer to pkg, delivering diagnostics to
// report in source order per analyzer.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, report func(*Analyzer, Diagnostic)) error {
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			report(a, d)
		}
	}
	return nil
}
