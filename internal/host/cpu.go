// Package host models the end-host CPU for the software-scheduler
// baselines: per-packet cycle budgets, lock/cache-contention scaling
// across cores, and CPU-utilization accounting. FlowValve's headline
// operational claim — "saves at least two CPU cores" — is evaluated by
// comparing the cores these models consume at matched throughput against
// the zero host cores FlowValve needs.
//
// The testbed in the paper is an 8-core 2.3GHz CPU; those are the
// defaults.
package host

import "fmt"

// Config describes the host CPU.
type Config struct {
	// Cores available for packet scheduling.
	Cores int
	// FreqHz is the per-core clock.
	FreqHz float64
	// ContentionBeta inflates the effective per-packet cost by
	// (1 + β·(activeCores−1)) — lock and cache-line bouncing on shared
	// scheduler structures, the degradation the paper traces in the
	// DPDK hierarchical scheduler block.
	ContentionBeta float64
}

// Defaults fills unset fields with the paper's testbed.
func (c Config) Defaults() Config {
	if c.Cores <= 0 {
		c.Cores = 8
	}
	if c.FreqHz <= 0 {
		c.FreqHz = 2.3e9
	}
	if c.ContentionBeta < 0 {
		c.ContentionBeta = 0
	}
	return c
}

// CPU tracks cycle consumption against the host budget.
type CPU struct {
	cfg    Config
	cycles float64 // consumed so far
}

// New returns a CPU accountant.
func New(cfg Config) *CPU {
	return &CPU{cfg: cfg.Defaults()}
}

// Config returns the effective configuration.
func (c *CPU) Config() Config { return c.cfg }

// Charge records cycles of work.
func (c *CPU) Charge(cycles float64) { c.cycles += cycles }

// Cycles returns the total cycles consumed.
func (c *CPU) Cycles() float64 { return c.cycles }

// CoresUsed converts consumption over a wall window into equivalent
// fully-busy cores.
func (c *CPU) CoresUsed(windowNs int64) float64 {
	if windowNs <= 0 {
		return 0
	}
	return c.cycles / (c.cfg.FreqHz * float64(windowNs) / 1e9)
}

// EffectiveCost returns the per-packet cost including the contention
// penalty for running the scheduler on n cores.
func (c *CPU) EffectiveCost(baseCycles float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	return baseCycles * (1 + c.cfg.ContentionBeta*float64(n-1))
}

// Capacity returns the packet rate n cores sustain at the given base
// per-packet cost, accounting for contention.
func (c *CPU) Capacity(baseCycles float64, n int) float64 {
	if n < 1 || baseCycles <= 0 {
		return 0
	}
	if n > c.cfg.Cores {
		n = c.cfg.Cores
	}
	return float64(n) * c.cfg.FreqHz / c.EffectiveCost(baseCycles, n)
}

// CoresFor returns the fewest cores that sustain the target packet rate
// at the given base cost, or an error if the host cannot.
func (c *CPU) CoresFor(baseCycles, targetPps float64) (int, error) {
	for n := 1; n <= c.cfg.Cores; n++ {
		if c.Capacity(baseCycles, n) >= targetPps {
			return n, nil
		}
	}
	return 0, fmt.Errorf("host: %d cores cannot sustain %.2f Mpps at %.0f cycles/pkt",
		c.cfg.Cores, targetPps/1e6, baseCycles)
}
