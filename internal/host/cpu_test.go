package host

import (
	"math"
	"testing"
)

func TestDefaults(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Cores != 8 || cfg.FreqHz != 2.3e9 {
		t.Fatalf("defaults = %+v, want the paper's 8×2.3GHz host", cfg)
	}
}

func TestChargeAndCoresUsed(t *testing.T) {
	c := New(Config{})
	c.Charge(2.3e9) // one core-second
	if got := c.CoresUsed(1e9); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("CoresUsed = %g, want 1", got)
	}
	if got := c.CoresUsed(2e9); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CoresUsed over 2s = %g, want 0.5", got)
	}
	if c.CoresUsed(0) != 0 {
		t.Fatal("zero window should report 0")
	}
	if c.Cycles() != 2.3e9 {
		t.Fatalf("Cycles = %g", c.Cycles())
	}
}

func TestCapacityScalesWithCores(t *testing.T) {
	c := New(Config{ContentionBeta: 0})
	one := c.Capacity(1000, 1)
	if math.Abs(one-2.3e6) > 1 {
		t.Fatalf("1-core capacity = %g, want 2.3e6", one)
	}
	if got := c.Capacity(1000, 4); math.Abs(got-4*one) > 1 {
		t.Fatalf("4-core capacity = %g, want linear %g", got, 4*one)
	}
	// Cores clamped to the host.
	if got := c.Capacity(1000, 100); got != c.Capacity(1000, 8) {
		t.Fatal("capacity not clamped to host cores")
	}
	if c.Capacity(1000, 0) != 0 || c.Capacity(0, 4) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestContentionPenalty(t *testing.T) {
	c := New(Config{ContentionBeta: 0.1})
	if got := c.EffectiveCost(1000, 1); got != 1000 {
		t.Fatalf("1-core effective cost = %g", got)
	}
	if got := c.EffectiveCost(1000, 5); math.Abs(got-1400) > 1e-9 {
		t.Fatalf("5-core effective cost = %g, want 1400", got)
	}
	lin := New(Config{ContentionBeta: 0})
	if c.Capacity(1000, 8) >= lin.Capacity(1000, 8) {
		t.Fatal("contention should reduce capacity")
	}
}

func TestCoresFor(t *testing.T) {
	c := New(Config{ContentionBeta: 0})
	n, err := c.CoresFor(1000, 5e6) // needs ⌈5/2.3⌉ = 3 cores
	if err != nil || n != 3 {
		t.Fatalf("CoresFor = %d, %v; want 3", n, err)
	}
	if _, err := c.CoresFor(1000, 100e6); err == nil {
		t.Fatal("impossible target should error")
	}
}
