package experiments

import (
	"fmt"
	"strings"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/nic"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

// ChurnScenario drives FlowValve with a flow population far larger than
// the exact-match flow cache, the SuperNIC-style stress case: every
// packet of a fresh flow misses, inserts, and — once the cache is warm —
// displaces a colder flow by CLOCK. It is the harness behind the
// bounded-state claim: under any flow count, the cache holds at most its
// configured capacity while the NIC keeps forwarding (misses cost
// pipeline walks, never memory growth).
type ChurnScenario struct {
	// DurationNs is the simulated time (default 20ms).
	DurationNs int64
	// Flows is the distinct flow population sprayed round-robin across 4
	// apps (default 4× the cache capacity).
	Flows int
	// SizeBytes is the frame size (default 256).
	SizeBytes int
	// Cache bounds the flow cache under test; the zero value takes the
	// classifier defaults (65536 entries, 8 shards).
	Cache classifier.CacheConfig
	// Batch is the NIC Rx service batch size (0/1 = per-packet).
	Batch int
}

// ChurnResult reports one churn run.
type ChurnResult struct {
	// Cache is the flow cache's end-of-run snapshot.
	Cache dataplane.FlowCacheStats
	// Qdisc holds the enqueue/deliver/drop counters.
	Qdisc dataplane.Stats
	// OfferedFlows echoes the distinct flow population.
	OfferedFlows int
}

// RunFlowCacheChurn executes the churn scenario on the NIC model under
// the fair-queueing policy. The run is a pure function of the scenario:
// the DES is seedless here (round-robin sources), so two identical calls
// produce identical cache statistics — the eviction-determinism property
// the tests pin.
func RunFlowCacheChurn(sc ChurnScenario) (*ChurnResult, error) {
	if sc.DurationNs <= 0 {
		sc.DurationNs = 20 * 1e6
	}
	if sc.SizeBytes <= 0 {
		sc.SizeBytes = 256
	}
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		return nil, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	cls, err := classifier.NewSized(t, rules, script.DefaultClass, sc.Cache)
	if err != nil {
		return nil, err
	}
	if sc.Flows <= 0 {
		sc.Flows = 4 * cls.CacheCap()
	}
	sched, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return nil, err
	}
	counter := &DeliveredCounter{}
	cb := counter.Callbacks()
	dev, err := nic.New(eng, nic.Config{WireRateBps: 40e9, WirePorts: 4, BatchSize: sc.Batch},
		cls, sched, nic.Callbacks{OnDeliver: cb.OnDeliver})
	if err != nil {
		return nil, err
	}
	var q dataplane.Qdisc = dev

	// Offer moderate load — the point is flow diversity, not saturation:
	// every app sprays its quarter of the population round-robin, so the
	// working set sweeps the whole population once per rotation.
	offeredBps := 0.5 * 40e9
	alloc := &packet.Alloc{}
	perApp := (sc.Flows + 3) / 4
	for app := 0; app < 4; app++ {
		flows := make([]packet.FlowID, perApp)
		for i := range flows {
			flows[i] = packet.FlowID(app*perApp + i)
		}
		if _, err := trafficgen.NewSaturator(eng, alloc, flows, packet.AppID(app),
			sc.SizeBytes, offeredBps/4, 0, sc.DurationNs, q.Enqueue); err != nil {
			return nil, err
		}
	}
	eng.RunUntil(sc.DurationNs)

	res := &ChurnResult{Qdisc: q.QdiscStats(), OfferedFlows: sc.Flows}
	fc, ok := q.(dataplane.FlowCacher)
	if !ok {
		return nil, fmt.Errorf("experiments: NIC backend lost the FlowCacher probe")
	}
	res.Cache = fc.FlowCacheStats()
	return res, nil
}

// FormatChurn renders a churn result for the CLI.
func FormatChurn(r *ChurnResult) string {
	var sb strings.Builder
	sb.WriteString("flow-cache churn\n")
	fmt.Fprintf(&sb, "offered flows:  %d\n", r.OfferedFlows)
	fmt.Fprintf(&sb, "cache:          size=%d/%d shards=%d\n", r.Cache.Size, r.Cache.Capacity, r.Cache.Shards)
	fmt.Fprintf(&sb, "lookups:        hits=%d misses=%d evictions=%d\n", r.Cache.Hits, r.Cache.Misses, r.Cache.Evictions)
	fmt.Fprintf(&sb, "qdisc:          enqueued=%d delivered=%d dropped=%d\n", r.Qdisc.Enqueued, r.Qdisc.Delivered, r.Qdisc.Dropped)
	return sb.String()
}
