package experiments

import (
	"fmt"
	"testing"

	"flowvalve/internal/faults"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/nic"
)

// chaosScenario is the soak fixture: the Fig 11(b) fair-queue policy at
// 40G with every app live from t=0, short bins so conformance can be
// checked window by window.
func chaosScenario(t *testing.T, plan *faults.Plan) TCPScenario {
	t.Helper()
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		t.Fatal(err)
	}
	tr, rules, err := script.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return TCPScenario{
		DurationNs: 3e9,
		BinNs:      1e8,
		Apps: []AppSpec{
			{App: 0, Conns: 2, StartNs: 0},
			{App: 1, Conns: 2, StartNs: 0},
			{App: 2, Conns: 2, StartNs: 0},
			{App: 3, Conns: 2, StartNs: 0},
		},
		Tree:         tr,
		Rules:        rules,
		DefaultClass: script.DefaultClass,
		NIC:          nic.Config{WireRateBps: 40e9, WirePorts: 4},
		Faults:       plan,
	}
}

// TestChaosSoak drives randomized fault plans (fixed seed matrix) through
// the full FlowValve stack under the fair-queue policy and asserts the
// graceful-degradation invariants:
//
//  1. conformance — delivered throughput never exceeds the root rate
//     beyond burst slack in any bin, faults or not;
//  2. recovery — each app's post-fault throughput returns to within 10%
//     of its pre-fault share;
//  3. liveness — the run completes (no deadlock), faults really were
//     injected, and no class is left degraded at the end.
func TestChaosSoak(t *testing.T) {
	const (
		faultFrom = int64(1.2e9)
		faultTo   = int64(2.0e9)
	)
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faults.RandomPlan(seed, faultFrom, faultTo)
			sc := chaosScenario(t, plan)
			res, err := RunFlowValveTCP(sc)
			if err != nil {
				t.Fatal(err)
			}

			// (3) liveness & accounting.
			if res.Faults == nil || res.Faults.Total() == 0 {
				t.Fatal("randomized plan injected no faults")
			}
			if res.Watchdog == nil {
				t.Fatal("watchdog not armed on a faulted run")
			}
			if res.Watchdog.DegradedNow() != 0 {
				t.Fatalf("%d classes still degraded at end of run", res.Watchdog.DegradedNow())
			}

			// (1) conformance: per-bin delivered rate stays under the root
			// rate plus burst slack. Leaf+shadow bursts (4ms+2ms of θ) can
			// land inside one 100ms bin → ≤ ~6% over; allow 10%.
			const rootBps, slack = 40e9, 1.10
			for from := int64(0); from+sc.BinNs <= sc.DurationNs; from += sc.BinNs {
				got := res.Meter.TotalBps(from, from+sc.BinNs)
				if got > rootBps*slack {
					t.Fatalf("bin [%dms,%dms): delivered %.2fGbps > %.0fG×%.2f — token conformance violated",
						from/1e6, (from+sc.BinNs)/1e6, got/1e9, rootBps/1e9, slack)
				}
			}

			// (2) recovery: post-fault share within 10% of pre-fault share
			// for every app. Pre [0.7,1.2)s is steady state; post [2.5,3.0)s
			// gives the watchdog + TCP a second to re-converge.
			for app := 0; app < 4; app++ {
				pre := res.MeanWindowBps(app, 7e8, faultFrom)
				post := res.MeanWindowBps(app, 25e8, 30e8)
				if pre <= 0 {
					t.Fatalf("app %d idle before the fault window", app)
				}
				if diff := (post - pre) / pre; diff < -0.10 || diff > 0.10 {
					t.Fatalf("app %d did not recover: pre %.2fGbps post %.2fGbps (%+.1f%%)",
						app, pre/1e9, post/1e9, diff*100)
				}
			}
		})
	}
}

// TestChaosStopInsideStall pins the nastiest scheduling edge: an app
// whose StopNs lands inside a core-stall window. Its in-flight segments
// are parked in the stalled NIC; the run must still drain and terminate,
// and the survivors must absorb the freed share.
func TestChaosStopInsideStall(t *testing.T) {
	plan := faults.Plan{Seed: 11, Events: []faults.Event{
		// Stall most of the worker contexts across the stop boundary.
		{Kind: faults.KindCoreStall, AtNs: 1.4e9, DurationNs: 4e8, Cores: 40},
	}}
	sc := chaosScenario(t, &plan)
	sc.Apps[3].StopNs = 15e8 // inside the stall window [1.4s, 1.8s)
	res, err := RunFlowValveTCP(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || res.Faults.Total() == 0 {
		t.Fatal("stall never fired")
	}
	// The stopped app is quiet at the end; the survivors re-converged and
	// took over its share (≥ their pre-fault rate).
	if got := res.MeanWindowBps(3, 25e8, 30e8); got > 1e9 {
		t.Fatalf("stopped app still pushing %.2fGbps after StopNs", got/1e9)
	}
	for app := 0; app < 3; app++ {
		pre := res.MeanWindowBps(app, 7e8, 12e8)
		post := res.MeanWindowBps(app, 25e8, 30e8)
		if post < pre*0.95 {
			t.Fatalf("app %d lost share after peer stopped in stall: pre %.2fG post %.2fG",
				app, pre/1e9, post/1e9)
		}
	}
}

// TestChaosStartAfterFaultWindow pins the late joiner: a connection set
// that starts only after the fault window has cleared must still ramp to
// its fair share — degraded-state residue must not tax newcomers.
func TestChaosStartAfterFaultWindow(t *testing.T) {
	plan := faults.RandomPlan(7, 5e8, 1.2e9)
	sc := chaosScenario(t, plan)
	sc.Apps[3].StartNs = 16e8 // well past the last fault effect
	res, err := RunFlowValveTCP(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Watchdog != nil && res.Watchdog.DegradedNow() != 0 {
		t.Fatalf("%d classes degraded at end", res.Watchdog.DegradedNow())
	}
	late := res.MeanWindowBps(3, 25e8, 30e8)
	peer := res.MeanWindowBps(0, 25e8, 30e8)
	if late < peer*0.85 {
		t.Fatalf("late joiner stuck at %.2fGbps vs peer %.2fGbps", late/1e9, peer/1e9)
	}
}
