package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
	"flowvalve/internal/pifo"
	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/trafficgen"
)

// AccuracyScenario measures how close each approximate scheduler gets to
// the exact-PIFO oracle: every pifo-family backend is driven with the
// identical seeded bursty workload under the same rank policy, and the
// lab reports rank inversions, admission behaviour, per-app throughput,
// and the enforcement error of each backend's bandwidth split against
// the oracle's. This is the programmable-scheduling counterpart of the
// figure experiments — fidelity versus structure cost, on one trace.
type AccuracyScenario struct {
	// DurationNs is the source active period (default 20ms); the run
	// continues for another DurationNs so queues drain fully.
	DurationNs int64
	// SizeBytes is the frame size (default 1000).
	SizeBytes int
	// Apps is the number of competing senders, one rank-policy slot
	// each (default 4).
	Apps int
	// Seed drives the per-app on/off sources (default 1).
	Seed uint64
	// LinkRateBps is the egress wire (default 1 Gbps). Aggregate
	// offered load is ~1.3× this, so admission filters are always
	// exercised.
	LinkRateBps float64
	// CapPkts bounds each backend's structure (default 256).
	CapPkts int
	// Policy is the shared rank function (default wfq).
	Policy string
	// Backends lists the registry names to compare (default: the whole
	// family). The exact-PIFO oracle is always included — enforcement
	// error is measured against it.
	Backends []string
	// Telemetry, when set, receives every backend's metric families
	// (distinguished by the scheduler label).
	Telemetry *telemetry.Registry
}

// AccuracyRow is one backend's scorecard.
type AccuracyRow struct {
	Backend string
	Doc     string

	Delivered uint64
	Dropped   uint64
	// Inversions counts dequeues that overtook a better-ranked
	// co-resident packet (zero for the oracle by construction).
	Inversions uint64
	// RankDrops/FullDrops/EvictDrops split the drops by admission cause.
	RankDrops, FullDrops, EvictDrops uint64
	// PushUps/PushDowns count SP-PIFO bound adaptations.
	PushUps, PushDowns uint64
	// AppBps is each app's delivered goodput in bits/s of wire time.
	AppBps []float64
	// EnforcementErr is the mean absolute difference between this
	// backend's per-app bandwidth shares and the oracle's, in share
	// points (0 = identical split, 1 = completely disjoint).
	EnforcementErr float64
	// MeanLatencyUs is the mean queueing delay of delivered packets.
	MeanLatencyUs float64
	// TraceDigest fingerprints the full delivery trace (flow, seq,
	// rank, egress instant per packet) — the determinism hook.
	TraceDigest uint64
}

// AccuracyResult is the lab report, rows ranked by inversion count
// against the exact-PIFO oracle (the oracle first).
type AccuracyResult struct {
	Scenario AccuracyScenario
	Rows     []AccuracyRow
}

func (sc *AccuracyScenario) defaults() error {
	if sc.DurationNs <= 0 {
		sc.DurationNs = 20e6
	}
	if sc.SizeBytes <= 0 {
		sc.SizeBytes = 1000
	}
	if sc.Apps <= 0 {
		sc.Apps = 4
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.LinkRateBps <= 0 {
		sc.LinkRateBps = 1e9
	}
	if sc.CapPkts <= 0 {
		sc.CapPkts = 256
	}
	if sc.Policy == "" {
		sc.Policy = pifo.PolicyWFQ
	}
	if len(sc.Backends) == 0 {
		sc.Backends = pifo.BackendNames()
	}
	for _, name := range sc.Backends {
		if !pifo.IsBackend(name) {
			return fmt.Errorf("experiments: unknown pifo backend %q (want %s)", name, pifo.BackendList())
		}
	}
	oracle := false
	for _, name := range sc.Backends {
		if name == pifo.BackendPIFO {
			oracle = true
		}
	}
	if !oracle {
		sc.Backends = append([]string{pifo.BackendPIFO}, sc.Backends...)
	}
	return nil
}

// RunAccuracy executes the lab: one independent seeded DES run per
// backend over the identical workload, then cross-backend scoring
// against the oracle row.
func RunAccuracy(sc AccuracyScenario) (*AccuracyResult, error) {
	if err := sc.defaults(); err != nil {
		return nil, err
	}
	docs := make(map[string]string, len(pifo.Backends()))
	for _, spec := range pifo.Backends() {
		docs[spec.Name] = spec.Doc
	}
	res := &AccuracyResult{Scenario: sc}
	for _, name := range sc.Backends {
		row, err := runAccuracyBackend(&sc, name)
		if err != nil {
			return nil, fmt.Errorf("experiments: accuracy %s: %w", name, err)
		}
		row.Doc = docs[name]
		res.Rows = append(res.Rows, *row)
	}

	// Enforcement error: distance of each backend's bandwidth split
	// from the oracle's (row 0 — the oracle is always first here; rows
	// are re-ranked below).
	oracle := res.Rows[0]
	oracleShare := shares(oracle.AppBps)
	for i := range res.Rows {
		s := shares(res.Rows[i].AppBps)
		var sum float64
		for a := range s {
			d := s[a] - oracleShare[a]
			if d < 0 {
				d = -d
			}
			sum += d
		}
		res.Rows[i].EnforcementErr = sum / float64(len(s))
	}

	// Rank by inversion count against the oracle; registry order breaks
	// ties deterministically.
	sort.SliceStable(res.Rows, func(i, j int) bool {
		return res.Rows[i].Inversions < res.Rows[j].Inversions
	})
	return res, nil
}

// runAccuracyBackend executes the shared workload against one backend.
func runAccuracyBackend(sc *AccuracyScenario, backend string) (*AccuracyRow, error) {
	eng := sim.New()
	pol, err := pifo.NewPolicy(sc.Policy, sc.Apps, sc.LinkRateBps)
	if err != nil {
		return nil, err
	}
	row := &AccuracyRow{Backend: backend, AppBps: make([]float64, sc.Apps)}
	appBytes := make([]uint64, sc.Apps)
	digest := fnv.New64a()
	var latSumNs, latN int64
	cfg := pifo.Config{
		Backend:     backend,
		LinkRateBps: sc.LinkRateBps,
		CapPkts:     sc.CapPkts,
		OnDequeue: func(p *packet.Packet, r pifo.Rank) {
			appBytes[int(p.App)%sc.Apps] += uint64(p.WireBytes())
			latSumNs += p.EgressAt - p.SentAt
			latN++
			var buf [40]byte
			putDigest(buf[:], uint64(p.Flow), uint64(p.Seq), uint64(r), uint64(p.EgressAt), p.ID)
			digest.Write(buf[:])
		},
	}
	q, err := pifo.NewQdisc(eng, cfg, pol, dataplane.Callbacks{})
	if err != nil {
		return nil, err
	}
	if sc.Telemetry != nil {
		q.AttachTelemetry(sc.Telemetry)
	}

	alloc := &packet.Alloc{}
	for a := 0; a < sc.Apps; a++ {
		// Each app peaks at 0.65× the link with 50% duty: the aggregate
		// offered load is ~1.3× capacity for Apps=4, forcing the
		// admission filters to choose.
		peak := 2.6 * sc.LinkRateBps / float64(sc.Apps)
		_, err := trafficgen.NewOnOff(eng, alloc, packet.FlowID(a), packet.AppID(a),
			sc.SizeBytes, peak, 200_000, 200_000, 0, sc.DurationNs,
			sc.Seed+uint64(a)*1_000_003, q.Enqueue)
		if err != nil {
			return nil, err
		}
	}
	eng.RunUntil(2 * sc.DurationNs)

	st := q.QdiscStats()
	qs := q.QueueStats()
	row.Delivered = st.Delivered
	row.Dropped = st.Dropped
	row.Inversions = q.Inversions()
	row.RankDrops, row.FullDrops, row.EvictDrops = qs.RankDrops, qs.FullDrops, qs.EvictDrops
	row.PushUps, row.PushDowns = qs.PushUps, qs.PushDowns
	for a := range appBytes {
		row.AppBps[a] = float64(appBytes[a]) * 8 / (float64(sc.DurationNs) / 1e9)
	}
	if latN > 0 {
		row.MeanLatencyUs = float64(latSumNs) / float64(latN) / 1e3
	}
	row.TraceDigest = digest.Sum64()
	return row, nil
}

// putDigest serializes five words little-endian into buf (len ≥ 40).
func putDigest(buf []byte, words ...uint64) {
	for i, w := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(w >> (8 * b))
		}
	}
}

// shares normalizes a bandwidth vector to fractions of its sum.
func shares(bps []float64) []float64 {
	var total float64
	for _, v := range bps {
		total += v
	}
	out := make([]float64, len(bps))
	if total == 0 {
		return out
	}
	for i, v := range bps {
		out[i] = v / total
	}
	return out
}

// FormatAccuracy renders the lab report for the CLI.
func FormatAccuracy(r *AccuracyResult) string {
	sc := r.Scenario
	var sb strings.Builder
	fmt.Fprintf(&sb, "scheduler-accuracy lab — policy=%s link=%.1fGbps apps=%d size=%dB cap=%dpkts duration=%dms seed=%d\n",
		sc.Policy, sc.LinkRateBps/1e9, sc.Apps, sc.SizeBytes, sc.CapPkts, sc.DurationNs/1e6, sc.Seed)
	sb.WriteString("rows ranked by rank-inversion count against the exact-PIFO oracle\n")
	fmt.Fprintf(&sb, "%-8s %10s %9s %11s %12s %9s %9s  %s\n",
		"backend", "delivered", "dropped", "inversions", "adaptations", "enf.err", "lat(µs)", "per-app Mbps")
	for _, row := range r.Rows {
		apps := make([]string, len(row.AppBps))
		for i, bps := range row.AppBps {
			apps[i] = fmt.Sprintf("%.0f", bps/1e6)
		}
		fmt.Fprintf(&sb, "%-8s %10d %9d %11d %7d/%-4d %9.4f %9.1f  [%s]\n",
			row.Backend, row.Delivered, row.Dropped, row.Inversions,
			row.PushUps, row.PushDowns, row.EnforcementErr, row.MeanLatencyUs,
			strings.Join(apps, " "))
	}
	return sb.String()
}
