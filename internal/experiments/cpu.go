package experiments

import (
	"fmt"
	"strings"

	"flowvalve/internal/core"
	"flowvalve/internal/dpdkqos"
	"flowvalve/internal/htb"
	"flowvalve/internal/nic"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// CPURow reports host CPU cores consumed by one scheduler while driving
// the fair-queueing TCP workload — the paper's headline "saves at least
// two CPU cores" (§V, abstract).
type CPURow struct {
	Scheduler string
	LinkGbps  float64
	// ThroughputGbps is the measured aggregate goodput.
	ThroughputGbps float64
	// Cores is host CPU cores dedicated to scheduling: measured cycle
	// consumption for kernel qdiscs, dedicated poll cores for DPDK,
	// zero for FlowValve (the NP does the work).
	Cores float64
	// Note explains the accounting.
	Note string
}

// CPUSavings measures the host scheduling cost of FlowValve, HTB, and the
// DPDK QoS Scheduler at 10G and (HTB excluded) 40G.
func CPUSavings(scale float64) ([]CPURow, error) {
	if scale <= 0 {
		scale = 1
	}
	duration := int64(5e9 * scale)
	var rows []CPURow

	// Skip the first fifth for TCP convergence; align the window to the
	// meter bins so no partial bin is over-weighted.
	binNs := duration / 10
	measure := func(res *Result) float64 {
		return res.Meter.TotalBps(2*binNs, duration) / 1e9
	}

	// FlowValve at 40G: all scheduling on the NIC.
	fvSc, err := fig14Scenario("40gbit", duration)
	if err != nil {
		return nil, err
	}
	fvSc.MeasureLatency = false
	fvSc.SegBytes = 16 * 1024
	fvSc.BinNs = binNs
	fvSc.NIC = nic.Config{WireRateBps: 40e9, WirePorts: 4}
	fvRes, err := RunFlowValveTCP(fvSc)
	if err != nil {
		return nil, err
	}
	rows = append(rows, CPURow{
		Scheduler: "FlowValve", LinkGbps: 40,
		ThroughputGbps: measure(fvRes),
		Cores:          0,
		Note:           "classify+schedule offloaded to the NP",
	})

	// DPDK at 40G: two dedicated poll-mode cores (burned regardless of
	// load — poll mode spins).
	dpSc, err := fig14Scenario("40gbit", duration)
	if err != nil {
		return nil, err
	}
	dpSc.MeasureLatency = false
	dpSc.SegBytes = 1518
	dpSc.BinNs = binNs
	dpRes, err := RunDPDKTCP(dpSc, dpdkqos.Config{LinkRateBps: 40e9, Cores: 2})
	if err != nil {
		return nil, err
	}
	rows = append(rows, CPURow{
		Scheduler: "DPDK QoS", LinkGbps: 40,
		ThroughputGbps: measure(dpRes),
		Cores:          2,
		Note:           "2 dedicated poll-mode cores at 1518B (more for small packets, Fig 13)",
	})

	// HTB at 10G (it cannot enforce policies at 40G): measured cycles
	// behind the qdisc lock.
	htbSc, err := fig14Scenario("10gbit", duration)
	if err != nil {
		return nil, err
	}
	htbSc.MeasureLatency = false
	htbSc.SegBytes = 1518
	htbSc.BinNs = binNs
	htbSc.Tree = fairHTBTree(10e9, 4)
	htbRes, err := RunHTBTCP(htbSc, htb.Config{LinkRateBps: 40e9})
	if err != nil {
		return nil, err
	}
	rows = append(rows, CPURow{
		Scheduler: "HTB", LinkGbps: 10,
		ThroughputGbps: measure(htbRes),
		Cores:          htbRes.CoresUsed,
		Note:           "qdisc lock + enqueue/dequeue cycles at 1518B (cannot drive 40G)",
	})
	return rows, nil
}

// FormatCPU renders the CPU-savings table.
func FormatCPU(rows []CPURow) string {
	var sb strings.Builder
	sb.WriteString("Host CPU cores consumed by packet scheduling\n")
	sb.WriteString(fmt.Sprintf("%-10s %6s %12s %8s  %s\n", "scheduler", "Gbps", "throughput", "cores", "note"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %6.0f %10.2fG %8.2f  %s\n",
			r.Scheduler, r.LinkGbps, r.ThroughputGbps, r.Cores, r.Note))
	}
	sb.WriteString("paper: offloading saves at least two CPU cores at 40Gbps, more as packet rate grows\n")
	return sb.String()
}

// PropagationRow reports the token-rate propagation delay (Fig 10
// analysis) for one tree depth.
type PropagationRow struct {
	Depth      int
	RecoveryMs float64
}

// PropagationDelay measures, for chains of increasing depth, how long a
// leaf's token rate takes to recover after the prior class stops — the
// §IV-D propagation-delay analysis.
func PropagationDelay() ([]PropagationRow, error) {
	var rows []PropagationRow
	for depth := 1; depth <= 4; depth++ {
		ms, err := measurePropagation(depth)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PropagationRow{Depth: depth, RecoveryMs: ms})
	}
	return rows, nil
}

// FormatPropagation renders the propagation table.
func FormatPropagation(rows []PropagationRow) string {
	var sb strings.Builder
	sb.WriteString("Token-rate propagation delay vs tree depth (Fig 10 analysis)\n")
	sb.WriteString(fmt.Sprintf("%6s %14s\n", "depth", "recovery(ms)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%6d %14.1f\n", r.Depth, r.RecoveryMs))
	}
	sb.WriteString("paper: one update stage per level; stages finish within tens of milliseconds\n")
	return sb.String()
}

// measurePropagation builds a priority chain of the given depth
// (hi prio-0 at the top, then a spine of interior classes down to one
// leaf), saturates both, then drops hi's offered rate from 9G to 2G at
// t=2s and reports how long the leaf's θ takes to reflect ≥90% of the
// freed residual — the Fig 10 one-update-stage-per-level delay.
func measurePropagation(depth int) (float64, error) {
	b := tree.NewBuilder().Root("a0", 10e9)
	b.Add(tree.ClassSpec{Name: "hi", Parent: "a0", Prio: 0})
	parent := "a0"
	for d := 1; d <= depth; d++ {
		name := fmt.Sprintf("a%d", d)
		b.Add(tree.ClassSpec{Name: name, Parent: parent, Prio: 1})
		parent = name
	}
	t, err := b.Build()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	s, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return 0, err
	}
	hiLbl, _ := t.LabelByName("hi")
	leafLbl, _ := t.LabelByName(parent)
	leaf, _ := t.Lookup(parent)

	// Constant-rate offered load through the scheduling function; hi
	// steps down from 9G to 2G at changeAt.
	const size = 1500
	changeAt := int64(2e9)
	gapFor := func(rateBps float64) int64 {
		return int64(float64(size*8) / rateBps * 1e9)
	}
	var drive func(lbl *tree.Label, gap func() int64, until int64)
	drive = func(lbl *tree.Label, gap func() int64, until int64) {
		if eng.Now() >= until {
			return
		}
		s.Schedule(lbl, size)
		eng.After(gap(), func() { drive(lbl, gap, until) })
	}
	hiGap := func() int64 {
		if eng.Now() >= changeAt {
			return gapFor(2e9)
		}
		return gapFor(9e9)
	}
	leafGap := func() int64 { return gapFor(10e9) }
	eng.After(0, func() { drive(hiLbl, hiGap, 10e9) })
	eng.After(gapFor(10e9)/2, func() { drive(leafLbl, leafGap, 10e9) })

	eng.RunUntil(changeAt)
	step := int64(100_000) // 0.1ms resolution
	for elapsed := int64(0); elapsed < 5e9; elapsed += step {
		eng.RunUntil(changeAt + elapsed)
		if s.Theta(leaf) >= 0.9*8e9 {
			return float64(elapsed) / 1e6, nil
		}
	}
	return 0, fmt.Errorf("experiments: depth-%d leaf never converged", depth)
}
