package experiments

import (
	"math"
	"testing"
)

// Tests run the figure harnesses at reduced scale (a few simulated
// seconds) and assert the paper's qualitative shapes with generous
// tolerances; the full-scale runs recorded in EXPERIMENTS.md use
// cmd/fvsim.

const testScale = 0.2 // 9 simulated seconds per motivation run

func gbpsNear(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if math.Abs(got-want) > want*tolFrac {
		t.Errorf("%s = %.2fG, want ≈%.2fG (±%.0f%%)", name, got, want, tolFrac*100)
	}
}

// Fig 11(a): FlowValve enforces the motivation policy.
// Windows (scaled): [0,15) NC≈10; [15,30) KVS≈4.67 ML≈2 WS≈3.33;
// [30,45) KVS≈8 ML≈2.
func TestFig11aMotivationShares(t *testing.T) {
	res, err := Fig11a(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the first fifth of each window for TCP convergence.
	w1 := Windows(res, testScale, 4, [][2]int64{{3, 15}, {18, 30}, {33, 45}})

	// Window 1: NC takes all the bandwidth it demands (TCP sawtooth
	// caps a single flow below the shaped rate; the residual work-
	// conserves to the other classes, so NC dominates rather than
	// holding the link exactly).
	var w1total float64
	for _, g := range w1[0].AppGbps {
		w1total += g
	}
	if nc := w1[0].AppGbps[0]; nc < 7.0 || nc < 0.7*w1total {
		t.Errorf("NC in [0,15) = %.2fG of %.2fG total, want ≥7G and dominant", nc, w1total)
	}
	// Window 2: KVS 4.67, ML 2, WS 3.33.
	gbpsNear(t, "KVS [15,30)", w1[1].AppGbps[1], 4.67, 0.25)
	gbpsNear(t, "ML  [15,30)", w1[1].AppGbps[2], 2.0, 0.30)
	gbpsNear(t, "WS  [15,30)", w1[1].AppGbps[3], 3.33, 0.25)
	// Window 3: KVS 8, ML 2.
	gbpsNear(t, "KVS [30,45)", w1[2].AppGbps[1], 8.0, 0.25)
	gbpsNear(t, "ML  [30,45)", w1[2].AppGbps[2], 2.0, 0.30)

	// The policy ceiling must hold: total ≤ 10G (+5%).
	for _, w := range w1 {
		var total float64
		for _, g := range w.AppGbps {
			total += g
		}
		if total > 10.5 {
			t.Errorf("total in [%.0f,%.0f) = %.2fG exceeds the 10G ceiling", w.FromS, w.ToS, total)
		}
	}
}

// Fig 3: kernel HTB fails the same policy in the three documented ways.
func TestFig3HTBInaccuracies(t *testing.T) {
	res, err := Fig3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	w := Windows(res, testScale, 4, [][2]int64{{3, 15}, {18, 30}})

	// (1) NC is not prioritized: it gets far less than the full link.
	if nc := w[0].AppGbps[0]; nc > 6.0 {
		t.Errorf("HTB gave NC %.2fG — model should show the priority failure (<6G)", nc)
	}
	// (2) Ceiling overshoot: total in the busy window exceeds 10G by
	// roughly 15–30%.
	var total float64
	for _, g := range w[1].AppGbps {
		total += g
	}
	if total < 10.8 || total > 13.5 {
		t.Errorf("HTB total = %.2fG, want ≈12G overshoot (10.8–13.5)", total)
	}
	// (3) Priority between KVS and ML ignored: equal split.
	kvs, ml := w[1].AppGbps[1], w[1].AppGbps[2]
	if kvs > 0 && math.Abs(kvs-ml)/math.Max(kvs, ml) > 0.25 {
		t.Errorf("HTB KVS=%.2fG ML=%.2fG, want ≈equal (priority ignored)", kvs, ml)
	}
	// HTB burns host CPU.
	if res.CoresUsed <= 0 {
		t.Error("HTB consumed no host CPU")
	}
}

// Fig 11(b): fair queueing at 40G with staged joins.
func TestFig11bFairQueueing(t *testing.T) {
	res, err := Fig11b(testScale)
	if err != nil {
		t.Fatal(err)
	}
	w := Windows(res, testScale, 4, [][2]int64{{3, 10}, {13, 20}, {23, 30}, {34, 45}})

	// Solo app0 drives ≈ line rate via borrowing.
	if w[0].AppGbps[0] < 30 {
		t.Errorf("solo app0 = %.2fG, want ≈40 (≥30)", w[0].AppGbps[0])
	}
	// Two apps ≈ 20/20.
	gbpsNear(t, "app0 two-way", w[1].AppGbps[0], 20, 0.30)
	gbpsNear(t, "app1 two-way", w[1].AppGbps[1], 20, 0.30)
	// Four apps ≈ 10 each.
	for a := 0; a < 4; a++ {
		gbpsNear(t, "app four-way", w[3].AppGbps[a], 10, 0.30)
	}
	// Line rate within 15%.
	var total float64
	for _, g := range w[3].AppGbps {
		total += g
	}
	if total < 34 {
		t.Errorf("four-way total = %.2fG, want ≈40", total)
	}
}

// Fig 11(c): weighted fair queueing per Fig 12.
func TestFig11cWeightedFairQueueing(t *testing.T) {
	res, err := Fig11c(testScale)
	if err != nil {
		t.Fatal(err)
	}
	w := Windows(res, testScale, 4, [][2]int64{{23, 30}, {33, 45}})

	// With everyone active (App2 joined at 20s): App0 must hold its 20G
	// weighted share undisturbed.
	gbpsNear(t, "app0 all-active", w[0].AppGbps[0], 20, 0.25)
	// After App0 stops at 30s the residual is shared through shadow
	// borrowing: the run stays work-conserving and every class keeps at
	// least its weighted share. (The paper reports an equal three-way
	// split here; per-packet FCFS shadow metering plus TCP converges to
	// a share-proportional split instead — recorded as a deviation in
	// EXPERIMENTS.md.)
	a1, a2, a3 := w[1].AppGbps[1], w[1].AppGbps[2], w[1].AppGbps[3]
	if a1 < 9 {
		t.Errorf("app1 after App0 stop = %.2fG, want ≥ its 10G weighted share", a1)
	}
	for i, g := range []float64{a2, a3} {
		if g < 4.5 {
			t.Errorf("app%d after App0 stop = %.2fG, want ≥ its 5G weighted share", i+2, g)
		}
	}
	if total := a1 + a2 + a3; total < 32 {
		t.Errorf("post-App0 total = %.2fG, want ≈40 (work conservation)", total)
	}
}

func TestFairQueueManyConns(t *testing.T) {
	if testing.Short() {
		t.Skip("many-connection sweep is slow")
	}
	res, err := FairQueueConns(0.1, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := Windows(res, 0.1, 4, [][2]int64{{34, 45}})
	for a := 0; a < 4; a++ {
		gbpsNear(t, "16-conn four-way", w[0].AppGbps[a], 10, 0.35)
	}
}
