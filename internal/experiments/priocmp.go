package experiments

import (
	"fmt"
	"strings"

	"flowvalve/internal/classifier"
	"flowvalve/internal/nic"
	"flowvalve/internal/prio"
	"flowvalve/internal/sched/tree"
)

// PrioCmpRow compares strict-priority enforcement between the kernel
// PRIO qdisc (the second discipline FlowValve offloads) and FlowValve's
// priority classes, under the same two-band TCP workload.
type PrioCmpRow struct {
	Scheduler string
	// HighGbps/LowGbps are the steady shares of the two bands.
	HighGbps float64
	LowGbps  float64
	// HostCores is the host CPU consumed by scheduling.
	HostCores float64
	// MeanDelayUs is the mean one-way delay of delivered packets.
	MeanDelayUs float64
}

// PrioComparison runs the two-band strict-priority workload on both
// schedulers: the high band saturates a 10G link while the low band
// fights for leftovers. Both must enforce priority; the offloaded
// version does it without host cycles and without deep qdisc queues.
func PrioComparison(scale float64) ([]PrioCmpRow, error) {
	if scale <= 0 {
		scale = 1
	}
	duration := int64(4e9 * scale)

	fvRow, err := prioCmpFlowValve(duration)
	if err != nil {
		return nil, fmt.Errorf("priocmp flowvalve: %w", err)
	}
	kRow, err := prioCmpKernel(duration)
	if err != nil {
		return nil, fmt.Errorf("priocmp kernel: %w", err)
	}
	return []PrioCmpRow{fvRow, kRow}, nil
}

func prioCmpTree() *tree.Tree {
	return tree.NewBuilder().
		Root("1:", 10e9).
		Add(tree.ClassSpec{Name: "1:1", Parent: "1:", Prio: 0}).
		Add(tree.ClassSpec{Name: "1:2", Parent: "1:", Prio: 1}).
		MustBuild()
}

func prioCmpApps() []AppSpec {
	return []AppSpec{
		{App: 0, Conns: 2}, // high band, saturating
		{App: 1, Conns: 2}, // low band, fighting for scraps
	}
}

func prioCmpFlowValve(duration int64) (PrioCmpRow, error) {
	t := prioCmpTree()
	res, err := RunFlowValveTCP(TCPScenario{
		DurationNs:     duration,
		BinNs:          duration / 8,
		SegBytes:       1518,
		Apps:           prioCmpApps(),
		Tree:           t,
		Rules:          prioCmpRules(),
		NIC:            nic.Config{WireRateBps: 40e9, WirePorts: 4},
		MeasureLatency: true,
	})
	if err != nil {
		return PrioCmpRow{}, err
	}
	return PrioCmpRow{
		Scheduler:   "FlowValve",
		HighGbps:    res.MeanWindowBps(0, duration/4, duration) / 1e9,
		LowGbps:     res.MeanWindowBps(1, duration/4, duration) / 1e9,
		HostCores:   0,
		MeanDelayUs: res.Latency.MeanUs(),
	}, nil
}

func prioCmpRules() []classifier.Rule {
	return []classifier.Rule{
		{App: 0, Flow: classifier.AnyFlow, Class: "1:1"},
		{App: 1, Flow: classifier.AnyFlow, Class: "1:2"},
	}
}

// prioCmpKernel drives the same workload through the PRIO qdisc model
// via the unified runner (the tree only names the bands; PRIO is
// classless and ignores it).
func prioCmpKernel(duration int64) (PrioCmpRow, error) {
	res, err := RunPrioTCP(TCPScenario{
		DurationNs:     duration,
		BinNs:          duration / 8,
		SegBytes:       1518,
		Apps:           prioCmpApps(),
		Tree:           prioCmpTree(),
		MeasureLatency: true,
	}, prio.Config{Bands: 2, LinkRateBps: 10e9}, nil)
	if err != nil {
		return PrioCmpRow{}, err
	}
	return PrioCmpRow{
		Scheduler:   "kernel PRIO",
		HighGbps:    res.MeanWindowBps(0, duration/4, duration) / 1e9,
		LowGbps:     res.MeanWindowBps(1, duration/4, duration) / 1e9,
		HostCores:   res.CoresUsed,
		MeanDelayUs: res.Latency.MeanUs(),
	}, nil
}

// FormatPrioCmp renders the comparison table.
func FormatPrioCmp(rows []PrioCmpRow) string {
	var sb strings.Builder
	sb.WriteString("Strict-priority enforcement — offloaded vs kernel PRIO (10G, 2 bands)\n")
	sb.WriteString(fmt.Sprintf("%-12s %10s %10s %10s %12s\n",
		"scheduler", "high", "low", "cores", "delay(µs)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-12s %9.2fG %9.2fG %10.2f %12.1f\n",
			r.Scheduler, r.HighGbps, r.LowGbps, r.HostCores, r.MeanDelayUs))
	}
	sb.WriteString("both enforce priority; offloading removes the host cycles and the qdisc queueing delay\n")
	return sb.String()
}
