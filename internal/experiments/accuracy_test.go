package experiments

import (
	"strings"
	"testing"

	"flowvalve/internal/pifo"
	"flowvalve/internal/telemetry"
)

// TestAccuracyLab runs the full backend family on a short trace and pins
// the lab's structural guarantees: the oracle ranks first with zero
// inversions and zero enforcement error, every registered backend
// appears exactly once, and each row's accounting is self-consistent.
func TestAccuracyLab(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := RunAccuracy(AccuracyScenario{DurationNs: 5e6, Seed: 42, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), len(pifo.Backends()); got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}
	if res.Rows[0].Backend != pifo.BackendPIFO {
		t.Fatalf("oracle ranked %q first, want %q", res.Rows[0].Backend, pifo.BackendPIFO)
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		if seen[row.Backend] {
			t.Fatalf("backend %s appears twice", row.Backend)
		}
		seen[row.Backend] = true
		if row.Backend == pifo.BackendPIFO {
			if row.Inversions != 0 {
				t.Errorf("oracle recorded %d inversions, want 0", row.Inversions)
			}
			if row.EnforcementErr != 0 {
				t.Errorf("oracle enforcement error %.4f, want 0", row.EnforcementErr)
			}
		}
		if row.Delivered == 0 {
			t.Errorf("%s delivered nothing", row.Backend)
		}
		if row.Dropped == 0 {
			t.Errorf("%s dropped nothing under 1.3x overload", row.Backend)
		}
		if row.Dropped != row.RankDrops+row.FullDrops+row.EvictDrops {
			t.Errorf("%s drop split %d+%d+%d != total %d", row.Backend,
				row.RankDrops, row.FullDrops, row.EvictDrops, row.Dropped)
		}
		if row.EnforcementErr < 0 || row.EnforcementErr > 1 {
			t.Errorf("%s enforcement error %.4f out of [0,1]", row.Backend, row.EnforcementErr)
		}
	}
	if !seen[pifo.BackendSPPIFO] {
		t.Fatal("sppifo missing from default backend set")
	}
	if !strings.Contains(reg.Dump(), "scheduler=") {
		t.Error("telemetry registry has no scheduler-labelled families")
	}

	out := FormatAccuracy(res)
	for _, want := range []string{"scheduler-accuracy lab", "inversions", "per-app Mbps", pifo.BackendEiffel} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAccuracyDeterministic pins the trace digests: the same seeded
// scenario reproduces bit-identical per-backend delivery traces, and a
// different seed changes them.
func TestAccuracyDeterministic(t *testing.T) {
	sc := AccuracyScenario{DurationNs: 5e6, Seed: 7}
	a, err := RunAccuracy(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAccuracy(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].Backend != b.Rows[i].Backend {
			t.Fatalf("row %d ranking diverged: %s vs %s", i, a.Rows[i].Backend, b.Rows[i].Backend)
		}
		if a.Rows[i].TraceDigest != b.Rows[i].TraceDigest {
			t.Errorf("%s trace digest diverged across identical runs", a.Rows[i].Backend)
		}
	}
	c, err := RunAccuracy(AccuracyScenario{DurationNs: 5e6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, ra := range a.Rows {
		for _, rc := range c.Rows {
			if ra.Backend == rc.Backend && ra.TraceDigest == rc.TraceDigest {
				same++
			}
		}
	}
	if same == len(a.Rows) {
		t.Error("different seeds produced identical traces for every backend")
	}
}

// TestAccuracyRejectsUnknownBackend pins the registry-driven validation.
func TestAccuracyRejectsUnknownBackend(t *testing.T) {
	_, err := RunAccuracy(AccuracyScenario{Backends: []string{"nonesuch"}})
	if err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("got %v, want unknown-backend error", err)
	}
}

// TestAccuracyAddsOracle pins that a backend list without the exact
// PIFO still gets the oracle prepended — enforcement error needs it.
func TestAccuracyAddsOracle(t *testing.T) {
	res, err := RunAccuracy(AccuracyScenario{
		DurationNs: 2e6,
		Backends:   []string{pifo.BackendAIFO},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Backend != pifo.BackendPIFO {
		t.Fatalf("rows %+v: want oracle first plus aifo", res.Rows)
	}
}
