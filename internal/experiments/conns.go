package experiments

import (
	"fmt"
	"math"
	"strings"

	"flowvalve/internal/stats"
)

// ConnsRow is one point of the paper's connection-count robustness sweep
// (§V-A: "we dynamically adjust TCP connection numbers in the range of 4
// to 256 per process... The results remain the same").
type ConnsRow struct {
	ConnsPerApp int
	// AppGbps are the steady-state four-way shares.
	AppGbps [4]float64
	// Jain is Jain's fairness index over the four shares (1.0 = fair).
	Jain float64
	// MaxDevPct is the largest relative deviation of any app from the
	// 10G fair share.
	MaxDevPct float64
}

// ConnsSweep measures the Fig 11(b) four-way fair split at increasing
// connection counts. scale scales the per-point duration (1.0 = 8s).
func ConnsSweep(scale float64, counts []int) ([]ConnsRow, error) {
	if scale <= 0 {
		scale = 1
	}
	if len(counts) == 0 {
		counts = []int{4, 16, 64, 256}
	}
	rows := make([]ConnsRow, 0, len(counts))
	for _, conns := range counts {
		res, err := steadyFairQueue(scale, conns)
		if err != nil {
			return nil, fmt.Errorf("conns sweep %d: %w", conns, err)
		}
		duration := int64(8e9 * scale)
		row := ConnsRow{ConnsPerApp: conns}
		for a := 0; a < 4; a++ {
			g := res.MeanWindowBps(a, duration/4, duration) / 1e9
			row.AppGbps[a] = g
			dev := math.Abs(g-9.81) / 9.81 * 100 // fair share of the 39.2G wire goodput
			if dev > row.MaxDevPct {
				row.MaxDevPct = dev
			}
		}
		row.Jain = stats.JainIndex(row.AppGbps[:])
		rows = append(rows, row)
	}
	return rows, nil
}

// steadyFairQueue runs all four apps from t=0 (no staging) for 8s·scale.
func steadyFairQueue(scale float64, conns int) (*Result, error) {
	sc, err := fig14Scenario("40gbit", int64(8e9*scale))
	if err != nil {
		return nil, err
	}
	sc.MeasureLatency = false
	sc.SegBytes = 16 * 1024
	sc.BinNs = sc.DurationNs / 16
	for i := range sc.Apps {
		sc.Apps[i].Conns = conns
	}
	return RunFlowValveTCP(sc)
}

// FormatConns renders the sweep table.
func FormatConns(rows []ConnsRow) string {
	var sb strings.Builder
	sb.WriteString("Connection-count robustness — 40G fair queueing (§V-A sweep)\n")
	sb.WriteString(fmt.Sprintf("%10s %8s %8s %8s %8s %8s %10s\n",
		"conns/app", "App0", "App1", "App2", "App3", "Jain", "max dev"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%10d %7.2fG %7.2fG %7.2fG %7.2fG %8.4f %9.1f%%\n",
			r.ConnsPerApp, r.AppGbps[0], r.AppGbps[1], r.AppGbps[2], r.AppGbps[3], r.Jain, r.MaxDevPct))
	}
	sb.WriteString("paper: results remain the same from 4 to 256 connections per process\n")
	return sb.String()
}
