package experiments

import (
	"fmt"
	"strings"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/nic"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// ScaleRow is one platform in the §VI "Higher Line rate" projection:
// FlowValve's packet rates on a hypothetical NP as micro-engine count
// and frequency grow.
type ScaleRow struct {
	Label    string
	WireGbps float64
	Cores    int
	FreqMHz  float64
	// Mpps1518 / Mpps64 are measured maxima under the fair-queueing
	// policy.
	Mpps1518 float64
	Mpps64   float64
	// LineRate1518 reports whether 1518B traffic saturates the wire
	// (the paper's 8.33Mpps-at-100G argument).
	LineRate1518 bool
}

// scalePlatforms are the §VI what-if platforms: the calibrated Agilio CX
// 40GbE, the same silicon driving a 100G wire, and a plausible next-gen
// NP (more micro-engines at the 1.2GHz the paper quotes).
var scalePlatforms = []struct {
	label string
	cfg   nic.Config
}{
	{"Agilio-CX-40G (paper)", nic.Config{Cores: 50, CoreFreqHz: 800e6, WireRateBps: 40e9, WirePorts: 4}},
	{"same NP, 100G wire", nic.Config{Cores: 50, CoreFreqHz: 800e6, WireRateBps: 100e9, WirePorts: 4}},
	{"next-gen NP, 100G", nic.Config{Cores: 80, CoreFreqHz: 1.2e9, WireRateBps: 100e9, WirePorts: 4}},
}

// Scale100G measures the §VI projection rows.
func Scale100G(durationNs int64) ([]ScaleRow, error) {
	if durationNs <= 0 {
		durationNs = 20e6
	}
	rows := make([]ScaleRow, 0, len(scalePlatforms))
	for _, p := range scalePlatforms {
		row := ScaleRow{
			Label:    p.label,
			WireGbps: p.cfg.WireRateBps / 1e9,
			Cores:    p.cfg.Cores,
			FreqMHz:  p.cfg.CoreFreqHz / 1e6,
		}
		for _, size := range []int{1518, 64} {
			pps, err := maxRateOn(p.cfg, size, durationNs)
			if err != nil {
				return nil, fmt.Errorf("scale100g %s %dB: %w", p.label, size, err)
			}
			if size == 1518 {
				row.Mpps1518 = pps / 1e6
				line := p.cfg.WireRateBps / float64((1518+packet.WireOverhead)*8)
				row.LineRate1518 = pps >= 0.97*line
			} else {
				row.Mpps64 = pps / 1e6
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// maxRateOn measures the delivered packet rate of a saturated NIC under
// the fair-queueing policy at the platform's wire rate.
func maxRateOn(cfg nic.Config, size int, durationNs int64) (float64, error) {
	rate := fmt.Sprintf("%dgbit", int(cfg.WireRateBps/1e9))
	script, err := fvconf.Parse(fvconf.FairQueueScript(rate, 4))
	if err != nil {
		return 0, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	cls, err := classifier.New(t, rules, script.DefaultClass)
	if err != nil {
		return 0, err
	}
	sched, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return 0, err
	}
	var delivered uint64
	warm := durationNs
	dev, err := nic.New(eng, cfg, cls, sched, nic.Callbacks{
		OnDeliver: func(p *packet.Packet) {
			if p.EgressAt >= warm {
				delivered++
			}
		},
	})
	if err != nil {
		return 0, err
	}
	ecfg := dev.Config()
	procPps := float64(ecfg.Cores) * ecfg.CoreFreqHz / float64(ecfg.Costs.PerPacket(2))
	linePps := ecfg.WireRateBps / float64((size+packet.WireOverhead)*8)
	offeredBps := 1.3 * min(linePps, procPps) * float64(size) * 8
	alloc := &packet.Alloc{}
	if err := saturate4(eng, alloc, size, offeredBps, warm+durationNs, dev.Inject); err != nil {
		return 0, err
	}
	eng.RunUntil(warm + durationNs)
	return float64(delivered) / (float64(durationNs) / 1e9), nil
}

// FormatScale100G renders the projection table.
func FormatScale100G(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("§VI projection — FlowValve on higher-line-rate platforms\n")
	sb.WriteString(fmt.Sprintf("%-22s %6s %6s %8s %12s %10s %10s\n",
		"platform", "Gbps", "MEs", "MHz", "1518B Mpps", "line?", "64B Mpps"))
	for _, r := range rows {
		line := "no"
		if r.LineRate1518 {
			line = "yes"
		}
		sb.WriteString(fmt.Sprintf("%-22s %6.0f %6d %8.0f %12.2f %10s %10.2f\n",
			r.Label, r.WireGbps, r.Cores, r.FreqMHz, r.Mpps1518, line, r.Mpps64))
	}
	sb.WriteString("paper §VI: 100G at 1500B needs only 8.33Mpps — within the measured ≈20Mpps envelope\n")
	return sb.String()
}
