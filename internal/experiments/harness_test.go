package experiments

import (
	"strings"
	"testing"

	"flowvalve/internal/core"
)

func TestFig13PointReferenceValues(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 point is slow")
	}
	// 1518B: both line-rate/CPU-bound values from the paper.
	row, err := Fig13Point(1518, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if row.FlowValveMpps < 3.1 || row.FlowValveMpps > 3.4 {
		t.Errorf("FlowValve@1518B = %.2f Mpps, paper 3.23", row.FlowValveMpps)
	}
	if row.DPDKMpps < 2.1 || row.DPDKMpps > 2.4 {
		t.Errorf("DPDK@1518B = %.2f Mpps, paper 2.25", row.DPDKMpps)
	}
	// 64B: processing-bound.
	row, err = Fig13Point(64, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if row.FlowValveMpps < 18.5 || row.FlowValveMpps > 21 {
		t.Errorf("FlowValve@64B = %.2f Mpps, paper 19.69", row.FlowValveMpps)
	}
	if row.DPDKMpps < 8.5 || row.DPDKMpps > 9.5 {
		t.Errorf("DPDK@64B = %.2f Mpps, paper 9.06", row.DPDKMpps)
	}
	if row.DPDKCoresToMatch < 8 || row.DPDKCoresToMatch > 10 {
		t.Errorf("cores-to-match = %d, paper ≈8", row.DPDKCoresToMatch)
	}
}

func TestFig14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig14 is slow")
	}
	rows, err := Fig14(0.1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig14Row{}
	for _, r := range rows {
		byKey[r.Scheduler+"@"+string(rune('0'+int(r.LinkGbps/10)))] = r
	}
	fv10 := byKey["FlowValve@1"]
	fv40 := byKey["FlowValve@4"]
	htb10 := byKey["HTB@1"]
	// FlowValve lowest at 10G.
	if fv10.MeanUs >= htb10.MeanUs {
		t.Errorf("FlowValve@10G %.1fµs not below HTB %.1fµs", fv10.MeanUs, htb10.MeanUs)
	}
	// 40G floor: 3–6× the 10G figure, around 150µs.
	if fv40.MeanUs < 100 || fv40.MeanUs > 220 {
		t.Errorf("FlowValve@40G mean = %.1fµs, paper ≈161µs", fv40.MeanUs)
	}
	// Variation far below the kernel scheduler's.
	if fv40.StdUs >= htb10.StdUs {
		t.Errorf("FlowValve std %.1fµs not below HTB's %.1fµs", fv40.StdUs, htb10.StdUs)
	}
	if s := FormatFig14(rows); !strings.Contains(s, "FlowValve") {
		t.Error("FormatFig14 missing rows")
	}
}

func TestCPUSavingsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cpu experiment is slow")
	}
	rows, err := CPUSavings(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		switch r.Scheduler {
		case "FlowValve":
			if r.Cores != 0 {
				t.Errorf("FlowValve uses %.2f host cores, want 0", r.Cores)
			}
			if r.ThroughputGbps < 30 {
				t.Errorf("FlowValve@40G drove %.1fG, want ≈39", r.ThroughputGbps)
			}
		case "DPDK QoS":
			if r.Cores < 2 {
				t.Errorf("DPDK cores = %.1f, want ≥2 (the savings claim)", r.Cores)
			}
		case "HTB":
			if r.Cores <= 0 {
				t.Error("HTB reported zero host cores")
			}
		}
	}
	if s := FormatCPU(rows); !strings.Contains(s, "FlowValve") {
		t.Error("FormatCPU missing rows")
	}
}

func TestSingleClassConformanceTight(t *testing.T) {
	errFrac, err := SingleClassConformance(1e9, 2e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if errFrac > 0.01 {
		t.Fatalf("conformance error %.2f%%, want <1%% (§IV-D)", errFrac*100)
	}
	// Under-offered: even tighter.
	errFrac, err = SingleClassConformance(1e9, 0.4e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if errFrac > 0.005 {
		t.Fatalf("under-offered conformance error %.2f%%", errFrac*100)
	}
}

func TestConformanceWithCoarseEpochs(t *testing.T) {
	// Even 1ms epochs keep conformance within a few percent.
	errFrac, err := ConformanceWithConfig(1e9, 2e9, 1e9, core.Config{UpdateIntervalNs: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if errFrac > 0.03 {
		t.Fatalf("1ms-epoch conformance error %.2f%%", errFrac*100)
	}
}

func TestBorrowingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs TCP sims")
	}
	with, err := SoloAppThroughput(true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := SoloAppThroughput(false)
	if err != nil {
		t.Fatal(err)
	}
	if with < 3*without {
		t.Fatalf("borrowing %.1fG vs %.1fG — shadow buckets should roughly 4× a solo app", with, without)
	}
	if without > 11 {
		t.Fatalf("without borrowing the app exceeded its 10G share: %.1fG", without)
	}
}

func TestFlowCacheAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs NIC sims")
	}
	on, err := FlowCacheThroughput(true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := FlowCacheThroughput(false)
	if err != nil {
		t.Fatal(err)
	}
	if on <= off {
		t.Fatalf("cache on %.1f Mpps not above cache off %.1f", on, off)
	}
}

func TestPropagationDelayWithinPaperBound(t *testing.T) {
	rows, err := PropagationDelay()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// "each update stage finishes within tens of milliseconds".
		if r.RecoveryMs <= 0 || r.RecoveryMs > 50 {
			t.Errorf("depth %d recovery = %.1fms, want (0, 50]", r.Depth, r.RecoveryMs)
		}
	}
	if s := FormatPropagation(rows); !strings.Contains(s, "depth") {
		t.Error("FormatPropagation empty")
	}
}

func TestFormatFig13(t *testing.T) {
	s := FormatFig13([]Fig13Row{{SizeBytes: 64, FlowValveMpps: 19.7, DPDKMpps: 9.0, DPDKCores: 4, DPDKCoresToMatch: 9}})
	if !strings.Contains(s, "19.7") || !strings.Contains(s, "paper") {
		t.Fatalf("FormatFig13 output wrong:\n%s", s)
	}
}

func TestFormatWindows(t *testing.T) {
	s := FormatWindows("T", []string{"a", "b"}, []WindowMeans{{FromS: 0, ToS: 1, AppGbps: []float64{1, 2}}})
	if !strings.Contains(s, "T") || !strings.Contains(s, "3.00G") {
		t.Fatalf("FormatWindows output wrong:\n%s", s)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := RunFlowValveTCP(TCPScenario{DurationNs: 1e9}); err == nil {
		t.Fatal("scenario without tree accepted")
	}
}

func TestScale100GProjection(t *testing.T) {
	if testing.Short() {
		t.Skip("scale projection is slow")
	}
	rows, err := Scale100G(10e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// §VI claim: the same NP saturates 100G with 1518B packets because
	// only ≈8.1Mpps are needed.
	for _, r := range rows {
		if !r.LineRate1518 {
			t.Errorf("%s did not reach 1518B line rate (%.2f Mpps)", r.Label, r.Mpps1518)
		}
	}
	// More MEs at higher frequency raise the small-packet rate.
	if rows[2].Mpps64 < 2*rows[0].Mpps64 {
		t.Errorf("next-gen 64B rate %.1f not well above baseline %.1f",
			rows[2].Mpps64, rows[0].Mpps64)
	}
	if s := FormatScale100G(rows); !strings.Contains(s, "100") {
		t.Error("FormatScale100G output empty")
	}
}

func TestExpiryAblationScalesWithThreshold(t *testing.T) {
	fast, err := ExpiryRecovery(10e6)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ExpiryRecovery(200e6)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 3*fast {
		t.Fatalf("recovery fast=%.1fms slow=%.1fms — expiry threshold should dominate", fast, slow)
	}
	if fast > 60 {
		t.Fatalf("10ms-expiry recovery = %.1fms, want tens of ms", fast)
	}
}

func TestRateSampling(t *testing.T) {
	sc, err := motivationScenario(0.05)
	if err != nil {
		t.Fatal(err)
	}
	sc.SampleRatesNs = 100e6
	res, err := RunFlowValveTCP(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) != sc.Tree.Len() {
		t.Fatalf("sampled %d classes, want %d", len(res.Rates), sc.Tree.Len())
	}
	root := res.Rates["1:"]
	if len(root) < 10 {
		t.Fatalf("root samples = %d, want ≥10", len(root))
	}
	for _, smp := range root {
		if smp.ThetaBps < 9e9 || smp.ThetaBps > 11e9 {
			t.Fatalf("root θ = %.2fG, want the fixed 10G", smp.ThetaBps/1e9)
		}
	}
	// NC's Γ must be visible in the samples while it sends.
	var sawNC bool
	for _, smp := range res.Rates["1:1"] {
		if smp.GammaBps > 5e9 {
			sawNC = true
			break
		}
	}
	if !sawNC {
		t.Fatal("NC's measured rate never appeared in the samples")
	}
}

func TestConnsSweepFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("conns sweep is slow")
	}
	rows, err := ConnsSweep(0.15, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Jain < 0.999 {
			t.Errorf("%d conns/app: Jain index %.4f, want ≈1 (equal shares)", r.ConnsPerApp, r.Jain)
		}
		var total float64
		for _, g := range r.AppGbps {
			total += g
		}
		if total < 33 {
			t.Errorf("%d conns/app: total %.1fG, want near line rate", r.ConnsPerApp, total)
		}
	}
	if s := FormatConns(rows); !strings.Contains(s, "conns/app") {
		t.Error("FormatConns empty")
	}
}

func TestPrioComparison(t *testing.T) {
	rows, err := PrioComparison(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Strict priority: the high band dominates ≈10× or more.
		if r.HighGbps < 5*r.LowGbps {
			t.Errorf("%s: high/low = %.2f/%.2f — priority not enforced", r.Scheduler, r.HighGbps, r.LowGbps)
		}
	}
	fv, kernel := rows[0], rows[1]
	if fv.HostCores != 0 {
		t.Errorf("FlowValve used %.2f host cores", fv.HostCores)
	}
	if kernel.HostCores <= 0 {
		t.Error("kernel PRIO reported no host cycles")
	}
	if fv.MeanDelayUs >= kernel.MeanDelayUs {
		t.Errorf("offloaded delay %.1fµs not below kernel's %.1fµs (qdisc queueing)",
			fv.MeanDelayUs, kernel.MeanDelayUs)
	}
	if s := FormatPrioCmp(rows); !strings.Contains(s, "FlowValve") {
		t.Error("FormatPrioCmp empty")
	}
}
