package experiments

import (
	"fmt"
	"strings"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/dpdkqos"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/host"
	"flowvalve/internal/nic"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

// Fig13Row is one row of the paper's Fig 13 table: maximum throughput of
// FlowValve versus the DPDK QoS Scheduler when enforcing fair queueing at
// a fixed packet size.
type Fig13Row struct {
	SizeBytes int
	// FlowValveMpps is the NIC-offloaded rate (host cores: 0).
	FlowValveMpps float64
	// DPDKMpps is the software rate on DPDKCores dedicated poll-mode
	// cores.
	DPDKMpps  float64
	DPDKCores int
	// DPDKCoresToMatch is how many host cores the DPDK scheduler would
	// need to equal FlowValve's rate (0 when even the full host
	// cannot) — the paper's "comes up to using eight CPU cores".
	DPDKCoresToMatch int
}

// Fig13Sizes is the packet-size sweep of the paper's table.
var Fig13Sizes = []int{64, 128, 256, 512, 1024, 1518}

// fig13DPDKCores reproduces the core counts of the paper's setup: small
// packets got four scheduler cores, large packets fewer.
var fig13DPDKCores = map[int]int{
	64: 4, 128: 4, 256: 4, 512: 2, 1024: 2, 1518: 1,
}

// Fig13 measures maximum throughput for every packet size. durationNs is
// the measurement window per point after a warm-up of the same length
// (50ms each is plenty for steady state).
func Fig13(durationNs int64) ([]Fig13Row, error) {
	if durationNs <= 0 {
		durationNs = 50 * 1e6
	}
	rows := make([]Fig13Row, 0, len(Fig13Sizes))
	hostCPU := host.New(host.Config{Cores: 16}) // hypothetical-match pool
	for _, size := range Fig13Sizes {
		fv, err := fig13FlowValve(size, durationNs)
		if err != nil {
			return nil, fmt.Errorf("fig13 flowvalve %dB: %w", size, err)
		}
		cores := fig13DPDKCores[size]
		dp, err := fig13DPDK(size, cores, durationNs)
		if err != nil {
			return nil, fmt.Errorf("fig13 dpdk %dB: %w", size, err)
		}
		row := Fig13Row{
			SizeBytes:     size,
			FlowValveMpps: fv / 1e6,
			DPDKMpps:      dp / 1e6,
			DPDKCores:     cores,
		}
		if n, err := hostCPU.CoresFor(1015, fv); err == nil {
			row.DPDKCoresToMatch = n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// linePps is the theoretical wire packet rate at 40Gbps for a frame size.
func linePps(size int) float64 {
	return 40e9 / float64((size+packet.WireOverhead)*8)
}

// fig13FlowValve saturates the NIC model with fixed-size packets under
// the fair-queueing policy and returns delivered packets/second. The
// NIC is driven and measured purely through the dataplane interface —
// the same path and counter as every other backend.
func fig13FlowValve(size int, durationNs int64) (float64, error) {
	return fig13FlowValveBatched(size, durationNs, 0)
}

// fig13FlowValveBatched is fig13FlowValve with an explicit NIC service
// batch size (0 = model default of 1).
func fig13FlowValveBatched(size int, durationNs int64, batch int) (float64, error) {
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		return 0, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	cls, err := classifier.New(t, rules, script.DefaultClass)
	if err != nil {
		return 0, err
	}
	sched, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return 0, err
	}

	warm := durationNs
	counter := &DeliveredCounter{WarmNs: warm}
	cb := counter.Callbacks()
	dev, err := nic.New(eng, nic.Config{WireRateBps: 40e9, WirePorts: 4, BatchSize: batch},
		cls, sched, nic.Callbacks{OnDeliver: cb.OnDeliver})
	if err != nil {
		return 0, err
	}
	var q dataplane.Qdisc = dev

	// Offered load: 30% above both possible bottlenecks.
	cfg := dev.Config()
	procPps := float64(cfg.Cores) * cfg.CoreFreqHz / float64(cfg.Costs.PerPacket(2))
	offeredPps := 1.3 * min(linePps(size), procPps)
	offeredBps := offeredPps * float64(size) * 8

	alloc := &packet.Alloc{}
	if err := saturate4(eng, alloc, size, offeredBps, warm+durationNs, q.Enqueue); err != nil {
		return 0, err
	}
	eng.RunUntil(warm + durationNs)
	return counter.Pps(durationNs), nil
}

// saturate4 sprays fixed-size packets from four apps at offeredBps total,
// with the apps' emit phases staggered by a quarter interval each —
// phase-locked sources would bias systematic drop patterns against the
// last app in every burst.
func saturate4(eng *sim.Engine, alloc *packet.Alloc, size int, offeredBps float64, stopNs int64, send func(*packet.Packet)) error {
	intervalNs := int64(float64(size*8) / (offeredBps / 4) * 1e9)
	for app := 0; app < 4; app++ {
		flows := make([]packet.FlowID, 4)
		for i := range flows {
			flows[i] = packet.FlowID(app*4 + i)
		}
		start := int64(app) * intervalNs / 4
		if _, err := trafficgen.NewSaturator(eng, alloc, flows, packet.AppID(app), size,
			offeredBps/4, start, stopNs, send); err != nil {
			return err
		}
	}
	return nil
}

// fig13DPDK saturates the DPDK QoS model on the given core count,
// driven and measured through the same dataplane interface and counter
// as the offloaded run.
func fig13DPDK(size, cores int, durationNs int64) (float64, error) {
	eng := sim.New()
	cfg := dpdkqos.Config{
		LinkRateBps: 40e9,
		Cores:       cores,
		Pipes: []dpdkqos.PipeConfig{
			{RateBps: 10e9}, {RateBps: 10e9}, {RateBps: 10e9}, {RateBps: 10e9},
		},
	}.Defaults()
	warm := durationNs
	counter := &DeliveredCounter{WarmNs: warm}
	sched, err := dpdkqos.New(eng, cfg,
		func(p *packet.Packet) int { return int(p.App) },
		counter.Callbacks())
	if err != nil {
		return 0, err
	}
	var q dataplane.Qdisc = sched

	cpu := host.New(cfg.Host)
	procPps := cpu.Capacity(float64(cfg.CyclesPerPkt), cores)
	offeredPps := 1.3 * min(linePps(size), procPps)
	offeredBps := offeredPps * float64(size) * 8

	alloc := &packet.Alloc{}
	if err := saturate4(eng, alloc, size, offeredBps, warm+durationNs, q.Enqueue); err != nil {
		return 0, err
	}
	eng.RunUntil(warm + durationNs)
	return counter.Pps(durationNs), nil
}

// FormatFig13 renders the table next to the paper's reference points.
func FormatFig13(rows []Fig13Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 13 — maximum throughput, fair queueing (Mpps)\n")
	sb.WriteString(fmt.Sprintf("%8s %12s %12s %6s %14s\n",
		"size(B)", "FlowValve", "DPDK QoS", "cores", "cores-to-match"))
	for _, r := range rows {
		match := "-"
		if r.DPDKCoresToMatch > 0 {
			match = fmt.Sprintf("%d", r.DPDKCoresToMatch)
		}
		sb.WriteString(fmt.Sprintf("%8d %12.2f %12.2f %6d %14s\n",
			r.SizeBytes, r.FlowValveMpps, r.DPDKMpps, r.DPDKCores, match))
	}
	sb.WriteString("paper:  1518B 3.23 vs 2.25@1c · 1024B 4.75 vs 4.49@2c · 64B 19.69 vs 9.06@4c (≈8 cores to match)\n")
	return sb.String()
}
