package experiments

import (
	"fmt"

	"flowvalve/internal/faults"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/htb"
	"flowvalve/internal/nic"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/telemetry"
)

// Durations below reproduce the paper's timelines at scale 1.0; tests run
// scaled down. Stage boundaries follow the reconstruction documented in
// EXPERIMENTS.md: all four motivation apps start at 0s, NC stops at 15s,
// WS stops at 30s, the run ends at 45s.

const (
	second = int64(1e9)
)

// ScenarioOption adjusts a figure's scenario before it runs.
type ScenarioOption func(*TCPScenario)

// WithTelemetry attaches a metrics registry (and, for FlowValve runs, an
// optional decision tracer) to a figure's scenario, so the run can be
// scraped live or dumped afterwards.
func WithTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) ScenarioOption {
	return func(sc *TCPScenario) {
		sc.Telemetry = reg
		sc.Tracer = tr
	}
}

// WithNICBatch sets the SmartNIC model's Rx service burst for FlowValve
// runs: workers pull up to n ring packets per service routine and push
// them through the batched classify/schedule path (n ≤ 1 keeps the
// per-packet pipeline).
func WithNICBatch(n int) ScenarioOption {
	return func(sc *TCPScenario) {
		sc.NIC.BatchSize = n
	}
}

// WithFaults injects a fault plan into a figure's scenario. Backends
// without fault hooks (the software baselines) run fault-free.
func WithFaults(p *faults.Plan) ScenarioOption {
	return func(sc *TCPScenario) {
		sc.Faults = p
	}
}

func applyOpts(sc *TCPScenario, opts []ScenarioOption) {
	for _, o := range opts {
		o(sc)
	}
}

func scaled(scale float64, seconds int64) int64 {
	if scale <= 0 {
		scale = 1
	}
	return int64(scale * float64(seconds) * float64(second))
}

// motivationApps is the staged workload of Fig 3 / Fig 11(a).
// Apps: 0=NC, 1=KVS, 2=ML, 3=WS.
func motivationApps(scale float64) []AppSpec {
	return []AppSpec{
		{App: 0, Conns: 1, StartNs: 0, StopNs: scaled(scale, 15)},
		{App: 1, Conns: 1, StartNs: 0, StopNs: scaled(scale, 45)},
		{App: 2, Conns: 1, StartNs: 0, StopNs: scaled(scale, 45)},
		{App: 3, Conns: 1, StartNs: 0, StopNs: scaled(scale, 30)},
	}
}

// motivationScenario compiles the fv motivation policy into a FlowValve
// scenario.
func motivationScenario(scale float64) (TCPScenario, error) {
	script, err := fvconf.Parse(fvconf.MotivationScript)
	if err != nil {
		return TCPScenario{}, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return TCPScenario{}, err
	}
	return TCPScenario{
		DurationNs:   scaled(scale, 45),
		BinNs:        scaled(scale, 1),
		Apps:         motivationApps(scale),
		Tree:         t,
		Rules:        rules,
		DefaultClass: script.DefaultClass,
		// The wire is the 40GbE Netronome card; the 10Gbps limit of
		// the motivation example is purely the policy ceiling. Pinning
		// the wire to the policy rate would make the traffic manager
		// the bottleneck (frame vs wire-overhead accounting) and its
		// uncontrolled tail drops would erode the policy.
		NIC: nic.Config{WireRateBps: 40e9, WirePorts: 4},
	}, nil
}

// Fig11a runs FlowValve on the motivation policy (paper Fig 11(a)),
// sampling the per-class token-rate dynamics (Fig 6-style curves) at
// 100ms resolution.
func Fig11a(scale float64, opts ...ScenarioOption) (*Result, error) {
	sc, err := motivationScenario(scale)
	if err != nil {
		return nil, err
	}
	sc.SampleRatesNs = scaled(scale, 1) / 10
	applyOpts(&sc, opts)
	return RunFlowValveTCP(sc)
}

// htbMotivationTree is the same policy expressed in HTB terms: assured
// rates (the quantum basis) summing to the link, ceilings at the link.
// NC gets a small assured rate plus the top priority — the configuration
// whose borrowing behaviour the paper shows failing.
func htbMotivationTree() *tree.Tree {
	const ceil = 10e9
	return tree.NewBuilder().
		Root("1:", 10e9).
		Add(tree.ClassSpec{Name: "1:1", Parent: "1:", Prio: 0, RateBps: 1e9, CeilBps: ceil}).    // NC
		Add(tree.ClassSpec{Name: "1:2", Parent: "1:", Prio: 1, RateBps: 9e9, CeilBps: ceil}).    // S1
		Add(tree.ClassSpec{Name: "1:30", Parent: "1:2", RateBps: 3e9, CeilBps: ceil}).           // WS
		Add(tree.ClassSpec{Name: "1:21", Parent: "1:2", RateBps: 6e9, CeilBps: ceil}).           // S2
		Add(tree.ClassSpec{Name: "1:40", Parent: "1:21", Prio: 0, RateBps: 3e9, CeilBps: ceil}). // KVS
		Add(tree.ClassSpec{Name: "1:50", Parent: "1:21", Prio: 1, RateBps: 3e9, CeilBps: ceil}). // ML
		MustBuild()
}

// Fig3 runs the kernel HTB baseline on the motivation policy (paper
// Fig 3), exhibiting the three kernel inaccuracies.
func Fig3(scale float64, opts ...ScenarioOption) (*Result, error) {
	sc, err := motivationScenario(scale)
	if err != nil {
		return nil, err
	}
	sc.Tree = htbMotivationTree()
	applyOpts(&sc, opts)
	// The testbed wire is the 40GbE NIC; HTB's 10G ceiling is pure
	// software, which is exactly why it can overshoot to ≈12G.
	return RunHTBTCP(sc, htb.Config{LinkRateBps: 40e9})
}

// Fig11b runs 40Gbps fair queueing with four apps of four TCP connections
// joining at 0/10/20/30s (paper Fig 11(b)).
func Fig11b(scale float64, opts ...ScenarioOption) (*Result, error) {
	return fairQueueRun(scale, 4, opts...)
}

// FairQueueConns is Fig11b with a custom connection count per app — the
// paper's 4..256-connection robustness sweep.
func FairQueueConns(scale float64, conns int, opts ...ScenarioOption) (*Result, error) {
	return fairQueueRun(scale, conns, opts...)
}

func fairQueueRun(scale float64, conns int, opts ...ScenarioOption) (*Result, error) {
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		return nil, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return nil, err
	}
	sc := TCPScenario{
		DurationNs: scaled(scale, 45),
		BinNs:      scaled(scale, 1),
		Apps: []AppSpec{
			{App: 0, Conns: conns, StartNs: 0},
			{App: 1, Conns: conns, StartNs: scaled(scale, 10)},
			{App: 2, Conns: conns, StartNs: scaled(scale, 20)},
			{App: 3, Conns: conns, StartNs: scaled(scale, 30)},
		},
		Tree:         t,
		Rules:        rules,
		DefaultClass: script.DefaultClass,
		NIC:          nic.Config{WireRateBps: 40e9, WirePorts: 4},
	}
	applyOpts(&sc, opts)
	return RunFlowValveTCP(sc)
}

// Fig11c runs 40Gbps weighted fair queueing under the Fig 12 policy:
// App2 appears at 20s (must not disturb App0), App0 stops at 30s (the
// rest share equally — borrowing is unweighted).
func Fig11c(scale float64, opts ...ScenarioOption) (*Result, error) {
	script, err := fvconf.Parse(fvconf.WeightedFQScript("40gbit"))
	if err != nil {
		return nil, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return nil, err
	}
	sc := TCPScenario{
		DurationNs: scaled(scale, 45),
		BinNs:      scaled(scale, 1),
		Apps: []AppSpec{
			{App: 0, Conns: 4, StartNs: 0, StopNs: scaled(scale, 30)},
			{App: 1, Conns: 4, StartNs: 0},
			{App: 2, Conns: 4, StartNs: scaled(scale, 20)},
			{App: 3, Conns: 4, StartNs: 0},
		},
		Tree:         t,
		Rules:        rules,
		DefaultClass: script.DefaultClass,
		NIC:          nic.Config{WireRateBps: 40e9, WirePorts: 4},
	}
	applyOpts(&sc, opts)
	return RunFlowValveTCP(sc)
}

// WindowMeans summarizes a motivation-style result: per-app mean Gbps in
// each [from,to) second window (scaled).
type WindowMeans struct {
	FromS, ToS float64
	// AppGbps is indexed by app number.
	AppGbps []float64
}

// Windows computes per-app means for the given second boundaries, e.g.
// Windows(res, scale, 4, [][2]int64{{2,15},{17,30}}).
func Windows(res *Result, scale float64, apps int, bounds [][2]int64) []WindowMeans {
	out := make([]WindowMeans, 0, len(bounds))
	for _, b := range bounds {
		wm := WindowMeans{
			FromS:   float64(scaled(scale, b[0])) / 1e9,
			ToS:     float64(scaled(scale, b[1])) / 1e9,
			AppGbps: make([]float64, apps),
		}
		for a := 0; a < apps; a++ {
			wm.AppGbps[a] = res.MeanWindowBps(a, scaled(scale, b[0]), scaled(scale, b[1])) / 1e9
		}
		out = append(out, wm)
	}
	return out
}

// FormatFaults renders a faulted run's injection and degradation summary
// (empty string when the run was fault-free).
func FormatFaults(res *Result) string {
	if res.Faults == nil {
		return ""
	}
	s := "faults injected:"
	for _, k := range faults.Kinds() {
		if n := res.Faults.Injected[k]; n > 0 {
			s += fmt.Sprintf(" %s=%d", k, n)
		}
	}
	if res.Faults.Total() == 0 {
		s += " none"
	}
	s += "\n"
	if wd := res.Watchdog; wd != nil {
		s += fmt.Sprintf("watchdog: %d recoveries (mean %.1fms), %d forced refills, %d degraded at end\n",
			wd.Recoveries(), wd.MeanRecoveryNs()/1e6, wd.ForcedRefills(), wd.DegradedNow())
	}
	return s
}

// FormatWindows renders window means as an aligned table.
func FormatWindows(title string, apps []string, wins []WindowMeans) string {
	s := title + "\n"
	s += fmt.Sprintf("%-14s", "window")
	for _, a := range apps {
		s += fmt.Sprintf("%10s", a)
	}
	s += fmt.Sprintf("%10s\n", "total")
	for _, w := range wins {
		s += fmt.Sprintf("%5.1fs-%5.1fs ", w.FromS, w.ToS)
		var total float64
		for _, g := range w.AppGbps {
			s += fmt.Sprintf("%9.2fG", g)
			total += g
		}
		s += fmt.Sprintf("%9.2fG\n", total)
	}
	return s
}
