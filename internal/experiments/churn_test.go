package experiments

import (
	"strings"
	"testing"

	"flowvalve/internal/classifier"
)

// The churn scenario must hold the flow cache at or under its configured
// capacity while serving a flow population several times larger, and —
// being a pure function of the scenario under the DES — reproduce its
// eviction statistics exactly across runs.
func TestFlowCacheChurnBoundedAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("churn runs NIC sims")
	}
	sc := ChurnScenario{
		DurationNs: 10 * 1e6,
		Flows:      16 * 1024,
		Cache:      classifier.CacheConfig{Size: 2048, Shards: 4},
	}
	a, err := RunFlowCacheChurn(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cache.Size > a.Cache.Capacity {
		t.Fatalf("cache size %d exceeds capacity %d", a.Cache.Size, a.Cache.Capacity)
	}
	if a.Cache.Evictions == 0 {
		t.Fatalf("%d flows through a %d-entry cache evicted nothing", sc.Flows, a.Cache.Capacity)
	}
	if a.Qdisc.Delivered == 0 {
		t.Fatal("churn run delivered nothing")
	}

	b, err := RunFlowCacheChurn(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cache != b.Cache || a.Qdisc != b.Qdisc {
		t.Fatalf("identical churn runs diverged:\n%+v\n%+v", a, b)
	}

	out := FormatChurn(a)
	for _, want := range []string{"offered flows", "evictions", "delivered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatChurn output missing %q:\n%s", want, out)
		}
	}
}
