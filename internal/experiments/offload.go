package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"

	"flowvalve/internal/classifier"
	"flowvalve/internal/clock"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/faults"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/host"
	"flowvalve/internal/nic"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
	"flowvalve/internal/tcp"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/token"
	"flowvalve/internal/trafficgen"
)

// OffloadScenario is the elephant/mice churn lab for the offload control
// plane: four apps share the 40G wire under the fair-queue policy, every
// app pushes a handful of saturating elephant flows, and two apps also
// churn through short-lived mouse flows faster than the rule channel
// could ever install them. Each policy row runs the identical seeded
// workload; the oracle row runs with no offload layer at all (every flow
// on the fast path — the pre-scale fiction the paper's prototype assumes)
// and anchors the enforcement-accuracy comparison.
type OffloadScenario struct {
	// DurationNs is the source active period (default 40ms); the run
	// continues briefly past it so queues drain.
	DurationNs int64
	// Seed drives the churn arrival processes (default 1).
	Seed uint64
	// ElephantsPerApp is the number of persistent heavy flows per app
	// (default 8).
	ElephantsPerApp int
	// ElephantBytes / MiceBytes are the frame sizes (defaults 1000/200).
	ElephantBytes, MiceBytes int
	// ChurnFlowsPerSec is the aggregate mouse-flow arrival rate, split
	// across the churn apps (default 200_000 — on the order of the rule
	// channel's entire install budget).
	ChurnFlowsPerSec float64
	// MicePkts is the mean packets per mouse flow (default 8).
	MicePkts float64
	// RuleRatePerSec is the rule-channel budget (default 220_000).
	RuleRatePerSec float64
	// TickNs overrides the controller's control-tick period (0 = the
	// controller default). Shorter ticks matter when mouse lifetimes
	// approach the tick: installs only land on tick boundaries.
	TickNs int64
	// InitialThresholdBytes overrides the controller's starting
	// threshold (0 = the controller default).
	InitialThresholdBytes uint64
	// TableCap is the NIC rule-table capacity (default 256).
	TableCap int
	// TCPFlowsPerApp is the number of closed-loop TCP elephants per app
	// (default 2). They start on the slow path like everything else, so
	// their ramp-up is gated on promotion latency: every slow-path shed
	// halves a window, and a slow install keeps the flow under the
	// host's service floor. Set negative to disable.
	TCPFlowsPerApp int
	// SlowHost is the host CPU behind the slow path (default 2 cores —
	// the cores FlowValve is supposed to save, now the mice's budget).
	SlowHost host.Config
	// SlowPath overrides slow-path tuning beyond the host CPU (Host is
	// always taken from SlowHost; zero fields take nic defaults).
	SlowPath nic.SlowPathConfig
	// Faults, when set, is injected into every row's run (chaos soak).
	Faults *faults.Plan
	// Telemetry, when set, receives each row's metric families.
	Telemetry *telemetry.Registry
}

func (sc *OffloadScenario) defaults() {
	if sc.DurationNs <= 0 {
		sc.DurationNs = 40e6
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.ElephantsPerApp <= 0 {
		sc.ElephantsPerApp = 8
	}
	if sc.ElephantBytes <= 0 {
		sc.ElephantBytes = 1000
	}
	if sc.MiceBytes <= 0 {
		sc.MiceBytes = 200
	}
	if sc.ChurnFlowsPerSec <= 0 {
		sc.ChurnFlowsPerSec = 200_000
	}
	if sc.MicePkts < 1 {
		sc.MicePkts = 8
	}
	if sc.RuleRatePerSec <= 0 {
		sc.RuleRatePerSec = 220_000
	}
	if sc.TableCap <= 0 {
		sc.TableCap = 256
	}
	if sc.TCPFlowsPerApp == 0 {
		sc.TCPFlowsPerApp = 2
	}
	if sc.SlowHost.Cores <= 0 {
		sc.SlowHost.Cores = 2
	}
}

// offloadApps is the fair-queue app count; churnApps of them (the last
// ones) carry the mouse churn on top of their elephants.
const (
	offloadApps = 4
	churnApps   = 2
	// tcpFlowBase keeps the closed-loop elephants' IDs clear of both the
	// open-loop elephants (small IDs) and the churn bases (0x100000+).
	tcpFlowBase = 0x80000
)

// OffloadRow is one threshold policy's scorecard.
type OffloadRow struct {
	// Name identifies the policy variant ("oracle" = no offload layer).
	Name string
	// Delivered/Dropped are the qdisc totals.
	Delivered, Dropped uint64
	// AppBps is each app's delivered goodput in bits/s of wire time.
	AppBps []float64
	// EnforcementErr is the mean absolute difference between this row's
	// per-app bandwidth shares and the oracle's (0 = identical split).
	EnforcementErr float64
	// OffloadFraction is the share of observed bytes that rode the fast
	// path (1 for the oracle by construction).
	OffloadFraction float64
	// SlowShare is the slow-path share of observed packets.
	SlowShare float64
	// ShedRate is the fraction of slow-path packets shed or dropped on
	// the scheduled slow path (0 for the oracle).
	ShedRate float64
	// HostCores is the mean host cores the slow path burned.
	HostCores float64
	// TCPGoodputBps is the aggregate ACKed goodput of the closed-loop
	// TCP elephants (0 when TCPFlowsPerApp disables them).
	TCPGoodputBps float64
	// MeanPromoteNs is the mean latency from a TCP elephant's start to
	// its first rule install (0 for the oracle, where every flow is
	// born on the fast path; -1 if no TCP flow was ever promoted).
	MeanPromoteNs float64
	// Offload is the control plane's end-of-run snapshot (zero-valued
	// with Enabled=false for the oracle).
	Offload dataplane.OffloadStats
	// TraceDigest fingerprints the delivery trace — the determinism
	// hook: identical scenarios must produce identical digests.
	TraceDigest uint64
	// Faults is the number of faults injected into this row's run (0
	// without a plan).
	Faults int64
}

// OffloadResult is the lab report.
type OffloadResult struct {
	Scenario OffloadScenario
	Rows     []OffloadRow
}

// blindAdaptive reproduces the congestion-blind adaptive policy of the
// previous revision: every slow-path watermark is parked above its
// signal's reachable range (a shed rate cannot exceed 1), so the
// controller sees only install-queue and table pressure.
func blindAdaptive() offload.Policy {
	return offload.NewAdaptive(offload.AdaptiveConfig{
		ShedHi: 2, HostHi: 1e9, BacklogHi: 1e9,
	})
}

// fedAdaptive is the congestion-fed controller under test: default
// watermarks, slow-path pain pulls the threshold down.
func fedAdaptive() offload.Policy {
	return offload.NewAdaptive(offload.AdaptiveConfig{})
}

// offloadPolicies returns the row specs: the oracle anchor first, then
// the threshold policies under test. A fresh Policy per run — policies
// are stateless today, but the contract doesn't promise it.
func offloadPolicies() []struct {
	name string
	pol  func() offload.Policy
} {
	return []struct {
		name string
		pol  func() offload.Policy
	}{
		{"oracle", nil},
		{"static-2k", func() offload.Policy { return offload.NewStatic(2 << 10) }},
		{"static-128k", func() offload.Policy { return offload.NewStatic(128 << 10) }},
		{"adaptive-blind", blindAdaptive},
		{"adaptive-fed", fedAdaptive},
	}
}

// RunOffload executes the lab: one independent seeded DES run per policy
// over the identical workload, then enforcement scoring against the
// oracle row.
func RunOffload(sc OffloadScenario) (*OffloadResult, error) {
	sc.defaults()
	res := &OffloadResult{Scenario: sc}
	for _, spec := range offloadPolicies() {
		var pol offload.Policy
		if spec.pol != nil {
			pol = spec.pol()
		}
		row, err := runOffloadRow(&sc, spec.name, pol)
		if err != nil {
			return nil, fmt.Errorf("experiments: offload %s: %w", spec.name, err)
		}
		res.Rows = append(res.Rows, *row)
	}

	// Enforcement error against the oracle (always row 0).
	oracleShare := shares(res.Rows[0].AppBps)
	for i := range res.Rows {
		res.Rows[i].EnforcementErr = shareDistance(shares(res.Rows[i].AppBps), oracleShare)
	}
	return res, nil
}

// runOffloadRow executes the shared workload against one policy variant
// (nil policy = oracle, no offload layer attached).
func runOffloadRow(sc *OffloadScenario, name string, pol offload.Policy) (*OffloadRow, error) {
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", offloadApps))
	if err != nil {
		return nil, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	cls, err := classifier.New(t, rules, script.DefaultClass)
	if err != nil {
		return nil, err
	}
	// The injector is built before the scheduler so a clock-jitter plan
	// can interpose on the clock the scheduler reads (the DES keeps its
	// own causally-ordered time).
	var inj *faults.Injector
	var clk clock.Clock = eng.Clock()
	if sc.Faults != nil {
		inj, err = faults.NewInjector(eng, *sc.Faults)
		if err != nil {
			return nil, err
		}
		if sc.Faults.Has(faults.KindClockJitter) {
			jc := token.NewJitteredClock(clk)
			inj.Register(jc)
			clk = jc
		}
	}
	sched, err := core.New(t, clk, core.Config{})
	if err != nil {
		return nil, err
	}

	row := &OffloadRow{Name: name, AppBps: make([]float64, offloadApps)}
	appBytes := make([]uint64, offloadApps)
	digest := fnv.New64a()
	tcpSet := tcp.NewSet()
	cb := nic.Callbacks{
		OnDeliver: func(p *packet.Packet) {
			appBytes[int(p.App)%offloadApps] += uint64(p.WireBytes())
			var buf [40]byte
			putDigest(buf[:], uint64(p.Flow), uint64(p.App), uint64(p.Seq), uint64(p.EgressAt), p.ID)
			digest.Write(buf[:])
			tcpSet.OnDeliver(p)
		},
		OnDrop: func(p *packet.Packet, _ nic.DropReason) { tcpSet.OnDrop(p) },
	}
	dev, err := nic.New(eng, nic.Config{WireRateBps: 40e9, WirePorts: offloadApps}, cls, sched, cb)
	if err != nil {
		return nil, err
	}
	// tcpStart maps each closed-loop elephant to its start time; the
	// install hook consumes an entry on the flow's FIRST promotion, so
	// the mean measures cold-start promotion latency, not re-promotion.
	tcpStart := make(map[packet.FlowID]int64)
	var promoteSum float64
	var promoted int
	if pol != nil {
		ctl, err := offload.New(offload.Config{
			TableCap:              sc.TableCap,
			RulesPerSec:           sc.RuleRatePerSec,
			TickNs:                sc.TickNs,
			InitialThresholdBytes: sc.InitialThresholdBytes,
			Policy:                pol,
			OnInstall: func(app packet.AppID, flow packet.FlowID) {
				if start, ok := tcpStart[flow]; ok {
					promoteSum += float64(eng.Now() - start)
					promoted++
					delete(tcpStart, flow)
				}
			},
		})
		if err != nil {
			return nil, err
		}
		spCfg := sc.SlowPath
		spCfg.Host = sc.SlowHost
		if err := dev.AttachOffload(ctl, spCfg); err != nil {
			return nil, err
		}
	}
	if sc.Telemetry != nil {
		dev.AttachTelemetry(sc.Telemetry)
	}
	if inj != nil {
		if err := dev.ApplyFaults(inj); err != nil {
			return nil, err
		}
		if err := inj.Arm(); err != nil {
			return nil, err
		}
	}

	var q dataplane.Qdisc = dev
	alloc := &packet.Alloc{}
	// Elephants: every app saturates its fair share and then some — the
	// aggregate offer is 1.25× the wire, so the scheduler must enforce.
	// Starts are staggered by a few hundred ns per app so the phase-locked
	// CBR emitters don't systematically bias the drop pattern against the
	// last-injected app.
	for app := 0; app < offloadApps; app++ {
		flows := make([]packet.FlowID, sc.ElephantsPerApp)
		for i := range flows {
			flows[i] = packet.FlowID(app*sc.ElephantsPerApp + i)
		}
		if _, err := trafficgen.NewSaturator(eng, alloc, flows, packet.AppID(app),
			sc.ElephantBytes, 1.25*40e9/offloadApps, int64(app)*977, sc.DurationNs, q.Enqueue); err != nil {
			return nil, err
		}
	}
	// Closed-loop TCP elephants: their ramp is gated on promotion — a
	// flow stuck on the slow path eats sheds (window halvings) and the
	// host's per-packet service floor until its rule installs.
	var tcpFlows []*tcp.Flow
	for app := 0; sc.TCPFlowsPerApp > 0 && app < offloadApps; app++ {
		for i := 0; i < sc.TCPFlowsPerApp; i++ {
			id := packet.FlowID(tcpFlowBase + app*256 + i)
			f, err := tcp.NewFlow(eng, alloc, id, packet.AppID(app),
				tcp.Config{SegBytes: sc.ElephantBytes}, q.Enqueue)
			if err != nil {
				return nil, err
			}
			tcpSet.Add(f)
			start := int64(app)*977 + int64(i+1)*3001
			tcpStart[id] = start
			f.StartAt(start)
			f.StopAt(sc.DurationNs)
			tcpFlows = append(tcpFlows, f)
		}
	}
	// Mice: the last churnApps apps also churn through short-lived
	// flows; IDs count up from per-app bases far above the elephants.
	for i := 0; i < churnApps; i++ {
		app := offloadApps - churnApps + i
		if _, err := trafficgen.NewChurn(eng, alloc, packet.AppID(app), sc.MiceBytes,
			sc.ChurnFlowsPerSec/churnApps, sc.MicePkts, 2_000,
			packet.FlowID(0x100000*(i+1)), 0, sc.DurationNs,
			sc.Seed+uint64(app)*1_000_003, q.Enqueue); err != nil {
			return nil, err
		}
	}
	eng.RunUntil(sc.DurationNs + 5e6)

	st := q.QdiscStats()
	row.Delivered = st.Delivered
	row.Dropped = st.Dropped
	for a := range appBytes {
		row.AppBps[a] = float64(appBytes[a]) * 8 / (float64(sc.DurationNs) / 1e9)
	}
	row.TraceDigest = digest.Sum64()
	off, ok := q.(dataplane.Offloader)
	if !ok {
		return nil, fmt.Errorf("NIC backend lost the Offloader probe")
	}
	row.Offload = off.OffloadStats()
	if row.Offload.Enabled {
		if tot := row.Offload.FastBytes + row.Offload.SlowBytes; tot > 0 {
			row.OffloadFraction = float64(row.Offload.FastBytes) / float64(tot)
		}
		if tot := row.Offload.FastPkts + row.Offload.SlowPkts; tot > 0 {
			row.SlowShare = float64(row.Offload.SlowPkts) / float64(tot)
		}
		if row.Offload.SlowPkts > 0 {
			row.ShedRate = float64(row.Offload.SlowPathDrops) / float64(row.Offload.SlowPkts)
		}
		if promoted > 0 {
			row.MeanPromoteNs = promoteSum / float64(promoted)
		} else if len(tcpFlows) > 0 {
			row.MeanPromoteNs = -1
		}
	} else {
		row.OffloadFraction = 1
	}
	for _, f := range tcpFlows {
		_, acked, _ := f.Counters()
		row.TCPGoodputBps += float64(acked) * float64(sc.ElephantBytes) * 8 /
			(float64(sc.DurationNs) / 1e9)
	}
	if acct, ok := q.(dataplane.HostAccountant); ok {
		row.HostCores = acct.HostCores(sc.DurationNs)
	}
	if inj != nil {
		row.Faults = inj.Stats().Total()
	}
	return row, nil
}

// FormatOffload renders the lab report for the CLI.
func FormatOffload(r *OffloadResult) string {
	sc := r.Scenario
	var sb strings.Builder
	fmt.Fprintf(&sb, "offload control plane — elephant/mice churn, 40G fair queue, %d apps (%d churning)\n",
		offloadApps, churnApps)
	fmt.Fprintf(&sb, "churn=%.0fk flows/s rule-budget=%.0fk/s table=%d slow-host=%d cores duration=%dms seed=%d\n",
		sc.ChurnFlowsPerSec/1e3, sc.RuleRatePerSec/1e3, sc.TableCap, sc.SlowHost.Cores,
		sc.DurationNs/1e6, sc.Seed)
	sb.WriteString("enforcement error is the per-app share distance from the oracle (no offload layer);\n")
	sb.WriteString("shed%% is the slow-path drop fraction, promote the mean TCP cold-start install latency\n")
	fmt.Fprintf(&sb, "%-14s %10s %9s %8s %8s %7s %9s %9s %7s %9s %9s %7s  %s\n",
		"policy", "delivered", "dropped", "offload", "slow", "cores", "installs", "demotions",
		"shed%", "tcp-Mbps", "promote", "enf.err", "per-app Mbps")
	for _, row := range r.Rows {
		apps := make([]string, len(row.AppBps))
		for i, bps := range row.AppBps {
			apps[i] = fmt.Sprintf("%.0f", bps/1e6)
		}
		promote := "-"
		if row.MeanPromoteNs > 0 {
			promote = fmt.Sprintf("%.0fµs", row.MeanPromoteNs/1e3)
		} else if row.MeanPromoteNs < 0 {
			promote = "never"
		}
		fmt.Fprintf(&sb, "%-14s %10d %9d %7.1f%% %7.1f%% %7.2f %9d %9d %6.2f%% %9.0f %9s %7.4f  [%s]\n",
			row.Name, row.Delivered, row.Dropped, row.OffloadFraction*100, row.SlowShare*100,
			row.HostCores, row.Offload.Installs, row.Offload.Demotions,
			row.ShedRate*100, row.TCPGoodputBps/1e6, promote,
			row.EnforcementErr, strings.Join(apps, " "))
	}
	return sb.String()
}

// OffloadSweepPoint is one (rule-table capacity, churn rate) cell of the
// enforcement sweep: the congestion-blind adaptive policy of the prior
// revision against the congestion-fed one, both scored against the
// matching churn's oracle run.
type OffloadSweepPoint struct {
	TableCap         int
	ChurnFlowsPerSec float64
	Blind, Fed       OffloadRow
}

// OffloadSweepResult is the capacity × churn enforcement sweep report.
type OffloadSweepResult struct {
	Scenario OffloadScenario
	// Oracles holds one anchor row per churn rate, in churn order.
	Oracles []OffloadRow
	Points  []OffloadSweepPoint
}

// RunOffloadSweep measures end-to-end enforcement error and slow-path
// shed rate across rule-table capacities and churn rates: per churn rate
// one oracle anchor (no offload layer), then per capacity a blind and a
// fed adaptive run over the identical seeded workload.
func RunOffloadSweep(sc OffloadScenario, tableCaps []int, churns []float64) (*OffloadSweepResult, error) {
	// The sweep regime is tuned so the congestion signal is the live
	// control knob rather than a bystander: mice live a few hundred µs
	// (promotable within a 100µs control tick, unlike the headline
	// lab's sub-tick mice), the aggregate mouse packet rate overloads
	// the slow-path cores, and the threshold starts high — a blind
	// controller whose table occupancy settles between its watermarks
	// freezes there and never promotes the load off the pained host.
	if sc.MicePkts == 0 {
		sc.MicePkts = 100
	}
	if sc.TickNs == 0 {
		sc.TickNs = 100_000
	}
	if sc.InitialThresholdBytes == 0 {
		sc.InitialThresholdBytes = 1 << 20
	}
	sc.defaults()
	if len(tableCaps) == 0 {
		tableCaps = []int{64, 128, 256}
	}
	// Churn rates are chosen to overload the slow-path cores (each
	// mouse is ~100 packets): promotion then removes arrivals from an
	// overloaded queue, so sheds fall faster than arrivals.
	if len(churns) == 0 {
		churns = []float64{40_000, 80_000, 160_000}
	}
	res := &OffloadSweepResult{Scenario: sc}
	for _, churn := range churns {
		csc := sc
		csc.ChurnFlowsPerSec = churn
		oracle, err := runOffloadRow(&csc, "oracle", nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: offload sweep oracle churn=%.0f: %w", churn, err)
		}
		res.Oracles = append(res.Oracles, *oracle)
		oracleShare := shares(oracle.AppBps)
		for _, cap := range tableCaps {
			psc := csc
			psc.TableCap = cap
			pt := OffloadSweepPoint{TableCap: cap, ChurnFlowsPerSec: churn}
			for _, v := range []struct {
				pol func() offload.Policy
				out *OffloadRow
			}{
				{blindAdaptive, &pt.Blind},
				{fedAdaptive, &pt.Fed},
			} {
				row, err := runOffloadRow(&psc, "", v.pol())
				if err != nil {
					return nil, fmt.Errorf("experiments: offload sweep cap=%d churn=%.0f: %w", cap, churn, err)
				}
				row.EnforcementErr = shareDistance(shares(row.AppBps), oracleShare)
				*v.out = *row
			}
			pt.Blind.Name = "adaptive-blind"
			pt.Fed.Name = "adaptive-fed"
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// FormatOffloadSweep renders the sweep for the CLI.
func FormatOffloadSweep(r *OffloadSweepResult) string {
	var sb strings.Builder
	sb.WriteString("offload enforcement sweep — congestion-blind vs congestion-fed adaptive threshold\n")
	sb.WriteString("enf.err vs the same-churn oracle; shed% = slow-path drops / slow-path packets\n")
	fmt.Fprintf(&sb, "%8s %7s  %9s %7s %9s %9s  %9s %7s %9s %9s\n",
		"churn/s", "table",
		"blind.err", "shed%", "promote", "thresh",
		"fed.err", "shed%", "promote", "thresh")
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "%8.0f %7d  %9.4f %6.2f%% %9s %9d  %9.4f %6.2f%% %9s %9d\n",
			pt.ChurnFlowsPerSec, pt.TableCap,
			pt.Blind.EnforcementErr, pt.Blind.ShedRate*100,
			promoteLabel(pt.Blind.MeanPromoteNs), pt.Blind.Offload.ThresholdBytes,
			pt.Fed.EnforcementErr, pt.Fed.ShedRate*100,
			promoteLabel(pt.Fed.MeanPromoteNs), pt.Fed.Offload.ThresholdBytes)
	}
	return sb.String()
}

func promoteLabel(ns float64) string {
	switch {
	case ns > 0:
		return fmt.Sprintf("%.0fµs", ns/1e3)
	case ns < 0:
		return "never"
	}
	return "-"
}

// shareDistance is the mean absolute per-app share difference.
func shareDistance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}
