package experiments

import (
	"fmt"
	"strings"
	"testing"

	"flowvalve/internal/faults"
	"flowvalve/internal/nic"
)

// offloadTestScenario is a scaled-down lab (10ms of sources) so the full
// five-row sweep stays test-suite fast.
func offloadTestScenario() OffloadScenario {
	return OffloadScenario{DurationNs: 10e6}
}

// TestOffloadDeterminismAndShape reruns the identical seeded lab and
// requires bit-identical trace digests and control-plane stats per row —
// plus the structural properties each row must have: the oracle anchors
// at offload fraction 1 with zero enforcement error, every policy row
// observes real slow-path traffic and stays within the rule-table bound.
func TestOffloadDeterminismAndShape(t *testing.T) {
	a, err := RunOffload(offloadTestScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOffload(offloadTestScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) || len(a.Rows) < 2 {
		t.Fatalf("row counts: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.TraceDigest != rb.TraceDigest {
			t.Errorf("row %s: trace digest diverged across identical runs (%#x vs %#x)",
				ra.Name, ra.TraceDigest, rb.TraceDigest)
		}
		if ra.Offload != rb.Offload {
			t.Errorf("row %s: offload stats diverged:\n a=%+v\n b=%+v", ra.Name, ra.Offload, rb.Offload)
		}
	}

	oracle := a.Rows[0]
	if oracle.Name != "oracle" || oracle.Offload.Enabled {
		t.Fatalf("row 0 must be the no-offload oracle, got %+v", oracle)
	}
	if oracle.OffloadFraction != 1 || oracle.EnforcementErr != 0 {
		t.Fatalf("oracle anchor broken: fraction=%v err=%v", oracle.OffloadFraction, oracle.EnforcementErr)
	}
	if oracle.Delivered == 0 {
		t.Fatal("oracle delivered nothing")
	}
	for _, row := range a.Rows[1:] {
		if !row.Offload.Enabled {
			t.Errorf("row %s: offload layer not attached", row.Name)
			continue
		}
		if row.OffloadFraction >= 1 || row.OffloadFraction <= 0 {
			t.Errorf("row %s: offload fraction %v, want in (0, 1) under churn", row.Name, row.OffloadFraction)
		}
		if row.Offload.SlowPkts == 0 || row.Offload.Installs == 0 {
			t.Errorf("row %s: control plane idle: %+v", row.Name, row.Offload)
		}
		if row.Offload.Offloaded > row.Offload.TableCap {
			t.Errorf("row %s: %d offloaded flows exceed table capacity %d",
				row.Name, row.Offload.Offloaded, row.Offload.TableCap)
		}
		if row.Delivered == 0 {
			t.Errorf("row %s: delivered nothing", row.Name)
		}
	}

	// The report renderer covers every row.
	out := FormatOffload(a)
	for _, row := range a.Rows {
		if !strings.Contains(out, row.Name) {
			t.Errorf("FormatOffload omits row %q", row.Name)
		}
	}
}

// TestChaosOffloadChurn is the offload-churn soak: randomized fault
// plans (fixed seed matrix) run against every policy row while the churn
// load hammers the install queue, with each seed driving a different
// slow-path qdisc so both host schedulers soak under faults. Graceful
// degradation here means the run completes, faults really were injected,
// rule-table and queue bounds hold, and packets still flow.
func TestChaosOffloadChurn(t *testing.T) {
	const (
		faultFrom = int64(2e6)
		faultTo   = int64(8e6)
	)
	qdiscs := []string{nic.SlowQdiscHTB, nic.SlowQdiscPrio}
	for i, seed := range []uint64{1, 2} {
		qd := qdiscs[i%len(qdiscs)]
		t.Run(fmt.Sprintf("seed=%d/%s", seed, qd), func(t *testing.T) {
			sc := offloadTestScenario()
			sc.SlowPath.Qdisc = qd
			sc.Faults = faults.RandomPlan(seed, faultFrom, faultTo)
			res, err := RunOffload(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range res.Rows {
				if row.Faults == 0 {
					t.Errorf("row %s: randomized plan injected no faults", row.Name)
				}
				if row.Delivered == 0 {
					t.Errorf("row %s: nothing delivered through the faulted run", row.Name)
				}
				if !row.Offload.Enabled {
					continue
				}
				if row.Offload.SlowQdisc != qd {
					t.Errorf("row %s: slow path ran %q, configured %q", row.Name, row.Offload.SlowQdisc, qd)
				}
				if row.Offload.Offloaded > row.Offload.TableCap {
					t.Errorf("row %s: table bound broken under faults: %d > %d",
						row.Name, row.Offload.Offloaded, row.Offload.TableCap)
				}
				if row.Offload.QueueDepth > row.Offload.QueueCap {
					t.Errorf("row %s: install queue over capacity: %d > %d",
						row.Name, row.Offload.QueueDepth, row.Offload.QueueCap)
				}
			}
		})
	}
}

// TestOffloadSweepFedReducesShed is the PR's headline acceptance: on the
// overloaded churn sweep the congestion-fed adaptive policy strictly
// sheds less on the slow path than the congestion-blind policy of the
// previous revision at every (capacity, churn) point — the slow-path
// signals must actually close the loop, not just ride along in
// PolicyInput. The runs are seeded and deterministic, so a strict
// inequality cannot flake.
func TestOffloadSweepFedReducesShed(t *testing.T) {
	res, err := RunOffloadSweep(OffloadScenario{DurationNs: 10e6},
		[]int{64, 128}, []float64{40_000, 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Oracles) != 2 || len(res.Points) != 4 {
		t.Fatalf("sweep shape: %d oracles, %d points", len(res.Oracles), len(res.Points))
	}
	for _, o := range res.Oracles {
		if o.Offload.Enabled || o.Delivered == 0 {
			t.Fatalf("oracle anchor broken: %+v", o.Offload)
		}
	}
	for _, pt := range res.Points {
		if pt.Blind.Offload.SlowPkts == 0 || pt.Fed.Offload.SlowPkts == 0 {
			t.Errorf("cap=%d churn=%.0f: no slow-path traffic observed", pt.TableCap, pt.ChurnFlowsPerSec)
			continue
		}
		if pt.Fed.ShedRate >= pt.Blind.ShedRate {
			t.Errorf("cap=%d churn=%.0f: fed shed rate %.4f not strictly below blind %.4f",
				pt.TableCap, pt.ChurnFlowsPerSec, pt.Fed.ShedRate, pt.Blind.ShedRate)
		}
		if pt.Fed.EnforcementErr < 0 || pt.Blind.EnforcementErr < 0 {
			t.Errorf("cap=%d churn=%.0f: negative enforcement error", pt.TableCap, pt.ChurnFlowsPerSec)
		}
	}
	out := FormatOffloadSweep(res)
	for _, want := range []string{"blind.err", "fed.err", "shed%"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatOffloadSweep missing %q:\n%s", want, out)
		}
	}
}
