package experiments

import (
	"fmt"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/host"
	"flowvalve/internal/nic"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/stats"
)

// Fig13Point measures a single Fig 13 row (one packet size).
func Fig13Point(size int, durationNs int64) (Fig13Row, error) {
	if durationNs <= 0 {
		durationNs = 50e6
	}
	fv, err := fig13FlowValve(size, durationNs)
	if err != nil {
		return Fig13Row{}, err
	}
	cores := fig13DPDKCores[size]
	if cores == 0 {
		cores = 4
	}
	dp, err := fig13DPDK(size, cores, durationNs)
	if err != nil {
		return Fig13Row{}, err
	}
	row := Fig13Row{
		SizeBytes:     size,
		FlowValveMpps: fv / 1e6,
		DPDKMpps:      dp / 1e6,
		DPDKCores:     cores,
	}
	if n, err := host.New(host.Config{Cores: 16}).CoresFor(1015, fv); err == nil {
		row.DPDKCoresToMatch = n
	}
	return row, nil
}

// SingleClassConformance measures §IV-D single-class rate limiting: a
// class granted rateBps, offered offeredBps for durationNs, returning the
// relative error of the admitted rate against min(rate, offered).
func SingleClassConformance(rateBps, offeredBps float64, durationNs int64) (float64, error) {
	return ConformanceWithConfig(rateBps, offeredBps, durationNs, core.Config{})
}

// ConformanceWithConfig is SingleClassConformance with a custom scheduler
// configuration — the update-interval ablation.
func ConformanceWithConfig(rateBps, offeredBps float64, durationNs int64, cfg core.Config) (float64, error) {
	t, err := tree.NewBuilder().
		Root("root", rateBps).
		Add(tree.ClassSpec{Name: "A", Parent: "root"}).
		Build()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	s, err := core.New(t, eng.Clock(), cfg)
	if err != nil {
		return 0, err
	}
	lbl, _ := t.LabelByName("A")

	const size = 1500
	gap := int64(float64(size*8) / offeredBps * 1e9)
	if gap < 1 {
		gap = 1
	}
	var admitted int64
	var drive func()
	drive = func() {
		if eng.Now() >= durationNs {
			return
		}
		if s.Schedule(lbl, size).Verdict == core.Forward {
			admitted += size
		}
		eng.After(gap, drive)
	}
	eng.After(0, drive)
	eng.RunUntil(durationNs)

	measured := float64(admitted) * 8 / (float64(durationNs) / 1e9)
	target := min(rateBps, offeredBps)
	return stats.ConformanceError(measured, target), nil
}

// SoloAppThroughput runs one app's TCP traffic on the 40G fair-queueing
// policy, with or without the mutual borrow labels, and returns the mean
// Gbps — the shadow-bucket work-conservation ablation.
func SoloAppThroughput(borrowing bool) (float64, error) {
	var script string
	if borrowing {
		script = fvconf.FairQueueScript("40gbit", 4)
	} else {
		script = `
fv qdisc add dev nfp0 root handle 1: htb rate 40gbit default 1:10
fv class add dev nfp0 parent 1: classid 1:10 htb weight 1
fv class add dev nfp0 parent 1: classid 1:20 htb weight 1
fv class add dev nfp0 parent 1: classid 1:30 htb weight 1
fv class add dev nfp0 parent 1: classid 1:40 htb weight 1
fv filter add dev nfp0 parent 1: app 0 flowid 1:10
`
	}
	parsed, err := fvconf.Parse(script)
	if err != nil {
		return 0, err
	}
	t, rules, err := parsed.Compile()
	if err != nil {
		return 0, err
	}
	const duration = int64(1.5e9)
	res, err := RunFlowValveTCP(TCPScenario{
		DurationNs:   duration,
		BinNs:        duration / 10,
		Apps:         []AppSpec{{App: 0, Conns: 4}},
		Tree:         t,
		Rules:        rules,
		DefaultClass: parsed.DefaultClass,
		NIC:          nic.Config{WireRateBps: 40e9, WirePorts: 4},
	})
	if err != nil {
		return 0, err
	}
	return res.MeanWindowBps(0, duration/5, duration) / 1e9, nil
}

// FlowCacheThroughput measures NIC packet rate at 64B with the exact-
// match flow cache enabled, or with every lookup paying the rule-walk
// cost (modelling its absence) — the paper's 10× classification-speed
// observation turned into a system-level ablation.
func FlowCacheThroughput(cached bool) (float64, error) {
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		return 0, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	cls, err := classifier.New(t, rules, script.DefaultClass)
	if err != nil {
		return 0, err
	}
	sched, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return 0, err
	}

	cfg := nic.Config{WireRateBps: 40e9, WirePorts: 4}
	if !cached {
		costs := nic.CostModel{}.Defaults()
		costs.CacheHit = costs.CacheMiss
		cfg.Costs = costs
	}
	const durationNs = int64(10e6)
	warm := durationNs
	var delivered uint64
	dev, err := nic.New(eng, cfg, cls, sched, nic.Callbacks{
		OnDeliver: func(p *packet.Packet) {
			if p.EgressAt >= warm {
				delivered++
			}
		},
	})
	if err != nil {
		return 0, err
	}

	ecfg := dev.Config()
	procPps := float64(ecfg.Cores) * ecfg.CoreFreqHz / float64(ecfg.Costs.PerPacket(2))
	offeredBps := 1.3 * procPps * 64 * 8
	alloc := &packet.Alloc{}
	if err := saturate4(eng, alloc, 64, offeredBps, warm+durationNs, dev.Inject); err != nil {
		return 0, err
	}
	eng.RunUntil(warm + durationNs)
	return float64(delivered) / (float64(durationNs) / 1e9) / 1e6, nil
}

// ExpiryRecovery measures how fast a residual-priority class recovers
// the pool after the prior class stops, under a given expiry threshold —
// the subprocedure-3 ablation. It returns the recovery time in
// milliseconds (until the low class's θ reaches 90% of the pool).
func ExpiryRecovery(expireAfterNs int64) (float64, error) {
	t, err := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "hi", Parent: "root", Prio: 0}).
		Add(tree.ClassSpec{Name: "lo", Parent: "root", Prio: 1}).
		Build()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	s, err := core.New(t, eng.Clock(), core.Config{ExpireAfterNs: expireAfterNs})
	if err != nil {
		return 0, err
	}
	hiLbl, _ := t.LabelByName("hi")
	loLbl, _ := t.LabelByName("lo")
	lo, _ := t.Lookup("lo")

	const size = 1500
	hiRate := 9e9
	gap := int64(float64(size*8) / hiRate * 1e9)
	stopHi := int64(1e9)
	var drive func(lbl *tree.Label, until int64)
	drive = func(lbl *tree.Label, until int64) {
		if eng.Now() >= until {
			return
		}
		s.Schedule(lbl, size)
		eng.After(gap, func() { drive(lbl, until) })
	}
	eng.After(0, func() { drive(hiLbl, stopHi) })
	eng.After(gap/2, func() { drive(loLbl, 1<<62) })

	eng.RunUntil(stopHi)
	budget := 4*expireAfterNs + int64(1e9)
	step := int64(1e6)
	for elapsed := int64(0); elapsed < budget; elapsed += step {
		eng.RunUntil(stopHi + elapsed)
		if s.Theta(lo) >= 9e9 {
			return float64(elapsed) / 1e6, nil
		}
	}
	return 0, fmt.Errorf("experiments: lo never recovered with expiry %dms", expireAfterNs/1e6)
}

// ThreadSweepPoint measures the NIC's 64B packet rate with a given
// number of hardware thread contexts per micro-engine — the §III-B
// memory-latency-hiding ablation.
func ThreadSweepPoint(threads int, durationNs int64) (float64, error) {
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		return 0, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	cls, err := classifier.New(t, rules, script.DefaultClass)
	if err != nil {
		return 0, err
	}
	sched, err := core.New(t, eng.Clock(), core.Config{})
	if err != nil {
		return 0, err
	}
	warm := durationNs
	var delivered uint64
	dev, err := nic.New(eng, nic.Config{WireRateBps: 40e9, WirePorts: 4, ThreadsPerME: threads},
		cls, sched, nic.Callbacks{
			OnDeliver: func(p *packet.Packet) {
				if p.EgressAt >= warm {
					delivered++
				}
			},
		})
	if err != nil {
		return 0, err
	}
	cfg := dev.Config()
	procPps := float64(cfg.Cores) * cfg.CoreFreqHz / float64(cfg.Costs.PerPacket(2))
	offeredBps := 1.3 * procPps * 64 * 8
	alloc := &packet.Alloc{}
	if err := saturate4(eng, alloc, 64, offeredBps, warm+durationNs, dev.Inject); err != nil {
		return 0, err
	}
	eng.RunUntil(warm + durationNs)
	return float64(delivered) / (float64(durationNs) / 1e9) / 1e6, nil
}
