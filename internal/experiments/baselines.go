package experiments

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/dpdkqos"
	"flowvalve/internal/htb"
	"flowvalve/internal/packet"
	"flowvalve/internal/prio"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// RunHTBTCP executes a TCP scenario against the kernel-HTB baseline on
// the host model. The scenario's Rules are interpreted as app→class
// mappings (Flow wildcards only).
func RunHTBTCP(sc TCPScenario, cfg htb.Config) (*Result, error) {
	return runQdiscTCP(sc, func(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result) (dataplane.Qdisc, error) {
		classOf, err := appClassMap(*sc)
		if err != nil {
			return nil, err
		}
		return htb.New(eng, cfg, sc.Tree,
			func(p *packet.Packet) *tree.Class { return classOf[int(p.App)] }, cb)
	})
}

// RunPrioTCP executes a TCP scenario against the kernel-PRIO baseline.
// bandOf maps packets to priority bands; nil maps each app index to its
// own band (app 0 = highest priority).
func RunPrioTCP(sc TCPScenario, cfg prio.Config, bandOf func(*packet.Packet) int) (*Result, error) {
	if bandOf == nil {
		bandOf = func(p *packet.Packet) int { return int(p.App) }
	}
	return runQdiscTCP(sc, func(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result) (dataplane.Qdisc, error) {
		return prio.New(eng, cfg, bandOf, cb)
	})
}

// RunDPDKTCP executes a TCP scenario against the DPDK QoS Scheduler
// baseline. Each app maps to one pipe; pipe rates come from the
// scenario's tree leaves (θ primed top-down with everything idle), which
// matches how an operator would configure rte_sched for the same policy.
func RunDPDKTCP(sc TCPScenario, cfg dpdkqos.Config) (*Result, error) {
	return runQdiscTCP(sc, func(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result) (dataplane.Qdisc, error) {
		classOf, err := appClassMap(*sc)
		if err != nil {
			return nil, err
		}
		// Build one pipe per app in app order.
		apps := make([]int, 0, len(sc.Apps))
		for _, a := range sc.Apps {
			apps = append(apps, a.App)
		}
		pipeOf := make(map[int]int, len(apps))
		if len(cfg.Pipes) == 0 {
			shares := leafShares(sc.Tree)
			for i, app := range apps {
				leaf := classOf[app]
				if leaf == nil {
					return nil, fmt.Errorf("experiments: app %d has no class mapping", app)
				}
				cfg.Pipes = append(cfg.Pipes, dpdkqos.PipeConfig{
					RateBps: shares[leaf.ID],
					Weight:  leaf.EffectiveWeight(),
				})
				pipeOf[app] = i
			}
		} else {
			for i, app := range apps {
				pipeOf[app] = i % len(cfg.Pipes)
			}
		}
		return dpdkqos.New(eng, cfg, func(p *packet.Packet) int {
			pipe, ok := pipeOf[int(p.App)]
			if !ok {
				return -1
			}
			return pipe
		}, cb)
	})
}

// appClassMap resolves each app's leaf class from the scenario rules.
func appClassMap(sc TCPScenario) (map[int]*tree.Class, error) {
	m := make(map[int]*tree.Class)
	for _, r := range sc.Rules {
		if r.App < 0 {
			continue
		}
		c, ok := sc.Tree.Lookup(r.Class)
		if !ok {
			return nil, fmt.Errorf("experiments: rule targets unknown class %q", r.Class)
		}
		if _, dup := m[r.App]; !dup {
			m[r.App] = c
		}
	}
	if sc.DefaultClass != "" {
		def, ok := sc.Tree.Lookup(sc.DefaultClass)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown default class %q", sc.DefaultClass)
		}
		for _, a := range sc.Apps {
			if _, exists := m[a.App]; !exists {
				m[a.App] = def
			}
		}
	}
	return m, nil
}

// leafShares computes each leaf's static policy share (θ primed with all
// classes idle): the rate an operator would configure per pipe/class in a
// flat scheduler.
func leafShares(t *tree.Tree) map[tree.ClassID]float64 {
	shares := make(map[tree.ClassID]float64, t.Len())
	shares[t.Root().ID] = t.Root().RateBps
	zero := func(*tree.Class) float64 { return 0 }
	queue := []*tree.Class{t.Root()}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if len(c.Children) == 0 {
			continue
		}
		rates := tree.ChildRates(c, shares[c.ID]/8, zero, nil)
		for i, ch := range c.Children {
			shares[ch.ID] = rates[i] * 8
			queue = append(queue, ch)
		}
	}
	return shares
}
