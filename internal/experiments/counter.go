package experiments

import (
	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
)

// DeliveredCounter counts wire deliveries after a warm-up window. It is
// the shared measurement instrument of the throughput harnesses (Fig 13)
// and cmd/fvbench: every backend's Mpps figure comes from the same
// counter fed by the same callback, never from backend-private stats.
type DeliveredCounter struct {
	// WarmNs is the warm-up horizon; deliveries before it are ignored.
	WarmNs    int64
	delivered uint64
}

// Callbacks returns the dataplane callbacks that feed the counter (drops
// are not counted — a dropped packet is the absence of throughput).
func (d *DeliveredCounter) Callbacks() dataplane.Callbacks {
	return dataplane.Callbacks{
		OnDeliver: func(p *packet.Packet) {
			if p.EgressAt >= d.WarmNs {
				d.delivered++
			}
		},
	}
}

// Delivered returns the packets counted since the warm-up horizon.
func (d *DeliveredCounter) Delivered() uint64 { return d.delivered }

// Pps converts the count to packets/second over the measurement window.
func (d *DeliveredCounter) Pps(windowNs int64) float64 {
	if windowNs <= 0 {
		return 0
	}
	return float64(d.delivered) / (float64(windowNs) / 1e9)
}
