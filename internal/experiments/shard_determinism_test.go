package experiments

import (
	"fmt"
	"testing"

	"flowvalve/internal/fvconf"
	"flowvalve/internal/nic"
	"flowvalve/internal/telemetry"
)

// shardDeterminismRun executes one seeded FlowValve scenario through the
// sharded engine (shards == 0 keeps the plain scheduler) with the full
// observability stack attached, and reduces everything observable to
// strings. Four fair-queue classes with all-pairs borrow labels, so a
// multi-shard partition exercises cross-shard leases.
func shardDeterminismRun(t *testing.T, shards int) (metrics string, traces string, latency string) {
	t.Helper()
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 4))
	if err != nil {
		t.Fatal(err)
	}
	tr, rules, err := script.Compile()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(4, 4096)
	sc := TCPScenario{
		DurationNs: 5e8,
		BinNs:      1e8,
		Apps: []AppSpec{
			{App: 0, Conns: 2, StartNs: 0},
			{App: 1, Conns: 2, StartNs: 0},
			{App: 2, Conns: 1, StartNs: 0},
			{App: 3, Conns: 1, StartNs: 1e8},
		},
		Tree:           tr,
		Rules:          rules,
		DefaultClass:   script.DefaultClass,
		NIC:            nic.Config{WireRateBps: 40e9, WirePorts: 2, BatchSize: 8},
		Shards:         shards,
		Telemetry:      reg,
		Tracer:         tracer,
		MeasureLatency: true,
	}
	res, err := RunFlowValveTCP(sc)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 0 {
		if res.ShardSched == nil {
			t.Fatal("Shards > 0 but Result.ShardSched is nil")
		}
		if res.Sched != nil {
			t.Fatal("sharded run also populated Result.Sched")
		}
		if got := res.ShardSched.Shards(); got != shards {
			t.Fatalf("engine has %d shards, scenario asked for %d", got, shards)
		}
	}
	var lat string
	if res.Latency != nil {
		lat = fmt.Sprintf("n=%d mean=%v std=%v p50=%v p99=%v max=%v",
			res.Latency.Count(), res.Latency.MeanUs(), res.Latency.StdUs(),
			res.Latency.PercentileUs(50), res.Latency.PercentileUs(99), res.Latency.MaxUs())
	}
	return reg.Dump(), fmt.Sprintf("%+v", tracer.Drain()), lat
}

// TestShardedSeededRunsIdentical pins the sharded engine's determinism:
// with shards drained inline inside each DES service event (no worker
// goroutines), two identical seeded runs at any shard count must produce
// bit-identical metric dumps, decision traces, and latency summaries.
func TestShardedSeededRunsIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			m1, t1, l1 := shardDeterminismRun(t, n)
			m2, t2, l2 := shardDeterminismRun(t, n)
			if m1 != m2 {
				t.Errorf("metric dumps differ between identical seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
			}
			if t1 != t2 {
				t.Errorf("decision traces differ between identical seeded runs")
			}
			if l1 != l2 {
				t.Errorf("latency summaries differ:\nrun 1: %s\nrun 2: %s", l1, l2)
			}
			if m1 == "" {
				t.Fatal("metric dump is empty; telemetry was not attached")
			}
		})
	}
}

// TestShardedOneShardMatchesPlain pins the refactor's compatibility
// floor: a single-shard engine must replay the plain scheduler exactly —
// same decisions in the same order, so every observable artifact of a
// seeded run (metric dump, trace ring, latency summary) is bit-identical
// to the pre-refactor single-engine path.
func TestShardedOneShardMatchesPlain(t *testing.T) {
	mp, tp, lp := shardDeterminismRun(t, 0)
	ms, ts, ls := shardDeterminismRun(t, 1)
	if mp != ms {
		t.Errorf("single-shard metric dump diverged from the plain scheduler:\n--- plain ---\n%s\n--- shards=1 ---\n%s", mp, ms)
	}
	if tp != ts {
		t.Errorf("single-shard decision trace diverged from the plain scheduler")
	}
	if lp != ls {
		t.Errorf("latency summaries diverged:\nplain:    %s\nshards=1: %s", lp, ls)
	}
}
