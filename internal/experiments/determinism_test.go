package experiments

import (
	"fmt"
	"testing"

	"flowvalve/internal/fvconf"
	"flowvalve/internal/nic"
	"flowvalve/internal/telemetry"
)

// determinismRun executes one seeded FlowValve scenario with the full
// observability stack attached — metric registry, decision tracer, and
// latency sampling — and reduces everything observable to strings.
func determinismRun(t *testing.T) (metrics string, traces string, latency string) {
	t.Helper()
	script, err := fvconf.Parse(fvconf.FairQueueScript("40gbit", 2))
	if err != nil {
		t.Fatal(err)
	}
	tr, rules, err := script.Compile()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(4, 4096)
	sc := TCPScenario{
		DurationNs: 1e9,
		BinNs:      1e8,
		Apps: []AppSpec{
			{App: 0, Conns: 2, StartNs: 0},
			{App: 1, Conns: 2, StartNs: 0},
		},
		Tree:           tr,
		Rules:          rules,
		DefaultClass:   script.DefaultClass,
		NIC:            nic.Config{WireRateBps: 40e9, WirePorts: 2},
		Telemetry:      reg,
		Tracer:         tracer,
		MeasureLatency: true,
	}
	res, err := RunFlowValveTCP(sc)
	if err != nil {
		t.Fatal(err)
	}
	var lat string
	if res.Latency != nil {
		lat = fmt.Sprintf("n=%d mean=%v std=%v p50=%v p99=%v max=%v",
			res.Latency.Count(), res.Latency.MeanUs(), res.Latency.StdUs(),
			res.Latency.PercentileUs(50), res.Latency.PercentileUs(99), res.Latency.MaxUs())
	}
	return reg.Dump(), fmt.Sprintf("%+v", tracer.Drain()), lat
}

// TestSeededRunsIdenticalWithTelemetry is the regression test for the
// wall-clock leak this PR removed from the update subprocedure: with the
// fv_update_duration_ns histogram attached, epoch-roll timing used to
// read time.Now, so two identical seeded DES runs diverged in their
// metric export. Timing now flows through the scheduler's injected
// clock, which is virtual under the DES — every observable artifact
// (metric dump, trace ring, latency summary) must be bit-identical
// across runs.
func TestSeededRunsIdenticalWithTelemetry(t *testing.T) {
	m1, t1, l1 := determinismRun(t)
	m2, t2, l2 := determinismRun(t)
	if m1 != m2 {
		t.Errorf("metric dumps differ between identical seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if t1 != t2 {
		t.Errorf("decision traces differ between identical seeded runs")
	}
	if l1 != l2 {
		t.Errorf("latency summaries differ between identical seeded runs:\nrun 1: %s\nrun 2: %s", l1, l2)
	}
	if m1 == "" {
		t.Fatal("metric dump is empty; telemetry was not attached")
	}
}
