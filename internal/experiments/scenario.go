// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (§V), plus the ablation studies
// called out in DESIGN.md. Each harness assembles traffic sources, a
// scheduler (FlowValve on the NIC model, or a software baseline on the
// host model), and the measurement instruments, runs the discrete-event
// simulation, and returns printable results.
//
// Every backend — FlowValve on the SmartNIC model, kernel HTB, kernel
// PRIO, the DPDK QoS Scheduler — is driven through the same
// dataplane.Qdisc interface by one shared runner (runQdiscTCP); a run
// differs from another only in its qdiscBuilder. Backend capabilities
// beyond enqueueing (host CPU accounting, telemetry) are discovered via
// the dataplane capability probes, so adding a backend never touches the
// harness.
package experiments

import (
	"fmt"

	"flowvalve/internal/classifier"
	"flowvalve/internal/clock"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/faults"
	"flowvalve/internal/nic"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/stats"
	"flowvalve/internal/tcp"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/token"
)

// AppSpec describes one application's traffic in a TCP scenario.
type AppSpec struct {
	// App is the application / virtual-function index.
	App int
	// Conns is the number of parallel TCP connections.
	Conns int
	// StartNs / StopNs bound the sending period (StopNs 0 = run to the
	// end).
	StartNs int64
	StopNs  int64
}

// TCPScenario is a closed-loop experiment: applications with staged TCP
// connections driven against one scheduler.
type TCPScenario struct {
	// DurationNs is the simulated time.
	DurationNs int64
	// BinNs is the throughput-series bin width (default 1s).
	BinNs int64
	// SegBytes is the TCP segment size handed to the NIC (TSO-style
	// super-segments by default — see the tcp package).
	SegBytes int
	// BaseRTTNs is the flows' path RTT.
	BaseRTTNs int64
	// Apps lists the applications.
	Apps []AppSpec

	// Tree and Rules define the policy (compile them with fvconf or
	// build directly).
	Tree  *tree.Tree
	Rules []classifier.Rule
	// DefaultClass absorbs unmatched traffic (may be empty).
	DefaultClass string

	// NIC configures the SmartNIC model (FlowValve runs); zero takes
	// defaults.
	NIC nic.Config
	// FlowCache sizes the exact-match flow cache of FlowValve runs; the
	// zero value takes the classifier defaults.
	FlowCache classifier.CacheConfig
	// Sched configures the FlowValve scheduler; zero takes defaults.
	Sched core.Config
	// Shards, when positive, runs the FlowValve scheduler through the
	// sharded engine with that many shards (1 reproduces the plain
	// scheduler's decisions through the sharded code path). Zero keeps
	// the plain single-engine scheduler.
	Shards int
	// MeasureLatency records per-packet one-way delay when true.
	MeasureLatency bool
	// Telemetry, when non-nil, receives the scheduler's and NIC model's
	// metric families (the baselines register theirs under the same
	// family names with a distinguishing scheduler label).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil alongside Telemetry, samples FlowValve
	// scheduling decisions into its ring buffer.
	Tracer *telemetry.Tracer
	// SampleRatesNs, when positive, samples every class's granted rate
	// θ and measured rate Γ on this period — the token-rate dynamics
	// behind the figures (Fig 6/10 style curves).
	SampleRatesNs int64

	// Faults, when non-nil, injects the plan's timed faults into the
	// backend. Backends that do not implement dataplane.FaultInjectable
	// (the software baselines) run the scenario fault-free — the probe
	// skips them so comparative sweeps keep working with a plan set.
	Faults *faults.Plan
	// Watchdog overrides the graceful-degradation watchdog's thresholds
	// (nil takes defaults derived from the scheduler's epoch length).
	Watchdog *core.WatchdogConfig
	// WatchdogOff disables the watchdog even when faults are injected —
	// the ablation that shows what degradation looks like without it.
	WatchdogOff bool

	// inj carries the armed injector from the runner to the builder so
	// the builder can register the jitter clock and size the watchdog.
	inj *faults.Injector
}

func (sc *TCPScenario) defaults() {
	if sc.BinNs <= 0 {
		sc.BinNs = 1e9
	}
	if sc.SegBytes <= 0 {
		sc.SegBytes = 16 * 1024
	}
	if sc.BaseRTTNs <= 0 {
		sc.BaseRTTNs = 200_000
	}
}

// Result bundles the measurements of one scenario run.
type Result struct {
	// Meter holds per-app throughput series keyed "app<N>".
	Meter *stats.ThroughputMeter
	// Latency holds one-way delay samples (nil unless requested).
	Latency *stats.LatencyRecorder
	// Qdisc holds the backend-independent enqueue/deliver/drop counters.
	Qdisc dataplane.Stats
	// NICStats is set for FlowValve runs.
	NICStats nic.Stats
	// Sched is the FlowValve scheduler (for snapshots); nil for
	// baselines.
	Sched *core.Scheduler
	// ShardSched is the sharded FlowValve engine when the scenario set
	// Shards > 0 (Sched is then nil).
	ShardSched *core.ShardedScheduler
	// CoresUsed is the host CPU cores consumed by a software baseline
	// over the run (0 for FlowValve — scheduling is offloaded).
	CoresUsed float64
	// DurationNs echoes the simulated time.
	DurationNs int64
	// Rates holds sampled per-class token-rate dynamics, keyed by class
	// name (only when TCPScenario.SampleRatesNs was set).
	Rates map[string][]RateSample
	// Faults reports the injected-fault counters (nil when the scenario
	// ran fault-free or the backend is not fault-injectable).
	Faults *faults.Stats
	// Watchdog is the graceful-degradation watchdog (nil unless faults
	// were injected into a FlowValve run with the watchdog enabled).
	Watchdog *core.Watchdog
	// FlowCache is the backend's flow-cache snapshot at the end of the
	// run (nil for backends without an observable cache).
	FlowCache *dataplane.FlowCacheStats

	// finish runs after the simulation ends, in registration order —
	// builders use it to harvest backend-specific stats.
	finish []func()
}

// RateSample is one telemetry point of a class's rate state.
type RateSample struct {
	AtNs     int64
	ThetaBps float64
	GammaBps float64
}

// AppSeries returns the throughput series name of app n.
func AppSeries(n int) string { return fmt.Sprintf("app%d", n) }

// qdiscBuilder assembles one backend as a dataplane.Qdisc wired to the
// harness callbacks. Builders record backend-specific handles on res
// (res.Sched, res.finish).
type qdiscBuilder func(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result) (dataplane.Qdisc, error)

// runQdiscTCP is the single TCP-scenario runner: it builds the traffic,
// instruments, and backend, runs the DES, and harvests results. All
// backend variation lives in the builder; everything the runner needs
// beyond Enqueue it discovers through the dataplane capability probes.
func runQdiscTCP(sc TCPScenario, build qdiscBuilder) (*Result, error) {
	sc.defaults()
	if sc.Tree == nil {
		return nil, fmt.Errorf("experiments: scenario has no scheduling tree")
	}
	eng := sim.New()

	res := &Result{
		Meter:      stats.NewThroughputMeter(sc.BinNs),
		DurationNs: sc.DurationNs,
	}
	if sc.MeasureLatency {
		res.Latency = stats.NewLatencyRecorder()
	}
	flows := tcp.NewSet()
	cb := dataplane.Callbacks{
		OnDeliver: func(p *packet.Packet) {
			res.Meter.Add(AppSeries(int(p.App)), p.Size, p.EgressAt)
			if res.Latency != nil {
				res.Latency.Record(p.EgressAt - p.SentAt)
			}
			flows.OnDeliver(p)
		},
		OnDrop: func(p *packet.Packet) { flows.OnDrop(p) },
	}

	if sc.Faults != nil {
		inj, err := faults.NewInjector(eng, *sc.Faults)
		if err != nil {
			return nil, err
		}
		sc.inj = inj
	}

	q, err := build(eng, &sc, cb, res)
	if err != nil {
		return nil, err
	}
	if sc.Telemetry != nil {
		if sink, ok := q.(dataplane.TelemetrySink); ok {
			sink.AttachTelemetry(sc.Telemetry)
		}
	}
	if sc.inj != nil {
		if fi, ok := q.(dataplane.FaultInjectable); ok {
			if err := fi.ApplyFaults(sc.inj); err != nil {
				return nil, err
			}
			if err := sc.inj.Arm(); err != nil {
				return nil, err
			}
			sc.inj.AttachTelemetry(sc.Telemetry)
			inj := sc.inj
			res.finish = append(res.finish, func() {
				st := inj.Stats()
				res.Faults = &st
			})
		}
		// Backends without the probe (software baselines) run the
		// scenario fault-free; res.Faults stays nil to signal it.
	}

	if err := buildFlows(eng, sc, flows, q.Enqueue); err != nil {
		return nil, err
	}
	if res.Sched != nil && sc.SampleRatesNs > 0 {
		sched := res.Sched
		res.Rates = make(map[string][]RateSample)
		var sample func()
		sample = func() {
			now := eng.Now()
			for _, c := range sc.Tree.Classes() {
				res.Rates[c.Name] = append(res.Rates[c.Name], RateSample{
					AtNs:     now,
					ThetaBps: sched.Theta(c),
					GammaBps: sched.Gamma(c),
				})
			}
			if now+sc.SampleRatesNs <= sc.DurationNs {
				eng.After(sc.SampleRatesNs, sample)
			}
		}
		eng.After(sc.SampleRatesNs, sample)
	}

	eng.RunUntil(sc.DurationNs)

	res.Qdisc = q.QdiscStats()
	if acct, ok := q.(dataplane.HostAccountant); ok {
		res.CoresUsed = acct.HostCores(sc.DurationNs)
	}
	if fc, ok := q.(dataplane.FlowCacher); ok {
		st := fc.FlowCacheStats()
		res.FlowCache = &st
	}
	for _, f := range res.finish {
		f()
	}
	return res, nil
}

// buildFlowValve assembles the offloaded path: classifier + FlowValve
// core on the SmartNIC model. sched may be nil for the forward-only
// baseline.
func buildFlowValve(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result, withSched bool) (dataplane.Qdisc, error) {
	cls, err := classifier.NewSized(sc.Tree, sc.Rules, sc.DefaultClass, sc.FlowCache)
	if err != nil {
		return nil, err
	}
	var sched *core.Scheduler
	var ssched *core.ShardedScheduler
	if withSched {
		// The scheduler reads the engine clock — unless the fault plan
		// jitters it, in which case the scheduler sees the perturbed
		// time while the DES keeps its own causally-ordered clock.
		var clk clock.Clock = eng.Clock()
		if sc.inj != nil {
			p := sc.inj.Plan()
			if p.Has(faults.KindClockJitter) {
				jc := token.NewJitteredClock(clk)
				sc.inj.Register(jc)
				clk = jc
			}
		}
		if sc.Shards > 0 {
			// Sharded engine: shards are drained inline within each NIC
			// service event, so runs stay deterministic. The watchdog
			// monitors a single engine's epoch health and does not apply
			// here — the reconciler owns cross-shard recovery.
			ssched, err = core.NewSharded(sc.Tree, clk, sc.Sched, core.ShardConfig{Shards: sc.Shards})
			if err != nil {
				return nil, err
			}
			if sc.Telemetry != nil {
				ssched.AttachTelemetry(sc.Telemetry, sc.Tracer)
			}
			res.ShardSched = ssched
			dev, err := nic.New(eng, sc.NIC, cls, ssched, nic.Callbacks{
				OnDeliver: cb.OnDeliver,
				OnDrop:    func(p *packet.Packet, _ nic.DropReason) { cb.OnDrop(p) },
			})
			if err != nil {
				return nil, err
			}
			res.finish = append(res.finish, func() { res.NICStats = dev.Stats() })
			return dev, nil
		}
		sched, err = core.New(sc.Tree, clk, sc.Sched)
		if err != nil {
			return nil, err
		}
		// The scheduler is a separate telemetry source from the NIC
		// (the runner's probe attaches the NIC's); it also takes the
		// decision tracer, which is scheduler-specific.
		if sc.Telemetry != nil {
			sched.AttachTelemetry(sc.Telemetry, sc.Tracer)
		}
		res.Sched = sched

		// Faulted runs get the graceful-degradation watchdog unless the
		// ablation turns it off; its poll loop is a periodic DES event.
		if sc.inj != nil && !sc.WatchdogOff {
			var wcfg core.WatchdogConfig
			if sc.Watchdog != nil {
				wcfg = *sc.Watchdog
			}
			wd := core.NewWatchdog(sched, wcfg)
			if sc.Telemetry != nil {
				wd.AttachTelemetry(sc.Telemetry)
			}
			res.Watchdog = wd
			interval := wd.PollIntervalNs()
			var poll func()
			poll = func() {
				wd.Poll()
				if eng.Now()+interval <= sc.DurationNs {
					eng.After(interval, poll)
				}
			}
			eng.After(interval, poll)
		}
	}
	dev, err := nic.New(eng, sc.NIC, cls, schedOrNil(sched), nic.Callbacks{
		OnDeliver: cb.OnDeliver,
		OnDrop:    func(p *packet.Packet, _ nic.DropReason) { cb.OnDrop(p) },
	})
	if err != nil {
		return nil, err
	}
	res.finish = append(res.finish, func() { res.NICStats = dev.Stats() })
	return dev, nil
}

// schedOrNil converts a possibly-nil *core.Scheduler to the interface
// without producing a non-nil interface holding a nil pointer.
func schedOrNil(s *core.Scheduler) dataplane.Scheduler {
	if s == nil {
		return nil
	}
	return s
}

// RunFlowValveTCP executes a TCP scenario against FlowValve on the
// SmartNIC model.
func RunFlowValveTCP(sc TCPScenario) (*Result, error) {
	return runQdiscTCP(sc, func(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result) (dataplane.Qdisc, error) {
		return buildFlowValve(eng, sc, cb, res, true)
	})
}

// runForwardOnlyTCP executes a TCP scenario against the NIC model with
// no scheduler attached — the paper's "disable FlowValve to simply
// forward packets" baseline. Congestion control is then provided solely
// by the traffic manager's tail drop.
func runForwardOnlyTCP(sc TCPScenario) (*Result, error) {
	return runQdiscTCP(sc, func(eng *sim.Engine, sc *TCPScenario, cb dataplane.Callbacks, res *Result) (dataplane.Qdisc, error) {
		return buildFlowValve(eng, sc, cb, res, false)
	})
}

// buildFlows creates the per-app TCP connections and their start/stop
// schedule, sending packets via inject.
func buildFlows(eng *sim.Engine, sc TCPScenario, flows *tcp.Set, inject func(*packet.Packet)) error {
	alloc := &packet.Alloc{}
	nextFlow := packet.FlowID(0)
	for _, app := range sc.Apps {
		if app.Conns <= 0 {
			return fmt.Errorf("experiments: app %d has no connections", app.App)
		}
		for c := 0; c < app.Conns; c++ {
			f, err := tcp.NewFlow(eng, alloc, nextFlow, packet.AppID(app.App), tcp.Config{
				SegBytes:  sc.SegBytes,
				BaseRTTNs: sc.BaseRTTNs,
			}, inject)
			if err != nil {
				return err
			}
			nextFlow++
			flows.Add(f)
			f.StartAt(app.StartNs)
			stop := app.StopNs
			if stop <= 0 {
				stop = sc.DurationNs
			}
			f.StopAt(stop)
		}
	}
	return nil
}

// MeanWindowBps returns an app's mean rate over [fromNs, toNs).
func (r *Result) MeanWindowBps(app int, fromNs, toNs int64) float64 {
	return r.Meter.MeanBps(AppSeries(app), fromNs, toNs)
}
