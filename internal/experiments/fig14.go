package experiments

import (
	"fmt"
	"strings"

	"flowvalve/internal/dpdkqos"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/htb"
	"flowvalve/internal/nic"
	"flowvalve/internal/sched/tree"
)

// Fig14Row is one bar of the paper's Fig 14: one-way delay of a scheduler
// enforcing fair queueing at a given aggregate bandwidth.
type Fig14Row struct {
	Scheduler string
	LinkGbps  float64
	MeanUs    float64
	StdUs     float64
	P99Us     float64
	Samples   int
}

// Fig14 measures one-way delay for FlowValve (10G and 40G policies),
// kernel HTB (10G only — the paper omits HTB beyond 10G because it cannot
// enforce policies there), and DPDK QoS (10G and 40G). scale scales the
// measurement duration (1.0 ≈ 3 simulated seconds per point).
func Fig14(scale float64) ([]Fig14Row, error) {
	if scale <= 0 {
		scale = 1
	}
	duration := int64(3e9 * scale)
	var rows []Fig14Row

	for _, gbps := range []float64{10, 40} {
		res, err := fig14FlowValve(gbps, duration)
		if err != nil {
			return nil, fmt.Errorf("fig14 flowvalve %gG: %w", gbps, err)
		}
		rows = append(rows, fig14Row("FlowValve", gbps, res))
	}

	// The paper's floor check: FlowValve disabled, plain forwarding at
	// 40G still shows the ≈161µs delay — the bottleneck is elsewhere in
	// the pipeline.
	fwdRes, err := fig14ForwardOnly(duration)
	if err != nil {
		return nil, fmt.Errorf("fig14 forward-only: %w", err)
	}
	rows = append(rows, fig14Row("Fwd-only", 40, fwdRes))

	htbRes, err := fig14HTB(duration)
	if err != nil {
		return nil, fmt.Errorf("fig14 htb: %w", err)
	}
	rows = append(rows, fig14Row("HTB", 10, htbRes))

	for _, gbps := range []float64{10, 40} {
		res, err := fig14DPDK(gbps, duration)
		if err != nil {
			return nil, fmt.Errorf("fig14 dpdk %gG: %w", gbps, err)
		}
		rows = append(rows, fig14Row("DPDK QoS", gbps, res))
	}
	return rows, nil
}

func fig14Row(name string, gbps float64, res *Result) Fig14Row {
	return Fig14Row{
		Scheduler: name,
		LinkGbps:  gbps,
		MeanUs:    res.Latency.MeanUs(),
		StdUs:     res.Latency.StdUs(),
		P99Us:     res.Latency.PercentileUs(99),
		Samples:   res.Latency.Count(),
	}
}

// fig14Scenario is the shared fair-queueing TCP workload: four apps, four
// connections each, wire-sized segments for realistic per-packet delay.
func fig14Scenario(rate string, duration int64) (TCPScenario, error) {
	script, err := fvconf.Parse(fvconf.FairQueueScript(rate, 4))
	if err != nil {
		return TCPScenario{}, err
	}
	t, rules, err := script.Compile()
	if err != nil {
		return TCPScenario{}, err
	}
	return TCPScenario{
		DurationNs: duration,
		BinNs:      duration / 4,
		SegBytes:   1518,
		Apps: []AppSpec{
			{App: 0, Conns: 4}, {App: 1, Conns: 4},
			{App: 2, Conns: 4}, {App: 3, Conns: 4},
		},
		Tree:           t,
		Rules:          rules,
		DefaultClass:   script.DefaultClass,
		MeasureLatency: true,
	}, nil
}

func fig14FlowValve(gbps float64, duration int64) (*Result, error) {
	sc, err := fig14Scenario(fmt.Sprintf("%ggbit", gbps), duration)
	if err != nil {
		return nil, err
	}
	// The wire is always the 40GbE NIC feeding four 10GbE receiver
	// ports; the policy rate is what varies.
	sc.NIC = nic.Config{WireRateBps: 40e9, WirePorts: 4}
	return RunFlowValveTCP(sc)
}

// fig14ForwardOnly drives the same workload through the NIC with the
// scheduler disabled (nil) — pass-through forwarding.
func fig14ForwardOnly(duration int64) (*Result, error) {
	sc, err := fig14Scenario("40gbit", duration)
	if err != nil {
		return nil, err
	}
	sc.NIC = nic.Config{WireRateBps: 40e9, WirePorts: 4}
	return runForwardOnlyTCP(sc)
}

func fig14HTB(duration int64) (*Result, error) {
	sc, err := fig14Scenario("10gbit", duration)
	if err != nil {
		return nil, err
	}
	// HTB semantics: equal assured rates, ceil at the policy rate.
	sc.Tree = fairHTBTree(10e9, 4)
	return RunHTBTCP(sc, htb.Config{LinkRateBps: 40e9})
}

func fig14DPDK(gbps float64, duration int64) (*Result, error) {
	sc, err := fig14Scenario(fmt.Sprintf("%ggbit", gbps), duration)
	if err != nil {
		return nil, err
	}
	cores := 1
	if gbps > 10 {
		cores = 2 // ≈3.3Mpps at 1518B needs two poll cores
	}
	return RunDPDKTCP(sc, dpdkqos.Config{
		LinkRateBps: gbps * 1e9,
		Cores:       cores,
		QueuePkts:   64, // rte_sched default qsize
	})
}

// fairHTBTree builds an HTB fair-queueing tree: n children with equal
// assured rates under a rate-limited root.
func fairHTBTree(rateBps float64, n int) *tree.Tree {
	b := tree.NewBuilder().Root("1:", rateBps)
	for i := 0; i < n; i++ {
		b.Add(tree.ClassSpec{
			Name:    fmt.Sprintf("1:%d", 10*(i+1)),
			Parent:  "1:",
			RateBps: rateBps / float64(n),
			CeilBps: rateBps,
		})
	}
	return b.MustBuild()
}

// FormatFig14 renders the delay table next to the paper's reference
// points.
func FormatFig14(rows []Fig14Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 14 — one-way delay, fair queueing\n")
	sb.WriteString(fmt.Sprintf("%-10s %6s %10s %10s %10s %9s\n",
		"scheduler", "Gbps", "mean(µs)", "std(µs)", "p99(µs)", "samples"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %6.0f %10.2f %10.2f %10.2f %9d\n",
			r.Scheduler, r.LinkGbps, r.MeanUs, r.StdUs, r.P99Us, r.Samples))
	}
	sb.WriteString("paper: FlowValve lowest at 10G; ≈4× higher at 40G (≈161µs pipeline floor) with near-zero variation\n")
	return sb.String()
}
