package pifo

import (
	"math/bits"

	"flowvalve/internal/fvassert"
)

// eiffel is the Eiffel backend ("Eiffel: Efficient and Flexible Software
// Packet Scheduling"): an approximate PIFO built from a circular array
// of rank buckets fronted by a find-first-set bitmap. Ranks quantize
// into fixed-width buckets (BucketNs wide); each bucket is a FIFO ring;
// occupancy is mirrored into a bitmap so dequeue is "find the first set
// bit at or after the cursor" — one or two TrailingZeros64 scans, O(1)
// in the number of queued packets.
//
// The approximation error is purely quantization: ranks within one
// bucket dequeue FIFO regardless of sub-bucket order. Ranks farther than
// nb buckets ahead of the cursor clamp into the last bucket (Eiffel's
// overflow bucket), and late ranks (behind the cursor) clamp to the
// cursor bucket so dequeue order stays monotone in bucket index.
type eiffel struct {
	buckets []entryRing
	bitmap  []uint64
	mask    int   // len(buckets)-1 (power of two)
	granNs  int64 // bucket width in rank units
	cursor  int64 // absolute slot of the current dequeue horizon
	cap     int
	size    int
	st      QueueStats
}

func newEiffel(capPkts, nbuckets int, granNs int64) *eiffel {
	nb := 1
	for nb < nbuckets {
		nb *= 2
	}
	if granNs < 1 {
		granNs = 1
	}
	q := &eiffel{
		buckets: make([]entryRing, nb),
		bitmap:  make([]uint64, (nb+63)/64),
		mask:    nb - 1,
		granNs:  granNs,
		cap:     capPkts,
	}
	want := capPkts / nb
	if want < entryRingMinCap {
		want = entryRingMinCap
	}
	for i := range q.buckets {
		q.buckets[i].presize(want)
	}
	return q
}

var _ rankQueue = (*eiffel)(nil)

// slotFor quantizes a rank into an absolute bucket slot, clamped into
// the live window [cursor, cursor+nb-1].
//
//fv:hotpath
func (q *eiffel) slotFor(r Rank) int64 {
	slot := int64(r) / q.granNs
	if slot < q.cursor {
		slot = q.cursor
	}
	if max := q.cursor + int64(q.mask); slot > max {
		slot = max
	}
	return slot
}

//fv:hotpath
func (q *eiffel) push(e entry) (entry, bool) {
	if q.size >= q.cap {
		q.st.FullDrops++
		return entry{}, false
	}
	slot := q.slotFor(e.rank)
	idx := int(slot) & q.mask
	q.buckets[idx].push(e)
	q.bitmap[idx>>6] |= 1 << uint(idx&63)
	q.size++
	q.st.Admitted++
	return entry{}, true
}

//fv:hotpath
func (q *eiffel) pop() (entry, bool) {
	idx, ok := q.firstSet()
	if !ok {
		return entry{}, false
	}
	e, ok := q.buckets[idx].pop()
	if fvassert.Enabled && !ok {
		fvassert.Failf("pifo: eiffel bitmap bit %d set over empty bucket", idx)
	}
	if !ok {
		return entry{}, false
	}
	if q.buckets[idx].len() == 0 {
		q.bitmap[idx>>6] &^= 1 << uint(idx&63)
	}
	q.size--
	// Advance the cursor to the popped slot: everything earlier is gone.
	delta := int64((idx - int(q.cursor)) & q.mask)
	if fvassert.Enabled && delta < 0 {
		fvassert.Failf("pifo: eiffel cursor moved backwards by %d", -delta)
	}
	q.cursor += delta
	return e, true
}

//fv:hotpath
func (q *eiffel) peek() (entry, bool) {
	idx, ok := q.firstSet()
	if !ok {
		return entry{}, false
	}
	return q.buckets[idx].peek()
}

// firstSet finds the first occupied bucket index at or (circularly)
// after the cursor: mask the cursor word to bits at/after the cursor
// bit, then wrap word by word. At most 2·len(bitmap) word reads, each a
// single TrailingZeros64.
//
//fv:hotpath
func (q *eiffel) firstSet() (int, bool) {
	if q.size == 0 {
		return 0, false
	}
	start := int(q.cursor) & q.mask
	w0 := start >> 6
	words := len(q.bitmap)
	if word := q.bitmap[w0] &^ ((1 << uint(start&63)) - 1); word != 0 {
		return w0<<6 + bits.TrailingZeros64(word), true
	}
	for i := 1; i <= words; i++ {
		w := w0 + i
		if w >= words {
			w -= words
		}
		word := q.bitmap[w]
		if w == w0 {
			// Wrapped back to the cursor word: only bits before the
			// cursor remain unexamined.
			word &= (1 << uint(start&63)) - 1
		}
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
	}
	if fvassert.Enabled {
		fvassert.Failf("pifo: eiffel size %d with empty bitmap", q.size)
	}
	return 0, false
}

//fv:hotpath
func (q *eiffel) len() int { return q.size }

func (q *eiffel) stats() *QueueStats { return &q.st }
