// Package pifo hosts the programmable-scheduler backend family: an
// exact PIFO (the ground-truth priority queue of Sivaraman et al.),
// SP-PIFO's rank-range admission over a bank of strict-priority FIFOs,
// AIFO's and RIFO's single-FIFO sliding-window admission filters, and
// Eiffel's bucketed find-first-set priority queue — plus FlowValve's
// own specialized tail drop re-expressed as a rank function over one
// FIFO, so the paper's scheduler can be compared head-to-head with the
// programmable-scheduling line of work on the same traces.
//
// Every backend speaks both dataplane planes:
//
//   - Qdisc (discrete-event): packets are ranked at Enqueue, held in the
//     backend's queueing structure, and drained to a fixed-rate wire in
//     the backend's dequeue order. This is the plane where scheduling
//     *order* — and therefore rank inversions against the exact-PIFO
//     oracle — is observable.
//
//   - Scheduler (label plane, including ScheduleBatch): an admission-
//     only forwarding decision against a virtual queue drained at the
//     link rate — the same synchronous shape as FlowValve's Algorithm 1,
//     so fvbench-style microbenchmarks and the conformance suite drive
//     all backends through one interface.
//
// What separates the backends is the data structure between those two
// calls; what unifies them is the rank function. A Policy (strict
// priority, weighted fair virtual start times, token-schedule deadlines)
// maps packets to ranks once, and every backend schedules the same rank
// stream with its own fidelity/cost trade-off. The experiments accuracy
// lab (internal/experiments) measures exactly that trade-off.
package pifo

import (
	"fmt"

	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
)

// Rank is a scheduling rank in virtual nanoseconds: lower ranks dequeue
// first. Time-shaped ranks let one Rank type express strict priorities
// (constant small ranks), weighted-fair virtual start times, and
// rate-limit deadlines without rescaling per backend.
type Rank int64

// Policy is one scheduling policy expressed as a rank function — the
// compatibility layer every backend shares. A policy is stateful
// (virtual clocks per sender) and belongs to exactly one consumer: the
// DES Qdisc calls PacketRank single-threaded, and the label-plane Sched
// serializes LabelRank under its own lock. One policy instance must not
// be shared between two running backends.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// PacketRank assigns the rank of p at enqueue time nowNs.
	PacketRank(p *packet.Packet, nowNs int64) Rank
	// LabelRank assigns the rank of a size-byte packet carrying QoS
	// label lbl at nowNs — the Scheduler-plane twin of PacketRank.
	LabelRank(lbl *tree.Label, size int, nowNs int64) Rank
}

// Policy registry names.
const (
	PolicyPrio     = "prio"
	PolicyWFQ      = "wfq"
	PolicyDeadline = "deadline"
)

// PolicyNames lists the rank-function policies, in registry order.
func PolicyNames() []string {
	return []string{PolicyPrio, PolicyWFQ, PolicyDeadline}
}

// NewPolicy builds the named rank policy over n sender slots sharing a
// baseBps link. Slot weights fall out of the slot index — slot 0 is the
// most favored — matching how the accuracy scenarios assign one app per
// slot:
//
//	prio      rank = slot (constant; strict priority by sender)
//	wfq       virtual start times, weight n-slot (slot 0 heaviest)
//	deadline  token-schedule deadlines at rate w_i/Σw · baseBps
func NewPolicy(name string, n int, baseBps float64) (Policy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pifo: policy needs at least one slot")
	}
	if baseBps <= 0 {
		return nil, fmt.Errorf("pifo: policy needs a positive base rate")
	}
	switch name {
	case PolicyPrio:
		prios := make([]int, n)
		for i := range prios {
			prios[i] = i
		}
		return NewStrictPriority(prios), nil
	case PolicyWFQ:
		return NewWFQ(slotWeights(n), baseBps), nil
	case PolicyDeadline:
		w := slotWeights(n)
		var sum float64
		for _, x := range w {
			sum += x
		}
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = baseBps * w[i] / sum
		}
		return NewDeadline(rates), nil
	default:
		return nil, fmt.Errorf("pifo: unknown rank policy %q (want prio | wfq | deadline)", name)
	}
}

// slotWeights is the default descending weight vector n, n-1, ..., 1.
func slotWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(n - i)
	}
	return w
}

// slotter maps both rank planes onto dense policy slots. Packets map by
// sender app; labels map by the leaf's position among the tree's leaves
// once BindTree ran, or by raw ClassID before that.
type slotter struct {
	n      int
	byLeaf []int32 // indexed by tree.ClassID; -1 when unmapped
}

func newSlotter(n int) slotter { return slotter{n: n} }

//fv:hotpath
func (s *slotter) packetSlot(p *packet.Packet) int {
	return int(p.App) % s.n
}

//fv:hotpath
func (s *slotter) labelSlot(lbl *tree.Label) int {
	id := int(lbl.Leaf.ID)
	if id < len(s.byLeaf) {
		if slot := s.byLeaf[id]; slot >= 0 {
			return int(slot)
		}
	}
	return id % s.n
}

// bindTree maps the tree's i-th leaf to slot i%n, so label-plane ranks
// line up with the packet-plane app slots of the accuracy scenarios.
func (s *slotter) bindTree(t *tree.Tree) {
	s.byLeaf = make([]int32, t.Len())
	for i := range s.byLeaf {
		s.byLeaf[i] = -1
	}
	for i, leaf := range t.Leaves() {
		s.byLeaf[leaf.ID] = int32(i % s.n)
	}
}

// TreeBinder is implemented by policies whose label plane can be bound
// to a scheduling tree (mapping leaves onto policy slots). Consumers
// probe for it the same way the dataplane probes optional capabilities.
type TreeBinder interface {
	BindTree(t *tree.Tree)
}

// strictPriority ranks every packet with its sender's static priority:
// the PIFO papers' canonical "rank = class" workload. Ranks do not
// depend on time, so an exact PIFO turns it into ideal strict-priority
// scheduling and the approximate backends expose their inversion cost.
type strictPriority struct {
	slots slotter
	prios []Rank
}

// NewStrictPriority builds a strict-priority rank function; prios[i] is
// slot i's rank (lower dequeues first).
func NewStrictPriority(prios []int) Policy {
	p := &strictPriority{slots: newSlotter(len(prios)), prios: make([]Rank, len(prios))}
	for i, v := range prios {
		p.prios[i] = Rank(v)
	}
	return p
}

func (p *strictPriority) Name() string { return PolicyPrio }

//fv:hotpath
func (p *strictPriority) PacketRank(pkt *packet.Packet, nowNs int64) Rank {
	return p.prios[p.slots.packetSlot(pkt)]
}

//fv:hotpath
func (p *strictPriority) LabelRank(lbl *tree.Label, size int, nowNs int64) Rank {
	return p.prios[p.slots.labelSlot(lbl)]
}

func (p *strictPriority) BindTree(t *tree.Tree) { p.slots.bindTree(t) }

// wfq ranks packets with start-time fair queueing virtual timestamps:
// rank = max(now, finish[slot]); finish advances by the packet's service
// time at the slot's weighted share of the base rate. Backlogged slots
// interleave in weighted proportion; idle slots resync to now instead of
// banking credit — the classic SFQ start-time discipline.
type wfq struct {
	slots     slotter
	nsPerByte []float64 // virtual service time per byte at the slot's share
	finish    []int64
}

// NewWFQ builds a weighted-fair rank function: slot i receives share
// weights[i]/Σweights of baseBps in virtual time.
func NewWFQ(weights []float64, baseBps float64) Policy {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	p := &wfq{slots: newSlotter(n), nsPerByte: make([]float64, n), finish: make([]int64, n)}
	for i, w := range weights {
		if w <= 0 {
			w = 1
		}
		share := baseBps * w / sum
		p.nsPerByte[i] = 8e9 / share
	}
	return p
}

func (p *wfq) Name() string { return PolicyWFQ }

//fv:hotpath
func (p *wfq) rank(slot int, size int64, nowNs int64) Rank {
	start := p.finish[slot]
	if nowNs > start {
		start = nowNs
	}
	p.finish[slot] = start + int64(float64(size)*p.nsPerByte[slot])
	return Rank(start)
}

//fv:hotpath
func (p *wfq) PacketRank(pkt *packet.Packet, nowNs int64) Rank {
	return p.rank(p.slots.packetSlot(pkt), int64(pkt.Size), nowNs)
}

//fv:hotpath
func (p *wfq) LabelRank(lbl *tree.Label, size int, nowNs int64) Rank {
	return p.rank(p.slots.labelSlot(lbl), int64(size), nowNs)
}

func (p *wfq) BindTree(t *tree.Tree) { p.slots.bindTree(t) }

// deadline ranks packets with the virtual instant the slot's token
// schedule covers them: deadline += size/θ, floored at now when the slot
// has been under its rate. This mimics FlowValve's per-epoch token
// supply as a rank function — a packet's rank is the time by which θ·t
// tokens suffice to send it, so in-profile traffic ranks ≈ now and
// bursts rank into the future. Combined with the taildrop backend's
// horizon admission it reproduces the paper's specialized tail drop on
// one FIFO (see Config.HorizonNs).
type deadline struct {
	slots     slotter
	nsPerByte []float64 // 8e9/θ_slot
	next      []int64
}

// NewDeadline builds a token-schedule deadline rank function; ratesBps[i]
// is slot i's token rate θ.
func NewDeadline(ratesBps []float64) Policy {
	n := len(ratesBps)
	p := &deadline{slots: newSlotter(n), nsPerByte: make([]float64, n), next: make([]int64, n)}
	for i, r := range ratesBps {
		if r <= 0 {
			r = 1
		}
		p.nsPerByte[i] = 8e9 / r
	}
	return p
}

func (p *deadline) Name() string { return PolicyDeadline }

//fv:hotpath
func (p *deadline) rank(slot int, size int64, nowNs int64) Rank {
	d := p.next[slot]
	if nowNs > d {
		d = nowNs
	}
	d += int64(float64(size) * p.nsPerByte[slot])
	p.next[slot] = d
	return Rank(d)
}

//fv:hotpath
func (p *deadline) PacketRank(pkt *packet.Packet, nowNs int64) Rank {
	return p.rank(p.slots.packetSlot(pkt), int64(pkt.Size), nowNs)
}

//fv:hotpath
func (p *deadline) LabelRank(lbl *tree.Label, size int, nowNs int64) Rank {
	return p.rank(p.slots.labelSlot(lbl), int64(size), nowNs)
}

func (p *deadline) BindTree(t *tree.Tree) { p.slots.bindTree(t) }
