package pifo

import "flowvalve/internal/packet"

// entry is one queued packet with its admission-time rank. seq is a
// monotone arrival sequence number used to break rank ties FIFO — it
// makes every backend's dequeue order a total order, which the
// conformance tests and the exact-PIFO oracle cross-check rely on.
type entry struct {
	rank Rank
	seq  uint64
	pkt  *packet.Packet
}

// before reports whether e dequeues ahead of o: lower rank first,
// earlier arrival breaking ties.
//
//fv:hotpath
func (e entry) before(o entry) bool {
	if e.rank != o.rank {
		return e.rank < o.rank
	}
	return e.seq < o.seq
}

// QueueStats counts a backend queue's admission and adaptation events.
// The Qdisc and Sched wrappers export these through telemetry; the
// fields mirror the fv_pifo_* metric family.
type QueueStats struct {
	// Admitted counts entries accepted by the admission filter.
	Admitted uint64
	// RankDrops counts arrivals rejected by rank admission (SP-PIFO
	// band overflow pressure, AIFO/RIFO window rejection, taildrop
	// horizon misses, exact-PIFO worst-rank rejections).
	RankDrops uint64
	// FullDrops counts arrivals rejected only because the structure was
	// at capacity with no better-ranked entry to displace.
	FullDrops uint64
	// EvictDrops counts already-queued entries displaced by a
	// better-ranked arrival (exact PIFO drop-worst).
	EvictDrops uint64
	// PushUps / PushDowns count SP-PIFO bound adaptations.
	PushUps   uint64
	PushDowns uint64
}

// rankQueue is the structural contract each backend implements: push
// ranks-and-admits, pop yields the backend's best entry. A push may
// displace a queued entry (exact PIFO's drop-worst); the displaced
// packet comes back in evicted (evicted.pkt == nil means none) so the
// Qdisc can account the drop. Implementations are single-consumer and
// not concurrent-safe — the DES runs them single-threaded and the Sched
// wrapper adds its own lock.
type rankQueue interface {
	push(e entry) (evicted entry, admitted bool)
	pop() (entry, bool)
	peek() (entry, bool)
	len() int
	stats() *QueueStats
}

// entryRing is a growable FIFO ring of entries, the building block for
// the banded and bucketed backends. It mirrors pktq.FIFO but holds
// rank-stamped entries and is unbounded — capacity policy lives in the
// backend's admission logic, not in the ring.
type entryRing struct {
	buf  []entry
	head int
	size int
}

const entryRingMinCap = 8

//fv:hotpath
func (r *entryRing) push(e entry) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = e
	r.size++
}

//fv:hotpath
func (r *entryRing) pop() (entry, bool) {
	if r.size == 0 {
		return entry{}, false
	}
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return e, true
}

//fv:hotpath
func (r *entryRing) peek() (entry, bool) {
	if r.size == 0 {
		return entry{}, false
	}
	return r.buf[r.head], true
}

//fv:hotpath
func (r *entryRing) len() int { return r.size }

// grow doubles the ring (cold path: amortized, and backends that
// pre-size past their admission cap never hit it after warm-up).
func (r *entryRing) grow() {
	capNew := len(r.buf) * 2
	if capNew < entryRingMinCap {
		capNew = entryRingMinCap
	}
	buf := make([]entry, capNew)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// presize allocates capacity for at least n entries up front (rounded to
// a power of two) so hot paths never grow.
func (r *entryRing) presize(n int) {
	capNew := entryRingMinCap
	for capNew < n {
		capNew *= 2
	}
	if capNew > len(r.buf) {
		buf := make([]entry, capNew)
		for i := 0; i < r.size; i++ {
			buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = buf
		r.head = 0
	}
}

// rankWindow is the sliding window of recently seen ranks shared by the
// AIFO and RIFO admission filters. It observes every arrival (admitted
// or dropped) in a fixed ring and answers rank-distribution queries by
// linear scan — W is small (tens), so a scan is cheaper and
// allocation-free compared to maintaining an ordered structure.
type rankWindow struct {
	ring []Rank
	next int
	n    int // filled entries, ≤ len(ring)
}

func newRankWindow(w int) *rankWindow {
	if w < 1 {
		w = 1
	}
	return &rankWindow{ring: make([]Rank, w)}
}

//fv:hotpath
func (w *rankWindow) observe(r Rank) {
	w.ring[w.next] = r
	w.next++
	if w.next == len(w.ring) {
		w.next = 0
	}
	if w.n < len(w.ring) {
		w.n++
	}
}

// countLess reports how many windowed ranks are strictly below r — the
// numerator of AIFO's quantile estimate.
//
//fv:hotpath
func (w *rankWindow) countLess(r Rank) int {
	c := 0
	for i := 0; i < w.n; i++ {
		if w.ring[i] < r {
			c++
		}
	}
	return c
}

// bounds returns the windowed min and max rank — RIFO's normalization
// range. ok is false while the window is empty.
//
//fv:hotpath
func (w *rankWindow) bounds() (lo, hi Rank, ok bool) {
	if w.n == 0 {
		return 0, 0, false
	}
	lo, hi = w.ring[0], w.ring[0]
	for i := 1; i < w.n; i++ {
		if w.ring[i] < lo {
			lo = w.ring[i]
		}
		if w.ring[i] > hi {
			hi = w.ring[i]
		}
	}
	return lo, hi, true
}
