package pifo

import "flowvalve/internal/fvassert"

// exactPIFO is the ground-truth backend: a binary min-heap ordered by
// (rank, seq), i.e. a real push-in-first-out queue with O(log n)
// admission and dequeue. Admission at capacity is drop-worst — the
// worst-ranked entry (arriving or queued) is the one discarded, which is
// what an idealized PIFO with finite SRAM does and what keeps the oracle
// ordering exact under overload. The other backends are judged against
// this one's dequeue order.
type exactPIFO struct {
	heap []entry
	cap  int
	st   QueueStats
}

func newExactPIFO(capPkts int) *exactPIFO {
	return &exactPIFO{heap: make([]entry, 0, capPkts), cap: capPkts}
}

var _ rankQueue = (*exactPIFO)(nil)

//fv:hotpath
func (q *exactPIFO) push(e entry) (entry, bool) {
	if len(q.heap) >= q.cap {
		// Cold overload path: find the worst entry (max rank, newest
		// arrival). O(n) scan, but only while saturated, and capacity
		// is small (~1k).
		worst := 0
		for i := 1; i < len(q.heap); i++ {
			if q.heap[worst].before(q.heap[i]) {
				worst = i
			}
		}
		if !e.before(q.heap[worst]) {
			// The arrival is the worst: reject it.
			q.st.RankDrops++
			return entry{}, false
		}
		evicted := q.heap[worst]
		q.st.EvictDrops++
		// Remove the worst, then sift the displaced tail entry.
		last := len(q.heap) - 1
		q.heap[worst] = q.heap[last]
		q.heap[last] = entry{}
		q.heap = q.heap[:last]
		if worst < last {
			q.siftDown(worst)
			q.siftUp(worst)
		}
		q.insert(e)
		return evicted, true
	}
	q.insert(e)
	return entry{}, true
}

//fv:hotpath
func (q *exactPIFO) insert(e entry) {
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap) - 1)
	q.st.Admitted++
}

//fv:hotpath
func (q *exactPIFO) pop() (entry, bool) {
	if len(q.heap) == 0 {
		return entry{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = entry{}
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	if fvassert.Enabled && len(q.heap) > 0 && q.heap[0].before(top) {
		fvassert.Failf("pifo: exact heap popped rank %d seq %d after better root rank %d seq %d",
			top.rank, top.seq, q.heap[0].rank, q.heap[0].seq)
	}
	return top, true
}

//fv:hotpath
func (q *exactPIFO) peek() (entry, bool) {
	if len(q.heap) == 0 {
		return entry{}, false
	}
	return q.heap[0], true
}

//fv:hotpath
func (q *exactPIFO) len() int { return len(q.heap) }

func (q *exactPIFO) stats() *QueueStats { return &q.st }

//fv:hotpath
func (q *exactPIFO) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].before(q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

//fv:hotpath
func (q *exactPIFO) siftDown(i int) {
	n := len(q.heap)
	for {
		best := i
		l := 2*i + 1
		r := l + 1
		if l < n && q.heap[l].before(q.heap[best]) {
			best = l
		}
		if r < n && q.heap[r].before(q.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
}
