package pifo

// horizonAdmit is FlowValve's specialized tail drop as a rank
// predicate, shared by the Qdisc-plane queue and the Sched-plane
// admitter: reject when the rank (under the deadline policy, the
// virtual instant the sender's token schedule covers the packet) runs
// more than horizonNs ahead of now.
//
//fv:hotpath
func horizonAdmit(r Rank, nowNs, horizonNs int64) bool {
	return int64(r) <= nowNs+horizonNs
}

// taildrop expresses FlowValve's specialized tail drop as a rank
// function over one FIFO — the backend the paper's scheduler reduces to
// when viewed through the PIFO lens. In-profile traffic (rank ≈ now) is
// admitted; bursts whose token debt exceeds the horizon are dropped at
// the tail exactly like FlowValve's token-shaped early drop. Dequeue is
// FIFO; like AIFO/RIFO all policy lives in admission, but the admission
// signal is the sender's own schedule instead of the rank distribution.
type taildrop struct {
	ring      entryRing
	cap       int
	horizonNs int64
	nowNs     func() int64
	st        QueueStats
}

// newTaildrop builds the fvrank backend. nowNs supplies the admission
// clock (the DES or wall clock of the wrapper that owns the queue).
func newTaildrop(capPkts int, horizonNs int64, nowNs func() int64) *taildrop {
	q := &taildrop{cap: capPkts, horizonNs: horizonNs, nowNs: nowNs}
	q.ring.presize(capPkts)
	return q
}

var _ rankQueue = (*taildrop)(nil)

//fv:hotpath
func (q *taildrop) push(e entry) (entry, bool) {
	k := q.ring.len()
	if k >= q.cap {
		q.st.FullDrops++
		return entry{}, false
	}
	if !horizonAdmit(e.rank, q.nowNs(), q.horizonNs) { //fv:boxing-ok nowNs is the qdisc plane's injected time source, bound once at attach
		q.st.RankDrops++
		return entry{}, false
	}
	q.ring.push(e)
	q.st.Admitted++
	return entry{}, true
}

//fv:hotpath
func (q *taildrop) pop() (entry, bool) { return q.ring.pop() }

//fv:hotpath
func (q *taildrop) peek() (entry, bool) { return q.ring.peek() }

//fv:hotpath
func (q *taildrop) len() int { return q.ring.len() }

func (q *taildrop) stats() *QueueStats { return &q.st }
