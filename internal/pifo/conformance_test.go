package pifo

import (
	"fmt"
	"testing"

	"flowvalve/internal/clock"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/trafficgen"
)

// testTree builds a flat tree with n leaves under a non-limiting root.
func testTree(tb testing.TB, n int) *tree.Tree {
	tb.Helper()
	b := tree.NewBuilder().Root("root", 1e15)
	for i := 0; i < n; i++ {
		b.Add(tree.ClassSpec{Name: fmt.Sprintf("leaf%d", i), Parent: "root"})
	}
	tr, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func testLabels(tb testing.TB, tr *tree.Tree, n int) []*tree.Label {
	tb.Helper()
	labels := make([]*tree.Label, n)
	for i := range labels {
		lbl, ok := tr.LabelByName(fmt.Sprintf("leaf%d", i))
		if !ok {
			tb.Fatalf("missing label leaf%d", i)
		}
		labels[i] = lbl
	}
	return labels
}

func newTestSched(tb testing.TB, backend, policy string, clk clock.Clock, tr *tree.Tree, slots int) *Sched {
	tb.Helper()
	pol, err := NewPolicy(policy, slots, 1e9)
	if err != nil {
		tb.Fatal(err)
	}
	if b, ok := pol.(TreeBinder); ok {
		b.BindTree(tr)
	}
	s, err := NewSched(clk, Config{Backend: backend, LinkRateBps: 1e9, CapPkts: 128}, pol)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestScheduleBatchEquivalence pins the batch contract for every backend
// and policy: the verdict sequence of ScheduleBatch at sizes 1, 8 and 64
// is identical to per-request Schedule calls over the same request
// stream with the same clock trajectory (the clock advances only at
// shared batch boundaries, as the interface requires for equivalence).
func TestScheduleBatchEquivalence(t *testing.T) {
	const (
		slots    = 4
		nReqs    = 512
		groupLen = 64 // clock advances only at multiples of 64
	)
	tr := testTree(t, slots)
	labels := testLabels(t, tr, slots)

	rng := sim.NewRNG(99)
	reqs := make([]dataplane.Request, nReqs)
	for i := range reqs {
		reqs[i] = dataplane.Request{
			Label: labels[rng.Intn(slots)],
			Size:  64 + rng.Intn(1437),
		}
	}

	run := func(backend, policy string, batch int) []dataplane.Verdict {
		clk := clock.NewManual(0)
		s := newTestSched(t, backend, policy, clk, tr, slots)
		verdicts := make([]dataplane.Verdict, 0, nReqs)
		out := make([]dataplane.Decision, groupLen)
		for start := 0; start < nReqs; start += groupLen {
			if start > 0 {
				clk.Advance(200_000) // drain ~25 KB between groups
			}
			group := reqs[start : start+groupLen]
			if batch == 1 {
				for _, r := range group {
					d := s.Schedule(r.Label, r.Size)
					verdicts = append(verdicts, d.Verdict)
				}
				continue
			}
			for off := 0; off < groupLen; off += batch {
				chunk := group[off : off+batch]
				s.ScheduleBatch(chunk, out[:len(chunk)])
				for i := range chunk {
					verdicts = append(verdicts, out[i].Verdict)
					if out[i].Batched != len(chunk) {
						t.Fatalf("%s/%s: Batched=%d want %d", backend, policy, out[i].Batched, len(chunk))
					}
				}
			}
		}
		return verdicts
	}

	for _, backend := range BackendNames() {
		for _, policy := range PolicyNames() {
			t.Run(backend+"/"+policy, func(t *testing.T) {
				ref := run(backend, policy, 1)
				for _, batch := range []int{1, 8, 64} {
					got := run(backend, policy, batch)
					for i := range ref {
						if got[i] != ref[i] {
							t.Fatalf("batch %d diverges at request %d: got %v want %v",
								batch, i, got[i], ref[i])
						}
					}
				}
				// The stream must exercise both verdicts, or the
				// equivalence above is vacuous.
				fwd, drop := 0, 0
				for _, v := range ref {
					if v == dataplane.Forward {
						fwd++
					} else {
						drop++
					}
				}
				if fwd == 0 || drop == 0 {
					t.Fatalf("degenerate stream: %d forwards, %d drops", fwd, drop)
				}
			})
		}
	}
}

// qdiscRun drives one backend Qdisc with seeded bursty overload and
// returns everything observable.
type qdiscResult struct {
	sent      uint64
	delivered uint64
	dropped   uint64
	backlog   int
	stats     dataplane.Stats
	qs        QueueStats
	inv       uint64
	reg       *telemetry.Registry
}

func qdiscRun(tb testing.TB, backend string, seed uint64) qdiscResult {
	tb.Helper()
	const (
		apps       = 4
		durationNs = 20_000_000 // 20 ms
		linkBps    = 1e9
	)
	eng := sim.New()
	pol, err := NewPolicy(PolicyWFQ, apps, linkBps)
	if err != nil {
		tb.Fatal(err)
	}
	var delivered, dropped uint64
	cb := dataplane.Callbacks{
		OnDeliver: func(p *packet.Packet) { delivered++ },
		OnDrop:    func(p *packet.Packet) { dropped++ },
	}
	q, err := NewQdisc(eng, Config{Backend: backend, LinkRateBps: linkBps, CapPkts: 256}, pol, cb)
	if err != nil {
		tb.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	q.AttachTelemetry(reg)

	var alloc packet.Alloc
	var sent uint64
	send := func(p *packet.Packet) { sent++; q.Enqueue(p) }
	for a := 0; a < apps; a++ {
		// Aggregate offered ≈ 4 × 0.6 Gbps × 50% duty = 1.2× the link.
		_, err := trafficgen.NewOnOff(eng, &alloc, packet.FlowID(a), packet.AppID(a),
			1000, 600e6, 200_000, 200_000, 0, durationNs, seed+uint64(a)*17, send)
		if err != nil {
			tb.Fatal(err)
		}
	}
	// Sources stop at durationNs; run twice as long so the queue and the
	// wire drain completely and conservation is exact.
	eng.RunUntil(2 * durationNs)
	return qdiscResult{
		sent:      sent,
		delivered: delivered,
		dropped:   dropped,
		backlog:   q.Backlog(),
		stats:     q.QdiscStats(),
		qs:        q.QueueStats(),
		inv:       q.Inversions(),
		reg:       reg,
	}
}

// TestQdiscConformance checks every backend against the dataplane
// contract: packet conservation across admission, delivery, backlog and
// eviction; callback counts matching stats; attached telemetry matching
// the same counters; and the exact oracle delivering zero inversions.
func TestQdiscConformance(t *testing.T) {
	for _, spec := range Backends() {
		backend := spec.Name
		t.Run(backend, func(t *testing.T) {
			res := qdiscRun(t, backend, 42)
			if res.sent == 0 || res.delivered == 0 {
				t.Fatalf("degenerate run: sent=%d delivered=%d", res.sent, res.delivered)
			}
			if res.stats.Dropped == 0 {
				t.Fatalf("overload produced no drops (sent=%d)", res.sent)
			}
			qs := res.qs
			if res.stats.Enqueued != qs.Admitted {
				t.Errorf("Enqueued=%d, structure admitted %d", res.stats.Enqueued, qs.Admitted)
			}
			if got, want := res.stats.Dropped, qs.RankDrops+qs.FullDrops+qs.EvictDrops; got != want {
				t.Errorf("Dropped=%d, structure drops sum %d", got, want)
			}
			if got, want := res.sent, qs.Admitted+qs.RankDrops+qs.FullDrops; got != want {
				t.Errorf("sent=%d, admitted+rejected=%d", got, want)
			}
			if res.backlog != 0 {
				t.Errorf("backlog %d after full drain", res.backlog)
			}
			if got, want := qs.Admitted, res.stats.Delivered+qs.EvictDrops; got != want {
				t.Errorf("admitted=%d, delivered+evicted=%d", got, want)
			}
			if res.delivered != res.stats.Delivered {
				t.Errorf("OnDeliver fired %d times, stats say %d", res.delivered, res.stats.Delivered)
			}
			if res.dropped != res.stats.Dropped {
				t.Errorf("OnDrop fired %d times, stats say %d", res.dropped, res.stats.Dropped)
			}
			if backend == BackendPIFO && res.inv != 0 {
				t.Errorf("exact oracle delivered %d inversions", res.inv)
			}

			// Telemetry carries the same counters: re-requesting the
			// same (name, labels) returns the registered instance.
			sched := telemetry.Label{Key: "scheduler", Value: backend}
			if got := res.reg.Counter("fv_delivered_packets_total", "", sched).Value(); uint64(got) != res.stats.Delivered {
				t.Errorf("fv_delivered_packets_total=%d, stats %d", got, res.stats.Delivered)
			}
			if got := res.reg.Counter("fv_enqueued_packets_total", "", sched).Value(); uint64(got) != res.stats.Enqueued {
				t.Errorf("fv_enqueued_packets_total=%d, stats %d", got, res.stats.Enqueued)
			}
			if got := res.reg.Counter("fv_pifo_inversions_total", "", sched).Value(); uint64(got) != res.inv {
				t.Errorf("fv_pifo_inversions_total=%d, Inversions() %d", got, res.inv)
			}
		})
	}
}

// TestSPPIFOAdaptsBounds pins the push-up/push-down semantics on a
// two-queue bank, following the worked example in the SP-PIFO paper:
// bounds chase admitted ranks upward, and an arrival better than every
// bound shifts the whole vector down by its miss cost.
func TestSPPIFOAdaptsBounds(t *testing.T) {
	q := newSPPIFO(16, 2)
	if band := q.admitBand(10); band != 1 {
		t.Fatalf("rank 10 mapped to band %d, want lowest-priority band 1", band)
	}
	if q.bounds[1] != 10 {
		t.Fatalf("push-up missing: bounds=%v", q.bounds)
	}
	if band := q.admitBand(5); band != 0 || q.bounds[0] != 5 {
		t.Fatalf("rank 5: band %d bounds %v, want band 0 bounds [5 10]", band, q.bounds)
	}
	if q.st.PushUps != 2 {
		t.Fatalf("PushUps=%d, want 2", q.st.PushUps)
	}
	// Rank 3 beats every bound: push-down by the miss cost 5-3=2.
	if band := q.admitBand(3); band != 0 {
		t.Fatalf("rank 3 mapped to band %d, want 0", band)
	}
	if q.st.PushDowns != 1 || q.bounds[0] != 3 || q.bounds[1] != 8 {
		t.Fatalf("push-down wrong: PushDowns=%d bounds=%v, want 1 [3 8]", q.st.PushDowns, q.bounds)
	}
	// And the harness still observes upward adaptation end to end.
	res := qdiscRun(t, BackendSPPIFO, 7)
	if res.qs.PushUps == 0 {
		t.Error("no push-up adaptations recorded in a full run")
	}
}

// TestQdiscCapabilityProbes pins the discovery contract: the family
// exposes backlog and telemetry, and does not claim host-CPU accounting.
func TestQdiscCapabilityProbes(t *testing.T) {
	eng := sim.New()
	pol, _ := NewPolicy(PolicyPrio, 2, 1e9)
	q, err := NewQdisc(eng, Config{}, pol, dataplane.Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	var dq dataplane.Qdisc = q
	if _, ok := dq.(dataplane.Backlogger); !ok {
		t.Error("Backlogger probe failed")
	}
	if _, ok := dq.(dataplane.TelemetrySink); !ok {
		t.Error("TelemetrySink probe failed")
	}
	if _, ok := dq.(dataplane.HostAccountant); ok {
		t.Error("family should not claim host-CPU accounting (it models an offloaded path)")
	}
}

// TestConfigValidation covers the registry error paths.
func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	pol, _ := NewPolicy(PolicyPrio, 2, 1e9)
	if _, err := NewQdisc(eng, Config{Backend: "htb"}, pol, dataplane.Callbacks{}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := NewPolicy("fifo", 2, 1e9); err == nil {
		t.Error("unknown policy accepted")
	}
	if !IsBackend(BackendEiffel) || IsBackend("htb") {
		t.Error("IsBackend misclassifies")
	}
}
