package pifo

import (
	"fmt"
	"strings"
	"testing"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/trafficgen"
)

// determinismRun executes one seeded overload scenario against a backend
// with telemetry attached and reduces everything observable — the metric
// export and the full delivery trace (flow, app, seq, rank, egress
// instant of every delivered packet, plus every drop) — to one string.
func determinismRun(tb testing.TB, backend string, seed uint64) string {
	tb.Helper()
	const (
		apps       = 4
		durationNs = 10_000_000
		linkBps    = 1e9
	)
	eng := sim.New()
	pol, err := NewPolicy(PolicyWFQ, apps, linkBps)
	if err != nil {
		tb.Fatal(err)
	}
	var trace strings.Builder
	cb := dataplane.Callbacks{
		OnDrop: func(p *packet.Packet) {
			fmt.Fprintf(&trace, "D %d.%d.%d\n", p.Flow, p.App, p.Seq)
		},
	}
	cfg := Config{
		Backend:     backend,
		LinkRateBps: linkBps,
		CapPkts:     256,
		OnDequeue: func(p *packet.Packet, r Rank) {
			fmt.Fprintf(&trace, "T %d.%d.%d r=%d at=%d\n", p.Flow, p.App, p.Seq, r, p.EgressAt)
		},
	}
	q, err := NewQdisc(eng, cfg, pol, cb)
	if err != nil {
		tb.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	q.AttachTelemetry(reg)

	var alloc packet.Alloc
	for a := 0; a < apps; a++ {
		_, err := trafficgen.NewOnOff(eng, &alloc, packet.FlowID(a), packet.AppID(a),
			1000, 600e6, 200_000, 200_000, 0, durationNs, seed+uint64(a)*17, q.Enqueue)
		if err != nil {
			tb.Fatal(err)
		}
	}
	eng.RunUntil(2 * durationNs)
	return reg.Dump() + "\n---\n" + trace.String()
}

// TestSeededRunsBitIdentical mirrors the repo-wide determinism
// regression pattern for the new family: two runs of the same seeded
// scenario must produce byte-identical metric dumps and delivery traces
// for every backend. Any wall-clock or map-iteration leak in a backend
// structure shows up here.
func TestSeededRunsBitIdentical(t *testing.T) {
	for _, spec := range Backends() {
		backend := spec.Name
		t.Run(backend, func(t *testing.T) {
			a := determinismRun(t, backend, 1234)
			b := determinismRun(t, backend, 1234)
			if a != b {
				t.Fatalf("seeded runs diverged:\nrun A:\n%.600s\nrun B:\n%.600s", a, b)
			}
			if !strings.Contains(a, "T ") {
				t.Fatal("trace recorded no deliveries")
			}
			// A different seed must actually change the trace, or the
			// equality above proves nothing.
			c := determinismRun(t, backend, 99)
			if a == c {
				t.Fatal("different seeds produced identical runs")
			}
		})
	}
}
