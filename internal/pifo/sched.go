package pifo

import (
	"fmt"
	"sync"

	"flowvalve/internal/clock"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/sched/tree"
)

// virtualMTU sizes the Scheduler plane's virtual queue: CapPkts packets
// of one MTU each, in bytes.
const virtualMTU = 1500

// Sched is the label-plane face of a pifo-family backend: a synchronous
// admit/drop decision (dataplane.Scheduler, including ScheduleBatch)
// against a virtual queue drained at the link rate. It is the same
// algorithmic shape as FlowValve's Algorithm 1 — rank the packet, test
// the backend's admission filter, forward or drop — so fvbench drives
// the whole family through the interface it already speaks.
//
// Only admission is modeled on this plane (there is no reordering to
// observe in a synchronous verdict), so the exact PIFO and Eiffel reduce
// to tail drop here; their ordering behaviour lives on the Qdisc plane.
// SP-PIFO's bound adaptation, AIFO/RIFO's rank windows, and fvrank's
// horizon run identically on both planes via the shared admission logic.
//
// Sched is safe for concurrent use; decisions serialize on one mutex
// (the global-qdisc-lock model, matching the kernel baselines).
type Sched struct {
	mu sync.Mutex

	clk clock.Clock
	// manualClk/wallClk cache the concrete type behind clk so the
	// per-decision time read dispatches statically (same devirt as
	// core.Scheduler.now).
	manualClk *clock.Manual
	wallClk   *clock.Wall
	pol       Policy
	adm       admitter

	drainBps float64
	lastNs   int64

	forwarded uint64
	dropped   uint64
}

// NewSched builds the label-plane adapter for cfg.Backend. The policy
// instance must be exclusive to this Sched. If the policy can bind to a
// scheduling tree, bind it before issuing decisions.
func NewSched(clk clock.Clock, cfg Config, pol Policy) (*Sched, error) {
	if clk == nil || pol == nil {
		return nil, fmt.Errorf("pifo: nil clock or policy")
	}
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	adm, err := newAdmitter(&cfg)
	if err != nil {
		return nil, err
	}
	s := &Sched{clk: clk, pol: pol, adm: adm, drainBps: cfg.LinkRateBps, lastNs: clk.Now()}
	switch c := clk.(type) {
	case *clock.Manual:
		s.manualClk = c
	case *clock.Wall:
		s.wallClk = c
	}
	return s, nil
}

// now reads the clock through the concrete fast path probed at
// construction.
//
//fv:hotpath
func (s *Sched) now() int64 {
	if m := s.manualClk; m != nil {
		return m.Now()
	}
	if w := s.wallClk; w != nil {
		return w.Now()
	}
	//fv:boxing-ok out-of-tree Clock implementations take the virtual slow path; both stock clocks devirtualize above
	return s.clk.Now()
}

// Stats returns cumulative forwarded/dropped decision counts.
func (s *Sched) Stats() (forwarded, dropped uint64) {
	s.mu.Lock()
	forwarded, dropped = s.forwarded, s.dropped
	s.mu.Unlock()
	return forwarded, dropped
}

// Schedule implements dataplane.Scheduler.
//
//fv:hotpath
func (s *Sched) Schedule(lbl *tree.Label, size int) dataplane.Decision {
	s.mu.Lock()
	now := s.now()
	s.drainTickLocked(now)
	d := s.decideLocked(lbl, size, now, 1)
	s.mu.Unlock()
	return d
}

// ScheduleBatch implements dataplane.Scheduler: one lock acquisition,
// one clock read, and one virtual-queue drain are amortized over the
// burst; per-request work is rank + admission only. Under a clock that
// does not advance mid-call the decision sequence is identical to
// batch-1 calls — the conformance suite pins that equivalence.
//
//fv:hotpath
func (s *Sched) ScheduleBatch(reqs []dataplane.Request, out []dataplane.Decision) {
	n := len(reqs)
	if n == 0 {
		return
	}
	s.mu.Lock()
	now := s.now()
	s.drainTickLocked(now)
	for i := 0; i < n; i++ {
		out[i] = s.decideLocked(reqs[i].Label, reqs[i].Size, now, n)
	}
	s.mu.Unlock()
}

// decideLocked ranks and admits one packet. Callers hold s.mu.
//
//fv:hotpath
func (s *Sched) decideLocked(lbl *tree.Label, size int, nowNs int64, batched int) dataplane.Decision {
	r := s.pol.LabelRank(lbl, size, nowNs) //fv:boxing-ok the rank policy is the pifo family's pluggable surface, chosen once at construction
	if s.adm.admitLocked(r, size, nowNs) { //fv:boxing-ok the admission filter is the pifo family's pluggable surface, chosen once at construction
		s.forwarded++
		return dataplane.Decision{Verdict: dataplane.Forward, Batched: batched}
	}
	s.dropped++
	return dataplane.Decision{Verdict: dataplane.Drop, Batched: batched}
}

// drainTickLocked advances the virtual queue: the wire drained
// drainBps·dt bits since the last decision. Callers hold s.mu.
//
//fv:hotpath
func (s *Sched) drainTickLocked(nowNs int64) {
	dt := nowNs - s.lastNs
	if dt <= 0 {
		return
	}
	s.lastNs = nowNs
	//fv:boxing-ok the admission filter is the pifo family's pluggable surface, chosen once at construction
	s.adm.drainLocked(int64(s.drainBps * float64(dt) / 8e9))
}

var _ dataplane.Scheduler = (*Sched)(nil)

// admitter is a backend's admission filter over a virtual byte-counted
// queue. Implementations are guarded by the owning Sched's mutex (the
// *Locked convention).
type admitter interface {
	// admitLocked decides one size-byte packet with rank r at nowNs,
	// charging the virtual queue on admission.
	admitLocked(r Rank, size int, nowNs int64) bool
	// drainLocked releases queued bytes transmitted since the last call.
	drainLocked(bytes int64)
}

func newAdmitter(cfg *Config) (admitter, error) {
	capBytes := int64(cfg.CapPkts) * virtualMTU
	switch cfg.Backend {
	case BackendPIFO, BackendEiffel:
		return &tailAdmitter{occ: occupancy{capBytes: capBytes}}, nil
	case BackendSPPIFO:
		bandCap := capBytes / int64(cfg.Bands)
		if bandCap < virtualMTU {
			bandCap = virtualMTU
		}
		return &sppifoAdmitter{
			bank:    newSPPIFO(cfg.CapPkts, cfg.Bands),
			bands:   make([]int64, cfg.Bands),
			bandCap: bandCap,
		}, nil
	case BackendAIFO:
		return &aifoAdmitter{
			occ:        occupancy{capBytes: capBytes},
			win:        newRankWindow(cfg.WindowPkts),
			admitScale: admitScale(cfg.WindowPkts, cfg.Headroom),
		}, nil
	case BackendRIFO:
		return &rifoAdmitter{
			occ: occupancy{capBytes: capBytes},
			win: newRankWindow(cfg.WindowPkts),
		}, nil
	case BackendTaildrop:
		return &horizonAdmitter{
			occ:       occupancy{capBytes: capBytes},
			horizonNs: cfg.HorizonNs,
		}, nil
	}
	return nil, fmt.Errorf("pifo: unknown backend %q (want %s)", cfg.Backend, BackendList())
}

// occupancy is a byte-counted virtual queue level shared by the
// admitters.
type occupancy struct {
	bytes    int64
	capBytes int64
}

//fv:hotpath
func (o *occupancy) drain(b int64) {
	o.bytes -= b
	if o.bytes < 0 {
		o.bytes = 0
	}
}

//fv:hotpath
func (o *occupancy) tryAdd(size int) bool {
	if o.bytes+int64(size) > o.capBytes {
		return false
	}
	o.bytes += int64(size)
	return true
}

// freeFrac returns the free fraction of the virtual queue in [0, 1].
//
//fv:hotpath
func (o *occupancy) freeFrac() float64 {
	return float64(o.capBytes-o.bytes) / float64(o.capBytes)
}

// tailAdmitter is plain tail drop: the exact PIFO and Eiffel never
// reject by rank, only by capacity.
type tailAdmitter struct{ occ occupancy }

//fv:hotpath
func (a *tailAdmitter) admitLocked(r Rank, size int, nowNs int64) bool {
	return a.occ.tryAdd(size)
}

//fv:hotpath
func (a *tailAdmitter) drainLocked(b int64) { a.occ.drain(b) }

// sppifoAdmitter reuses the SP-PIFO bank's band-selection and bound
// adaptation (bank holds no entries on this plane) over per-band
// virtual byte levels drained in strict-priority order.
type sppifoAdmitter struct {
	bank    *spPIFO
	bands   []int64
	bandCap int64
}

//fv:hotpath
func (a *sppifoAdmitter) admitLocked(r Rank, size int, nowNs int64) bool {
	band := a.bank.admitBand(r)
	if a.bands[band]+int64(size) > a.bandCap {
		a.bank.st.FullDrops++
		return false
	}
	a.bands[band] += int64(size)
	a.bank.st.Admitted++
	return true
}

//fv:hotpath
func (a *sppifoAdmitter) drainLocked(b int64) {
	for i := range a.bands {
		if b <= 0 {
			return
		}
		take := a.bands[i]
		if take > b {
			take = b
		}
		a.bands[i] -= take
		b -= take
	}
}

// aifoAdmitter runs AIFO's windowed-quantile test against the virtual
// free fraction.
type aifoAdmitter struct {
	occ        occupancy
	win        *rankWindow
	admitScale float64
}

//fv:hotpath
func (a *aifoAdmitter) admitLocked(r Rank, size int, nowNs int64) bool {
	quantile := a.win.countLess(r)
	a.win.observe(r)
	if !aifoAdmit(quantile, a.admitScale, a.occ.freeFrac()) {
		return false
	}
	return a.occ.tryAdd(size)
}

//fv:hotpath
func (a *aifoAdmitter) drainLocked(b int64) { a.occ.drain(b) }

// rifoAdmitter runs RIFO's range test against the virtual free fraction.
type rifoAdmitter struct {
	occ occupancy
	win *rankWindow
}

//fv:hotpath
func (a *rifoAdmitter) admitLocked(r Rank, size int, nowNs int64) bool {
	lo, hi, seeded := a.win.bounds()
	a.win.observe(r)
	if !rifoAdmit(r, lo, hi, seeded, a.occ.freeFrac()) {
		return false
	}
	return a.occ.tryAdd(size)
}

//fv:hotpath
func (a *rifoAdmitter) drainLocked(b int64) { a.occ.drain(b) }

// horizonAdmitter is FlowValve's tail drop: reject when the rank (the
// token-schedule deadline) runs more than the horizon ahead of now.
type horizonAdmitter struct {
	occ       occupancy
	horizonNs int64
}

//fv:hotpath
func (a *horizonAdmitter) admitLocked(r Rank, size int, nowNs int64) bool {
	if !horizonAdmit(r, nowNs, a.horizonNs) {
		return false
	}
	return a.occ.tryAdd(size)
}

//fv:hotpath
func (a *horizonAdmitter) drainLocked(b int64) { a.occ.drain(b) }
