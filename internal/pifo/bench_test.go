package pifo

import (
	"testing"

	"flowvalve/internal/clock"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// benchSched builds a label-plane scheduler over a 4-leaf tree; the
// request slice mirrors the root BenchmarkScheduleBatch32 shape (32
// full-size packets per call).
func benchSched(tb testing.TB, backend string, clk clock.Clock) ([]dataplane.Request, []dataplane.Decision, *Sched) {
	tr := testTree(tb, 4)
	labels := testLabels(tb, tr, 4)
	s := newTestSched(tb, backend, PolicyWFQ, clk, tr, 4)
	reqs := make([]dataplane.Request, 32)
	for i := range reqs {
		reqs[i] = dataplane.Request{Label: labels[i%len(labels)], Size: 1500}
	}
	return reqs, make([]dataplane.Decision, len(reqs)), s
}

// BenchmarkPifoScheduleBatch32 is the family's analogue of the root
// BenchmarkScheduleBatch32: ns and allocs per 32-packet batch decision
// on the label plane, per backend. The CI bench gate tracks these
// alongside the FlowValve core numbers.
func BenchmarkPifoScheduleBatch32(b *testing.B) {
	for _, spec := range Backends() {
		b.Run(spec.Name, func(b *testing.B) {
			reqs, out, s := benchSched(b, spec.Name, clock.NewWall())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScheduleBatch(reqs, out)
			}
		})
	}
}

// TestScheduleBatchZeroAlloc enforces the acceptance bar directly: the
// admit hot path allocates nothing per batch once warm. Eiffel and AIFO
// are the backends the issue names; the whole family clears the same
// bar, so all are pinned.
func TestScheduleBatchZeroAlloc(t *testing.T) {
	for _, spec := range Backends() {
		t.Run(spec.Name, func(t *testing.T) {
			reqs, out, s := benchSched(t, spec.Name, clock.NewManual(0))
			s.ScheduleBatch(reqs, out) // warm up
			if avg := testing.AllocsPerRun(200, func() { s.ScheduleBatch(reqs, out) }); avg != 0 {
				t.Errorf("ScheduleBatch allocates %.1f objects per call, want 0", avg)
			}
		})
	}
}

// TestQueueHotPathZeroAlloc pins the Qdisc-plane structures: once the
// rings are pre-sized, admit and dequeue allocate nothing. The exact
// PIFO is exempt — its heap grows by design (append into reserved
// capacity; steady-state is allocation-free but drop-worst compaction
// may re-slice), and it is the oracle, not a production path.
func TestQueueHotPathZeroAlloc(t *testing.T) {
	for _, backend := range []string{BackendSPPIFO, BackendAIFO, BackendRIFO, BackendEiffel, BackendTaildrop} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{Backend: backend}
			cfg.Defaults()
			rq, err := newQueue(&cfg, func() int64 { return 0 })
			if err != nil {
				t.Fatal(err)
			}
			var alloc packet.Alloc
			p := alloc.New(1, 1, 1000, 0)
			var seq uint64
			rng := sim.NewRNG(5)
			cycle := func() {
				for i := 0; i < 16; i++ {
					seq++
					rq.push(entry{rank: Rank(rng.Int63n(1 << 20)), seq: seq, pkt: p})
				}
				for i := 0; i < 16; i++ {
					rq.pop()
				}
			}
			cycle() // warm up rings
			if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
				t.Errorf("push/pop cycle allocates %.2f objects per run, want 0", avg)
			}
		})
	}
}

// BenchmarkQueuePushPop measures the raw structure cost per
// push+pop pair, per backend.
func BenchmarkQueuePushPop(b *testing.B) {
	for _, spec := range Backends() {
		b.Run(spec.Name, func(b *testing.B) {
			cfg := Config{Backend: spec.Name}
			cfg.Defaults()
			rq, err := newQueue(&cfg, func() int64 { return 0 })
			if err != nil {
				b.Fatal(err)
			}
			var alloc packet.Alloc
			p := alloc.New(1, 1, 1000, 0)
			rng := sim.NewRNG(5)
			// Keep ~512 entries resident so pops traverse real state.
			for i := 0; i < 512; i++ {
				rq.push(entry{rank: Rank(rng.Int63n(1 << 20)), seq: uint64(i), pkt: p})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rq.push(entry{rank: Rank(rng.Int63n(1 << 20)), seq: uint64(i + 512), pkt: p})
				rq.pop()
			}
		})
	}
}
