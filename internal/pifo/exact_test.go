package pifo

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// naivePIFO is a deliberately simple reference implementation of the
// exact PIFO semantics: a sorted slice with insertion-sort admission and
// the same drop-worst policy. The heap is cross-checked against it under
// random rank streams.
type naivePIFO struct {
	entries []entry
	cap     int
}

func (n *naivePIFO) push(e entry) (entry, bool) {
	if len(n.entries) >= n.cap {
		worst := n.entries[len(n.entries)-1]
		if !e.before(worst) {
			return entry{}, false
		}
		n.entries = n.entries[:len(n.entries)-1]
		n.insert(e)
		return worst, true
	}
	n.insert(e)
	return entry{}, true
}

func (n *naivePIFO) insert(e entry) {
	i := 0
	for i < len(n.entries) && n.entries[i].before(e) {
		i++
	}
	n.entries = append(n.entries, entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = e
}

func (n *naivePIFO) pop() (entry, bool) {
	if len(n.entries) == 0 {
		return entry{}, false
	}
	e := n.entries[0]
	n.entries = n.entries[1:]
	return e, true
}

// TestExactPIFOMatchesNaiveOracle drives the heap and the sorted-slice
// reference with an identical random stream of interleaved pushes and
// pops (including sustained overload, so the drop-worst path runs) and
// requires identical admission results, identical evictions, and an
// identical dequeue sequence.
func TestExactPIFOMatchesNaiveOracle(t *testing.T) {
	const capPkts = 64
	for _, seed := range []uint64{1, 7, 0xfeed} {
		rng := sim.NewRNG(seed)
		heap := newExactPIFO(capPkts)
		oracle := &naivePIFO{cap: capPkts}
		var alloc packet.Alloc
		var seq uint64
		for op := 0; op < 20000; op++ {
			if rng.Float64() < 0.7 {
				e := entry{
					rank: Rank(rng.Int63n(500)), // narrow range forces rank ties
					seq:  seq,
					pkt:  alloc.New(packet.FlowID(seq), 0, 64, 0),
				}
				seq++
				hevict, hok := heap.push(e)
				oevict, ook := oracle.push(e)
				if hok != ook {
					t.Fatalf("seed %d op %d: heap admitted=%v oracle admitted=%v", seed, op, hok, ook)
				}
				if hevict.rank != oevict.rank || hevict.seq != oevict.seq {
					t.Fatalf("seed %d op %d: heap evicted (%d,%d), oracle evicted (%d,%d)",
						seed, op, hevict.rank, hevict.seq, oevict.rank, oevict.seq)
				}
			} else {
				he, hok := heap.pop()
				oe, ook := oracle.pop()
				if hok != ook || he.rank != oe.rank || he.seq != oe.seq {
					t.Fatalf("seed %d op %d: heap popped (%d,%d,%v), oracle popped (%d,%d,%v)",
						seed, op, he.rank, he.seq, hok, oe.rank, oe.seq, ook)
				}
			}
			if heap.len() != len(oracle.entries) {
				t.Fatalf("seed %d op %d: heap len %d, oracle len %d", seed, op, heap.len(), len(oracle.entries))
			}
		}
		// Drain both: the tails must agree too.
		for {
			he, hok := heap.pop()
			oe, ook := oracle.pop()
			if hok != ook || he.rank != oe.rank || he.seq != oe.seq {
				t.Fatalf("seed %d drain: heap (%d,%d,%v), oracle (%d,%d,%v)",
					seed, he.rank, he.seq, hok, oe.rank, oe.seq, ook)
			}
			if !hok {
				break
			}
		}
	}
}

// TestExactPIFOStableTies pins the FIFO tie-break: equal ranks dequeue
// in arrival order.
func TestExactPIFOStableTies(t *testing.T) {
	q := newExactPIFO(16)
	var alloc packet.Alloc
	for i := uint64(0); i < 8; i++ {
		q.push(entry{rank: 42, seq: i, pkt: alloc.New(packet.FlowID(i), 0, 64, 0)})
	}
	for i := uint64(0); i < 8; i++ {
		e, ok := q.pop()
		if !ok || e.seq != i {
			t.Fatalf("tie pop %d: got seq %d ok=%v", i, e.seq, ok)
		}
	}
}
