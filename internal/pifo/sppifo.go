package pifo

import "flowvalve/internal/fvassert"

// spPIFO approximates a PIFO with a small bank of strict-priority FIFOs
// and per-queue rank bounds, adapted online ("SP-PIFO: Approximating
// Push-In First-Out Behaviors using Strict-Priority Queues"). An arrival
// with rank r scans the bank bottom-up (lowest priority first) and joins
// the first queue whose bound it meets:
//
//   - admit to queue i when r >= bounds[i]: push-up — the queue's bound
//     chases the highest rank it has accepted (bounds[i] = r), so bounds
//     spread out to partition the live rank distribution.
//
//   - r < bounds[0] (better than every bound): push-down — a queue-0
//     admission here would dequeue behind queue-0 packets with worse
//     ranks already mapped there, a guaranteed inversion. All bounds
//     shift down by the miss cost (bounds[0] - r) and the packet joins
//     queue 0, re-centering the mapping on the new rank range.
//
// Inversions still happen *within* a queue (it is FIFO), which is
// exactly the error the accuracy lab measures against the exact oracle.
type spPIFO struct {
	bands   []entryRing
	bounds  []Rank
	bandCap int // per-band entry cap (CapPkts / len(bands))
	st      QueueStats
}

func newSPPIFO(capPkts, nbands int) *spPIFO {
	q := &spPIFO{
		bands:   make([]entryRing, nbands),
		bounds:  make([]Rank, nbands),
		bandCap: capPkts / nbands,
	}
	if q.bandCap < 1 {
		q.bandCap = 1
	}
	for i := range q.bands {
		q.bands[i].presize(q.bandCap)
	}
	return q
}

var _ rankQueue = (*spPIFO)(nil)

// admitBand runs the SP-PIFO mapping: it picks the band for rank r and
// applies the push-up/push-down bound adaptation. Shared by the Qdisc
// (real queues) and the Sched admitter (virtual occupancy), so both
// planes adapt bounds identically.
//
//fv:hotpath
func (q *spPIFO) admitBand(r Rank) int {
	for i := len(q.bounds) - 1; i >= 0; i-- {
		if r >= q.bounds[i] {
			if q.bounds[i] != r {
				q.bounds[i] = r
				q.st.PushUps++
			}
			q.repairBounds(i)
			return i
		}
	}
	// Push-down: shift the whole bound vector by the miss cost.
	cost := q.bounds[0] - r
	for i := range q.bounds {
		q.bounds[i] -= cost
	}
	q.st.PushDowns++
	return 0
}

// repairBounds restores the ascending-bounds invariant after a push-up
// on band i. SP-PIFO's scan order alone keeps bounds sorted in the
// paper's model; clamping makes that explicit and lets fvassert verify
// it cheaply.
//
//fv:hotpath
func (q *spPIFO) repairBounds(i int) {
	for j := i + 1; j < len(q.bounds); j++ {
		if q.bounds[j] >= q.bounds[j-1] {
			break
		}
		q.bounds[j] = q.bounds[j-1]
	}
	if fvassert.Enabled {
		for j := 1; j < len(q.bounds); j++ {
			if q.bounds[j] < q.bounds[j-1] {
				fvassert.Failf("pifo: sp-pifo bounds unsorted at %d: %d < %d", j, q.bounds[j], q.bounds[j-1])
			}
		}
	}
}

//fv:hotpath
func (q *spPIFO) push(e entry) (entry, bool) {
	band := q.admitBand(e.rank)
	if q.bands[band].len() >= q.bandCap {
		q.st.FullDrops++
		return entry{}, false
	}
	q.bands[band].push(e)
	q.st.Admitted++
	return entry{}, true
}

//fv:hotpath
func (q *spPIFO) pop() (entry, bool) {
	for i := range q.bands {
		if e, ok := q.bands[i].pop(); ok {
			return e, true
		}
	}
	return entry{}, false
}

//fv:hotpath
func (q *spPIFO) peek() (entry, bool) {
	for i := range q.bands {
		if e, ok := q.bands[i].peek(); ok {
			return e, true
		}
	}
	return entry{}, false
}

//fv:hotpath
func (q *spPIFO) len() int {
	n := 0
	for i := range q.bands {
		n += q.bands[i].len()
	}
	return n
}

func (q *spPIFO) stats() *QueueStats { return &q.st }
