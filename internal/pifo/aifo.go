package pifo

// admitScale precomputes AIFO's W/(1-θ): the admission test then needs
// only the windowed quantile count and the free fraction.
func admitScale(windowPkts int, headroom float64) float64 {
	if headroom < 0 {
		headroom = 0
	}
	if headroom > 0.9 {
		headroom = 0.9
	}
	return float64(windowPkts) / (1 - headroom)
}

// aifoAdmit is AIFO's admission predicate, shared by the Qdisc-plane
// queue (packet-counted occupancy) and the Sched-plane admitter
// (byte-counted virtual occupancy): admit iff the arriving rank's
// windowed quantile count fits the queue's free fraction inflated by
// the burst allowance, W·(1/(1-θ))·free >= countLess(r).
//
//fv:hotpath
func aifoAdmit(quantile int, scale, free float64) bool {
	if free <= 0 {
		return false
	}
	return float64(quantile) <= scale*free
}

// aifo is the AIFO backend ("programmable packet scheduling with a
// single queue"): one FIFO plus a windowed quantile admission filter.
// Well-ranked packets are admitted even when the queue is nearly full
// (they displace, in expectation, the tail of the rank distribution at
// admission time instead of at dequeue time); badly ranked packets are
// dropped early. Dequeue is plain FIFO — all reordering fidelity comes
// from admission.
type aifo struct {
	ring  entryRing
	win   *rankWindow
	cap   int
	scale float64
	st    QueueStats
}

func newAIFO(capPkts, windowPkts int, headroom float64) *aifo {
	q := &aifo{
		win:   newRankWindow(windowPkts),
		cap:   capPkts,
		scale: admitScale(windowPkts, headroom),
	}
	q.ring.presize(capPkts)
	return q
}

var _ rankQueue = (*aifo)(nil)

//fv:hotpath
func (q *aifo) push(e entry) (entry, bool) {
	k := q.ring.len()
	quantile := q.win.countLess(e.rank)
	q.win.observe(e.rank)
	if !aifoAdmit(quantile, q.scale, float64(q.cap-k)/float64(q.cap)) {
		if k >= q.cap {
			q.st.FullDrops++
		} else {
			q.st.RankDrops++
		}
		return entry{}, false
	}
	q.ring.push(e)
	q.st.Admitted++
	return entry{}, true
}

//fv:hotpath
func (q *aifo) pop() (entry, bool) { return q.ring.pop() }

//fv:hotpath
func (q *aifo) peek() (entry, bool) { return q.ring.peek() }

//fv:hotpath
func (q *aifo) len() int { return q.ring.len() }

func (q *aifo) stats() *QueueStats { return &q.st }
