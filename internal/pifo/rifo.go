package pifo

// rifoAdmit is RIFO's admission predicate, shared by the Qdisc-plane
// queue and the Sched-plane admitter: normalize the arriving rank
// against the windowed [lo, hi] range and admit iff the normalized
// position fits the queue's free fraction, (r-lo)/(hi-lo) <= free.
// Before the window has seen two distinct ranks the test degenerates to
// plain tail drop.
//
//fv:hotpath
func rifoAdmit(r, lo, hi Rank, seeded bool, free float64) bool {
	if free <= 0 {
		return false
	}
	if !seeded || hi == lo || r <= lo {
		return true
	}
	if r > hi {
		r = hi
	}
	return float64(r-lo) <= float64(hi-lo)*free
}

// rifo is the RIFO backend ("RIFO: Pushing the Efficiency of
// Programmable Packet Schedulers"): one FIFO plus a range-relative
// admission filter. Instead of AIFO's quantile, RIFO tracks only the
// min/max of the recent rank window — two registers instead of a
// quantile sketch, the paper's pitch being that this is cheap enough
// for any pipeline while staying close to AIFO's accuracy.
type rifo struct {
	ring entryRing
	win  *rankWindow
	cap  int
	st   QueueStats
}

func newRIFO(capPkts, windowPkts int) *rifo {
	q := &rifo{win: newRankWindow(windowPkts), cap: capPkts}
	q.ring.presize(capPkts)
	return q
}

var _ rankQueue = (*rifo)(nil)

//fv:hotpath
func (q *rifo) push(e entry) (entry, bool) {
	k := q.ring.len()
	lo, hi, seeded := q.win.bounds()
	q.win.observe(e.rank)
	if !rifoAdmit(e.rank, lo, hi, seeded, float64(q.cap-k)/float64(q.cap)) {
		if k >= q.cap {
			q.st.FullDrops++
		} else {
			q.st.RankDrops++
		}
		return entry{}, false
	}
	q.ring.push(e)
	q.st.Admitted++
	return entry{}, true
}

//fv:hotpath
func (q *rifo) pop() (entry, bool) { return q.ring.pop() }

//fv:hotpath
func (q *rifo) peek() (entry, bool) { return q.ring.peek() }

//fv:hotpath
func (q *rifo) len() int { return q.ring.len() }

func (q *rifo) stats() *QueueStats { return &q.st }
