package pifo

import "flowvalve/internal/telemetry"

// Drop reasons for fv_dropped_packets_total.
const (
	// dropRank is an arrival the admission filter rejected (rank window,
	// band overflow, horizon miss) or plain capacity tail drop.
	dropRank = "rank"
	// dropEvict is a queued packet displaced by a better-ranked arrival
	// (exact-PIFO drop-worst).
	dropEvict = "evict"
)

// qdiscTel holds a backend's attached metric handles. The DES drives the
// Qdisc single-threaded, so the atomic instruments are updated without
// contention while remaining safe to scrape from another goroutine. A
// nil *qdiscTel (telemetry not attached) is a no-op on every method.
type qdiscTel struct {
	enqueued       *telemetry.Counter
	delivered      *telemetry.Counter
	deliveredBytes *telemetry.Counter
	droppedRank    *telemetry.Counter
	droppedEvict   *telemetry.Counter
	inversions     *telemetry.Counter
}

func (t *qdiscTel) enq() {
	if t != nil {
		t.enqueued.Inc()
	}
}

func (t *qdiscTel) deliver(wireBytes int) {
	if t != nil {
		t.delivered.Inc()
		t.deliveredBytes.Add(int64(wireBytes))
	}
}

func (t *qdiscTel) drop(reason string) {
	if t == nil {
		return
	}
	if reason == dropEvict {
		t.droppedEvict.Inc()
		return
	}
	t.droppedRank.Inc()
}

func (t *qdiscTel) inversion() {
	if t != nil {
		t.inversions.Inc()
	}
}

// AttachTelemetry wires the backend into a metrics registry. Families
// shared with the other schedulers carry {scheduler=<backend name>} so
// the whole family can be compared by selecting on one label:
//
//	fv_enqueued_packets_total{scheduler}        admissions into the structure
//	fv_delivered_packets_total{scheduler}       wire deliveries
//	fv_delivered_bytes_total{scheduler}         wire delivered bytes
//	fv_dropped_packets_total{scheduler,reason}  reason ∈ rank, evict
//	fv_pifo_inversions_total{scheduler}         better-ranked co-resident overtaken
//	fv_pifo_admission_drops_total{scheduler,reason}  structure's own filter counters
//	fv_pifo_bound_adaptations_total{scheduler,direction}  SP-PIFO push-up/push-down
//	fv_pifo_backlog_packets{scheduler}          current structure occupancy
//
// The fv_pifo_admission/bound/backlog families are callback-backed: they
// read the structure's own counters at scrape time, so the admit path
// pays nothing for them.
func (q *Qdisc) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		q.tel = nil
		return
	}
	sched := telemetry.Label{Key: "scheduler", Value: q.cfg.Backend}
	drop := func(reason string) *telemetry.Counter {
		return reg.Counter("fv_dropped_packets_total",
			"Packets dropped, by scheduler and reason.",
			sched, telemetry.Label{Key: "reason", Value: reason})
	}
	admission := func(reason string, read func(*QueueStats) uint64) {
		st := q.rq.stats()
		reg.CounterFunc("fv_pifo_admission_drops_total",
			"Arrivals rejected by the backend structure's admission filter, by reason.",
			func() float64 { return float64(read(st)) },
			sched, telemetry.Label{Key: "reason", Value: reason})
	}
	q.tel = &qdiscTel{
		enqueued: reg.Counter("fv_enqueued_packets_total",
			"Packets accepted into the scheduling structure.", sched),
		delivered: reg.Counter("fv_delivered_packets_total",
			"Packets that finished transmitting on the wire.", sched),
		deliveredBytes: reg.Counter("fv_delivered_bytes_total",
			"Frame bytes that finished transmitting on the wire.", sched),
		droppedRank:  drop(dropRank),
		droppedEvict: drop(dropEvict),
		inversions: reg.Counter("fv_pifo_inversions_total",
			"Dequeues that overtook a better-ranked co-resident packet.", sched),
	}
	admission("rank", func(st *QueueStats) uint64 { return st.RankDrops })
	admission("full", func(st *QueueStats) uint64 { return st.FullDrops })
	admission("evict", func(st *QueueStats) uint64 { return st.EvictDrops })
	st := q.rq.stats()
	adaptation := func(direction string, read func(*QueueStats) uint64) {
		reg.CounterFunc("fv_pifo_bound_adaptations_total",
			"SP-PIFO rank-bound adaptations, by direction.",
			func() float64 { return float64(read(st)) },
			sched, telemetry.Label{Key: "direction", Value: direction})
	}
	adaptation("up", func(st *QueueStats) uint64 { return st.PushUps })
	adaptation("down", func(st *QueueStats) uint64 { return st.PushDowns })
	reg.GaugeFunc("fv_pifo_backlog_packets",
		"Packets currently held in the scheduling structure.",
		func() float64 { return float64(q.rq.len()) }, sched)
}
