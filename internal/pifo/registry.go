package pifo

import (
	"fmt"
	"strings"

	"flowvalve/internal/packet"
)

// Backend registry names.
const (
	BackendPIFO     = "pifo"
	BackendSPPIFO   = "sppifo"
	BackendAIFO     = "aifo"
	BackendRIFO     = "rifo"
	BackendEiffel   = "eiffel"
	BackendTaildrop = "fvrank"
)

// Spec describes one registered backend. The registry is the single
// source of truth for the family: command help strings, builder
// switches, and the experiments accuracy lab all derive their backend
// lists from here instead of repeating them.
type Spec struct {
	// Name is the flag/registry identifier.
	Name string
	// Doc is a one-line description for help text and reports.
	Doc string
}

// Backends lists the scheduler family in registry (accuracy-report)
// order, the exact oracle first.
func Backends() []Spec {
	return []Spec{
		{BackendPIFO, "exact PIFO: binary min-heap, O(log n), ground-truth oracle"},
		{BackendSPPIFO, "SP-PIFO: strict-priority FIFO bank with push-up/push-down rank bounds"},
		{BackendAIFO, "AIFO: single FIFO, sliding-window quantile admission"},
		{BackendRIFO, "RIFO: single FIFO, windowed min/max range admission"},
		{BackendEiffel, "Eiffel: bucketed find-first-set queues, O(1) approximate PIFO"},
		{BackendTaildrop, "FlowValve tail drop as a rank function over one FIFO"},
	}
}

// BackendNames returns the registry names in order.
func BackendNames() []string {
	specs := Backends()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// BackendList returns the names joined for flag help text, e.g.
// "pifo | sppifo | aifo | rifo | eiffel | fvrank".
func BackendList() string {
	return strings.Join(BackendNames(), " | ")
}

// IsBackend reports whether name is a registered pifo-family backend.
func IsBackend(name string) bool {
	for _, s := range Backends() {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Config parameterizes one backend instance. The zero value plus
// Defaults() gives a 1024-packet queue on a 40 Gbps wire with the
// published structure sizes (8 SP-PIFO bands, 256 Eiffel buckets,
// 64-packet AIFO/RIFO windows).
type Config struct {
	// Backend selects the queueing structure (see Backends).
	Backend string
	// LinkRateBps is the drain rate of the simulated wire.
	LinkRateBps float64
	// CapPkts bounds total queued packets across the structure.
	CapPkts int
	// Bands is the SP-PIFO queue-bank width.
	Bands int
	// Buckets is the Eiffel bucket count (rounded up to a power of two).
	Buckets int
	// BucketNs is the Eiffel bucket width in rank units.
	BucketNs int64
	// WindowPkts is the AIFO/RIFO sliding rank-window length.
	WindowPkts int
	// Headroom is AIFO's burst allowance θ in [0, 0.9].
	Headroom float64
	// HorizonNs is the fvrank (taildrop) admission horizon: packets
	// whose rank is more than this far in the future are dropped.
	HorizonNs int64
	// OnDequeue, when set, observes every delivered packet with its
	// admission rank in dequeue order — the accuracy lab's trace tap.
	OnDequeue func(p *packet.Packet, r Rank)
}

// Defaults fills unset fields.
func (c *Config) Defaults() {
	if c.Backend == "" {
		c.Backend = BackendPIFO
	}
	if c.LinkRateBps == 0 {
		c.LinkRateBps = 40e9
	}
	if c.CapPkts == 0 {
		c.CapPkts = 1024
	}
	if c.Bands == 0 {
		c.Bands = 8
	}
	if c.Buckets == 0 {
		c.Buckets = 256
	}
	if c.BucketNs == 0 {
		// ~one 1500B slot at 1 Gbps per bucket: coarse enough that the
		// default window spans several ms of deadline spread.
		c.BucketNs = 16384
	}
	if c.WindowPkts == 0 {
		c.WindowPkts = 64
	}
	if c.Headroom == 0 {
		c.Headroom = 0.1
	}
	if c.HorizonNs == 0 {
		c.HorizonNs = 1_000_000
	}
}

// validate rejects nonsensical configurations after Defaults.
func (c *Config) validate() error {
	if !IsBackend(c.Backend) {
		return fmt.Errorf("pifo: unknown backend %q (want %s)", c.Backend, BackendList())
	}
	if c.LinkRateBps <= 0 {
		return fmt.Errorf("pifo: non-positive link rate")
	}
	if c.CapPkts <= 0 || c.Bands <= 0 || c.Buckets <= 0 || c.WindowPkts <= 0 {
		return fmt.Errorf("pifo: non-positive structure size")
	}
	return nil
}

// newQueue builds the configured rankQueue. nowNs supplies the
// admission clock for time-dependent backends (fvrank).
func newQueue(cfg *Config, nowNs func() int64) (rankQueue, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Backend {
	case BackendPIFO:
		return newExactPIFO(cfg.CapPkts), nil
	case BackendSPPIFO:
		return newSPPIFO(cfg.CapPkts, cfg.Bands), nil
	case BackendAIFO:
		return newAIFO(cfg.CapPkts, cfg.WindowPkts, cfg.Headroom), nil
	case BackendRIFO:
		return newRIFO(cfg.CapPkts, cfg.WindowPkts), nil
	case BackendEiffel:
		return newEiffel(cfg.CapPkts, cfg.Buckets, cfg.BucketNs), nil
	case BackendTaildrop:
		return newTaildrop(cfg.CapPkts, cfg.HorizonNs, nowNs), nil
	}
	return nil, fmt.Errorf("pifo: unknown backend %q (want %s)", cfg.Backend, BackendList())
}
