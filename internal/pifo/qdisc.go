package pifo

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/fvassert"
	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// Qdisc is the discrete-event face of one pifo-family backend: packets
// are ranked by the policy at Enqueue, held in the backend's queueing
// structure, and drained to a fixed-rate wire in the backend's order.
// It implements the same dataplane contract as the NIC model and the
// kernel baselines, so every experiment harness can drive the whole
// family unchanged.
type Qdisc struct {
	eng *sim.Engine
	cfg Config
	pol Policy
	cb  dataplane.Callbacks
	rq  rankQueue

	seq        uint64
	wireFreeNs int64
	draining   bool

	stats      dataplane.Stats
	inversions uint64

	tel *qdiscTel
}

// NewQdisc builds a backend instance. The policy instance must be
// exclusive to this Qdisc (policies carry virtual-clock state).
func NewQdisc(eng *sim.Engine, cfg Config, pol Policy, cb dataplane.Callbacks) (*Qdisc, error) {
	if eng == nil || pol == nil {
		return nil, fmt.Errorf("pifo: nil engine or policy")
	}
	cfg.Defaults()
	q := &Qdisc{eng: eng, cfg: cfg, pol: pol, cb: cb}
	rq, err := newQueue(&cfg, eng.Now)
	if err != nil {
		return nil, err
	}
	q.rq = rq
	return q, nil
}

// Backend returns the registry name of the queueing structure.
func (q *Qdisc) Backend() string { return q.cfg.Backend }

// Inversions counts dequeues that overtook a better-ranked co-resident
// packet: after popping an entry, a strictly lower rank was still
// queued. The exact PIFO's count is zero by the heap property — the
// approximate backends pay their structure's scheduling error here.
// (The check inspects only the structure's next-best entry, so it is a
// cheap O(1) lower bound on the full pairwise inversion count.)
func (q *Qdisc) Inversions() uint64 { return q.inversions }

// QueueStats exposes the structure's admission/adaptation counters.
func (q *Qdisc) QueueStats() QueueStats { return *q.rq.stats() }

// Enqueue ranks and admits one packet at the current simulation time.
func (q *Qdisc) Enqueue(p *packet.Packet) {
	r := q.pol.PacketRank(p, q.eng.Now())
	e := entry{rank: r, seq: q.seq, pkt: p}
	q.seq++
	evicted, admitted := q.rq.push(e)
	if evicted.pkt != nil {
		// A queued packet lost its slot to a better-ranked arrival
		// (exact-PIFO drop-worst). It was counted Enqueued when it was
		// admitted; account the drop now.
		q.stats.Dropped++
		q.tel.drop(dropEvict)
		if q.cb.OnDrop != nil {
			q.cb.OnDrop(evicted.pkt)
		}
	}
	if !admitted {
		q.stats.Dropped++
		q.tel.drop(dropRank)
		if q.cb.OnDrop != nil {
			q.cb.OnDrop(p)
		}
		return
	}
	q.stats.Enqueued++
	q.tel.enq()
	if !q.draining {
		q.draining = true
		q.eng.After(0, q.drain)
	}
}

// drain transmits the backend's best-ranked packet whenever the wire is
// free, exactly like the PRIO and DPDK baselines' service loops.
func (q *Qdisc) drain() {
	now := q.eng.Now()
	if now < q.wireFreeNs {
		q.eng.At(q.wireFreeNs, q.drain)
		return
	}
	e, ok := q.rq.pop()
	if !ok {
		q.draining = false
		return
	}
	if fvassert.Enabled && e.pkt == nil {
		fvassert.Failf("pifo: %s popped entry without a packet", q.cfg.Backend)
	}
	if next, ok := q.rq.peek(); ok && next.rank < e.rank {
		q.inversions++
		q.tel.inversion()
		if q.cfg.Backend == BackendPIFO && fvassert.Enabled {
			fvassert.Failf("pifo: exact oracle dequeued rank %d over queued rank %d", e.rank, next.rank)
		}
	}
	txNs := int64(float64(e.pkt.WireBytes()*8) / q.cfg.LinkRateBps * 1e9)
	q.wireFreeNs = now + txNs
	done := q.wireFreeNs
	q.eng.At(done, func() {
		q.deliver(e, done)
		q.drain()
	})
}

// deliver finishes one transmission: stats, rank-trace tap, harness
// callback.
func (q *Qdisc) deliver(e entry, done int64) {
	e.pkt.EgressAt = done
	q.stats.Delivered++
	q.tel.deliver(e.pkt.WireBytes())
	if q.cfg.OnDequeue != nil {
		q.cfg.OnDequeue(e.pkt, e.rank)
	}
	if q.cb.OnDeliver != nil {
		q.cb.OnDeliver(e.pkt)
	}
}

// Backlog implements dataplane.Backlogger.
func (q *Qdisc) Backlog() int { return q.rq.len() }

// QdiscStats implements dataplane.Qdisc.
func (q *Qdisc) QdiscStats() dataplane.Stats { return q.stats }

// Compile-time capability checks; like the kernel baselines the family
// is driven through interface probes, never concrete types.
var (
	_ dataplane.Qdisc         = (*Qdisc)(nil)
	_ dataplane.Backlogger    = (*Qdisc)(nil)
	_ dataplane.TelemetrySink = (*Qdisc)(nil)
)
