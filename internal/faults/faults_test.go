package faults

import (
	"reflect"
	"testing"

	"flowvalve/internal/sim"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"valid core-stall", Event{Kind: KindCoreStall, AtNs: 0, DurationNs: 1e6, Cores: 4}, true},
		{"core-stall no cores", Event{Kind: KindCoreStall, DurationNs: 1e6}, false},
		{"core-stall no duration", Event{Kind: KindCoreStall, Cores: 4}, false},
		{"valid cache-flush", Event{Kind: KindCacheFlush, AtNs: 5}, true},
		{"cache-flush repeat no period", Event{Kind: KindCacheFlush, Repeat: 3}, false},
		{"valid rx-overflow", Event{Kind: KindRxOverflow, DurationNs: 1e6, RingCap: 8}, true},
		{"rx-overflow no cap", Event{Kind: KindRxOverflow, DurationNs: 1e6}, false},
		{"valid clock-jitter", Event{Kind: KindClockJitter, DurationNs: 1e6, JitterNs: 1000}, true},
		{"clock-jitter no amp", Event{Kind: KindClockJitter, DurationNs: 1e6}, false},
		{"valid epoch-delay", Event{Kind: KindEpochDelay, DurationNs: 1e6, DelayNs: 100}, true},
		{"epoch-delay no delay", Event{Kind: KindEpochDelay, DurationNs: 1e6}, false},
		{"prob out of range", Event{Kind: KindEpochDrop, DurationNs: 1e6, Prob: 1.5}, false},
		{"negative at", Event{Kind: KindEpochDrop, AtNs: -1, DurationNs: 1e6}, false},
		{"unknown kind", Event{Kind: "meteor-strike", DurationNs: 1e6}, false},
	}
	for _, c := range cases {
		p := Plan{Events: []Event{c.ev}}
		err := p.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestParsePlanJSON(t *testing.T) {
	data := []byte(`{
	  "seed": 7,
	  "events": [
	    {"kind": "core-stall", "at_ns": 1000, "duration_ns": 500, "cores": 16},
	    {"kind": "epoch-drop", "at_ns": 1200, "duration_ns": 400, "prob": 1, "classes": ["A"]}
	  ]
	}`)
	p, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Events) != 2 {
		t.Fatalf("parsed plan = %+v", p)
	}
	if !p.Has(KindCoreStall) || !p.Has(KindEpochDrop) || p.Has(KindCacheFlush) {
		t.Fatal("Has misreports kinds")
	}
	if got := p.EndNs(); got != 1600 {
		t.Fatalf("EndNs = %d, want 1600", got)
	}
	if _, err := ParsePlan([]byte(`{"events":[{"kind":"nope"}]}`)); err == nil {
		t.Fatal("invalid plan parsed")
	}
}

func TestEventEndNs(t *testing.T) {
	e := Event{Kind: KindCacheFlush, AtNs: 100, Repeat: 4, PeriodNs: 50}
	if got := e.EndNs(); got != 250 {
		t.Fatalf("cache-flush EndNs = %d, want 250", got)
	}
	w := Event{Kind: KindCoreStall, AtNs: 100, DurationNs: 300, Cores: 2}
	if got := w.EndNs(); got != 400 {
		t.Fatalf("core-stall EndNs = %d, want 400", got)
	}
}

// RandomPlan must be a pure function of its seed: two generations from
// the same seed are identical, distinct seeds differ, every family is
// present, and every effect lands inside the requested span.
func TestRandomPlanDeterministic(t *testing.T) {
	const from, to = int64(1e9), int64(2e9)
	a := RandomPlan(42, from, to)
	b := RandomPlan(42, from, to)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := RandomPlan(43, from, to)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	for _, k := range Kinds() {
		if !a.Has(k) {
			t.Fatalf("random plan missing kind %s", k)
		}
	}
	for i := range a.Events {
		e := &a.Events[i]
		if e.AtNs < from || e.EndNs() > to {
			t.Fatalf("event %s [%d,%d] escapes span [%d,%d]", e.Kind, e.AtNs, e.EndNs(), from, to)
		}
	}
}

// fakeNIC implements every NIC-scoped hook and records the calls.
type fakeNIC struct {
	stalls  []int
	flushes int
	clamped int
	clamps  int
	unclamp int
}

func (f *fakeNIC) StallCores(n int, durNs int64) { f.stalls = append(f.stalls, n) }
func (f *fakeNIC) FlushFlowCache()               { f.flushes++ }
func (f *fakeNIC) ClampRxRings(maxPkts int)      { f.clamped = maxPkts; f.clamps++ }
func (f *fakeNIC) UnclampRxRings()               { f.unclamp++ }

func TestInjectorArmSchedulesEvents(t *testing.T) {
	eng := sim.New()
	plan := Plan{Seed: 1, Events: []Event{
		{Kind: KindCoreStall, AtNs: 100, DurationNs: 50, Cores: 8},
		{Kind: KindCacheFlush, AtNs: 200, Repeat: 3, PeriodNs: 10},
		{Kind: KindRxOverflow, AtNs: 300, DurationNs: 50, RingCap: 4},
	}}
	inj, err := NewInjector(eng, plan)
	if err != nil {
		t.Fatal(err)
	}
	nic := &fakeNIC{}
	inj.Register(nic)
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err == nil {
		t.Fatal("double Arm succeeded")
	}
	eng.RunUntil(1000)
	if len(nic.stalls) != 1 || nic.stalls[0] != 8 {
		t.Fatalf("stalls = %v", nic.stalls)
	}
	if nic.flushes != 3 {
		t.Fatalf("flushes = %d, want 3", nic.flushes)
	}
	if nic.clamps != 1 || nic.clamped != 4 || nic.unclamp != 1 {
		t.Fatalf("clamp calls = %d/%d/%d", nic.clamps, nic.clamped, nic.unclamp)
	}
	st := inj.Stats()
	if st.Injected[KindCoreStall] != 1 || st.Injected[KindCacheFlush] != 3 || st.Injected[KindRxOverflow] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Total() != 5 {
		t.Fatalf("total = %d, want 5", st.Total())
	}
}

func TestInjectorArmRequiresTargets(t *testing.T) {
	eng := sim.New()
	plan := Plan{Events: []Event{
		{Kind: KindCoreStall, AtNs: 0, DurationNs: 10, Cores: 1},
	}}
	inj, err := NewInjector(eng, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err == nil {
		t.Fatal("Arm with no registered targets succeeded")
	}
}

func TestNewInjectorValidates(t *testing.T) {
	eng := sim.New()
	if _, err := NewInjector(eng, Plan{Events: []Event{{Kind: "bad"}}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if _, err := NewInjector(nil, Plan{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestShardIndex(t *testing.T) {
	for _, tc := range []struct {
		in string
		k  int
		ok bool
	}{
		{"shard0", 0, true},
		{"shard3", 3, true},
		{"shard17", 17, true},
		{"shard", 0, false},
		{"shardx", 0, false},
		{"shard-1", 0, false},
		{"shard03x", 0, false},
		{"0", 0, false},
		{"", 0, false},
		{"Shard0", 0, false},
		{"shard99999999999999999999", 0, false},
	} {
		k, ok := ShardIndex(tc.in)
		if ok != tc.ok || (ok && k != tc.k) {
			t.Errorf("ShardIndex(%q) = (%d, %v), want (%d, %v)", tc.in, k, ok, tc.k, tc.ok)
		}
	}
}

func TestPlanValidateShardTargets(t *testing.T) {
	good := Plan{Events: []Event{
		{Kind: KindLockContention, AtNs: 0, DurationNs: 10, Shard: "shard2"},
		{Kind: KindEpochDrop, AtNs: 0, DurationNs: 10},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid shard-targeted plan rejected: %v", err)
	}
	malformed := Plan{Events: []Event{
		{Kind: KindEpochDelay, AtNs: 0, DurationNs: 10, DelayNs: 5, Shard: "shard-two"},
	}}
	if err := malformed.Validate(); err == nil {
		t.Fatal("malformed shard name accepted")
	}
	nicScoped := Plan{Events: []Event{
		{Kind: KindRxOverflow, AtNs: 0, DurationNs: 10, RingCap: 4, Shard: "shard0"},
	}}
	if err := nicScoped.Validate(); err == nil {
		t.Fatal("shard targeting on a NIC-scoped kind accepted")
	}
}
