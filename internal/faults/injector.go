package faults

import (
	"fmt"
	"sync/atomic"

	"flowvalve/internal/sim"
	"flowvalve/internal/telemetry"
	"flowvalve/internal/token"
)

// The hook interfaces below are the injector's capability probes: a
// component handed to Register is asked, by type assertion, which fault
// surfaces it exposes. The NIC model implements the first three, the
// core scheduler implements SchedulerSink, and token.JitteredClock is
// probed as a concrete type (the clock hook lives below the interface
// layer on purpose — the scheduler must not know its clock is faulty).

// CoreStaller exposes worker-context stalls (the NIC's service loop).
type CoreStaller interface {
	// StallCores parks up to n worker contexts for durNs: idle contexts
	// immediately, busy ones as their current routine completes.
	StallCores(n int, durNs int64)
}

// CacheFlusher exposes flow-cache invalidation (the NIC's classifier).
type CacheFlusher interface {
	// FlushFlowCache empties the exact-match flow cache, forcing the
	// slow-path lookup (and its cycle cost) for every active flow.
	FlushFlowCache()
}

// RingClamper exposes Rx-ring capacity clamping (overflow bursts).
type RingClamper interface {
	// ClampRxRings caps every per-VF ring at maxPkts packets.
	ClampRxRings(maxPkts int)
	// UnclampRxRings restores the configured ring capacity.
	UnclampRxRings()
}

// SchedulerCounts are the scheduler-scoped injected-fault counters.
type SchedulerCounts struct {
	// LockMisses counts try-lock failures injected by lock-contention
	// windows.
	LockMisses int64
	// DroppedEpochs counts update attempts suppressed by epoch-drop
	// windows.
	DroppedEpochs int64
	// DelayedEpochs counts update attempts deferred by epoch-delay
	// windows.
	DelayedEpochs int64
}

// SchedulerSink is implemented by scheduling functions that evaluate
// pull-model fault windows on their own clock (core.Scheduler).
type SchedulerSink interface {
	// ApplyFaults installs the plan's scheduler-scoped windows. It
	// replaces any previously applied plan.
	ApplyFaults(p *Plan) error
	// ClearFaults removes every installed window.
	ClearFaults()
	// InjectedFaults reports the cumulative injected-fault counters.
	InjectedFaults() SchedulerCounts
}

// Stats reports how many faults the injector (and its registered
// scheduler sink) actually injected, per kind.
type Stats struct {
	Injected map[Kind]int64
}

// Total sums the injected-fault counters across kinds.
func (s Stats) Total() int64 {
	var n int64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// Injector applies one Plan to the components registered with it: it
// schedules the NIC-scoped events on the sim engine and installs the
// pull-model windows on the scheduler sink and jitter clock at Arm time.
type Injector struct {
	eng  *sim.Engine
	plan Plan

	stall CoreStaller
	flush CacheFlusher
	clamp RingClamper
	sched SchedulerSink
	clock *token.JitteredClock

	armed bool
	// Event counters for the push-model kinds (atomic: telemetry scrapes
	// from outside the DES goroutine).
	nStalls  atomic.Int64
	nFlushes atomic.Int64
	nClamps  atomic.Int64
	nJitter  atomic.Int64
}

// NewInjector validates the plan and binds it to the engine that will
// carry its timed events.
func NewInjector(eng *sim.Engine, plan Plan) (*Injector, error) {
	if eng == nil {
		return nil, fmt.Errorf("faults: nil engine")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{eng: eng, plan: plan}, nil
}

// Plan returns a copy of the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Register probes target for every fault surface it exposes and binds
// the matching hooks. Call it with the NIC, the scheduler, and the
// jitter clock (in any order) before Arm; a later registration of the
// same capability replaces the earlier one (policy hot-swap).
func (in *Injector) Register(target any) {
	if t, ok := target.(CoreStaller); ok {
		in.stall = t
	}
	if t, ok := target.(CacheFlusher); ok {
		in.flush = t
	}
	if t, ok := target.(RingClamper); ok {
		in.clamp = t
	}
	if t, ok := target.(SchedulerSink); ok {
		in.sched = t
	}
	if t, ok := target.(*token.JitteredClock); ok {
		in.clock = t
	}
}

// JitterWindows converts the plan's clock-jitter events to the jitter
// clock's window format.
func (p *Plan) JitterWindows() []token.JitterWindow {
	var out []token.JitterWindow
	for _, e := range p.EventsOf(KindClockJitter) {
		out = append(out, token.JitterWindow{
			FromNs: e.AtNs,
			ToNs:   e.AtNs + e.DurationNs,
			AmpNs:  e.JitterNs,
		})
	}
	return out
}

// MaxJitterNs returns the largest clock-jitter amplitude in the plan —
// the slack conformance assertions must grant the token supply.
func (p *Plan) MaxJitterNs() int64 {
	var amp int64
	for i := range p.Events {
		if p.Events[i].Kind == KindClockJitter && p.Events[i].JitterNs > amp {
			amp = p.Events[i].JitterNs
		}
	}
	return amp
}

// Arm schedules every NIC-scoped event on the engine and installs the
// pull-model windows. It fails if a planned fault kind found no
// registered target, so a plan can never silently half-apply.
func (in *Injector) Arm() error {
	if in.armed {
		return fmt.Errorf("faults: injector already armed")
	}
	var missing []Kind
	need := func(k Kind, ok bool) {
		if in.plan.Has(k) && !ok {
			missing = append(missing, k)
		}
	}
	need(KindCoreStall, in.stall != nil)
	need(KindCacheFlush, in.flush != nil)
	need(KindRxOverflow, in.clamp != nil)
	need(KindClockJitter, in.clock != nil)
	need(KindLockContention, in.sched != nil)
	need(KindEpochDrop, in.sched != nil)
	need(KindEpochDelay, in.sched != nil)
	if len(missing) > 0 {
		return fmt.Errorf("faults: no registered target for fault kinds %v", missing)
	}

	now := in.eng.Now()
	at := func(t int64, fn func()) {
		if t < now {
			t = now
		}
		in.eng.At(t, fn)
	}
	for _, e := range in.plan.Events {
		e := e
		switch e.Kind {
		case KindCoreStall:
			at(e.AtNs, func() {
				in.nStalls.Add(1)
				in.stall.StallCores(e.Cores, e.DurationNs)
			})
		case KindCacheFlush:
			n := e.Repeat
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				at(e.AtNs+int64(i)*e.PeriodNs, func() {
					in.nFlushes.Add(1)
					in.flush.FlushFlowCache()
				})
			}
		case KindRxOverflow:
			at(e.AtNs, func() {
				in.nClamps.Add(1)
				in.clamp.ClampRxRings(e.RingCap)
			})
			at(e.AtNs+e.DurationNs, func() { in.clamp.UnclampRxRings() })
		case KindClockJitter:
			in.nJitter.Add(1)
		}
	}
	if in.clock != nil {
		in.clock.SetJitter(in.plan.Seed, in.plan.JitterWindows())
	}
	if in.sched != nil {
		if err := in.sched.ApplyFaults(&in.plan); err != nil {
			return err
		}
	}
	in.armed = true
	return nil
}

// Stats reports the injected-fault counters, merging the scheduler
// sink's pull-model counts with the injector's own event counts.
func (in *Injector) Stats() Stats {
	s := Stats{Injected: map[Kind]int64{
		KindCoreStall:   in.nStalls.Load(),
		KindCacheFlush:  in.nFlushes.Load(),
		KindRxOverflow:  in.nClamps.Load(),
		KindClockJitter: in.nJitter.Load(),
	}}
	if in.sched != nil {
		c := in.sched.InjectedFaults()
		s.Injected[KindLockContention] = c.LockMisses
		s.Injected[KindEpochDrop] = c.DroppedEpochs
		s.Injected[KindEpochDelay] = c.DelayedEpochs
	}
	return s
}

// AttachTelemetry registers the fv_faults_injected_total counter family,
// one instance per fault kind, reading the live counters at scrape time.
func (in *Injector) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, k := range Kinds() {
		k := k
		reg.CounterFunc("fv_faults_injected_total",
			"Faults injected by the chaos subsystem.",
			func() float64 { return float64(in.Stats().Injected[k]) },
			telemetry.Label{Key: "kind", Value: string(k)})
	}
}
