// Package faults implements deterministic fault injection for the NP
// dataplane model: seeded, timed fault plans (worker-core stalls,
// flow-cache flushes, Rx-ring overflow bursts, token-clock jitter,
// lock-contention amplification, dropped/delayed epoch updates) and the
// injector that applies them to the components exposing fault hooks.
//
// The subsystem exists to test FlowValve's headline property —
// correctness under parallelism. The paper's scheduling function must
// converge even when micro-engines stall and epoch updates are delayed
// (§IV, Fig 14); a production NP deployment additionally survives cache
// eviction storms and ring overflow. A Plan turns each of those
// misbehaviours into a reproducible experiment: every draw the subsystem
// makes comes from a splitmix64 stream over Plan.Seed, so a chaos run is
// byte-for-byte repeatable and a failure seed is a complete bug report.
//
// Two injection models cover the two execution modes:
//
//   - NIC-scoped faults (core-stall, cache-flush, rx-overflow) are
//     discrete events: the Injector schedules them on the sim engine and
//     calls the hooks the NIC exposes.
//   - Scheduler- and clock-scoped faults (lock-contention, epoch-drop,
//     epoch-delay, clock-jitter) are pull-model windows evaluated against
//     the component's own clock, so they work identically under the DES
//     and under wall time (the facade's live datapath).
//
// The fault-free fast path stays at zero overhead: with no plan applied
// the scheduler performs one nil-check per Schedule/ScheduleBatch call
// and the NIC hooks are empty-slice checks (pinned by
// BenchmarkScheduleBatch32NoFaults).
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Kind names one fault family.
type Kind string

const (
	// KindCoreStall parks worker micro-engine contexts for the window:
	// idle contexts are stolen immediately, busy ones as they complete.
	KindCoreStall Kind = "core-stall"
	// KindCacheFlush empties the exact-match flow cache (an eviction
	// storm when repeated with Repeat/PeriodNs).
	KindCacheFlush Kind = "cache-flush"
	// KindRxOverflow clamps the per-VF Rx rings to RingCap packets for
	// the window, forcing overflow drops under load.
	KindRxOverflow Kind = "rx-overflow"
	// KindClockJitter perturbs the token clock source by up to ±JitterNs
	// inside the window (monotonicity preserved).
	KindClockJitter Kind = "clock-jitter"
	// KindLockContention makes per-class try-lock epoch updates fail
	// with probability Prob inside the window — contention amplification
	// without real lock holders.
	KindLockContention Kind = "lock-contention"
	// KindEpochDrop suppresses due epoch updates with probability Prob
	// inside the window; lastUpdate does not advance, so affected
	// classes starve until the window clears (the watchdog's case).
	KindEpochDrop Kind = "epoch-drop"
	// KindEpochDelay stretches the effective epoch by DelayNs inside the
	// window: updates run only once interval+DelayNs has elapsed.
	KindEpochDelay Kind = "epoch-delay"
)

// Kinds lists every fault family in a stable order.
func Kinds() []Kind {
	return []Kind{
		KindCoreStall, KindCacheFlush, KindRxOverflow, KindClockJitter,
		KindLockContention, KindEpochDrop, KindEpochDelay,
	}
}

// Valid reports whether k names a known fault family.
func (k Kind) Valid() bool {
	switch k {
	case KindCoreStall, KindCacheFlush, KindRxOverflow, KindClockJitter,
		KindLockContention, KindEpochDrop, KindEpochDelay:
		return true
	}
	return false
}

// SchedulerScoped reports whether the fault is applied inside the
// scheduling function (pull-model window) rather than on the NIC model.
func (k Kind) SchedulerScoped() bool {
	switch k {
	case KindLockContention, KindEpochDrop, KindEpochDelay:
		return true
	}
	return false
}

// Event is one timed fault. Which parameter fields matter depends on
// Kind; Validate enforces the per-kind requirements.
type Event struct {
	// Kind selects the fault family.
	Kind Kind `json:"kind"`
	// AtNs is the (virtual) time the fault begins.
	AtNs int64 `json:"at_ns"`
	// DurationNs is the window length. Required for every kind except
	// cache-flush (instantaneous).
	DurationNs int64 `json:"duration_ns,omitempty"`
	// Cores is the number of worker contexts a core-stall parks.
	Cores int `json:"cores,omitempty"`
	// Repeat re-fires an instantaneous fault (cache-flush) this many
	// times in total, PeriodNs apart — an eviction storm.
	Repeat int `json:"repeat,omitempty"`
	// PeriodNs is the spacing of the Repeat re-fires.
	PeriodNs int64 `json:"period_ns,omitempty"`
	// RingCap is the clamped Rx-ring capacity (packets) of rx-overflow.
	RingCap int `json:"ring_cap,omitempty"`
	// JitterNs is the clock-jitter amplitude (±).
	JitterNs int64 `json:"jitter_ns,omitempty"`
	// Prob is the per-attempt injection probability of lock-contention
	// and epoch-drop, in [0,1]; 0 means 1 (always).
	Prob float64 `json:"prob,omitempty"`
	// DelayNs is the epoch stretch of epoch-delay.
	DelayNs int64 `json:"delay_ns,omitempty"`
	// Classes restricts a scheduler-scoped fault to the named classes
	// (empty = every class).
	Classes []string `json:"classes,omitempty"`
	// Shard restricts a scheduler-scoped fault to one scheduler shard,
	// named "shard0".."shardN-1" (empty = every shard). A single-shard
	// scheduler is "shard0", so plans stay valid across shard counts.
	Shard string `json:"shard,omitempty"`
}

// ShardIndex parses a Shard field of the form "shard<k>", reporting the
// index and whether the name is well-formed.
func ShardIndex(s string) (int, bool) {
	const prefix = "shard"
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return 0, false
	}
	k := 0
	for i := len(prefix); i < len(s); i++ {
		d := s[i]
		if d < '0' || d > '9' || k > (1<<30) {
			return 0, false
		}
		k = k*10 + int(d-'0')
	}
	return k, true
}

// EndNs returns the instant the event's effect ends.
func (e *Event) EndNs() int64 {
	end := e.AtNs + e.DurationNs
	if e.Kind == KindCacheFlush && e.Repeat > 1 {
		if t := e.AtNs + int64(e.Repeat-1)*e.PeriodNs; t > end {
			end = t
		}
	}
	return end
}

// EffectiveProb returns the event's injection probability with the
// zero-means-always default applied.
func (e *Event) EffectiveProb() float64 {
	if e.Prob <= 0 {
		return 1
	}
	return e.Prob
}

// Plan is a deterministic, seeded schedule of fault events. The zero
// value (no events) is a valid no-op plan.
type Plan struct {
	// Seed drives every probabilistic draw and the clock-jitter stream.
	Seed uint64 `json:"seed"`
	// Events are the timed faults, in any order.
	Events []Event `json:"events"`
}

// Validate checks the plan's events for per-kind parameter errors.
func (p *Plan) Validate() error {
	for i := range p.Events {
		e := &p.Events[i]
		if !e.Kind.Valid() {
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		if e.AtNs < 0 {
			return fmt.Errorf("faults: event %d (%s): negative at_ns", i, e.Kind)
		}
		if e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("faults: event %d (%s): prob %g outside [0,1]", i, e.Kind, e.Prob)
		}
		if e.Shard != "" {
			if !e.Kind.SchedulerScoped() {
				return fmt.Errorf("faults: event %d (%s): shard targeting is scheduler-scoped only", i, e.Kind)
			}
			if _, ok := ShardIndex(e.Shard); !ok {
				return fmt.Errorf("faults: event %d (%s): malformed shard %q (want \"shard<k>\")", i, e.Kind, e.Shard)
			}
		}
		needDuration := e.Kind != KindCacheFlush
		if needDuration && e.DurationNs <= 0 {
			return fmt.Errorf("faults: event %d (%s): duration_ns required", i, e.Kind)
		}
		switch e.Kind {
		case KindCoreStall:
			if e.Cores <= 0 {
				return fmt.Errorf("faults: event %d (core-stall): cores required", i)
			}
		case KindCacheFlush:
			if e.Repeat > 1 && e.PeriodNs <= 0 {
				return fmt.Errorf("faults: event %d (cache-flush): period_ns required with repeat", i)
			}
		case KindRxOverflow:
			if e.RingCap <= 0 {
				return fmt.Errorf("faults: event %d (rx-overflow): ring_cap required", i)
			}
		case KindClockJitter:
			if e.JitterNs <= 0 {
				return fmt.Errorf("faults: event %d (clock-jitter): jitter_ns required", i)
			}
		case KindEpochDelay:
			if e.DelayNs <= 0 {
				return fmt.Errorf("faults: event %d (epoch-delay): delay_ns required", i)
			}
		}
	}
	return nil
}

// Has reports whether the plan contains at least one event of the kind.
func (p *Plan) Has(k Kind) bool {
	for i := range p.Events {
		if p.Events[i].Kind == k {
			return true
		}
	}
	return false
}

// EventsOf returns the plan's events of the given kind, in AtNs order.
func (p *Plan) EventsOf(k Kind) []Event {
	var out []Event
	for i := range p.Events {
		if p.Events[i].Kind == k {
			out = append(out, p.Events[i])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtNs < out[j].AtNs })
	return out
}

// EndNs returns the instant the last fault effect ends (the fault
// horizon) — recovery assertions measure from here.
func (p *Plan) EndNs() int64 {
	var end int64
	for i := range p.Events {
		if t := p.Events[i].EndNs(); t > end {
			end = t
		}
	}
	return end
}

// ParsePlan decodes a JSON plan and validates it.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a JSON plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: load plan: %w", err)
	}
	return ParsePlan(data)
}

// Splitmix64 advances and hashes a splitmix64 state — the deterministic
// generator behind every fault draw. Exported so hook implementations
// (core's probability rolls) share one definition.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a tiny deterministic stream over Splitmix64 for plan synthesis.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return Splitmix64(r.s)
}

// in returns a deterministic value in [lo, hi].
func (r *rng) in(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + int64(r.next()%uint64(hi-lo+1))
}

// RandomPlan synthesizes a seeded chaos plan whose fault effects all land
// inside [fromNs, toNs): one event of every fault family with
// deterministic, seed-dependent parameters. The chaos soak test drives
// randomized plans through this constructor, so any failing combination
// is reproducible from its seed alone.
func RandomPlan(seed uint64, fromNs, toNs int64) *Plan {
	if toNs <= fromNs {
		toNs = fromNs + 1
	}
	r := &rng{s: seed}
	span := toNs - fromNs
	// Windows are at most a third of the span so every family fits
	// inside [fromNs, toNs) with room for distinct onsets.
	win := func() int64 { return r.in(span/6, span/3) }
	at := func(d int64) int64 { return fromNs + r.in(0, span-d) }

	p := &Plan{Seed: seed}
	d := win()
	p.Events = append(p.Events, Event{
		Kind: KindCoreStall, AtNs: at(d), DurationNs: d,
		Cores: int(r.in(4, 24)),
	})
	repeat := int(r.in(3, 10))
	period := span / int64(3*repeat)
	if period < 1 {
		period = 1
	}
	p.Events = append(p.Events, Event{
		Kind: KindCacheFlush, AtNs: at(int64(repeat) * period),
		Repeat: repeat, PeriodNs: period,
	})
	d = win()
	p.Events = append(p.Events, Event{
		Kind: KindRxOverflow, AtNs: at(d), DurationNs: d,
		RingCap: int(r.in(4, 32)),
	})
	d = win()
	p.Events = append(p.Events, Event{
		Kind: KindClockJitter, AtNs: at(d), DurationNs: d,
		JitterNs: r.in(5_000, 40_000),
	})
	d = win()
	p.Events = append(p.Events, Event{
		Kind: KindLockContention, AtNs: at(d), DurationNs: d,
		Prob: 0.5 + float64(r.in(0, 45))/100,
	})
	// The epoch-drop window always suppresses every update (prob 1) for
	// long enough that the watchdog must engage — the degradation path
	// is the point of the soak.
	d = win()
	p.Events = append(p.Events, Event{
		Kind: KindEpochDrop, AtNs: at(d), DurationNs: d, Prob: 1,
	})
	d = win()
	p.Events = append(p.Events, Event{
		Kind: KindEpochDelay, AtNs: at(d), DurationNs: d,
		DelayNs: r.in(100_000, 500_000),
	})
	return p
}
