package nic

import (
	"fmt"
	"reflect"
	"testing"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// shardRig bundles a NIC over a tenant tree with a sharded scheduling
// function: app k maps to tenant k's leaf.
type shardRig struct {
	eng       *sim.Engine
	nic       *NIC
	sched     *core.ShardedScheduler
	delivered int
	drops     map[DropReason]int
}

func newShardRig(t *testing.T, cfg Config, tenants, shards int) *shardRig {
	t.Helper()
	b := tree.NewBuilder().Root("root", 40e9)
	rules := make([]classifier.Rule, 0, tenants)
	for k := 0; k < tenants; k++ {
		tn := fmt.Sprintf("tenant%d", k)
		leaf := fmt.Sprintf("t%dapp", k)
		b.Add(tree.ClassSpec{Name: tn, Parent: "root", Weight: 1})
		b.Add(tree.ClassSpec{Name: leaf, Parent: tn, Weight: 1})
		rules = append(rules, classifier.Rule{App: k, Flow: classifier.AnyFlow, Class: leaf})
	}
	tr := b.MustBuild()
	eng := sim.New()
	cls, err := classifier.New(tr, rules, "")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewSharded(tr, eng.Clock(), core.Config{}, core.ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	r := &shardRig{eng: eng, sched: sched, drops: make(map[DropReason]int)}
	r.nic, err = New(eng, cfg, cls, sched, Callbacks{
		OnDeliver: func(p *packet.Packet) { r.delivered++ },
		OnDrop:    func(p *packet.Packet, reason DropReason) { r.drops[reason]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// driveShardRig injects `per` packets per tenant, paced so every tenant
// stays under its share.
func (r *shardRig) drive(tenants, per int) {
	alloc := &packet.Alloc{}
	for k := 0; k < tenants; k++ {
		app := packet.AppID(k)
		for i := 0; i < per; i++ {
			p := alloc.New(packet.FlowID(i%4), app, 1000, 0)
			r.eng.At(int64(i)*40_000, func() { r.nic.Inject(p) })
		}
	}
	r.eng.Run()
}

// A single-shard sharded scheduler must be cost-identical to the plain
// scheduler on the NIC: no steer, no doorbells, no lanes — the exact
// same cycle charges and drop accounting, per-packet and batched.
func TestShardedOneShardCostIdentical(t *testing.T) {
	for _, batch := range []int{1, 8} {
		run := func(sharded bool) (Stats, int) {
			tr := tree.NewBuilder().
				Root("root", 40e9).
				Add(tree.ClassSpec{Name: "leaf", Parent: "root"}).
				MustBuild()
			eng := sim.New()
			cls, err := classifier.New(tr, []classifier.Rule{
				{App: classifier.AnyApp, Flow: classifier.AnyFlow, Class: "leaf"},
			}, "")
			if err != nil {
				t.Fatal(err)
			}
			var sched dataplane.Scheduler
			if sharded {
				s, err := core.NewSharded(tr, eng.Clock(), core.Config{}, core.ShardConfig{Shards: 1})
				if err != nil {
					t.Fatal(err)
				}
				sched = s
			} else {
				s, err := core.New(tr, eng.Clock(), core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				sched = s
			}
			delivered := 0
			dev, err := New(eng, Config{BatchSize: batch}, cls, sched, Callbacks{
				OnDeliver: func(p *packet.Packet) { delivered++ },
			})
			if err != nil {
				t.Fatal(err)
			}
			alloc := &packet.Alloc{}
			for i := 0; i < 500; i++ {
				p := alloc.New(packet.FlowID(i%8), 0, 1000, 0)
				eng.At(int64(i)*30_000, func() { dev.Inject(p) })
			}
			eng.Run()
			return dev.Stats(), delivered
		}
		plainStats, plainN := run(false)
		shardStats, shardN := run(true)
		if plainN != shardN {
			t.Fatalf("batch=%d: plain delivered %d, sharded(1) %d", batch, plainN, shardN)
		}
		if !reflect.DeepEqual(plainStats, shardStats) {
			t.Fatalf("batch=%d: stats diverged:\nplain   %+v\nsharded %+v", batch, plainStats, shardStats)
		}
		if shardStats.ShardRingDrops != 0 {
			t.Fatalf("batch=%d: single-shard run counted %d shard-ring drops", batch, shardStats.ShardRingDrops)
		}
	}
}

// Sharding costs are charged: the same traffic through a 4-shard
// scheduling function burns more pipeline cycles (steer per packet,
// doorbell per touched lane) than through a single shard, without
// changing what is delivered when every tenant is under its rate.
func TestShardSteerAndDoorbellCharged(t *testing.T) {
	for _, batch := range []int{1, 8} {
		one := newShardRig(t, Config{BatchSize: batch}, 4, 1)
		one.drive(4, 200)
		four := newShardRig(t, Config{BatchSize: batch}, 4, 4)
		four.drive(4, 200)
		if one.delivered != four.delivered {
			t.Fatalf("batch=%d: 1-shard delivered %d, 4-shard %d", batch, one.delivered, four.delivered)
		}
		if four.nic.Stats().BusyCycles <= one.nic.Stats().BusyCycles {
			t.Fatalf("batch=%d: 4-shard busy cycles %.0f not above 1-shard %.0f — steer/doorbell not charged",
				batch, four.nic.Stats().BusyCycles, one.nic.Stats().BusyCycles)
		}
		if four.nic.Stats().ShardRingDrops != 0 {
			t.Fatalf("batch=%d: unexpected shard-ring drops %d", batch, four.nic.Stats().ShardRingDrops)
		}
	}
}

// A burst bigger than a shard's feed lane overflows it: the packet is
// dropped with DropShardRing before reaching the scheduling function,
// and the accounting balances.
func TestShardRingOverflowDrops(t *testing.T) {
	// One worker context so the burst queues up and services as one
	// batch; one tenant so every packet steers to the same lane.
	r := newShardRig(t, Config{Cores: 1, Clusters: 1, BatchSize: 32, ShardRingPkts: 1}, 4, 4)
	alloc := &packet.Alloc{}
	const injected = 32
	for i := 0; i < injected; i++ {
		p := alloc.New(packet.FlowID(i), 0, 1000, 0)
		r.eng.At(0, func() { r.nic.Inject(p) })
	}
	r.eng.Run()

	st := r.nic.Stats()
	if st.ShardRingDrops == 0 {
		t.Fatal("no shard-ring drops from a 32-packet burst into a 1-packet lane")
	}
	if got := r.drops[DropShardRing]; uint64(got) != st.ShardRingDrops {
		t.Fatalf("OnDrop saw %d shard-ring drops, stats say %d", got, st.ShardRingDrops)
	}
	total := r.delivered
	for _, n := range r.drops {
		total += n
	}
	if total != injected {
		t.Fatalf("delivered %d + drops %v ≠ injected %d", r.delivered, r.drops, injected)
	}
	if DropShardRing.String() != "shard-ring" {
		t.Fatalf("DropShardRing.String() = %q", DropShardRing.String())
	}
}
