package nic

import "flowvalve/internal/telemetry"

// nicTel holds the NIC's attached metric handles. The DES drives the NIC
// single-threaded, so these atomic instruments are updated without
// contention while remaining safe to scrape from a live HTTP exporter on
// another goroutine.
type nicTel struct {
	injected       *telemetry.Counter
	delivered      *telemetry.Counter
	deliveredBytes *telemetry.Counter
	dropSched      *telemetry.Counter
	dropRxRing     *telemetry.Counter
	dropTM         *telemetry.Counter
	dropUncl       *telemetry.Counter
	dropShardRing  *telemetry.Counter
	dropSlow       *telemetry.Counter
	dropBuffer     *telemetry.Counter
	busyCycles     *telemetry.Counter
	tmBytes        *telemetry.Gauge
	tmPkts         *telemetry.Gauge
	ringPkts       *telemetry.Gauge
	freeBuffers    *telemetry.Gauge
}

// AttachTelemetry wires the NIC model into a metrics registry. Families
// shared with the software baselines carry {scheduler="flowvalve"} so
// figure-style comparisons can select on one label.
//
//	fv_injected_packets_total{scheduler}        host→NIC injections
//	fv_delivered_packets_total{scheduler}       wire deliveries
//	fv_delivered_bytes_total{scheduler}         wire delivered bytes
//	fv_dropped_packets_total{scheduler,reason}  reason ∈ sched, rx-ring,
//	                                            tm, unclassified, buffer
//	fv_nic_busy_cycles_total                    worker micro-engine cycles
//	fv_nic_tm_queued_bytes / _packets           traffic-manager occupancy
//	fv_nic_rx_ring_packets                      per-VF Rx ring backlog
//	fv_nic_free_buffers                         buffer-pool headroom
//	fv_flowcache_hits_total / _misses_total     exact-match cache outcomes
//	fv_flowcache_evictions_total                CLOCK displacements
//	fv_flowcache_size                           live cached flow entries
//
// With an offload control plane attached the scheduled slow path adds
// its own family, labelled {qdisc="htb"|"prio"}:
//
//	fv_offload_slowpath_backlog_packets         queued on the host qdisc
//	fv_offload_slowpath_shed_total              admission-bound sheds
//	fv_offload_slowpath_queue_drops_total       full per-class queue drops
//	fv_offload_slowpath_reinjected_total        scheduled, handed back to Tx
//	fv_offload_slowpath_host_cycles_total       host CPU cycles burned
//
// The flow-cache and slow-path families are callback-backed: they read
// the live counters at scrape time, so the hot paths pay nothing for
// them.
func (n *NIC) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		n.tel = nil
		return
	}
	sched := telemetry.Label{Key: "scheduler", Value: "flowvalve"}
	drop := func(reason string) *telemetry.Counter {
		return reg.Counter("fv_dropped_packets_total",
			"Packets dropped, by scheduler and reason.",
			sched, telemetry.Label{Key: "reason", Value: reason})
	}
	t := &nicTel{
		injected: reg.Counter("fv_injected_packets_total",
			"Packets handed from the host to the NIC.", sched),
		delivered: reg.Counter("fv_delivered_packets_total",
			"Packets that finished transmitting on the wire.", sched),
		deliveredBytes: reg.Counter("fv_delivered_bytes_total",
			"Frame bytes that finished transmitting on the wire.", sched),
		dropSched:     drop(DropSched.String()),
		dropRxRing:    drop(DropRxRing.String()),
		dropTM:        drop(DropTM.String()),
		dropUncl:      drop(DropUnclassified.String()),
		dropShardRing: drop(DropShardRing.String()),
		dropSlow:      drop(DropSlowPath.String()),
		dropBuffer:    drop("buffer"),
		busyCycles: reg.Counter("fv_nic_busy_cycles_total",
			"Busy cycles accumulated by the worker micro-engine contexts."),
		tmBytes: reg.Gauge("fv_nic_tm_queued_bytes",
			"Frame bytes waiting in the traffic-manager port queues."),
		tmPkts: reg.Gauge("fv_nic_tm_queued_packets",
			"Packets waiting in the traffic-manager port queues."),
		ringPkts: reg.Gauge("fv_nic_rx_ring_packets",
			"Packets waiting in the per-VF receive rings."),
		freeBuffers: reg.Gauge("fv_nic_free_buffers",
			"Immediately allocatable packet buffers."),
	}
	t.freeBuffers.Set(float64(n.freeBuffers))
	cls := n.cls
	reg.CounterFunc("fv_flowcache_hits_total",
		"Exact-match flow cache hits.",
		func() float64 { return float64(cls.Stats().Hits) }, sched)
	reg.CounterFunc("fv_flowcache_misses_total",
		"Exact-match flow cache misses (full pipeline walks).",
		func() float64 { return float64(cls.Stats().Misses) }, sched)
	reg.CounterFunc("fv_flowcache_evictions_total",
		"Live flow-cache entries displaced by CLOCK to admit new flows.",
		func() float64 { return float64(cls.Stats().Evictions) }, sched)
	reg.GaugeFunc("fv_flowcache_size",
		"Live entries in the exact-match flow cache.",
		func() float64 { return float64(cls.Stats().Size) }, sched)
	n.tel = t
	if n.off != nil {
		n.off.ctl.AttachTelemetry(reg)
		sp := n.off.sp
		qd := telemetry.Label{Key: "qdisc", Value: n.off.cfg.Qdisc}
		reg.GaugeFunc("fv_offload_slowpath_backlog_packets",
			"Packets queued on the scheduled host slow path.",
			func() float64 { return float64(sp.backlogPkts) }, sched, qd)
		reg.CounterFunc("fv_offload_slowpath_shed_total",
			"Slow-path packets shed at admission (projected wait past the bound).",
			func() float64 { return float64(sp.shed) }, sched, qd)
		reg.CounterFunc("fv_offload_slowpath_queue_drops_total",
			"Slow-path packets dropped by a full per-class queue.",
			func() float64 { return float64(sp.queueDrops) }, sched, qd)
		reg.CounterFunc("fv_offload_slowpath_reinjected_total",
			"Slow-path packets scheduled by the host qdisc and re-injected into the NIC transmit path.",
			func() float64 { return float64(sp.reinjected) }, sched, qd)
		reg.CounterFunc("fv_offload_slowpath_host_cycles_total",
			"Host CPU cycles burned scheduling the slow path.",
			func() float64 { return sp.cpu.Cycles() }, sched, qd)
	}
}
