package nic

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// BenchmarkSlowPathEnqueue is the slow path's per-packet admission cost:
// the wait projection, the class latch, and the sub-qdisc enqueue. The
// CI bench gate holds it at 0 allocs/op — the slow path is the offload
// model's per-packet hot path, and an allocation here would be charged
// once per non-offloaded packet across every experiment.
func BenchmarkSlowPathEnqueue(b *testing.B) {
	tr := tree.NewBuilder().
		Root("root", 40e9).
		Add(tree.ClassSpec{Name: "leaf", Parent: "root"}).
		MustBuild()
	leaf, _ := tr.Lookup("leaf")
	eng := sim.New()
	sp, err := newSlowPath(eng, tr, SlowPathConfig{
		MaxWaitNs: 1 << 62, // never shed: measure the admit path itself
		QueuePkts: 1 << 30, // FIFOs grow lazily, so a huge bound is free
	}.Defaults(), func(*packet.Packet) {})
	if err != nil {
		b.Fatal(err)
	}
	alloc := &packet.Alloc{}
	p := alloc.New(1, 1, 1500, 0)
	// Pre-arm the drain: the first enqueue schedules the sub-qdisc's
	// drain event, and the engine never runs inside the loop, so no
	// admit after this one touches the event queue.
	if !sp.admit(p, leaf) {
		b.Fatal("pre-arm admit refused")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.admit(p, leaf)
	}
}
