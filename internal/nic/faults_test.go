package nic

import (
	"testing"

	"flowvalve/internal/faults"
	"flowvalve/internal/packet"
	"flowvalve/internal/trafficgen"
)

// Stalling every worker context parks the NIC: packets injected inside
// the window wait in the Rx rings and are serviced — and delivered —
// only after the stall ends.
func TestStallCoresParksService(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	cores := r.nic.Config().Cores
	const stallEnd = int64(1e6)
	r.nic.StallCores(cores, stallEnd)

	var a packet.Alloc
	r.eng.At(1000, func() { r.nic.Inject(a.New(0, 0, 1500, 1000)) })
	r.eng.Run()

	if len(r.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(r.delivered))
	}
	if got := r.delivered[0].EgressAt; got < stallEnd {
		t.Fatalf("packet egressed at %d, inside the stall window (ends %d)", got, stallEnd)
	}
	if len(r.nic.stalls) != 0 {
		t.Fatalf("%d stall windows leaked", len(r.nic.stalls))
	}
}

// A stall that outnumbers the idle contexts collects the busy ones as
// they release (debt), and every context comes back when the window
// ends — no permanent capacity loss.
func TestStallCoresCollectsBusyContextsAsDebt(t *testing.T) {
	r := newRig(t, Config{Cores: 4, Clusters: 2}, 40e9, false)
	var a packet.Alloc
	// Four packets seize all four contexts at t=0.
	for i := 0; i < 4; i++ {
		r.nic.Inject(a.New(packet.FlowID(i), 0, 1500, 0))
	}
	// The stall lands while all contexts are busy: all of it is debt.
	r.nic.StallCores(4, 2e6)
	if r.nic.stalls[0].debt != 4 {
		t.Fatalf("debt = %d, want 4", r.nic.stalls[0].debt)
	}
	// Traffic injected meanwhile queues behind the stall.
	r.eng.At(1e5, func() { r.nic.Inject(a.New(9, 0, 1500, 1e5)) })
	r.eng.Run()
	if len(r.delivered) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(r.delivered))
	}
	idle := 0
	for _, cl := range r.nic.clusters {
		idle += cl.idle
	}
	if idle != 4 {
		t.Fatalf("%d contexts idle after stall, want 4", idle)
	}
}

// Clamping the Rx rings converts queue pressure into rx-ring drops and
// unclamping restores the configured depth.
func TestRingClampForcesOverflow(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	cores := r.nic.Config().Cores
	r.nic.StallCores(cores, 1e6) // force ring usage
	r.nic.ClampRxRings(1)

	var a packet.Alloc
	for i := 0; i < 5; i++ {
		r.nic.Inject(a.New(0, 0, 1500, 0))
	}
	if got := r.nic.Stats().RxRingDrops; got != 4 {
		t.Fatalf("RxRingDrops = %d, want 4 (ring clamped to 1)", got)
	}
	r.nic.UnclampRxRings()
	for i := 0; i < 5; i++ {
		r.nic.Inject(a.New(0, 0, 1500, 0))
	}
	if got := r.nic.Stats().RxRingDrops; got != 4 {
		t.Fatalf("RxRingDrops = %d after unclamp, want still 4", got)
	}
	r.eng.Run()
	if len(r.delivered) != 6 {
		t.Fatalf("delivered %d, want 6", len(r.delivered))
	}
}

// FlushFlowCache empties the classifier's exact-match cache, forcing
// the slow path (and its higher cycle cost) for every live flow.
func TestFlushFlowCache(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	var a packet.Alloc
	alloc := &a
	if _, err := trafficgen.NewCBR(r.eng, alloc, 1, 0, 1518, 1e9, 0, 1e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.nic.cls.CacheLen() == 0 {
		t.Fatal("no cache entries built")
	}
	r.nic.FlushFlowCache()
	if got := r.nic.cls.CacheLen(); got != 0 {
		t.Fatalf("cache holds %d entries after flush", got)
	}
}

// ApplyFaults registers the NIC (and its attached scheduler) with the
// injector, so a full-surface plan arms without missing targets.
func TestApplyFaultsRegistersAllSurfaces(t *testing.T) {
	r := newRig(t, Config{}, 40e9, true)
	plan := faults.Plan{Seed: 1, Events: []faults.Event{
		{Kind: faults.KindCoreStall, AtNs: 0, DurationNs: 1e6, Cores: 2},
		{Kind: faults.KindCacheFlush, AtNs: 0},
		{Kind: faults.KindRxOverflow, AtNs: 0, DurationNs: 1e6, RingCap: 8},
		{Kind: faults.KindLockContention, AtNs: 0, DurationNs: 1e6, Prob: 0.5},
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e6, Prob: 1},
		{Kind: faults.KindEpochDelay, AtNs: 0, DurationNs: 1e6, DelayNs: 1e5},
	}}
	inj, err := faults.NewInjector(r.eng, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.ApplyFaults(inj); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if inj.Stats().Total() == 0 {
		t.Fatal("armed plan injected nothing")
	}
}

// A pass-through NIC (no scheduler) must refuse to arm scheduler-scoped
// kinds rather than silently skip them.
func TestApplyFaultsPassThroughMissesSchedulerKinds(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	plan := faults.Plan{Events: []faults.Event{
		{Kind: faults.KindEpochDrop, AtNs: 0, DurationNs: 1e6, Prob: 1},
	}}
	inj, err := faults.NewInjector(r.eng, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.ApplyFaults(inj); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err == nil {
		t.Fatal("scheduler-scoped plan armed against a pass-through NIC")
	}
}
