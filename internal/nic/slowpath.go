package nic

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/host"
	"flowvalve/internal/htb"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
	"flowvalve/internal/prio"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// Slow-path qdisc kinds accepted by SlowPathConfig.Qdisc.
const (
	SlowQdiscHTB  = "htb"
	SlowQdiscPrio = "prio"
)

// classBacklogger is the optional per-class occupancy probe (the HTB
// backend has it; PRIO reports only band totals).
type classBacklogger interface {
	ClassBacklog(tree.ClassID) int
}

// slowPath is the scheduled host slow path behind the offload control
// plane: a real qdisc (HTB or PRIO) built over the same class tree the
// fast path enforces, so non-offloaded flows are *scheduled* on the
// host — classified into their policy class, queued per class, and
// drained under the host CPU's per-packet service floor — instead of
// merely delayed by a fluid single server. Scheduled packets re-enter
// the NIC transmit path after the PCIe detour; packets whose projected
// wait exceeds the bound are shed at admission, per class.
type slowPath struct {
	eng      *sim.Engine
	cfg      SlowPathConfig
	reinject func(*packet.Packet)

	q      dataplane.Qdisc
	shadow *tree.Tree // rate-annotated mirror of the policy tree
	leaves []*tree.Class
	byCls  classBacklogger // nil when the backend lacks the probe
	cpu    *host.CPU       // the sub-qdisc's accountant

	// serviceNs is the CPU-bound per-packet service floor with every
	// slow-path core pooled; the admission projection multiplies it by
	// the backlog.
	serviceNs float64

	// latch carries the admitted packet's class into the sub-qdisc's
	// classifier: the NIC already resolved the leaf, so the closure
	// just reads the latch (the DES drives admission single-threaded,
	// and the latch is consumed synchronously inside Enqueue).
	latchLeaf *tree.Class
	latchBand int
	// rejected is set by the sub-qdisc's OnDrop during Enqueue — the
	// synchronous full-queue signal admit turns into its return value.
	rejected bool

	// prioBand maps leaf Prio values to dense PRIO band indices
	// (ascending Prio order); nil for the HTB backend.
	prioBand map[int]int

	backlogPkts  int
	backlogBytes int64

	admitted   uint64
	shed       uint64 // admission-bound sheds (never enqueued)
	queueDrops uint64 // full per-class queue drops inside the sub-qdisc
	reinjected uint64 // packets scheduled and handed back to the NIC

	// Per-class split, indexed by the policy tree's ClassID (the shadow
	// tree mirrors IDs one-to-one).
	classShed  []uint64
	classDrops []uint64

	// Previous control-tick snapshot for the congestion-signal deltas.
	lastArrivals uint64
	lastDropped  uint64
	lastCycles   float64
	lastSigNs    int64
}

// newSlowPath builds the scheduled slow path over the policy tree t;
// reinject receives scheduled packets after the PCIe detour.
func newSlowPath(eng *sim.Engine, t *tree.Tree, cfg SlowPathConfig, reinject func(*packet.Packet)) (*slowPath, error) {
	if eng == nil || t == nil || reinject == nil {
		return nil, fmt.Errorf("nic: slow path needs an engine, a tree, and a re-injection sink")
	}
	sp := &slowPath{
		eng:        eng,
		cfg:        cfg,
		reinject:   reinject,
		leaves:     t.Leaves(),
		classShed:  make([]uint64, t.Len()),
		classDrops: make([]uint64, t.Len()),
	}
	hc := cfg.Host.Defaults()
	sp.serviceNs = cfg.CyclesPerPkt / (hc.FreqHz * float64(hc.Cores)) * 1e9

	// Split the per-packet budget across the sub-qdisc's two CPU
	// stages, so host cycles accrue where the work happens.
	enq := int64(cfg.CyclesPerPkt * 2 / 5)
	if enq < 1 {
		enq = 1
	}
	deq := int64(cfg.CyclesPerPkt) - enq
	if deq < 1 {
		deq = 1
	}
	cb := dataplane.Callbacks{OnDeliver: sp.onDeliver, OnDrop: sp.onReject}

	switch cfg.Qdisc {
	case SlowQdiscHTB:
		shadow, err := slowShadowTree(t, cfg.ReinjectBps)
		if err != nil {
			return nil, fmt.Errorf("nic: slow-path shadow tree: %w", err)
		}
		sp.shadow = shadow
		q, err := htb.New(eng, htb.Config{
			LinkRateBps: cfg.ReinjectBps,
			QueuePkts:   cfg.QueuePkts,
			// The slow path is our own scheduler, not the kernel
			// baseline: no over-crediting, fine-grained watchdog.
			OvershootFactor: 1.0,
			GranularityNs:   50_000,
			EnqueueCycles:   enq,
			DequeueCycles:   deq,
			ServiceNsPerPkt: sp.serviceNs,
			Host:            cfg.Host,
		}, shadow, func(*packet.Packet) *tree.Class { return sp.latchLeaf }, cb)
		if err != nil {
			return nil, err
		}
		sp.q = q
		sp.byCls = q
		sp.cpu = q.CPU()
	case SlowQdiscPrio:
		// Dense bands in ascending leaf-Prio order.
		sp.prioBand = make(map[int]int)
		for _, leaf := range sp.leaves {
			sp.prioBand[leaf.Prio] = 0
		}
		prios := make([]int, 0, len(sp.prioBand))
		for p := range sp.prioBand {
			prios = append(prios, p)
		}
		for i := 0; i < len(prios); i++ { // insertion sort: tiny n
			for j := i; j > 0 && prios[j] < prios[j-1]; j-- {
				prios[j], prios[j-1] = prios[j-1], prios[j]
			}
		}
		for band, p := range prios {
			sp.prioBand[p] = band
		}
		q, err := prio.New(eng, prio.Config{
			Bands:           len(prios),
			LinkRateBps:     cfg.ReinjectBps,
			QueuePkts:       cfg.QueuePkts,
			EnqueueCycles:   enq,
			DequeueCycles:   deq,
			ServiceNsPerPkt: sp.serviceNs,
			Host:            cfg.Host,
		}, func(*packet.Packet) int { return sp.latchBand }, cb)
		if err != nil {
			return nil, err
		}
		sp.q = q
		sp.cpu = q.CPU()
	default:
		return nil, fmt.Errorf("nic: unknown slow-path qdisc %q (want %q or %q)",
			cfg.Qdisc, SlowQdiscHTB, SlowQdiscPrio)
	}
	return sp, nil
}

// slowShadowTree mirrors the policy tree with concrete per-class token
// rates. Weight-based policies leave RateBps zero on non-root classes —
// the fast path's scheduling function recomputes shares every epoch —
// but the HTB backend replenishes tokens from RateBps directly, so the
// slow path derives a static split (tree.ChildRates under zero measured
// demand) scaled to the re-injection capacity. Every class's ceiling
// opens to the shadow root rate (clamped by any configured ceil) so the
// slow path stays work-conserving across classes, mirroring the mutual
// borrowing the fair-share policies configure. ClassIDs mirror the
// source tree one-to-one (both assign IDs in declaration order).
func slowShadowTree(t *tree.Tree, linkBps float64) (*tree.Tree, error) {
	rootBps := t.Root().RateBps
	if rootBps > linkBps {
		rootBps = linkBps
	}
	rates := make([]float64, t.Len()) // bits/sec by ClassID
	rates[t.Root().ID] = rootBps
	var scratch []float64
	for _, c := range t.Classes() { // ID order: parents precede children
		if c.Leaf() {
			continue
		}
		scratch = tree.ChildRates(c, rates[c.ID]/8,
			func(*tree.Class) float64 { return 0 }, scratch)
		for i, ch := range c.Children {
			rates[ch.ID] = scratch[i] * 8
		}
	}
	b := tree.NewBuilder()
	for _, c := range t.Classes() {
		spec := tree.ClassSpec{
			Name:    c.Name,
			Prio:    c.Prio,
			Weight:  c.Weight,
			RateBps: rates[c.ID],
		}
		if c.Parent != nil {
			spec.Parent = c.Parent.Name
			spec.CeilBps = rootBps
			if c.CeilBps > 0 && c.CeilBps < rootBps {
				spec.CeilBps = c.CeilBps
			}
		}
		b.Add(spec)
	}
	return b.Build()
}

// admit runs slow-path admission for one packet of leaf's class. The
// wait bound is inclusive-serve: a packet whose projected wait equals
// MaxWaitNs exactly is still served; only wait > MaxWaitNs sheds. false
// means the packet was shed (or its class queue was full) and the
// caller owns the drop accounting.
//
//fv:hotpath
func (sp *slowPath) admit(p *packet.Packet, leaf *tree.Class) bool {
	wait := float64(sp.backlogPkts) * sp.serviceNs
	if bw := float64(sp.backlogBytes) * 8 / sp.cfg.ReinjectBps * 1e9; bw > wait {
		wait = bw
	}
	if wait > float64(sp.cfg.MaxWaitNs) {
		sp.shed++
		sp.classShed[leaf.ID]++
		return false
	}
	if sp.shadow != nil {
		sp.latchLeaf = sp.shadow.Class(leaf.ID)
	} else {
		sp.latchBand = sp.prioBand[leaf.Prio]
	}
	sp.rejected = false
	//fv:boxing-ok the slow path runs at host-CPU rate (~100x below line rate); dragging the qdisc simulation into the hot closure buys nothing
	sp.q.Enqueue(p)
	sp.latchLeaf = nil
	if sp.rejected {
		sp.queueDrops++
		sp.classDrops[leaf.ID]++
		return false
	}
	sp.admitted++
	sp.backlogPkts++
	sp.backlogBytes += int64(p.WireBytes())
	return true
}

// onReject is the sub-qdisc's OnDrop callback. It fires synchronously
// inside Enqueue when the packet's class queue is full; admit reads the
// flag and returns ownership to the caller, so the packet is never
// double-accounted.
func (sp *slowPath) onReject(*packet.Packet) { sp.rejected = true }

// onDeliver fires when the sub-qdisc finishes scheduling a packet: the
// host hands it back to the NIC after the PCIe detour (both DMA legs
// are modelled on the return).
func (sp *slowPath) onDeliver(p *packet.Packet) {
	sp.backlogPkts--
	sp.backlogBytes -= int64(p.WireBytes())
	sp.reinjected++
	sp.eng.After(sp.cfg.DetourNs, func() { sp.reinject(p) })
}

// signals snapshots the slow path's congestion state for one control
// tick: current backlogs plus shed-rate and host-utilization deltas
// since the previous tick. The controller calls it exactly once per
// tick (offload.SlowPathSignalFunc contract), which is what lets the
// deltas reset in place.
func (sp *slowPath) signals(nowNs int64) offload.SlowPathSignals {
	sig := offload.SlowPathSignals{
		BacklogPkts:  sp.backlogPkts,
		MaxClassPkts: sp.backlogPkts,
		QueueCapPkts: sp.cfg.QueuePkts,
	}
	if sp.byCls != nil {
		sig.MaxClassPkts = 0
		for _, leaf := range sp.leaves {
			if n := sp.byCls.ClassBacklog(leaf.ID); n > sig.MaxClassPkts {
				sig.MaxClassPkts = n
			}
		}
	}
	arrivals := sp.admitted + sp.shed + sp.queueDrops
	dropped := sp.shed + sp.queueDrops
	if da := arrivals - sp.lastArrivals; da > 0 {
		sig.ShedRate = float64(dropped-sp.lastDropped) / float64(da)
	}
	if dt := nowNs - sp.lastSigNs; dt > 0 {
		hc := sp.cpu.Config()
		cyc := sp.cpu.Cycles()
		sig.HostUtil = (cyc - sp.lastCycles) /
			(hc.FreqHz * float64(hc.Cores) * float64(dt) / 1e9)
		sp.lastCycles = cyc
	}
	sp.lastArrivals, sp.lastDropped, sp.lastSigNs = arrivals, dropped, nowNs
	return sig
}

// maxClassBacklog returns the deepest per-class backlog (falls back to
// the total when the backend lacks the per-class probe).
func (sp *slowPath) maxClassBacklog() int {
	if sp.byCls == nil {
		return sp.backlogPkts
	}
	max := 0
	for _, leaf := range sp.leaves {
		if n := sp.byCls.ClassBacklog(leaf.ID); n > max {
			max = n
		}
	}
	return max
}

// classStats returns the per-class slow-path scorecard, in tree order.
func (sp *slowPath) classStats() []dataplane.SlowClassStat {
	out := make([]dataplane.SlowClassStat, 0, len(sp.leaves))
	for _, leaf := range sp.leaves {
		st := dataplane.SlowClassStat{
			Class:      leaf.Name,
			Shed:       sp.classShed[leaf.ID],
			QueueDrops: sp.classDrops[leaf.ID],
		}
		if sp.byCls != nil {
			st.BacklogPkts = sp.byCls.ClassBacklog(leaf.ID)
		}
		out = append(out, st)
	}
	return out
}
