package nic

import (
	"sync"
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/trafficgen"
)

// Swap must be safe against a running service loop: a goroutine flips
// the scheduler between the core scheduler and pass-through while the
// DES loop forwards traffic. The atomic publication is what -race
// exercises here; the assertion just proves the loop kept forwarding.
func TestSwapDuringRunRace(t *testing.T) {
	r := newRig(t, Config{}, 40e9, true)
	var a packet.Alloc
	if _, err := trafficgen.NewCBR(r.eng, &a, 1, 0, 1518, 5e9, 0, 5e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.nic.Swap(nil)
			} else {
				r.nic.Swap(r.sched)
			}
		}
	}()

	r.eng.Run()
	close(stop)
	wg.Wait()

	if len(r.delivered) == 0 {
		t.Fatal("no packets delivered while swapping")
	}
}
