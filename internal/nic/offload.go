package nic

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/host"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
)

// SlowPathConfig models the host slow path behind the offload control
// plane: the CPU budget un-offloaded mice are charged against, the
// qdisc that schedules them on the host, and the detour a slow-path
// packet takes through the host before re-entering the NIC's transmit
// path. Zero fields take the defaults noted on each field.
type SlowPathConfig struct {
	// Host is the CPU the slow path runs on (host.Config defaults:
	// the paper's 8-core 2.3GHz testbed).
	Host host.Config
	// CyclesPerPkt is the host cost of one slow-path packet — flow
	// lookup in the software table, scheduling, and the Tx descriptor
	// back to the NIC (default 3200, the software-scheduler class of
	// per-packet cost).
	CyclesPerPkt float64
	// MaxWaitNs bounds the slow-path queueing delay at admission: a
	// packet whose projected wait exceeds the bound is shed
	// (DropSlowPath) instead of growing the backlog without bound
	// (default 1ms). The bound is inclusive-serve — a packet whose
	// projected wait equals MaxWaitNs exactly is still served; only
	// wait > MaxWaitNs sheds.
	MaxWaitNs int64
	// DetourNs is the fixed PCIe round trip of the detour — NIC→host
	// DMA plus the host→NIC re-injection (default 30µs).
	DetourNs int64
	// Qdisc selects the scheduler the slow path runs over the policy
	// class tree: SlowQdiscHTB (default) or SlowQdiscPrio. Either way
	// non-offloaded flows are classified into the same class hierarchy
	// the fast path enforces and scheduled under the host CPU's
	// per-packet service floor.
	Qdisc string
	// QueuePkts bounds each slow-path class queue (default 512).
	QueuePkts int
	// ReinjectBps is the host→NIC re-injection bandwidth the slow
	// path's drain feeds (default 50e9 — PCIe-class).
	ReinjectBps float64
}

// Defaults fills unset fields. It is idempotent: applying it to its own
// output returns the same configuration.
func (c SlowPathConfig) Defaults() SlowPathConfig {
	c.Host = c.Host.Defaults()
	if c.CyclesPerPkt <= 0 {
		c.CyclesPerPkt = 3200
	}
	if c.MaxWaitNs <= 0 {
		c.MaxWaitNs = 1_000_000
	}
	if c.DetourNs <= 0 {
		c.DetourNs = 30_000
	}
	if c.Qdisc == "" {
		c.Qdisc = SlowQdiscHTB
	}
	if c.QueuePkts <= 0 {
		c.QueuePkts = 512
	}
	if c.ReinjectBps <= 0 {
		c.ReinjectBps = 50e9
	}
	return c
}

// offloadState is the NIC side of the offload control plane: the
// controller, the scheduled host slow path behind it, and the CPU
// accountant the slow path charges.
type offloadState struct {
	ctl *offload.Controller
	cpu *host.CPU
	cfg SlowPathConfig
	sp  *slowPath
	// invalidations counts flow-cache tombstones written on demotion.
	invalidations uint64
}

// AttachOffload puts the offload control plane in front of the fast
// path: from now on only flows holding a rule installed by ctl ride the
// NIC pipeline at full speed; every other classified packet detours
// through the scheduled host slow path — a real qdisc over the same
// policy class tree — and re-enters the NIC transmit path, or is shed
// per class when its projected wait exceeds the bound. The NIC chains
// ctl's demotion hook to the classifier's targeted invalidation (the
// prior hook keeps firing after the NIC's), so a demoted flow's next
// packet re-resolves instead of hitting a stale fast-path cache entry,
// and feeds the slow path's congestion signals (backlog, shed rate,
// host utilization) into ctl's threshold policy every tick.
//
// Call before AttachTelemetry so the fv_offload_* family registers with
// the NIC's registry. The controller's periodic tick is armed here on
// the NIC's engine; Tick must not be driven externally afterwards.
func (n *NIC) AttachOffload(ctl *offload.Controller, cfg SlowPathConfig) error {
	if ctl == nil {
		return fmt.Errorf("nic: nil offload controller")
	}
	if n.off != nil {
		return fmt.Errorf("nic: offload control plane already attached")
	}
	cfg = cfg.Defaults()
	sp, err := newSlowPath(n.eng, n.cls.Tree(), cfg, n.txEnqueue)
	if err != nil {
		return err
	}
	st := &offloadState{
		ctl: ctl,
		cpu: sp.cpu,
		cfg: cfg,
		sp:  sp,
	}

	prev := ctl.DemoteHook()
	ctl.SetDemoteHook(func(app packet.AppID, flow packet.FlowID) {
		n.cls.Invalidate(app, flow)
		st.invalidations++
		if prev != nil {
			prev(app, flow)
		}
	})
	ctl.SetSlowPathSignals(sp.signals)

	n.off = st
	n.eng.After(ctl.TickNs(), n.offloadTick)
	return nil
}

// offloadTick runs one control-plane pass and charges the rule-channel
// work to the worker budget: installs and evictions execute on the same
// micro-engines that forward packets, which is what bounds the
// insertion rate in the first place.
func (n *NIC) offloadTick() {
	rep := n.off.ctl.Tick(n.eng.Now())
	cycles := n.cfg.Costs.RuleInstall*int64(rep.Installs) +
		n.cfg.Costs.RuleEvict*int64(rep.Demotions)
	if cycles > 0 {
		n.stats.BusyCycles += float64(cycles)
		if n.tel != nil {
			n.tel.busyCycles.Add(cycles)
		}
	}
	n.eng.After(n.off.ctl.TickNs(), n.offloadTick)
}

// HostCores implements dataplane.HostAccountant: the mean host cores
// burned by the slow path over the run (zero without an offload control
// plane — the pure-offload FlowValve claim).
func (n *NIC) HostCores(durationNs int64) float64 {
	if n.off == nil {
		return 0
	}
	return n.off.cpu.CoresUsed(durationNs)
}

// OffloadStats implements dataplane.Offloader.
func (n *NIC) OffloadStats() dataplane.OffloadStats {
	if n.off == nil {
		return dataplane.OffloadStats{}
	}
	s := n.off.ctl.Stats()
	return dataplane.OffloadStats{
		Enabled:        true,
		Offloaded:      s.Offloaded,
		TableCap:       s.TableCap,
		QueueDepth:     s.QueueDepth,
		QueueCap:       s.QueueCap,
		ThresholdBytes: s.ThresholdBytes,
		SketchErrBytes: s.SketchErrBytes,
		FastPkts:       s.FastPkts,
		SlowPkts:       s.SlowPkts,
		FastBytes:      s.FastBytes,
		SlowBytes:      s.SlowBytes,
		Installs:       s.Installs,
		Demotions:      s.Demotions,
		QueueDrops:       s.QueueDrops,
		StaleSkips:       s.StaleSkips,
		TableFull:        s.TableFull,
		SlowPathDrops:    n.stats.SlowPathDrops,
		Invalidations:    n.off.invalidations,
		SlowQdisc:        n.off.cfg.Qdisc,
		SlowBacklogPkts:  n.off.sp.backlogPkts,
		SlowMaxClassPkts: n.off.sp.maxClassBacklog(),
		SlowShed:         n.off.sp.shed,
		SlowQueueDrops:   n.off.sp.queueDrops,
		SlowReinjected:   n.off.sp.reinjected,
		Policy:           s.Policy,
	}
}

// SlowPathClasses implements dataplane.SlowPathReporter: the per-class
// slow-path backlog/shed/drop split, nil without an attached offload
// control plane.
func (n *NIC) SlowPathClasses() []dataplane.SlowClassStat {
	if n.off == nil {
		return nil
	}
	return n.off.sp.classStats()
}

var (
	_ dataplane.HostAccountant   = (*NIC)(nil)
	_ dataplane.Offloader        = (*NIC)(nil)
	_ dataplane.SlowPathReporter = (*NIC)(nil)
)
