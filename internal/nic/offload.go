package nic

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/host"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
)

// SlowPathConfig models the host slow path behind the offload control
// plane: the CPU budget un-offloaded mice are charged against, and the
// detour a slow-path packet takes through the host before re-entering
// the NIC's transmit path. Zero fields take the defaults noted on each
// field.
type SlowPathConfig struct {
	// Host is the CPU the slow path runs on (host.Config defaults:
	// the paper's 8-core 2.3GHz testbed).
	Host host.Config
	// CyclesPerPkt is the host cost of one slow-path packet — flow
	// lookup in the software table, scheduling, and the Tx descriptor
	// back to the NIC (default 3200, the software-scheduler class of
	// per-packet cost).
	CyclesPerPkt float64
	// MaxWaitNs bounds the slow-path queueing delay: a packet that
	// would wait longer is shed (DropSlowPath) instead of growing the
	// backlog without bound (default 1ms).
	MaxWaitNs int64
	// DetourNs is the fixed PCIe round trip of the detour — NIC→host
	// DMA plus the host→NIC re-injection (default 30µs).
	DetourNs int64
}

// Defaults fills unset fields.
func (c SlowPathConfig) Defaults() SlowPathConfig {
	c.Host = c.Host.Defaults()
	if c.CyclesPerPkt <= 0 {
		c.CyclesPerPkt = 3200
	}
	if c.MaxWaitNs <= 0 {
		c.MaxWaitNs = 1_000_000
	}
	if c.DetourNs <= 0 {
		c.DetourNs = 30_000
	}
	return c
}

// offloadState is the NIC side of the offload control plane: the
// controller, the host-CPU accountant behind the slow path, and the
// fluid single-server model of the slow path's service capacity.
type offloadState struct {
	ctl *offload.Controller
	cpu *host.CPU
	cfg SlowPathConfig
	// serviceNs is the slow path's per-packet service time with every
	// host core pooled; freeAtF is the fluid server's busy-until
	// instant (float64 so sub-ns service times accumulate exactly and
	// deterministically).
	serviceNs float64
	freeAtF   float64
	// invalidations counts flow-cache tombstones written on demotion.
	invalidations uint64
}

// AttachOffload puts the offload control plane in front of the fast
// path: from now on only flows holding a rule installed by ctl ride the
// NIC pipeline at full speed; every other classified packet pays the
// exception-path cycles and a host detour (or is shed when the host is
// saturated). The NIC chains ctl's demotion hook to the classifier's
// targeted invalidation, so a demoted flow's next packet re-resolves
// instead of hitting a stale fast-path cache entry.
//
// Call before AttachTelemetry so the fv_offload_* family registers with
// the NIC's registry. The controller's periodic tick is armed here on
// the NIC's engine; Tick must not be driven externally afterwards.
func (n *NIC) AttachOffload(ctl *offload.Controller, cfg SlowPathConfig) error {
	if ctl == nil {
		return fmt.Errorf("nic: nil offload controller")
	}
	if n.off != nil {
		return fmt.Errorf("nic: offload control plane already attached")
	}
	cfg = cfg.Defaults()
	st := &offloadState{
		ctl: ctl,
		cpu: host.New(cfg.Host),
		cfg: cfg,
	}
	hc := st.cpu.Config()
	st.serviceNs = cfg.CyclesPerPkt / (hc.FreqHz * float64(hc.Cores)) * 1e9

	prev := ctl.DemoteHook()
	ctl.SetDemoteHook(func(app packet.AppID, flow packet.FlowID) {
		n.cls.Invalidate(app, flow)
		st.invalidations++
		if prev != nil {
			prev(app, flow)
		}
	})

	n.off = st
	n.eng.After(ctl.TickNs(), n.offloadTick)
	return nil
}

// offloadTick runs one control-plane pass and charges the rule-channel
// work to the worker budget: installs and evictions execute on the same
// micro-engines that forward packets, which is what bounds the
// insertion rate in the first place.
func (n *NIC) offloadTick() {
	rep := n.off.ctl.Tick(n.eng.Now())
	cycles := n.cfg.Costs.RuleInstall*int64(rep.Installs) +
		n.cfg.Costs.RuleEvict*int64(rep.Demotions)
	if cycles > 0 {
		n.stats.BusyCycles += float64(cycles)
		if n.tel != nil {
			n.tel.busyCycles.Add(cycles)
		}
	}
	n.eng.After(n.off.ctl.TickNs(), n.offloadTick)
}

// slowDetour admits one packet to the host slow path at virtual time
// now, returning the extra latency of the detour, or ok=false when the
// host backlog exceeds the wait bound and the packet is shed. The slow
// path is a fluid single server pooling every host core; host cycles
// are charged only for admitted packets.
func (st *offloadState) slowDetour(now int64) (extraNs int64, ok bool) {
	f := float64(now)
	if st.freeAtF < f {
		st.freeAtF = f
	}
	wait := st.freeAtF - f
	if wait > float64(st.cfg.MaxWaitNs) {
		return 0, false
	}
	st.cpu.Charge(st.cfg.CyclesPerPkt)
	st.freeAtF += st.serviceNs
	return int64(wait+st.serviceNs) + st.cfg.DetourNs, true
}

// HostCores implements dataplane.HostAccountant: the mean host cores
// burned by the slow path over the run (zero without an offload control
// plane — the pure-offload FlowValve claim).
func (n *NIC) HostCores(durationNs int64) float64 {
	if n.off == nil {
		return 0
	}
	return n.off.cpu.CoresUsed(durationNs)
}

// OffloadStats implements dataplane.Offloader.
func (n *NIC) OffloadStats() dataplane.OffloadStats {
	if n.off == nil {
		return dataplane.OffloadStats{}
	}
	s := n.off.ctl.Stats()
	return dataplane.OffloadStats{
		Enabled:        true,
		Offloaded:      s.Offloaded,
		TableCap:       s.TableCap,
		QueueDepth:     s.QueueDepth,
		QueueCap:       s.QueueCap,
		ThresholdBytes: s.ThresholdBytes,
		SketchErrBytes: s.SketchErrBytes,
		FastPkts:       s.FastPkts,
		SlowPkts:       s.SlowPkts,
		FastBytes:      s.FastBytes,
		SlowBytes:      s.SlowBytes,
		Installs:       s.Installs,
		Demotions:      s.Demotions,
		QueueDrops:     s.QueueDrops,
		StaleSkips:     s.StaleSkips,
		TableFull:      s.TableFull,
		SlowPathDrops:  n.stats.SlowPathDrops,
		Invalidations:  n.off.invalidations,
		Policy:         s.Policy,
	}
}

var (
	_ dataplane.HostAccountant = (*NIC)(nil)
	_ dataplane.Offloader      = (*NIC)(nil)
)
