package nic

// CostModel is the per-stage cycle cost table of the worker pipeline.
//
// Calibration. The paper measures FlowValve forwarding 64B packets at
// 19.69Mpps while enforcing a fair-queueing policy (Fig 13). With the
// modelled 50 worker contexts at 800MHz that budget is
//
//	50 × 800e6 / 19.69e6 ≈ 2031 cycles/packet.
//
// The fair-queueing tree has a two-class path (root → leaf), so the
// default table sums to 1740 + 60 + 2×60 + 40 + 70 (amortized update
// share ≈ 0) ≈ 1970–2030 cycles per packet depending on cache and update
// behaviour, reproducing the paper's processing-bound small-packet rate
// while leaving 1518B and 1024B packets line-rate-bound (3.24/4.77 Mpps
// at 40Gbps), as in Fig 13.
type CostModel struct {
	// Pipeline covers the fixed stages outside classification and
	// scheduling: Rx DMA pull, buffer allocation, header rewrite, Tx
	// DMA descriptor setup, reorder bookkeeping.
	Pipeline int64
	// PipelineBatch is the share of Pipeline that is fixed per service
	// batch rather than per packet (ring doorbell read, buffer credit
	// pull, reorder-slot allocation). A batched service routine charges
	// PipelineBatch once plus Pipeline−PipelineBatch per packet, so at
	// BatchSize 1 the charge is exactly Pipeline and the unbatched
	// model is unchanged.
	PipelineBatch int64
	// Parse is header parsing up to the classification key.
	Parse int64
	// CacheHit / CacheMiss are the exact-match flow cache outcomes;
	// a miss walks the filter rules (the 10× gap the paper cites).
	CacheHit  int64
	CacheMiss int64
	// CacheEvict is the extra charge when a miss's insert displaces a
	// live entry: the CLOCK sweep over the probe window plus the
	// victim's writeback.
	CacheEvict int64
	// SchedPerClass is charged per class on the hierarchy label (the
	// lastSeen stamp, try-lock, and consumption count).
	SchedPerClass int64
	// Meter is the leaf meter instruction.
	Meter int64
	// Update is charged per executed epoch update (token arithmetic,
	// child-rate recomputation).
	Update int64
	// Borrow is charged per shadow-bucket query on the borrow chain.
	Borrow int64
	// TxEnqueue covers the traffic-manager enqueue of forwarded
	// packets.
	TxEnqueue int64
	// ShardSteer is charged per classified packet when the scheduling
	// function is sharded: the owner-shard hash plus the feed-ring
	// ticket CAS that steers the packet to its shard engine.
	ShardSteer int64
	// ShardDoorbell is charged once per shard feed lane a service burst
	// touches: the write that wakes the shard engine to drain its ring.
	ShardDoorbell int64
	// RuleInstall / RuleEvict are charged per offload rule-table
	// operation executed by the control tick (internal/offload): the
	// exact-match table write plus the wildcard-rule shadow update, and
	// the delete plus free-list relink. They land on the worker budget —
	// rule churn steals the same micro-engine cycles that forward
	// packets, which is why the insertion rate is bounded.
	RuleInstall int64
	RuleEvict   int64
	// SlowPath is the NIC-side exception-path charge for a packet whose
	// flow holds no fast-path rule: the miss verdict and the host-bound
	// descriptor setup. The host-side cost is modelled separately by
	// SlowPathConfig.CyclesPerPkt.
	SlowPath int64
	// MemStall is the per-packet memory-access latency (DMA pulls,
	// CTM/DRAM reads) in cycles. It adds to a packet's service LATENCY
	// but not to a micro-engine's occupancy as long as the ME has
	// enough hardware thread contexts to switch to while one context
	// waits (§III-B: "the processing core is further threaded").
	MemStall int64
}

// Defaults fills unset fields with the calibrated values.
func (c CostModel) Defaults() CostModel {
	if c.Pipeline <= 0 {
		c.Pipeline = 1290
	}
	if c.PipelineBatch <= 0 {
		c.PipelineBatch = 400
	}
	if c.PipelineBatch > c.Pipeline {
		c.PipelineBatch = c.Pipeline
	}
	if c.Parse <= 0 {
		c.Parse = 120
	}
	if c.CacheHit <= 0 {
		c.CacheHit = 60
	}
	if c.CacheMiss <= 0 {
		c.CacheMiss = 600
	}
	if c.CacheEvict <= 0 {
		c.CacheEvict = 200
	}
	if c.SchedPerClass <= 0 {
		c.SchedPerClass = 60
	}
	if c.Meter <= 0 {
		c.Meter = 40
	}
	if c.Update <= 0 {
		c.Update = 260
	}
	if c.Borrow <= 0 {
		c.Borrow = 40
	}
	if c.TxEnqueue <= 0 {
		c.TxEnqueue = 400
	}
	if c.ShardSteer <= 0 {
		c.ShardSteer = 20
	}
	if c.ShardDoorbell <= 0 {
		c.ShardDoorbell = 80
	}
	if c.RuleInstall <= 0 {
		c.RuleInstall = 2600
	}
	if c.RuleEvict <= 0 {
		c.RuleEvict = 1400
	}
	if c.SlowPath <= 0 {
		c.SlowPath = 160
	}
	if c.MemStall <= 0 {
		c.MemStall = 3000
	}
	return c
}

// PerPacket returns the nominal forwarding cost for a path of the given
// length with a cache hit and no epoch update — the steady-state cost
// used by capacity estimations in the experiment harnesses.
func (c CostModel) PerPacket(pathLen int) int64 {
	return c.Pipeline + c.Parse + c.CacheHit +
		c.SchedPerClass*int64(pathLen) + c.Meter + c.TxEnqueue
}
