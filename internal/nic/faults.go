package nic

import (
	"flowvalve/internal/dataplane"
	"flowvalve/internal/faults"
)

// This file is the NIC model's fault-injection surface (see
// internal/faults). All hooks run on the DES goroutine — the injector
// schedules them as simulation events — so they mutate NIC state with
// the same single-threaded discipline as the service loop itself.

// stallWindow is one in-progress worker-core stall: a fault that wedges
// k micro-engine contexts (a firmware hang, an ICC deadlock, a DMA
// engine stall) for a fixed window. Idle contexts are captured
// immediately; busy ones are captured as they release (debt), modelling
// a fault that bites a context at its next service boundary.
type stallWindow struct {
	parked []*cluster // one entry per captured context, by home cluster
	debt   int        // contexts still to capture as they release
}

// StallCores implements faults.CoreStaller: wedge k worker contexts for
// durNs. Contexts captured here neither pull ring packets nor service
// batches until the window ends; packets back up in the Rx rings and,
// under enough pressure, overflow them — exactly the degradation a
// stalled island produces on the NP.
func (n *NIC) StallCores(k int, durNs int64) {
	if k <= 0 || durNs <= 0 {
		return
	}
	w := &stallWindow{}
	// Capture idle contexts first, round-robin across clusters so the
	// stall spreads like the load balancer's own distribution.
	remaining := k
	for remaining > 0 {
		grabbed := false
		for _, cl := range n.clusters {
			if remaining == 0 {
				break
			}
			if cl.idle > 0 {
				cl.idle--
				w.parked = append(w.parked, cl)
				remaining--
				grabbed = true
			}
		}
		if !grabbed {
			break
		}
	}
	// The rest are busy right now: collect them as they release.
	w.debt = remaining
	n.stalls = append(n.stalls, w)
	n.eng.After(durNs, func() { n.endStall(w) })
}

// parkIfStalled gives a releasing context to the oldest stall window
// still owed contexts. Returns true when the context was captured.
func (n *NIC) parkIfStalled(cl *cluster) bool {
	for _, w := range n.stalls {
		if w.debt > 0 {
			w.debt--
			w.parked = append(w.parked, cl)
			return true
		}
	}
	return false
}

// endStall releases every context a window captured, re-entering each
// through the normal release path so they immediately drain whatever
// backed up in the rings during the stall.
func (n *NIC) endStall(w *stallWindow) {
	for i, sw := range n.stalls {
		if sw == w {
			n.stalls = append(n.stalls[:i], n.stalls[i+1:]...)
			break
		}
	}
	w.debt = 0
	parked := w.parked
	w.parked = nil
	for _, cl := range parked {
		n.releaseContext(cl)
	}
}

// FlushFlowCache implements faults.CacheFlusher: drop the exact-match
// flow cache, forcing every live flow back through the slow classify
// path (CacheMiss cycles) — an eviction storm.
func (n *NIC) FlushFlowCache() {
	n.cls.Flush()
}

// ClampRxRings implements faults.RingClamper: artificially cap the
// usable depth of every Rx ring at maxPkts, turning host bursts into
// rx-ring overflow drops.
func (n *NIC) ClampRxRings(maxPkts int) {
	if maxPkts < 1 {
		maxPkts = 1
	}
	n.ringClamp = maxPkts
}

// UnclampRxRings restores the configured ring depth.
func (n *NIC) UnclampRxRings() {
	n.ringClamp = 0
}

// ApplyFaults implements dataplane.FaultInjectable: register the NIC's
// hook points — and, when a scheduler is attached, its fault sink — with
// the injector. The injector validates at Arm time that every planned
// fault kind found a target.
func (n *NIC) ApplyFaults(inj *faults.Injector) error {
	inj.Register(n)
	if s := n.scheduler(); s != nil {
		inj.Register(s)
	}
	return nil
}

// Compile-time checks: the NIC advertises the fault-injection probe and
// implements every NIC-scoped hook interface.
var (
	_ dataplane.FaultInjectable = (*NIC)(nil)
	_ faults.CoreStaller        = (*NIC)(nil)
	_ faults.CacheFlusher       = (*NIC)(nil)
	_ faults.RingClamper        = (*NIC)(nil)
)
