package nic

import (
	"testing"

	"flowvalve/internal/host"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

func TestAttachOffloadValidation(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	if err := r.nic.AttachOffload(nil, SlowPathConfig{}); err == nil {
		t.Fatal("nil controller accepted")
	}
	ctl, err := offload.New(offload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err == nil {
		t.Fatal("double attach accepted")
	}
}

// Without an offload control plane the probes report the pure-offload
// story: no host cores, zeroed stats.
func TestOffloadProbesDisabled(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	if s := r.nic.OffloadStats(); s.Enabled {
		t.Fatalf("OffloadStats enabled without AttachOffload: %+v", s)
	}
	if c := r.nic.HostCores(1e9); c != 0 {
		t.Fatalf("HostCores = %v without a slow path, want 0", c)
	}
}

// TestPromoteDemoteRepromote is the cache-coherence regression: an
// elephant is promoted to the fast path, demoted when it goes quiet
// (which must tombstone its classifier cache entry), and re-promoted
// when it returns — with every transition visible in the stats.
func TestPromoteDemoteRepromote(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	ctl, err := offload.New(offload.Config{
		TableCap:              16,
		TopK:                  16,
		WindowNs:              1_000_000,
		TickNs:                1_000_000,
		InitialThresholdBytes: 4096,
		Policy:                offload.NewStatic(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err != nil {
		t.Fatal(err)
	}

	alloc := &packet.Alloc{}
	const (
		app  = packet.AppID(2)
		flow = packet.FlowID(5)
	)
	// Phase 1: the flow blasts 1Gbps for 5ms, then goes quiet.
	if _, err := trafficgen.NewCBR(r.eng, alloc, flow, app, 1500, 1e9, 0, 5e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	// Phase 2: it returns at 20ms.
	if _, err := trafficgen.NewCBR(r.eng, alloc, flow, app, 1500, 1e9, 20e6, 25e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}

	var promoted, demoted bool
	var invalAtDemote uint64
	r.eng.At(4_000_000, func() { promoted = ctl.IsOffloaded(app, flow) })
	r.eng.At(19_000_000, func() {
		demoted = !ctl.IsOffloaded(app, flow)
		invalAtDemote = r.nic.FlowCacheStats().Invalidations
	})
	r.eng.RunUntil(30_000_000)

	if !promoted {
		t.Fatal("flow not on the fast path at 4ms (promotion)")
	}
	if !demoted {
		t.Fatal("quiet flow still on the fast path at 19ms (demotion)")
	}
	if invalAtDemote == 0 {
		t.Fatal("demotion left the classifier cache entry standing — stale fast-path binding")
	}
	if !ctl.IsOffloaded(app, flow) {
		t.Fatal("returning flow not re-promoted by 30ms")
	}
	s := r.nic.OffloadStats()
	if !s.Enabled || s.Installs < 2 || s.Demotions < 1 || s.Invalidations < 1 {
		t.Fatalf("transition counters wrong: %+v", s)
	}
	// Pre-promotion packets crossed the scheduled slow path: the qdisc
	// must have re-injected them, not just counted them.
	if s.SlowQdisc != SlowQdiscHTB {
		t.Fatalf("SlowQdisc = %q, want default %q", s.SlowQdisc, SlowQdiscHTB)
	}
	if s.SlowPkts == 0 || s.SlowReinjected == 0 {
		t.Fatalf("slow path never scheduled a packet: SlowPkts=%d SlowReinjected=%d",
			s.SlowPkts, s.SlowReinjected)
	}
	// The re-promoted flow's packets were delivered after re-resolving
	// through the invalidated cache.
	var phase2 int
	for _, p := range r.delivered {
		if p.EgressAt > 20e6 {
			phase2++
		}
	}
	if phase2 == 0 {
		t.Fatal("no packets delivered after demotion — cache re-resolution broken")
	}
}

// TestSlowPathShedding saturates a deliberately feeble host slow path
// (one core, 1ms per packet) with traffic that never crosses the offload
// threshold: the wait bound must shed the excess as DropSlowPath, the
// drops must land in every stats surface, and the slow path must burn
// visible host cores.
func TestSlowPathShedding(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	ctl, err := offload.New(offload.Config{
		InitialThresholdBytes: 1 << 40, // nothing ever offloads
		Policy:                offload.NewStatic(1 << 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = r.nic.AttachOffload(ctl, SlowPathConfig{
		Host:         host.Config{Cores: 1},
		CyclesPerPkt: 2.3e6, // 1ms/packet at 2.3GHz — the host is the bottleneck
		MaxWaitNs:    100_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 9, 1, 1500, 1e9, 0, 5e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(10_000_000)

	st := r.nic.Stats()
	os := r.nic.OffloadStats()
	if os.FastPkts != 0 || os.Offloaded != 0 {
		t.Fatalf("traffic crossed an unreachable threshold: %+v", os)
	}
	if os.SlowPkts == 0 {
		t.Fatal("no packets observed on the slow path")
	}
	if st.SlowPathDrops == 0 {
		t.Fatal("saturated slow path shed nothing")
	}
	if got := uint64(r.drops[DropSlowPath]); got != st.SlowPathDrops {
		t.Fatalf("OnDrop saw %d slow-path drops, stats say %d", got, st.SlowPathDrops)
	}
	if os.SlowPathDrops != st.SlowPathDrops {
		t.Fatalf("OffloadStats.SlowPathDrops = %d, NIC stats %d", os.SlowPathDrops, st.SlowPathDrops)
	}
	if q := r.nic.QdiscStats(); q.Dropped < st.SlowPathDrops {
		t.Fatalf("QdiscStats.Dropped = %d misses %d slow-path drops", q.Dropped, st.SlowPathDrops)
	}
	if cores := r.nic.HostCores(10_000_000); cores <= 0 || cores > 1 {
		t.Fatalf("HostCores = %v, want in (0, 1] for a one-core slow path", cores)
	}
	// Admitted ≈ serviceable: 5ms of offered load into a 1ms/pkt server
	// bounded by a 100µs wait can deliver only a handful.
	if len(r.delivered) == 0 || len(r.delivered) > 20 {
		t.Fatalf("delivered %d packets, want a handful (shed the rest)", len(r.delivered))
	}
}

// TestSlowPathConfigDefaultsIdempotent pins the Defaults contract:
// applying it to its own output changes nothing, so configs can be
// defaulted at any layer without drift.
func TestSlowPathConfigDefaultsIdempotent(t *testing.T) {
	for _, cfg := range []SlowPathConfig{
		{},
		{Qdisc: SlowQdiscPrio, QueuePkts: 7, MaxWaitNs: 123, ReinjectBps: 1e9},
		{Host: host.Config{Cores: 3}, CyclesPerPkt: 5000, DetourNs: 1},
	} {
		once := cfg.Defaults()
		twice := once.Defaults()
		if once != twice {
			t.Errorf("Defaults not idempotent:\n once=%+v\ntwice=%+v", once, twice)
		}
	}
	d := SlowPathConfig{}.Defaults()
	if d.Qdisc != SlowQdiscHTB || d.QueuePkts <= 0 || d.ReinjectBps <= 0 {
		t.Fatalf("zero-value defaults incomplete: %+v", d)
	}
}

// TestSlowPathShedBoundary pins the inclusive-serve admission bound
// with exact arithmetic: serviceNs = 1000 (1000 cycles on one 1GHz
// core) and MaxWaitNs = 1000, so the packet behind a backlog of one
// projects a wait of exactly MaxWaitNs and must be SERVED; only the
// packet behind a backlog of two (wait 2000 > 1000) sheds.
func TestSlowPathShedBoundary(t *testing.T) {
	tr := tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "leaf", Parent: "root"}).
		MustBuild()
	leaf, _ := tr.Lookup("leaf")
	eng := sim.New()
	sp, err := newSlowPath(eng, tr, SlowPathConfig{
		Host:         host.Config{Cores: 1, FreqHz: 1e9},
		CyclesPerPkt: 1000,
		MaxWaitNs:    1000,
		ReinjectBps:  1e15, // byte projection never dominates
	}.Defaults(), func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if sp.serviceNs != 1000 {
		t.Fatalf("serviceNs = %v, want exactly 1000", sp.serviceNs)
	}
	alloc := &packet.Alloc{}
	mk := func() *packet.Packet { return alloc.New(1, 1, 100, 0) }
	// The engine does not run between admits, so the backlog only grows.
	if !sp.admit(mk(), leaf) {
		t.Fatal("empty slow path refused a packet (wait 0)")
	}
	if !sp.admit(mk(), leaf) {
		t.Fatal("wait == MaxWaitNs shed — the bound must be inclusive-serve")
	}
	if sp.admit(mk(), leaf) {
		t.Fatal("wait > MaxWaitNs served — the bound is gone")
	}
	if sp.shed != 1 || sp.classShed[leaf.ID] != 1 {
		t.Fatalf("shed accounting: total=%d class=%d, want 1/1", sp.shed, sp.classShed[leaf.ID])
	}
	if sp.admitted != 2 || sp.backlogPkts != 2 {
		t.Fatalf("admit accounting: admitted=%d backlog=%d, want 2/2", sp.admitted, sp.backlogPkts)
	}
}

// TestDemoteHookStacking is the chaining regression: a hook installed
// before AttachOffload and a second one stacked after it must BOTH keep
// firing on demotion, with the NIC's cache invalidation still in front.
// (A replacement hook that fails to invoke the captured prev silently
// disconnects every earlier demotion listener.)
func TestDemoteHookStacking(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	var gotA, gotB int
	ctl, err := offload.New(offload.Config{
		TableCap:              16,
		TopK:                  16,
		WindowNs:              1_000_000,
		TickNs:                1_000_000,
		InitialThresholdBytes: 4096,
		Policy:                offload.NewStatic(4096),
		OnDemote:              func(app packet.AppID, flow packet.FlowID) { gotA++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err != nil {
		t.Fatal(err)
	}
	// Stack a second hook on top of the NIC's chained one.
	prev := ctl.DemoteHook()
	ctl.SetDemoteHook(func(app packet.AppID, flow packet.FlowID) {
		gotB++
		if prev != nil {
			prev(app, flow)
		}
	})

	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 5, 2, 1500, 1e9, 0, 5e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(20_000_000) // quiet after 5ms — the flow demotes

	if s := r.nic.OffloadStats(); s.Demotions == 0 {
		t.Fatalf("no demotion happened: %+v", s)
	}
	if gotA == 0 {
		t.Fatal("hook installed before AttachOffload was disconnected (prev not invoked)")
	}
	if gotB == 0 {
		t.Fatal("hook stacked after AttachOffload never fired")
	}
	if inv := r.nic.FlowCacheStats().Invalidations; inv == 0 {
		t.Fatal("cache invalidation dropped out of the demote chain")
	}
}

// TestSlowPathQdiscVariants runs the same un-offloadable workload
// through both slow-path schedulers: packets must be scheduled (not
// just delayed) and re-injected, the per-class split must cover the
// drops, and the prio backend must work without the per-class probe.
func TestSlowPathQdiscVariants(t *testing.T) {
	for _, kind := range []string{SlowQdiscHTB, SlowQdiscPrio} {
		t.Run(kind, func(t *testing.T) {
			r := newRig(t, Config{}, 40e9, false)
			ctl, err := offload.New(offload.Config{
				InitialThresholdBytes: 1 << 40,
				Policy:                offload.NewStatic(1 << 40),
			})
			if err != nil {
				t.Fatal(err)
			}
			err = r.nic.AttachOffload(ctl, SlowPathConfig{
				Host:         host.Config{Cores: 1},
				CyclesPerPkt: 23_000, // 10µs/pkt at 2.3GHz
				MaxWaitNs:    100_000,
				Qdisc:        kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			alloc := &packet.Alloc{}
			if _, err := trafficgen.NewCBR(r.eng, alloc, 9, 1, 1500, 2e9, 0, 5e6, r.nic.Inject); err != nil {
				t.Fatal(err)
			}
			r.eng.RunUntil(10_000_000)

			os := r.nic.OffloadStats()
			if os.SlowQdisc != kind {
				t.Fatalf("SlowQdisc = %q, want %q", os.SlowQdisc, kind)
			}
			if os.SlowReinjected == 0 {
				t.Fatal("slow path scheduled nothing back into the Tx path")
			}
			if len(r.delivered) == 0 {
				t.Fatal("no slow-path packet reached the wire")
			}
			if os.SlowShed+os.SlowQueueDrops != os.SlowPathDrops {
				t.Fatalf("drop split %d+%d != SlowPathDrops %d",
					os.SlowShed, os.SlowQueueDrops, os.SlowPathDrops)
			}
			classes := r.nic.SlowPathClasses()
			if len(classes) == 0 {
				t.Fatal("SlowPathClasses empty with an attached slow path")
			}
			var classShed uint64
			for _, c := range classes {
				classShed += c.Shed + c.QueueDrops
			}
			if classShed != os.SlowPathDrops {
				t.Fatalf("per-class drops %d != total %d", classShed, os.SlowPathDrops)
			}
		})
	}
}

// TestAttachOffloadBadQdisc: an unknown slow-path scheduler is a
// configuration error, not a silent fallback.
func TestAttachOffloadBadQdisc(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	ctl, err := offload.New(offload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{Qdisc: "cbq"}); err == nil {
		t.Fatal("unknown qdisc accepted")
	}
	// The failed attach must not leave half-wired state behind.
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err != nil {
		t.Fatalf("re-attach after failed attach: %v", err)
	}
}
