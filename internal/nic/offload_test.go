package nic

import (
	"testing"

	"flowvalve/internal/host"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
	"flowvalve/internal/trafficgen"
)

func TestAttachOffloadValidation(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	if err := r.nic.AttachOffload(nil, SlowPathConfig{}); err == nil {
		t.Fatal("nil controller accepted")
	}
	ctl, err := offload.New(offload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err == nil {
		t.Fatal("double attach accepted")
	}
}

// Without an offload control plane the probes report the pure-offload
// story: no host cores, zeroed stats.
func TestOffloadProbesDisabled(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	if s := r.nic.OffloadStats(); s.Enabled {
		t.Fatalf("OffloadStats enabled without AttachOffload: %+v", s)
	}
	if c := r.nic.HostCores(1e9); c != 0 {
		t.Fatalf("HostCores = %v without a slow path, want 0", c)
	}
}

// TestPromoteDemoteRepromote is the cache-coherence regression: an
// elephant is promoted to the fast path, demoted when it goes quiet
// (which must tombstone its classifier cache entry), and re-promoted
// when it returns — with every transition visible in the stats.
func TestPromoteDemoteRepromote(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	ctl, err := offload.New(offload.Config{
		TableCap:              16,
		TopK:                  16,
		WindowNs:              1_000_000,
		TickNs:                1_000_000,
		InitialThresholdBytes: 4096,
		Policy:                offload.NewStatic(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.nic.AttachOffload(ctl, SlowPathConfig{}); err != nil {
		t.Fatal(err)
	}

	alloc := &packet.Alloc{}
	const (
		app  = packet.AppID(2)
		flow = packet.FlowID(5)
	)
	// Phase 1: the flow blasts 1Gbps for 5ms, then goes quiet.
	if _, err := trafficgen.NewCBR(r.eng, alloc, flow, app, 1500, 1e9, 0, 5e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	// Phase 2: it returns at 20ms.
	if _, err := trafficgen.NewCBR(r.eng, alloc, flow, app, 1500, 1e9, 20e6, 25e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}

	var promoted, demoted bool
	var invalAtDemote uint64
	r.eng.At(4_000_000, func() { promoted = ctl.IsOffloaded(app, flow) })
	r.eng.At(19_000_000, func() {
		demoted = !ctl.IsOffloaded(app, flow)
		invalAtDemote = r.nic.FlowCacheStats().Invalidations
	})
	r.eng.RunUntil(30_000_000)

	if !promoted {
		t.Fatal("flow not on the fast path at 4ms (promotion)")
	}
	if !demoted {
		t.Fatal("quiet flow still on the fast path at 19ms (demotion)")
	}
	if invalAtDemote == 0 {
		t.Fatal("demotion left the classifier cache entry standing — stale fast-path binding")
	}
	if !ctl.IsOffloaded(app, flow) {
		t.Fatal("returning flow not re-promoted by 30ms")
	}
	s := r.nic.OffloadStats()
	if !s.Enabled || s.Installs < 2 || s.Demotions < 1 || s.Invalidations < 1 {
		t.Fatalf("transition counters wrong: %+v", s)
	}
	// The re-promoted flow's packets were delivered after re-resolving
	// through the invalidated cache.
	var phase2 int
	for _, p := range r.delivered {
		if p.EgressAt > 20e6 {
			phase2++
		}
	}
	if phase2 == 0 {
		t.Fatal("no packets delivered after demotion — cache re-resolution broken")
	}
}

// TestSlowPathShedding saturates a deliberately feeble host slow path
// (one core, 1ms per packet) with traffic that never crosses the offload
// threshold: the wait bound must shed the excess as DropSlowPath, the
// drops must land in every stats surface, and the slow path must burn
// visible host cores.
func TestSlowPathShedding(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	ctl, err := offload.New(offload.Config{
		InitialThresholdBytes: 1 << 40, // nothing ever offloads
		Policy:                offload.NewStatic(1 << 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = r.nic.AttachOffload(ctl, SlowPathConfig{
		Host:         host.Config{Cores: 1},
		CyclesPerPkt: 2.3e6, // 1ms/packet at 2.3GHz — the host is the bottleneck
		MaxWaitNs:    100_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 9, 1, 1500, 1e9, 0, 5e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(10_000_000)

	st := r.nic.Stats()
	os := r.nic.OffloadStats()
	if os.FastPkts != 0 || os.Offloaded != 0 {
		t.Fatalf("traffic crossed an unreachable threshold: %+v", os)
	}
	if os.SlowPkts == 0 {
		t.Fatal("no packets observed on the slow path")
	}
	if st.SlowPathDrops == 0 {
		t.Fatal("saturated slow path shed nothing")
	}
	if got := uint64(r.drops[DropSlowPath]); got != st.SlowPathDrops {
		t.Fatalf("OnDrop saw %d slow-path drops, stats say %d", got, st.SlowPathDrops)
	}
	if os.SlowPathDrops != st.SlowPathDrops {
		t.Fatalf("OffloadStats.SlowPathDrops = %d, NIC stats %d", os.SlowPathDrops, st.SlowPathDrops)
	}
	if q := r.nic.QdiscStats(); q.Dropped < st.SlowPathDrops {
		t.Fatalf("QdiscStats.Dropped = %d misses %d slow-path drops", q.Dropped, st.SlowPathDrops)
	}
	if cores := r.nic.HostCores(10_000_000); cores <= 0 || cores > 1 {
		t.Fatalf("HostCores = %v, want in (0, 1] for a one-core slow path", cores)
	}
	// Admitted ≈ serviceable: 5ms of offered load into a 1ms/pkt server
	// bounded by a 100µs wait can deliver only a handful.
	if len(r.delivered) == 0 || len(r.delivered) > 20 {
		t.Fatalf("delivered %d packets, want a handful (shed the rest)", len(r.delivered))
	}
}
