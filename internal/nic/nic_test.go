package nic

import (
	"testing"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

// rig bundles a NIC with a single match-all class for tests.
type rig struct {
	eng   *sim.Engine
	nic   *NIC
	sched *core.Scheduler

	delivered []*packet.Packet
	drops     map[DropReason]int
}

func newRig(t *testing.T, cfg Config, rootRateBps float64, withSched bool) *rig {
	t.Helper()
	tr := tree.NewBuilder().
		Root("root", rootRateBps).
		Add(tree.ClassSpec{Name: "leaf", Parent: "root"}).
		MustBuild()
	eng := sim.New()
	cls, err := classifier.New(tr, []classifier.Rule{
		{App: classifier.AnyApp, Flow: classifier.AnyFlow, Class: "leaf"},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{eng: eng, drops: make(map[DropReason]int)}
	if withSched {
		r.sched, err = core.New(tr, eng.Clock(), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
	}
	r.nic, err = New(eng, cfg, cls, r.sched, Callbacks{
		OnDeliver: func(p *packet.Packet) { r.delivered = append(r.delivered, p) },
		OnDrop:    func(p *packet.Packet, reason DropReason) { r.drops[reason]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	tr := tree.NewBuilder().Root("r", 1e9).Add(tree.ClassSpec{Name: "l", Parent: "r"}).MustBuild()
	cls, _ := classifier.New(tr, nil, "l")
	if _, err := New(nil, Config{}, cls, nil, Callbacks{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(eng, Config{}, nil, nil, Callbacks{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

func TestDefaultsAreAgilioClass(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Cores != 50 || cfg.CoreFreqHz != 800e6 || cfg.WireRateBps != 40e9 || cfg.WirePorts != 4 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

// A single packet flows through the pipeline: service time + wire
// serialization + fixed latency, delivered exactly once.
func TestSinglePacketPipeline(t *testing.T) {
	r := newRig(t, Config{}, 40e9, false)
	var a packet.Alloc
	p := a.New(0, 0, 1500, 0)
	r.nic.Inject(p)
	r.eng.Run()
	if len(r.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(r.delivered))
	}
	cfg := r.nic.Config()
	if p.EgressAt <= 0 {
		t.Fatal("EgressAt not stamped")
	}
	minLatency := cfg.FixedLatencyNs
	if p.EgressAt < minLatency {
		t.Fatalf("egress %dns before the fixed pipeline latency %dns", p.EgressAt, minLatency)
	}
	st := r.nic.Stats()
	if st.Injected != 1 || st.Delivered != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// Without a scheduler the NIC is a pass-through bounded by the wire.
func TestWireRateBound(t *testing.T) {
	r := newRig(t, Config{WireRateBps: 10e9, WirePorts: 1}, 100e9, false)
	alloc := &packet.Alloc{}
	// Offer 20Gbps of 1518B frames for 20ms.
	if _, err := trafficgen.NewCBR(r.eng, alloc, 1, 0, 1518, 20e9, 0, 20e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	var bytes int64
	for _, p := range r.delivered {
		bytes += int64(p.WireBytes())
	}
	// Wire-rate bound: no more than 10G×20ms plus the TM backlog that
	// drains after the sources stop, the packets in service on the
	// cores, and their wire overhead.
	cfg := r.nic.Config()
	slack := cfg.TMQueueBytes + int64(cfg.Cores)*1542 + int64(float64(cfg.TMQueueBytes)*0.02)
	bound := int64(10e9/8*0.020) + slack
	if bytes > bound {
		t.Fatalf("delivered %d wire-bytes, wire bound %d", bytes, bound)
	}
	if r.drops[DropTM] == 0 {
		t.Fatal("expected TM tail drops when over-driving the wire without a scheduler")
	}
}

// Per-flow packet order is preserved end to end.
func TestPerFlowOrderPreserved(t *testing.T) {
	r := newRig(t, Config{}, 100e9, false)
	var a packet.Alloc
	const n = 500
	for i := 0; i < n; i++ {
		p := a.New(3, 0, 200, r.eng.Now())
		r.nic.Inject(p)
	}
	r.eng.Run()
	if len(r.delivered) != n {
		t.Fatalf("delivered %d, want %d", len(r.delivered), n)
	}
	var last uint64
	for _, p := range r.delivered {
		if p.Flow != 3 {
			continue
		}
		if p.ID < last {
			t.Fatal("per-flow order violated")
		}
		last = p.ID
	}
}

// The FlowValve scheduler drops the excess; once the initial configured
// burst has drained (the first few ms) the TM stays congestion-free.
func TestSchedulerPreventsTMCongestion(t *testing.T) {
	r := newRig(t, Config{WireRateBps: 40e9}, 10e9, true)
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 1, 0, 1518, 20e9, 0, 60e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(10e6)
	warmupTM := r.nic.Stats().TMDrops
	r.eng.Run()
	st := r.nic.Stats()
	if st.SchedDrops == 0 {
		t.Fatal("scheduler dropped nothing at 2× the policy rate")
	}
	if st.TMDrops != warmupTM {
		t.Fatalf("TM overflowed %d times in steady state despite the scheduler",
			st.TMDrops-warmupTM)
	}
	// Delivered ≈ 10G of wire bytes in the steady window [10ms, 60ms].
	var bytes int64
	for _, p := range r.delivered {
		if p.EgressAt >= 10e6 {
			bytes += int64(p.WireBytes())
		}
	}
	rate := float64(bytes) * 8 / 0.05
	if rate < 9e9 || rate > 11e9 {
		t.Fatalf("delivered %.2fG wire, want ≈10G", rate/1e9)
	}
}

// Unclassified packets (no rule, no default) are dropped and counted.
func TestUnclassifiedDrop(t *testing.T) {
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "leaf", Parent: "root"}).
		MustBuild()
	eng := sim.New()
	cls, _ := classifier.New(tr, []classifier.Rule{{App: 1, Flow: classifier.AnyFlow, Class: "leaf"}}, "")
	sched, _ := core.New(tr, eng.Clock(), core.Config{})
	var drops int
	dev, err := New(eng, Config{}, cls, sched, Callbacks{
		OnDrop: func(p *packet.Packet, reason DropReason) {
			if reason == DropUnclassified {
				drops++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a packet.Alloc
	dev.Inject(a.New(0, 99, 100, 0)) // app 99 matches nothing
	eng.Run()
	if drops != 1 || dev.Stats().Unclassified != 1 {
		t.Fatalf("unclassified drops = %d / %d, want 1/1", drops, dev.Stats().Unclassified)
	}
}

// Over-driving the processing capacity overflows the Rx rings.
func TestRxRingOverflow(t *testing.T) {
	cfg := Config{Cores: 1, CoreFreqHz: 100e6, RxRingPkts: 16}
	r := newRig(t, cfg, 100e9, false)
	var a packet.Alloc
	for i := 0; i < 200; i++ {
		r.nic.Inject(a.New(0, 0, 64, 0))
	}
	r.eng.Run()
	if r.drops[DropRxRing] == 0 {
		t.Fatal("expected Rx ring drops at 200 back-to-back packets on a slow core")
	}
	st := r.nic.Stats()
	if st.RxRingDrops+st.Delivered != 200 {
		t.Fatalf("accounting mismatch: %+v", st)
	}
}

// Delivered throughput at saturation matches the cycle model.
func TestProcessingBoundThroughput(t *testing.T) {
	cfg := Config{Cores: 10, CoreFreqHz: 800e6}
	r := newRig(t, cfg, 1000e9, true) // policy never binds
	alloc := &packet.Alloc{}
	flows := []packet.FlowID{0, 1, 2, 3}
	if _, err := trafficgen.NewSaturator(r.eng, alloc, flows, 0, 64, 20e9, 0, 20e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	pps := float64(len(r.delivered)) / 0.02
	want := float64(cfg.Cores) * cfg.CoreFreqHz / float64(Config{}.Defaults().Costs.PerPacket(2))
	if pps < want*0.9 || pps > want*1.1 {
		t.Fatalf("delivered %.2fMpps, cycle model predicts %.2fMpps", pps/1e6, want/1e6)
	}
}

func TestQueuedBytes(t *testing.T) {
	r := newRig(t, Config{WireRateBps: 1e9, WirePorts: 1}, 100e9, false)
	var a packet.Alloc
	for i := 0; i < 10; i++ {
		r.nic.Inject(a.New(0, 0, 1500, 0))
	}
	// Run just past the service time so packets sit in the TM.
	r.eng.RunUntil(20_000)
	if r.nic.QueuedBytes() == 0 {
		t.Fatal("expected TM backlog on a slow wire")
	}
	r.eng.Run()
	if r.nic.QueuedBytes() != 0 {
		t.Fatal("TM backlog not drained")
	}
}

func TestDropReasonString(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropSched: "sched", DropRxRing: "rx-ring", DropTM: "tm",
		DropUnclassified: "unclassified", DropReason(0): "invalid",
	} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

// The load balancer spreads work evenly across the micro-engine
// clusters.
func TestClusterLoadBalance(t *testing.T) {
	r := newRig(t, Config{Cores: 50, Clusters: 5}, 1000e9, false)
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 1, 0, 1500, 10e9, 0, 10e6, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	st := r.nic.Stats()
	if len(st.ClusterBusyCycles) != 5 {
		t.Fatalf("cluster stats = %d entries, want 5", len(st.ClusterBusyCycles))
	}
	var minC, maxC float64
	for i, c := range st.ClusterBusyCycles {
		if c == 0 {
			t.Fatalf("cluster %d did no work", i)
		}
		if i == 0 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC > 1.3*minC {
		t.Fatalf("cluster imbalance: %v", st.ClusterBusyCycles)
	}
	// Stats() must return an independent copy.
	st.ClusterBusyCycles[0] = -1
	if r.nic.Stats().ClusterBusyCycles[0] == -1 {
		t.Fatal("Stats shares its slice with the NIC")
	}
}

// A tiny buffer pool with slow recycling exhausts under a burst: the
// manager core's batching delay is visible.
func TestBufferPoolExhaustion(t *testing.T) {
	cfg := Config{BufferPool: 8, BufferRecycleNs: 1_000_000, RxRingPkts: 4}
	r := newRig(t, cfg, 1000e9, false)
	var a packet.Alloc
	for i := 0; i < 64; i++ {
		r.nic.Inject(a.New(0, 0, 200, 0))
	}
	r.eng.Run()
	st := r.nic.Stats()
	if st.BufferDrops == 0 {
		t.Fatal("expected buffer-pool exhaustion drops")
	}
	if st.Delivered+st.BufferDrops+st.RxRingDrops != 64 {
		t.Fatalf("accounting mismatch: %+v", st)
	}
	// After recycling, the pool serves new packets again.
	before := r.nic.Stats().Delivered
	r.nic.Inject(a.New(0, 0, 200, r.eng.Now()))
	r.eng.Run()
	if r.nic.Stats().Delivered != before+1 {
		t.Fatal("pool did not recover after recycle pass")
	}
}

// A bursty on/off source is still rate-conformant on average: the
// scheduler's buckets absorb bursts up to the configured burst and drop
// the rest, keeping long-run admission at the policy rate.
func TestBurstySourceConformance(t *testing.T) {
	r := newRig(t, Config{WireRateBps: 40e9}, 5e9, true)
	alloc := &packet.Alloc{}
	// Peak 20G, 50% duty → 10G offered average against a 5G policy.
	if _, err := trafficgen.NewOnOff(r.eng, alloc, 1, 0, 1500, 20e9,
		2e6, 2e6, 0, 300e6, 99, r.nic.Inject); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	var bytes int64
	for _, p := range r.delivered {
		if p.EgressAt >= 50e6 { // skip the initial burst allowance
			bytes += int64(p.WireBytes())
		}
	}
	rate := float64(bytes) * 8 / 0.25
	// Bounds: with no token banking across OFF periods the mean would be
	// ≈2.5G (policy only during ON); perfect banking gives 5G; the
	// exponential-phase truncation and the burst cap land in between.
	// Above 5.8G would mean the buckets minted tokens.
	if rate < 3.0e9 || rate > 5.8e9 {
		t.Fatalf("bursty admission = %.2fG, want within (3.0, 5.8): banked-burst shaping", rate/1e9)
	}
	st := r.nic.Stats()
	if st.SchedDrops == 0 {
		t.Fatal("no scheduling drops under 2× average overload")
	}
}

// Thread contexts hide memory stalls: with 4 contexts per ME the NIC is
// compute-bound at the calibrated rate; with a single context the same
// silicon loses more than half its packet rate (§III-B threading).
func TestThreadContextsHideMemoryStalls(t *testing.T) {
	measure := func(threads int) float64 {
		r := newRig(t, Config{ThreadsPerME: threads}, 1000e9, true)
		alloc := &packet.Alloc{}
		flows := make([]packet.FlowID, 8)
		for i := range flows {
			flows[i] = packet.FlowID(i)
		}
		if _, err := trafficgen.NewSaturator(r.eng, alloc, flows, 0, 64,
			30e9, 0, 20e6, r.nic.Inject); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
		return float64(len(r.delivered)) / 0.02
	}
	four := measure(4)
	one := measure(1)
	cfg := Config{}.Defaults()
	computeBound := float64(cfg.Cores) * cfg.CoreFreqHz / float64(cfg.Costs.PerPacket(2))
	if four < 0.9*computeBound {
		t.Fatalf("4 contexts: %.2fMpps, want compute-bound ≈%.2fMpps", four/1e6, computeBound/1e6)
	}
	memBound := float64(cfg.Cores) * cfg.CoreFreqHz / float64(cfg.Costs.PerPacket(2)+cfg.Costs.MemStall)
	if one > 1.1*memBound || one < 0.9*memBound {
		t.Fatalf("1 context: %.2fMpps, want stall-bound ≈%.2fMpps", one/1e6, memBound/1e6)
	}
}
