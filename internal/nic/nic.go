// Package nic models an NP-based SmartNIC (Netronome Agilio class) as a
// discrete-event system: a pool of worker micro-engine contexts pulling
// packets from per-VF receive rings, a run-to-completion processing
// pipeline (parse → exact-match flow cache → FlowValve scheduling
// function), and a traffic manager feeding fixed-rate wire ports through
// byte-bounded FIFO queues.
//
// This is the substitution for the paper's hardware prototype: the model
// charges explicit cycle costs per pipeline stage (calibrated in
// costs.go to the paper's 19.69Mpps@64B envelope), so processing-bound
// versus line-rate-bound regimes, buffer occupancy, and one-way delay all
// emerge from the same mechanics as on the NP.
package nic

import (
	"fmt"
	"reflect"
	"sync/atomic"

	"flowvalve/internal/classifier"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/packet"
	"flowvalve/internal/pktq"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// DropReason distinguishes where in the NIC a packet died.
type DropReason int

const (
	// DropSched is the FlowValve specialized tail drop (the intended
	// control action).
	DropSched DropReason = iota + 1
	// DropRxRing means the per-VF receive ring overflowed (host pushed
	// faster than the cores could drain).
	DropRxRing
	// DropTM means a traffic-manager port queue overflowed — the
	// uncontrolled congestion FlowValve exists to prevent.
	DropTM
	// DropUnclassified means no filter rule matched and no default
	// class exists.
	DropUnclassified
	// DropShardRing means the packet's scheduler-shard feed ring was
	// full: the classifier steered it to its owner shard but the burst
	// overflowed that shard's bounded feed lane.
	DropShardRing
	// DropSlowPath means the packet's flow held no fast-path rule and
	// the host slow path was too backlogged to absorb the detour (the
	// offload control plane's overload shedding).
	DropSlowPath
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropSched:
		return "sched"
	case DropRxRing:
		return "rx-ring"
	case DropTM:
		return "tm"
	case DropUnclassified:
		return "unclassified"
	case DropShardRing:
		return "shard-ring"
	case DropSlowPath:
		return "slow-path"
	default:
		return "invalid"
	}
}

// Callbacks connects the NIC to the rest of the simulation. Either field
// may be nil.
type Callbacks struct {
	// OnDeliver fires when a packet finishes transmitting on the wire;
	// p.EgressAt is set.
	OnDeliver func(p *packet.Packet)
	// OnDrop fires when the NIC discards a packet.
	OnDrop func(p *packet.Packet, reason DropReason)
}

// Config sizes the NIC model. Zero fields take the Agilio-calibrated
// defaults from Defaults.
type Config struct {
	// Cores is the number of worker micro-engine contexts.
	Cores int
	// CoreFreqHz is the micro-engine clock.
	CoreFreqHz float64
	// WireRateBps is the aggregate wire rate (e.g. 40e9).
	WireRateBps float64
	// WirePorts is the number of egress ports the traffic manager
	// serves; the paper's 40G testbed feeds four 10GbE receiver ports.
	WirePorts int
	// TMQueueBytes bounds each port's traffic-manager queue.
	TMQueueBytes int64
	// RxRingPkts bounds each per-VF receive ring.
	RxRingPkts int
	// ThreadsPerME is the number of hardware thread contexts per
	// micro-engine. Memory stalls of one context are hidden by running
	// another, so an ME's per-packet occupancy is
	// max(compute, (compute+MemStall)/ThreadsPerME) cycles while the
	// packet's latency is always compute+MemStall.
	ThreadsPerME int
	// Clusters groups the worker contexts into island clusters; the
	// load-balancing module distributes packets round-robin across
	// clusters with free contexts (§III-B).
	Clusters int
	// BufferPool is the number of packet buffers the NIC owns; a
	// packet holds one from Rx pull to wire egress (or drop).
	BufferPool int
	// BufferRecycleNs is the manager-core batching interval: freed
	// buffers are collected and re-linked to the free lists on this
	// cadence, not instantly (§III-B's manager core).
	BufferRecycleNs int64
	// BatchSize is the Rx service burst: a worker context pulls up to
	// this many ring packets per service routine, classifying and
	// scheduling them in one pass so per-batch fixed costs (ring
	// doorbell, buffer credit pull, reorder-slot allocation — the
	// CostModel.PipelineBatch share) are charged once, mirroring the
	// NP's context pipelining. Bursts form under backpressure; an
	// unloaded NIC still services packets as they arrive. The default
	// of 1 preserves the unbatched per-packet pipeline exactly.
	BatchSize int
	// ShardRingPkts bounds each scheduler-shard feed ring when the
	// attached scheduling function is sharded (dataplane.Sharder with
	// more than one shard): a burst steers each classified packet into
	// its owner shard's lane and an overfull lane drops the packet
	// (DropShardRing). Ignored for single-shard schedulers.
	ShardRingPkts int
	// FixedLatencyNs is the constant pipeline latency outside the
	// modelled stages (PCIe DMA, MAC, SerDes).
	FixedLatencyNs int64
	// Costs is the per-stage cycle cost table.
	Costs CostModel
}

// Defaults fills unset fields with the calibrated Agilio CX 40GbE values.
func (c Config) Defaults() Config {
	if c.Cores <= 0 {
		c.Cores = 50
	}
	if c.CoreFreqHz <= 0 {
		c.CoreFreqHz = 800e6
	}
	if c.WireRateBps <= 0 {
		c.WireRateBps = 40e9
	}
	if c.WirePorts <= 0 {
		c.WirePorts = 4
	}
	if c.TMQueueBytes <= 0 {
		c.TMQueueBytes = 200 * 1024
	}
	if c.RxRingPkts <= 0 {
		c.RxRingPkts = 1024
	}
	if c.ThreadsPerME <= 0 {
		c.ThreadsPerME = 4
	}
	if c.Clusters <= 0 {
		c.Clusters = 5
	}
	if c.BufferPool <= 0 {
		c.BufferPool = 8192
	}
	if c.BufferRecycleNs <= 0 {
		c.BufferRecycleNs = 10_000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.ShardRingPkts <= 0 {
		c.ShardRingPkts = 256
	}
	if c.FixedLatencyNs <= 0 {
		// PCIe DMA, MAC and SerDes stages plus receiver turnaround:
		// the constant part of the paper's one-way-delay floor (the
		// 40G full-load figure of ≈161µs is this plus the pinned
		// traffic-manager occupancy).
		c.FixedLatencyNs = 35_000
	}
	c.Costs = c.Costs.Defaults()
	return c
}

// Stats are cumulative NIC counters.
type Stats struct {
	Injected     uint64
	Delivered    uint64
	SchedDrops   uint64
	RxRingDrops  uint64
	TMDrops      uint64
	Unclassified uint64
	// ShardRingDrops counts packets lost to a full scheduler-shard
	// feed ring (sharded scheduling functions only).
	ShardRingDrops uint64
	// SlowPathDrops counts packets shed by an overloaded host slow path
	// (offload control plane attached, flow not offloaded, host queue
	// past its wait bound).
	SlowPathDrops uint64
	// BufferDrops counts packets rejected because the buffer pool was
	// exhausted (freed buffers not yet recycled by the manager core).
	BufferDrops uint64
	// BusyCycles accumulates worker-core busy time for utilization
	// accounting.
	BusyCycles float64
	// ClusterBusyCycles breaks BusyCycles down per island cluster.
	ClusterBusyCycles []float64
}

// NIC is the SmartNIC discrete-event model.
//
// The scheduler is optional: with a nil scheduler the NIC forwards
// everything (the paper's "disable FlowValve to simply forward packets"
// baseline used to locate the 40G delay floor).
type NIC struct {
	eng *sim.Engine
	cfg Config
	cls *classifier.Classifier
	// sched holds the scheduling function behind an atomic pointer:
	// Swap is called from outside the DES goroutine (live policy
	// hot-swap), so a plain field write would race with the service
	// loop's reads. The ref wrapper exists because atomic.Pointer cannot
	// hold an interface directly; the stored pointer is never nil (a
	// pass-through NIC stores a ref to a nil interface).
	sched atomic.Pointer[schedRef]
	cb    Callbacks

	// Batch-mode scratch (allocated once when BatchSize > 1): the
	// in-flight service burst and its per-packet classification,
	// scheduling, and outcome state. A service routine runs to
	// completion within one event, so one set suffices.
	batchBuf    []*packet.Packet
	batchLbls   []*tree.Label
	batchHits   []bool
	batchEvict  []bool
	batchReqs   []dataplane.Request
	batchDecs   []dataplane.Decision
	batchFwd    []bool
	batchReason []DropReason
	// batchShard / batchShardDrop carry each burst packet's steered
	// shard (-1 unclassified) and whether it was lost to a full shard
	// feed lane before scheduling (sharded scheduling functions only).
	batchShard     []int32
	batchShardDrop []bool
	// batchSlowLeaf carries each burst packet's class when it must
	// detour through the scheduled host slow path (nil = fast path),
	// filled when an offload control plane is attached.
	batchSlowLeaf []*tree.Class

	clusters    []*cluster
	nextCluster int
	rings       map[packet.AppID]*pktq.FIFO
	ringOrder   []packet.AppID
	nextRing    int

	// Buffer manager state: freeBuffers are immediately allocatable;
	// recycleBin holds buffers freed since the manager core's last
	// pass.
	freeBuffers  int
	recycleBin   int
	recycleArmed bool

	// Reorder system: run-to-completion cores finish out of order (a
	// flow-cache miss makes the first packet of a flow slower than its
	// followers), so completions are released to the traffic manager in
	// service-begin sequence, as on the NP.
	seqIssue uint64
	seqNext  uint64
	pending  map[uint64]completion

	ports []*wirePort

	// off is the attached offload control plane (nil = every flow rides
	// the fast path, the pre-offload behaviour).
	off *offloadState

	stats Stats

	// tel holds the attached telemetry instruments (nil when off).
	tel *nicTel

	// Fault-injection state (see ApplyFaults / internal/faults). Both
	// fields are mutated only on the DES goroutine; the fault-free path
	// pays one empty-slice and one zero check.
	stalls    []*stallWindow
	ringClamp int
}

// schedRef boxes the scheduler interface for atomic storage, together
// with the sharding capability probed once at install time: the shard
// count, the steering function, and the per-shard feed-lane model the
// burst service charges against. For a single-shard scheduler the
// extras stay nil/1 and the service path is untouched.
type schedRef struct {
	s      dataplane.Scheduler
	shards int
	// owners is the ClassID → owning-shard steer table (nil when
	// unsharded): the classifier's fused steer pass indexes it directly
	// instead of dispatching through a function value per flow group.
	owners []int32
	lanes  *sim.Lanes

	// plain/sharded cache the concrete FlowValve schedulers behind s
	// (probed once at install) so the burst-service ScheduleBatch call
	// dispatches statically; other dataplane.Scheduler implementations
	// (pifo lab backends, test fakes) keep the virtual path.
	plain   *core.Scheduler
	sharded *core.ShardedScheduler
}

// scheduleBatch runs one batch through the referenced scheduling
// function, devirtualized for the stock core backends.
//
//fv:hotpath
func (ref *schedRef) scheduleBatch(reqs []dataplane.Request, out []dataplane.Decision) {
	switch {
	case ref.plain != nil:
		ref.plain.ScheduleBatch(reqs, out)
	case ref.sharded != nil:
		ref.sharded.ScheduleBatch(reqs, out)
	default:
		//fv:boxing-ok non-core backends (pifo lab, test fakes) are not burst-rate critical; both core schedulers devirtualize above
		ref.s.ScheduleBatch(reqs, out)
	}
}

// newSchedRef probes s for sharding and builds its installable ref.
func (n *NIC) newSchedRef(s dataplane.Scheduler) *schedRef {
	ref := &schedRef{s: s, shards: 1}
	if s != nil {
		switch cs := s.(type) {
		case *core.Scheduler:
			ref.plain = cs
		case *core.ShardedScheduler:
			ref.sharded = cs
		}
		if k, sh := dataplane.ShardsOf(s); sh != nil {
			ref.shards = k
			ref.owners = ownerTable(sh, n.cls.Tree())
			ref.lanes = sim.NewLanes(k, n.cfg.ShardRingPkts)
		}
	}
	return ref
}

// ownerTable extracts the sharder's ClassID → shard table, preferring
// the direct dataplane.OwnerTabler view and falling back to probing
// ShardOf once per leaf for foreign sharders.
func ownerTable(sh dataplane.Sharder, t *tree.Tree) []int32 {
	if tb, ok := sh.(dataplane.OwnerTabler); ok {
		return tb.OwnerTable()
	}
	owners := make([]int32, t.Len())
	for _, c := range t.Classes() {
		if c.Leaf() {
			owners[c.ID] = int32(sh.ShardOf(t.LabelFor(c)))
		}
	}
	return owners
}

// scheduler returns the active scheduling function (nil = pass-through).
func (n *NIC) scheduler() dataplane.Scheduler { return n.sched.Load().s }

// completion is one finished worker routine waiting in the reorder
// system. A nil packet marks a released (dropped) sequence slot.
type completion struct {
	p *packet.Packet
}

// cluster is one micro-engine island: a group of worker contexts fed by
// the load-balancing module.
type cluster struct {
	idle int
}

type wirePort struct {
	queue  *pktq.FIFO
	freeAt int64 // wire busy until this instant
	active bool  // a drain event is pending
}

// New assembles a NIC bound to the simulation engine. cls is required;
// sched is any dataplane scheduling function (the FlowValve core in
// every real configuration) and may be nil for pass-through forwarding.
func New(eng *sim.Engine, cfg Config, cls *classifier.Classifier, sched dataplane.Scheduler, cb Callbacks) (*NIC, error) {
	if eng == nil {
		return nil, fmt.Errorf("nic: nil engine")
	}
	if cls == nil {
		return nil, fmt.Errorf("nic: nil classifier")
	}
	// Normalize a typed-nil scheduler (a nil *core.Scheduler passed as
	// the interface) to a plain nil, so the pass-through checks work.
	if v := reflect.ValueOf(sched); sched != nil && v.Kind() == reflect.Pointer && v.IsNil() {
		sched = nil
	}
	cfg = cfg.Defaults()
	n := &NIC{
		eng:         eng,
		cfg:         cfg,
		cls:         cls,
		cb:          cb,
		rings:       make(map[packet.AppID]*pktq.FIFO),
		pending:     make(map[uint64]completion),
		freeBuffers: cfg.BufferPool,
	}
	n.sched.Store(n.newSchedRef(sched))
	if cfg.Clusters > cfg.Cores {
		cfg.Clusters = cfg.Cores
		n.cfg.Clusters = cfg.Clusters
	}
	n.clusters = make([]*cluster, cfg.Clusters)
	n.stats.ClusterBusyCycles = make([]float64, cfg.Clusters)
	per := cfg.Cores / cfg.Clusters
	extra := cfg.Cores % cfg.Clusters
	for i := range n.clusters {
		n.clusters[i] = &cluster{idle: per}
		if i < extra {
			n.clusters[i].idle++
		}
	}
	n.ports = make([]*wirePort, cfg.WirePorts)
	for i := range n.ports {
		n.ports[i] = &wirePort{queue: pktq.New(0, cfg.TMQueueBytes)}
	}
	if b := cfg.BatchSize; b > 1 {
		n.batchBuf = make([]*packet.Packet, 0, b)
		n.batchLbls = make([]*tree.Label, b)
		n.batchHits = make([]bool, b)
		n.batchEvict = make([]bool, b)
		n.batchReqs = make([]dataplane.Request, 0, b)
		n.batchDecs = make([]dataplane.Decision, b)
		n.batchFwd = make([]bool, b)
		n.batchReason = make([]DropReason, b)
		n.batchShard = make([]int32, b)
		n.batchShardDrop = make([]bool, b)
		n.batchSlowLeaf = make([]*tree.Class, b)
	}
	return n, nil
}

// grabCluster returns a cluster with a free context, round-robin from
// the load balancer's cursor, or nil when every context is busy.
func (n *NIC) grabCluster() *cluster {
	for i := 0; i < len(n.clusters); i++ {
		idx := (n.nextCluster + i) % len(n.clusters)
		if c := n.clusters[idx]; c.idle > 0 {
			n.nextCluster = (idx + 1) % len(n.clusters)
			c.idle--
			return c
		}
	}
	return nil
}

// takeBuffer allocates one packet buffer, or reports exhaustion.
func (n *NIC) takeBuffer() bool {
	if n.freeBuffers == 0 {
		return false
	}
	n.freeBuffers--
	if n.tel != nil {
		n.tel.freeBuffers.Add(-1)
	}
	return true
}

// freeBuffer drops a buffer into the recycle bin; the manager core
// re-links the bin to the free list on its next pass.
func (n *NIC) freeBuffer() {
	n.recycleBin++
	if !n.recycleArmed {
		n.recycleArmed = true
		n.eng.After(n.cfg.BufferRecycleNs, n.recyclePass)
	}
}

func (n *NIC) recyclePass() {
	n.freeBuffers += n.recycleBin
	if n.tel != nil {
		n.tel.freeBuffers.Add(float64(n.recycleBin))
	}
	n.recycleBin = 0
	n.recycleArmed = false
}

// Stats returns a copy of the cumulative counters.
func (n *NIC) Stats() Stats {
	out := n.stats
	out.ClusterBusyCycles = append([]float64(nil), n.stats.ClusterBusyCycles...)
	return out
}

// Config returns the effective configuration.
func (n *NIC) Config() Config { return n.cfg }

// QueuedBytes returns the total bytes currently waiting in the traffic
// manager, for occupancy monitoring.
func (n *NIC) QueuedBytes() int64 {
	var total int64
	for _, p := range n.ports {
		total += p.queue.Bytes()
	}
	return total
}

// Inject hands a packet from the host (a virtual function ring) to the
// NIC at the current simulation time. The load balancer assigns it to a
// cluster with a free context; otherwise it waits in its VF's Rx ring.
func (n *NIC) Inject(p *packet.Packet) {
	n.stats.Injected++
	if n.tel != nil {
		n.tel.injected.Add(1)
	}
	if !n.takeBuffer() {
		n.stats.BufferDrops++
		if n.tel != nil {
			n.tel.dropBuffer.Add(1)
		}
		n.drop(p, DropRxRing)
		return
	}
	if n.cfg.BatchSize > 1 {
		n.injectBatched(p)
		return
	}
	if c := n.grabCluster(); c != nil {
		n.beginService(p, c)
		return
	}
	ring := n.ringFor(p.App)
	if (n.ringClamp > 0 && ring.Len() >= n.ringClamp) || !ring.TryPush(p) {
		n.stats.RxRingDrops++
		if n.tel != nil {
			n.tel.dropRxRing.Add(1)
		}
		n.freeBuffer()
		n.drop(p, DropRxRing)
		return
	}
	if n.tel != nil {
		n.tel.ringPkts.Add(1)
	}
}

// injectBatched routes an arriving packet through its Rx ring and, when
// a context is free, immediately services a burst of up to BatchSize
// ring packets. Bursts materialize under backpressure (contexts busy,
// rings backlogged); an idle NIC still services singly.
func (n *NIC) injectBatched(p *packet.Packet) {
	ring := n.ringFor(p.App)
	if (n.ringClamp > 0 && ring.Len() >= n.ringClamp) || !ring.TryPush(p) {
		n.stats.RxRingDrops++
		if n.tel != nil {
			n.tel.dropRxRing.Add(1)
		}
		n.freeBuffer()
		n.drop(p, DropRxRing)
		return
	}
	if n.tel != nil {
		n.tel.ringPkts.Add(1)
	}
	if c := n.grabCluster(); c != nil {
		n.serviceBatch(c)
	}
}

// serviceBatch pulls up to BatchSize waiting packets and runs them as
// one service routine, or parks the context when the rings are empty.
//
//fv:hotpath
func (n *NIC) serviceBatch(cl *cluster) {
	batch := n.batchBuf[:0]
	for len(batch) < n.cfg.BatchSize {
		p := n.pullNext()
		if p == nil {
			break
		}
		batch = append(batch, p)
	}
	n.batchBuf = batch[:0]
	if len(batch) == 0 {
		cl.idle++
		return
	}
	n.beginServiceBatch(batch, cl)
}

func (n *NIC) ringFor(app packet.AppID) *pktq.FIFO {
	ring, ok := n.rings[app]
	if !ok {
		ring = pktq.New(n.cfg.RxRingPkts, 0)
		n.rings[app] = ring
		n.ringOrder = append(n.ringOrder, app)
	}
	return ring
}

// beginService runs the run-to-completion pipeline for one packet on a
// worker core: classify, schedule, and (after the modelled service time)
// hand the completion to the reorder system.
func (n *NIC) beginService(p *packet.Packet, cl *cluster) {
	seq := n.seqIssue
	n.seqIssue++

	lbl, hit, evicted := n.cls.LookupEv(p)

	cycles := n.cfg.Costs.Pipeline + n.cfg.Costs.Parse
	if hit {
		cycles += n.cfg.Costs.CacheHit
	} else {
		cycles += n.cfg.Costs.CacheMiss
		if evicted {
			cycles += n.cfg.Costs.CacheEvict
		}
	}

	// Offload lookup: the flow-binding check against the rule table.
	// Packets of un-offloaded flows pay the exception-path charge here
	// and the host detour below (only if they survive scheduling).
	fast := true
	if n.off != nil && lbl != nil {
		fast = n.off.ctl.Observe(p.App, p.Flow, p.WireBytes())
		if !fast {
			cycles += n.cfg.Costs.SlowPath
		}
	}

	ref := n.sched.Load()
	sched := ref.s
	forward := true
	var reason DropReason
	switch {
	case lbl == nil:
		forward = false
		reason = DropUnclassified
	case sched != nil:
		if ref.shards > 1 {
			// Single-packet service still steers to the owner shard
			// and rings its doorbell; a lone packet cannot overflow a
			// feed lane, so no occupancy model is needed here.
			cycles += n.cfg.Costs.ShardSteer + n.cfg.Costs.ShardDoorbell
		}
		// Tokens are charged in wire bytes (frame + preamble/IFG):
		// the policy rates are link rates, and charging frame bytes
		// only would over-subscribe the wire by the per-frame
		// overhead (the linklayer overhead accounting of real
		// shapers).
		d := sched.Schedule(lbl, p.WireBytes())
		cycles += n.cfg.Costs.SchedPerClass*int64(len(lbl.Path)) + n.cfg.Costs.Meter
		cycles += n.cfg.Costs.Update * int64(d.Updates)
		if d.Verdict == dataplane.Drop || d.Borrowed {
			// Red leaf meter ⇒ the borrow chain was walked (fully
			// on drop, partially on a successful borrow).
			cycles += n.cfg.Costs.Borrow * int64(len(lbl.Borrow))
		}
		if d.Verdict == dataplane.Drop {
			forward = false
			reason = DropSched
		}
		p.Marked = d.Marked
	}
	// A forwarded packet of an un-offloaded flow detours through the
	// scheduled host slow path; admission (and any shed) happens at
	// completion time against the slow path's backlog then.
	var slowLeaf *tree.Class
	if forward && !fast {
		slowLeaf = lbl.Leaf
	}
	if forward {
		cycles += n.cfg.Costs.TxEnqueue
	}

	n.stats.BusyCycles += float64(cycles)
	if n.tel != nil {
		n.tel.busyCycles.Add(cycles)
	}
	for i, c := range n.clusters {
		if c == cl {
			n.stats.ClusterBusyCycles[i] += float64(cycles)
			break
		}
	}

	// Latency includes the memory stalls; ME occupancy hides them
	// behind the other thread contexts (§III-B). The ME is released to
	// pull its next packet after the occupancy time; the packet itself
	// completes (reorder system → traffic manager) after the full
	// latency.
	total := cycles + n.cfg.Costs.MemStall
	occupancy := (total + int64(n.cfg.ThreadsPerME) - 1) / int64(n.cfg.ThreadsPerME)
	if occupancy < cycles {
		occupancy = cycles
	}
	occupancyNs := int64(float64(occupancy) / n.cfg.CoreFreqHz * 1e9)
	latencyNs := int64(float64(total) / n.cfg.CoreFreqHz * 1e9)
	n.eng.After(occupancyNs, func() { n.releaseContext(cl) })
	n.eng.After(latencyNs, func() {
		n.completeService(p, seq, forward, reason, slowLeaf)
	})
}

// releaseContext returns a micro-engine context to service: it pulls the
// next waiting packet (or burst) or goes idle. A pending stall window
// with outstanding debt captures the context instead (see StallCores).
func (n *NIC) releaseContext(cl *cluster) {
	if len(n.stalls) > 0 && n.parkIfStalled(cl) {
		return
	}
	if n.cfg.BatchSize > 1 {
		n.serviceBatch(cl)
		return
	}
	if next := n.pullNext(); next != nil {
		n.beginService(next, cl)
	} else {
		cl.idle++
	}
}

// beginServiceBatch runs the run-to-completion pipeline for a burst of
// packets on one worker context: classify the burst, schedule it in one
// ScheduleBatch pass, charge the per-batch fixed cycles once and the
// per-packet stages per packet, then hand every completion to the
// reorder system at the batch's service latency.
//
//fv:hotpath
func (n *NIC) beginServiceBatch(batch []*packet.Packet, cl *cluster) {
	k := len(batch)
	lbls := n.batchLbls[:k]
	hits := n.batchHits[:k]
	evs := n.batchEvict[:k]

	// One scheduling pass over the classified packets. A sharded
	// scheduling function interposes the feed-lane model: the
	// classifier fuses the shard steer into its batch pass (one steer
	// per flow group), each classified packet fills its owner shard's
	// bounded lane, and an overfull lane drops it before scheduling;
	// the shard engines drain all lanes within this service event.
	ref := n.sched.Load()
	sched := ref.s
	if ref.lanes != nil {
		n.cls.ClassifyBatchSteerEv(batch, lbls, hits, evs, ref.owners, n.batchShard[:k])
	} else {
		n.cls.ClassifyBatchEv(batch, lbls, hits, evs)
	}
	var decs []dataplane.Decision
	doorbells := 0
	if sched != nil {
		reqs := n.batchReqs[:0]
		if ref.lanes != nil {
			shardDrop := n.batchShardDrop[:k]
			for i := 0; i < k; i++ {
				if lbls[i] == nil {
					continue
				}
				if !ref.lanes.Offer(int(n.batchShard[i])) {
					shardDrop[i] = true
					continue
				}
				shardDrop[i] = false
				reqs = append(reqs, dataplane.Request{Label: lbls[i], Size: batch[i].WireBytes()})
			}
			doorbells = ref.lanes.Touched()
			ref.lanes.DrainAll()
		} else {
			for i := 0; i < k; i++ {
				if lbls[i] != nil {
					reqs = append(reqs, dataplane.Request{Label: lbls[i], Size: batch[i].WireBytes()})
				}
			}
		}
		n.batchReqs = reqs[:0]
		if len(reqs) > 0 {
			decs = n.batchDecs[:len(reqs)]
			ref.scheduleBatch(reqs, decs)
		}
	}

	// Cycle charging: the fixed share of the pipeline stage is paid
	// once per burst (out[0].Batched tells the model how many packets
	// that charge covers); the remainder of every stage is per packet.
	// Sharding adds one doorbell per shard lane the burst touched.
	cycles := n.cfg.Costs.PipelineBatch + n.cfg.Costs.ShardDoorbell*int64(doorbells)
	perPkt := n.cfg.Costs.Pipeline - n.cfg.Costs.PipelineBatch
	di := 0
	for i := 0; i < k; i++ {
		p := batch[i]
		pc := perPkt + n.cfg.Costs.Parse
		if hits[i] {
			pc += n.cfg.Costs.CacheHit
		} else {
			pc += n.cfg.Costs.CacheMiss
			if evs[i] {
				pc += n.cfg.Costs.CacheEvict
			}
		}
		// Offload lookup, as in the per-packet path: shard-dropped
		// packets are still observed (the flow-binding check precedes
		// the feed-lane offer on the NP pipeline).
		fast := true
		if n.off != nil && lbls[i] != nil {
			fast = n.off.ctl.Observe(p.App, p.Flow, p.WireBytes())
			if !fast {
				pc += n.cfg.Costs.SlowPath
			}
		}
		forward := true
		var reason DropReason
		switch {
		case lbls[i] == nil:
			forward = false
			reason = DropUnclassified
		case sched != nil && ref.lanes != nil && n.batchShardDrop[i]:
			// Steered, but the shard's feed lane was full; the packet
			// never reached the scheduling function.
			pc += n.cfg.Costs.ShardSteer
			forward = false
			reason = DropShardRing
		case sched != nil:
			if ref.lanes != nil {
				pc += n.cfg.Costs.ShardSteer
			}
			d := &decs[di]
			di++
			pc += n.cfg.Costs.SchedPerClass*int64(len(lbls[i].Path)) + n.cfg.Costs.Meter
			pc += n.cfg.Costs.Update * int64(d.Updates)
			if d.Verdict == dataplane.Drop || d.Borrowed {
				pc += n.cfg.Costs.Borrow * int64(len(lbls[i].Borrow))
			}
			if d.Verdict == dataplane.Drop {
				forward = false
				reason = DropSched
			}
			p.Marked = d.Marked
		}
		n.batchSlowLeaf[i] = nil
		if forward && !fast {
			n.batchSlowLeaf[i] = lbls[i].Leaf
		}
		if forward {
			pc += n.cfg.Costs.TxEnqueue
		}
		cycles += pc
		n.batchFwd[i] = forward
		n.batchReason[i] = reason
	}

	n.stats.BusyCycles += float64(cycles)
	if n.tel != nil {
		n.tel.busyCycles.Add(cycles)
	}
	for i, c := range n.clusters {
		if c == cl {
			n.stats.ClusterBusyCycles[i] += float64(cycles)
			break
		}
	}

	// One memory-stall window per burst: the batch's contexts overlap
	// their stalls exactly as the ME's thread contexts do (§III-B), so
	// the stall shows up once in latency and is hidden from occupancy
	// by the thread contexts as in the per-packet path.
	total := cycles + n.cfg.Costs.MemStall
	occupancy := (total + int64(n.cfg.ThreadsPerME) - 1) / int64(n.cfg.ThreadsPerME)
	if occupancy < cycles {
		occupancy = cycles
	}
	occupancyNs := int64(float64(occupancy) / n.cfg.CoreFreqHz * 1e9)
	latencyNs := int64(float64(total) / n.cfg.CoreFreqHz * 1e9)
	//fv:boxing-ok DES completion bookkeeping: the event closures model NP latency, they are simulator overhead outside the modelled cycle budget
	n.eng.After(occupancyNs, func() { n.releaseContext(cl) })
	for i := 0; i < k; i++ {
		p, fwd, reason := batch[i], n.batchFwd[i], n.batchReason[i]
		slowLeaf := n.batchSlowLeaf[i]
		seq := n.seqIssue
		n.seqIssue++
		//fv:boxing-ok DES completion bookkeeping: the event closures model NP latency, they are simulator overhead outside the modelled cycle budget
		n.eng.After(latencyNs, func() { n.completeService(p, seq, fwd, reason, slowLeaf) })
	}
}

// completeService finishes one packet's run-to-completion routine and
// hands it to the reorder system. A forwarded packet of an un-offloaded
// flow (slowLeaf != nil) instead releases its reorder slot empty and
// detours through the scheduled host slow path — it re-enters the
// transmit path when the host qdisc serves it, so fast-path completions
// behind it are not head-of-line blocked by the detour — or is shed
// (DropSlowPath) when the slow path's admission bound refuses it.
func (n *NIC) completeService(p *packet.Packet, seq uint64, forward bool, reason DropReason, slowLeaf *tree.Class) {
	if forward && slowLeaf != nil && n.off != nil {
		n.pending[seq] = completion{} // slot released; the packet detours
		if !n.off.sp.admit(p, slowLeaf) {
			n.stats.SlowPathDrops++
			if n.tel != nil {
				n.tel.dropSlow.Add(1)
			}
			n.drop(p, DropSlowPath)
			n.freeBuffer()
		}
		n.releaseInOrder()
		return
	}
	if forward {
		n.pending[seq] = completion{p: p}
	} else {
		switch reason {
		case DropSched:
			n.stats.SchedDrops++
			if n.tel != nil {
				n.tel.dropSched.Add(1)
			}
		case DropUnclassified:
			n.stats.Unclassified++
			if n.tel != nil {
				n.tel.dropUncl.Add(1)
			}
		case DropShardRing:
			n.stats.ShardRingDrops++
			if n.tel != nil {
				n.tel.dropShardRing.Add(1)
			}
		case DropSlowPath:
			n.stats.SlowPathDrops++
			if n.tel != nil {
				n.tel.dropSlow.Add(1)
			}
		}
		n.drop(p, reason)
		n.freeBuffer()
		n.pending[seq] = completion{} // release the sequence slot
	}
	n.releaseInOrder()
}

// releaseInOrder feeds contiguous completed sequences to the traffic
// manager, restoring service-begin order.
func (n *NIC) releaseInOrder() {
	for {
		done, ok := n.pending[n.seqNext]
		if !ok {
			return
		}
		delete(n.pending, n.seqNext)
		n.seqNext++
		if done.p != nil {
			n.txEnqueue(done.p)
		}
	}
}

func (n *NIC) pullNext() *packet.Packet {
	for i := 0; i < len(n.ringOrder); i++ {
		idx := (n.nextRing + i) % len(n.ringOrder)
		if p := n.rings[n.ringOrder[idx]].Pop(); p != nil {
			n.nextRing = (idx + 1) % len(n.ringOrder)
			if n.tel != nil {
				n.tel.ringPkts.Add(-1)
			}
			return p
		}
	}
	return nil
}

// txEnqueue places a forwarded packet into its wire port's traffic-manager
// queue. Port selection is by flow so per-flow order is preserved (the
// NP reorder system guarantees the same property).
func (n *NIC) txEnqueue(p *packet.Packet) {
	port := n.ports[int(p.Flow)%len(n.ports)]
	if !port.queue.TryPush(p) {
		n.stats.TMDrops++
		if n.tel != nil {
			n.tel.dropTM.Add(1)
		}
		n.freeBuffer()
		n.drop(p, DropTM)
		return
	}
	if n.tel != nil {
		n.tel.tmBytes.Add(float64(p.Size))
		n.tel.tmPkts.Add(1)
	}
	if !port.active {
		port.active = true
		n.drainPort(port)
	}
}

// drainPort serializes the head packet onto the wire and re-arms itself
// while the queue is non-empty.
func (n *NIC) drainPort(port *wirePort) {
	p := port.queue.Pop()
	if p == nil {
		port.active = false
		return
	}
	if n.tel != nil {
		n.tel.tmBytes.Add(-float64(p.Size))
		n.tel.tmPkts.Add(-1)
	}
	portRate := n.cfg.WireRateBps / float64(len(n.ports))
	txNs := int64(float64(p.WireBytes()*8) / portRate * 1e9)
	now := n.eng.Now()
	if port.freeAt < now {
		port.freeAt = now
	}
	port.freeAt += txNs
	done := port.freeAt
	n.eng.At(done, func() {
		p.EgressAt = done + n.cfg.FixedLatencyNs
		n.stats.Delivered++
		if n.tel != nil {
			n.tel.delivered.Add(1)
			n.tel.deliveredBytes.Add(int64(p.Size))
		}
		n.freeBuffer()
		if n.cb.OnDeliver != nil {
			n.cb.OnDeliver(p)
		}
		n.drainPort(port)
	})
}

func (n *NIC) drop(p *packet.Packet, reason DropReason) {
	if n.cb.OnDrop != nil {
		n.cb.OnDrop(p, reason)
	}
}

// Compile-time capability checks: the NIC is the reference
// dataplane.Qdisc and advertises every optional probe.
var (
	_ dataplane.Qdisc         = (*NIC)(nil)
	_ dataplane.Backlogger    = (*NIC)(nil)
	_ dataplane.Swapper       = (*NIC)(nil)
	_ dataplane.TelemetrySink = (*NIC)(nil)
)

// Enqueue implements dataplane.Qdisc; it is Inject under the interface's
// name.
func (n *NIC) Enqueue(p *packet.Packet) { n.Inject(p) }

// QdiscStats implements dataplane.Qdisc, folding every NIC drop reason
// into the interface's single Dropped counter. Use Stats for the
// per-reason breakdown.
func (n *NIC) QdiscStats() dataplane.Stats {
	return dataplane.Stats{
		Enqueued:  n.stats.Injected,
		Delivered: n.stats.Delivered,
		Dropped: n.stats.SchedDrops + n.stats.RxRingDrops + n.stats.TMDrops +
			n.stats.Unclassified + n.stats.BufferDrops + n.stats.ShardRingDrops +
			n.stats.SlowPathDrops,
	}
}

// Backlog implements dataplane.Backlogger: packets waiting in the Rx
// rings plus the traffic-manager port queues.
func (n *NIC) Backlog() int {
	total := 0
	for _, r := range n.rings {
		total += r.Len()
	}
	for _, p := range n.ports {
		total += p.queue.Len()
	}
	return total
}

// FlowCacheStats implements dataplane.FlowCacher: a snapshot of the
// exact-match flow cache in front of the classification pipeline.
func (n *NIC) FlowCacheStats() dataplane.FlowCacheStats {
	st := n.cls.Stats()
	return dataplane.FlowCacheStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		ParseErrors:   st.ParseErrors,
		Invalidations: st.Invalidations,
		Size:          st.Size,
		Negative:      st.Negative,
		Capacity:      st.Capacity,
		Shards:        st.Shards,
	}
}

// Swap implements dataplane.Swapper, replacing the scheduling function
// in place (policy hot-swap; in-flight completions keep their original
// verdicts). A nil scheduler turns the NIC into a pass-through. The
// store is atomic, so Swap may be called from outside the DES goroutine
// while the service loop is scheduling packets.
func (n *NIC) Swap(s dataplane.Scheduler) {
	if v := reflect.ValueOf(s); s != nil && v.Kind() == reflect.Pointer && v.IsNil() {
		s = nil
	}
	n.sched.Store(n.newSchedRef(s))
}
