package sim

// Lanes is the deterministic DES model of per-shard feed rings: when
// the NIC drives a sharded scheduling function, each classified packet
// is steered into its owner shard's bounded feed lane, and the shard
// engines drain every lane within the same service event (the DES
// equivalent of the parallel workers keeping up within a burst). The
// model therefore carries no occupancy across bursts — what it adds to
// the simulation is the ring-capacity bound (a burst can overflow a
// lane and drop) and the per-lane doorbell accounting the cost model
// charges.
//
// Single-threaded like the engine that drives it; all methods are
// called from the owning qdisc's service events only.
type Lanes struct {
	capacity int
	fill     []int
	touched  []int // lane indices with fill > 0, in first-touch order
	drops    uint64
}

// NewLanes builds n lanes of the given per-lane packet capacity.
func NewLanes(n, capacity int) *Lanes {
	if n < 1 {
		n = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Lanes{
		capacity: capacity,
		fill:     make([]int, n),
		touched:  make([]int, 0, n),
	}
}

// N reports the lane count.
func (l *Lanes) N() int { return len(l.fill) }

// Offer steers one packet into a lane, reporting whether it fit. A full
// lane rejects the packet (counted in Drops) — the feed-ring overflow
// the parallel path observes as a failed push.
func (l *Lanes) Offer(lane int) bool {
	if l.fill[lane] >= l.capacity {
		l.drops++
		return false
	}
	if l.fill[lane] == 0 {
		l.touched = append(l.touched, lane)
	}
	l.fill[lane]++
	return true
}

// Touched reports how many distinct lanes hold packets — the number of
// shard doorbells this burst rings.
func (l *Lanes) Touched() int { return len(l.touched) }

// DrainAll empties every lane (the shard engines consume the burst) and
// returns the number of packets drained.
func (l *Lanes) DrainAll() int {
	n := 0
	for _, lane := range l.touched {
		n += l.fill[lane]
		l.fill[lane] = 0
	}
	l.touched = l.touched[:0]
	return n
}

// Drops reports the cumulative lane-overflow rejections.
func (l *Lanes) Drops() uint64 { return l.drops }
