package sim

import "testing"

func TestLanesMinimums(t *testing.T) {
	l := NewLanes(0, 0)
	if l.N() != 1 {
		t.Fatalf("N = %d, want 1 (floor)", l.N())
	}
	if !l.Offer(0) {
		t.Fatal("capacity floor of 1 rejected the first packet")
	}
	if l.Offer(0) {
		t.Fatal("capacity 1 lane accepted a second packet")
	}
}

func TestLanesOfferTouchedDrain(t *testing.T) {
	l := NewLanes(4, 2)
	for _, lane := range []int{2, 0, 2} {
		if !l.Offer(lane) {
			t.Fatalf("Offer(%d) rejected below capacity", lane)
		}
	}
	if l.Touched() != 2 {
		t.Fatalf("Touched = %d, want 2 (lanes 0 and 2)", l.Touched())
	}
	// Lane 2 is at capacity now.
	if l.Offer(2) {
		t.Fatal("full lane accepted a packet")
	}
	if l.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", l.Drops())
	}
	if n := l.DrainAll(); n != 3 {
		t.Fatalf("DrainAll = %d, want 3", n)
	}
	if l.Touched() != 0 {
		t.Fatalf("Touched = %d after drain, want 0", l.Touched())
	}
	// No occupancy carries across bursts: the drained lane refills.
	if !l.Offer(2) || !l.Offer(2) {
		t.Fatal("drained lane rejected packets below capacity")
	}
	if n := l.DrainAll(); n != 2 {
		t.Fatalf("second DrainAll = %d, want 2", n)
	}
	if l.Drops() != 1 {
		t.Fatalf("Drops = %d after clean second burst, want 1 (cumulative)", l.Drops())
	}
}
