// Package sim implements the deterministic discrete-event engine that
// drives every FlowValve experiment.
//
// The engine owns a virtual clock (see package clock) and a min-heap of
// timestamped events. Events scheduled for the same instant fire in the
// order they were scheduled, which — together with the seeded RNG in
// rng.go — makes every simulation run byte-for-byte reproducible.
//
// The engine is deliberately single-threaded: multi-core behaviour (NP
// micro-engines, host CPU cores) is *modelled* with explicit cycle costs
// and resource availability times rather than with real goroutines, so
// that contention and timing play out identically on every run. Real
// goroutine parallelism is exercised separately by the wall-clock
// benchmarks in the core package.
package sim

import (
	"container/heap"

	"flowvalve/internal/clock"
	"flowvalve/internal/fvassert"
)

// Func is an event callback. It runs at its scheduled virtual time and may
// schedule further events.
type Func func()

type event struct {
	at  int64
	seq uint64
	fn  Func
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(event)
	if !ok {
		panic("sim: eventHeap.Push called with non-event value")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator.
//
// Engine is not safe for concurrent use; all scheduling must happen from
// event callbacks or from the single driving goroutine.
type Engine struct {
	clk    *clock.Manual
	events eventHeap
	seq    uint64
	fired  uint64
}

// New returns an engine whose clock starts at t=0.
func New() *Engine {
	return &Engine{clk: clock.NewManual(0)}
}

// Clock returns the engine's virtual clock. Components hold this as a
// clock.Clock so the same code runs under wall time.
func (e *Engine) Clock() *clock.Manual { return e.clk }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.clk.Now() }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (before Now) panics: it indicates a logic error that would silently
// corrupt causality if allowed.
func (e *Engine) At(t int64, fn Func) {
	if t < e.clk.Now() {
		panic("sim: Engine.At schedules event in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d int64, fn Func) {
	if d < 0 {
		panic("sim: Engine.After with negative delay")
	}
	e.At(e.clk.Now()+d, fn)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was fired (false means the event queue is
// empty).
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev, ok := heap.Pop(&e.events).(event)
	if !ok {
		panic("sim: event heap contained non-event value")
	}
	if fvassert.Enabled && ev.at < e.clk.Now() {
		fvassert.Failf("sim: event scheduled at t=%d fired with clock already at %d: causality violated",
			ev.at, e.clk.Now())
	}
	e.clk.Set(ev.at)
	e.fired++
	ev.fn()
	return true
}

// RunUntil fires events until the clock would pass t (exclusive for events
// strictly later than t) or the queue drains, then sets the clock to t.
// Events scheduled exactly at t do fire.
func (e *Engine) RunUntil(t int64) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.clk.Now() {
		e.clk.Set(t)
	}
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }
