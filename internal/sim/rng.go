package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Each simulation component takes its own RNG seeded from
// the scenario seed so that adding a component never perturbs the random
// streams of the others.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced by
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// It is used for Poisson inter-arrival processes in the traffic generators.
func (r *RNG) Exp(mean float64) float64 {
	// Inverse-CDF sampling; guard the log argument away from zero.
	u := r.Float64()
	if u >= 1 {
		u = 1 - 1e-12
	}
	return -mean * math.Log(1-u)
}
