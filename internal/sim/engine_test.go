package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time order = %v, want ascending", order)
		}
	}
}

func TestEventsMayScheduleEvents(t *testing.T) {
	e := New()
	var count int
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("final time = %d, want 50", e.Now())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New()
	var fired []int64
	e.At(10, func() { fired = append(fired, 10) })
	e.At(20, func() { fired = append(fired, 20) })
	e.At(30, func() { fired = append(fired, 30) })
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 10 and 20", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := New()
	e.RunUntil(12345)
	if e.Now() != 12345 {
		t.Fatalf("Now() = %d, want 12345", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := int64(0); i < 7; i++ {
		e.At(i, func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG is stuck at zero")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpPositiveMean(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(100)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Fatalf("exponential mean = %.1f, want ≈100", mean)
	}
}

// BenchmarkEngine measures raw event throughput — the budget every
// simulated packet spends on scheduling/firing its events.
func BenchmarkEngine(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(int64(i%1000), func() {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
	e.Run()
}

// BenchmarkEngineChain measures a self-rescheduling event chain (the
// drain-loop pattern used by every wire model).
func BenchmarkEngineChain(b *testing.B) {
	e := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	b.ResetTimer()
	e.Run()
}
