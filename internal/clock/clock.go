// Package clock provides the time sources used throughout FlowValve.
//
// All FlowValve components are written against the Clock interface so that
// the same scheduling code runs both under the deterministic discrete-event
// simulator (virtual nanoseconds owned by the sim engine) and under real
// wall-clock time (used by the concurrency benchmarks that exercise the
// scheduler with real goroutines, mirroring the NP micro-engines).
//
// Time is represented as int64 nanoseconds. Under virtual clocks the epoch
// is simulation start; under the wall clock it is an arbitrary monotonic
// origin.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonic nanosecond time source.
type Clock interface {
	// Now returns the current time in nanoseconds since an arbitrary,
	// fixed origin. Now never decreases.
	Now() int64
}

// Manual is a settable clock, advanced explicitly by its owner (typically
// the discrete-event engine). It is safe for concurrent use: readers may
// observe the clock from any goroutine while a single owner advances it.
//
// The zero value is a valid clock positioned at t=0.
type Manual struct {
	now atomic.Int64
}

var _ Clock = (*Manual)(nil)

// NewManual returns a manual clock positioned at start nanoseconds.
func NewManual(start int64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// Now returns the current virtual time.
func (m *Manual) Now() int64 {
	return m.now.Load()
}

// Set moves the clock to t. Set panics if t would move time backwards;
// a simulation that rewinds its clock is irrecoverably corrupt, so this
// is treated as a programming error rather than a runtime condition.
func (m *Manual) Set(t int64) {
	if prev := m.now.Load(); t < prev {
		panic("clock: Manual.Set would move time backwards")
	}
	m.now.Store(t)
}

// Advance moves the clock forward by d nanoseconds and returns the new time.
func (m *Manual) Advance(d int64) int64 {
	if d < 0 {
		panic("clock: Manual.Advance with negative duration")
	}
	return m.now.Add(d)
}

// Wall is a monotonic wall-clock time source backed by time.Now.
// It reports nanoseconds elapsed since the Wall value was created.
type Wall struct {
	origin time.Time
}

var _ Clock = (*Wall)(nil)

// NewWall returns a wall clock whose origin is the moment of the call.
func NewWall() *Wall {
	return &Wall{origin: time.Now()}
}

// Now returns nanoseconds elapsed since the clock's origin.
func (w *Wall) Now() int64 {
	return int64(time.Since(w.origin))
}
