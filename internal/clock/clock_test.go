package clock

import (
	"testing"
	"time"
)

func TestManualStartsAtGivenTime(t *testing.T) {
	m := NewManual(42)
	if got := m.Now(); got != 42 {
		t.Fatalf("Now() = %d, want 42", got)
	}
}

func TestManualZeroValue(t *testing.T) {
	var m Manual
	if got := m.Now(); got != 0 {
		t.Fatalf("zero Manual Now() = %d, want 0", got)
	}
}

func TestManualSetAndAdvance(t *testing.T) {
	m := NewManual(0)
	m.Set(100)
	if got := m.Now(); got != 100 {
		t.Fatalf("after Set(100), Now() = %d", got)
	}
	if got := m.Advance(50); got != 150 {
		t.Fatalf("Advance(50) = %d, want 150", got)
	}
	if got := m.Now(); got != 150 {
		t.Fatalf("after Advance, Now() = %d, want 150", got)
	}
}

func TestManualSetBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	m := NewManual(100)
	m.Set(99)
}

func TestManualAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	m := NewManual(0)
	m.Advance(-1)
}

func TestManualConcurrentReaders(t *testing.T) {
	m := NewManual(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last int64
		for i := 0; i < 10000; i++ {
			now := m.Now()
			if now < last {
				t.Error("observed time moving backwards")
				return
			}
			last = now
		}
	}()
	for i := 0; i < 10000; i++ {
		m.Advance(1)
	}
	<-done
}

func TestWallMonotonic(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("wall clock not advancing: %d then %d", a, b)
	}
}
