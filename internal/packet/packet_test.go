package packet

import (
	"testing"
	"testing/quick"
)

func TestAllocAssignsUniqueIDs(t *testing.T) {
	var a Alloc
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		p := a.New(1, 2, 64, int64(i))
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestAllocStampsFields(t *testing.T) {
	var a Alloc
	p := a.New(7, 3, 1500, 42)
	if p.Flow != 7 || p.App != 3 || p.Size != 1500 || p.SentAt != 42 {
		t.Fatalf("fields wrong: %+v", p)
	}
	if p.EgressAt != 0 {
		t.Fatal("EgressAt should start zero")
	}
}

func TestWireBytesSingleFrame(t *testing.T) {
	cases := map[int]int{
		64:   64 + WireOverhead,
		1518: 1518 + WireOverhead,
		1:    1 + WireOverhead,
	}
	for size, want := range cases {
		p := Packet{Size: size}
		if got := p.WireBytes(); got != want {
			t.Errorf("WireBytes(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestWireBytesTSOSegments(t *testing.T) {
	// A 16KB TSO segment spans ceil(16384/1518) = 11 wire frames.
	p := Packet{Size: 16384}
	want := 16384 + 11*WireOverhead
	if got := p.WireBytes(); got != want {
		t.Fatalf("WireBytes(16KB) = %d, want %d", got, want)
	}
}

// Property: wire bytes always exceed the frame size, and per-byte
// overhead never exceeds one frame of overhead per MaxFrame bytes plus
// one extra frame.
func TestWireBytesProperty(t *testing.T) {
	check := func(sz uint16) bool {
		size := int(sz) + 1
		p := Packet{Size: size}
		wb := p.WireBytes()
		if wb <= size {
			return false
		}
		frames := (size + MaxFrame - 1) / MaxFrame
		return wb == size+frames*WireOverhead
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
