// Package packet defines the packet model shared by the NIC simulator,
// the software-scheduler baselines, the TCP flow model, and the traffic
// generators.
//
// A Packet carries only transport-agnostic metadata. QoS labels (the
// class hierarchy path and borrowing permissions computed by the
// classifier) are *not* stored on the packet: on the NP the label lives in
// per-packet buffer metadata that exists only for the duration of the
// run-to-completion worker routine, and the simulation mirrors that by
// passing the label alongside the packet through the pipeline stages.
package packet

import "flowvalve/internal/headers"

// Sizes of common Ethernet frames, in bytes, including the FCS — the
// convention used by the paper's packet-size sweep (64B..1518B).
const (
	MinFrame = 64
	MaxFrame = 1518

	// WireOverhead is the per-frame on-the-wire overhead that does not
	// appear in the frame itself: 7B preamble + 1B SFD + 12B minimum
	// inter-frame gap + 4B FCS when sizes are quoted without it.
	// FlowValve quotes frame sizes including FCS, so the effective
	// per-packet wire cost is Size + 20; we keep 24 configurable at the
	// wire to match the paper's 3.23Mpps@1518B line-rate figure.
	WireOverhead = 24
)

// FlowID identifies a transport flow (one TCP connection or one generator
// stream). IDs are dense small integers assigned by the scenario builder.
type FlowID uint32

// AppID identifies the sending application/tenant (one virtual function
// port in the paper's SR-IOV setup).
type AppID uint16

// Packet is one frame travelling through the simulated system.
type Packet struct {
	// ID is unique per simulation run, assigned by the allocator.
	ID uint64

	// Flow is the transport flow this packet belongs to.
	Flow FlowID

	// App is the sending application (maps to a virtual function port).
	App AppID

	// Size is the frame length in bytes including FCS.
	Size int

	// Seq is a transport sequence number, used by the TCP model. Zero
	// for open-loop generator traffic.
	Seq uint64

	// Tuple is the packet's on-wire five-tuple; header bytes are
	// synthesized from it when the pipeline's parser runs.
	Tuple headers.FiveTuple

	// SentAt is the virtual time the host handed the packet to the NIC
	// (or qdisc, for software baselines), in nanoseconds.
	SentAt int64

	// EgressAt is the virtual time the packet left on the wire; set by
	// the wire model on delivery. Zero while in flight or dropped.
	EgressAt int64

	// Marked is the ECN-style congestion signal set by the scheduler's
	// mark-on-red extension: the packet was forwarded instead of
	// dropped, and the transport must reduce its rate.
	Marked bool
}

// WireBytes returns the bytes of wire time the packet occupies, including
// preamble, SFD and inter-frame gap. TSO-style super-segments larger than
// MaxFrame pay the per-frame overhead once per wire frame, keeping the
// line-rate arithmetic honest when the TCP model batches segments.
func (p *Packet) WireBytes() int {
	frames := (p.Size + MaxFrame - 1) / MaxFrame
	if frames < 1 {
		frames = 1
	}
	return p.Size + WireOverhead*frames
}

// Alloc allocates packets with unique IDs. The zero value is ready to use.
// Alloc is not safe for concurrent use; the DES is single-threaded and the
// wall-clock benchmarks use one Alloc per goroutine.
type Alloc struct {
	next uint64
}

// New returns a fresh packet with the given identity fields, a unique ID,
// a deterministic five-tuple, and SentAt stamped to now.
func (a *Alloc) New(flow FlowID, app AppID, size int, now int64) *Packet {
	a.next++
	return &Packet{
		ID:     a.next,
		Flow:   flow,
		App:    app,
		Size:   size,
		Tuple:  TupleFor(app, flow),
		SentAt: now,
	}
}

// TupleFor derives the canonical five-tuple of a flow: each app is a /24
// source subnet with its own service port (5201+app, iperf3-style
// parallel servers), flows take distinct host addresses and source
// ports, and everything targets the measurement sink at 10.99.0.1.
func TupleFor(app AppID, flow FlowID) headers.FiveTuple {
	return headers.FiveTuple{
		SrcIP:   0x0a000000 | uint32(app)<<8 | (uint32(flow)%250 + 1),
		DstIP:   0x0a630001,
		SrcPort: 33000 + uint16(flow%32000),
		DstPort: 5201 + uint16(app%100),
		Proto:   headers.ProtoTCP,
	}
}
