package htb

import "flowvalve/internal/telemetry"

// qdiscTel holds the qdisc's attached metric handles.
type qdiscTel struct {
	enqueued       *telemetry.Counter
	delivered      *telemetry.Counter
	deliveredBytes *telemetry.Counter
	dropped        *telemetry.Counter
	hostCycles     *telemetry.Counter
	backlog        *telemetry.Gauge
}

// AttachTelemetry wires the HTB baseline into a metrics registry using
// the same family names as the NIC model and the DPDK baseline, labelled
// {scheduler="htb"}, so figure-style comparisons read one metric family
// across all three schedulers.
func (q *Qdisc) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		q.tel = nil
		return
	}
	sched := telemetry.Label{Key: "scheduler", Value: "htb"}
	q.tel = &qdiscTel{
		enqueued: reg.Counter("fv_enqueued_packets_total",
			"Packets accepted into a class queue.", sched),
		delivered: reg.Counter("fv_delivered_packets_total",
			"Packets that finished transmitting on the wire.", sched),
		deliveredBytes: reg.Counter("fv_delivered_bytes_total",
			"Frame bytes that finished transmitting on the wire.", sched),
		dropped: reg.Counter("fv_dropped_packets_total",
			"Packets dropped, by scheduler and reason.",
			sched, telemetry.Label{Key: "reason", Value: "queue"}),
		hostCycles: reg.Counter("fv_host_cycles_total",
			"Host CPU cycles burned at the qdisc lock stage.", sched),
		backlog: reg.Gauge("fv_backlog_packets",
			"Packets waiting in scheduler queues.", sched),
	}
}
