// Package htb models the Linux kernel's Hierarchy Token Bucket qdisc as
// the paper's non-offloaded baseline (§II, Fig 3).
//
// The model is a classful borrow/ceil token hierarchy with DRR quanta,
// deliberately reproducing the three kernel behaviours the paper
// documents against it:
//
//  1. Borrowed bandwidth is distributed by quantum (∝ assured rate)
//     regardless of leaf priority — so the KVS/ML priority setting is
//     ignored while both borrow (Fig 3, 15–30s), and a high-priority
//     class with a small assured rate (NC) is not actually prioritized.
//  2. Rate accounting over-credits under sustained load: coarse kernel
//     clocks, timer slack and burst auto-sizing let HTB exceed its
//     configured rates by a roughly constant factor at 10G+ speeds. The
//     net effect is modelled as a calibrated over-credit factor on token
//     refill (default 1.2, reproducing the ≈12Gbps the paper measures
//     against a 10Gbps root ceiling on the 40GbE wire).
//  3. All enqueue/dequeue work funnels through the global qdisc lock,
//     modelled as a single-server CPU stage that both caps packet rate
//     and accrues host CPU cycles.
//
// The class tree is configured with the shared tree package: RateBps is
// the HTB assured rate (also the quantum basis), CeilBps the ceiling.
package htb

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/host"
	"flowvalve/internal/packet"
	"flowvalve/internal/pktq"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
)

// Classify maps a packet to its leaf class; nil means unclassified
// (dropped).
type Classify func(*packet.Packet) *tree.Class

// Callbacks deliver results to the harness; the qdisc shares the
// dataplane's callback shape so harnesses build one set for any backend.
type Callbacks = dataplane.Callbacks

// Config tunes the qdisc model.
type Config struct {
	// LinkRateBps is the egress link the qdisc feeds.
	LinkRateBps float64
	// QueuePkts bounds each leaf FIFO (txqueuelen analogue).
	QueuePkts int
	// GranularityNs is the watchdog timer resolution used when every
	// class is throttled.
	GranularityNs int64
	// OvershootFactor multiplies token refill, modelling the kernel's
	// coarse-clock over-crediting (inaccuracy source 2). 1.0 disables.
	OvershootFactor float64
	// BurstNs sizes token bursts (rate·BurstNs, floored at one MTU) —
	// the kernel's autosized burst of roughly one timer tick.
	BurstNs int64
	// EnqueueCycles and DequeueCycles are charged per packet at the
	// global-lock CPU stage.
	EnqueueCycles int64
	DequeueCycles int64
	// ServiceNsPerPkt is a per-packet service-time floor on the drain,
	// modelling a CPU-bound qdisc: when the pooled host cores need
	// longer to schedule a packet than the wire needs to serialize it,
	// the CPU is the server. 0 keeps the drain purely link-limited (the
	// kernel-baseline behaviour).
	ServiceNsPerPkt float64
	// Host is the CPU model; nil creates the default 8×2.3GHz host.
	Host host.Config
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.LinkRateBps <= 0 {
		c.LinkRateBps = 10e9
	}
	if c.QueuePkts <= 0 {
		c.QueuePkts = 1000
	}
	if c.GranularityNs <= 0 {
		c.GranularityNs = 1_000_000 // 1ms watchdog
	}
	if c.OvershootFactor <= 0 {
		c.OvershootFactor = 1.2 // calibrated to the paper's ≈12G@10G-ceil
	}
	if c.BurstNs <= 0 {
		c.BurstNs = 4_000_000 // ~one 250Hz tick
	}
	if c.EnqueueCycles <= 0 {
		c.EnqueueCycles = 1100 // classify + qdisc lock + enqueue
	}
	if c.DequeueCycles <= 0 {
		c.DequeueCycles = 900
	}
	return c
}

type classState struct {
	tokens  float64 // assured-rate bucket, bytes
	ctokens float64 // ceil bucket, bytes
	lastNs  int64
	deficit float64 // DRR deficit, bytes
	queue   *pktq.FIFO
}

// Stats are cumulative counters.
type Stats struct {
	Enqueued  uint64
	Delivered uint64
	Dropped   uint64
}

// Qdisc is the HTB model instance.
type Qdisc struct {
	eng      *sim.Engine
	cfg      Config
	t        *tree.Tree
	classify Classify
	cb       Callbacks
	cpu      *host.CPU

	states []classState
	leaves []*tree.Class

	wireFreeNs int64
	draining   bool
	nextLeaf   int // DRR cursor

	stats Stats
	tel   *qdiscTel // attached telemetry (nil when off)
}

// New builds an HTB qdisc over the class tree t.
func New(eng *sim.Engine, cfg Config, t *tree.Tree, classify Classify, cb Callbacks) (*Qdisc, error) {
	if eng == nil || t == nil || classify == nil {
		return nil, fmt.Errorf("htb: nil engine, tree, or classifier")
	}
	cfg = cfg.Defaults()
	q := &Qdisc{
		eng:      eng,
		cfg:      cfg,
		t:        t,
		classify: classify,
		cb:       cb,
		cpu:      host.New(cfg.Host),
		states:   make([]classState, t.Len()),
		leaves:   t.Leaves(),
	}
	now := eng.Now()
	for _, c := range t.Classes() {
		st := &q.states[c.ID]
		st.lastNs = now
		st.tokens = q.burst(c.RateBps)
		st.ctokens = q.burst(q.ceilOf(c))
		if c.Leaf() {
			st.queue = pktq.New(cfg.QueuePkts, 0)
		}
	}
	return q, nil
}

func (q *Qdisc) ceilOf(c *tree.Class) float64 {
	if c.CeilBps > 0 {
		return c.CeilBps
	}
	return c.RateBps
}

func (q *Qdisc) burst(rateBps float64) float64 {
	b := rateBps / 8 * float64(q.cfg.BurstNs) / 1e9
	if b < packet.MaxFrame {
		b = packet.MaxFrame
	}
	return b
}

// Stats returns cumulative counters.
func (q *Qdisc) Stats() Stats { return q.stats }

// CPU returns the host CPU accountant (for cores-used reporting).
func (q *Qdisc) CPU() *host.CPU { return q.cpu }

// Enqueue accepts a packet from an application at the current time.
func (q *Qdisc) Enqueue(p *packet.Packet) {
	q.cpu.Charge(float64(q.cfg.EnqueueCycles))
	if q.tel != nil {
		q.tel.hostCycles.Add(q.cfg.EnqueueCycles)
	}
	leaf := q.classify(p)
	if leaf == nil || !leaf.Leaf() {
		q.drop(p)
		return
	}
	st := &q.states[leaf.ID]
	if !st.queue.TryPush(p) {
		q.drop(p)
		return
	}
	q.stats.Enqueued++
	if q.tel != nil {
		q.tel.enqueued.Add(1)
		q.tel.backlog.Add(1)
	}
	if !q.draining {
		q.draining = true
		q.eng.After(0, q.drain)
	}
}

// drain pulls the next eligible packet onto the wire and re-arms itself.
func (q *Qdisc) drain() {
	now := q.eng.Now()
	if now < q.wireFreeNs {
		q.eng.At(q.wireFreeNs, q.drain)
		return
	}
	leaf := q.selectLeaf(now)
	if leaf == nil {
		if q.anyBacklog() {
			// All classes throttled: watchdog retry at coarse
			// timer resolution.
			q.eng.After(q.cfg.GranularityNs, q.drain)
			return
		}
		q.draining = false
		return
	}
	st := &q.states[leaf.ID]
	p := st.queue.Pop()
	q.cpu.Charge(float64(q.cfg.DequeueCycles))
	if q.tel != nil {
		q.tel.hostCycles.Add(q.cfg.DequeueCycles)
		q.tel.backlog.Add(-1)
	}
	q.chargeTokens(leaf, float64(p.Size))

	txNs := float64(p.WireBytes()*8) / q.cfg.LinkRateBps * 1e9
	if txNs < q.cfg.ServiceNsPerPkt {
		txNs = q.cfg.ServiceNsPerPkt
	}
	q.wireFreeNs = now + int64(txNs)
	done := q.wireFreeNs
	q.eng.At(done, func() {
		p.EgressAt = done
		q.stats.Delivered++
		if q.tel != nil {
			q.tel.delivered.Add(1)
			q.tel.deliveredBytes.Add(int64(p.Size))
		}
		if q.cb.OnDeliver != nil {
			q.cb.OnDeliver(p)
		}
		q.drain()
	})
}

func (q *Qdisc) anyBacklog() bool {
	for _, leaf := range q.leaves {
		if !q.states[leaf.ID].queue.Empty() {
			return true
		}
	}
	return false
}

// selectLeaf implements the serving decision: strict priority among
// leaves sending within their assured rate, then quantum-weighted DRR
// among borrowers with no regard for priority (kernel behaviour 1).
func (q *Qdisc) selectLeaf(now int64) *tree.Class {
	// Lazy token replenish on every touched class.
	for _, c := range q.t.Classes() {
		q.replenish(c, now)
	}

	// Pass 1: within assured rate, strict priority then FIFO order.
	var best *tree.Class
	for _, leaf := range q.leaves {
		st := &q.states[leaf.ID]
		if st.queue.Empty() {
			continue
		}
		if st.tokens >= float64(st.queue.Peek().Size) && q.ancestorsWithinCeil(leaf) {
			if best == nil || leaf.Prio < best.Prio {
				best = leaf
			}
		}
	}
	if best != nil {
		return best
	}

	// Pass 2: borrowing. Eligible when the leaf is within its ceil and
	// some ancestor still holds assured tokens (and everything on the
	// way is within ceil). Served DRR by quantum, priority ignored.
	n := len(q.leaves)
	for i := 0; i < n; i++ {
		idx := (q.nextLeaf + i) % n
		leaf := q.leaves[idx]
		st := &q.states[leaf.ID]
		if st.queue.Empty() {
			continue
		}
		size := float64(st.queue.Peek().Size)
		if st.ctokens < size || !q.canBorrow(leaf, size) {
			continue
		}
		if st.deficit < size {
			st.deficit += q.quantum(leaf)
			if st.deficit < size {
				continue
			}
		}
		st.deficit -= size
		q.nextLeaf = (idx + 1) % n
		return leaf
	}
	return nil
}

func (q *Qdisc) ancestorsWithinCeil(leaf *tree.Class) bool {
	for c := leaf.Parent; c != nil; c = c.Parent {
		if q.states[c.ID].ctokens < float64(packet.MinFrame) {
			return false
		}
	}
	return true
}

func (q *Qdisc) canBorrow(leaf *tree.Class, size float64) bool {
	for c := leaf.Parent; c != nil; c = c.Parent {
		st := &q.states[c.ID]
		if st.ctokens < size {
			return false
		}
		if st.tokens >= size {
			return true // found a lending ancestor
		}
	}
	return false
}

// quantum is the DRR weight: proportional to the assured rate (the
// kernel's r2q scaling), floored at one MTU.
func (q *Qdisc) quantum(leaf *tree.Class) float64 {
	quantum := leaf.RateBps / 8 / 1000 // r2q ≈ 1000
	if quantum < packet.MaxFrame {
		quantum = packet.MaxFrame
	}
	return quantum
}

// replenish refreshes both buckets with the kernel's over-credit factor
// (behaviour 2).
func (q *Qdisc) replenish(c *tree.Class, now int64) {
	st := &q.states[c.ID]
	dt := now - st.lastNs
	if dt <= 0 {
		return
	}
	st.lastNs = now
	secs := float64(dt) / 1e9 * q.cfg.OvershootFactor
	st.tokens += c.RateBps / 8 * secs
	if maxT := q.burst(c.RateBps); st.tokens > maxT {
		st.tokens = maxT
	}
	ceil := q.ceilOf(c)
	st.ctokens += ceil / 8 * secs
	if maxC := q.burst(ceil); st.ctokens > maxC {
		st.ctokens = maxC
	}
}

// chargeTokens debits the sent bytes along the whole path (leaf to root),
// from both buckets.
func (q *Qdisc) chargeTokens(leaf *tree.Class, size float64) {
	for c := leaf; c != nil; c = c.Parent {
		st := &q.states[c.ID]
		st.tokens -= size
		st.ctokens -= size
	}
}

func (q *Qdisc) drop(p *packet.Packet) {
	q.stats.Dropped++
	if q.tel != nil {
		q.tel.dropped.Add(1)
	}
	if q.cb.OnDrop != nil {
		q.cb.OnDrop(p)
	}
}

// Backlog returns the total queued packets across leaves.
func (q *Qdisc) Backlog() int {
	var n int
	for _, leaf := range q.leaves {
		n += q.states[leaf.ID].queue.Len()
	}
	return n
}

// ClassBacklog returns the packets queued in one leaf class's FIFO (0
// for interior or out-of-range IDs) — the per-class occupancy the
// offload control plane feeds back into its threshold policy.
func (q *Qdisc) ClassBacklog(id tree.ClassID) int {
	if int(id) < 0 || int(id) >= len(q.states) {
		return 0
	}
	st := &q.states[id]
	if st.queue == nil {
		return 0
	}
	return st.queue.Len()
}

// Compile-time capability checks: the HTB baseline is driven through the
// same dataplane.Qdisc interface as the offloaded path.
var (
	_ dataplane.Qdisc          = (*Qdisc)(nil)
	_ dataplane.Backlogger     = (*Qdisc)(nil)
	_ dataplane.HostAccountant = (*Qdisc)(nil)
	_ dataplane.TelemetrySink  = (*Qdisc)(nil)
)

// QdiscStats implements dataplane.Qdisc.
func (q *Qdisc) QdiscStats() dataplane.Stats {
	return dataplane.Stats{
		Enqueued:  q.stats.Enqueued,
		Delivered: q.stats.Delivered,
		Dropped:   q.stats.Dropped,
	}
}

// HostCores implements dataplane.HostAccountant: host CPU cores consumed
// by the qdisc over the run (the non-offloaded baseline's defining cost).
func (q *Qdisc) HostCores(durationNs int64) float64 {
	return q.cpu.CoresUsed(durationNs)
}
