package htb

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

// twoClassTree: root 1G, leaves a (600M assured) and b (400M assured),
// both ceil 1G.
func twoClassTree() *tree.Tree {
	return tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root", RateBps: 600e6, CeilBps: 1e9}).
		Add(tree.ClassSpec{Name: "b", Parent: "root", RateBps: 400e6, CeilBps: 1e9}).
		MustBuild()
}

type htbRig struct {
	eng   *sim.Engine
	q     *Qdisc
	bytes map[string]int64
	drops int
}

func newHTBRig(t *testing.T, cfg Config, tr *tree.Tree, classOf map[packet.AppID]string) *htbRig {
	t.Helper()
	r := &htbRig{eng: sim.New(), bytes: make(map[string]int64)}
	byName := make(map[packet.AppID]*tree.Class)
	for app, name := range classOf {
		c, ok := tr.Lookup(name)
		if !ok {
			t.Fatalf("unknown class %s", name)
		}
		byName[app] = c
	}
	var err error
	r.q, err = New(r.eng, cfg, tr,
		func(p *packet.Packet) *tree.Class { return byName[p.App] },
		Callbacks{
			OnDeliver: func(p *packet.Packet) {
				r.bytes[byName[p.App].Name] += int64(p.Size)
			},
			OnDrop: func(*packet.Packet) { r.drops++ },
		})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	tr := twoClassTree()
	eng := sim.New()
	cls := func(*packet.Packet) *tree.Class { return nil }
	if _, err := New(nil, Config{}, tr, cls, Callbacks{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(eng, Config{}, nil, cls, Callbacks{}); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := New(eng, Config{}, tr, nil, Callbacks{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

// Assured rates are honoured when both classes saturate: the overshoot
// factor inflates both proportionally, preserving the 6:4 ratio.
func TestAssuredRatesSplit(t *testing.T) {
	tr := twoClassTree()
	r := newHTBRig(t, Config{LinkRateBps: 1e9, OvershootFactor: 1.0},
		tr, map[packet.AppID]string{0: "a", 1: "b"})
	alloc := &packet.Alloc{}
	for app := packet.AppID(0); app < 2; app++ {
		if _, err := trafficgen.NewCBR(r.eng, alloc, packet.FlowID(app), app, 1500,
			2e9, 0, 200e6, r.q.Enqueue); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	total := r.bytes["a"] + r.bytes["b"]
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	shareA := float64(r.bytes["a"]) / float64(total)
	if shareA < 0.52 || shareA > 0.68 {
		t.Fatalf("class a share = %.2f, want ≈0.6", shareA)
	}
	if r.drops == 0 {
		t.Fatal("2× overload should drop at the leaf queues")
	}
}

// An idle sibling's bandwidth is borrowed through the parent.
func TestBorrowingWorkConservation(t *testing.T) {
	tr := twoClassTree()
	r := newHTBRig(t, Config{LinkRateBps: 1e9, OvershootFactor: 1.0},
		tr, map[packet.AppID]string{0: "a", 1: "b"})
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 0, 0, 1500, 2e9, 0, 200e6, r.q.Enqueue); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	rate := float64(r.bytes["a"]) * 8 / 0.2
	if rate < 0.85e9 {
		t.Fatalf("class a got %.2fG with b idle, want ≈1G (borrowing)", rate/1e9)
	}
}

// The calibrated overshoot factor lets HTB exceed its configured rates —
// kernel behaviour 2.
func TestOvershootFactor(t *testing.T) {
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root", RateBps: 1e9, CeilBps: 1e9}).
		MustBuild()
	r := newHTBRig(t, Config{LinkRateBps: 10e9, OvershootFactor: 1.2},
		tr, map[packet.AppID]string{0: "a"})
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 0, 0, 1500, 3e9, 0, 500e6, r.q.Enqueue); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	rate := float64(r.bytes["a"]) * 8 / 0.5
	if rate < 1.1e9 || rate > 1.3e9 {
		t.Fatalf("delivered %.2fG against a 1G ceil, want ≈1.2G overshoot", rate/1e9)
	}
}

// Strict priority holds within assured rates but NOT while borrowing —
// kernel behaviour 1 (the paper's KVS/ML observation).
func TestBorrowingIgnoresPriority(t *testing.T) {
	tr := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "hi", Parent: "root", Prio: 0, RateBps: 100e6, CeilBps: 1e9}).
		Add(tree.ClassSpec{Name: "lo", Parent: "root", Prio: 1, RateBps: 100e6, CeilBps: 1e9}).
		MustBuild()
	r := newHTBRig(t, Config{LinkRateBps: 1e9, OvershootFactor: 1.0},
		tr, map[packet.AppID]string{0: "hi", 1: "lo"})
	alloc := &packet.Alloc{}
	for app := packet.AppID(0); app < 2; app++ {
		if _, err := trafficgen.NewCBR(r.eng, alloc, packet.FlowID(app), app, 1500,
			2e9, 0, 300e6, r.q.Enqueue); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	hi, lo := float64(r.bytes["hi"]), float64(r.bytes["lo"])
	// True strict priority would give hi ≈ everything; the kernel's
	// quantum-based borrowing splits the borrowed 800M equally
	// (equal assured rates → equal quanta), so hi/lo ≈ 1.
	if hi/lo > 1.5 {
		t.Fatalf("hi/lo = %.2f — model should ignore priority while borrowing", hi/lo)
	}
}

func TestCPUAccounting(t *testing.T) {
	tr := twoClassTree()
	r := newHTBRig(t, Config{LinkRateBps: 1e9}, tr, map[packet.AppID]string{0: "a"})
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 0, 0, 1500, 0.5e9, 0, 100e6, r.q.Enqueue); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.q.CPU().Cycles() == 0 {
		t.Fatal("no CPU cycles charged")
	}
	st := r.q.Stats()
	if st.Enqueued == 0 || st.Delivered == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if r.q.Backlog() != 0 {
		t.Fatal("backlog left after drain")
	}
}

// Unclassified packets are dropped.
func TestUnclassifiedDropped(t *testing.T) {
	tr := twoClassTree()
	r := newHTBRig(t, Config{}, tr, map[packet.AppID]string{0: "a"})
	var a packet.Alloc
	r.q.Enqueue(a.New(0, 9, 100, 0)) // app 9 unmapped → classify nil
	r.eng.Run()
	if r.drops != 1 {
		t.Fatalf("drops = %d, want 1", r.drops)
	}
}
