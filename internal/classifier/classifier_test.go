package classifier

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
)

func testTree(t testing.TB) *tree.Tree {
	t.Helper()
	return tree.NewBuilder().
		Root("root", 10e9).
		Add(tree.ClassSpec{Name: "a", Parent: "root"}).
		Add(tree.ClassSpec{Name: "b", Parent: "root"}).
		Add(tree.ClassSpec{Name: "def", Parent: "root"}).
		MustBuild()
}

func pkt(app packet.AppID, flow packet.FlowID) *packet.Packet {
	return &packet.Packet{App: app, Flow: flow, Size: 100}
}

func TestRuleMatchFirstWins(t *testing.T) {
	tr := testTree(t)
	c, err := New(tr, []Rule{
		{App: 1, Flow: AnyFlow, Class: "a"},
		{App: AnyApp, Flow: AnyFlow, Class: "b"},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	lbl, hit := c.Lookup(pkt(1, 10))
	if hit {
		t.Fatal("first lookup reported a cache hit")
	}
	if lbl == nil || lbl.Leaf.Name != "a" {
		t.Fatalf("app1 matched %v, want a", lbl)
	}
	lbl, _ = c.Lookup(pkt(2, 11))
	if lbl == nil || lbl.Leaf.Name != "b" {
		t.Fatalf("app2 matched %v, want wildcard b", lbl)
	}
}

func TestFlowSpecificRule(t *testing.T) {
	tr := testTree(t)
	c, err := New(tr, []Rule{
		{App: 1, Flow: 5, Class: "a"},
		{App: 1, Flow: AnyFlow, Class: "b"},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if lbl, _ := c.Lookup(pkt(1, 5)); lbl.Leaf.Name != "a" {
		t.Fatal("flow-specific rule did not win")
	}
	if lbl, _ := c.Lookup(pkt(1, 6)); lbl.Leaf.Name != "b" {
		t.Fatal("fallback rule did not match")
	}
}

func TestFlowCacheHit(t *testing.T) {
	tr := testTree(t)
	c, _ := New(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "")
	c.Lookup(pkt(1, 1))
	if _, hit := c.Lookup(pkt(1, 1)); !hit {
		t.Fatal("second lookup missed the cache")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if c.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d", c.CacheLen())
	}
}

func TestDefaultClass(t *testing.T) {
	tr := testTree(t)
	c, err := New(tr, []Rule{{App: 1, Flow: AnyFlow, Class: "a"}}, "def")
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := c.Lookup(pkt(9, 9))
	if lbl == nil || lbl.Leaf.Name != "def" {
		t.Fatalf("unmatched packet got %v, want default", lbl)
	}
}

func TestUnmatchedWithoutDefault(t *testing.T) {
	tr := testTree(t)
	c, _ := New(tr, []Rule{{App: 1, Flow: AnyFlow, Class: "a"}}, "")
	lbl, _ := c.Lookup(pkt(9, 9))
	if lbl != nil {
		t.Fatal("unmatched packet got a label without a default class")
	}
	// Negative result is cached too.
	if _, hit := c.Lookup(pkt(9, 9)); !hit {
		t.Fatal("negative result was not cached")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tr := testTree(t)
	c, _ := New(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "")
	c.Lookup(pkt(1, 1))
	c.Lookup(pkt(1, 2))
	c.Invalidate(1, 1)
	if c.CacheLen() != 1 {
		t.Fatalf("CacheLen after invalidate = %d, want 1", c.CacheLen())
	}
	c.Invalidate(9, 9) // unknown key is fine
	c.Flush()
	if st := c.Stats(); c.CacheLen() != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatal("flush did not clear cache and counters")
	}
}

func TestNewValidatesTargets(t *testing.T) {
	tr := testTree(t)
	if _, err := New(tr, []Rule{{Class: "ghost"}}, ""); err == nil {
		t.Fatal("rule to unknown class accepted")
	}
	if _, err := New(tr, []Rule{{Class: "root"}}, ""); err == nil {
		t.Fatal("rule to interior class accepted")
	}
	if _, err := New(tr, nil, "ghost"); err == nil {
		t.Fatal("unknown default class accepted")
	}
	if _, err := New(tr, nil, "root"); err == nil {
		t.Fatal("interior default class accepted")
	}
}

func TestRulesCopiedAtBoundary(t *testing.T) {
	tr := testTree(t)
	rules := []Rule{{App: 1, Flow: AnyFlow, Class: "a"}}
	c, _ := New(tr, rules, "")
	rules[0].Class = "b" // caller mutation must not leak in
	lbl, _ := c.Lookup(pkt(1, 1))
	if lbl.Leaf.Name != "a" {
		t.Fatal("classifier shared the caller's rule slice")
	}
}

// Tuple-based rules classify through the parser + pipeline path.
func TestTupleRuleClassification(t *testing.T) {
	tr := testTree(t)
	c, err := New(tr, []Rule{
		{App: AnyApp, Flow: AnyFlow, DstPort: 5201, DstPortMask: 0xffff, Class: "a"},
		{App: AnyApp, Flow: AnyFlow, SrcIP: 0x0a000200, SrcIPMask: 0xffffff00, Class: "b"},
	}, "def")
	if err != nil {
		t.Fatal(err)
	}
	// App-0 packets target dst port 5201 → class a.
	var alloc packet.Alloc
	p := alloc.New(1, 0, 1500, 0)
	lbl, _ := c.Lookup(p)
	if lbl == nil || lbl.Leaf.Name != "a" {
		t.Fatalf("dport rule matched %v, want a", lbl)
	}
	// App 2's subnet is 10.0.2.0/24 → rule b when the port rule is
	// bypassed.
	p2 := alloc.New(2, 2, 1500, 0)
	p2.Tuple.DstPort = 80
	lbl, _ = c.Lookup(p2)
	if lbl == nil || lbl.Leaf.Name != "b" {
		t.Fatalf("src-subnet rule matched %v, want b", lbl)
	}
	// Nothing matches → default.
	p3 := alloc.New(3, 9, 1500, 0)
	p3.Tuple.DstPort = 80
	p3.Tuple.SrcIP = 0x0b000001
	lbl, _ = c.Lookup(p3)
	if lbl == nil || lbl.Leaf.Name != "def" {
		t.Fatalf("default fallthrough got %v", lbl)
	}
	if pe := c.Stats().ParseErrors; pe != 0 {
		t.Fatalf("parser rejected %d synthetic frames", pe)
	}
	if c.Pipeline() == nil || len(c.Pipeline().Tables()) != 1 {
		t.Fatal("pipeline not exposed")
	}
}

// A packet without a tuple (zero value) classifies on metadata only.
func TestMetadataOnlyPacket(t *testing.T) {
	tr := testTree(t)
	c, err := New(tr, []Rule{
		{App: 1, Flow: AnyFlow, Class: "a"},
		{App: AnyApp, Flow: AnyFlow, DstPort: 5201, DstPortMask: 0xffff, Class: "b"},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := c.Lookup(&packet.Packet{App: 1, Flow: 7, Size: 100})
	if lbl == nil || lbl.Leaf.Name != "a" {
		t.Fatalf("metadata rule matched %v, want a", lbl)
	}
	// No tuple → the dport rule cannot match; no default → nil.
	lbl, _ = c.Lookup(&packet.Packet{App: 2, Flow: 8, Size: 100})
	if lbl != nil {
		t.Fatalf("tuple rule matched a tuple-less packet: %v", lbl)
	}
}
