package classifier

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
)

// makeLabels allocates a batch label scratch.
func makeLabels(n int) []*tree.Label { return make([]*tree.Label, n) }

// Churn far past capacity must never grow the cache beyond its bound —
// the million-flow working set the ROADMAP's north star implies.
func TestCacheCapacityBoundUnderChurn(t *testing.T) {
	tr := testTree(t)
	c, err := NewSized(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "",
		CacheConfig{Size: 1 << 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cap := c.CacheCap()
	if cap < 1<<10 {
		t.Fatalf("CacheCap = %d, want >= %d", cap, 1<<10)
	}
	const flows = 1 << 20 // 1M distinct flows through a 1k-entry cache
	for f := 0; f < flows; f++ {
		lbl, _ := c.Lookup(pkt(packet.AppID(f>>16), packet.FlowID(f&0xffff)))
		if lbl == nil || lbl.Leaf.Name != "a" {
			t.Fatalf("flow %d misclassified: %v", f, lbl)
		}
		if f%(1<<16) == 0 {
			if n := c.CacheLen(); n > cap {
				t.Fatalf("cache size %d exceeds capacity %d after %d flows", n, cap, f)
			}
		}
	}
	st := c.Stats()
	if st.Size > cap {
		t.Fatalf("final cache size %d exceeds capacity %d", st.Size, cap)
	}
	if st.Evictions == 0 {
		t.Fatal("1M-flow churn through a 1k cache evicted nothing")
	}
	if st.Hits+st.Misses != flows {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, flows)
	}
}

// The cache is deterministic: identical lookup sequences produce
// identical statistics — the property that keeps DES runs reproducible.
func TestCacheEvictionDeterminism(t *testing.T) {
	run := func() CacheStats {
		tr := testTree(t)
		c, err := NewSized(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "",
			CacheConfig{Size: 256, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 100_000; i++ {
			c.Lookup(pkt(packet.AppID(rng.Intn(4)), packet.FlowID(rng.Intn(4096))))
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Evictions == 0 {
		t.Fatal("run evicted nothing — the determinism check is vacuous")
	}
}

// ClassifyBatchEv must agree with per-packet Lookup on labels and
// hit/miss accounting, on both sides of the sort-algorithm threshold.
func TestClassifyBatchLookupEquivalence(t *testing.T) {
	for _, n := range []int{1, 3, batchSortThreshold, batchSortThreshold + 1, 4 * batchSortThreshold} {
		// Adversarial mix: all-distinct flows plus duplicate runs.
		rng := rand.New(rand.NewSource(int64(n)))
		ps := make([]*packet.Packet, n)
		for i := range ps {
			ps[i] = pkt(packet.AppID(rng.Intn(3)), packet.FlowID(rng.Intn(n)))
		}

		tr := testTree(t)
		rules := []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}
		cb, _ := New(tr, rules, "")
		batchLbls := makeLabels(n)
		hits := make([]bool, n)
		evs := make([]bool, n)
		cb.ClassifyBatchEv(ps, batchLbls, hits, evs)

		cl, _ := New(tr, rules, "")
		for i, p := range ps {
			lbl, hit := cl.Lookup(p)
			if lbl != batchLbls[i] {
				t.Fatalf("n=%d pkt %d: batch label %v != lookup label %v", n, i, batchLbls[i], lbl)
			}
			if hit != hits[i] {
				t.Fatalf("n=%d pkt %d: batch hit=%v, lookup hit=%v", n, i, hits[i], hit)
			}
		}
		bs, ls := cb.Stats(), cl.Stats()
		if bs.Hits != ls.Hits || bs.Misses != ls.Misses {
			t.Fatalf("n=%d: batch stats %d/%d != lookup stats %d/%d",
				n, bs.Hits, bs.Misses, ls.Hits, ls.Misses)
		}
	}
}

// Flush resets every statistic together; Invalidate keeps the negative
// count and size consistent (the satellite-3 consistency sweep).
func TestCacheStatsConsistency(t *testing.T) {
	tr := testTree(t)
	// No default class: unmatched packets cache negative entries.
	c, _ := New(tr, []Rule{{App: 1, Flow: AnyFlow, Class: "a"}}, "")
	c.Lookup(pkt(1, 1)) // positive
	c.Lookup(pkt(9, 9)) // negative (matches nothing)
	st := c.Stats()
	if st.Size != 2 || st.Negative != 1 {
		t.Fatalf("size=%d negative=%d, want 2/1", st.Size, st.Negative)
	}
	c.Invalidate(9, 9)
	st = c.Stats()
	if st.Size != 1 || st.Negative != 0 || st.Invalidations != 1 {
		t.Fatalf("after invalidating negative entry: %+v", st)
	}
	// Force a parse error: a tuple with a protocol the header builder
	// cannot synthesize.
	var alloc packet.Alloc
	bad := alloc.New(77, 1, 1500, 0)
	bad.Tuple.Proto = 0xfe
	c.Lookup(bad)
	if pe := c.Stats().ParseErrors; pe == 0 {
		t.Fatal("unsynthesizable tuple did not count a parse error")
	}
	c.Flush()
	st = c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 ||
		st.ParseErrors != 0 || st.Invalidations != 0 || st.Size != 0 || st.Negative != 0 {
		t.Fatalf("flush left counters inconsistent: %+v", st)
	}
}

// Torture: parallel lookups, batches, invalidations, and flushes with a
// flow population far past capacity. Run under -race this exercises the
// lock-free hit path against concurrent insert/evict/invalidate/flush.
func TestCacheConcurrentTorture(t *testing.T) {
	tr := testTree(t)
	c, err := NewSized(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "",
		CacheConfig{Size: 512, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 20_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			batch := make([]*packet.Packet, 64)
			lbls := makeLabels(64)
			hits := make([]bool, 64)
			evs := make([]bool, 64)
			for i := 0; i < perWorker; i++ {
				f := packet.FlowID(rng.Intn(8192))
				a := packet.AppID(rng.Intn(4))
				switch i % 8 {
				case 6:
					c.Invalidate(a, f)
				case 7:
					if i%512 == 511 {
						c.Flush()
					} else {
						for j := range batch {
							batch[j] = pkt(a, packet.FlowID(rng.Intn(8192)))
						}
						c.ClassifyBatchEv(batch, lbls, hits, evs)
					}
				default:
					lbl, _, _ := c.LookupEv(pkt(a, f))
					if lbl == nil || lbl.Leaf.Name != "a" {
						panic("misclassified under concurrency")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > c.CacheCap() || st.Size < 0 {
		t.Fatalf("post-torture size %d out of [0, %d]", st.Size, c.CacheCap())
	}
	if st.Negative != 0 {
		t.Fatalf("negative count %d, want 0 (every packet matches)", st.Negative)
	}
}

// The hit path must not allocate: it is the NIC worker's per-packet fast
// path (acceptance: 0 allocs/op).
func TestClassifyHitNoAllocs(t *testing.T) {
	tr := testTree(t)
	c, _ := New(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "")
	p := pkt(1, 1)
	c.Lookup(p) // warm the entry
	if avg := testing.AllocsPerRun(1000, func() {
		if _, hit := c.Lookup(p); !hit {
			t.Fatal("warm lookup missed")
		}
	}); avg != 0 {
		t.Fatalf("hit path allocates %.1f per op, want 0", avg)
	}
}

// The hit path is lock-free, so aggregate parallel throughput must not
// collapse against single-threaded throughput (a mutex on the hit path
// would make GOMAXPROCS workers slower in aggregate than one). The bar
// is deliberately conservative — ≥0.9× serial — so the guard catches a
// serializing regression without flaking on noisy CI runners.
func TestClassifyHitParallelScales(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 procs to measure scaling")
	}
	tr := testTree(t)
	c, _ := New(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "")
	const hot = 1024
	for f := 0; f < hot; f++ {
		c.Lookup(pkt(0, packet.FlowID(f)))
	}
	serial := testing.Benchmark(func(b *testing.B) {
		p := pkt(0, 0)
		for i := 0; i < b.N; i++ {
			p.Flow = packet.FlowID(i % hot)
			c.Lookup(p)
		}
	})
	parallel := testing.Benchmark(func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			p := pkt(0, 0)
			f := 0
			for pb.Next() {
				f++
				p.Flow = packet.FlowID(f % hot)
				c.Lookup(p)
			}
		})
	})
	serialOps := float64(serial.N) / serial.T.Seconds()
	parOps := float64(parallel.N) / parallel.T.Seconds()
	if parOps < 0.9*serialOps {
		t.Fatalf("parallel hit throughput %.0f ops/s collapsed below serial %.0f ops/s — hit path serializing?",
			parOps, serialOps)
	}
}

// BenchmarkClassifyHit measures the lock-free hit path; with RunParallel
// it should scale with GOMAXPROCS (shards spread the counters).
func BenchmarkClassifyHit(b *testing.B) {
	tr := testTree(b)
	c, err := New(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "")
	if err != nil {
		b.Fatal(err)
	}
	// Warm a working set of hot flows.
	const hot = 1024
	for f := 0; f < hot; f++ {
		c.Lookup(pkt(0, packet.FlowID(f)))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := pkt(0, 0)
		f := uint32(0)
		for pb.Next() {
			f++
			p.Flow = packet.FlowID(f % hot)
			if _, hit := c.Lookup(p); !hit {
				b.Fatal("benchmark working set missed")
			}
		}
	})
}

func BenchmarkClassifyMissEvict(b *testing.B) {
	tr := testTree(b)
	c, err := NewSized(tr, []Rule{{App: AnyApp, Flow: AnyFlow, Class: "a"}}, "",
		CacheConfig{Size: 1 << 10, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	p := pkt(0, 0)
	for i := 0; i < b.N; i++ {
		p.Flow = packet.FlowID(i) // always fresh: miss + (warm) evict
		c.Lookup(p)
	}
}

// ClassifyBatchSteerEv must agree with ClassifyBatchEv on labels and
// hit accounting while steering every classified packet to its label's
// shard (and unclassified packets to -1), on both sides of the
// sort-algorithm threshold.
func TestClassifyBatchSteerEquivalence(t *testing.T) {
	ownersFor := func(tr *tree.Tree) []int32 {
		owners := make([]int32, tr.Len())
		for _, c := range tr.Classes() {
			if !c.Leaf() {
				continue
			}
			switch c.Name {
			case "a":
				owners[c.ID] = 0
			case "b":
				owners[c.ID] = 1
			default:
				owners[c.ID] = 2
			}
		}
		return owners
	}
	for _, n := range []int{1, 3, batchSortThreshold, 4 * batchSortThreshold} {
		rng := rand.New(rand.NewSource(int64(n)))
		ps := make([]*packet.Packet, n)
		for i := range ps {
			// Apps 0/1 match rules; app 2 matches nothing (nil label).
			ps[i] = pkt(packet.AppID(rng.Intn(3)), packet.FlowID(rng.Intn(n)))
		}
		tr := testTree(t)
		rules := []Rule{{App: 0, Flow: AnyFlow, Class: "a"}, {App: 1, Flow: AnyFlow, Class: "b"}}

		cs, _ := New(tr, rules, "")
		sLbls, sHits, sEvs := makeLabels(n), make([]bool, n), make([]bool, n)
		shards := make([]int32, n)
		cs.ClassifyBatchSteerEv(ps, sLbls, sHits, sEvs, ownersFor(tr), shards)

		cb, _ := New(tr, rules, "")
		bLbls, bHits, bEvs := makeLabels(n), make([]bool, n), make([]bool, n)
		cb.ClassifyBatchEv(ps, bLbls, bHits, bEvs)

		for i := range ps {
			if sLbls[i] != bLbls[i] || sHits[i] != bHits[i] || sEvs[i] != bEvs[i] {
				t.Fatalf("n=%d pkt %d: steer (%v,%v,%v) != batch (%v,%v,%v)",
					n, i, sLbls[i], sHits[i], sEvs[i], bLbls[i], bHits[i], bEvs[i])
			}
			want := int32(-1)
			if sLbls[i] != nil {
				want = ownersFor(tr)[sLbls[i].Leaf.ID]
			}
			if shards[i] != want {
				t.Fatalf("n=%d pkt %d: shard %d, want %d", n, i, shards[i], want)
			}
		}
		ss, bs := cs.Stats(), cb.Stats()
		if ss.Hits != bs.Hits || ss.Misses != bs.Misses {
			t.Fatalf("n=%d: steer stats %d/%d != batch stats %d/%d", n, ss.Hits, ss.Misses, bs.Hits, bs.Misses)
		}
	}
}

// A reused evicted buffer must come back fully defined: flow-group
// followers behind a group head must overwrite their eviction slots,
// not skip them — the NIC reuses one evs buffer across bursts, and a
// stale true from an earlier burst would charge a phantom eviction.
func TestClassifyBatchEvFollowerClearsStaleEviction(t *testing.T) {
	tr := testTree(t)
	rules := []Rule{{App: 0, Flow: AnyFlow, Class: "a"}}
	for _, steer := range []bool{false, true} {
		c, err := New(tr, rules, "")
		if err != nil {
			t.Fatal(err)
		}
		// Head + follower of the same flow; both slots pre-soiled as if
		// a previous burst evicted at these indices.
		ps := []*packet.Packet{pkt(0, 7), pkt(0, 7)}
		lbls, hits := makeLabels(2), make([]bool, 2)
		evs := []bool{true, true}
		if steer {
			c.ClassifyBatchSteerEv(ps, lbls, hits, evs, make([]int32, tr.Len()), make([]int32, 2))
		} else {
			c.ClassifyBatchEv(ps, lbls, hits, evs)
		}
		if evs[0] || evs[1] {
			t.Fatalf("steer=%v: stale eviction flags survived: %v", steer, evs)
		}
	}
}
