package classifier

import (
	"sync"
	"sync/atomic"

	"flowvalve/internal/fvassert"
	"flowvalve/internal/headers"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
)

// This file implements the Exact Match Flow Cache as a sharded,
// concurrent, capacity-bounded open-addressed table — the software
// analogue of the NP's dedicated lookup engines (the 10× classification
// speedup the paper credits, §III-B). NIC worker cores classify in
// parallel: the hit path is lock-free (one hash, a bounded linear probe
// over atomic entry pointers, one reference-bit store), while the miss
// path — parser plus p4lite table walk plus insertion — serializes per
// shard, never globally. Capacity is fixed at construction; a full probe
// window evicts with CLOCK (second-chance), so a million-flow working
// set churns through the cache instead of growing it without bound.

// CacheConfig sizes the exact-match flow cache. The zero value takes the
// defaults (65536 entries across 8 shards).
type CacheConfig struct {
	// Size is the total entry capacity across all shards. It is rounded
	// up so each shard's table is a power of two of at least one probe
	// window; Capacity in CacheStats reports the effective value.
	Size int
	// Shards is the number of independent shards (rounded up to a power
	// of two). More shards admit more concurrent miss-path walks and
	// spread hit-counter contention.
	Shards int
}

const (
	defaultCacheSize   = 1 << 16
	defaultCacheShards = 8
	// cacheProbeWindow bounds the linear probe of a lookup and doubles
	// as the CLOCK eviction window of an insert: a key lives within
	// cacheProbeWindow slots of its home position or not at all.
	cacheProbeWindow = 16
	// shardPad keeps each shard's hot hit counter on its own cache line
	// so parallel hit paths do not false-share.
	shardPad = 64
)

func (c CacheConfig) defaults() CacheConfig {
	if c.Size <= 0 {
		c.Size = defaultCacheSize
	}
	if c.Shards <= 0 {
		c.Shards = defaultCacheShards
	}
	c.Shards = int(nextPow2(uint64(c.Shards)))
	return c
}

// nextPow2 rounds n up to a power of two (min 1).
func nextPow2(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// CacheStats is a consistent snapshot of the flow-cache counters. Hits,
// Misses, Evictions, ParseErrors, and Invalidations are cumulative since
// creation (or the last Flush — Flush resets all of them together, never
// a subset); Size, Negative, and Capacity describe the current table.
type CacheStats struct {
	// Hits and Misses count lookup outcomes.
	Hits, Misses uint64
	// Evictions counts entries displaced by CLOCK to make room.
	Evictions uint64
	// ParseErrors counts frames the parser rejected on the miss path.
	ParseErrors uint64
	// Invalidations counts entries removed by Invalidate.
	Invalidations uint64
	// Size is the number of live entries; Negative is how many of them
	// are cached nil-label (matched-nothing) results.
	Size, Negative int
	// Capacity is the effective entry bound; Shards the shard count.
	Capacity, Shards int
}

// cacheEntry is one immutable cache record behind an atomic pointer; the
// only mutable field is the CLOCK reference bit. A nil lbl is a cached
// negative result (the NP caches the drop/default action the same way as
// a positive match).
type cacheEntry struct {
	key uint64
	lbl *tree.Label
	ref atomic.Uint32
}

// tombstone marks an invalidated slot. Probes skip it without
// terminating the chain (emptying a slot mid-chain would orphan every
// key that probed past it); inserts reuse it.
var tombstone = &cacheEntry{}

// cacheShard is one lock-striped slice of the table. The hit path
// touches only slots and hits; everything else happens under mu.
type cacheShard struct {
	hits atomic.Uint64
	_    [shardPad - 8]byte

	misses atomic.Uint64
	evict  atomic.Uint64
	inval  atomic.Uint64
	used   atomic.Int64
	neg    atomic.Int64

	mu    sync.Mutex
	slots []atomic.Pointer[cacheEntry]
	hand  uint32
	// scratch is the miss path's header-synthesis buffer; per shard so
	// concurrent misses in different shards never share it.
	scratch [headers.MaxStackLen]byte
}

// flowCache is the sharded table.
type flowCache struct {
	shards    []cacheShard
	shardMask uint64
	slotMask  uint64 // per-shard slot count − 1
	capacity  int
}

func newFlowCache(cfg CacheConfig) *flowCache {
	cfg = cfg.defaults()
	perShard := nextPow2(uint64((cfg.Size + cfg.Shards - 1) / cfg.Shards))
	if perShard < cacheProbeWindow {
		perShard = cacheProbeWindow
	}
	if fvassert.Enabled &&
		(cfg.Shards <= 0 || cfg.Shards&(cfg.Shards-1) != 0 || perShard&(perShard-1) != 0) {
		fvassert.Failf("classifier: cache geometry must be power-of-two (shards %d, slots/shard %d): masking would alias",
			cfg.Shards, perShard)
	}
	fc := &flowCache{
		shards:    make([]cacheShard, cfg.Shards),
		shardMask: uint64(cfg.Shards) - 1,
		slotMask:  perShard - 1,
		capacity:  cfg.Shards * int(perShard),
	}
	for i := range fc.shards {
		fc.shards[i].slots = make([]atomic.Pointer[cacheEntry], perShard)
	}
	return fc
}

// packKey packs (app, flow) into a nonzero 64-bit key. Bit 48 marks the
// key as present so app=0/flow=0 never collides with an empty slot.
func packKey(app packet.AppID, flow packet.FlowID) uint64 {
	return 1<<48 | uint64(app)<<32 | uint64(flow)
}

// mix64 is the 64-bit finalizer of MurmurHash3: every output bit depends
// on every input bit, so shard selection (low bits) and home slot (high
// bits) are independent.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (fc *flowCache) shardFor(h uint64) *cacheShard {
	return &fc.shards[h&fc.shardMask]
}

// get is the lock-free hit path: probe at most cacheProbeWindow slots
// from the key's home position, stopping early at the first empty slot
// (tombstones keep the chain walkable and are skipped). A hit refreshes
// the entry's CLOCK bit. Returns the shard either way so the caller's
// miss path can lock it without rehashing.
//
//fv:hotpath
func (fc *flowCache) get(key uint64) (sh *cacheShard, lbl *tree.Label, ok bool) {
	h := mix64(key)
	sh = fc.shardFor(h)
	home := h >> 32
	for i := uint64(0); i < cacheProbeWindow; i++ {
		e := sh.slots[(home+i)&fc.slotMask].Load()
		if e == nil {
			break
		}
		if e.key == key {
			if e.ref.Load() == 0 {
				e.ref.Store(1)
			}
			sh.hits.Add(1)
			return sh, e.lbl, true
		}
	}
	sh.misses.Add(1)
	return sh, nil, false
}

// probeLocked re-checks for key under the shard lock (a concurrent miss
// for the same flow may have inserted while this caller classified).
func (fc *flowCache) probeLocked(sh *cacheShard, key uint64) (*cacheEntry, bool) {
	home := mix64(key) >> 32
	for i := uint64(0); i < cacheProbeWindow; i++ {
		e := sh.slots[(home+i)&fc.slotMask].Load()
		if e == nil {
			return nil, false
		}
		if e.key == key {
			return e, true
		}
	}
	return nil, false
}

// insertLocked publishes a resolved label under the shard lock,
// reporting whether a live entry was evicted to make room. The new entry
// lands in the first free (empty or tombstoned) slot of the key's probe
// window; a full window evicts by CLOCK second-chance — one sweep
// clearing set reference bits, the victim being the first slot found
// clear, starting from the shard's persistent hand so repeated eviction
// rotates through the window.
func (fc *flowCache) insertLocked(sh *cacheShard, key uint64, lbl *tree.Label) (evicted bool) {
	home := mix64(key) >> 32
	var free *atomic.Pointer[cacheEntry]
	for i := uint64(0); i < cacheProbeWindow; i++ {
		s := &sh.slots[(home+i)&fc.slotMask]
		e := s.Load()
		if e == nil {
			if free == nil {
				free = s
			}
			break
		}
		if e == tombstone {
			if free == nil {
				free = s
			}
			continue
		}
		if e.key == key {
			// Refresh in place (rule update or lost classify race).
			fc.countLabelSwap(sh, e.lbl, lbl)
			s.Store(newEntry(key, lbl))
			return false
		}
	}
	if free != nil {
		free.Store(newEntry(key, lbl))
		sh.used.Add(1)
		if lbl == nil {
			sh.neg.Add(1)
		}
		return false
	}

	// CLOCK: the window is full of live entries. Two passes bound the
	// scan — after the first pass every reference bit this sweep saw is
	// clear, so the second pass must pick a victim.
	// (Concurrent hits can re-set bits behind the sweep; the two-pass
	// bound then falls back to the hand position itself.)
	victim := uint64(sh.hand) % cacheProbeWindow
	for i := uint64(0); i < 2*cacheProbeWindow; i++ {
		j := (uint64(sh.hand) + i) % cacheProbeWindow
		e := sh.slots[(home+j)&fc.slotMask].Load()
		if e.ref.Load() != 0 {
			e.ref.Store(0)
			continue
		}
		victim = j
		break
	}
	sh.hand = uint32((victim + 1) % cacheProbeWindow)
	s := &sh.slots[(home+victim)&fc.slotMask]
	fc.countLabelSwap(sh, s.Load().lbl, lbl)
	s.Store(newEntry(key, lbl))
	sh.evict.Add(1)
	return true
}

func newEntry(key uint64, lbl *tree.Label) *cacheEntry {
	e := &cacheEntry{key: key, lbl: lbl}
	e.ref.Store(1)
	return e
}

// countLabelSwap maintains the negative-entry count across an in-place
// replacement.
func (fc *flowCache) countLabelSwap(sh *cacheShard, old, new *tree.Label) {
	if old == nil {
		sh.neg.Add(-1)
	}
	if new == nil {
		sh.neg.Add(1)
	}
}

// invalidate removes one key, reporting whether it was present. The slot
// becomes a tombstone, never empty, so longer probe chains through it
// stay intact.
func (fc *flowCache) invalidate(key uint64) bool {
	h := mix64(key)
	sh := fc.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	home := h >> 32
	for i := uint64(0); i < cacheProbeWindow; i++ {
		s := &sh.slots[(home+i)&fc.slotMask]
		e := s.Load()
		if e == nil {
			return false
		}
		if e == tombstone {
			continue
		}
		if e.key == key {
			if e.lbl == nil {
				sh.neg.Add(-1)
			}
			s.Store(tombstone)
			sh.used.Add(-1)
			sh.inval.Add(1)
			return true
		}
	}
	return false
}

// flush empties every shard and resets every counter — all of them
// together, so post-flush statistics are internally consistent.
func (fc *flowCache) flush() {
	for i := range fc.shards {
		sh := &fc.shards[i]
		sh.mu.Lock()
		for j := range sh.slots {
			if sh.slots[j].Load() != nil {
				sh.slots[j].Store(nil)
			}
		}
		sh.hand = 0
		sh.hits.Store(0)
		sh.misses.Store(0)
		sh.evict.Store(0)
		sh.inval.Store(0)
		sh.used.Store(0)
		sh.neg.Store(0)
		sh.mu.Unlock()
	}
}

// stats aggregates the shard counters.
func (fc *flowCache) stats() CacheStats {
	st := CacheStats{Capacity: fc.capacity, Shards: len(fc.shards)}
	for i := range fc.shards {
		sh := &fc.shards[i]
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Evictions += sh.evict.Load()
		st.Invalidations += sh.inval.Load()
		st.Size += int(sh.used.Load())
		st.Negative += int(sh.neg.Load())
	}
	return st
}
