// Package classifier implements FlowValve's labeling function: matching
// egress packets against user filter rules to attach QoS labels (the
// hierarchy class label and the borrowing class label, §IV-B).
//
// The backend mirrors the paper's P4 pipeline: filter rules compile into
// a ternary match-action table (internal/p4lite) keyed on packet
// metadata (virtual function, flow) and parsed header fields (the
// five-tuple). In front of the tables sits the Exact Match Flow Cache,
// whose dedicated lookup engines the paper credits with a 10× speedup —
// a hash map keyed by (VF, flow) that short-circuits the parser and the
// table walk on hits. Lookups report hit/miss so the NIC model charges
// the right cycle costs.
package classifier

import (
	"fmt"

	"flowvalve/internal/headers"
	"flowvalve/internal/p4lite"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
)

// AnyApp and AnyFlow are wildcards in rules.
const (
	AnyApp  = -1
	AnyFlow = -1
)

// Rule matches packets to a leaf class, tc-filter style: metadata
// selectors (App = virtual function, Flow = transport flow) plus ternary
// five-tuple selectors. Zero masks mean "any" for the tuple fields;
// Proto 0 means any protocol. Rules are evaluated in order; the first
// match wins.
type Rule struct {
	// App matches the sending application / virtual function, or AnyApp.
	App int
	// Flow matches one transport flow, or AnyFlow.
	Flow int

	// SrcIP/DstIP with their masks select source/destination subnets
	// (mask 0 = any; 0xffffffff = exact host).
	SrcIP     uint32
	SrcIPMask uint32
	DstIP     uint32
	DstIPMask uint32
	// SrcPort/DstPort with their masks select L4 ports (u32-style
	// "match ip dport 5201 0xffff").
	SrcPort     uint32
	SrcPortMask uint32
	DstPort     uint32
	DstPortMask uint32
	// Proto selects the transport protocol (6 = tcp, 17 = udp, 0 = any).
	Proto int

	// Class is the target leaf class name.
	Class string
}

// entry compiles the rule into a match-action table row.
func (r Rule) entry() p4lite.Entry {
	var ms []p4lite.Match
	if r.App != AnyApp {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldVF, Value: uint64(uint32(r.App)), Mask: ^uint64(0)})
	}
	if r.Flow != AnyFlow {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldFlowID, Value: uint64(uint32(r.Flow)), Mask: ^uint64(0)})
	}
	if r.SrcIPMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldSrcIP, Value: uint64(r.SrcIP), Mask: uint64(r.SrcIPMask)})
	}
	if r.DstIPMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldDstIP, Value: uint64(r.DstIP), Mask: uint64(r.DstIPMask)})
	}
	if r.SrcPortMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldSrcPort, Value: uint64(r.SrcPort), Mask: uint64(r.SrcPortMask)})
	}
	if r.DstPortMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldDstPort, Value: uint64(r.DstPort), Mask: uint64(r.DstPortMask)})
	}
	if r.Proto != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldProto, Value: uint64(uint8(r.Proto)), Mask: 0xff})
	}
	return p4lite.Entry{
		Matches: ms,
		Action:  p4lite.Action{Kind: p4lite.ActSetClass, Class: r.Class},
	}
}

type flowKey struct {
	app  packet.AppID
	flow packet.FlowID
}

// Classifier matches packets against the compiled filter pipeline,
// caching resolved labels in an exact-match flow cache.
//
// Classifier is not safe for concurrent use; the DES is single-threaded
// and the wall-clock benchmarks classify up-front (Pin in the facade).
type Classifier struct {
	tree  *tree.Tree
	pipe  *p4lite.Pipeline
	def   *tree.Label // default class label, may be nil
	cache map[flowKey]*tree.Label

	scratch [headers.MaxStackLen]byte
	// batchIdx orders ClassifyBatch lookups by flow key (scratch).
	batchIdx []int32

	// Hits and Misses count cache outcomes since creation.
	Hits   uint64
	Misses uint64
	// ParseErrors counts frames the parser rejected on the miss path.
	ParseErrors uint64
}

// New builds a classifier for t. defaultClass names the leaf that absorbs
// unmatched traffic (the tc "default" class); empty means unmatched
// packets are reported as unclassified.
func New(t *tree.Tree, rules []Rule, defaultClass string) (*Classifier, error) {
	tbl := p4lite.NewTable("filters")
	for _, r := range rules {
		lbl, ok := t.LabelByName(r.Class)
		if !ok || lbl == nil {
			return nil, fmt.Errorf("classifier: rule targets unknown or non-leaf class %q", r.Class)
		}
		if err := tbl.Add(r.entry()); err != nil {
			return nil, err
		}
	}
	c := &Classifier{
		tree:  t,
		pipe:  p4lite.NewPipeline(tbl),
		cache: make(map[flowKey]*tree.Label, 256),
	}
	if defaultClass != "" {
		lbl, ok := t.LabelByName(defaultClass)
		if !ok || lbl == nil {
			return nil, fmt.Errorf("classifier: default class %q unknown or not a leaf", defaultClass)
		}
		c.def = lbl
	}
	return c, nil
}

// Lookup returns the QoS label for p and whether it was served from the
// flow cache. On a miss the full pipeline runs: header bytes are
// synthesized from the packet's tuple, parsed back, and walked through
// the match-action tables. A nil label means the packet matched nothing
// and there is no default class.
func (c *Classifier) Lookup(p *packet.Packet) (lbl *tree.Label, hit bool) {
	key := flowKey{app: p.App, flow: p.Flow}
	if lbl, ok := c.cache[key]; ok {
		c.Hits++
		return lbl, true
	}
	c.Misses++
	lbl = c.classify(p)
	// Negative results are cached too: the NP caches the drop/default
	// action the same way as a positive match.
	c.cache[key] = lbl
	return lbl, false
}

// ClassifyBatch resolves the labels of a burst of packets, writing
// labels[i] and hits[i] for ps[i] (both must be at least len(ps) long).
//
// The batch amortizes the exact-match flow cache: lookups are grouped by
// flow key (a stable insertion sort over an index scratch — bursts are
// small, and Rx bursts are usually run-heavy), so every packet of a
// group behind its head resolves by pointer comparison instead of a map
// probe. The stable order means the group head is the burst's
// first-arriving packet, so hit/miss accounting — and therefore the NIC
// model's cycle charges — is identical to calling Lookup per packet in
// arrival order.
func (c *Classifier) ClassifyBatch(ps []*packet.Packet, labels []*tree.Label, hits []bool) {
	n := len(ps)
	labels, hits = labels[:n], hits[:n]
	if cap(c.batchIdx) < n {
		c.batchIdx = make([]int32, 0, n)
	}
	idx := c.batchIdx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	// Stable insertion sort by (app, flow); equal keys keep input order.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && keyLess(ps[idx[j]], ps[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var (
		lastKey flowKey
		lastLbl *tree.Label
		have    bool
	)
	for _, i := range idx {
		k := flowKey{app: ps[i].App, flow: ps[i].Flow}
		if have && k == lastKey {
			// Same flow as the group head: the cache would hit; skip
			// the probe and reuse the resolved label.
			c.Hits++
			labels[i], hits[i] = lastLbl, true
			continue
		}
		labels[i], hits[i] = c.Lookup(ps[i])
		lastKey, lastLbl, have = k, labels[i], true
	}
	c.batchIdx = idx
}

// keyLess orders packets by flow key for batch grouping.
func keyLess(a, b *packet.Packet) bool {
	if a.App != b.App {
		return a.App < b.App
	}
	return a.Flow < b.Flow
}

// classify runs the parser + match-action pipeline for one packet.
func (c *Classifier) classify(p *packet.Packet) *tree.Label {
	key := p4lite.Key{VF: uint32(p.App), FlowID: uint32(p.Flow)}
	if p.Tuple != (headers.FiveTuple{}) {
		// Honest parse: build the wire header stack and parse it
		// back, exactly as the P4 parser would.
		n, err := headers.Build(c.scratch[:], p.Tuple, p.Size-headers.EthLen)
		if err != nil {
			c.ParseErrors++
			return c.def
		}
		parsed, err := p4lite.ParseFrame(c.scratch[:n], uint32(p.App), uint32(p.Flow))
		if err != nil {
			c.ParseErrors++
			return c.def
		}
		key = parsed
	}
	res := c.pipe.Classify(key)
	if res.Drop || res.Class == "" {
		return c.def
	}
	lbl, ok := c.tree.LabelByName(res.Class)
	if !ok {
		return c.def
	}
	return lbl
}

// Pipeline exposes the compiled match-action pipeline (for table dumps).
func (c *Classifier) Pipeline() *p4lite.Pipeline { return c.pipe }

// Invalidate drops the cached entry for one flow (rule updates, flow
// teardown). Unknown keys are ignored.
func (c *Classifier) Invalidate(app packet.AppID, flow packet.FlowID) {
	delete(c.cache, flowKey{app: app, flow: flow})
}

// Flush empties the flow cache (bulk rule replacement).
func (c *Classifier) Flush() {
	c.cache = make(map[flowKey]*tree.Label, 256)
	c.Hits, c.Misses = 0, 0
}

// CacheLen returns the number of cached flow entries.
func (c *Classifier) CacheLen() int { return len(c.cache) }
