// Package classifier implements FlowValve's labeling function: matching
// egress packets against user filter rules to attach QoS labels (the
// hierarchy class label and the borrowing class label, §IV-B).
//
// The backend mirrors the paper's P4 pipeline: filter rules compile into
// a ternary match-action table (internal/p4lite) keyed on packet
// metadata (virtual function, flow) and parsed header fields (the
// five-tuple). In front of the tables sits the Exact Match Flow Cache,
// whose dedicated lookup engines the paper credits with a 10× speedup —
// a sharded, capacity-bounded exact-match table keyed by (VF, flow) that
// short-circuits the parser and the table walk on hits (see cache.go).
// Lookups report hit/miss/eviction so the NIC model charges the right
// cycle costs.
package classifier

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flowvalve/internal/headers"
	"flowvalve/internal/p4lite"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
)

// AnyApp and AnyFlow are wildcards in rules.
const (
	AnyApp  = -1
	AnyFlow = -1
)

// Rule matches packets to a leaf class, tc-filter style: metadata
// selectors (App = virtual function, Flow = transport flow) plus ternary
// five-tuple selectors. Zero masks mean "any" for the tuple fields;
// Proto 0 means any protocol. Rules are evaluated in order; the first
// match wins.
type Rule struct {
	// App matches the sending application / virtual function, or AnyApp.
	App int
	// Flow matches one transport flow, or AnyFlow.
	Flow int

	// SrcIP/DstIP with their masks select source/destination subnets
	// (mask 0 = any; 0xffffffff = exact host).
	SrcIP     uint32
	SrcIPMask uint32
	DstIP     uint32
	DstIPMask uint32
	// SrcPort/DstPort with their masks select L4 ports (u32-style
	// "match ip dport 5201 0xffff").
	SrcPort     uint32
	SrcPortMask uint32
	DstPort     uint32
	DstPortMask uint32
	// Proto selects the transport protocol (6 = tcp, 17 = udp, 0 = any).
	Proto int

	// Class is the target leaf class name.
	Class string
}

// entry compiles the rule into a match-action table row.
func (r Rule) entry() p4lite.Entry {
	var ms []p4lite.Match
	if r.App != AnyApp {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldVF, Value: uint64(uint32(r.App)), Mask: ^uint64(0)})
	}
	if r.Flow != AnyFlow {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldFlowID, Value: uint64(uint32(r.Flow)), Mask: ^uint64(0)})
	}
	if r.SrcIPMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldSrcIP, Value: uint64(r.SrcIP), Mask: uint64(r.SrcIPMask)})
	}
	if r.DstIPMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldDstIP, Value: uint64(r.DstIP), Mask: uint64(r.DstIPMask)})
	}
	if r.SrcPortMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldSrcPort, Value: uint64(r.SrcPort), Mask: uint64(r.SrcPortMask)})
	}
	if r.DstPortMask != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldDstPort, Value: uint64(r.DstPort), Mask: uint64(r.DstPortMask)})
	}
	if r.Proto != 0 {
		ms = append(ms, p4lite.Match{Field: p4lite.FieldProto, Value: uint64(uint8(r.Proto)), Mask: 0xff})
	}
	return p4lite.Entry{
		Matches: ms,
		Action:  p4lite.Action{Kind: p4lite.ActSetClass, Class: r.Class},
	}
}

// Classifier matches packets against the compiled filter pipeline,
// caching resolved labels in the sharded exact-match flow cache.
//
// Classifier is safe for concurrent use: hits are lock-free, misses
// serialize per cache shard, and ClassifyBatch draws its ordering
// scratch from a pool.
type Classifier struct {
	tree  *tree.Tree
	pipe  *p4lite.Pipeline
	def   *tree.Label // default class label, may be nil
	cache *flowCache

	// parseErrs counts frames the parser rejected on the miss path.
	parseErrs atomic.Uint64

	// batchPool recycles ClassifyBatch index scratch so concurrent
	// batches stay allocation-free without sharing state.
	batchPool sync.Pool
}

// batchScratch orders one ClassifyBatch's lookups by flow key.
//
//fv:owner
type batchScratch struct {
	idx []int32
}

// New builds a classifier for t with the default flow-cache geometry.
// defaultClass names the leaf that absorbs unmatched traffic (the tc
// "default" class); empty means unmatched packets are reported as
// unclassified.
func New(t *tree.Tree, rules []Rule, defaultClass string) (*Classifier, error) {
	return NewSized(t, rules, defaultClass, CacheConfig{})
}

// NewSized is New with an explicit flow-cache capacity and shard count.
func NewSized(t *tree.Tree, rules []Rule, defaultClass string, cache CacheConfig) (*Classifier, error) {
	tbl := p4lite.NewTable("filters")
	for _, r := range rules {
		lbl, ok := t.LabelByName(r.Class)
		if !ok || lbl == nil {
			return nil, fmt.Errorf("classifier: rule targets unknown or non-leaf class %q", r.Class)
		}
		if err := tbl.Add(r.entry()); err != nil {
			return nil, err
		}
	}
	c := &Classifier{
		tree:  t,
		pipe:  p4lite.NewPipeline(tbl),
		cache: newFlowCache(cache),
	}
	c.batchPool.New = func() any { return new(batchScratch) }
	if defaultClass != "" {
		lbl, ok := t.LabelByName(defaultClass)
		if !ok || lbl == nil {
			return nil, fmt.Errorf("classifier: default class %q unknown or not a leaf", defaultClass)
		}
		c.def = lbl
	}
	return c, nil
}

// Lookup returns the QoS label for p and whether it was served from the
// flow cache. On a miss the full pipeline runs: header bytes are
// synthesized from the packet's tuple, parsed back, and walked through
// the match-action tables. A nil label means the packet matched nothing
// and there is no default class (negative results are cached too: the
// NP caches the drop/default action the same way as a positive match).
func (c *Classifier) Lookup(p *packet.Packet) (lbl *tree.Label, hit bool) {
	lbl, hit, _ = c.LookupEv(p)
	return lbl, hit
}

// LookupEv is Lookup plus whether resolving the miss evicted a live
// cache entry — the outcome the NIC model charges CLOCK-writeback
// cycles for.
//
//fv:hotpath
func (c *Classifier) LookupEv(p *packet.Packet) (lbl *tree.Label, hit, evicted bool) {
	key := packKey(p.App, p.Flow)
	sh, lbl, ok := c.cache.get(key)
	if ok {
		return lbl, true, false
	}
	// Miss path: parser + table walk + insert, serialized per shard.
	sh.mu.Lock()
	if e, ok := c.cache.probeLocked(sh, key); ok {
		// A concurrent miss for the same flow resolved it first.
		sh.mu.Unlock()
		return e.lbl, false, false
	}
	//fv:coldpath flow-cache miss: parser + table walk run once per flow, amortized by the cache on the packet path
	lbl = c.classify(p, &sh.scratch)
	evicted = c.cache.insertLocked(sh, key, lbl)
	sh.mu.Unlock()
	return lbl, false, evicted
}

// ClassifyBatch resolves the labels of a burst of packets, writing
// labels[i] and hits[i] for ps[i] (both must be at least len(ps) long).
// See ClassifyBatchEv for the eviction-reporting variant.
func (c *Classifier) ClassifyBatch(ps []*packet.Packet, labels []*tree.Label, hits []bool) {
	c.ClassifyBatchEv(ps, labels, hits, nil)
}

// batchSortThreshold is the burst length above which the grouping sort
// switches from insertion sort to sort.SliceStable: Rx bursts are small
// and run-heavy, where insertion sort wins, but an adversarial
// all-distinct-flow burst makes it O(n²).
const batchSortThreshold = 32

// ClassifyBatchEv resolves the labels of a burst of packets, writing
// labels[i], hits[i], and (when non-nil) evicted[i] for ps[i].
//
// The batch amortizes the exact-match flow cache: lookups are grouped by
// flow key (a stable sort over an index scratch), so every packet of a
// group behind its head resolves by pointer comparison instead of a
// table probe. The stable order means the group head is the burst's
// first-arriving packet, so hit/miss accounting — and therefore the NIC
// model's cycle charges — is identical to calling Lookup per packet in
// arrival order.
//
//fv:hotpath
func (c *Classifier) ClassifyBatchEv(ps []*packet.Packet, labels []*tree.Label, hits, evicted []bool) {
	n := len(ps)
	labels, hits = labels[:n], hits[:n]
	if evicted != nil {
		evicted = evicted[:n]
	}
	bs := c.batchPool.Get().(*batchScratch)
	if cap(bs.idx) < n {
		bs.idx = make([]int32, 0, n) //fv:coldpath pooled scratch grows to the largest burst once, then never again
	}
	idx := bs.idx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	if n <= batchSortThreshold {
		// Stable insertion sort by (app, flow); equal keys keep input
		// order.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keyLess(ps[idx[j]], ps[idx[j-1]]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
	} else {
		//fv:coldpath bursts beyond batchSortThreshold exceed any NIC ring budget; stdlib sort is fine there
		sort.SliceStable(idx, func(a, b int) bool { return keyLess(ps[idx[a]], ps[idx[b]]) })
	}
	var (
		lastKey  uint64
		lastLbl  *tree.Label
		lastHash uint64
		have     bool
	)
	for _, i := range idx {
		k := packKey(ps[i].App, ps[i].Flow)
		if have && k == lastKey {
			// Same flow as the group head: the cache would hit; skip
			// the probe and reuse the resolved label. evicted must be
			// written even here — callers reuse the buffer across
			// bursts, and a stale true from an earlier burst would
			// charge a phantom eviction.
			c.cache.shardFor(lastHash).hits.Add(1)
			labels[i], hits[i] = lastLbl, true
			if evicted != nil {
				evicted[i] = false
			}
			continue
		}
		var ev bool
		labels[i], hits[i], ev = c.LookupEv(ps[i])
		if evicted != nil {
			evicted[i] = ev
		}
		lastKey, lastLbl, lastHash, have = k, labels[i], mix64(k), true
	}
	bs.idx = idx
	//fv:owner-ok ownership returns to the pool: this frame holds the only reference and never touches bs after the Put
	c.batchPool.Put(bs)
}

// ClassifyBatchSteerEv is ClassifyBatchEv with scheduler-shard steering
// fused into the classification pass: shards[i] receives the shard that
// owns ps[i]'s label per the owners table (ClassID → shard, see
// dataplane.OwnerTabler), or -1 for unclassified packets. The steer is
// computed once per flow group — every follower behind a group head
// inherits the head's shard along with its label — so a burst dominated
// by few flows pays one table load per flow, not a dynamic dispatch per
// packet. Drivers of sharded scheduling functions (the NIC's burst
// service) use this to fill their per-shard feed lanes.
//
//fv:hotpath
func (c *Classifier) ClassifyBatchSteerEv(ps []*packet.Packet, labels []*tree.Label, hits, evicted []bool, owners []int32, shards []int32) {
	n := len(ps)
	labels, hits, shards = labels[:n], hits[:n], shards[:n]
	if evicted != nil {
		evicted = evicted[:n]
	}
	bs := c.batchPool.Get().(*batchScratch)
	if cap(bs.idx) < n {
		bs.idx = make([]int32, 0, n) //fv:coldpath pooled scratch grows to the largest burst once, then never again
	}
	idx := bs.idx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	if n <= batchSortThreshold {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keyLess(ps[idx[j]], ps[idx[j-1]]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
	} else {
		//fv:coldpath bursts beyond batchSortThreshold exceed any NIC ring budget; stdlib sort is fine there
		sort.SliceStable(idx, func(a, b int) bool { return keyLess(ps[idx[a]], ps[idx[b]]) })
	}
	var (
		lastKey   uint64
		lastLbl   *tree.Label
		lastHash  uint64
		lastShard int32
		have      bool
	)
	for _, i := range idx {
		k := packKey(ps[i].App, ps[i].Flow)
		if have && k == lastKey {
			c.cache.shardFor(lastHash).hits.Add(1)
			labels[i], hits[i], shards[i] = lastLbl, true, lastShard
			if evicted != nil {
				evicted[i] = false // see ClassifyBatchEv: reused buffers must not leak stale evictions
			}
			continue
		}
		var ev bool
		labels[i], hits[i], ev = c.LookupEv(ps[i])
		if evicted != nil {
			evicted[i] = ev
		}
		lastShard = -1
		if lbl := labels[i]; lbl != nil {
			lastShard = owners[lbl.Leaf.ID]
		}
		shards[i] = lastShard
		lastKey, lastLbl, lastHash, have = k, labels[i], mix64(k), true
	}
	bs.idx = idx
	//fv:owner-ok ownership returns to the pool: this frame holds the only reference and never touches bs after the Put
	c.batchPool.Put(bs)
}

// keyLess orders packets by flow key for batch grouping.
func keyLess(a, b *packet.Packet) bool {
	if a.App != b.App {
		return a.App < b.App
	}
	return a.Flow < b.Flow
}

// classify runs the parser + match-action pipeline for one packet.
// scratch is the caller's shard-owned header buffer.
func (c *Classifier) classify(p *packet.Packet, scratch *[headers.MaxStackLen]byte) *tree.Label {
	key := p4lite.Key{VF: uint32(p.App), FlowID: uint32(p.Flow)}
	if p.Tuple != (headers.FiveTuple{}) {
		// Honest parse: build the wire header stack and parse it
		// back, exactly as the P4 parser would.
		n, err := headers.Build(scratch[:], p.Tuple, p.Size-headers.EthLen)
		if err != nil {
			c.parseErrs.Add(1)
			return c.def
		}
		parsed, err := p4lite.ParseFrame(scratch[:n], uint32(p.App), uint32(p.Flow))
		if err != nil {
			c.parseErrs.Add(1)
			return c.def
		}
		key = parsed
	}
	res := c.pipe.Classify(key)
	if res.Drop || res.Class == "" {
		return c.def
	}
	lbl, ok := c.tree.LabelByName(res.Class)
	if !ok {
		return c.def
	}
	return lbl
}

// Pipeline exposes the compiled match-action pipeline (for table dumps).
func (c *Classifier) Pipeline() *p4lite.Pipeline { return c.pipe }

// Tree exposes the scheduling tree the classifier's labels point into —
// consumers (the NIC's host slow path) build secondary schedulers over
// the same class hierarchy so both paths enforce one policy.
func (c *Classifier) Tree() *tree.Tree { return c.tree }

// Invalidate drops the cached entry for one flow (rule updates, flow
// teardown). Unknown keys are ignored.
func (c *Classifier) Invalidate(app packet.AppID, flow packet.FlowID) {
	c.cache.invalidate(packKey(app, flow))
}

// Flush empties the flow cache (bulk rule replacement) and resets every
// cache counter — hits, misses, evictions, invalidations, and parse
// errors together, so the post-flush statistics are consistent.
func (c *Classifier) Flush() {
	c.cache.flush()
	c.parseErrs.Store(0)
}

// Stats aggregates the flow-cache counters across shards.
func (c *Classifier) Stats() CacheStats {
	st := c.cache.stats()
	st.ParseErrors = c.parseErrs.Load()
	return st
}

// CacheLen returns the number of cached flow entries.
func (c *Classifier) CacheLen() int { return c.cache.stats().Size }

// CacheCap returns the effective flow-cache capacity in entries.
func (c *Classifier) CacheCap() int { return c.cache.capacity }
