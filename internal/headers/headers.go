// Package headers synthesizes and parses the on-wire packet headers the
// simulated NP pipeline operates on. The paper's backend is a P4 program:
// its parser walks real Ethernet/IPv4/TCP(UDP) headers, and its
// match-action tables classify on header fields. To exercise that code
// path honestly, the traffic generators synthesize genuine header bytes
// from a five-tuple and the pipeline parses them back, rather than
// passing metadata around the parser.
package headers

import (
	"encoding/binary"
	"fmt"
)

// Proto numbers used by the pipeline.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// EtherTypeIPv4 is the only ethertype the parser accepts (the paper's
// pipeline handles IP traffic).
const EtherTypeIPv4 = 0x0800

// Header lengths in bytes.
const (
	EthLen  = 14
	IPv4Len = 20
	TCPLen  = 20
	UDPLen  = 8

	// MaxStackLen is the longest header stack the parser visits.
	MaxStackLen = EthLen + IPv4Len + TCPLen
)

// FiveTuple identifies a transport flow on the wire.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the tuple for diagnostics.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d", protoName(t.Proto),
		ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort)
}

func protoName(p uint8) string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto%d", p)
	}
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Build writes an Ethernet+IPv4+L4 header stack for the tuple into buf
// and returns the bytes written. buf must hold MaxStackLen bytes.
// totalLen is the IP total length recorded in the header (frame size
// minus the Ethernet header).
func Build(buf []byte, t FiveTuple, totalLen int) (int, error) {
	if len(buf) < MaxStackLen {
		return 0, fmt.Errorf("headers: buffer %d short of %d", len(buf), MaxStackLen)
	}
	var l4 int
	switch t.Proto {
	case ProtoTCP:
		l4 = TCPLen
	case ProtoUDP:
		l4 = UDPLen
	default:
		return 0, fmt.Errorf("headers: unsupported proto %d", t.Proto)
	}

	// Ethernet: synthetic locally-administered MACs derived from IPs.
	copy(buf[0:6], []byte{0x02, 0, byte(t.DstIP >> 16), byte(t.DstIP >> 8), byte(t.DstIP), 1})
	copy(buf[6:12], []byte{0x02, 0, byte(t.SrcIP >> 16), byte(t.SrcIP >> 8), byte(t.SrcIP), 2})
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)

	// IPv4.
	ip := buf[EthLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	if totalLen < IPv4Len+l4 {
		totalLen = IPv4Len + l4
	}
	if totalLen > 0xffff {
		totalLen = 0xffff
	}
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(ip[4:6], 0) // identification
	binary.BigEndian.PutUint16(ip[6:8], 0x4000)
	ip[8] = 64 // TTL
	ip[9] = t.Proto
	binary.BigEndian.PutUint16(ip[10:12], 0) // checksum filled below
	binary.BigEndian.PutUint32(ip[12:16], t.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], t.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4Len]))

	// L4 ports (the pipeline only reads the port fields).
	l4buf := buf[EthLen+IPv4Len:]
	binary.BigEndian.PutUint16(l4buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(l4buf[2:4], t.DstPort)
	for i := 4; i < l4; i++ {
		l4buf[i] = 0
	}
	return EthLen + IPv4Len + l4, nil
}

// Parsed is the header view the parser extracts.
type Parsed struct {
	Tuple FiveTuple
	// HdrLen is the parsed stack length in bytes.
	HdrLen int
	// TotalLen is the IPv4 total length field.
	TotalLen int
}

// Parse walks the header stack: Ethernet → IPv4 → TCP/UDP. It mirrors a
// P4 parser's state machine, rejecting anything it has no state for.
func Parse(buf []byte) (Parsed, error) {
	var out Parsed
	if len(buf) < EthLen+IPv4Len {
		return out, fmt.Errorf("headers: truncated frame (%dB)", len(buf))
	}
	if et := binary.BigEndian.Uint16(buf[12:14]); et != EtherTypeIPv4 {
		return out, fmt.Errorf("headers: unhandled ethertype %#04x", et)
	}
	ip := buf[EthLen:]
	if ip[0]>>4 != 4 {
		return out, fmt.Errorf("headers: not IPv4")
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4Len || len(ip) < ihl {
		return out, fmt.Errorf("headers: bad IHL %d", ihl)
	}
	if ipChecksum(ip[:ihl]) != 0 {
		return out, fmt.Errorf("headers: bad IPv4 checksum")
	}
	out.Tuple.Proto = ip[9]
	out.Tuple.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	out.Tuple.DstIP = binary.BigEndian.Uint32(ip[16:20])
	out.TotalLen = int(binary.BigEndian.Uint16(ip[2:4]))

	l4 := ip[ihl:]
	var l4len int
	switch out.Tuple.Proto {
	case ProtoTCP:
		l4len = TCPLen
	case ProtoUDP:
		l4len = UDPLen
	default:
		return out, fmt.Errorf("headers: unhandled protocol %d", out.Tuple.Proto)
	}
	if len(l4) < 4 {
		return out, fmt.Errorf("headers: truncated L4 header")
	}
	out.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:2])
	out.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:4])
	out.HdrLen = EthLen + ihl + l4len
	return out, nil
}

// ipChecksum is the standard internet checksum over the IPv4 header;
// computing it over a header with the checksum in place yields zero.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
