package headers

import (
	"strings"
	"testing"
	"testing/quick"
)

func tuple() FiveTuple {
	return FiveTuple{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 40000, DstPort: 5201, Proto: ProtoTCP,
	}
}

func TestBuildParseRoundTripTCP(t *testing.T) {
	buf := make([]byte, MaxStackLen)
	n, err := Build(buf, tuple(), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if n != EthLen+IPv4Len+TCPLen {
		t.Fatalf("built %d bytes, want %d", n, EthLen+IPv4Len+TCPLen)
	}
	p, err := Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if p.Tuple != tuple() {
		t.Fatalf("tuple round trip: %v != %v", p.Tuple, tuple())
	}
	if p.HdrLen != n || p.TotalLen != 1500 {
		t.Fatalf("parsed lens: hdr=%d total=%d", p.HdrLen, p.TotalLen)
	}
}

func TestBuildParseRoundTripUDP(t *testing.T) {
	tp := tuple()
	tp.Proto = ProtoUDP
	buf := make([]byte, MaxStackLen)
	n, err := Build(buf, tp, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != EthLen+IPv4Len+UDPLen {
		t.Fatalf("UDP stack = %d bytes", n)
	}
	p, err := Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if p.Tuple != tp {
		t.Fatalf("tuple round trip: %v != %v", p.Tuple, tp)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(make([]byte, 10), tuple(), 100); err == nil {
		t.Fatal("short buffer accepted")
	}
	bad := tuple()
	bad.Proto = 99
	if _, err := Build(make([]byte, MaxStackLen), bad, 100); err == nil {
		t.Fatal("unknown proto accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	buf := make([]byte, MaxStackLen)
	n, _ := Build(buf, tuple(), 100)

	// Truncated.
	if _, err := Parse(buf[:10]); err == nil {
		t.Fatal("truncated frame parsed")
	}
	// Wrong ethertype.
	bad := append([]byte(nil), buf[:n]...)
	bad[12] = 0x86
	bad[13] = 0xdd
	if _, err := Parse(bad); err == nil {
		t.Fatal("IPv6 ethertype parsed")
	}
	// Corrupted checksum.
	bad = append([]byte(nil), buf[:n]...)
	bad[EthLen+10] ^= 0xff
	if _, err := Parse(bad); err == nil {
		t.Fatal("bad checksum parsed")
	}
	// Not IPv4.
	bad = append([]byte(nil), buf[:n]...)
	bad[EthLen] = 0x65
	if _, err := Parse(bad); err == nil {
		t.Fatal("IP version 6 parsed")
	}
	// Unknown protocol.
	bad = append([]byte(nil), buf[:n]...)
	bad[EthLen+9] = 47 // GRE
	// Checksum must be re-valid for the parser to reach the proto check.
	bad[EthLen+10] = 0
	bad[EthLen+11] = 0
	ck := ipChecksum(bad[EthLen : EthLen+IPv4Len])
	bad[EthLen+10] = byte(ck >> 8)
	bad[EthLen+11] = byte(ck)
	if _, err := Parse(bad); err == nil {
		t.Fatal("GRE parsed")
	}
}

func TestTupleString(t *testing.T) {
	s := tuple().String()
	if !strings.Contains(s, "tcp") || !strings.Contains(s, "5201") {
		t.Fatalf("String() = %q", s)
	}
	u := FiveTuple{Proto: ProtoUDP}
	if !strings.Contains(u.String(), "udp") {
		t.Fatal("udp name missing")
	}
	g := FiveTuple{Proto: 47}
	if !strings.Contains(g.String(), "proto47") {
		t.Fatal("generic proto name missing")
	}
}

// Property: every valid tuple round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	check := func(src, dst uint32, sp, dp uint16, udp bool) bool {
		tp := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		if udp {
			tp.Proto = ProtoUDP
		}
		buf := make([]byte, MaxStackLen)
		n, err := Build(buf, tp, 800)
		if err != nil {
			return false
		}
		p, err := Parse(buf[:n])
		return err == nil && p.Tuple == tp
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
