// Package prio models the Linux PRIO qdisc: a classless set of strict-
// priority FIFO bands drained to a fixed-rate link behind the global
// qdisc lock. It is the second kernel scheduler FlowValve offloads and is
// used standalone in tests and in delay comparisons.
package prio

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/host"
	"flowvalve/internal/packet"
	"flowvalve/internal/pktq"
	"flowvalve/internal/sim"
)

// Classify maps a packet to a band index (0 = highest priority). Out of
// range means drop.
type Classify func(*packet.Packet) int

// Callbacks deliver results to the harness; the qdisc shares the
// dataplane's callback shape so harnesses build one set for any backend.
type Callbacks = dataplane.Callbacks

// Config tunes the qdisc.
type Config struct {
	// Bands is the number of priority bands (tc default 3).
	Bands int
	// LinkRateBps is the egress link rate.
	LinkRateBps float64
	// QueuePkts bounds each band FIFO.
	QueuePkts int
	// EnqueueCycles and DequeueCycles are charged per packet at the
	// global-lock CPU stage.
	EnqueueCycles int64
	DequeueCycles int64
	// ServiceNsPerPkt is a per-packet service-time floor on the drain,
	// modelling a CPU-bound qdisc (see htb.Config.ServiceNsPerPkt). 0
	// keeps the drain purely link-limited.
	ServiceNsPerPkt float64
	// Host is the CPU model.
	Host host.Config
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Bands <= 0 {
		c.Bands = 3
	}
	if c.LinkRateBps <= 0 {
		c.LinkRateBps = 10e9
	}
	if c.QueuePkts <= 0 {
		c.QueuePkts = 1000
	}
	if c.EnqueueCycles <= 0 {
		c.EnqueueCycles = 800
	}
	if c.DequeueCycles <= 0 {
		c.DequeueCycles = 600
	}
	return c
}

// Stats are cumulative counters.
type Stats struct {
	Enqueued  uint64
	Delivered uint64
	Dropped   uint64
}

// Qdisc is a PRIO instance.
type Qdisc struct {
	eng      *sim.Engine
	cfg      Config
	classify Classify
	cb       Callbacks
	cpu      *host.CPU

	bands      []*pktq.FIFO
	wireFreeNs int64
	draining   bool

	stats Stats
}

// New builds a PRIO qdisc.
func New(eng *sim.Engine, cfg Config, classify Classify, cb Callbacks) (*Qdisc, error) {
	if eng == nil || classify == nil {
		return nil, fmt.Errorf("prio: nil engine or classifier")
	}
	cfg = cfg.Defaults()
	q := &Qdisc{
		eng:      eng,
		cfg:      cfg,
		classify: classify,
		cb:       cb,
		cpu:      host.New(cfg.Host),
		bands:    make([]*pktq.FIFO, cfg.Bands),
	}
	for i := range q.bands {
		q.bands[i] = pktq.New(cfg.QueuePkts, 0)
	}
	return q, nil
}

// Stats returns cumulative counters.
func (q *Qdisc) Stats() Stats { return q.stats }

// CPU returns the host CPU accountant.
func (q *Qdisc) CPU() *host.CPU { return q.cpu }

// Enqueue accepts a packet at the current time.
func (q *Qdisc) Enqueue(p *packet.Packet) {
	q.cpu.Charge(float64(q.cfg.EnqueueCycles))
	band := q.classify(p)
	if band < 0 || band >= len(q.bands) || !q.bands[band].TryPush(p) {
		q.stats.Dropped++
		if q.cb.OnDrop != nil {
			q.cb.OnDrop(p)
		}
		return
	}
	q.stats.Enqueued++
	if !q.draining {
		q.draining = true
		q.eng.After(0, q.drain)
	}
}

func (q *Qdisc) drain() {
	now := q.eng.Now()
	if now < q.wireFreeNs {
		q.eng.At(q.wireFreeNs, q.drain)
		return
	}
	var p *packet.Packet
	for _, band := range q.bands {
		if p = band.Pop(); p != nil {
			break
		}
	}
	if p == nil {
		q.draining = false
		return
	}
	q.cpu.Charge(float64(q.cfg.DequeueCycles))
	txNs := float64(p.WireBytes()*8) / q.cfg.LinkRateBps * 1e9
	if txNs < q.cfg.ServiceNsPerPkt {
		txNs = q.cfg.ServiceNsPerPkt
	}
	q.wireFreeNs = now + int64(txNs)
	done := q.wireFreeNs
	q.eng.At(done, func() {
		p.EgressAt = done
		q.stats.Delivered++
		if q.cb.OnDeliver != nil {
			q.cb.OnDeliver(p)
		}
		q.drain()
	})
}

// Backlog returns total queued packets.
func (q *Qdisc) Backlog() int {
	var n int
	for _, band := range q.bands {
		n += band.Len()
	}
	return n
}

// Compile-time capability checks: PRIO is driven through the same
// dataplane.Qdisc interface as the other backends. (It deliberately has
// no TelemetrySink — the probe's absence exercises optional discovery.)
var (
	_ dataplane.Qdisc          = (*Qdisc)(nil)
	_ dataplane.Backlogger     = (*Qdisc)(nil)
	_ dataplane.HostAccountant = (*Qdisc)(nil)
)

// QdiscStats implements dataplane.Qdisc.
func (q *Qdisc) QdiscStats() dataplane.Stats {
	return dataplane.Stats{
		Enqueued:  q.stats.Enqueued,
		Delivered: q.stats.Delivered,
		Dropped:   q.stats.Dropped,
	}
}

// HostCores implements dataplane.HostAccountant.
func (q *Qdisc) HostCores(durationNs int64) float64 {
	return q.cpu.CoresUsed(durationNs)
}
