package prio

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

type prioRig struct {
	eng   *sim.Engine
	q     *Qdisc
	bytes map[int]int64
	drops int
}

func newPrioRig(t *testing.T, cfg Config) *prioRig {
	t.Helper()
	r := &prioRig{eng: sim.New(), bytes: make(map[int]int64)}
	var err error
	r.q, err = New(r.eng, cfg,
		func(p *packet.Packet) int { return int(p.App) },
		Callbacks{
			OnDeliver: func(p *packet.Packet) { r.bytes[int(p.App)] += int64(p.Size) },
			OnDrop:    func(*packet.Packet) { r.drops++ },
		})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}, func(*packet.Packet) int { return 0 }, Callbacks{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(sim.New(), Config{}, nil, Callbacks{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

// Band 0 starves band 1 under overload — strict priority.
func TestStrictPriority(t *testing.T) {
	r := newPrioRig(t, Config{LinkRateBps: 1e9})
	alloc := &packet.Alloc{}
	for app := packet.AppID(0); app < 2; app++ {
		if _, err := trafficgen.NewCBR(r.eng, alloc, packet.FlowID(app), app, 1500,
			1.5e9, 0, 200e6, r.q.Enqueue); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	hi, lo := r.bytes[0], r.bytes[1]
	if hi == 0 {
		t.Fatal("band 0 delivered nothing")
	}
	// Band 0 offered 1.5× the link: band 1 only gets leftovers bounded
	// by its queue; strictly less than 10% of band 0.
	if float64(lo) > 0.1*float64(hi) {
		t.Fatalf("band1/band0 = %d/%d — not strict priority", lo, hi)
	}
	if r.drops == 0 {
		t.Fatal("overload should drop")
	}
}

// An idle high band lets lower bands use the full link.
func TestWorkConserving(t *testing.T) {
	r := newPrioRig(t, Config{LinkRateBps: 1e9})
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewCBR(r.eng, alloc, 1, 2, 1500, 2e9, 0, 200e6, r.q.Enqueue); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	rate := float64(r.bytes[2]) * 8 / 0.2
	if rate < 0.85e9 {
		t.Fatalf("lowest band got %.2fG with others idle, want ≈1G", rate/1e9)
	}
}

func TestOutOfRangeBandDrops(t *testing.T) {
	r := newPrioRig(t, Config{Bands: 3})
	var a packet.Alloc
	r.q.Enqueue(a.New(0, 7, 100, 0)) // app 7 → band 7: out of range
	r.eng.Run()
	if r.drops != 1 {
		t.Fatalf("drops = %d, want 1", r.drops)
	}
}

func TestStatsAndBacklog(t *testing.T) {
	r := newPrioRig(t, Config{LinkRateBps: 1e6}) // slow link
	var a packet.Alloc
	for i := 0; i < 5; i++ {
		r.q.Enqueue(a.New(0, 0, 1000, 0))
	}
	if r.q.Backlog() == 0 {
		t.Fatal("expected backlog on a slow link")
	}
	r.eng.Run()
	st := r.q.Stats()
	if st.Enqueued != 5 || st.Delivered != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if r.q.CPU().Cycles() == 0 {
		t.Fatal("no CPU charged")
	}
}
