//go:build fvassert

package fvassert

import (
	"strings"
	"testing"
)

func TestEnabledUnderTag(t *testing.T) {
	if !Enabled {
		t.Fatal("fvassert.Enabled must be true under the fvassert build tag")
	}
}

func TestFailfPanicsWithPrefix(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "fvassert: ") {
			t.Fatalf("Failf panic = %v, want fvassert:-prefixed string", r)
		}
		if !strings.Contains(msg, "tokens 42") {
			t.Fatalf("Failf did not format arguments: %q", msg)
		}
	}()
	Failf("token: tokens %d", 42)
}
