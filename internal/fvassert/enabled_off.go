//go:build !fvassert

package fvassert

// Enabled reports whether runtime assertions are compiled in. Without
// the fvassert tag every assertion guard is a compile-time-false branch
// the compiler deletes: the hot path pays nothing.
const Enabled = false
