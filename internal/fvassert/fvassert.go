// Package fvassert is the build-tag-gated runtime assertion layer.
//
// Assertions guard invariants the type system cannot express — token
// conservation per epoch, FIFO occupancy bounds, power-of-two cache
// geometry, event-time monotonicity — and cost nothing in normal
// builds: Enabled is an untyped constant, so every
//
//	if fvassert.Enabled && <invariant violated> {
//		fvassert.Failf("subsystem: what broke (values)")
//	}
//
// guard is dead code the compiler deletes unless the build runs with
// -tags fvassert. CI exercises the full test suite under the tag (see
// the fvassert job in .github/workflows/ci.yml and `make test-fvassert`),
// so a violated invariant fails loudly there while release and
// benchmark builds keep their zero-cost hot path —
// BenchmarkScheduleBatch32 is the guard that the tag-off build really
// pays nothing.
//
// Failf always panics: an assertion failure is a logic bug, never an
// input error, so there is no recovery story beyond the stack trace.
package fvassert

import "fmt"

// Failf panics with a "fvassert: "-prefixed formatted message. Call it
// only behind an `if fvassert.Enabled && ...` guard so the call (and
// its argument boxing) compiles out of untagged builds.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf("fvassert: "+format, args...))
}
