//go:build !fvassert

package fvassert

import "testing"

// TestDisabledByDefault pins the zero-cost contract: without the tag,
// Enabled is a compile-time false constant.
func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("fvassert.Enabled must be false without the fvassert build tag")
	}
}
