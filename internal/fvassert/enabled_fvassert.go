//go:build fvassert

package fvassert

// Enabled reports whether runtime assertions are compiled in. This
// build has the fvassert tag: every assertion guard is live.
const Enabled = true
