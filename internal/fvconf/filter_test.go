package fvconf

import "testing"

const header = "qdisc add dev x root handle 1: htb rate 1gbit\n" +
	"class add dev x parent 1: classid 1:1\n" +
	"class add dev x parent 1: classid 1:2\n"

func TestFilterTupleMatches(t *testing.T) {
	s, err := Parse(header + `
filter add dev x parent 1: protocol ip u32 match ip dport 5201 0xffff flowid 1:1
filter add dev x parent 1: u32 match ip src 10.0.3.0/24 match ip protocol tcp flowid 1:2
filter add dev x parent 1: match ip dst 10.99.0.1 flowid 1:1
filter add dev x parent 1: match ip sport 33000 0xff00 flowid 1:2
filter add dev x parent 1: match ip protocol udp flowid 1:1
filter add dev x parent 1: match ip protocol 47 flowid 1:2
`)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Filters
	if len(r) != 6 {
		t.Fatalf("filters = %d, want 6", len(r))
	}
	if r[0].DstPort != 5201 || r[0].DstPortMask != 0xffff {
		t.Fatalf("dport rule wrong: %+v", r[0])
	}
	if r[1].SrcIP != 0x0a000300 || r[1].SrcIPMask != 0xffffff00 || r[1].Proto != 6 {
		t.Fatalf("src/proto rule wrong: %+v", r[1])
	}
	if r[2].DstIP != 0x0a630001 || r[2].DstIPMask != 0xffffffff {
		t.Fatalf("dst host rule wrong: %+v", r[2])
	}
	if r[3].SrcPort != 33000 || r[3].SrcPortMask != 0xff00 {
		t.Fatalf("sport mask rule wrong: %+v", r[3])
	}
	if r[4].Proto != 17 || r[5].Proto != 47 {
		t.Fatalf("proto rules wrong: %+v %+v", r[4], r[5])
	}
	if _, _, err := s.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMatchErrors(t *testing.T) {
	cases := map[string]string{
		"bad family":    header + "filter add dev x match ipv6 src ::1 flowid 1:1",
		"bad selector":  header + "filter add dev x match ip tos 4 flowid 1:1",
		"bad ip":        header + "filter add dev x match ip src 10.0.0 flowid 1:1",
		"bad ip octet":  header + "filter add dev x match ip src 10.0.0.999 flowid 1:1",
		"bad prefix":    header + "filter add dev x match ip src 10.0.0.0/40 flowid 1:1",
		"bad port":      header + "filter add dev x match ip dport 99999 flowid 1:1",
		"bad mask":      header + "filter add dev x match ip dport 80 0xzz flowid 1:1",
		"bad protocol":  header + "filter add dev x match ip protocol icmpish flowid 1:1",
		"zero protocol": header + "filter add dev x match ip protocol 0 flowid 1:1",
		"dangling":      header + "filter add dev x match ip src",
	}
	for name, script := range cases {
		if _, err := Parse(script); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestParseIPv4CIDR(t *testing.T) {
	cases := []struct {
		in   string
		ip   uint32
		mask uint32
	}{
		{"10.0.0.1", 0x0a000001, 0xffffffff},
		{"10.0.0.0/24", 0x0a000000, 0xffffff00},
		{"0.0.0.0/0", 0, 0},
		{"255.255.255.255/32", 0xffffffff, 0xffffffff},
		{"192.168.1.0/31", 0xc0a80100, 0xfffffffe},
	}
	for _, tc := range cases {
		ip, mask, err := parseIPv4CIDR(tc.in)
		if err != nil {
			t.Errorf("%s: %v", tc.in, err)
			continue
		}
		if ip != tc.ip || mask != tc.mask {
			t.Errorf("%s = %#x/%#x, want %#x/%#x", tc.in, ip, mask, tc.ip, tc.mask)
		}
	}
}
