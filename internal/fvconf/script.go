package fvconf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flowvalve/internal/classifier"
	"flowvalve/internal/sched/tree"
)

// Script is a parsed fv policy: a root qdisc, optional chained child
// qdiscs grafted onto classes (§III-E: "FlowValve can fully offload PRIO
// and HTB meanwhile support qdisc chaining"), a class hierarchy, and
// filter rules.
type Script struct {
	// Dev is the device name from the qdisc command (informational).
	Dev string
	// Handle is the root qdisc handle (e.g. "1:"), which becomes the
	// root class name.
	Handle string
	// RootRateBps is the policy ceiling from the qdisc "rate" option.
	RootRateBps float64
	// RootBands auto-generates band classes for a classless root prio
	// qdisc.
	RootBands int
	// DefaultClass absorbs unmatched traffic ("default" option).
	DefaultClass string
	// Classes in declaration order (parents before children, enforced
	// at parse time through the tree builder).
	Classes []tree.ClassSpec
	// Filters in declaration order.
	Filters []classifier.Rule
	// Kind is the root discipline: "htb" or "prio".
	Kind string
	// Children are chained qdiscs grafted onto classes.
	Children []ChildQdisc
}

// ChildQdisc is a qdisc chained under a class of an outer qdisc: its
// handle aliases the parent class, so classes declared with `parent H:`
// become children of that class — FlowValve compiles the whole chain
// into one scheduling tree and keeps the chained discipline's rates
// adjusted at runtime, exactly as the paper describes.
type ChildQdisc struct {
	// Handle is the child qdisc handle (e.g. "2:").
	Handle string
	// Parent is the class the qdisc is grafted onto (e.g. "1:21").
	Parent string
	// Kind is "htb" or "prio".
	Kind string
	// Bands auto-generates strict-priority band classes (H:1 .. H:N,
	// Prio 0..N−1) for a classless prio qdisc; 0 if classes are
	// declared explicitly.
	Bands int
}

// Parse reads an fv command script: one command per line, `#` comments,
// blank lines ignored. Each command is
//
//	[fv] qdisc add dev DEV root handle H: (htb|prio) rate RATE [default CLASSID]
//	[fv] class add dev DEV parent P classid C [htb] [rate RATE] [ceil RATE]
//	       [prio N] [weight W] [guarantee RATE] [borrow C1,C2,...]
//	[fv] filter add dev DEV parent P [protocol ip] [u32] [app N] [flow N]
//	       [match ip src A.B.C.D[/len]] [match ip dst A.B.C.D[/len]]
//	       [match ip sport N [0xMASK]] [match ip dport N [0xMASK]]
//	       [match ip protocol tcp|udp|N] flowid C
//
// mirroring the tc options the paper's fv tool inherits, plus the
// FlowValve-specific weight/guarantee/borrow extensions. Chained qdiscs
// are declared with `qdisc add ... parent CLASSID handle H:`.
func Parse(text string) (*Script, error) {
	s := &Script{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "fv" || fields[0] == "tc" {
			fields = fields[1:]
		}
		if len(fields) < 2 || fields[1] != "add" {
			return nil, fmt.Errorf("fvconf: line %d: expected '<qdisc|class|filter> add ...'", lineNo+1)
		}
		var err error
		switch fields[0] {
		case "qdisc":
			err = s.parseQdisc(fields[2:])
		case "class":
			err = s.parseClass(fields[2:])
		case "filter":
			err = s.parseFilter(fields[2:])
		default:
			err = fmt.Errorf("unknown object %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("fvconf: line %d: %w", lineNo+1, err)
		}
	}
	if s.Handle == "" {
		return nil, fmt.Errorf("fvconf: script has no qdisc")
	}
	return s, nil
}

// kv scans "key value" pairs from tc-style option lists.
type kv struct {
	fields []string
	i      int
}

func (p *kv) next() (key, val string, ok bool, err error) {
	if p.i >= len(p.fields) {
		return "", "", false, nil
	}
	key = p.fields[p.i]
	// Flag-style keys with no value.
	switch key {
	case "htb", "prio-qdisc", "ip":
		p.i++
		return key, "", true, nil
	}
	if p.i+1 >= len(p.fields) {
		return "", "", false, fmt.Errorf("option %q missing value", key)
	}
	val = p.fields[p.i+1]
	p.i += 2
	return key, val, true, nil
}

// qdiscKeys are the option keys valid on a qdisc line; used to recognize
// the bare "prio" discipline flag (which would otherwise swallow the next
// token as its value).
var qdiscKeys = map[string]bool{
	"dev": true, "root": true, "handle": true, "rate": true,
	"default": true, "bands": true, "htb": true,
}

// qdiscKeysParent extends qdiscKeys for child-qdisc lines.
var qdiscKeysParent = map[string]bool{"parent": true}

func (s *Script) parseQdisc(fields []string) error {
	fields = append([]string(nil), fields...)
	for i, f := range fields {
		if f == "prio" && (i+1 == len(fields) || qdiscKeys[fields[i+1]] || qdiscKeysParent[fields[i+1]]) {
			fields[i] = "prio-qdisc"
		}
	}
	var (
		sawRoot bool
		handle  string
		parent  string
		kind    string
		rate    float64
		def     string
		bands   int
	)
	p := &kv{fields: fields}
	for {
		key, val, ok, err := p.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch key {
		case "dev":
			if s.Dev == "" {
				s.Dev = val
			}
		case "root":
			sawRoot = true
			p.i-- // "root" is a flag; re-read its "value" as next key
		case "parent":
			parent = val
		case "handle":
			handle = val
		case "htb", "prio-qdisc":
			kind = strings.TrimSuffix(key, "-qdisc")
		case "rate":
			r, err := ParseRate(val)
			if err != nil {
				return err
			}
			rate = r
		case "default":
			def = val
		case "bands":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad bands %q", val)
			}
			bands = n
		default:
			return fmt.Errorf("unknown qdisc option %q", key)
		}
	}
	if handle == "" {
		return fmt.Errorf("qdisc needs 'handle'")
	}
	if kind == "" {
		kind = "htb"
	}

	if sawRoot {
		if s.Handle != "" {
			return fmt.Errorf("multiple root qdiscs")
		}
		if parent != "" {
			return fmt.Errorf("root qdisc cannot have a parent")
		}
		if rate <= 0 {
			return fmt.Errorf("root qdisc needs a positive 'rate'")
		}
		s.Handle = handle
		s.Kind = kind
		s.RootRateBps = rate
		s.DefaultClass = def
		s.RootBands = bands
		return nil
	}

	// Chained qdisc grafted under a class of an outer qdisc.
	if parent == "" {
		return fmt.Errorf("qdisc must be 'root' or have a 'parent' class")
	}
	if rate > 0 {
		return fmt.Errorf("a chained qdisc takes its rate from its parent class; drop 'rate'")
	}
	if def != "" {
		return fmt.Errorf("'default' belongs on the root qdisc")
	}
	s.Children = append(s.Children, ChildQdisc{
		Handle: handle,
		Parent: parent,
		Kind:   kind,
		Bands:  bands,
	})
	return nil
}

func (s *Script) parseClass(fields []string) error {
	spec := tree.ClassSpec{}
	p := &kv{fields: fields}
	for {
		key, val, ok, err := p.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch key {
		case "dev", "htb":
			// dev is informational; htb is the discipline flag.
		case "parent":
			spec.Parent = val
		case "classid":
			spec.Name = val
		case "rate":
			// tc semantics: the HTB class "rate" is the assured
			// rate — FlowValve's guarantee floor.
			r, err := ParseRate(val)
			if err != nil {
				return err
			}
			spec.GuaranteeBps = r
		case "ceil":
			r, err := ParseRate(val)
			if err != nil {
				return err
			}
			spec.CeilBps = r
		case "fixed":
			r, err := ParseRate(val)
			if err != nil {
				return err
			}
			spec.RateBps = r
		case "guarantee":
			r, err := ParseRate(val)
			if err != nil {
				return err
			}
			spec.GuaranteeBps = r
		case "prio":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad prio %q", val)
			}
			spec.Prio = n
		case "weight":
			w, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad weight %q", val)
			}
			spec.Weight = w
		case "borrow":
			spec.BorrowFrom = strings.Split(val, ",")
		default:
			return fmt.Errorf("unknown class option %q", key)
		}
	}
	if spec.Name == "" {
		return fmt.Errorf("class needs 'classid'")
	}
	if spec.Parent == "" {
		return fmt.Errorf("class %s needs 'parent'", spec.Name)
	}
	s.Classes = append(s.Classes, spec)
	return nil
}

// parseFilter reads a tc-style filter line. Besides the metadata
// selectors (app/vf, flow), it supports u32-style five-tuple matches:
//
//	match ip src 10.0.1.0/24        match ip dst 10.99.0.1
//	match ip sport 33000 0xff00     match ip dport 5201 0xffff
//	match ip protocol tcp|udp|<n>
func (s *Script) parseFilter(fields []string) error {
	rule := classifier.Rule{App: classifier.AnyApp, Flow: classifier.AnyFlow}
	i := 0
	next := func(what string) (string, error) {
		if i >= len(fields) {
			return "", fmt.Errorf("option %q missing value", what)
		}
		v := fields[i]
		i++
		return v, nil
	}
	for i < len(fields) {
		key := fields[i]
		i++
		switch key {
		case "u32", "ip":
			// Structure markers, no value.
		case "dev", "parent":
			if _, err := next(key); err != nil {
				return err
			}
		case "protocol":
			// "protocol ip" — the outer tc selector.
			if _, err := next(key); err != nil {
				return err
			}
		case "app", "vf":
			val, err := next(key)
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad app %q", val)
			}
			rule.App = n
		case "flow":
			val, err := next(key)
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad flow %q", val)
			}
			rule.Flow = n
		case "match":
			if err := parseMatch(fields, &i, &rule); err != nil {
				return err
			}
		case "flowid":
			val, err := next(key)
			if err != nil {
				return err
			}
			rule.Class = val
		default:
			return fmt.Errorf("unknown filter option %q", key)
		}
	}
	if rule.Class == "" {
		return fmt.Errorf("filter needs 'flowid'")
	}
	s.Filters = append(s.Filters, rule)
	return nil
}

// parseMatch consumes one "match ip <selector> <value> [mask]" clause.
func parseMatch(fields []string, i *int, rule *classifier.Rule) error {
	take := func(what string) (string, error) {
		if *i >= len(fields) {
			return "", fmt.Errorf("match %s: missing token", what)
		}
		v := fields[*i]
		*i++
		return v, nil
	}
	proto, err := take("family")
	if err != nil {
		return err
	}
	if proto != "ip" {
		return fmt.Errorf("match: only 'ip' selectors are supported, got %q", proto)
	}
	sel, err := take("selector")
	if err != nil {
		return err
	}
	switch sel {
	case "src", "dst":
		val, err := take(sel)
		if err != nil {
			return err
		}
		ip, mask, err := parseIPv4CIDR(val)
		if err != nil {
			return err
		}
		if sel == "src" {
			rule.SrcIP, rule.SrcIPMask = ip, mask
		} else {
			rule.DstIP, rule.DstIPMask = ip, mask
		}
	case "sport", "dport":
		val, err := take(sel)
		if err != nil {
			return err
		}
		port, err := strconv.ParseUint(val, 10, 16)
		if err != nil {
			return fmt.Errorf("bad port %q", val)
		}
		mask := uint32(0xffff)
		// Optional hex mask (u32 syntax: "dport 5201 0xffff").
		if *i < len(fields) && strings.HasPrefix(fields[*i], "0x") {
			m, err := strconv.ParseUint(fields[*i][2:], 16, 16)
			if err != nil {
				return fmt.Errorf("bad port mask %q", fields[*i])
			}
			mask = uint32(m)
			*i++
		}
		if sel == "sport" {
			rule.SrcPort, rule.SrcPortMask = uint32(port), mask
		} else {
			rule.DstPort, rule.DstPortMask = uint32(port), mask
		}
	case "protocol":
		val, err := take("protocol")
		if err != nil {
			return err
		}
		switch val {
		case "tcp":
			rule.Proto = 6
		case "udp":
			rule.Proto = 17
		default:
			n, err := strconv.ParseUint(val, 10, 8)
			if err != nil || n == 0 {
				return fmt.Errorf("bad protocol %q", val)
			}
			rule.Proto = int(n)
		}
	default:
		return fmt.Errorf("unknown match selector %q", sel)
	}
	return nil
}

// parseIPv4CIDR reads "A.B.C.D" (exact host) or "A.B.C.D/len".
func parseIPv4CIDR(s string) (ip, mask uint32, err error) {
	addr := s
	prefix := 32
	if slash := strings.IndexByte(s, '/'); slash >= 0 {
		addr = s[:slash]
		prefix, err = strconv.Atoi(s[slash+1:])
		if err != nil || prefix < 0 || prefix > 32 {
			return 0, 0, fmt.Errorf("bad prefix length in %q", s)
		}
	}
	parts := strings.Split(addr, ".")
	if len(parts) != 4 {
		return 0, 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(n)
	}
	if prefix == 0 {
		return ip, 0, nil
	}
	mask = ^uint32(0) << (32 - prefix)
	return ip, mask, nil
}

// Compile builds the scheduling tree and classifier from the script. The
// root qdisc handle becomes the root class carrying the policy ceiling;
// chained qdisc handles alias their parent class, so a chain of PRIO and
// HTB disciplines compiles into one scheduling tree (the offloaded
// qdisc-chaining feature of §III-E).
func (s *Script) Compile() (*tree.Tree, []classifier.Rule, error) {
	// Handle aliases: a class declared with `parent 2:` is a child of
	// the class qdisc 2: is grafted onto.
	alias := map[string]string{}
	declared := map[string]bool{s.Handle: true}
	for _, spec := range s.Classes {
		declared[spec.Name] = true
	}
	hasClassesUnder := map[string]bool{}
	for _, spec := range s.Classes {
		hasClassesUnder[spec.Parent] = true
	}
	// Auto-generated prio bands are declared names too, so a further
	// qdisc can graft onto a band (e.g. HTB under band 2:1).
	markBands := func(handle string, bands int) {
		if bands <= 0 || hasClassesUnder[handle] {
			return
		}
		for i := 1; i <= bands; i++ {
			declared[fmt.Sprintf("%s%d", handle, i)] = true
		}
	}
	if s.Kind == "prio" {
		markBands(s.Handle, s.RootBands)
	}
	for _, child := range s.Children {
		if child.Kind == "prio" {
			markBands(child.Handle, child.Bands)
		}
	}
	for _, child := range s.Children {
		if declared[child.Handle] {
			return nil, nil, fmt.Errorf("fvconf: qdisc handle %q collides with a class", child.Handle)
		}
		if !declared[child.Parent] {
			return nil, nil, fmt.Errorf("fvconf: qdisc %s grafted onto unknown class %q", child.Handle, child.Parent)
		}
		alias[child.Handle] = child.Parent
	}
	resolve := func(name string) string {
		for i := 0; i < len(alias)+1; i++ {
			target, ok := alias[name]
			if !ok {
				return name
			}
			name = target
		}
		return name
	}

	b := tree.NewBuilder().Root(s.Handle, s.RootRateBps)
	// A classless prio qdisc (root or chained) auto-generates its
	// strict-priority bands H:1..H:N.
	addBands := func(handle, parent string, bands int) {
		for i := 1; i <= bands; i++ {
			b.Add(tree.ClassSpec{
				Name:   fmt.Sprintf("%s%d", handle, i),
				Parent: parent,
				Prio:   i - 1,
			})
		}
	}
	if s.Kind == "prio" && s.RootBands > 0 && !hasClassesUnder[s.Handle] {
		addBands(s.Handle, s.Handle, s.RootBands)
	}
	for _, spec := range s.Classes {
		spec.Parent = resolve(spec.Parent)
		b.Add(spec)
	}
	for _, child := range s.Children {
		if child.Kind == "prio" && child.Bands > 0 && !hasClassesUnder[child.Handle] {
			addBands(child.Handle, resolve(child.Handle), child.Bands)
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	for _, r := range s.Filters {
		if lbl, ok := t.LabelByName(r.Class); !ok || lbl == nil {
			return nil, nil, fmt.Errorf("fvconf: filter targets unknown or non-leaf class %q", r.Class)
		}
	}
	if s.DefaultClass != "" {
		if lbl, ok := t.LabelByName(s.DefaultClass); !ok || lbl == nil {
			return nil, nil, fmt.Errorf("fvconf: default class %q unknown or not a leaf", s.DefaultClass)
		}
	}
	return t, s.Filters, nil
}

// Describe renders a human-readable summary of the compiled policy — the
// output of `fv show`.
func (s *Script) Describe() (string, error) {
	t, rules, err := s.Compile()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "qdisc %s dev %s %s rate %s", s.Handle, s.Dev, s.Kind, FormatRate(s.RootRateBps))
	if s.DefaultClass != "" {
		fmt.Fprintf(&sb, " default %s", s.DefaultClass)
	}
	sb.WriteByte('\n')
	for _, child := range s.Children {
		fmt.Fprintf(&sb, "qdisc %s parent %s %s", child.Handle, child.Parent, child.Kind)
		if child.Bands > 0 {
			fmt.Fprintf(&sb, " bands %d", child.Bands)
		}
		sb.WriteByte('\n')
	}

	classes := append([]*tree.Class(nil), t.Classes()...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
	for _, c := range classes {
		if c.Parent == nil {
			continue
		}
		fmt.Fprintf(&sb, "%sclass %s parent %s prio %d weight %g",
			strings.Repeat("  ", c.Depth), c.Name, c.Parent.Name, c.Prio, c.EffectiveWeight())
		if c.GuaranteeBps > 0 {
			fmt.Fprintf(&sb, " guarantee %s", FormatRate(c.GuaranteeBps))
		}
		if c.CeilBps > 0 {
			fmt.Fprintf(&sb, " ceil %s", FormatRate(c.CeilBps))
		}
		if len(c.BorrowFrom) > 0 {
			names := make([]string, len(c.BorrowFrom))
			for i, l := range c.BorrowFrom {
				names[i] = l.Name
			}
			fmt.Fprintf(&sb, " borrow %s", strings.Join(names, ","))
		}
		sb.WriteByte('\n')
	}
	for _, r := range rules {
		fmt.Fprintf(&sb, "filter app %d flow %d -> %s\n", r.App, r.Flow, r.Class)
	}
	return sb.String(), nil
}
