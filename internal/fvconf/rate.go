// Package fvconf implements the FlowValve front end: parsing fv command
// scripts — which inherit the tc command options (§III-E) — and compiling
// them into a scheduling tree plus classifier filter rules ready to be
// populated into the (simulated) SmartNIC shared memory.
package fvconf

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRate converts a tc-style rate string to bits per second.
//
// tc semantics: the "bit" suffixes (bit, kbit, mbit, gbit, tbit) are bits
// per second with decimal SI prefixes; the "bps" suffixes (bps, kbps,
// mbps, gbps) are BYTES per second. A bare number is bits per second.
func ParseRate(s string) (float64, error) {
	orig := s
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("fvconf: empty rate")
	}

	mult := 1.0
	bytes := false
	switch {
	case strings.HasSuffix(s, "tbit"):
		mult, s = 1e12, strings.TrimSuffix(s, "tbit")
	case strings.HasSuffix(s, "gbit"):
		mult, s = 1e9, strings.TrimSuffix(s, "gbit")
	case strings.HasSuffix(s, "mbit"):
		mult, s = 1e6, strings.TrimSuffix(s, "mbit")
	case strings.HasSuffix(s, "kbit"):
		mult, s = 1e3, strings.TrimSuffix(s, "kbit")
	case strings.HasSuffix(s, "gbps"):
		mult, bytes, s = 1e9, true, strings.TrimSuffix(s, "gbps")
	case strings.HasSuffix(s, "mbps"):
		mult, bytes, s = 1e6, true, strings.TrimSuffix(s, "mbps")
	case strings.HasSuffix(s, "kbps"):
		mult, bytes, s = 1e3, true, strings.TrimSuffix(s, "kbps")
	case strings.HasSuffix(s, "bps"):
		bytes, s = true, strings.TrimSuffix(s, "bps")
	case strings.HasSuffix(s, "bit"):
		s = strings.TrimSuffix(s, "bit")
	}

	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("fvconf: bad rate %q: %w", orig, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("fvconf: negative rate %q", orig)
	}
	v *= mult
	if bytes {
		v *= 8
	}
	return v, nil
}

// FormatRate renders bits/second in the most compact tc unit.
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e9 && bps == float64(int64(bps/1e8))*1e8:
		return trimZero(bps/1e9) + "gbit"
	case bps >= 1e6:
		return trimZero(bps/1e6) + "mbit"
	case bps >= 1e3:
		return trimZero(bps/1e3) + "kbit"
	default:
		return trimZero(bps) + "bit"
	}
}

func trimZero(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	return s
}
