package fvconf

import (
	"strings"
	"testing"
)

// The paper's qdisc-chaining feature: a PRIO qdisc chained under an HTB
// class compiles into one scheduling tree.
const chainedScript = `
fv qdisc add dev nfp0 root handle 1: htb rate 10gbit default 1:20
fv class add dev nfp0 parent 1: classid 1:10 htb weight 2
fv class add dev nfp0 parent 1: classid 1:20 htb weight 1
fv qdisc add dev nfp0 parent 1:10 handle 2: prio bands 3
fv filter add dev nfp0 parent 2: app 0 flowid 2:1
fv filter add dev nfp0 parent 2: app 1 flowid 2:3
fv filter add dev nfp0 parent 1: app 2 flowid 1:20
`

func TestChainedPrioUnderHTB(t *testing.T) {
	s, err := Parse(chainedScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Children) != 1 {
		t.Fatalf("children = %d, want 1", len(s.Children))
	}
	child := s.Children[0]
	if child.Handle != "2:" || child.Parent != "1:10" || child.Kind != "prio" || child.Bands != 3 {
		t.Fatalf("child qdisc parsed wrong: %+v", child)
	}

	tr, rules, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// root + 1:10 + 1:20 + three bands = 6 classes.
	if tr.Len() != 6 {
		t.Fatalf("tree size = %d, want 6", tr.Len())
	}
	band1, ok := tr.Lookup("2:1")
	if !ok {
		t.Fatal("band 2:1 missing")
	}
	if band1.Parent.Name != "1:10" {
		t.Fatalf("band parent = %s, want 1:10 (grafted)", band1.Parent.Name)
	}
	if band1.Prio != 0 {
		t.Fatalf("band 2:1 prio = %d, want 0", band1.Prio)
	}
	band3, _ := tr.Lookup("2:3")
	if band3.Prio != 2 {
		t.Fatalf("band 2:3 prio = %d, want 2", band3.Prio)
	}
	if len(rules) != 3 || rules[0].Class != "2:1" {
		t.Fatalf("rules wrong: %+v", rules)
	}
}

// Explicit classes under a chained HTB qdisc.
func TestChainedHTBWithClasses(t *testing.T) {
	s, err := Parse(`
qdisc add dev x root handle 1: htb rate 10gbit
class add dev x parent 1: classid 1:10 weight 1
qdisc add dev x parent 1:10 handle 2: htb
class add dev x parent 2: classid 2:5 weight 3
class add dev x parent 2: classid 2:6 weight 1
filter add dev x app 0 flowid 2:5
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := tr.Lookup("2:5")
	if !ok || c.Parent.Name != "1:10" {
		t.Fatalf("2:5 not grafted under 1:10: %v", c)
	}
	if c.Weight != 3 {
		t.Fatalf("weight = %g", c.Weight)
	}
}

// A qdisc grafted onto an auto-generated band of another chained qdisc.
func TestChainOntoBand(t *testing.T) {
	s, err := Parse(`
qdisc add dev x root handle 1: prio bands 2 rate 10gbit
qdisc add dev x parent 1:2 handle 3: htb
class add dev x parent 3: classid 3:1 weight 1
class add dev x parent 3: classid 3:2 weight 2
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := tr.Lookup("3:2")
	if !ok || c.Parent.Name != "1:2" {
		t.Fatalf("3:2 not under band 1:2: %v", c)
	}
}

// Classless root prio auto-generates its bands.
func TestClasslessRootPrio(t *testing.T) {
	s, err := Parse(`qdisc add dev x root handle 1: prio bands 3 rate 1gbit`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Fatalf("tree size = %d, want root + 3 bands", tr.Len())
	}
	for i, want := range []int{0, 1, 2} {
		c, ok := tr.Lookup("1:" + string(rune('1'+i)))
		if !ok || c.Prio != want {
			t.Fatalf("band %d wrong: %v", i+1, c)
		}
	}
}

func TestChainErrors(t *testing.T) {
	cases := map[string]string{
		"child without parent": `
qdisc add dev x root handle 1: htb rate 1gbit
qdisc add dev x handle 2: htb`,
		"child with rate": `
qdisc add dev x root handle 1: htb rate 1gbit
class add dev x parent 1: classid 1:1
qdisc add dev x parent 1:1 handle 2: htb rate 1gbit`,
		"child with default": `
qdisc add dev x root handle 1: htb rate 1gbit
class add dev x parent 1: classid 1:1
qdisc add dev x parent 1:1 handle 2: htb default 2:1`,
		"bad bands": `qdisc add dev x root handle 1: prio bands zero rate 1gbit`,
	}
	for name, script := range cases {
		if _, err := Parse(script); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}

	compileCases := map[string]string{
		"graft onto unknown class": `
qdisc add dev x root handle 1: htb rate 1gbit
class add dev x parent 1: classid 1:1
qdisc add dev x parent 1:99 handle 2: htb
class add dev x parent 2: classid 2:1`,
		"handle collides with class": `
qdisc add dev x root handle 1: htb rate 1gbit
class add dev x parent 1: classid 1:1
class add dev x parent 1: classid 2:
qdisc add dev x parent 1:1 handle 2: htb
class add dev x parent 2: classid 2:1`,
	}
	for name, script := range compileCases {
		s, err := Parse(script)
		if err != nil {
			t.Errorf("%s: Parse failed early: %v", name, err)
			continue
		}
		if _, _, err := s.Compile(); err == nil {
			t.Errorf("%s: Compile succeeded, want error", name)
		}
	}
}

func TestDescribeShowsChain(t *testing.T) {
	s, err := Parse(chainedScript)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qdisc 2: parent 1:10 prio bands 3") {
		t.Fatalf("Describe missing chained qdisc:\n%s", out)
	}
}
