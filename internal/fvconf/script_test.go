package fvconf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseMotivationScript(t *testing.T) {
	s, err := Parse(MotivationScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.Handle != "1:" || s.Kind != "htb" || s.Dev != "nfp0" {
		t.Fatalf("qdisc parsed wrong: %+v", s)
	}
	if s.RootRateBps != 10e9 {
		t.Fatalf("root rate = %g, want 10e9", s.RootRateBps)
	}
	if s.DefaultClass != "1:30" {
		t.Fatalf("default = %q, want 1:30", s.DefaultClass)
	}
	if len(s.Classes) != 6 || len(s.Filters) != 4 {
		t.Fatalf("classes=%d filters=%d, want 6/4", len(s.Classes), len(s.Filters))
	}

	tr, rules, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Fatalf("tree size = %d, want 7", tr.Len())
	}
	ml, ok := tr.Lookup("1:50")
	if !ok || ml.GuaranteeBps != 2e9 || ml.Prio != 1 {
		t.Fatalf("ML class wrong: %+v", ml)
	}
	if len(ml.BorrowFrom) != 2 || ml.BorrowFrom[0].Name != "1:21" || ml.BorrowFrom[1].Name != "1:40" {
		t.Fatalf("ML borrow label wrong")
	}
	if rules[2].App != 2 || rules[2].Class != "1:50" {
		t.Fatalf("filter 2 wrong: %+v", rules[2])
	}
}

func TestParsePrioQdisc(t *testing.T) {
	s, err := Parse(`
qdisc add dev eth0 root handle 2: prio bands 3 rate 10gbit
class add dev eth0 parent 2: classid 2:1 prio 0
class add dev eth0 parent 2: classid 2:2 prio 1
filter add dev eth0 parent 2: app 0 flowid 2:1
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "prio" {
		t.Fatalf("kind = %q, want prio", s.Kind)
	}
	if _, _, err := s.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no qdisc":         `class add dev x parent 1: classid 1:1`,
		"garbage":          `qdisc frobnicate dev x`,
		"unknown object":   `gizmo add dev x`,
		"qdisc no rate":    `qdisc add dev x root handle 1: htb`,
		"qdisc no handle":  `qdisc add dev x root htb rate 1gbit`,
		"qdisc not root":   `qdisc add dev x handle 1: htb rate 1gbit`,
		"two qdiscs":       "qdisc add dev x root handle 1: htb rate 1gbit\nqdisc add dev x root handle 2: htb rate 1gbit",
		"class no id":      "qdisc add dev x root handle 1: htb rate 1gbit\nclass add dev x parent 1:",
		"class no parent":  "qdisc add dev x root handle 1: htb rate 1gbit\nclass add dev x classid 1:1",
		"bad rate":         `qdisc add dev x root handle 1: htb rate tengbit`,
		"bad prio":         "qdisc add dev x root handle 1: htb rate 1gbit\nclass add dev x parent 1: classid 1:1 prio abc",
		"bad weight":       "qdisc add dev x root handle 1: htb rate 1gbit\nclass add dev x parent 1: classid 1:1 weight w",
		"filter no flowid": "qdisc add dev x root handle 1: htb rate 1gbit\nfilter add dev x parent 1: app 0",
		"dangling option":  "qdisc add dev x root handle 1: htb rate 1gbit default",
		"unknown q option": `qdisc add dev x root handle 1: htb rate 1gbit frob 3`,
		"unknown c option": "qdisc add dev x root handle 1: htb rate 1gbit\nclass add dev x parent 1: classid 1:1 frob 3",
		"unknown f option": "qdisc add dev x root handle 1: htb rate 1gbit\nfilter add dev x frob 3 flowid 1:1",
	}
	for name, script := range cases {
		if _, err := Parse(script); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	// Filter to unknown class.
	s, err := Parse("qdisc add dev x root handle 1: htb rate 1gbit\n" +
		"class add dev x parent 1: classid 1:1\n" +
		"filter add dev x app 0 flowid 1:99")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Compile(); err == nil {
		t.Fatal("Compile with bad filter target succeeded")
	}

	// Default to unknown class.
	s, err = Parse("qdisc add dev x root handle 1: htb rate 1gbit default 1:99\n" +
		"class add dev x parent 1: classid 1:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Compile(); err == nil {
		t.Fatal("Compile with bad default class succeeded")
	}
}

func TestParseRateUnits(t *testing.T) {
	cases := map[string]float64{
		"10gbit":  10e9,
		"2.5gbit": 2.5e9,
		"500mbit": 500e6,
		"100kbit": 100e3,
		"1000bit": 1000,
		"1000":    1000,
		"1gbps":   8e9, // tc: bps = bytes/s
		"1mbps":   8e6,
		"1kbps":   8e3,
		"10bps":   80,
		"1tbit":   1e12,
	}
	for in, want := range cases {
		got, err := ParseRate(in)
		if err != nil {
			t.Errorf("ParseRate(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseRate(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "-1gbit", "1qbit"} {
		if _, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) succeeded, want error", bad)
		}
	}
}

func TestFormatRateRoundTrip(t *testing.T) {
	check := func(mbit uint16) bool {
		bps := float64(mbit) * 1e6
		if bps == 0 {
			return true
		}
		back, err := ParseRate(FormatRate(bps))
		return err == nil && back == bps
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	s, err := Parse(MotivationScript)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"qdisc 1: dev nfp0 htb rate 10gbit", "guarantee 2gbit", "borrow 1:21,1:40", "filter app 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q:\n%s", want, out)
		}
	}
}
