package fvconf

import (
	"fmt"
	"strings"
)

// MotivationScript is the paper's motivation policy (§II, Fig 2/6) as fv
// commands: 10Gbps egress; NC strictly prior; vm1 (KVS, ML) and vm2 (WS)
// share the rest 2:1; KVS prior to ML inside vm1; ML guaranteed 2Gbps.
// Apps map: 0=NC, 1=KVS, 2=ML, 3=WS.
const MotivationScript = `
# Motivation example (Fig 2/6): 10Gbps, NC strictly prior,
# vm1 : vm2 = 2 : 1, KVS prior to ML, ML guaranteed 2Gbps.
fv qdisc add dev nfp0 root handle 1: htb rate 10gbit default 1:30
fv class add dev nfp0 parent 1: classid 1:1 htb prio 0                        # NC
fv class add dev nfp0 parent 1: classid 1:2 htb prio 1                        # S1
fv class add dev nfp0 parent 1:2 classid 1:30 htb weight 1 borrow 1:21        # WS
fv class add dev nfp0 parent 1:2 classid 1:21 htb weight 2                    # S2
fv class add dev nfp0 parent 1:21 classid 1:40 htb prio 0 weight 1 borrow 1:30  # KVS
fv class add dev nfp0 parent 1:21 classid 1:50 htb prio 1 weight 1 guarantee 2gbit borrow 1:21,1:40  # ML
fv filter add dev nfp0 parent 1: protocol ip app 0 flowid 1:1
fv filter add dev nfp0 parent 1: protocol ip app 1 flowid 1:40
fv filter add dev nfp0 parent 1: protocol ip app 2 flowid 1:50
fv filter add dev nfp0 parent 1: protocol ip app 3 flowid 1:30
`

// FairQueueScript builds the Fig 11(b) policy: nApps equal-weight classes
// sharing `rate`, with full mutual borrowing so any single active app can
// drive the whole link.
func FairQueueScript(rate string, nApps int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fv qdisc add dev nfp0 root handle 1: htb rate %s default 1:10\n", rate)
	for i := 0; i < nApps; i++ {
		var lenders []string
		for j := 0; j < nApps; j++ {
			if j != i {
				lenders = append(lenders, classID(j))
			}
		}
		fmt.Fprintf(&sb, "fv class add dev nfp0 parent 1: classid %s htb weight 1 borrow %s\n",
			classID(i), strings.Join(lenders, ","))
	}
	for i := 0; i < nApps; i++ {
		fmt.Fprintf(&sb, "fv filter add dev nfp0 parent 1: protocol ip app %d flowid %s\n", i, classID(i))
	}
	return sb.String()
}

func classID(app int) string { return fmt.Sprintf("1:%d", 10*(app+1)) }

// WeightedFQScript builds the Fig 11(c)/Fig 12 policy on `rate`:
//
//	S0 ── App0 (1) ── S1 ── App1 (1) ── S2 ── App2 (1), App3 (1)
//
// App0:S1 = 1:1, App1:S2 = 1:1, App2:App3 = 1:1, with unweighted mutual
// borrowing between all leaves (the paper does not enforce weighted
// borrowing, so idle bandwidth is shared equally).
func WeightedFQScript(rate string) string {
	return fmt.Sprintf(`
fv qdisc add dev nfp0 root handle 1: htb rate %s default 1:10
fv class add dev nfp0 parent 1:  classid 1:10 htb weight 1 borrow 1:20,1:30,1:40   # App0
fv class add dev nfp0 parent 1:  classid 1:2  htb weight 1                          # S1
fv class add dev nfp0 parent 1:2 classid 1:20 htb weight 1 borrow 1:10,1:30,1:40   # App1
fv class add dev nfp0 parent 1:2 classid 1:3  htb weight 1                          # S2
fv class add dev nfp0 parent 1:3 classid 1:30 htb weight 1 borrow 1:10,1:20,1:40   # App2
fv class add dev nfp0 parent 1:3 classid 1:40 htb weight 1 borrow 1:10,1:20,1:30   # App3
fv filter add dev nfp0 parent 1: protocol ip app 0 flowid 1:10
fv filter add dev nfp0 parent 1: protocol ip app 1 flowid 1:20
fv filter add dev nfp0 parent 1: protocol ip app 2 flowid 1:30
fv filter add dev nfp0 parent 1: protocol ip app 3 flowid 1:40
`, rate)
}
