package stats

import (
	"math"
	"sort"
)

// LatencyRecorder collects one-way delay samples (nanoseconds) and
// reports summary statistics: mean, standard deviation (the paper's
// delay-variation claim), and percentiles.
//
// Samples are kept exactly; experiment runs are bounded so memory is not
// a concern, and exact percentiles make the regression assertions sharp.
type LatencyRecorder struct {
	samples []int64
	sorted  bool
	sum     float64
	sumSq   float64
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Record adds one delay sample in nanoseconds. Negative samples are
// ignored (a packet without both timestamps).
func (r *LatencyRecorder) Record(ns int64) {
	if ns < 0 {
		return
	}
	r.samples = append(r.samples, ns)
	r.sorted = false
	v := float64(ns)
	r.sum += v
	r.sumSq += v * v
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// MeanUs returns the mean delay in microseconds.
func (r *LatencyRecorder) MeanUs() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / float64(len(r.samples)) / 1e3
}

// StdUs returns the sample standard deviation in microseconds — the
// jitter figure of Fig 14.
func (r *LatencyRecorder) StdUs() float64 {
	n := float64(len(r.samples))
	if n < 2 {
		return 0
	}
	mean := r.sum / n
	variance := (r.sumSq - n*mean*mean) / (n - 1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / 1e3
}

// PercentileUs returns the p-th percentile (0 < p <= 100) in
// microseconds.
func (r *LatencyRecorder) PercentileUs(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if p <= 0 {
		return float64(r.samples[0]) / 1e3
	}
	if p >= 100 {
		return float64(r.samples[len(r.samples)-1]) / 1e3
	}
	idx := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return float64(r.samples[idx]) / 1e3
}

// MinUs and MaxUs return the extreme samples in microseconds.
func (r *LatencyRecorder) MinUs() float64 { return r.PercentileUs(0) }

// MaxUs returns the largest sample in microseconds.
func (r *LatencyRecorder) MaxUs() float64 { return r.PercentileUs(100) }
