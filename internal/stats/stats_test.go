package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughputSeriesBinning(t *testing.T) {
	m := NewThroughputMeter(1e9)
	m.Add("a", 125_000_000, 0)     // 1Gbit in second 0
	m.Add("a", 125_000_000, 5e8)   // same bin
	m.Add("a", 250_000_000, 1.5e9) // 2Gbit in second 1
	series := m.Series("a")
	if len(series) != 2 {
		t.Fatalf("series length = %d, want 2", len(series))
	}
	if series[0] != 2e9 || series[1] != 2e9 {
		t.Fatalf("series = %v, want [2e9 2e9]", series)
	}
}

func TestThroughputMeanWindow(t *testing.T) {
	m := NewThroughputMeter(1e9)
	for s := int64(0); s < 10; s++ {
		m.Add("a", 125_000_000, s*1e9) // 1Gbit every second
	}
	if got := m.MeanBps("a", 2e9, 5e9); math.Abs(got-1e9) > 1 {
		t.Fatalf("MeanBps = %g, want 1e9", got)
	}
	// Window beyond the data counts zeros.
	if got := m.MeanBps("a", 0, 20e9); math.Abs(got-0.5e9) > 1 {
		t.Fatalf("MeanBps over 20s = %g, want 0.5e9", got)
	}
	if m.MeanBps("a", 5e9, 5e9) != 0 {
		t.Fatal("empty window should be zero")
	}
	if m.MeanBps("missing", 0, 1e9) != 0 {
		t.Fatal("unknown series should be zero")
	}
}

func TestThroughputTotalAndNames(t *testing.T) {
	m := NewThroughputMeter(1e9)
	m.Add("b", 1000, 0)
	m.Add("a", 1000, 0)
	names := m.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
	if got := m.TotalBps(0, 1e9); math.Abs(got-16000) > 1e-9 {
		t.Fatalf("TotalBps = %g, want 16000", got)
	}
}

func TestThroughputNegativeTimeIgnored(t *testing.T) {
	m := NewThroughputMeter(1e9)
	m.Add("a", 1000, -5)
	if len(m.Series("a")) != 0 {
		t.Fatal("negative-time sample was recorded")
	}
}

func TestConformanceError(t *testing.T) {
	if ConformanceError(9e9, 10e9) != 0.1 {
		t.Fatal("10% error expected")
	}
	if ConformanceError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(ConformanceError(1, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
}

func TestLatencyBasicStats(t *testing.T) {
	r := NewLatencyRecorder()
	for _, v := range []int64{1000, 2000, 3000, 4000, 5000} {
		r.Record(v)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := r.MeanUs(); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("MeanUs = %g, want 3", got)
	}
	// Sample stddev of 1..5 µs = sqrt(2.5) ≈ 1.581.
	if got := r.StdUs(); math.Abs(got-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("StdUs = %g, want %g", got, math.Sqrt(2.5))
	}
	if r.MinUs() != 1 || r.MaxUs() != 5 {
		t.Fatalf("min/max = %g/%g", r.MinUs(), r.MaxUs())
	}
}

func TestLatencyPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	for i := int64(1); i <= 100; i++ {
		r.Record(i * 1000)
	}
	if got := r.PercentileUs(50); got != 50 {
		t.Fatalf("p50 = %g, want 50", got)
	}
	if got := r.PercentileUs(99); got != 99 {
		t.Fatalf("p99 = %g, want 99", got)
	}
	if got := r.PercentileUs(100); got != 100 {
		t.Fatalf("p100 = %g, want 100", got)
	}
}

func TestLatencyRecordAfterPercentile(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(5000)
	_ = r.PercentileUs(50)
	r.Record(1000) // must re-sort
	if got := r.PercentileUs(0); got != 1 {
		t.Fatalf("min after re-record = %g, want 1", got)
	}
}

func TestLatencyEmptyAndNegative(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(-5)
	if r.Count() != 0 || r.MeanUs() != 0 || r.StdUs() != 0 || r.PercentileUs(99) != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}

// Property: percentiles are monotonically non-decreasing in p.
func TestLatencyPercentileMonotone(t *testing.T) {
	check := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		for _, s := range samples {
			r.Record(int64(s % 1_000_000))
		}
		prev := -1.0
		for p := 0.0; p <= 100; p += 5 {
			v := r.PercentileUs(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGbpsFormat(t *testing.T) {
	if Gbps(12.345e9) != "12.35" {
		t.Fatalf("Gbps = %q", Gbps(12.345e9))
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal allocations = %g, want 1", got)
	}
	// One user hogging everything among n: index = 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog = %g, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
	// 2:1 split of two: (3)²/(2·5) = 0.9.
	if got := JainIndex([]float64{2, 1}); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("2:1 = %g, want 0.9", got)
	}
}

func TestMeanBpsProRatesPartialBins(t *testing.T) {
	m := NewThroughputMeter(1e9)
	m.Add("a", 125_000_000, 0)   // 1Gbit in second 0
	m.Add("a", 125_000_000, 1e9) // 1Gbit in second 1
	// Window [0.5s, 1.5s): half of each bin → 1Gbit over 1s.
	if got := m.MeanBps("a", 5e8, 15e8); math.Abs(got-1e9) > 1 {
		t.Fatalf("pro-rated mean = %g, want 1e9", got)
	}
	// Window [0, 0.25s): quarter of bin 0 → 0.25Gbit over 0.25s = 1Gbps.
	if got := m.MeanBps("a", 0, 25e7); math.Abs(got-1e9) > 1 {
		t.Fatalf("quarter-bin mean = %g, want 1e9", got)
	}
}
