// Package stats provides the measurement instruments shared by every
// experiment: binned throughput time series (the Gbps-over-time curves of
// Fig 11), latency recorders with percentile and jitter reporting
// (Fig 14), and rate-conformance summaries (§IV-D).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ThroughputMeter accumulates delivered bytes into fixed-width time bins
// per series (one series per application/class), producing the
// throughput-over-time curves the paper plots.
type ThroughputMeter struct {
	binNs  int64
	series map[string][]int64 // bytes per bin
}

// NewThroughputMeter returns a meter with the given bin width in
// nanoseconds (e.g. 1e9 for one-second bins).
func NewThroughputMeter(binNs int64) *ThroughputMeter {
	if binNs <= 0 {
		binNs = 1e9
	}
	return &ThroughputMeter{binNs: binNs, series: make(map[string][]int64)}
}

// Add records bytes delivered for a series at virtual time atNs.
func (m *ThroughputMeter) Add(series string, bytes int, atNs int64) {
	if atNs < 0 {
		return
	}
	bin := int(atNs / m.binNs)
	s := m.series[series]
	for len(s) <= bin {
		s = append(s, 0)
	}
	s[bin] += int64(bytes)
	m.series[series] = s
}

// BinNs returns the configured bin width.
func (m *ThroughputMeter) BinNs() int64 { return m.binNs }

// Series returns the throughput of one series in bits/second per bin.
func (m *ThroughputMeter) Series(series string) []float64 {
	raw := m.series[series]
	out := make([]float64, len(raw))
	secs := float64(m.binNs) / 1e9
	for i, b := range raw {
		out[i] = float64(b) * 8 / secs
	}
	return out
}

// Names returns the series names in sorted order.
func (m *ThroughputMeter) Names() []string {
	names := make([]string, 0, len(m.series))
	for k := range m.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MeanBps returns the mean rate of a series between the two times in
// bits/second. Bins partially covered by the window contribute
// pro-rata, so windows need not align with bin boundaries. Bins outside
// the recorded range count as zero.
func (m *ThroughputMeter) MeanBps(series string, fromNs, toNs int64) float64 {
	if toNs <= fromNs {
		return 0
	}
	raw := m.series[series]
	first := int(fromNs / m.binNs)
	last := int((toNs - 1) / m.binNs)
	var bytes float64
	for i := first; i <= last && i < len(raw); i++ {
		if i < 0 {
			continue
		}
		binStart := int64(i) * m.binNs
		binEnd := binStart + m.binNs
		overlap := min(binEnd, toNs) - max(binStart, fromNs)
		bytes += float64(raw[i]) * float64(overlap) / float64(m.binNs)
	}
	return bytes * 8 / (float64(toNs-fromNs) / 1e9)
}

// TotalBps returns the aggregate mean across all series over a window.
func (m *ThroughputMeter) TotalBps(fromNs, toNs int64) float64 {
	var total float64
	for name := range m.series {
		total += m.MeanBps(name, fromNs, toNs)
	}
	return total
}

// Gbps formats a bits/second value as Gbps with two decimals.
func Gbps(bps float64) string { return fmt.Sprintf("%.2f", bps/1e9) }

// ConformanceError returns the relative error of a measured rate against
// its target: |measured−target|/target. A zero target with nonzero
// measurement reports +Inf.
func ConformanceError(measuredBps, targetBps float64) float64 {
	if targetBps == 0 {
		if measuredBps == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(measuredBps-targetBps) / targetBps
}

// JainIndex computes Jain's fairness index over per-entity allocations:
// (Σx)² / (n·Σx²). 1.0 is perfectly fair; 1/n is maximally unfair.
// Entities with zero allocation count toward n.
func JainIndex(alloc []float64) float64 {
	if len(alloc) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range alloc {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(alloc)) * sumSq)
}
