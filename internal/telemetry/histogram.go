package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with lock-free Observe. Bucket
// bounds are set at construction (no dynamic resizing — the hot path
// never allocates); an implicit +Inf bucket catches the tail. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; non-cumulative per bucket
	sum    atomic.Uint64  // float64 bits, CAS-added
	count  atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample. Lock-free, allocation-free, nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are small (≤ ~20) and the scan is
	// branch-predictable, beating binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns bounds, cumulative counts (per bound, then +Inf), sum
// and total count, in Prometheus exposition shape.
func (h *Histogram) snapshot() (bounds []float64, cumulative []int64, sum float64, count int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative, h.Sum(), h.count.Load()
}

// DurationBucketsNs is the default bucket layout for nanosecond-denominated
// latency histograms (update-subprocedure durations): 250ns to ~1ms in
// powers of two — the range between "one cache miss" and "someone
// descheduled the goroutine".
var DurationBucketsNs = []float64{
	250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000,
	64_000, 128_000, 256_000, 512_000, 1_024_000,
}
