package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Metric families are grouped with one
// HELP/TYPE header each; output order is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.collect() {
		if e.name != lastFamily {
			lastFamily = e.name
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case KindHistogram:
			writePromHistogram(bw, e)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", e.name, promLabels(e.labels, "", 0), promFloat(e.value))
		}
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, e snapshotEntry) {
	for i, b := range e.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, promLabels(e.labels, "le", b), e.counts[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, promLabels(e.labels, "le", math.Inf(1)), e.counts[len(e.counts)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", e.name, promLabels(e.labels, "", 0), promFloat(e.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", e.name, promLabels(e.labels, "", 0), e.count)
}

// promLabels renders a label set, optionally appending an `le` bound.
func promLabels(labels []Label, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(le)
		sb.WriteString(`="`)
		sb.WriteString(promFloat(bound))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// jsonMetric is the JSON snapshot shape of one metric instance.
type jsonMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`

	Buckets []jsonBucket `json:"buckets,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Count   *int64       `json:"count,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"` // upper bound ("+Inf" for the tail)
	Count int64  `json:"count"`
}

// WriteJSON writes the registry as one JSON document:
// {"metrics": [...]}. Counters and gauges carry "value"; histograms carry
// cumulative "buckets", "sum", and "count".
func (r *Registry) WriteJSON(w io.Writer) error {
	entries := r.collect()
	metrics := make([]jsonMetric, 0, len(entries))
	for _, e := range entries {
		jm := jsonMetric{Name: e.name, Kind: e.kind.String()}
		if len(e.labels) > 0 {
			jm.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		if e.kind == KindHistogram {
			for i, b := range e.bounds {
				jm.Buckets = append(jm.Buckets, jsonBucket{LE: promFloat(b), Count: e.counts[i]})
			}
			jm.Buckets = append(jm.Buckets, jsonBucket{LE: "+Inf", Count: e.counts[len(e.counts)-1]})
			sum, count := e.sum, e.count
			jm.Sum, jm.Count = &sum, &count
		} else {
			v := e.value
			jm.Value = &v
		}
		metrics = append(metrics, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonMetric `json:"metrics"`
	}{metrics})
}

// Dump renders the Prometheus exposition as a string, for headless runs
// and logs.
func (r *Registry) Dump() string {
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	return sb.String()
}

// Handler returns an http.Handler serving the registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
//	/healthz       liveness probe
//
// The handler is safe to serve while the datapath runs: collection reads
// only atomics and Func callbacks.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
