// Package telemetry is FlowValve's observability subsystem: a
// zero-allocation metrics registry, a sampled decision tracer, and
// Prometheus/JSON exporters.
//
// The design constraint is the same one that shapes the scheduler itself
// (and that Eiffel makes explicit for software packet schedulers): the
// hot path budget is a handful of nanoseconds per packet. Three rules
// follow:
//
//   - Hot-path instruments (Counter.Add, Gauge.Set, Histogram.Observe)
//     are lock-free atomics on cache-line-padded, sharded slots and never
//     allocate. Every method is nil-receiver safe, so disabled telemetry
//     compiles down to one predictable branch.
//
//   - State the datapath already maintains (the scheduler's per-class
//     atomic counters, token levels, rate estimates) is exported through
//     *Func collectors read at scrape time — continuous observability at
//     exactly zero added hot-path cost.
//
//   - Everything heavier (registration, exposition, trace draining) runs
//     off the packet path under a registry mutex the datapath never
//     touches.
//
// Registration is get-or-create keyed by (name, labels): asking for the
// same counter twice returns the same instance (so counters survive a
// policy Swap monotonically), while re-registering a Func collector
// replaces its callback (so gauge readers follow the newest scheduler
// generation).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Label is one key=value pair attached to a metric instance.
type Label struct {
	Key   string
	Value string
}

// Kind enumerates the metric types a registry can hold.
type Kind int

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

const cacheLine = 64

// counterShard is one padded counter slot: the padding keeps two shards
// out of the same cache line so cores incrementing different shards never
// false-share.
type counterShard struct {
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// counterShards is the shard fan-out (power of two). 16 shards cover the
// NP model's worker-goroutine counts without measurable collision cost.
const counterShards = 16

// shardIndex derives a cheap shard hint from the address of a stack
// variable: goroutine stacks are disjoint, so concurrent writers spread
// across shards. It is only a hint — any value is correct, collisions
// merely contend.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (counterShards - 1)
}

// Counter is a monotonically increasing sharded atomic counter. The zero
// value is usable; a nil *Counter is a no-op.
type Counter struct {
	shards [counterShards]counterShard
}

// Add increments the counter by n. Lock-free, allocation-free, nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.shards[shardIndex()].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous float64 value. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set publishes v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (CAS loop; gauges are updated at event
// rate, not packet rate).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// entry is one registered metric instance.
type entry struct {
	name   string
	help   string
	kind   Kind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// fn, when non-nil, backs the value (Func collectors). Guarded by
	// the registry mutex: registration and collection both hold it.
	fn func() float64
}

// value reads the entry's scalar (counters and gauges only).
func (e *entry) value() float64 {
	if e.fn != nil {
		return e.fn()
	}
	switch e.kind {
	case KindCounter:
		return float64(e.counter.Value())
	case KindGauge:
		return e.gauge.Value()
	}
	return 0
}

// Registry holds a process's metric instances. A nil *Registry hands out
// nil metrics, whose methods are all no-ops — callers never need to
// branch on whether telemetry is enabled.
type Registry struct {
	mu    sync.Mutex
	order []*entry
	byKey map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// key builds the identity of a metric instance. Labels are sorted so the
// same set in any order names the same instance.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	k := name + "{"
	for i, l := range labels {
		if i > 0 {
			k += ","
		}
		k += l.Key + "=" + l.Value
	}
	return k + "}"
}

// sortLabels returns a sorted copy.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns the entry for (name, labels), creating it with mk on first
// use. Kind mismatches are programming errors and panic.
func (r *Registry) get(name, help string, kind Kind, labels []Label, mk func(*entry)) *entry {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", k, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind, labels: labels}
	mk(e)
	r.byKey[k] = e
	r.order = append(r.order, e)
	return e
}

// Counter returns the counter named name with the given labels, creating
// it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, KindCounter, labels, func(e *entry) {
		e.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, KindGauge, labels, func(e *entry) {
		e.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the histogram named name with the given bucket upper
// bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, KindHistogram, labels, func(e *entry) {
		e.hist = newHistogram(buckets)
	}).hist
}

// CounterFunc registers (or replaces) a callback-backed counter: fn is
// read at scrape time, so exporting state the datapath already counts
// costs the hot path nothing. fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.get(name, help, KindCounter, labels, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.get(name, help, KindGauge, labels, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// snapshotEntry is one collected sample set.
type snapshotEntry struct {
	name   string
	help   string
	kind   Kind
	labels []Label

	value float64 // counters and gauges

	// histogram samples
	bounds []float64
	counts []int64 // cumulative per bound, then +Inf
	sum    float64
	count  int64
}

// collect materializes every metric under the registry lock, sorted by
// name then label values so exposition is deterministic.
func (r *Registry) collect() []snapshotEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]snapshotEntry, 0, len(r.order))
	for _, e := range r.order {
		se := snapshotEntry{name: e.name, help: e.help, kind: e.kind, labels: e.labels}
		if e.kind == KindHistogram {
			se.bounds, se.counts, se.sum, se.count = e.hist.snapshot()
		} else {
			se.value = e.value()
		}
		out = append(out, se)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return key(out[i].name, out[i].labels) < key(out[j].name, out[j].labels)
	})
	return out
}
