package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAddAndValue(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts_total", "packets")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
	// Get-or-create returns the same instance.
	if again := r.Counter("pkts_total", "packets"); again != c {
		t.Fatal("second Counter call returned a different instance")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("Value = %v, want 6.5", got)
	}
}

func TestLabelsIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "", Label{"class", "1:40"}, Label{"app", "kvs"})
	b := r.Counter("m", "", Label{"app", "kvs"}, Label{"class", "1:40"})
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	c := r.Counter("m", "", Label{"class", "1:50"})
	if a == c {
		t.Fatal("different labels returned the same instance")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", DurationBucketsNs)
	r.CounterFunc("d", "", func() float64 { return 1 })
	r.GaugeFunc("e", "", func() float64 { return 1 })
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics reported nonzero values")
	}
	if got := r.collect(); got != nil {
		t.Fatalf("nil registry collect = %v, want nil", got)
	}
	if r.Dump() != "" {
		t.Fatal("nil registry Dump non-empty")
	}
}

func TestFuncCollectorsReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("theta", "", func() float64 { return 1 })
	r.GaugeFunc("theta", "", func() float64 { return 2 })
	out := r.Dump()
	if !strings.Contains(out, "theta 2") {
		t.Fatalf("replaced GaugeFunc not in effect:\n%s", out)
	}
	r.CounterFunc("fwd_total", "", func() float64 { return 7 }, Label{"class", "a"})
	if !strings.Contains(r.Dump(), `fwd_total{class="a"} 7`) {
		t.Fatalf("CounterFunc missing:\n%s", r.Dump())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 50, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5565 {
		t.Fatalf("Sum = %v, want 5565", got)
	}
	bounds, cum, sum, count := h.snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d counts", len(bounds), len(cum))
	}
	// 5,10 ≤ 10; 50 ≤ 100; 500 ≤ 1000; 5000 → +Inf.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if sum != 5565 || count != 5 {
		t.Fatalf("snapshot sum=%v count=%d", sum, count)
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending buckets did not panic")
		}
	}()
	newHistogram([]float64{10, 5})
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBucketsNs)
	tr := NewTracer(1, 1024)
	ev := Event{AtNs: 1, Class: "leaf", Size: 64, Verdict: TraceForward}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(3)
		h.Observe(500)
		tr.Record(ev)
	}); n != 0 {
		t.Fatalf("hot path allocated %.1f times per op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "", DurationBucketsNs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xffff))
	}
}
