package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"flowvalve/internal/stats"
)

// Trace verdicts, mirroring the scheduler's decision in one byte.
const (
	TraceForward uint8 = iota + 1
	TraceDrop
)

// Event is one sampled scheduling decision. Strings are class names that
// live for the scheduler's lifetime — recording copies only the string
// header, never the bytes, so Record/Write stay allocation-free.
type Event struct {
	// AtNs is the scheduler clock at decision time (virtual ns under
	// the DES, wall ns in a live datapath).
	AtNs int64
	// Class is the leaf class the packet matched.
	Class string
	// Lender names the shadow bucket that admitted a borrowed packet
	// ("" otherwise).
	Lender string
	// QueueDepth is the leaf bucket's token level (bytes) just after
	// the decision — the emulated per-class queue headroom.
	QueueDepth int64
	// Size is the packet's charged size in bytes.
	Size int32
	// Verdict is TraceForward or TraceDrop.
	Verdict uint8
	// Borrowed / Marked mirror the decision flags.
	Borrowed bool
	Marked   bool
}

// traceShard is one writer lane: a power-of-two ring plus the lane's
// sampling counter. The shard is sized and padded so that lanes do not
// false-share. Writers are expected to map predominantly one-to-one onto
// shards (the stack-address hint); mu makes the occasional overlap — and
// the drainer — safe without slowing the unsampled path, which touches
// only `seen`.
type traceShard struct {
	seen atomic.Uint64
	_    [cacheLine - 8]byte

	mu   sync.Mutex
	ring []Event
	pos  uint64 // total writes ever; ring index is pos & mask
}

// Tracer samples 1-in-N scheduling decisions into per-shard power-of-two
// ring buffers. Forward and drop events occupy disjoint lane groups: the
// two verdicts are independently counted streams (the scheduler's
// per-class forward and drop ordinals), so they must not compete for
// ring slots — a drop storm filling the rings would silently evict the
// forward samples it is most interesting to compare against. A nil
// *Tracer is a no-op.
type Tracer struct {
	mask   uint64 // sample when seq & mask == 0
	rmask  uint64 // ring index mask
	shards []traceShard
}

// tracerLanes is the writer-lane count per verdict group; forward and
// drop each get their own group of lanes (tracerGroups total).
const (
	tracerLanes  = 8
	tracerGroups = 2
	tracerShards = tracerLanes * tracerGroups
)

// laneFor maps a verdict and a writer hint to a shard index: drops land
// in the second lane group, everything else in the first.
func laneFor(verdict uint8, hint uintptr) int {
	group := 0
	if verdict == TraceDrop {
		group = 1
	}
	return group*tracerLanes + int(hint&(tracerLanes-1))
}

// nextPow2 rounds n up to a power of two (min 1).
func nextPow2(n int) uint64 {
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return p
}

// NewTracer returns a tracer sampling one event in sampleEvery (rounded
// up to a power of two; ≤1 records everything) with bufferSize ring
// slots per verdict group (rounded up; split across that group's lanes).
// Each verdict stream gets the full configured capacity so a storm of
// one verdict can never shrink the other's retention window.
func NewTracer(sampleEvery, bufferSize int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if bufferSize < tracerLanes {
		bufferSize = 4096
	}
	perShard := nextPow2((bufferSize + tracerLanes - 1) / tracerLanes)
	t := &Tracer{
		mask:   nextPow2(sampleEvery) - 1,
		rmask:  perShard - 1,
		shards: make([]traceShard, tracerShards),
	}
	for i := range t.shards {
		t.shards[i].ring = make([]Event, perShard)
	}
	return t
}

// SampleEvery returns the effective sampling period (a power of two).
func (t *Tracer) SampleEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.mask + 1
}

// ShouldSample reports whether the seq-th event of an externally counted
// stream falls on the sampling lattice. Callers that already maintain a
// per-stream packet counter (the scheduler's per-class forward/drop
// counters) use this to make the unsampled path a single mask test with
// no additional atomic.
func (t *Tracer) ShouldSample(seq uint64) bool {
	return t != nil && seq&t.mask == 0
}

// Record offers one event to the tracer, applying 1-in-N sampling with
// the tracer's own sharded counters. Unsampled events cost one sharded
// atomic increment.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	sh := &t.shards[laneFor(ev.Verdict, uintptr(shardIndex()))]
	if (sh.seen.Add(1)-1)&t.mask != 0 {
		return
	}
	t.writeShard(sh, ev)
}

// Write stores one pre-sampled event (pair with ShouldSample).
func (t *Tracer) Write(ev Event) {
	if t == nil {
		return
	}
	t.writeShard(&t.shards[laneFor(ev.Verdict, uintptr(shardIndex()))], ev)
}

func (t *Tracer) writeShard(sh *traceShard, ev Event) {
	sh.mu.Lock()
	sh.ring[sh.pos&t.rmask] = ev
	sh.pos++
	sh.mu.Unlock()
}

// Seen returns how many events were offered via Record.
func (t *Tracer) Seen() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.shards {
		n += t.shards[i].seen.Load()
	}
	return n
}

// Drain removes and returns all buffered events, oldest first (merged
// across shards by timestamp). Events overwritten by ring wrap-around are
// gone — the tracer favors recency, like the NP's capture rings.
func (t *Tracer) Drain() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := sh.pos
		if n > t.rmask+1 {
			n = t.rmask + 1
		}
		start := sh.pos - n
		for j := uint64(0); j < n; j++ {
			out = append(out, sh.ring[(start+j)&t.rmask])
		}
		sh.pos = 0
		sh.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtNs < out[j].AtNs })
	return out
}

// DrainToMeter drains the tracer into a throughput meter, one series per
// "trace.<verdict>.<class>" (e.g. "trace.forward.1:40"). Each sampled
// event is weighted by the sampling period so the series approximate the
// true byte rates, making the trace directly comparable with the
// delivered-throughput series the experiment harness records. Returns the
// number of events drained.
func DrainToMeter(t *Tracer, m *stats.ThroughputMeter) int {
	events := t.Drain()
	if m == nil {
		return len(events)
	}
	weight := int(t.SampleEvery())
	if weight < 1 {
		weight = 1
	}
	for _, ev := range events {
		verdict := "forward"
		if ev.Verdict == TraceDrop {
			verdict = "drop"
		}
		m.Add("trace."+verdict+"."+ev.Class, int(ev.Size)*weight, ev.AtNs)
	}
	return len(events)
}
