package telemetry

import (
	"sync"
	"testing"

	"flowvalve/internal/stats"
)

func TestTracerSampling(t *testing.T) {
	// One goroutine writes to one shard: size the buffer so a single
	// shard's ring (bufferSize/8 slots) holds all sampled events.
	tr := NewTracer(4, 8*1024)
	if got := tr.SampleEvery(); got != 4 {
		t.Fatalf("SampleEvery = %d, want 4", got)
	}
	for i := 0; i < 4000; i++ {
		tr.Record(Event{AtNs: int64(i), Class: "a", Verdict: TraceForward})
	}
	if got := tr.Seen(); got != 4000 {
		t.Fatalf("Seen = %d, want 4000", got)
	}
	events := tr.Drain()
	if len(events) != 1000 {
		t.Fatalf("drained %d events, want 1000 (1-in-4 of 4000)", len(events))
	}
	// Drain empties the rings.
	if again := tr.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events", len(again))
	}
}

func TestTracerSampleEveryRoundsUp(t *testing.T) {
	if got := NewTracer(100, 1024).SampleEvery(); got != 128 {
		t.Fatalf("SampleEvery(100) = %d, want 128", got)
	}
	if got := NewTracer(0, 1024).SampleEvery(); got != 1 {
		t.Fatalf("SampleEvery(0) = %d, want 1", got)
	}
}

func TestTracerShouldSampleWrite(t *testing.T) {
	tr := NewTracer(8, 1024)
	var written int
	for seq := uint64(0); seq < 64; seq++ {
		if tr.ShouldSample(seq) {
			tr.Write(Event{AtNs: int64(seq), Class: "x", Verdict: TraceDrop})
			written++
		}
	}
	if written != 8 {
		t.Fatalf("sampled %d of 64 at 1-in-8", written)
	}
	events := tr.Drain()
	if len(events) != 8 {
		t.Fatalf("drained %d, want 8", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].AtNs < events[i-1].AtNs {
			t.Fatal("drain not sorted by timestamp")
		}
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(1, tracerShards*4) // 4 slots per shard
	for i := 0; i < 10000; i++ {
		tr.Record(Event{AtNs: int64(i)})
	}
	events := tr.Drain()
	if len(events) == 0 || len(events) > tracerShards*4 {
		t.Fatalf("drained %d events from a %d-slot tracer", len(events), tracerShards*4)
	}
	// Recency: the newest event must have survived the wrap.
	newest := events[len(events)-1].AtNs
	if newest != 9999 {
		t.Fatalf("newest surviving event AtNs = %d, want 9999", newest)
	}
}

// Forward and drop events are independently counted streams whose
// sampled ordinals land on the same lattice; the tracer must keep them
// in disjoint lanes so a drop storm cannot evict the forward samples.
func TestTracerDropStormKeepsForwardSamples(t *testing.T) {
	tr := NewTracer(1, tracerLanes*4) // record everything, tiny rings
	// A handful of forward samples, then a storm of drops large enough
	// to wrap every ring many times over.
	for i := 0; i < 4; i++ {
		tr.Write(Event{AtNs: int64(i), Class: "f", Verdict: TraceForward})
	}
	for i := 0; i < 10_000; i++ {
		tr.Write(Event{AtNs: int64(100 + i), Class: "d", Verdict: TraceDrop})
	}
	var fwd, drop int
	for _, ev := range tr.Drain() {
		switch ev.Verdict {
		case TraceForward:
			fwd++
		case TraceDrop:
			drop++
		}
	}
	if fwd != 4 {
		t.Fatalf("forward samples surviving the drop storm = %d, want 4", fwd)
	}
	if drop == 0 {
		t.Fatal("no drop samples retained")
	}
}

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{})
	tr.Write(Event{})
	if tr.ShouldSample(0) {
		t.Fatal("nil tracer sampled")
	}
	if tr.Drain() != nil || tr.Seen() != 0 || tr.SampleEvery() != 0 {
		t.Fatal("nil tracer reported state")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(2, 1<<14)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tr.Record(Event{AtNs: int64(w*5000 + i), Class: "c"})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Drain()
		}
	}()
	wg.Wait()
	<-done
	if tr.Seen() != 40000 {
		t.Fatalf("Seen = %d, want 40000", tr.Seen())
	}
}

func TestDrainToMeter(t *testing.T) {
	tr := NewTracer(2, 1024)
	// Pre-sampled writes: every event lands in the ring.
	tr.Write(Event{AtNs: 0, Class: "a", Size: 100, Verdict: TraceForward})
	tr.Write(Event{AtNs: 1e9, Class: "a", Size: 100, Verdict: TraceDrop})
	m := stats.NewThroughputMeter(1e9)
	if n := DrainToMeter(tr, m); n != 2 {
		t.Fatalf("drained %d, want 2", n)
	}
	// 100 bytes weighted by the sampling period (2) in a 1s bin → 1600 bps.
	fwd := m.Series("trace.forward.a")
	if len(fwd) == 0 || fwd[0] != 1600 {
		t.Fatalf("forward series = %v, want [1600 ...]", fwd)
	}
	drop := m.Series("trace.drop.a")
	if len(drop) < 2 || drop[1] != 1600 {
		t.Fatalf("drop series = %v, want bin1 = 1600", drop)
	}
	// Nil meter still drains.
	tr.Write(Event{AtNs: 2, Class: "b", Size: 1})
	if n := DrainToMeter(tr, nil); n != 1 {
		t.Fatalf("nil-meter drain = %d, want 1", n)
	}
}

func BenchmarkTracerRecordUnsampled(b *testing.B) {
	tr := NewTracer(256, 4096)
	ev := Event{AtNs: 1, Class: "leaf", Size: 64, Verdict: TraceForward}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ev)
	}
}
