package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("fv_fwd_packets_total", "Forwarded packets.", Label{"class", "1:40"}).Add(42)
	r.Gauge("fv_theta_bps", "Granted rate.", Label{"class", `va"l\ue`}).Set(2e9)
	h := r.Histogram("fv_update_duration_ns", "Update latency.", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	r.GaugeFunc("fv_backlog_packets", "Backlog.", func() float64 { return 7 })
	return r
}

func TestWritePrometheus(t *testing.T) {
	out := populated().Dump()
	for _, want := range []string{
		"# HELP fv_fwd_packets_total Forwarded packets.",
		"# TYPE fv_fwd_packets_total counter",
		`fv_fwd_packets_total{class="1:40"} 42`,
		"# TYPE fv_theta_bps gauge",
		`fv_theta_bps{class="va\"l\\ue"} 2e+09`,
		"# TYPE fv_update_duration_ns histogram",
		`fv_update_duration_ns_bucket{le="100"} 1`,
		`fv_update_duration_ns_bucket{le="1000"} 2`,
		`fv_update_duration_ns_bucket{le="+Inf"} 3`,
		"fv_update_duration_ns_sum 5550",
		"fv_update_duration_ns_count 3",
		"fv_backlog_packets 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with multiple children.
	r := populated()
	r.Counter("fv_fwd_packets_total", "Forwarded packets.", Label{"class", "1:50"}).Add(1)
	out = r.Dump()
	if strings.Count(out, "# TYPE fv_fwd_packets_total counter") != 1 {
		t.Errorf("duplicate TYPE headers:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := populated().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []jsonMetric `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	byName := map[string]jsonMetric{}
	for _, m := range doc.Metrics {
		byName[m.Name] = m
	}
	c := byName["fv_fwd_packets_total"]
	if c.Kind != "counter" || c.Value == nil || *c.Value != 42 || c.Labels["class"] != "1:40" {
		t.Fatalf("counter snapshot wrong: %+v", c)
	}
	h := byName["fv_update_duration_ns"]
	if h.Kind != "histogram" || h.Count == nil || *h.Count != 3 || len(h.Buckets) != 3 {
		t.Fatalf("histogram snapshot wrong: %+v", h)
	}
	if h.Buckets[2].LE != "+Inf" || h.Buckets[2].Count != 3 {
		t.Fatalf("histogram +Inf bucket wrong: %+v", h.Buckets)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(populated().Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "fv_fwd_packets_total") || !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics: ct=%q body=%q", ct, body[:min(120, len(body))])
	}
	body, ct = get("/metrics.json")
	if !strings.Contains(body, `"metrics"`) || !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics.json: ct=%q", ct)
	}
	body, _ = get("/healthz")
	if !strings.Contains(body, "ok") {
		t.Fatalf("/healthz body = %q", body)
	}
}

func TestPromFloat(t *testing.T) {
	if promFloat(math.Inf(1)) != "+Inf" || promFloat(math.Inf(-1)) != "-Inf" {
		t.Fatal("infinity rendering wrong")
	}
	if promFloat(1.5) != "1.5" {
		t.Fatalf("promFloat(1.5) = %q", promFloat(1.5))
	}
}
