package tcp

import "flowvalve/internal/packet"

// Set routes NIC/qdisc delivery and drop callbacks back to the owning
// flows. Scenario builders register every flow once and wire the Set's
// methods into the transport callbacks.
type Set struct {
	flows map[packet.FlowID]*Flow
}

// NewSet returns an empty flow set.
func NewSet() *Set {
	return &Set{flows: make(map[packet.FlowID]*Flow)}
}

// Add registers a flow. Re-registering the same ID replaces the entry.
func (s *Set) Add(f *Flow) { s.flows[f.ID()] = f }

// Get returns the flow with the given ID.
func (s *Set) Get(id packet.FlowID) (*Flow, bool) {
	f, ok := s.flows[id]
	return f, ok
}

// Len returns the number of registered flows.
func (s *Set) Len() int { return len(s.flows) }

// OnDeliver dispatches a delivered packet to its flow. Packets of
// unregistered flows (open-loop generator traffic) are ignored.
func (s *Set) OnDeliver(p *packet.Packet) {
	if f, ok := s.flows[p.Flow]; ok {
		f.OnDelivered(p)
	}
}

// OnDrop dispatches a dropped packet to its flow.
func (s *Set) OnDrop(p *packet.Packet) {
	if f, ok := s.flows[p.Flow]; ok {
		f.OnDropped(p)
	}
}
