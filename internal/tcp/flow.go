// Package tcp models TCP senders as AIMD (Reno-style) congestion-control
// loops driven by the discrete-event engine. The paper's evaluation uses
// iperf3/mTCP TCP traffic; the figures' shapes (flows converging onto the
// scheduler-enforced shares) come from TCP reacting to the specialized
// tail drop, which is exactly the feedback loop reproduced here: a
// window-limited sender, ACK clocking with a configurable base RTT,
// multiplicative decrease at most once per flight on loss, and slow
// start / congestion avoidance growth.
//
// Segment sizes are configurable: behaviour experiments use TSO-style
// super-segments (the host kernel hands the NIC 16–64KB segments; all
// FlowValve token math is byte-denominated, so shares are unchanged while
// the event count drops by an order of magnitude), and packet-rate
// experiments use wire-sized frames.
package tcp

import (
	"fmt"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// Config tunes a flow. Zero fields take defaults.
type Config struct {
	// SegBytes is the segment (frame) size handed to the NIC.
	SegBytes int
	// BaseRTTNs is the path round-trip time excluding NIC/qdisc
	// queueing (propagation + receiver turnaround).
	BaseRTTNs int64
	// InitCwnd is the initial congestion window in segments.
	InitCwnd float64
	// MaxCwnd caps the window in segments (receiver window stand-in).
	MaxCwnd float64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.SegBytes <= 0 {
		c.SegBytes = 1518
	}
	if c.BaseRTTNs <= 0 {
		c.BaseRTTNs = 200_000 // 200µs datacenter-ish RTT
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 10
	}
	if c.MaxCwnd <= 0 {
		c.MaxCwnd = 1 << 20
	}
	return c
}

// Flow is one TCP connection.
type Flow struct {
	id   packet.FlowID
	app  packet.AppID
	cfg  Config
	eng  *sim.Engine
	pkts *packet.Alloc
	send func(*packet.Packet)

	running  bool
	cwnd     float64
	ssthresh float64
	inflight int
	nextSeq  uint64
	// recoverSeq implements "one multiplicative decrease per flight":
	// losses of packets sent before this sequence are part of an
	// already-handled congestion event.
	recoverSeq uint64

	// Cumulative counters.
	sentPkts  uint64
	acked     uint64
	lost      uint64
	marked    uint64
	ackedByte uint64
}

// NewFlow builds a flow that injects packets via send. The allocator may
// be shared across flows (the DES is single-threaded).
func NewFlow(eng *sim.Engine, pkts *packet.Alloc, id packet.FlowID, app packet.AppID, cfg Config, send func(*packet.Packet)) (*Flow, error) {
	if eng == nil || pkts == nil || send == nil {
		return nil, fmt.Errorf("tcp: nil engine, allocator, or send function")
	}
	cfg = cfg.Defaults()
	return &Flow{
		id:       id,
		app:      app,
		cfg:      cfg,
		eng:      eng,
		pkts:     pkts,
		send:     send,
		cwnd:     cfg.InitCwnd,
		ssthresh: cfg.MaxCwnd,
	}, nil
}

// ID returns the flow identifier.
func (f *Flow) ID() packet.FlowID { return f.id }

// App returns the owning application.
func (f *Flow) App() packet.AppID { return f.app }

// StartAt schedules the flow to begin sending at atNs.
func (f *Flow) StartAt(atNs int64) {
	f.eng.At(atNs, func() {
		if f.running {
			return
		}
		f.running = true
		// Restart from slow start if the flow was previously stopped.
		f.cwnd = f.cfg.InitCwnd
		f.ssthresh = f.cfg.MaxCwnd
		f.pump()
	})
}

// StopAt schedules the flow to cease sending at atNs; in-flight segments
// drain normally.
func (f *Flow) StopAt(atNs int64) {
	f.eng.At(atNs, func() { f.running = false })
}

// pump sends while the window allows.
func (f *Flow) pump() {
	for f.running && float64(f.inflight) < f.cwnd {
		p := f.pkts.New(f.id, f.app, f.cfg.SegBytes, f.eng.Now())
		f.nextSeq++
		p.Seq = f.nextSeq
		f.inflight++
		f.sentPkts++
		f.send(p)
	}
}

// OnDelivered must be called when a segment of this flow finishes wire
// egress; the ACK returns after the remaining path RTT.
func (f *Flow) OnDelivered(p *packet.Packet) {
	f.eng.After(f.cfg.BaseRTTNs/2, func() { f.onAck(p) })
}

func (f *Flow) onAck(p *packet.Packet) {
	f.inflight--
	if f.inflight < 0 {
		f.inflight = 0
	}
	f.acked++
	f.ackedByte += uint64(p.Size)
	if p.Marked {
		// ECN echo: multiplicative decrease, once per flight, without
		// the retransmission gap a loss would cost.
		f.marked++
		if p.Seq > f.recoverSeq {
			f.cwnd = f.cwnd / 2
			if f.cwnd < 1 {
				f.cwnd = 1
			}
			f.ssthresh = f.cwnd
			f.recoverSeq = f.nextSeq
		}
		f.pump()
		return
	}
	if f.cwnd < f.ssthresh {
		f.cwnd++ // slow start
	} else {
		f.cwnd += 1 / f.cwnd // congestion avoidance
	}
	if f.cwnd > f.cfg.MaxCwnd {
		f.cwnd = f.cfg.MaxCwnd
	}
	f.pump()
}

// OnDropped must be called when a segment of this flow is discarded.
// Loss detection (duplicate ACKs) takes about one RTT; the reaction is a
// single multiplicative decrease per flight.
func (f *Flow) OnDropped(p *packet.Packet) {
	f.eng.After(f.cfg.BaseRTTNs, func() { f.onLoss(p) })
}

func (f *Flow) onLoss(p *packet.Packet) {
	f.inflight--
	if f.inflight < 0 {
		f.inflight = 0
	}
	f.lost++
	if p.Seq > f.recoverSeq {
		f.cwnd = f.cwnd / 2
		if f.cwnd < 1 {
			f.cwnd = 1
		}
		f.ssthresh = f.cwnd
		f.recoverSeq = f.nextSeq
	}
	f.pump()
}

// Cwnd returns the current congestion window in segments.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// Counters returns (sent, acked, lost) segment counts.
func (f *Flow) Counters() (sent, acked, lost uint64) {
	return f.sentPkts, f.acked, f.lost
}

// Marked returns the count of congestion-marked segments the flow has
// reacted to (the scheduler's ECN extension).
func (f *Flow) Marked() uint64 { return f.marked }
