package tcp

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// A connection whose start and stop coincide sends at most its initial
// window: StartAt's event (registered first) pumps InitCwnd segments,
// StopAt's event at the same instant halts it, and the in-flight
// segments drain without triggering further sends.
func TestFlowZeroLengthWindow(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	link := newPipe(eng, flows, 1e9)
	alloc := &packet.Alloc{}
	f, err := NewFlow(eng, alloc, 1, 0, Config{InitCwnd: 4}, link.send)
	if err != nil {
		t.Fatal(err)
	}
	flows.Add(f)
	f.StartAt(1000)
	f.StopAt(1000)
	eng.RunUntil(1e9)

	sent, acked, _ := f.Counters()
	if sent > 4 {
		t.Fatalf("zero-length window sent %d segments, want ≤ InitCwnd (4)", sent)
	}
	if acked != sent {
		t.Fatalf("in-flight segments did not drain: sent=%d acked=%d", sent, acked)
	}
	if f.running {
		t.Fatal("flow still running after zero-length window")
	}
}

// Stop scheduled strictly before the start leaves the already-stopped
// flow stopped; the later start then legitimately (re)opens it. The
// start event must not be suppressed by a stale stop.
func TestFlowStopBeforeStart(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	link := newPipe(eng, flows, 1e9)
	alloc := &packet.Alloc{}
	f, err := NewFlow(eng, alloc, 1, 0, Config{}, link.send)
	if err != nil {
		t.Fatal(err)
	}
	flows.Add(f)
	f.StopAt(500)    // no-op: flow not yet running
	f.StartAt(1000)  // real start
	f.StopAt(100e6)
	eng.RunUntil(200e6)

	sent, _, _ := f.Counters()
	if sent == 0 {
		t.Fatal("stale stop suppressed the start")
	}
	if f.running {
		t.Fatal("flow still running after final stop")
	}
}

// A restart after a stop re-enters slow start (cwnd resets) instead of
// resuming the old window — the post-fault-window behaviour scenarios
// rely on when a connection comes up after a stall has cleared.
func TestFlowRestartResetsWindow(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	link := newPipe(eng, flows, 100e9)
	alloc := &packet.Alloc{}
	f, err := NewFlow(eng, alloc, 1, 0, Config{BaseRTTNs: 1e6, InitCwnd: 2}, link.send)
	if err != nil {
		t.Fatal(err)
	}
	flows.Add(f)
	f.StartAt(0)
	f.StopAt(20e6) // ~20 RTTs of slow start: cwnd well above 2
	eng.RunUntil(30e6)
	if f.Cwnd() <= 2 {
		t.Fatalf("cwnd = %g after 20 RTTs, expected growth", f.Cwnd())
	}
	f.StartAt(40e6)
	eng.At(40e6+1, func() {
		if got := f.Cwnd(); got > 2.1 {
			t.Fatalf("restart kept cwnd = %g, want slow-start reset to 2", got)
		}
	})
	eng.RunUntil(41e6)
}
