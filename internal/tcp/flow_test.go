package tcp

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// pipe is a perfect fixed-rate link: it delivers packets after a
// serialization + propagation delay, at most rateBps.
type pipe struct {
	eng     *sim.Engine
	flows   *Set
	rateBps float64
	freeAt  int64

	delivered int
	bytes     int64
}

func newPipe(eng *sim.Engine, flows *Set, rateBps float64) *pipe {
	return &pipe{eng: eng, flows: flows, rateBps: rateBps}
}

func (l *pipe) send(p *packet.Packet) {
	now := l.eng.Now()
	if l.freeAt < now {
		l.freeAt = now
	}
	l.freeAt += int64(float64(p.Size*8) / l.rateBps * 1e9)
	done := l.freeAt
	l.eng.At(done, func() {
		p.EgressAt = done
		l.delivered++
		l.bytes += int64(p.Size)
		l.flows.OnDeliver(p)
	})
}

func TestFlowValidation(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	if _, err := NewFlow(nil, alloc, 0, 0, Config{}, func(*packet.Packet) {}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewFlow(eng, nil, 0, 0, Config{}, func(*packet.Packet) {}); err == nil {
		t.Fatal("nil allocator accepted")
	}
	if _, err := NewFlow(eng, alloc, 0, 0, Config{}, nil); err == nil {
		t.Fatal("nil send accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.SegBytes != 1518 || cfg.BaseRTTNs <= 0 || cfg.InitCwnd <= 0 {
		t.Fatalf("implausible defaults: %+v", cfg)
	}
}

// A single flow on an uncongested link ramps up and fills it.
func TestFlowFillsLink(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	link := newPipe(eng, flows, 1e9)
	alloc := &packet.Alloc{}
	f, err := NewFlow(eng, alloc, 1, 0, Config{}, link.send)
	if err != nil {
		t.Fatal(err)
	}
	flows.Add(f)
	f.StartAt(0)
	f.StopAt(500e6)
	eng.RunUntil(600e6)

	rate := float64(link.bytes) * 8 / 0.5
	if rate < 0.85e9 {
		t.Fatalf("flow achieved %.2fGbps on a 1Gbps link, want ≥0.85", rate/1e9)
	}
	sent, acked, lost := f.Counters()
	if lost != 0 {
		t.Fatalf("lossless link reported %d losses", lost)
	}
	if acked == 0 || sent < acked {
		t.Fatalf("counters implausible: sent=%d acked=%d", sent, acked)
	}
}

// Slow start doubles the window every RTT until loss.
func TestSlowStartGrowth(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	link := newPipe(eng, flows, 100e9) // effectively infinite
	alloc := &packet.Alloc{}
	f, _ := NewFlow(eng, alloc, 1, 0, Config{BaseRTTNs: 1e6}, link.send)
	flows.Add(f)
	f.StartAt(0)
	start := f.Cwnd()
	eng.RunUntil(5e6) // 5 RTTs
	if f.Cwnd() < start*4 {
		t.Fatalf("cwnd grew %g → %g in 5 RTTs; slow start broken", start, f.Cwnd())
	}
}

// A loss halves the window exactly once per flight even when many
// packets of the same flight are lost.
func TestSingleDecreasePerFlight(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	alloc := &packet.Alloc{}
	var f *Flow
	var drop []*packet.Packet
	send := func(p *packet.Packet) { drop = append(drop, p) }
	f, _ = NewFlow(eng, alloc, 1, 0, Config{InitCwnd: 16}, send)
	flows.Add(f)
	f.StartAt(0)
	eng.RunUntil(1) // pump fires: 16 packets sent, all captured
	if len(drop) != 16 {
		t.Fatalf("sent %d packets, want initial window 16", len(drop))
	}
	before := f.Cwnd()
	for _, p := range drop {
		f.OnDropped(p)
	}
	eng.RunUntil(10e6)
	// One halving: 16 → 8 (plus the retransmit pump may re-lose; allow
	// one more halving but not collapse to 1).
	if f.Cwnd() > before/2+1 {
		t.Fatalf("cwnd = %g after flight loss, want ≤ %g", f.Cwnd(), before/2+1)
	}
	if f.Cwnd() < before/4 {
		t.Fatalf("cwnd = %g — more than one decrease charged to one flight", f.Cwnd())
	}
}

// Two flows sharing a bottleneck converge to a fair split.
func TestTwoFlowFairness(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	alloc := &packet.Alloc{}

	// Bottleneck: 1Gbps with a 50-packet queue, tail drop.
	var freeAt int64
	queue := 0
	const qCap = 50
	var send func(p *packet.Packet)
	send = func(p *packet.Packet) {
		now := eng.Now()
		if freeAt < now {
			freeAt = now
			queue = 0
		}
		if queue >= qCap {
			flows.OnDrop(p)
			return
		}
		queue++
		freeAt += int64(float64(p.Size*8) / 1e9 * 1e9)
		done := freeAt
		eng.At(done, func() {
			queue--
			p.EgressAt = done
			flows.OnDeliver(p)
		})
	}

	perFlow := make(map[packet.FlowID]int64)
	wrapped := func(p *packet.Packet) { send(p) }
	for id := packet.FlowID(1); id <= 2; id++ {
		f, _ := NewFlow(eng, alloc, id, 0, Config{}, wrapped)
		flows.Add(f)
		f.StartAt(0)
	}
	// Count deliveries per flow via a decorating set callback: re-wrap.
	orig := flows
	_ = orig
	// Simpler: tally in the deliver path by replacing OnDeliver — we
	// instead recount from counters afterwards.
	eng.RunUntil(2e9)
	f1, _ := flows.Get(1)
	f2, _ := flows.Get(2)
	_, a1, _ := f1.Counters()
	_, a2, _ := f2.Counters()
	perFlow[1] = int64(a1)
	perFlow[2] = int64(a2)
	ratio := float64(perFlow[1]) / float64(perFlow[2])
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("unfair split: %d vs %d acked segments", perFlow[1], perFlow[2])
	}
}

func TestStopHaltsSending(t *testing.T) {
	eng := sim.New()
	flows := NewSet()
	link := newPipe(eng, flows, 1e9)
	alloc := &packet.Alloc{}
	f, _ := NewFlow(eng, alloc, 1, 0, Config{}, link.send)
	flows.Add(f)
	f.StartAt(0)
	f.StopAt(100e6)
	eng.RunUntil(100e6)
	sentAtStop, _, _ := f.Counters()
	eng.RunUntil(500e6)
	sentAfter, _, _ := f.Counters()
	if sentAfter != sentAtStop {
		t.Fatalf("flow sent %d segments after StopAt", sentAfter-sentAtStop)
	}
}

func TestSetDispatch(t *testing.T) {
	eng := sim.New()
	s := NewSet()
	alloc := &packet.Alloc{}
	f, _ := NewFlow(eng, alloc, 7, 0, Config{}, func(*packet.Packet) {})
	s.Add(f)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Get(7); !ok {
		t.Fatal("Get(7) missed")
	}
	if _, ok := s.Get(8); ok {
		t.Fatal("Get(8) found a ghost")
	}
	// Unknown flows are ignored without panic.
	s.OnDeliver(&packet.Packet{Flow: 99})
	s.OnDrop(&packet.Packet{Flow: 99})
}
