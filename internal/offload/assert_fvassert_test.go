//go:build fvassert

package offload

import (
	"strings"
	"testing"

	"flowvalve/internal/packet"
)

// TestTableCapAssertionFiresOnCorruption proves the capacity invariant
// is live under the tag: an offloaded-flow table corrupted past the
// rule-table capacity — a state no public API can produce, since the
// install drain stops at TableCap — must make the next Tick panic
// instead of silently modelling a NIC with more rule slots than it has.
func TestTableCapAssertionFiresOnCorruption(t *testing.T) {
	// RulesPerSec 1 keeps the tick's rule budget under one token, so the
	// demotion scan cannot quietly evict the corrupted entries before the
	// capacity check runs.
	c, err := New(Config{TableCap: 2, TopK: 4, RulesPerSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	// In-package corruption: append entries beyond TableCap directly.
	for f := 0; f < 3; f++ {
		k := flowKey(1, packet.FlowID(f))
		c.index[k] = int32(len(c.entries))
		c.entries = append(c.entries, flowEntry{key: k, app: 1, flow: packet.FlowID(f)})
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Tick on an over-capacity table did not panic under -tags fvassert")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "fvassert: offload:") {
			t.Fatalf("panic = %v, want fvassert: offload:-prefixed message", r)
		}
	}()
	c.Tick(1_000_000)
}
