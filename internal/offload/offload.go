// Package offload is the fast-path/slow-path control plane in front of
// the NIC: at millions-of-connections scale the binding of flows to the
// NIC fast path is itself the bottleneck — NP-based NICs sustain on the
// order of 220k rule insertions per second against 1.2–1.4M new
// connections per second — so only heavy hitters can live on the NIC
// and everything else must be scheduled on the host.
//
// The Controller composes three mechanisms:
//
//   - a heavy-hitter identifier: a count-min sketch with conservative
//     update and windowed halving decay (Sketch) feeding a min-heap
//     top-K tracker (TopK);
//
//   - a bounded-rate rule installer: a token budget of RulesPerSec
//     shared by installs and demotion evictions, with a bounded install
//     queue that exerts backpressure (candidates arriving past a full
//     queue are counted and dropped, to retry on a later packet);
//
//   - pluggable offload-threshold policies (Policy): a static
//     byte-threshold baseline and an adaptive controller that moves the
//     threshold to keep the install queue and the rule-table occupancy
//     in their operating range.
//
// The per-packet surface is Observe — sketch update, top-K offer, one
// table lookup, at zero allocations — and everything that mutates the
// offloaded set happens on the periodic Tick, so the packet path never
// blocks on control-plane work. The whole controller is deterministic:
// no wall clock, no map iteration, state advanced only by Observe and
// Tick in calling order.
package offload

import (
	"fmt"

	"flowvalve/internal/fvassert"
	"flowvalve/internal/packet"
)

// DemoteHook is called for each flow evicted from the offloaded set —
// the NIC wires it to the classifier's cache invalidation so a demoted
// flow's next packet re-resolves through the full pipeline instead of a
// stale fast-path binding.
type DemoteHook func(app packet.AppID, flow packet.FlowID)

// InstallHook is called for each flow whose rule lands in the NIC table
// — harnesses use it to measure promotion latency (first packet seen to
// rule installed), the lag a closed-loop sender's ramp rides out on the
// slow path.
type InstallHook func(app packet.AppID, flow packet.FlowID)

// SlowPathSignalFunc supplies the slow path's congestion snapshot for
// one control tick at virtual time nowNs. The controller calls it
// exactly once per Tick, so implementations may reset their per-tick
// deltas inside the call.
type SlowPathSignalFunc func(nowNs int64) SlowPathSignals

// Config sizes the offload control plane. Zero fields take the defaults
// noted on each field.
type Config struct {
	// TableCap is the NIC rule-table capacity — the hard bound on
	// concurrently offloaded flows (default 2048).
	TableCap int
	// RulesPerSec is the rule-channel budget shared by installs and
	// evictions (default 220_000, the NP-class insertion rate).
	RulesPerSec float64
	// QueueCap bounds the install queue (default 512).
	QueueCap int
	// SketchRows/SketchCols size the count-min sketch (defaults 4 and
	// 4096; cols rounds up to a power of two).
	SketchRows, SketchCols int
	// TopK sizes the heavy-hitter tracker (default TableCap).
	TopK int
	// WindowNs is the sketch decay window (default 10ms): estimates
	// approximate per-window byte volumes.
	WindowNs int64
	// TickNs is the control-loop period (default 1ms): budget accrual,
	// demotion scan, queue drain, threshold adjustment.
	TickNs int64
	// InitialThresholdBytes seeds the offload threshold (default 32768
	// window bytes). Static policies override it on the first tick.
	InitialThresholdBytes uint64
	// DemoteFrac sets the demotion cut as a fraction of the current
	// threshold (default 0.25): a flow is evicted when its windowed
	// estimate falls under DemoteFrac×threshold. The gap between the
	// install and demote cuts is the hysteresis band.
	DemoteFrac float64
	// Policy moves the threshold each tick (default NewAdaptive).
	Policy Policy
	// OnDemote, when set, fires for every demoted flow.
	OnDemote DemoteHook
	// OnInstall, when set, fires for every installed flow.
	OnInstall InstallHook
}

func (c Config) defaults() Config {
	if c.TableCap <= 0 {
		c.TableCap = 2048
	}
	if c.RulesPerSec <= 0 {
		c.RulesPerSec = 220_000
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 512
	}
	if c.SketchRows <= 0 {
		c.SketchRows = 4
	}
	if c.SketchCols <= 0 {
		c.SketchCols = 4096
	}
	if c.TopK <= 0 {
		c.TopK = c.TableCap
	}
	if c.WindowNs <= 0 {
		c.WindowNs = 10_000_000
	}
	if c.TickNs <= 0 {
		c.TickNs = 1_000_000
	}
	if c.InitialThresholdBytes == 0 {
		c.InitialThresholdBytes = 32 * 1024
	}
	if c.DemoteFrac <= 0 || c.DemoteFrac >= 1 {
		c.DemoteFrac = 0.25
	}
	if c.Policy == nil {
		c.Policy = NewAdaptive(AdaptiveConfig{})
	}
	return c
}

// Stats is a snapshot of the controller's counters and gauges.
type Stats struct {
	// Offloaded is the number of flows currently on the fast path;
	// TableCap the rule-table bound.
	Offloaded, TableCap int
	// QueueDepth/QueueCap describe the install queue.
	QueueDepth, QueueCap int
	// ThresholdBytes is the current offload threshold (window bytes).
	ThresholdBytes uint64
	// SketchErrBytes is the sketch's expected overestimate.
	SketchErrBytes uint64
	// FastPkts/SlowPkts and FastBytes/SlowBytes split observed traffic
	// by path: fast = the flow held a NIC rule at observation time.
	FastPkts, SlowPkts   uint64
	FastBytes, SlowBytes uint64
	// Installs/Demotions count rule-channel operations consumed.
	Installs, Demotions uint64
	// QueueDrops counts install candidates rejected by a full queue
	// (backpressure); StaleSkips candidates whose demand decayed below
	// the threshold while queued (drained free, no rule op spent);
	// TableFull drain passes cut short by a full rule table.
	QueueDrops, StaleSkips, TableFull uint64
	// Ticks counts control-loop executions.
	Ticks uint64
	// Policy names the active threshold policy.
	Policy string
}

// TickReport tells the caller what one control tick did, so a device
// model can charge cycle costs for the rule-channel operations.
type TickReport struct {
	// Installs/Demotions are the rule operations executed this tick.
	Installs, Demotions int
	// Halved reports whether the sketch window rolled.
	Halved bool
}

// flowEntry is one offloaded flow in the dense rule-table mirror.
type flowEntry struct {
	key  uint64
	app  packet.AppID
	flow packet.FlowID
}

// Controller is the offload control plane. It is single-threaded by
// design (the DES drives it); Observe is the only per-packet call.
type Controller struct {
	cfg    Config
	sketch *Sketch
	top    *TopK

	threshold uint64

	// entries is the dense offloaded-flow table (the NIC rule-table
	// mirror); index maps flow key → entries position. Control scans
	// iterate entries, never the map — map iteration order would leak
	// nondeterminism into demotion order.
	entries []flowEntry
	index   map[uint64]int32

	// queue is the bounded install ring; pending dedups queued keys.
	queue   []flowEntry
	qhead   int
	qlen    int
	pending map[uint64]struct{}

	// budget is the fractional rule-channel token level.
	budget      float64
	lastTickNs  int64
	lastHalveNs int64

	// slowSig, when set, feeds the slow path's congestion snapshot to
	// the policy each tick.
	slowSig SlowPathSignalFunc

	stats Stats
	tel   *offloadTel
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.defaults()
	if cfg.TopK < cfg.TableCap {
		return nil, fmt.Errorf("offload: TopK %d below TableCap %d would starve installs", cfg.TopK, cfg.TableCap)
	}
	c := &Controller{
		cfg:       cfg,
		sketch:    NewSketch(cfg.SketchRows, cfg.SketchCols),
		top:       NewTopK(cfg.TopK),
		threshold: cfg.InitialThresholdBytes,
		entries:   make([]flowEntry, 0, cfg.TableCap),
		index:     make(map[uint64]int32, cfg.TableCap),
		queue:     make([]flowEntry, cfg.QueueCap),
		pending:   make(map[uint64]struct{}, cfg.QueueCap),
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// TickNs returns the control-loop period, for drivers arming the tick.
func (c *Controller) TickNs() int64 { return c.cfg.TickNs }

// Threshold returns the current offload threshold in window bytes.
func (c *Controller) Threshold() uint64 { return c.threshold }

// Offloaded returns the number of flows currently on the fast path.
func (c *Controller) Offloaded() int { return len(c.entries) }

// DemoteHook returns the current demotion hook (nil if unset).
func (c *Controller) DemoteHook() DemoteHook { return c.cfg.OnDemote }

// SetDemoteHook replaces the demotion hook; the NIC chains the
// classifier invalidation in front of any caller-installed hook.
func (c *Controller) SetDemoteHook(h DemoteHook) { c.cfg.OnDemote = h }

// InstallHook returns the current install hook (nil if unset).
func (c *Controller) InstallHook() InstallHook { return c.cfg.OnInstall }

// SetInstallHook replaces the install hook.
func (c *Controller) SetInstallHook(h InstallHook) { c.cfg.OnInstall = h }

// SetSlowPathSignals wires the slow path's congestion feedback into the
// threshold policy: fn is called once per Tick and its snapshot lands
// in PolicyInput.Slow. A nil fn (the default) feeds zero signals —
// controllers driven without a scheduled slow path are unaffected.
func (c *Controller) SetSlowPathSignals(fn SlowPathSignalFunc) { c.slowSig = fn }

// flowKey packs (app, flow) into the sketch/table key. The high bit
// marks the key live, so the zero key never aliases a real flow.
func flowKey(app packet.AppID, flow packet.FlowID) uint64 {
	return 1<<48 | uint64(app)<<32 | uint64(flow)
}

// Observe accounts one packet of wireBytes from (app, flow) and reports
// whether the flow rides the NIC fast path (true) or must detour
// through the host slow path (false). It also nominates threshold
// crossers for installation; the actual install happens on a later Tick
// under the rule budget. Zero allocations, no map iteration.
//
//fv:hotpath
func (c *Controller) Observe(app packet.AppID, flow packet.FlowID, wireBytes int) bool {
	k := flowKey(app, flow)
	est := c.sketch.Update(k, uint64(wireBytes))
	c.top.Offer(k, est)
	if _, ok := c.index[k]; ok {
		c.stats.FastPkts++
		c.stats.FastBytes += uint64(wireBytes)
		return true
	}
	c.stats.SlowPkts++
	c.stats.SlowBytes += uint64(wireBytes)
	if est >= c.threshold && c.top.Contains(k) {
		if _, queued := c.pending[k]; !queued {
			if c.qlen == len(c.queue) {
				c.stats.QueueDrops++
			} else {
				slot := c.qhead + c.qlen
				if slot >= len(c.queue) {
					slot -= len(c.queue)
				}
				c.queue[slot] = flowEntry{key: k, app: app, flow: flow}
				c.qlen++
				c.pending[k] = struct{}{}
			}
		}
	}
	return false
}

// Tick runs one control-loop pass at virtual time nowNs: accrue the
// rule budget, roll the sketch window, demote cold flows, drain the
// install queue, and let the policy move the threshold. The returned
// report carries the rule operations executed, for cycle charging.
func (c *Controller) Tick(nowNs int64) TickReport {
	var rep TickReport

	// Budget accrual, capped at one queue's worth so an idle stretch
	// cannot bank an unbounded install burst.
	dt := nowNs - c.lastTickNs
	if dt > 0 {
		c.budget += c.cfg.RulesPerSec * float64(dt) / 1e9
		if cap := float64(c.cfg.QueueCap); c.budget > cap {
			c.budget = cap
		}
	}
	c.lastTickNs = nowNs

	// Window roll: halve the sketch and the tracked estimates together
	// so install/demote comparisons stay consistent.
	if nowNs-c.lastHalveNs >= c.cfg.WindowNs {
		c.sketch.Halve()
		c.top.Halve()
		c.lastHalveNs = nowNs
		rep.Halved = true
	}

	// Demotion scan: evict flows whose windowed estimate fell under the
	// hysteresis cut. Each eviction spends a rule-channel token, like a
	// real rule delete. The scan iterates the dense table (deterministic
	// order); swap-removal revisits the swapped-in entry.
	cut := uint64(float64(c.threshold) * c.cfg.DemoteFrac)
	for i := 0; i < len(c.entries) && c.budget >= 1; i++ {
		e := c.entries[i]
		if c.sketch.Estimate(e.key) >= cut {
			continue
		}
		c.removeEntry(i)
		c.budget--
		c.stats.Demotions++
		rep.Demotions++
		if c.cfg.OnDemote != nil {
			c.cfg.OnDemote(e.app, e.flow)
		}
		i--
	}

	// Install drain under the remaining budget. Candidates re-validate
	// against the current threshold: demand may have decayed while the
	// entry sat in the queue (no rule op is spent on those).
	for c.budget >= 1 && c.qlen > 0 {
		if len(c.entries) >= c.cfg.TableCap {
			c.stats.TableFull++
			break
		}
		it := c.queue[c.qhead]
		c.qhead++
		if c.qhead == len(c.queue) {
			c.qhead = 0
		}
		c.qlen--
		delete(c.pending, it.key)
		if c.sketch.Estimate(it.key) < c.threshold {
			c.stats.StaleSkips++
			continue
		}
		c.index[it.key] = int32(len(c.entries))
		c.entries = append(c.entries, it)
		c.budget--
		c.stats.Installs++
		rep.Installs++
		if c.cfg.OnInstall != nil {
			c.cfg.OnInstall(it.app, it.flow)
		}
	}

	var slow SlowPathSignals
	if c.slowSig != nil {
		slow = c.slowSig(nowNs)
	}
	c.threshold = c.cfg.Policy.Adjust(c.threshold, PolicyInput{
		QueueDepth:     c.qlen,
		QueueCap:       c.cfg.QueueCap,
		TableUsed:      len(c.entries),
		TableCap:       c.cfg.TableCap,
		SketchErrBytes: c.sketch.ErrorBound(),
		Slow:           slow,
	})

	// The rule table mirrors hardware with TableCap slots: exceeding it
	// means the drain loop's bound broke.
	if fvassert.Enabled && len(c.entries) > c.cfg.TableCap {
		fvassert.Failf("offload: %d offloaded flows exceed rule-table capacity %d",
			len(c.entries), c.cfg.TableCap)
	}

	c.stats.Ticks++
	if c.tel != nil {
		c.exportTick()
	}
	return rep
}

// removeEntry swap-removes entries[i] and fixes the index.
func (c *Controller) removeEntry(i int) {
	last := len(c.entries) - 1
	delete(c.index, c.entries[i].key)
	if i != last {
		c.entries[i] = c.entries[last]
		c.index[c.entries[i].key] = int32(i)
	}
	c.entries = c.entries[:last]
}

// IsOffloaded reports whether (app, flow) currently holds a NIC rule.
func (c *Controller) IsOffloaded(app packet.AppID, flow packet.FlowID) bool {
	_, ok := c.index[flowKey(app, flow)]
	return ok
}

// Estimate returns the sketch's current windowed byte estimate for
// (app, flow).
func (c *Controller) Estimate(app packet.AppID, flow packet.FlowID) uint64 {
	return c.sketch.Estimate(flowKey(app, flow))
}

// Stats returns a snapshot of the controller state.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Offloaded = len(c.entries)
	s.TableCap = c.cfg.TableCap
	s.QueueDepth = c.qlen
	s.QueueCap = c.cfg.QueueCap
	s.ThresholdBytes = c.threshold
	s.SketchErrBytes = c.sketch.ErrorBound()
	s.Policy = c.cfg.Policy.Name()
	return s
}
