package offload

import (
	"sort"
	"testing"

	"flowvalve/internal/sim"
)

// zipfTrace builds a seeded Zipf(alpha)-distributed update trace over
// nFlows keys: returns the per-key exact byte counts and the update
// sequence (key, bytes) in arrival order. Inverse-CDF sampling over the
// precomputed cumulative weights keeps it deterministic under sim.RNG.
type zipfUpdate struct {
	key uint64
	n   uint64
}

func zipfTrace(seed uint64, nFlows, nUpdates int, alpha float64) ([]zipfUpdate, map[uint64]uint64) {
	cum := make([]float64, nFlows)
	var total float64
	for i := 0; i < nFlows; i++ {
		w := 1.0 / pow(float64(i+1), alpha)
		total += w
		cum[i] = total
	}
	rng := sim.NewRNG(seed)
	updates := make([]zipfUpdate, 0, nUpdates)
	exact := make(map[uint64]uint64, nFlows)
	for u := 0; u < nUpdates; u++ {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= nFlows {
			i = nFlows - 1
		}
		key := uint64(1)<<48 | uint64(i)
		bytes := uint64(64 + rng.Intn(1436)) // 64..1499B frames
		updates = append(updates, zipfUpdate{key: key, n: bytes})
		exact[key] += bytes
	}
	return updates, exact
}

// pow is a tiny positive-base power helper (avoids importing math just
// for the trace builder).
func pow(base, exp float64) float64 {
	// exp is small and fixed (1.2); use exp = a + b with integer a.
	r := 1.0
	for exp >= 1 {
		r *= base
		exp--
	}
	if exp > 0 {
		// linear interpolation between base^0 and base^1 is good enough
		// for weighting a test trace.
		r *= 1 + exp*(base-1)
	}
	return r
}

// TestSketchNeverUnderestimates pins the count-min guarantee the
// controller's install logic relies on: an estimate is never below the
// true count, so a true heavy hitter can never hide under the threshold.
func TestSketchNeverUnderestimates(t *testing.T) {
	updates, exact := zipfTrace(42, 4096, 200_000, 1.2)
	s := NewSketch(4, 4096)
	for _, u := range updates {
		s.Update(u.key, u.n)
	}
	for key, want := range exact {
		if got := s.Estimate(key); got < want {
			t.Fatalf("key %#x: estimate %d < exact %d — count-min underestimated", key, got, want)
		}
	}
}

// TestSketchOverestimateBounded asserts the conservative-update sketch
// stays within a small multiple of the analytic error bound total/cols
// for every key of the Zipf trace.
func TestSketchOverestimateBounded(t *testing.T) {
	updates, exact := zipfTrace(7, 4096, 200_000, 1.2)
	s := NewSketch(4, 4096)
	for _, u := range updates {
		s.Update(u.key, u.n)
	}
	bound := s.ErrorBound()
	if bound == 0 {
		t.Fatal("error bound is zero after 200k updates")
	}
	for key, want := range exact {
		got := s.Estimate(key)
		if got-want > 8*bound {
			t.Fatalf("key %#x: overestimate %d > 8×bound %d", key, got-want, 8*bound)
		}
	}
}

// TestSketchTopKElephants is the accuracy satellite: feeding the sketch
// estimates into the top-K tracker on a seeded Zipf trace, the exact
// top-16 flows must land in a top-64 tracker with at most one false
// negative — true elephants must not be missed.
func TestSketchTopKElephants(t *testing.T) {
	updates, exact := zipfTrace(99, 4096, 200_000, 1.2)
	s := NewSketch(4, 4096)
	top := NewTopK(64)
	for _, u := range updates {
		top.Offer(u.key, s.Update(u.key, u.n))
	}

	type kv struct {
		key uint64
		n   uint64
	}
	ranked := make([]kv, 0, len(exact))
	for k, n := range exact {
		ranked = append(ranked, kv{k, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].key < ranked[j].key
	})

	const elephants = 16
	misses := 0
	for _, e := range ranked[:elephants] {
		if !top.Contains(e.key) {
			misses++
			t.Logf("elephant %#x (%dB) missing from top-K", e.key, e.n)
		}
	}
	if misses > 1 {
		t.Fatalf("%d/%d true elephants missing from the top-K tracker (allow ≤1)", misses, elephants)
	}
}

// TestSketchHalve checks the window decay: every estimate (and the error
// accumulator) halves together.
func TestSketchHalve(t *testing.T) {
	s := NewSketch(4, 256)
	s.Update(0xabc, 1000)
	s.Update(0xdef, 3000)
	before := s.Estimate(0xdef)
	eb := s.ErrorBound()
	s.Halve()
	if got := s.Estimate(0xdef); got != before/2 {
		t.Fatalf("estimate after halve = %d, want %d", got, before/2)
	}
	if got := s.ErrorBound(); got != eb/2 {
		t.Fatalf("error bound after halve = %d, want %d", got, eb/2)
	}
}

// TestSketchDeterminism pins the fixed-salt contract: two sketches of
// the same geometry produce bit-identical estimates for the same trace.
func TestSketchDeterminism(t *testing.T) {
	updates, exact := zipfTrace(5, 1024, 50_000, 1.1)
	a, b := NewSketch(3, 1024), NewSketch(3, 1024)
	for _, u := range updates {
		if ea, eb := a.Update(u.key, u.n), b.Update(u.key, u.n); ea != eb {
			t.Fatalf("Update diverged: %d vs %d", ea, eb)
		}
	}
	for key := range exact {
		if ea, eb := a.Estimate(key), b.Estimate(key); ea != eb {
			t.Fatalf("Estimate diverged for %#x: %d vs %d", key, ea, eb)
		}
	}
}

// TestTopKOrdering exercises the heap: eviction of the minimum,
// in-place updates, removal, and the (est, key) deterministic tie-break.
func TestTopKOrdering(t *testing.T) {
	top := NewTopK(3)
	top.Offer(1, 100)
	top.Offer(2, 200)
	top.Offer(3, 300)
	if top.MinEst() != 100 {
		t.Fatalf("MinEst = %d, want 100", top.MinEst())
	}
	// 4 beats the min → evicts key 1.
	top.Offer(4, 150)
	if top.Contains(1) || !top.Contains(4) {
		t.Fatal("expected key 1 evicted by key 4")
	}
	// 5 ties the min (150, key 4): tie-break by key — 5 > 4 wins entry.
	top.Offer(5, 150)
	if !top.Contains(5) || top.Contains(4) {
		t.Fatal("equal-estimate tie must break by key (larger key beats the root)")
	}
	// In-place update reorders.
	top.Offer(5, 400)
	if top.MinEst() != 200 {
		t.Fatalf("MinEst after update = %d, want 200", top.MinEst())
	}
	top.Remove(2)
	if top.Contains(2) || top.Len() != 2 {
		t.Fatalf("Remove failed: len=%d", top.Len())
	}
	snap := top.Snapshot(nil)
	if len(snap) != 2 || snap[0].Key != 5 || snap[1].Key != 3 {
		t.Fatalf("Snapshot = %+v, want [{5 400} {3 300}]", snap)
	}
	top.Halve()
	snap = top.Snapshot(snap[:0])
	if len(snap) != 2 || snap[0].Est != 200 || snap[1].Est != 150 {
		t.Fatalf("Snapshot after halve = %+v, want ests [200 150]", snap)
	}
}

// TestStaticPolicy pins the baseline: the threshold never moves.
func TestStaticPolicy(t *testing.T) {
	p := NewStatic(8192)
	if p.Name() != "static" {
		t.Fatalf("Name = %q", p.Name())
	}
	for _, in := range []PolicyInput{
		{},
		{QueueDepth: 100, QueueCap: 100, TableUsed: 100, TableCap: 100},
	} {
		if got := p.Adjust(1, in); got != 8192 {
			t.Fatalf("Adjust = %d, want 8192", got)
		}
	}
}

// TestAdaptivePolicy exercises the watermark controller: raise under
// queue or table pressure, relax only when both are idle, hold in the
// hysteresis band, clamp at the rails.
func TestAdaptivePolicy(t *testing.T) {
	p := NewAdaptive(AdaptiveConfig{Min: 1000, Max: 100_000})
	cfg := p.Config()

	// Queue pressure raises.
	up := p.Adjust(2000, PolicyInput{QueueDepth: 80, QueueCap: 100, TableCap: 100})
	if up <= 2000 {
		t.Fatalf("pressured Adjust = %d, want > 2000", up)
	}
	if want := uint64(2000*cfg.Up) + 1; up != want {
		t.Fatalf("pressured Adjust = %d, want %d", up, want)
	}
	// Table pressure raises too.
	if got := p.Adjust(2000, PolicyInput{QueueCap: 100, TableUsed: 95, TableCap: 100}); got <= 2000 {
		t.Fatalf("occupancy-pressured Adjust = %d, want > 2000", got)
	}
	// Idle relaxes.
	down := p.Adjust(2000, PolicyInput{QueueDepth: 0, QueueCap: 100, TableUsed: 10, TableCap: 100})
	if want := uint64(2000 * cfg.Down); down != want {
		t.Fatalf("idle Adjust = %d, want %d", down, want)
	}
	// In the band: hold.
	if got := p.Adjust(2000, PolicyInput{QueueDepth: 30, QueueCap: 100, TableUsed: 70, TableCap: 100}); got != 2000 {
		t.Fatalf("in-band Adjust = %d, want hold at 2000", got)
	}
	// Rails.
	if got := p.Adjust(1000, PolicyInput{QueueDepth: 0, QueueCap: 100, TableCap: 100}); got != 1000 {
		t.Fatalf("Adjust below Min = %d, want clamp at 1000", got)
	}
	cur := uint64(90_000)
	for i := 0; i < 10; i++ {
		cur = p.Adjust(cur, PolicyInput{QueueDepth: 100, QueueCap: 100, TableCap: 100})
	}
	if cur != 100_000 {
		t.Fatalf("Adjust above Max = %d, want clamp at 100000", cur)
	}
}

// TestAdaptiveSlowPathPain exercises the congestion-fed decrease: shed
// rate, host saturation, or a deep per-class backlog each pull the
// threshold down (promote against slow-path pain), but control-plane
// pressure — a full table or a deep install queue — still outranks it.
func TestAdaptiveSlowPathPain(t *testing.T) {
	p := NewAdaptive(AdaptiveConfig{Min: 1000, Max: 100_000})
	cfg := p.Config()
	base := PolicyInput{QueueDepth: 30, QueueCap: 100, TableUsed: 70, TableCap: 100}
	if got := p.Adjust(2000, base); got != 2000 {
		t.Fatalf("in-band hold broken: %d", got)
	}
	want := uint64(2000 * cfg.Down)
	for name, slow := range map[string]SlowPathSignals{
		"shed":    {ShedRate: cfg.ShedHi * 2},
		"host":    {HostUtil: cfg.HostHi + 0.1},
		"backlog": {MaxClassPkts: 80, QueueCapPkts: 100},
	} {
		in := base
		in.Slow = slow
		if got := p.Adjust(2000, in); got != want {
			t.Errorf("%s pain: Adjust = %d, want decrease to %d", name, got, want)
		}
	}
	// Table pressure outranks pain: with the table nearly full, lowering
	// the threshold could not promote anything anyway.
	in := PolicyInput{QueueCap: 100, TableUsed: 95, TableCap: 100,
		Slow: SlowPathSignals{ShedRate: 1}}
	if got := p.Adjust(2000, in); got != uint64(2000*cfg.Up)+1 {
		t.Errorf("pained + full table: Adjust = %d, want increase", got)
	}
	// Watermarks >= 1 disable the signals (the congestion-blind policy).
	blind := NewAdaptive(AdaptiveConfig{Min: 1000, Max: 100_000,
		ShedHi: 2, HostHi: 1e9, BacklogHi: 1e9})
	in = base
	in.Slow = SlowPathSignals{ShedRate: 1, HostUtil: 1, MaxClassPkts: 100, QueueCapPkts: 100}
	if got := blind.Adjust(2000, in); got != 2000 {
		t.Errorf("blind policy moved on slow signals: %d", got)
	}
}

// TestAdaptiveMinBytesRail is the low-rail regression table: repeated
// multiplicative decrease must never drive the threshold to 0 — a zero
// threshold would promote every flow on its first packet and flood the
// install queue — even for a zero-valued policy that skipped NewAdaptive
// (cfg.Min = 0, cfg.Down = 0).
func TestAdaptiveMinBytesRail(t *testing.T) {
	idle := PolicyInput{QueueCap: 100, TableCap: 100}
	pain := PolicyInput{QueueCap: 100, TableCap: 100,
		Slow: SlowPathSignals{ShedRate: 1}}
	for _, tc := range []struct {
		name string
		pol  *AdaptivePolicy
		cur  uint64
		in   PolicyInput
		want uint64
	}{
		{"decrease-clamps-at-min", NewAdaptive(AdaptiveConfig{Min: 1000}), 1001, idle, 1000},
		{"at-min-holds", NewAdaptive(AdaptiveConfig{Min: 1000}), 1000, idle, 1000},
		{"below-min-lifts", NewAdaptive(AdaptiveConfig{Min: 1000}), 1, idle, 1000},
		{"pain-decrease-clamps", NewAdaptive(AdaptiveConfig{Min: 1000}), 1200, pain, 1000},
		{"zero-value-policy-rails-at-floor", &AdaptivePolicy{}, 500, pain, MinBytes},
		{"zero-value-policy-idle", &AdaptivePolicy{}, 0, idle, MinBytes},
		{"configured-min-below-floor-rails", NewAdaptive(AdaptiveConfig{Min: 1}), 2, idle, MinBytes},
	} {
		if got := tc.pol.Adjust(tc.cur, tc.in); got != tc.want {
			t.Errorf("%s: Adjust(%d) = %d, want %d", tc.name, tc.cur, got, tc.want)
		}
	}
}
