package offload

import "sort"

// TopK tracks the K flows with the largest sketch estimates: a min-heap
// keyed by (estimate, key) with a position index so membership tests and
// in-place estimate updates are O(1)/O(log K). The sketch feeds it on
// every packet; the controller reads it to rank offload candidates and
// to decide demotions.
//
// Ordering ties break on the flow key, so two runs that present the same
// update sequence hold byte-identical heaps — the determinism contract
// of the whole control plane.
type TopK struct {
	k   int
	h   []topEntry
	pos map[uint64]int32
}

type topEntry struct {
	key uint64
	est uint64
}

// Entry is one tracked flow in a Snapshot.
type Entry struct {
	Key uint64
	Est uint64
}

// NewTopK builds a tracker for the k largest keys (k ≥ 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{
		k:   k,
		h:   make([]topEntry, 0, k),
		pos: make(map[uint64]int32, k),
	}
}

// K returns the capacity; Len the tracked count.
func (t *TopK) K() int   { return t.k }
func (t *TopK) Len() int { return len(t.h) }

// less orders entries (estimate, then key) — the heap's root is the
// smallest tracked entry, the next eviction victim.
func (t *TopK) less(a, b topEntry) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.key < b.key
}

// Offer presents key with its fresh sketch estimate. Tracked keys are
// updated in place; untracked keys enter when the tracker has room or
// when they beat the current minimum (which is evicted).
//
//fv:hotpath
func (t *TopK) Offer(key, est uint64) {
	if i, ok := t.pos[key]; ok {
		t.h[i].est = est
		t.fix(int(i))
		return
	}
	e := topEntry{key: key, est: est}
	if len(t.h) < t.k {
		t.h = append(t.h, e)
		i := len(t.h) - 1
		t.pos[key] = int32(i)
		t.up(i)
		return
	}
	if !t.less(t.h[0], e) {
		return // does not beat the smallest tracked entry
	}
	delete(t.pos, t.h[0].key)
	t.h[0] = e
	t.pos[key] = 0
	t.down(0)
}

// Contains reports whether key is currently tracked.
//
//fv:hotpath
func (t *TopK) Contains(key uint64) bool {
	_, ok := t.pos[key]
	return ok
}

// MinEst returns the smallest tracked estimate, or 0 when the tracker
// still has room (everything qualifies).
func (t *TopK) MinEst() uint64 {
	if len(t.h) < t.k {
		return 0
	}
	return t.h[0].est
}

// Remove drops key from the tracker (flow teardown). Unknown keys are
// ignored.
func (t *TopK) Remove(key uint64) {
	i, ok := t.pos[key]
	if !ok {
		return
	}
	last := len(t.h) - 1
	delete(t.pos, key)
	if int(i) != last {
		t.h[i] = t.h[last]
		t.pos[t.h[i].key] = i
	}
	t.h = t.h[:last]
	if int(i) <= last-1 {
		t.fix(int(i))
	}
}

// Halve scales every tracked estimate with the sketch's window decay,
// then restores the heap order (halving can reorder equal-estimate
// ties).
func (t *TopK) Halve() {
	for i := range t.h {
		t.h[i].est >>= 1
	}
	for i := len(t.h)/2 - 1; i >= 0; i-- {
		t.down(i)
	}
}

// Snapshot appends the tracked entries to dst, largest first (ties by
// ascending key) — a deterministic ranking for reports and tests.
func (t *TopK) Snapshot(dst []Entry) []Entry {
	for _, e := range t.h {
		dst = append(dst, Entry{Key: e.key, Est: e.est})
	}
	sort.Slice(dst, func(a, b int) bool {
		if dst[a].Est != dst[b].Est {
			return dst[a].Est > dst[b].Est
		}
		return dst[a].Key < dst[b].Key
	})
	return dst
}

// fix restores the heap property around i after an in-place change.
func (t *TopK) fix(i int) {
	t.down(i)
	t.up(i)
}

//fv:hotpath
func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(t.h[i], t.h[parent]) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

//fv:hotpath
func (t *TopK) down(i int) {
	n := len(t.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && t.less(t.h[r], t.h[l]) {
			m = r
		}
		if !t.less(t.h[m], t.h[i]) {
			return
		}
		t.swap(i, m)
		i = m
	}
}

//fv:hotpath
func (t *TopK) swap(i, j int) {
	t.h[i], t.h[j] = t.h[j], t.h[i]
	t.pos[t.h[i].key] = int32(i)
	t.pos[t.h[j].key] = int32(j)
}
