package offload

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// testConfig returns a small, fully-pinned controller configuration:
// static threshold 1000B, 2 rule ops per 1ms tick, shallow queue.
func testConfig() Config {
	return Config{
		TableCap:              64,
		RulesPerSec:           2000, // 2 tokens per 1ms tick
		QueueCap:              32,
		TopK:                  64,
		WindowNs:              100_000_000, // far away unless a test wants it
		TickNs:                1_000_000,
		InitialThresholdBytes: 1000,
		Policy:                NewStatic(1000),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{TableCap: 100, TopK: 10}); err == nil {
		t.Fatal("TopK below TableCap must be rejected")
	}
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.TableCap != 2048 || cfg.RulesPerSec != 220_000 || cfg.QueueCap != 512 ||
		cfg.TopK != 2048 || cfg.WindowNs != 10_000_000 || cfg.TickNs != 1_000_000 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.Policy.Name() != "adaptive" {
		t.Fatalf("default policy = %q, want adaptive", cfg.Policy.Name())
	}
}

// TestInstallBudget pins the bounded-rate installer: 2000 rules/s at a
// 1ms tick admits exactly 2 installs per tick no matter how many
// candidates wait in the queue.
func TestInstallBudget(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 8 distinct elephants, one 2000B packet each — all above threshold.
	for f := 0; f < 8; f++ {
		if c.Observe(1, packet.FlowID(f), 2000) {
			t.Fatalf("flow %d fast before any install", f)
		}
	}
	if got := c.Stats().QueueDepth; got != 8 {
		t.Fatalf("queue depth = %d, want 8", got)
	}
	installed := 0
	for tick := 1; tick <= 4; tick++ {
		rep := c.Tick(int64(tick) * 1_000_000)
		if rep.Installs != 2 {
			t.Fatalf("tick %d installed %d rules, want 2 (budget-bound)", tick, rep.Installs)
		}
		installed += rep.Installs
	}
	s := c.Stats()
	if s.Installs != 8 || installed != 8 || s.Offloaded != 8 || s.QueueDepth != 0 {
		t.Fatalf("after drain: %+v", s)
	}
	// Installed flows now ride the fast path.
	if !c.Observe(1, 0, 100) || !c.IsOffloaded(1, 0) {
		t.Fatal("installed flow must report fast path")
	}
	if s = c.Stats(); s.FastPkts != 1 {
		t.Fatalf("FastPkts = %d, want 1", s.FastPkts)
	}
}

// TestBudgetCap pins the accrual clamp: an idle stretch cannot bank more
// than one queue's worth of install tokens.
func TestBudgetCap(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		c.Observe(1, packet.FlowID(f), 2000)
	}
	// A 1-second gap accrues 2000 tokens but the clamp holds it at
	// QueueCap, so at most 4 installs can fire — and only 4 are queued.
	rep := c.Tick(1_000_000_000)
	if rep.Installs != 4 {
		t.Fatalf("installs after idle stretch = %d, want 4", rep.Installs)
	}
}

// TestQueueBackpressure pins the install-queue bound: candidates past a
// full queue are counted as drops and retried on later packets, never
// queued twice.
func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		c.Observe(1, packet.FlowID(f), 2000)
	}
	s := c.Stats()
	if s.QueueDepth != 4 || s.QueueDrops != 6 {
		t.Fatalf("depth=%d drops=%d, want 4/6", s.QueueDepth, s.QueueDrops)
	}
	// A queued flow re-observed dedups against pending — no double entry,
	// no extra drop.
	c.Observe(1, 0, 2000)
	if s = c.Stats(); s.QueueDepth != 4 || s.QueueDrops != 6 {
		t.Fatalf("after re-observe: depth=%d drops=%d, want 4/6", s.QueueDepth, s.QueueDrops)
	}
	// Draining frees slots; a dropped candidate's next packet queues.
	c.Tick(1_000_000)
	c.Observe(1, 9, 2000)
	if s = c.Stats(); s.QueueDepth != 3 {
		t.Fatalf("after drain+requeue: depth=%d, want 3", s.QueueDepth)
	}
}

// TestDemotion pins the eviction path: a flow that goes quiet decays
// under the hysteresis cut within a few windows, spends a rule token,
// fires the demote hook, and leaves the fast path.
func TestDemotion(t *testing.T) {
	cfg := testConfig()
	cfg.WindowNs = 1_000_000 // halve every tick
	var demoted []uint64
	cfg.OnDemote = func(app packet.AppID, flow packet.FlowID) {
		demoted = append(demoted, flowKey(app, flow))
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(3, 7, 2000)
	c.Tick(1_000_000)
	if !c.IsOffloaded(3, 7) {
		t.Fatal("flow not installed")
	}
	// No further traffic: estimate halves each window (2000 → 1000 → …)
	// until it crosses cut = 0.25×1000 = 250.
	var demotedAt int
	for tick := 2; tick <= 8; tick++ {
		rep := c.Tick(int64(tick) * 1_000_000)
		if !rep.Halved {
			t.Fatalf("tick %d: window did not roll", tick)
		}
		if rep.Demotions > 0 {
			demotedAt = tick
			break
		}
	}
	if demotedAt == 0 {
		t.Fatal("quiet flow never demoted")
	}
	if c.IsOffloaded(3, 7) {
		t.Fatal("demoted flow still reports offloaded")
	}
	if len(demoted) != 1 || demoted[0] != flowKey(3, 7) {
		t.Fatalf("demote hook saw %v, want [%#x]", demoted, flowKey(3, 7))
	}
	if s := c.Stats(); s.Demotions != 1 || s.Offloaded != 0 {
		t.Fatalf("stats after demotion: %+v", s)
	}
	// Re-promotion: fresh traffic re-queues and reinstalls the same flow.
	c.Observe(3, 7, 2000)
	c.Tick(9_000_000)
	if !c.IsOffloaded(3, 7) {
		t.Fatal("flow not re-promoted after demotion")
	}
}

// TestDemoteHookChaining pins the getter/setter pair the NIC uses to
// chain classifier invalidation in front of a caller hook.
func TestDemoteHookChaining(t *testing.T) {
	cfg := testConfig()
	var order []string
	cfg.OnDemote = func(packet.AppID, packet.FlowID) { order = append(order, "user") }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := c.DemoteHook()
	if prev == nil {
		t.Fatal("DemoteHook lost the configured hook")
	}
	c.SetDemoteHook(func(app packet.AppID, flow packet.FlowID) {
		order = append(order, "chained")
		prev(app, flow)
	})
	c.DemoteHook()(1, 2)
	if len(order) != 2 || order[0] != "chained" || order[1] != "user" {
		t.Fatalf("hook chain order = %v", order)
	}
}

// TestStaleSkip pins the drain-time re-validation: a candidate whose
// demand decays below the threshold while queued drains free — no rule
// token spent, no install.
func TestStaleSkip(t *testing.T) {
	cfg := testConfig()
	cfg.WindowNs = 1_000_000
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1200B ≥ threshold 1000 → queued; by the tick the window rolls and
	// the estimate halves to 600 < 1000.
	c.Observe(1, 5, 1200)
	rep := c.Tick(1_000_000)
	if rep.Installs != 0 {
		t.Fatalf("stale candidate installed (%d installs)", rep.Installs)
	}
	s := c.Stats()
	if s.StaleSkips != 1 || s.Installs != 0 || s.QueueDepth != 0 {
		t.Fatalf("stats after stale drain: %+v", s)
	}
}

// TestTableFull pins the capacity bound: the drain stops at TableCap and
// counts the cut-short pass; the offloaded set never exceeds the table.
func TestTableFull(t *testing.T) {
	cfg := testConfig()
	cfg.TableCap = 2
	cfg.TopK = 8
	cfg.RulesPerSec = 8000 // 8 tokens per tick — budget is not the bound
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 5; f++ {
		c.Observe(1, packet.FlowID(f), 2000)
	}
	rep := c.Tick(1_000_000)
	s := c.Stats()
	if rep.Installs != 2 || s.Offloaded != 2 {
		t.Fatalf("installs=%d offloaded=%d, want 2/2", rep.Installs, s.Offloaded)
	}
	if s.TableFull == 0 {
		t.Fatal("cut-short drain pass not counted in TableFull")
	}
	if s.Offloaded > s.TableCap {
		t.Fatalf("offloaded %d exceeds table capacity %d", s.Offloaded, s.TableCap)
	}
}

// TestAdaptiveRaisesUnderChurn drives a controller with a tiny rule
// budget through heavy flow churn and checks the adaptive policy reacts
// by raising the threshold above its floor.
func TestAdaptiveRaisesUnderChurn(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 8
	cfg.RulesPerSec = 1000 // 1 token per tick: queue stays pressured
	cfg.Policy = NewAdaptive(AdaptiveConfig{Min: 1000})
	cfg.InitialThresholdBytes = 1000
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	flow := uint64(0)
	var maxThreshold uint64
	for tick := 1; tick <= 50; tick++ {
		for i := 0; i < 32; i++ {
			flow++
			c.Observe(2, packet.FlowID(flow), 1500+rng.Intn(1000))
		}
		c.Tick(int64(tick) * 1_000_000)
		if th := c.Threshold(); th > maxThreshold {
			maxThreshold = th
		}
	}
	// The adaptive controller oscillates (raise under pressure, relax
	// when the queue drains) — assert it reacted, not its final phase.
	if maxThreshold <= 1000 {
		t.Fatalf("threshold peaked at %d under sustained queue pressure, want > floor", maxThreshold)
	}
	if c.Stats().QueueDrops == 0 {
		t.Fatal("churn script never pressured the install queue")
	}
}

// TestControllerDeterminism replays one scripted Observe/Tick sequence on
// two controllers and requires bit-identical Stats — the contract that
// makes seeded experiment reruns reproducible.
func TestControllerDeterminism(t *testing.T) {
	run := func() Stats {
		cfg := testConfig()
		cfg.WindowNs = 2_000_000
		cfg.Policy = NewAdaptive(AdaptiveConfig{Min: 500})
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(77)
		for tick := 1; tick <= 40; tick++ {
			for i := 0; i < 64; i++ {
				// Phase 1 sprays 64 flow combos; phase 2 narrows to 8 so
				// the rest go cold and exercise the demotion path.
				app, flows := packet.AppID(rng.Intn(4)), 16
				if tick > 20 {
					app, flows = 0, 8
				}
				c.Observe(app, packet.FlowID(rng.Intn(flows)), 64+rng.Intn(1436))
			}
			c.Tick(int64(tick) * 1_000_000)
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats diverged across identical runs:\n a=%+v\n b=%+v", a, b)
	}
	if a.Installs == 0 || a.Demotions == 0 {
		t.Fatalf("script too tame to exercise the control loop: %+v", a)
	}
}

// TestObserveZeroAllocs pins the per-packet contract on both branches:
// the fast path (table hit) and the mouse slow path (below threshold)
// allocate nothing.
func TestObserveZeroAllocs(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm one elephant onto the fast path.
	c.Observe(1, 1, 2000)
	c.Tick(1_000_000)
	if !c.IsOffloaded(1, 1) {
		t.Fatal("warmup install failed")
	}
	// Warm the mouse so its sketch cells exist.
	c.Observe(2, 2, 64)

	if n := testing.AllocsPerRun(1000, func() { c.Observe(1, 1, 1500) }); n != 0 {
		t.Fatalf("fast-path Observe allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Observe(2, 2, 64) }); n != 0 {
		t.Fatalf("slow-path Observe allocates %.1f/op, want 0", n)
	}
}
