package offload

// PolicyInput is the controller state a threshold policy reads on each
// control tick.
type PolicyInput struct {
	// QueueDepth/QueueCap describe the rule-install queue: sustained
	// depth means candidates arrive faster than the insertion budget
	// drains them.
	QueueDepth, QueueCap int
	// TableUsed/TableCap describe the NIC rule-table occupancy.
	TableUsed, TableCap int
	// SketchErrBytes is the sketch's current expected overestimate —
	// a crowded sketch argues for a higher threshold, since marginal
	// candidates are likely collision noise.
	SketchErrBytes uint64
}

// Policy decides the offload threshold: a flow whose windowed byte
// estimate reaches the threshold becomes an install candidate. Adjust
// is called once per control tick with the previous threshold and the
// current operating state; implementations must be deterministic pure
// functions of their inputs.
type Policy interface {
	// Name identifies the policy in reports and metrics.
	Name() string
	// Adjust returns the next threshold in window bytes.
	Adjust(cur uint64, in PolicyInput) uint64
}

// StaticPolicy pins the threshold to a constant — the baseline the
// adaptive controller is measured against.
type StaticPolicy struct {
	// Bytes is the fixed offload threshold in window bytes.
	Bytes uint64
}

// NewStatic returns a fixed-threshold policy.
func NewStatic(bytes uint64) *StaticPolicy {
	if bytes < 1 {
		bytes = 1
	}
	return &StaticPolicy{Bytes: bytes}
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static" }

// Adjust implements Policy: the threshold never moves.
func (p *StaticPolicy) Adjust(uint64, PolicyInput) uint64 { return p.Bytes }

// AdaptiveConfig tunes the adaptive threshold controller. Zero fields
// take the defaults noted on each field.
type AdaptiveConfig struct {
	// Min/Max clamp the threshold (defaults 2048 / 1<<26 bytes).
	Min, Max uint64
	// Up/Down are the multiplicative step factors (defaults 1.5 / 0.8):
	// the threshold rises fast under pressure and relaxes slowly, the
	// usual AIMD-flavoured asymmetry.
	Up, Down float64
	// QueueHi/QueueLo are install-queue occupancy watermarks (defaults
	// 0.5 / 0.1): above QueueHi candidates outrun the insertion budget
	// and the threshold rises; the queue must fall under QueueLo before
	// the threshold relaxes.
	QueueHi, QueueLo float64
	// OccHi/OccLo are rule-table occupancy watermarks (defaults
	// 0.9 / 0.5), applied the same way.
	OccHi, OccLo float64
}

func (c AdaptiveConfig) defaults() AdaptiveConfig {
	if c.Min == 0 {
		c.Min = 2048
	}
	if c.Max == 0 {
		c.Max = 1 << 26
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Up <= 1 {
		c.Up = 1.5
	}
	if c.Down <= 0 || c.Down >= 1 {
		c.Down = 0.8
	}
	if c.QueueHi <= 0 {
		c.QueueHi = 0.5
	}
	if c.QueueLo <= 0 {
		c.QueueLo = 0.1
	}
	if c.OccHi <= 0 {
		c.OccHi = 0.9
	}
	if c.OccLo <= 0 {
		c.OccLo = 0.5
	}
	return c
}

// AdaptivePolicy moves the threshold to keep the install queue and the
// rule-table occupancy inside their operating range: multiplicative
// increase when either resource is pressured, gentle decrease only when
// both are comfortably idle. Between the watermarks the threshold holds
// — hysteresis that keeps a marginal elephant from flapping across the
// install/demote boundary every window.
type AdaptivePolicy struct {
	cfg AdaptiveConfig
}

// NewAdaptive returns an adaptive threshold controller.
func NewAdaptive(cfg AdaptiveConfig) *AdaptivePolicy {
	return &AdaptivePolicy{cfg: cfg.defaults()}
}

// Config returns the effective tuning.
func (p *AdaptivePolicy) Config() AdaptiveConfig { return p.cfg }

// Name implements Policy.
func (p *AdaptivePolicy) Name() string { return "adaptive" }

// Adjust implements Policy.
func (p *AdaptivePolicy) Adjust(cur uint64, in PolicyInput) uint64 {
	if cur < p.cfg.Min {
		cur = p.cfg.Min
	}
	var queueFrac, occFrac float64
	if in.QueueCap > 0 {
		queueFrac = float64(in.QueueDepth) / float64(in.QueueCap)
	}
	if in.TableCap > 0 {
		occFrac = float64(in.TableUsed) / float64(in.TableCap)
	}
	switch {
	case queueFrac > p.cfg.QueueHi || occFrac > p.cfg.OccHi:
		cur = uint64(float64(cur)*p.cfg.Up) + 1
	case queueFrac < p.cfg.QueueLo && occFrac < p.cfg.OccLo:
		cur = uint64(float64(cur) * p.cfg.Down)
	}
	if cur < p.cfg.Min {
		cur = p.cfg.Min
	}
	if cur > p.cfg.Max {
		cur = p.cfg.Max
	}
	return cur
}
